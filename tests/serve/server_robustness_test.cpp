// Transport hardening regressions: a client that disconnects before its
// response is written must not SIGPIPE the daemon, and a client that
// streams bytes without a newline must be rejected with a protocol
// error instead of growing the read buffer without bound. Both attacks
// run against a live in-process server, which then must still answer
// ping on a fresh connection.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>

#include "serve/server.h"

namespace stx::serve {
namespace {

namespace fs = std::filesystem;

std::string socket_path(const std::string& name) {
  const auto p = fs::temp_directory_path() / ("stx-rob-" + name + ".sock");
  fs::remove(p);
  return p.string();
}

/// A raw connected client socket (no protocol helpers, so tests can
/// misbehave in ways request_lines never would).
int raw_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  return fd;
}

/// send() everything (MSG_NOSIGNAL: the *test* must not die either when
/// the server rightfully closes on us mid-flood). False once the peer
/// is gone.
bool raw_send(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const auto n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads until EOF and returns everything received.
std::string raw_drain(int fd) {
  std::string out;
  char chunk[4096];
  while (true) {
    const auto n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return out;
    out.append(chunk, static_cast<std::size_t>(n));
  }
}

TEST(ServerRobustness, MidResponseDisconnectDoesNotKillTheDaemon) {
  service::options sopts;
  sopts.workers = 2;
  service svc(sopts);
  server srv(svc, socket_path("sigpipe"));
  srv.start();

  // Several clients submit a design (the slowest, largest response the
  // protocol has) and vanish without reading a byte. The response write
  // then hits a closed peer: before the MSG_NOSIGNAL fix this raised
  // SIGPIPE and killed the whole process, this test included.
  for (int k = 0; k < 4; ++k) {
    const int fd = raw_connect(srv.socket_path());
    const std::string req =
        R"({"op":"design","id":"gone)" + std::to_string(k) +
        R"(","app":"qsort","horizon":8000})" + std::string("\n");
    ASSERT_TRUE(raw_send(fd, req.data(), req.size()));
    ::close(fd);  // drop the connection before the response arrives
  }

  // The daemon is still alive and serving fresh connections.
  const auto pong =
      request_line(srv.socket_path(), R"({"op":"ping","id":"alive"})");
  EXPECT_NE(pong.find("\"op\":\"ping\""), std::string::npos);
  EXPECT_NE(pong.find("\"id\":\"alive\""), std::string::npos);
  srv.stop();
}

TEST(ServerRobustness, NoNewlineFloodIsRejectedWithProtocolError) {
  service::options sopts;
  sopts.workers = 1;
  service svc(sopts);
  server srv(svc, socket_path("flood"));
  srv.start();

  // Stream well past the line cap without ever sending a newline. The
  // server must answer with a protocol error and close — not buffer the
  // flood forever.
  const int fd = raw_connect(srv.socket_path());
  const std::string chunk(64 * 1024, 'x');
  std::size_t sent = 0;
  while (sent < max_line_bytes + 2 * chunk.size()) {
    if (!raw_send(fd, chunk.data(), chunk.size())) break;  // server closed
    sent += chunk.size();
  }
  const auto reply = raw_drain(fd);  // returns at EOF: connection closed
  ::close(fd);
  EXPECT_NE(reply.find("\"ok\":false"), std::string::npos) << reply;
  EXPECT_NE(reply.find("protocol error: line exceeds"), std::string::npos)
      << reply;

  // Well-formed clients are unaffected afterwards.
  const auto pong =
      request_line(srv.socket_path(), R"({"op":"ping","id":"after"})");
  EXPECT_NE(pong.find("\"op\":\"ping\""), std::string::npos);
  srv.stop();
}

TEST(ServerRobustness, LinesUpToTheCapStillParse) {
  // The cap rejects floods, not big-but-legal requests: a line just
  // under max_line_bytes still gets a (parse-error) response instead of
  // a protocol-error disconnect.
  service::options sopts;
  sopts.workers = 1;
  service svc(sopts);
  server srv(svc, socket_path("cap"));
  srv.start();

  std::string line(max_line_bytes - 1, 'y');
  line.push_back('\n');
  const int fd = raw_connect(srv.socket_path());
  ASSERT_TRUE(raw_send(fd, line.data(), line.size()));
  std::string reply;
  char c = 0;
  while (::read(fd, &c, 1) == 1 && c != '\n') reply.push_back(c);
  ::close(fd);
  EXPECT_NE(reply.find("\"ok\":false"), std::string::npos);
  EXPECT_EQ(reply.find("protocol error: line exceeds"), std::string::npos)
      << reply.substr(0, 200);
  srv.stop();
}

}  // namespace
}  // namespace stx::serve
