// The xbar-serve wire protocol: request parsing (defaults, overrides,
// scenario canonicalization, strict rejection) and the exact
// response round-trip that makes warm answers byte-identical.
#include "serve/protocol.h"

#include <gtest/gtest.h>

#include "testkit/scenario.h"
#include "util/error.h"
#include "workloads/synthetic.h"
#include "xbar/flow.h"

namespace stx::serve {
namespace {

TEST(Protocol, MinimalAppRequestGetsFlowDefaults) {
  const auto req =
      parse_request(R"({"op":"design","id":"r1","app":"mat2"})");
  EXPECT_EQ(req.op, request_op::design);
  EXPECT_EQ(req.id, "r1");
  EXPECT_EQ(req.design.app, "mat2");
  EXPECT_TRUE(req.design.scenario.empty());
  EXPECT_TRUE(req.design.validate);
  EXPECT_TRUE(req.design.artifacts.empty());
  const xbar::flow_options defaults;
  EXPECT_EQ(req.design.opts.horizon, defaults.horizon);
  EXPECT_EQ(req.design.opts.synth.params.window_size,
            defaults.synth.params.window_size);
}

TEST(Protocol, OptionFieldsOverrideTheDefaults) {
  const auto req = parse_request(
      R"({"op":"design","app":"fft","horizon":9000,"window":250,)"
      R"("threshold":0.4,"maxtb":3,"policy":"fixed_priority",)"
      R"("solver":"milp","solver_node_limit":5000,"solver_time_ms":1500,)"
      R"("solver_threads":4,"solver_cuts":false,"solver_portfolio":true,)"
      R"("validate":false,"artifacts":["sv","dot"]})");
  const auto& d = req.design;
  EXPECT_EQ(d.opts.horizon, 9'000);
  EXPECT_EQ(d.opts.synth.params.window_size, 250);
  EXPECT_DOUBLE_EQ(d.opts.synth.params.overlap_threshold, 0.4);
  EXPECT_EQ(d.opts.synth.params.max_targets_per_bus, 3);
  EXPECT_EQ(d.opts.policy, sim::arbitration::fixed_priority);
  EXPECT_EQ(d.opts.synth.solver, xbar::solver_kind::generic_milp);
  EXPECT_EQ(d.opts.synth.limits.max_nodes, 5'000);
  EXPECT_DOUBLE_EQ(d.opts.synth.limits.time_limit_sec, 1.5);
  EXPECT_EQ(d.opts.synth.limits.threads, 4);
  EXPECT_FALSE(d.opts.synth.limits.cuts);
  EXPECT_TRUE(d.opts.synth.limits.portfolio);
  EXPECT_FALSE(d.validate);
  EXPECT_EQ(d.artifacts, (std::vector<std::string>{"sv", "dot"}));
}

TEST(Protocol, ScenarioRequestsCanonicalizeAndDefaultFromTheScenario) {
  // A partial token: omitted keys take the scenario defaults, and the
  // parsed request carries the canonical (fully spelled) encoding so
  // every spelling of one scenario shares one cache identity.
  const std::string token = "stxfuzz/v1 seed=7 ini=3 tgt=3";
  const auto canonical = testkit::encode(testkit::decode(token));
  ASSERT_NE(canonical, token);

  const auto req = parse_request(
      R"({"op":"design","scenario":")" + token + R"("})");
  EXPECT_EQ(req.design.scenario, canonical);
  EXPECT_TRUE(req.design.app.empty());
  // Flow options come from the scenario, not from xbar::flow_options{}.
  const auto s = testkit::decode(token);
  EXPECT_EQ(req.design.opts.horizon, s.make_flow_options().horizon);

  // Explicit fields still override on top of the scenario's options.
  const auto over = parse_request(
      R"({"op":"design","scenario":")" + token + R"(","horizon":12345})");
  EXPECT_EQ(over.design.opts.horizon, 12'345);
  EXPECT_EQ(over.design.scenario, canonical);
}

TEST(Protocol, NonDesignOpsParseWithoutDesignFields) {
  EXPECT_EQ(parse_request(R"({"op":"ping","id":"p"})").op, request_op::ping);
  EXPECT_EQ(parse_request(R"({"op":"metrics"})").op, request_op::metrics);
  EXPECT_EQ(parse_request(R"({"op":"trace"})").op, request_op::trace);
  EXPECT_EQ(parse_request(R"({"op":"shutdown"})").op, request_op::shutdown);
}

TEST(Protocol, RejectsMalformedRequests) {
  EXPECT_THROW(parse_request("this is not json"), std::exception);
  EXPECT_THROW(parse_request(R"(["not","an","object"])"),
               invalid_argument_error);
  EXPECT_THROW(parse_request(R"({"id":"x"})"), invalid_argument_error);
  EXPECT_THROW(parse_request(R"({"op":"dance"})"), invalid_argument_error);
  // Exactly one of app / scenario.
  EXPECT_THROW(parse_request(R"({"op":"design"})"), invalid_argument_error);
  EXPECT_THROW(
      parse_request(
          R"({"op":"design","app":"mat2","scenario":"stxfuzz/v1 seed=1"})"),
      invalid_argument_error);
  // Unknown fields are errors, never silently ignored.
  EXPECT_THROW(parse_request(R"({"op":"design","app":"mat2","horizn":1})"),
               invalid_argument_error);
  // Out-of-range or unknown option values.
  EXPECT_THROW(
      parse_request(
          R"({"op":"design","app":"mat2","solver_node_limit":0})"),
      invalid_argument_error);
  EXPECT_THROW(
      parse_request(R"({"op":"design","app":"mat2","solver_time_ms":-5})"),
      invalid_argument_error);
  EXPECT_THROW(parse_request(R"({"op":"design","app":"mat2","solver":"z3"})"),
               invalid_argument_error);
  EXPECT_THROW(
      parse_request(R"({"op":"design","app":"mat2","policy":"coin_flip"})"),
      invalid_argument_error);
  EXPECT_THROW(parse_request(R"({"op":"design","scenario":"garbage"})"),
               invalid_argument_error);
}

TEST(Protocol, DesignResponseRoundTripsByteExactly) {
  workloads::synthetic_params params;
  params.num_cores = 8;
  const auto app = workloads::make_synthetic(params);
  xbar::flow_options opts;
  opts.horizon = 8'000;

  design_response resp;
  resp.id = "r9";
  resp.ok = true;
  resp.app_id = app.name;
  resp.source = "computed";
  resp.elapsed_ms = 12.625;  // binary-exact double survives %.17g
  resp.report = xbar::run_design_flow(app, opts);
  gen::artifact art;
  art.backend = "report";
  art.filename = "design.md";
  art.content = "# line one\nline \"two\"\n";
  resp.artifacts.push_back(art);

  const auto line = serialize(resp);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one line on the wire

  const auto back = parse_response(line);
  EXPECT_EQ(back.id, "r9");
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.app_id, resp.app_id);
  EXPECT_EQ(back.source, "computed");
  EXPECT_EQ(back.elapsed_ms, resp.elapsed_ms);
  ASSERT_TRUE(back.report.has_value());
  EXPECT_EQ(*back.report, *resp.report);  // field-exact, doubles included
  ASSERT_EQ(back.artifacts.size(), 1u);
  EXPECT_EQ(back.artifacts[0].backend, art.backend);
  EXPECT_EQ(back.artifacts[0].filename, art.filename);
  EXPECT_EQ(back.artifacts[0].content, art.content);
  // The whole loop is byte-stable: re-serializing reproduces the line.
  EXPECT_EQ(serialize(back), line);
}

TEST(Protocol, ErrorAndSimpleResponses) {
  const auto err = parse_response(serialize_error("r2", "queue full"));
  EXPECT_EQ(err.id, "r2");
  EXPECT_FALSE(err.ok);
  EXPECT_EQ(err.error, "queue full");

  const auto pong = serialize_simple("p1", request_op::ping);
  EXPECT_NE(pong.find("\"op\":\"ping\""), std::string::npos);
  EXPECT_NE(pong.find("\"ok\":true"), std::string::npos);
  const auto metrics = serialize_simple(
      "m1", request_op::metrics, R"({"schema":"stx-metrics/v1"})");
  EXPECT_NE(metrics.find("\"metrics\":{\"schema\":\"stx-metrics/v1\"}"),
            std::string::npos);
}

}  // namespace
}  // namespace stx::serve
