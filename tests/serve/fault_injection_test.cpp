// Fault injection across the serving stack, driven by the failpoint
// registry (util/failpoint.h): injected worker faults become error
// responses, admission overload carries a retry_after_ms hint, queued
// requests past their deadline are answered instead of executed, a
// store that cannot persist degrades to computing (never to failing),
// and — the headline — a daemon that crashes mid-request can be
// restarted on the same cache directory and serve the byte-identical
// warm report while the client helper retries transparently through
// the outage, with the simulator and solver provably never re-run.
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

#include "explore/codec.h"
#include "obs/obs.h"
#include "serve/server.h"
#include "serve/service.h"
#include "util/error.h"
#include "util/failpoint.h"

namespace stx::serve {
namespace {

namespace fs = std::filesystem;

/// Every test disarms on entry and exit: failpoints are process-global.
struct FaultInjection : ::testing::Test {
  void SetUp() override { failpoint::disarm_all(); }
  void TearDown() override { failpoint::disarm_all(); }
};

design_request quick_request(const std::string& id,
                             std::int64_t horizon = 8'000) {
  design_request req;
  req.id = id;
  req.app = "qsort";
  req.opts.horizon = horizon;
  return req;
}

TEST_F(FaultInjection, FailpointSpecGrammarAndHitAccounting) {
  failpoint::arm_from_spec(
      "store.get.read=error;serve.worker.execute=delay(5)");
  EXPECT_TRUE(failpoint::armed());
  EXPECT_EQ(failpoint::eval_action("store.get.read").kind,
            failpoint::action_kind::error);
  // delay is handled inside eval_action (it sleeps there), so the
  // returned action is none — the hit counter proves the site fired.
  const auto d = failpoint::eval_action("serve.worker.execute");
  EXPECT_EQ(d.kind, failpoint::action_kind::none);
  EXPECT_EQ(failpoint::hits("store.get.read"), 1);
  EXPECT_EQ(failpoint::hits("serve.worker.execute"), 1);
  EXPECT_EQ(failpoint::hits("never.armed"), 0);
  failpoint::disarm_all();
  EXPECT_FALSE(failpoint::armed());
  // Unarmed sites are action none and do not count hits.
  EXPECT_EQ(failpoint::eval_action("store.get.read").kind,
            failpoint::action_kind::none);
  EXPECT_THROW(failpoint::arm("x", "explode"), stx::error);
  EXPECT_THROW(failpoint::arm_from_spec("missing-equals"), stx::error);
}

TEST_F(FaultInjection, WorkerExecuteErrorBecomesErrorResponse) {
  failpoint::arm("serve.worker.execute", "error");
  service::options opts;
  opts.workers = 1;
  service svc(opts);
  const auto resp = svc.submit(quick_request("a")).get();
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.error.find("serve.worker.execute"), std::string::npos);
  EXPECT_EQ(svc.stats().errors, 1);
  // The fault is injected, not sticky: disarmed, the same request works.
  failpoint::disarm_all();
  const auto ok = svc.submit(quick_request("b")).get();
  EXPECT_TRUE(ok.ok) << ok.error;
}

TEST_F(FaultInjection, AdmissionErrorResolvesImmediately) {
  failpoint::arm("serve.admission", "error");
  service::options opts;
  opts.workers = 1;
  service svc(opts);
  auto fut = svc.submit(quick_request("a"));
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const auto resp = fut.get();
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.error.find("serve.admission"), std::string::npos);
}

TEST_F(FaultInjection, OverloadRejectionCarriesRetryAfterHint) {
  // A 200ms injected delay holds the only worker busy while distinct
  // requests pile past the 1-deep queue.
  failpoint::arm("serve.worker.execute", "delay(200)");
  service::options opts;
  opts.workers = 1;
  opts.queue_depth = 1;
  service svc(opts);
  std::vector<std::shared_future<design_response>> futures;
  for (int i = 0; i < 32 && svc.stats().rejected == 0; ++i) {
    futures.push_back(
        svc.submit(quick_request("q" + std::to_string(i), 8'000 + i)));
  }
  ASSERT_GT(svc.stats().rejected, 0);
  const auto rejected = futures.back().get();
  EXPECT_FALSE(rejected.ok);
  EXPECT_NE(rejected.error.find("admission queue full"), std::string::npos);
  EXPECT_GT(rejected.retry_after_ms, 0);
  // The hint survives the wire protocol round trip.
  const auto reparsed = parse_response(serialize(rejected));
  EXPECT_EQ(reparsed.retry_after_ms, rejected.retry_after_ms);
  for (auto& f : futures) (void)f.get();
}

TEST_F(FaultInjection, QueuedPastDeadlineIsAnsweredNotExecuted) {
  // The first request sleeps 250ms in the worker; the second carries a
  // 50ms deadline and must expire in the queue behind it.
  failpoint::arm("serve.worker.execute", "delay(250)");
  service::options opts;
  opts.workers = 1;
  service svc(opts);
  auto slow = svc.submit(quick_request("slow", 8'000));
  auto req = quick_request("late", 9'000);
  req.deadline_ms = 50;
  const auto late = svc.submit(req).get();
  EXPECT_FALSE(late.ok);
  EXPECT_NE(late.error.find("deadline exceeded"), std::string::npos);
  EXPECT_EQ(svc.stats().deadline_exceeded, 1);
  (void)slow.get();
  // The expired request never reached the worker failpoint: only the
  // slow request fired it.
  EXPECT_EQ(failpoint::hits("serve.worker.execute"), 1);
}

TEST_F(FaultInjection, StorePutFailureDegradesToComputedNeverToError) {
  const auto dir = fs::temp_directory_path() / "stx-fi-putfail";
  fs::remove_all(dir);
  failpoint::arm("store.put.fsync", "error");
  service::options opts;
  opts.workers = 1;
  opts.cache_dir = dir.string();
  service svc(opts);
  // Every write-through (traces, full reference, report) fails — the
  // request must still succeed, served as freshly computed.
  const auto resp = svc.submit(quick_request("a")).get();
  EXPECT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.source, "computed");
  EXPECT_GT(svc.store().stats().put_failures, 0);
  // Nothing was published, so the identical request recomputes (no
  // store hit) — and still succeeds.
  const auto again = svc.submit(quick_request("b")).get();
  EXPECT_TRUE(again.ok) << again.error;
  EXPECT_EQ(again.source, "computed");
  // Disarmed, persistence heals without intervention.
  failpoint::disarm_all();
  (void)svc.submit(quick_request("c")).get();
  const auto warm = svc.submit(quick_request("d")).get();
  EXPECT_EQ(warm.source, "store");
}

/// The acceptance scenario: populate the store, crash a forked daemon
/// at serve.worker.execute mid-request, restart a server on the same
/// cache directory, and watch one request_line call retry through the
/// whole outage to a byte-identical warm report — with the simulator
/// and the solver never running again in the serving process.
TEST_F(FaultInjection, DaemonCrashRestartServesByteIdenticalWarmReport) {
  const auto dir = fs::temp_directory_path() / "stx-fi-crash-restart";
  fs::remove_all(dir);
  const auto sock =
      (fs::temp_directory_path() / "stx-fi-crash.sock").string();
  fs::remove(sock);
  const std::string line =
      R"({"op":"design","id":"r1","app":"qsort","horizon":8000})";

  // Phase 1: compute once, in-process, into the shared store. The sim
  // counter proves the flow genuinely ran here.
  obs::reset();
  obs::enable();
  std::string cold_bytes;
  {
    service::options opts;
    opts.workers = 1;
    opts.cache_dir = dir.string();
    service svc(opts);
    const auto cold = svc.submit(quick_request("cold")).get();
    ASSERT_TRUE(cold.ok) << cold.error;
    ASSERT_TRUE(cold.report.has_value());
    cold_bytes = explore::encode_report(*cold.report);
  }  // service destroyed: no live threads across the fork below
  EXPECT_GT(obs::snapshot().counter("sim.runs"), 0);

  // Phase 2: a forked daemon on the same store, armed to crash (_Exit,
  // as kill -9) the moment a worker picks up a request.
  const pid_t pid = ::fork();
  if (pid == 0) {
    try {
      failpoint::arm("serve.worker.execute", "crash");
      service::options opts;
      opts.workers = 1;
      opts.cache_dir = dir.string();
      service svc(opts);
      server srv(svc, sock);
      srv.start();
      srv.wait();  // the crash failpoint exits long before a shutdown
    } catch (...) {
    }
    std::_Exit(43);  // served without crashing: the failpoint misfired
  }
  for (int i = 0; i < 200 && !fs::exists(sock); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(fs::exists(sock)) << "daemon never bound its socket";

  // The client fires while the crash-armed daemon holds the socket and
  // keeps retrying (connection dropped mid-request, then refused) until
  // the restarted server answers.
  obs::reset();
  obs::enable();
  retry_options retry;
  retry.attempts = 10;
  retry.base_backoff_ms = 25;
  retry.max_backoff_ms = 250;
  std::string response_line;
  std::thread client([&] {
    try {
      response_line = request_line(sock, line, retry);
    } catch (const std::exception& e) {
      response_line = std::string("CLIENT THREW: ") + e.what();
    }
  });

  int status = 0;
  ::waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), failpoint::crash_exit_code);

  // Restart: same cache directory, same socket path, no faults.
  service::options opts;
  opts.workers = 1;
  opts.cache_dir = dir.string();
  service svc(opts);
  server srv(svc, sock);
  srv.start();
  client.join();

  ASSERT_EQ(response_line.rfind("CLIENT THREW", 0), std::string::npos)
      << response_line;
  const auto resp = parse_response(response_line);
  EXPECT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.source, "store");
  ASSERT_TRUE(resp.report.has_value());
  // Byte-identical to the cold computation, and served without the
  // simulator or the solver ever running in this process again.
  EXPECT_EQ(explore::encode_report(*resp.report), cold_bytes);
  EXPECT_EQ(obs::snapshot().counter("sim.runs"), 0);
  EXPECT_EQ(obs::snapshot().counter("milp.solves"), 0);
  EXPECT_EQ(svc.stats().store_hits, 1);
  srv.stop();
}

}  // namespace
}  // namespace stx::serve
