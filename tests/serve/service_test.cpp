// The design-service engine: worker-pool execution, whole-report store
// hits, in-flight dedup of identical requests, bounded admission, and
// error accounting — all through the transport-free service API.
#include "serve/service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <vector>

namespace stx::serve {
namespace {

design_request quick_request(const std::string& id,
                             std::int64_t horizon = 8'000) {
  design_request req;
  req.id = id;
  req.app = "qsort";
  req.opts.horizon = horizon;
  return req;
}

TEST(Service, ComputesThenServesTheSameRequestFromTheStore) {
  service::options opts;
  opts.workers = 1;
  service svc(opts);

  const auto first = svc.submit(quick_request("a")).get();
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.source, "computed");
  EXPECT_EQ(first.app_id, "qsort");
  ASSERT_TRUE(first.report.has_value());

  const auto second = svc.submit(quick_request("b")).get();
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_EQ(second.source, "store");
  EXPECT_EQ(*second.report, *first.report);

  const auto stats = svc.stats();
  EXPECT_EQ(stats.submitted, 2);
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.store_hits, 1);
  EXPECT_EQ(stats.errors, 0);
}

TEST(Service, DistinctOptionsAreDistinctDesigns) {
  service::options opts;
  opts.workers = 2;
  service svc(opts);
  const auto a = svc.submit(quick_request("a", 8'000)).get();
  const auto b = svc.submit(quick_request("b", 9'000)).get();
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(b.source, "computed");  // different horizon, different key
  EXPECT_EQ(svc.stats().store_hits, 0);
}

TEST(Service, UnknownAppResolvesImmediatelyAsAnError) {
  service::options opts;
  opts.workers = 1;
  service svc(opts);
  auto req = quick_request("bad");
  req.app = "no-such-app";
  auto fut = svc.submit(req);
  // Rejected at resolve time, before ever touching the queue.
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const auto resp = fut.get();
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.error.find("unknown app"), std::string::npos);
  EXPECT_EQ(svc.stats().errors, 1);
  EXPECT_EQ(svc.stats().completed, 0);
}

TEST(Service, IdenticalInFlightRequestsCoalesce) {
  service::options opts;
  opts.workers = 1;  // the slow job occupies the only worker
  opts.queue_depth = 8;
  service svc(opts);

  // While "slow" runs, both spellings of the identical request sit
  // behind it: the second submit joins the first's future instead of
  // enqueuing a duplicate execution.
  auto slow = svc.submit(quick_request("slow", 30'000));
  auto b1 = svc.submit(quick_request("b1", 8'000));
  auto b2 = svc.submit(quick_request("b2", 8'000));

  EXPECT_EQ(svc.stats().coalesced, 1);
  const auto r1 = b1.get();
  const auto r2 = b2.get();
  EXPECT_EQ(r2.id, "b1");  // the shared execution echoes the first id
  EXPECT_EQ(r1.id, "b1");
  EXPECT_EQ(*r1.report, *r2.report);
  (void)slow.get();
  const auto stats = svc.stats();
  EXPECT_EQ(stats.submitted, 3);
  EXPECT_EQ(stats.completed, 2);  // slow + one shared execution
}

TEST(Service, BoundedAdmissionRejectsOverflowImmediately) {
  service::options opts;
  opts.workers = 1;
  opts.queue_depth = 1;
  service svc(opts);

  // Distinct requests pile in much faster than the worker drains them;
  // the admission bound must bounce one long before 32 submissions.
  std::vector<std::shared_future<design_response>> futures;
  for (int i = 0; i < 32 && svc.stats().rejected == 0; ++i) {
    futures.push_back(svc.submit(quick_request("q" + std::to_string(i),
                                               8'000 + i)));
  }
  ASSERT_GT(svc.stats().rejected, 0);
  const auto rejected = futures.back().get();  // the bounced submit
  EXPECT_FALSE(rejected.ok);
  EXPECT_NE(rejected.error.find("admission queue full"), std::string::npos);
  for (auto& f : futures) (void)f.get();  // everything resolves
}

TEST(Service, ScenarioRequestsDesignGeneratedApps) {
  service::options opts;
  opts.workers = 1;
  service svc(opts);
  design_request req;
  req.id = "s1";
  req.scenario = "stxfuzz/v1 seed=7 ini=3 tgt=3 horizon=6000";
  // The service resolves options the same way the protocol does for a
  // direct submit: scenario defaults first.
  req.opts.horizon = 6'000;
  const auto resp = svc.submit(req).get();
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.app_id, req.scenario);
  ASSERT_TRUE(resp.report.has_value());
  EXPECT_GT(resp.report->designed_buses, 0);
}

TEST(Service, ArtifactSelectionRendersIntoTheResponse) {
  service::options opts;
  opts.workers = 1;
  service svc(opts);
  auto req = quick_request("art");
  req.artifacts = {"report"};
  const auto resp = svc.submit(req).get();
  ASSERT_TRUE(resp.ok) << resp.error;
  ASSERT_EQ(resp.artifacts.size(), 1u);
  EXPECT_EQ(resp.artifacts[0].backend, "report");
  EXPECT_FALSE(resp.artifacts[0].content.empty());
}

}  // namespace
}  // namespace stx::serve
