// The AF_UNIX transport end to end: a live in-process server answering
// ping / design / metrics / shutdown over the line protocol, error
// responses for malformed lines, and concurrent client connections.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace stx::serve {
namespace {

namespace fs = std::filesystem;

/// Short per-test socket path (sun_path caps at ~108 bytes).
std::string socket_path(const std::string& name) {
  const auto p = fs::temp_directory_path() / ("stx-srv-" + name + ".sock");
  fs::remove(p);
  return p.string();
}

TEST(Server, AnswersTheCoreOpsInOrder) {
  service::options sopts;
  sopts.workers = 2;
  service svc(sopts);
  server srv(svc, socket_path("core"));
  srv.start();

  const auto pong = request_line(srv.socket_path(),
                                 R"({"op":"ping","id":"p1"})");
  EXPECT_NE(pong.find("\"id\":\"p1\""), std::string::npos);
  EXPECT_NE(pong.find("\"op\":\"ping\""), std::string::npos);

  // Two identical designs on one connection: answered in order, so the
  // second is a warm whole-report hit with the identical report.
  const auto lines = request_lines(
      srv.socket_path(),
      {R"({"op":"design","id":"d1","app":"qsort","horizon":8000})",
       R"({"op":"design","id":"d2","app":"qsort","horizon":8000})"});
  ASSERT_EQ(lines.size(), 2u);
  const auto r1 = parse_response(lines[0]);
  const auto r2 = parse_response(lines[1]);
  ASSERT_TRUE(r1.ok) << r1.error;
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_EQ(r1.id, "d1");
  EXPECT_EQ(r1.source, "computed");
  EXPECT_EQ(r2.source, "store");
  ASSERT_TRUE(r1.report.has_value() && r2.report.has_value());
  EXPECT_EQ(*r1.report, *r2.report);

  // A malformed line answers with an error response, not a dropped
  // connection — the next request on the same socket still works.
  const auto errs = request_lines(
      srv.socket_path(),
      {"this is not json",
       R"({"op":"design","id":"e2","app":"qsort","bogus":1})",
       R"({"op":"ping","id":"p2"})"});
  EXPECT_NE(errs[0].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(errs[1].find("unknown request field"), std::string::npos);
  EXPECT_NE(errs[2].find("\"op\":\"ping\""), std::string::npos);

  srv.stop();
}

TEST(Server, MetricsOpSnapshotsTheObsRegistry) {
  obs::reset();
  obs::enable();
  service::options sopts;
  sopts.workers = 1;
  service svc(sopts);
  server srv(svc, socket_path("metrics"));
  srv.start();

  (void)request_line(srv.socket_path(),
                     R"({"op":"design","id":"d","app":"qsort","horizon":8000})");
  const auto metrics = request_line(srv.socket_path(),
                                    R"({"op":"metrics","id":"m"})");
  EXPECT_NE(metrics.find("stx-metrics/v1"), std::string::npos);
  EXPECT_NE(metrics.find("serve.requests"), std::string::npos);
  EXPECT_NE(metrics.find("sim.runs"), std::string::npos);

  srv.stop();
  obs::reset();
}

TEST(Server, ShutdownOpUnblocksWait) {
  service::options sopts;
  sopts.workers = 1;
  service svc(sopts);
  server srv(svc, socket_path("shutdown"));
  srv.start();

  const auto bye = request_line(srv.socket_path(),
                                R"({"op":"shutdown","id":"s"})");
  EXPECT_NE(bye.find("\"op\":\"shutdown\""), std::string::npos);
  srv.wait();  // returns because the client asked for shutdown
  srv.stop();
  // The socket file is gone once the server stopped.
  EXPECT_FALSE(fs::exists(srv.socket_path()));
}

TEST(Server, ConcurrentConnectionsShareTheWorkerPool) {
  service::options sopts;
  sopts.workers = 4;
  sopts.queue_depth = 64;
  service svc(sopts);
  server srv(svc, socket_path("conc"));
  srv.start();

  std::vector<std::thread> clients;
  std::vector<std::string> responses(8);
  for (std::size_t i = 0; i < responses.size(); ++i) {
    clients.emplace_back([&, i] {
      // Half the clients request one design, half another: exercises
      // both dedup across connections and parallel execution.
      const std::string horizon = i % 2 == 0 ? "8000" : "9000";
      responses[i] = request_line(
          srv.socket_path(),
          R"({"op":"design","id":"c)" + std::to_string(i) +
              R"(","app":"qsort","horizon":)" + horizon + "}");
    });
  }
  for (auto& t : clients) t.join();
  for (const auto& line : responses) {
    const auto resp = parse_response(line);
    EXPECT_TRUE(resp.ok) << resp.error;
    ASSERT_TRUE(resp.report.has_value());
  }
  const auto stats = svc.stats();
  EXPECT_EQ(stats.submitted, 8);
  EXPECT_EQ(stats.completed + stats.coalesced, 8);
  EXPECT_EQ(stats.errors, 0);
  srv.stop();
}

}  // namespace
}  // namespace stx::serve
