// Unit tests for the branch & bound MILP solver on instances with known
// optima.
#include "milp/branch_bound.h"

#include <gtest/gtest.h>

#include "milp/model.h"

namespace stx::milp {
namespace {

TEST(BranchBound, SolvesSmallKnapsack) {
  // max 10a + 13b + 7c, weights 3,4,2, capacity 6 -> a+c (17)? b+c (20).
  model m;
  const int a = m.add_binary(-10);
  const int b = m.add_binary(-13);
  const int c = m.add_binary(-7);
  m.add_row({{a, 3}, {b, 4}, {c, 2}}, lp::relation::less_equal, 6);

  const auto res = solve_branch_bound(m);
  ASSERT_EQ(res.status, milp_status::optimal);
  EXPECT_NEAR(res.objective, -20.0, 1e-6);
  EXPECT_NEAR(res.x[1], 1.0, 1e-6);
  EXPECT_NEAR(res.x[2], 1.0, 1e-6);
}

TEST(BranchBound, SolvesAssignmentProblem) {
  // 3x3 assignment, cost matrix with known optimum 1+2+3 = 6 on the
  // anti-diagonal.
  const double cost[3][3] = {{5, 9, 1}, {8, 2, 7}, {3, 6, 9}};
  model m;
  int x[3][3];
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) x[i][j] = m.add_binary(cost[i][j]);
  }
  for (int i = 0; i < 3; ++i) {
    m.add_row({{x[i][0], 1}, {x[i][1], 1}, {x[i][2], 1}}, lp::relation::equal,
              1);
    m.add_row({{x[0][i], 1}, {x[1][i], 1}, {x[2][i], 1}}, lp::relation::equal,
              1);
  }
  const auto res = solve_branch_bound(m);
  ASSERT_EQ(res.status, milp_status::optimal);
  EXPECT_NEAR(res.objective, 6.0, 1e-6);
}

TEST(BranchBound, DetectsIntegerInfeasibility) {
  // 2x in [1.2, 1.8] has no integer solution even though the LP is fine.
  model m;
  const int x = m.add_integer(0, 10, 0);
  m.add_row({{x, 2}}, lp::relation::greater_equal, 2.4);
  m.add_row({{x, 2}}, lp::relation::less_equal, 3.6);
  EXPECT_EQ(solve_branch_bound(m).status, milp_status::infeasible);
}

TEST(BranchBound, FeasibilityModeStopsAtFirstSolution) {
  model m;
  std::vector<lp::term> terms;
  for (int i = 0; i < 12; ++i) {
    terms.push_back({m.add_binary(0), 1.0});
  }
  m.add_row(terms, lp::relation::equal, 6);

  bb_options opts;
  opts.feasibility_only = true;
  const auto res = solve_branch_bound(m, opts);
  ASSERT_EQ(res.status, milp_status::optimal);
  double sum = 0;
  for (double v : res.x) sum += v;
  EXPECT_NEAR(sum, 6.0, 1e-6);
}

TEST(BranchBound, MixedIntegerContinuousOptimum) {
  // min maxov s.t. maxov >= 3a + 2b, maxov >= 4(1-a) + 1, a binary.
  // a=1: maxov >= max(3+2b, 1) -> b=0 gives 3. a=0: maxov >= max(2b, 5)=5.
  model m;
  const int a = m.add_binary(0);
  const int b = m.add_binary(0);
  const int maxov = m.add_continuous(0, lp::infinity, 1);
  m.add_row({{a, 3}, {b, 2}, {maxov, -1}}, lp::relation::less_equal, 0);
  m.add_row({{a, -4}, {maxov, -1}}, lp::relation::less_equal, -5);

  const auto res = solve_branch_bound(m);
  ASSERT_EQ(res.status, milp_status::optimal);
  EXPECT_NEAR(res.objective, 3.0, 1e-5);
  EXPECT_NEAR(res.x[0], 1.0, 1e-6);
}

TEST(BranchBound, GeneralIntegerVariables) {
  // min x + y s.t. 3x + 5y >= 17, x,y integer >= 0 -> (4,1): 5 or (1,3): 4?
  // 3*1+5*3=18 >= 17, sum 4. (0,4): 20 sum 4. (2,3):21 sum 5. Best sum 4.
  model m;
  const int x = m.add_integer(0, 10, 1);
  const int y = m.add_integer(0, 10, 1);
  m.add_row({{x, 3}, {y, 5}}, lp::relation::greater_equal, 17);
  const auto res = solve_branch_bound(m);
  ASSERT_EQ(res.status, milp_status::optimal);
  EXPECT_NEAR(res.objective, 4.0, 1e-6);
}

TEST(BranchBound, HonoursNodeLimit) {
  // A big symmetric equality-partition model with a tiny node budget: the
  // solver must come back with limit or feasible, never crash or loop.
  model m;
  std::vector<lp::term> terms;
  for (int i = 0; i < 30; ++i) terms.push_back({m.add_binary(i % 3 - 1), 1.0});
  m.add_row(terms, lp::relation::equal, 15);
  bb_options opts;
  opts.max_nodes = 3;
  opts.rounding_heuristic = false;
  opts.use_presolve = false;
  const auto res = solve_branch_bound(m, opts);
  EXPECT_TRUE(res.status == milp_status::limit ||
              res.status == milp_status::feasible ||
              res.status == milp_status::optimal);
  EXPECT_LE(res.nodes, 4);
}

TEST(BranchBound, UnboundedRelaxationReported) {
  model m;
  const int x = m.add_integer(0, lp::infinity / 1, -1);
  (void)x;
  const auto res = solve_branch_bound(m);
  EXPECT_EQ(res.status, milp_status::unbounded);
}

TEST(BranchBound, RoundingHeuristicFindsObviousPoint) {
  // LP optimum is fractional but rounding is feasible; with a node budget
  // of 1 the heuristic must still deliver an incumbent.
  model m;
  const int a = m.add_binary(-1);
  const int b = m.add_binary(-1);
  m.add_row({{a, 1}, {b, 1}}, lp::relation::less_equal, 1.4);
  bb_options opts;
  opts.max_nodes = 1;
  opts.use_presolve = false;
  const auto res = solve_branch_bound(m, opts);
  EXPECT_TRUE(res.status == milp_status::feasible ||
              res.status == milp_status::optimal);
  EXPECT_LE(res.objective, -1.0 + 1e-6);
}

}  // namespace
}  // namespace stx::milp
