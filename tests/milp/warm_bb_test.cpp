// Warm-started incremental branch & bound: cut-layer outcome
// equivalence on random 0/1 programs, engine telemetry, and the
// symmetry-group declaration (lexicographic ordering rows).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "milp/branch_bound.h"
#include "milp/model.h"
#include "milp/presolve.h"
#include "util/error.h"
#include "util/random.h"

namespace stx::milp {
namespace {

struct random_bip {
  model m;
  int n_vars = 0;
};

random_bip make_random_bip(rng& r, int n_vars, int n_rows) {
  random_bip out;
  out.n_vars = n_vars;
  for (int v = 0; v < n_vars; ++v) {
    out.m.add_binary(r.uniform(-5.0, 5.0));
  }
  for (int rr = 0; rr < n_rows; ++rr) {
    std::vector<lp::term> terms;
    for (int v = 0; v < n_vars; ++v) {
      if (r.chance(0.5)) terms.push_back({v, r.uniform(-4.0, 4.0)});
    }
    if (terms.empty()) continue;
    const int kind = static_cast<int>(r.uniform_int(0, 2));
    const double rhs = r.uniform(-3.0, 5.0);
    const auto rel = kind == 0   ? lp::relation::less_equal
                     : kind == 1 ? lp::relation::greater_equal
                                 : lp::relation::equal;
    if (rel == lp::relation::equal) {
      double acc = 0.0;
      for (const auto& t : terms) {
        if (r.chance(0.5)) acc += t.value;
      }
      out.m.add_row(terms, rel, acc);
    } else {
      out.m.add_row(terms, rel, rhs);
    }
  }
  return out;
}

class CutsOnVsOff : public ::testing::TestWithParam<int> {};

TEST_P(CutsOnVsOff, OutcomesAreIdenticalOnRandomBips) {
  // Cover/clique cuts are valid inequalities: they may only prune
  // FRACTIONAL vertices, never an integer point, so the solve outcome
  // must be identical with the cut layer on and off.
  rng r(static_cast<std::uint64_t>(GetParam()) * 40427 + 11);
  const int n_vars = static_cast<int>(r.uniform_int(2, 12));
  const int n_rows = static_cast<int>(r.uniform_int(1, 10));
  auto inst = make_random_bip(r, n_vars, n_rows);

  bb_options with_cuts;
  with_cuts.cuts = true;
  bb_options without;
  without.cuts = false;
  const auto w = solve_branch_bound(inst.m, with_cuts);
  const auto c = solve_branch_bound(inst.m, without);

  ASSERT_EQ(w.status, c.status) << "seed=" << GetParam();
  EXPECT_TRUE(w.cuts.empty() == (w.cuts_added == 0)) << "seed=" << GetParam();
  EXPECT_EQ(c.cuts_added, 0) << "seed=" << GetParam();
  if (w.status == milp_status::optimal) {
    EXPECT_NEAR(w.objective, c.objective, 1e-6)
        << "seed=" << GetParam();
    EXPECT_NEAR(w.best_bound, c.best_bound, 1e-6) << "seed=" << GetParam();
    EXPECT_TRUE(inst.m.is_feasible(w.x, 1e-6)) << "seed=" << GetParam();
    EXPECT_TRUE(inst.m.is_feasible(c.x, 1e-6)) << "seed=" << GetParam();
  }
}

TEST_P(CutsOnVsOff, EngineReportsWarmSolves) {
  // Any search that branches must re-solve children from the parent
  // basis; only the root separation solver (and fallback restarts) may
  // cold-solve. With cuts off, the LP solve count is exactly the node
  // count plus the one root separation solve.
  rng r(static_cast<std::uint64_t>(GetParam()) * 88811 + 3);
  auto inst = make_random_bip(r, 10, 6);
  bb_options opts;
  opts.cuts = false;
  opts.use_presolve = false;  // keep the node structure un-reduced
  opts.rounding_heuristic = false;
  const auto w = solve_branch_bound(inst.m, opts);
  if (w.nodes > 1) {
    EXPECT_GT(w.warm_solves, 0) << "seed=" << GetParam();
  }
  if (w.waves > 0) {
    EXPECT_EQ(w.nodes + 1, w.warm_solves + w.cold_solves)
        << "seed=" << GetParam();
  } else {
    // Root-terminal solve (infeasible/unbounded relaxation): the one
    // separation-solver cold solve is the whole search.
    EXPECT_EQ(w.nodes, 1) << "seed=" << GetParam();
    EXPECT_EQ(w.warm_solves + w.cold_solves, 1) << "seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CutsOnVsOff, ::testing::Range(0, 40));

/// A deliberately symmetric model: the min-makespan shape of Eq. 11 —
/// place T weighted "targets" on B identical "buses" minimizing the
/// maximum bus load. Fully bus-permutation symmetric and fractional at
/// the root, so the plain tree re-explores every permutation orbit. The
/// symmetry group declaration must not change the optimum, and must
/// shrink the tree.
model make_symmetric_model(int T, int B, bool declare_group) {
  model m;
  std::vector<std::vector<int>> x(static_cast<std::size_t>(T));
  for (int i = 0; i < T; ++i) {
    for (int k = 0; k < B; ++k) {
      x[static_cast<std::size_t>(i)].push_back(m.add_binary(0.0));
    }
  }
  const int z = m.add_continuous(0.0, lp::infinity, 1.0, "makespan");
  for (int i = 0; i < T; ++i) {
    std::vector<lp::term> row;
    for (int k = 0; k < B; ++k) {
      row.push_back({x[static_cast<std::size_t>(i)]
                      [static_cast<std::size_t>(k)],
                     1.0});
    }
    m.add_row(row, lp::relation::equal, 1.0);
  }
  for (int k = 0; k < B; ++k) {
    std::vector<lp::term> load;
    for (int i = 0; i < T; ++i) {
      load.push_back({x[static_cast<std::size_t>(i)]
                       [static_cast<std::size_t>(k)],
                      static_cast<double>(3 + i)});
    }
    load.push_back({z, -1.0});
    m.add_row(load, lp::relation::less_equal, 0.0);
  }
  if (declare_group) {
    std::vector<std::vector<int>> blocks(static_cast<std::size_t>(B));
    for (int k = 0; k < B; ++k) {
      for (int i = 0; i < T; ++i) {
        blocks[static_cast<std::size_t>(k)].push_back(
            x[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)]);
      }
    }
    m.add_symmetry_group(std::move(blocks));
  }
  return m;
}

TEST(SymmetryBreaking, PreservesTheOptimumAndPrunesTheTree) {
  const auto plain = make_symmetric_model(7, 3, false);
  const auto broken = make_symmetric_model(7, 3, true);
  bb_options opts;
  opts.rounding_heuristic = false;  // measure the tree, not the heuristic
  opts.cuts = false;  // ...and not the cut layer (it reshapes both trees)
  const auto a = solve_branch_bound(plain, opts);
  const auto b = solve_branch_bound(broken, opts);
  ASSERT_EQ(a.status, milp_status::optimal);
  ASSERT_EQ(b.status, milp_status::optimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-6);
  EXPECT_LT(b.nodes, a.nodes);
  EXPECT_TRUE(broken.is_feasible(b.x, 1e-6));
}

TEST(SymmetryBreaking, LexRowsAppearInPresolve) {
  const auto broken = make_symmetric_model(4, 3, true);
  const auto plain = make_symmetric_model(4, 3, false);
  const auto pb = presolve(broken);
  const auto pp = presolve(plain);
  ASSERT_FALSE(pb.proven_infeasible);
  // B-1 = 2 lexicographic ordering rows between consecutive blocks, and
  // nothing else changes (the lex rows cannot tighten free binaries).
  EXPECT_EQ(pb.reduced.num_rows(), pp.reduced.num_rows() + 2);
}

TEST(SymmetryBreaking, RejectsMalformedGroups) {
  model m;
  const int a = m.add_binary(1.0);
  const int b = m.add_binary(1.0);
  const int c = m.add_continuous(0.0, 1.0, 1.0);
  EXPECT_THROW(m.add_symmetry_group({{a}}), invalid_argument_error);
  EXPECT_THROW(m.add_symmetry_group({{a}, {b, a}}), invalid_argument_error);
  EXPECT_THROW(m.add_symmetry_group({{a}, {c}}), invalid_argument_error);
  EXPECT_THROW(m.add_symmetry_group({{a}, {99}}), invalid_argument_error);
  // A well-formed group is accepted and recorded.
  m.add_symmetry_group({{a}, {b}});
  EXPECT_EQ(m.symmetry_groups().size(), 1u);
}

}  // namespace
}  // namespace stx::milp
