// Property test: branch & bound agrees with exhaustive enumeration on
// random small 0/1 programs.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "milp/branch_bound.h"
#include "milp/model.h"
#include "util/random.h"

namespace stx::milp {
namespace {

struct random_bip {
  model m;
  int n_vars = 0;
};

random_bip make_random_bip(rng& r, int n_vars, int n_rows) {
  random_bip out;
  out.n_vars = n_vars;
  for (int v = 0; v < n_vars; ++v) {
    out.m.add_binary(r.uniform(-5.0, 5.0));
  }
  for (int rr = 0; rr < n_rows; ++rr) {
    std::vector<lp::term> terms;
    for (int v = 0; v < n_vars; ++v) {
      if (r.chance(0.5)) terms.push_back({v, r.uniform(-4.0, 4.0)});
    }
    if (terms.empty()) continue;
    const int kind = static_cast<int>(r.uniform_int(0, 2));
    const double rhs = r.uniform(-3.0, 5.0);
    const auto rel = kind == 0   ? lp::relation::less_equal
                     : kind == 1 ? lp::relation::greater_equal
                                 : lp::relation::equal;
    // Equality rows with random continuous rhs are almost surely
    // unsatisfiable over 0/1 points; use integer-combination rhs instead.
    if (rel == lp::relation::equal) {
      double acc = 0.0;
      for (const auto& t : terms) {
        if (r.chance(0.5)) acc += t.value;
      }
      out.m.add_row(terms, rel, acc);
    } else {
      out.m.add_row(terms, rel, rhs);
    }
  }
  return out;
}

/// Exhaustively enumerate all 2^n binary points.
struct brute_result {
  bool feasible = false;
  double objective = std::numeric_limits<double>::infinity();
};

brute_result brute_force(const model& m, int n_vars) {
  brute_result out;
  std::vector<double> x(static_cast<std::size_t>(n_vars), 0.0);
  for (int mask = 0; mask < (1 << n_vars); ++mask) {
    for (int v = 0; v < n_vars; ++v) {
      x[static_cast<std::size_t>(v)] = (mask >> v) & 1 ? 1.0 : 0.0;
    }
    if (!m.is_feasible(x, 1e-7)) continue;
    out.feasible = true;
    out.objective =
        std::min(out.objective, m.relaxation().objective_value(x));
  }
  return out;
}

class MilpVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(MilpVsBruteForce, OptimalObjectiveMatchesEnumeration) {
  rng r(static_cast<std::uint64_t>(GetParam()) * 6007 + 101);
  const int n_vars = static_cast<int>(r.uniform_int(2, 12));
  const int n_rows = static_cast<int>(r.uniform_int(1, 10));
  auto inst = make_random_bip(r, n_vars, n_rows);

  const auto expected = brute_force(inst.m, n_vars);
  const auto res = solve_branch_bound(inst.m);

  if (!expected.feasible) {
    EXPECT_EQ(res.status, milp_status::infeasible) << "seed=" << GetParam();
  } else {
    ASSERT_EQ(res.status, milp_status::optimal) << "seed=" << GetParam();
    EXPECT_NEAR(res.objective, expected.objective, 1e-5)
        << "seed=" << GetParam();
    EXPECT_TRUE(inst.m.is_feasible(res.x, 1e-5)) << "seed=" << GetParam();
  }
}

TEST_P(MilpVsBruteForce, FeasibilityModeAgreesWithEnumeration) {
  rng r(static_cast<std::uint64_t>(GetParam()) * 15485863 + 19);
  const int n_vars = static_cast<int>(r.uniform_int(2, 10));
  const int n_rows = static_cast<int>(r.uniform_int(1, 8));
  auto inst = make_random_bip(r, n_vars, n_rows);

  const auto expected = brute_force(inst.m, n_vars);
  bb_options opts;
  opts.feasibility_only = true;
  const auto res = solve_branch_bound(inst.m, opts);

  if (expected.feasible) {
    ASSERT_EQ(res.status, milp_status::optimal) << "seed=" << GetParam();
    EXPECT_TRUE(inst.m.is_feasible(res.x, 1e-5)) << "seed=" << GetParam();
  } else {
    EXPECT_EQ(res.status, milp_status::infeasible) << "seed=" << GetParam();
  }
}

TEST_P(MilpVsBruteForce, PresolveOffAgreesWithPresolveOn) {
  rng r(static_cast<std::uint64_t>(GetParam()) * 2097593 + 5);
  const int n_vars = static_cast<int>(r.uniform_int(2, 9));
  const int n_rows = static_cast<int>(r.uniform_int(1, 7));
  auto inst = make_random_bip(r, n_vars, n_rows);

  bb_options on;
  bb_options off;
  off.use_presolve = false;
  const auto r_on = solve_branch_bound(inst.m, on);
  const auto r_off = solve_branch_bound(inst.m, off);
  EXPECT_EQ(r_on.status, r_off.status) << "seed=" << GetParam();
  if (r_on.status == milp_status::optimal) {
    EXPECT_NEAR(r_on.objective, r_off.objective, 1e-5)
        << "seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpVsBruteForce, ::testing::Range(0, 50));

}  // namespace
}  // namespace stx::milp
