// The deterministic-parallelism contract of the wave-parallel branch &
// bound: for any (model, options), `bb_result` is bit-identical across
// worker thread counts — every field, doubles compared exactly. Pinned
// on random BIPs, the Eq. 11 binding / Eq. 3-9 feasibility models of
// every built-in app, and 40 pinned-seed testkit scenarios, so a future
// scheduling change that leaks thread count into the search order fails
// here and not in a flaky downstream sweep. Also pins the root cut
// layer's validity (cuts are satisfied by every integer-feasible point)
// and portfolio-mode agreement with the single-engine paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "milp/branch_bound.h"
#include "milp/model.h"
#include "testkit/scenario.h"
#include "util/random.h"
#include "workloads/mpsoc_apps.h"
#include "xbar/bb_solver.h"
#include "xbar/flow.h"
#include "xbar/milp_formulation.h"
#include "xbar/synthesis.h"

namespace stx::milp {
namespace {

model make_random_bip(rng& r, int n_vars, int n_rows) {
  model m;
  for (int v = 0; v < n_vars; ++v) m.add_binary(r.uniform(-5.0, 5.0));
  for (int rr = 0; rr < n_rows; ++rr) {
    std::vector<lp::term> terms;
    for (int v = 0; v < n_vars; ++v) {
      if (r.chance(0.5)) terms.push_back({v, r.uniform(-4.0, 4.0)});
    }
    if (terms.empty()) continue;
    const auto rel = r.chance(0.5) ? lp::relation::less_equal
                                   : lp::relation::greater_equal;
    m.add_row(terms, rel, r.uniform(-3.0, 5.0));
  }
  return m;
}

/// Packing-structured instance (maximise profit under knapsack rows):
/// the shape whose LP relaxations actually separate cover/clique cuts —
/// the mixed-sign BIPs above almost never do.
model make_random_packing(rng& r, int n_vars, int n_rows) {
  model m;
  for (int v = 0; v < n_vars; ++v) m.add_binary(-r.uniform(1.0, 10.0));
  for (int rr = 0; rr < n_rows; ++rr) {
    std::vector<lp::term> terms;
    for (int v = 0; v < n_vars; ++v) {
      if (r.chance(0.6)) terms.push_back({v, r.uniform(1.0, 6.0)});
    }
    if (terms.size() < 2) continue;
    double sum = 0.0;
    for (const auto& t : terms) sum += t.value;
    m.add_row(terms, lp::relation::less_equal, r.uniform(0.3, 0.7) * sum);
  }
  return m;
}

/// Field-exact equality over everything bb_result promises deterministic
/// (which is everything it carries — timing telemetry lives in obs).
void expect_identical(const bb_result& a, const bb_result& b,
                      const std::string& what) {
  EXPECT_EQ(a.status, b.status) << what;
  EXPECT_EQ(a.objective, b.objective) << what;
  EXPECT_EQ(a.x, b.x) << what;
  EXPECT_EQ(a.nodes, b.nodes) << what;
  EXPECT_EQ(a.lp_iterations, b.lp_iterations) << what;
  EXPECT_EQ(a.best_bound, b.best_bound) << what;
  EXPECT_EQ(a.warm_solves, b.warm_solves) << what;
  EXPECT_EQ(a.cold_solves, b.cold_solves) << what;
  EXPECT_EQ(a.pseudocost_updates, b.pseudocost_updates) << what;
  EXPECT_EQ(a.max_heap_depth, b.max_heap_depth) << what;
  EXPECT_EQ(a.dual_pivots, b.dual_pivots) << what;
  EXPECT_EQ(a.refactorizations, b.refactorizations) << what;
  EXPECT_EQ(a.cuts_added, b.cuts_added) << what;
  EXPECT_EQ(a.waves, b.waves) << what;
  ASSERT_EQ(a.cuts.size(), b.cuts.size()) << what;
  for (std::size_t c = 0; c < a.cuts.size(); ++c) {
    EXPECT_EQ(a.cuts[c].rhs, b.cuts[c].rhs) << what;
    ASSERT_EQ(a.cuts[c].terms.size(), b.cuts[c].terms.size()) << what;
    for (std::size_t t = 0; t < a.cuts[c].terms.size(); ++t) {
      EXPECT_EQ(a.cuts[c].terms[t].var, b.cuts[c].terms[t].var)
          << what;
      EXPECT_EQ(a.cuts[c].terms[t].value, b.cuts[c].terms[t].value) << what;
    }
  }
}

/// Solves `m` at 1/2/8 threads and requires bit-identical results.
void check_thread_identity(const model& m, bb_options opts,
                           const std::string& what) {
  opts.time_limit_sec = 0.0;  // a fired wall clock is the one allowed
                              // source of divergence; exclude it
  opts.threads = 1;
  const auto base = solve_branch_bound(m, opts);
  for (const int threads : {2, 8}) {
    opts.threads = threads;
    expect_identical(base, solve_branch_bound(m, opts),
                     what + " @" + std::to_string(threads) + " threads");
  }
}

TEST(ParallelBranchBound, RandomBipsBitIdenticalAcrossThreadCounts) {
  for (int seed = 0; seed < 25; ++seed) {
    rng r(static_cast<std::uint64_t>(seed) * 7919 + 3);
    const int n_vars = static_cast<int>(r.uniform_int(4, 18));
    const int n_rows = static_cast<int>(r.uniform_int(2, 14));
    const auto m = make_random_bip(r, n_vars, n_rows);
    check_thread_identity(m, {}, "bip seed " + std::to_string(seed));
  }
  // Packing instances exercise the root cut layer under parallelism.
  for (int seed = 0; seed < 10; ++seed) {
    rng r(static_cast<std::uint64_t>(seed) * 90001 + 17);
    const auto m = make_random_packing(
        r, static_cast<int>(r.uniform_int(6, 16)),
        static_cast<int>(r.uniform_int(2, 8)));
    check_thread_identity(m, {}, "packing seed " + std::to_string(seed));
  }
}

TEST(ParallelBranchBound, FeasibilityModeBitIdenticalAcrossThreadCounts) {
  for (int seed = 0; seed < 10; ++seed) {
    rng r(static_cast<std::uint64_t>(seed) * 104729 + 11);
    const auto m = make_random_bip(r, static_cast<int>(r.uniform_int(6, 16)),
                                   static_cast<int>(r.uniform_int(3, 12)));
    bb_options opts;
    opts.feasibility_only = true;
    check_thread_identity(m, opts, "feas bip seed " + std::to_string(seed));
  }
}

/// The paper models: request-direction binding MILP (small apps) or
/// compact feasibility MILP (the two the Eq. 11 model would dwarf), one
/// per built-in application. Node-capped so the hard ones stay bounded —
/// a `limit` result must be bit-identical too.
TEST(ParallelBranchBound, EveryBuiltInAppModelBitIdentical) {
  for (const auto& name : workloads::app_names()) {
    const auto app = *workloads::make_app_by_name(name);
    xbar::flow_options fopts;
    fopts.horizon = 4'000;
    const auto traces = xbar::collect_traces(app, fopts);
    const auto input = xbar::input_from_trace(
        traces.request, xbar::effective_synthesis_params(fopts, true));
    bb_options opts;
    opts.max_nodes = 2'000;
    if (app.num_targets <= 12) {
      xbar::synthesis_options so;
      so.params = input.params();
      so.limits.time_limit_sec = 0.0;  // node budgets only: no ASan flakes
      const int buses = xbar::min_feasible_buses(input, so);
      check_thread_identity(xbar::build_binding_milp(input, buses).model,
                            opts, name + " binding");
    } else {
      opts.feasibility_only = true;
      check_thread_identity(
          xbar::build_feasibility_milp(input, xbar::lower_bound_buses(input))
              .model,
          opts, name + " feasibility");
    }
  }
}

TEST(ParallelBranchBound, PinnedScenarioModelsBitIdentical) {
  for (int s = 0; s < 40; ++s) {
    rng r(0xD1CE'0000ull + static_cast<unsigned>(s));
    auto sc = testkit::sample_scenario(r);
    sc.horizon = std::min<traffic::cycle_t>(sc.horizon, 6'000);
    const auto app = sc.make_app();
    const auto fopts = sc.make_flow_options();
    const auto traces = xbar::collect_traces(app, fopts);
    const auto input = xbar::input_from_trace(
        traces.request, xbar::effective_synthesis_params(fopts, true));
    xbar::synthesis_options so;
    so.params = input.params();
    so.limits.time_limit_sec = 0.0;  // node budgets only: no ASan flakes
    const int buses = xbar::min_feasible_buses(input, so);
    bb_options opts;
    opts.max_nodes = 1'000;
    check_thread_identity(xbar::build_binding_milp(input, buses).model, opts,
                          sc.name());
  }
}

/// Root cover/clique cuts must be valid inequalities: every
/// integer-feasible point of the model satisfies every pooled cut.
/// Checked in the original variable space (presolve off, so the pool's
/// variable indices are the model's).
TEST(ParallelBranchBound, RootCutsAreValidForEveryIntegerPoint) {
  std::int64_t total_cuts = 0;
  for (int seed = 0; seed < 20; ++seed) {
    rng r(static_cast<std::uint64_t>(seed) * 50021 + 7);
    const int n_vars = static_cast<int>(r.uniform_int(4, 12));
    const auto m = make_random_packing(
        r, n_vars, static_cast<int>(r.uniform_int(3, 10)));
    bb_options opts;
    opts.use_presolve = false;
    const auto res = solve_branch_bound(m, opts);
    EXPECT_EQ(res.cuts_added,
              static_cast<std::int64_t>(res.cuts.size()));
    total_cuts += res.cuts_added;

    std::vector<double> x(static_cast<std::size_t>(n_vars), 0.0);
    for (int mask = 0; mask < (1 << n_vars); ++mask) {
      for (int v = 0; v < n_vars; ++v) {
        x[static_cast<std::size_t>(v)] = (mask >> v) & 1 ? 1.0 : 0.0;
      }
      if (!m.is_feasible(x, 1e-7)) continue;
      for (const auto& cut : res.cuts) {
        double lhs = 0.0;
        for (const auto& t : cut.terms) {
          lhs += t.value * x[static_cast<std::size_t>(t.var)];
        }
        EXPECT_LE(lhs, cut.rhs + 1e-6)
            << "seed " << seed << ": cut violated by a feasible point";
      }
    }
  }
  EXPECT_GT(total_cuts, 0) << "no seed separated any cut: vacuous test";
}

/// Portfolio mode races the specialised feasibility search against the
/// generic MILP; both are exact, so the synthesised design (bus count,
/// binding, objective) must match the single-engine runs exactly.
TEST(ParallelBranchBound, PortfolioAgreesWithBothEngines) {
  std::vector<std::pair<std::string, workloads::app_spec>> apps;
  for (const auto& name : {"mat2", "qsort"}) {
    apps.emplace_back(name, *workloads::make_app_by_name(name));
  }
  for (int s = 0; s < 3; ++s) {
    rng r(0xF0'1100ull + static_cast<unsigned>(s));
    const auto sc = testkit::sample_scenario(r);
    apps.emplace_back(sc.name(), sc.make_app());
  }
  for (const auto& [name, app] : apps) {
    xbar::flow_options fopts;
    fopts.horizon = 4'000;
    const auto traces = xbar::collect_traces(app, fopts);
    const auto input = xbar::input_from_trace(
        traces.request, xbar::effective_synthesis_params(fopts, true));
    xbar::synthesis_options so;
    so.params = input.params();
    // Node budgets only: the default 60s wall clock turns into a
    // `limit` status (and a failed optimality requirement) on slow
    // sanitizer runs — same discipline as the warm-equivalence test.
    so.limits.time_limit_sec = 0.0;
    const auto specialized = xbar::synthesize(input, so);
    so.solver = xbar::solver_kind::generic_milp;
    const auto generic = xbar::synthesize(input, so);
    so.solver = xbar::solver_kind::specialized;
    so.limits.portfolio = true;
    const auto raced = xbar::synthesize(input, so);
    // Across engines: the proven facts agree (both are exact). The
    // binding vector itself may differ between engines — equal-objective
    // ties break differently — so it is only pinned against the run
    // using the same binding engine as the raced one.
    for (const auto* other : {&specialized, &generic}) {
      EXPECT_EQ(raced.num_buses, other->num_buses) << name;
      EXPECT_EQ(raced.max_overlap, other->max_overlap) << name;
      EXPECT_EQ(raced.binding_optimal, other->binding_optimal) << name;
      EXPECT_EQ(raced.num_conflicts, other->num_conflicts) << name;
    }
    // Portfolio racing only touches the feasibility probes: the binding
    // solve must be byte-for-byte the non-raced specialised one.
    EXPECT_EQ(raced.binding, specialized.binding) << name;
  }
}

}  // namespace
}  // namespace stx::milp
