// Unit tests for the bound-tightening presolve.
#include "milp/presolve.h"

#include <gtest/gtest.h>

#include "milp/branch_bound.h"

namespace stx::milp {
namespace {

TEST(Presolve, FixesEqualBoundVariablesAndSubstitutes) {
  model m;
  const int a = m.add_binary(0);
  const int fixed = m.add_continuous(3, 3, 0);
  m.add_row({{a, 1}, {fixed, 2}}, lp::relation::less_equal, 7);

  const auto pre = presolve(m);
  ASSERT_FALSE(pre.proven_infeasible);
  EXPECT_EQ(pre.var_map[1], -1);
  EXPECT_EQ(pre.fixed_value[1], 3.0);
  // Row becomes a <= 1: redundant against a's bounds, so dropped.
  EXPECT_EQ(pre.reduced.num_rows(), 0);
  EXPECT_EQ(pre.reduced.num_variables(), 1);
}

TEST(Presolve, SingletonRowTightensBound) {
  model m;
  const int x = m.add_continuous(0, 100, 0);
  m.add_row({{x, 2}}, lp::relation::less_equal, 10);  // x <= 5
  const auto pre = presolve(m);
  ASSERT_FALSE(pre.proven_infeasible);
  ASSERT_EQ(pre.reduced.num_variables(), 1);
  EXPECT_NEAR(pre.reduced.relaxation().var(0).upper, 5.0, 1e-9);
  EXPECT_EQ(pre.reduced.num_rows(), 0);  // absorbed into the bound
}

TEST(Presolve, KnapsackFixingRemovesImpossibleItem) {
  // 5a + b <= 4 forces a = 0 for binary a.
  model m;
  const int a = m.add_binary(0);
  const int b = m.add_binary(0);
  (void)b;
  m.add_row({{a, 5}, {b, 1}}, lp::relation::less_equal, 4);
  const auto pre = presolve(m);
  ASSERT_FALSE(pre.proven_infeasible);
  EXPECT_EQ(pre.var_map[0], -1);
  EXPECT_EQ(pre.fixed_value[0], 0.0);
}

TEST(Presolve, ConflictEqualityFixesSharingVariable) {
  // Mirrors Eq. 7 of the paper: s = 0 forced by 1*s == 0.
  model m;
  const int s = m.add_binary(0);
  m.add_row({{s, 1}}, lp::relation::equal, 0);
  const auto pre = presolve(m);
  ASSERT_FALSE(pre.proven_infeasible);
  EXPECT_EQ(pre.var_map[0], -1);
  EXPECT_EQ(pre.fixed_value[0], 0.0);
  EXPECT_EQ(pre.reduced.num_variables(), 0);
}

TEST(Presolve, CascadesThroughLinearization) {
  // sb fixed to zero cascades into x_i + x_j - 1 <= sb -> x_i + x_j <= 1.
  model m;
  const int xi = m.add_binary(0);
  const int xj = m.add_binary(0);
  const int sb = m.add_binary(0);
  m.add_row({{sb, 1}}, lp::relation::equal, 0);
  m.add_row({{xi, 1}, {xj, 1}, {sb, -1}}, lp::relation::less_equal, 1);
  m.add_row({{xi, 1}}, lp::relation::greater_equal, 1);  // xi = 1
  const auto pre = presolve(m);
  ASSERT_FALSE(pre.proven_infeasible);
  // xi fixed to 1, sb to 0; then xj <= 0 -> fixed to 0.
  EXPECT_EQ(pre.var_map[0], -1);
  EXPECT_EQ(pre.fixed_value[0], 1.0);
  EXPECT_EQ(pre.var_map[1], -1);
  EXPECT_EQ(pre.fixed_value[1], 0.0);
  EXPECT_EQ(pre.var_map[2], -1);
}

TEST(Presolve, ProvesInfeasibilityFromBounds) {
  model m;
  const int a = m.add_binary(0);
  const int b = m.add_binary(0);
  m.add_row({{a, 1}, {b, 1}}, lp::relation::greater_equal, 3);
  EXPECT_TRUE(presolve(m).proven_infeasible);
}

TEST(Presolve, IntegerBoundsRoundInward) {
  model m;
  const int x = m.add_integer(0.3, 4.7, 0);
  (void)x;
  const auto pre = presolve(m);
  ASSERT_FALSE(pre.proven_infeasible);
  EXPECT_EQ(pre.reduced.relaxation().var(0).lower, 1.0);
  EXPECT_EQ(pre.reduced.relaxation().var(0).upper, 4.0);
}

TEST(Presolve, ExpandRebuildsOriginalSpace) {
  model m;
  m.add_binary(0);                // stays
  m.add_continuous(2, 2, 0);      // fixed
  m.add_binary(0);                // stays
  const auto pre = presolve(m);
  const auto x = pre.expand({1.0, 0.0});
  ASSERT_EQ(x.size(), 3u);
  EXPECT_EQ(x[0], 1.0);
  EXPECT_EQ(x[1], 2.0);
  EXPECT_EQ(x[2], 0.0);
}

TEST(Presolve, SolverAgreesWithAndWithoutPresolve) {
  model m;
  const int a = m.add_binary(-3);
  const int b = m.add_binary(-2);
  const int c = m.add_binary(-1);
  const int s = m.add_binary(0);
  m.add_row({{s, 1}}, lp::relation::equal, 0);
  m.add_row({{a, 1}, {b, 1}, {s, -1}}, lp::relation::less_equal, 1);
  m.add_row({{b, 1}, {c, 1}}, lp::relation::less_equal, 1);

  bb_options with;
  bb_options without;
  without.use_presolve = false;
  const auto r1 = solve_branch_bound(m, with);
  const auto r2 = solve_branch_bound(m, without);
  ASSERT_EQ(r1.status, milp_status::optimal);
  ASSERT_EQ(r2.status, milp_status::optimal);
  EXPECT_NEAR(r1.objective, r2.objective, 1e-6);
}

}  // namespace
}  // namespace stx::milp
