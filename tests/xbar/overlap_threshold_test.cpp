// Edge values of design_params::overlap_threshold (Sec. 7.4): at 0.0
// every overlapping pair conflicts; above 0.5 the pre-processing adds no
// constraint beyond the Eq. 4 bandwidth limit (two streams overlapping
// more than half a window cannot share a bus anyway).
#include <gtest/gtest.h>

#include <random>

#include "traffic/windows.h"
#include "xbar/problem.h"

namespace stx::xbar {
namespace {

constexpr cycle_t kWS = 100;

design_params params_with_threshold(double th) {
  design_params p;
  p.window_size = kWS;
  p.overlap_threshold = th;
  p.separate_critical = false;  // isolate the overlap-threshold rule
  return p;
}

traffic::trace mixed_trace() {
  traffic::trace t(/*num_targets=*/4, /*num_initiators=*/1,
                   /*horizon=*/2 * kWS);
  // Window 0: targets 0 and 1 overlap for 10 cycles; target 2 is busy but
  // disjoint from both; target 3 idle.
  t.add({0, 0, 0, 50, false});
  t.add({1, 0, 40, 60, false});
  t.add({2, 0, 60, 90, false});
  // Window 1: targets 2 and 3 overlap for 20 cycles.
  t.add({2, 0, 100, 130, false});
  t.add({3, 0, 110, 160, false});
  return t;
}

TEST(OverlapThreshold, ZeroConflictsEveryOverlappingPair) {
  const auto t = mixed_trace();
  const traffic::window_analysis wa(t, kWS);
  const synthesis_input input(wa, params_with_threshold(0.0));

  for (int i = 0; i < input.num_targets(); ++i) {
    for (int j = i + 1; j < input.num_targets(); ++j) {
      EXPECT_EQ(input.conflict(i, j), wa.max_window_overlap(i, j) > 0)
          << "pair (" << i << "," << j << ")";
    }
  }
  // Sanity: the trace has both kinds of pairs.
  EXPECT_TRUE(input.conflict(0, 1));
  EXPECT_TRUE(input.conflict(2, 3));
  EXPECT_FALSE(input.conflict(0, 2));
  EXPECT_FALSE(input.conflict(0, 3));
}

TEST(OverlapThreshold, ExactlyHalfWindowNeverTriggersAboveHalf) {
  traffic::trace t(2, 1, kWS);
  // Both targets busy [0, 50): overlap exactly WS/2.
  t.add({0, 0, 0, 50, false});
  t.add({1, 0, 0, 50, false});
  const traffic::window_analysis wa(t, kWS);
  ASSERT_EQ(wa.max_window_overlap(0, 1), kWS / 2);

  for (double th : {0.5, 0.51, 0.75, 1.0}) {
    const synthesis_input input(wa, params_with_threshold(th));
    EXPECT_FALSE(input.conflict(0, 1)) << "threshold " << th;
  }
  // Control: below half it does trigger.
  const synthesis_input tight(wa, params_with_threshold(0.25));
  EXPECT_TRUE(tight.conflict(0, 1));
}

// The Sec. 7.4 claim, stated precisely: with threshold > 0.5, any pair
// the pre-processing marks conflicting is already unable to share a bus
// because some window's combined demand exceeds the bus bandwidth. So the
// conflict rule never removes a binding that Eq. 4 would admit.
TEST(OverlapThreshold, AboveHalfAddsNothingBeyondBandwidth) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> start_dist(0, 9 * kWS);
  std::uniform_int_distribution<int> len_dist(1, 2 * kWS);

  for (int trial = 0; trial < 20; ++trial) {
    traffic::trace t(/*num_targets=*/6, /*num_initiators=*/1,
                     /*horizon=*/10 * kWS);
    for (int e = 0; e < 30; ++e) {
      const int tgt = static_cast<int>(rng() % 6);
      const cycle_t begin = start_dist(rng);
      const cycle_t end = begin + len_dist(rng);
      t.add({tgt, 0, begin, end, false});
    }
    const traffic::window_analysis wa(t, kWS);

    for (double th : {0.51, 0.6, 0.75, 0.99}) {
      const synthesis_input input(wa, params_with_threshold(th));
      for (int i = 0; i < input.num_targets(); ++i) {
        for (int j = i + 1; j < input.num_targets(); ++j) {
          if (!input.conflict(i, j)) continue;
          bool bandwidth_excludes = false;
          for (int m = 0; m < input.num_windows(); ++m) {
            if (input.comm(i, m) + input.comm(j, m) > input.capacity(m)) {
              bandwidth_excludes = true;
              break;
            }
          }
          EXPECT_TRUE(bandwidth_excludes)
              << "trial " << trial << " threshold " << th << " pair (" << i
              << "," << j << ") conflicts without a bandwidth violation";
        }
      }
    }
  }
}

TEST(OverlapThreshold, FullWindowOverlapStillConflictsAboveHalf) {
  traffic::trace t(2, 1, kWS);
  t.add({0, 0, 0, kWS, false});
  t.add({1, 0, 0, kWS, false});
  const traffic::window_analysis wa(t, kWS);
  // Overlap is the whole window: above any threshold < 1.0, and the pair
  // indeed cannot share a bus (comm sums to 2*WS).
  const synthesis_input input(wa, params_with_threshold(0.75));
  EXPECT_TRUE(input.conflict(0, 1));
  EXPECT_GT(input.comm(0, 0) + input.comm(1, 0), input.capacity(0));
}

}  // namespace
}  // namespace stx::xbar
