// Unit tests for the synthesis input / pre-processing phase.
#include "xbar/problem.h"

#include <gtest/gtest.h>

#include "traffic/windows.h"
#include "util/error.h"

namespace stx::xbar {
namespace {

/// Hand-built trace: 3 targets, horizon 200, two 100-cycle windows.
/// Target 0: [0,60). Target 1: [30,90). Target 2: [150,180).
traffic::trace make_trace() {
  traffic::trace t(3, 1, 200);
  t.add({0, 0, 0, 60, false});
  t.add({1, 0, 30, 90, false});
  t.add({2, 0, 150, 180, false});
  return t;
}

design_params params_with(double threshold, int maxtb = 0) {
  design_params p;
  p.window_size = 100;
  p.overlap_threshold = threshold;
  p.max_targets_per_bus = maxtb;
  return p;
}

TEST(SynthesisInput, CopiesCommAndOverlapMatrices) {
  const traffic::window_analysis wa(make_trace(), 100);
  const synthesis_input in(wa, params_with(0.5));
  EXPECT_EQ(in.num_targets(), 3);
  EXPECT_EQ(in.num_windows(), 2);
  EXPECT_EQ(in.comm(0, 0), 60);
  EXPECT_EQ(in.comm(0, 1), 0);
  EXPECT_EQ(in.comm(2, 1), 30);
  EXPECT_EQ(in.om(0, 1), 30);  // [30,60)
  EXPECT_EQ(in.om(0, 2), 0);
  EXPECT_EQ(in.om(1, 0), in.om(0, 1));
  EXPECT_EQ(in.om(0, 0), 0);
}

TEST(SynthesisInput, ThresholdIsStrictlyExceeded) {
  // Overlap(0,1) in window 0 is 30 cycles = 0.30 of WS.
  const traffic::window_analysis wa(make_trace(), 100);
  const synthesis_input at_threshold(wa, params_with(0.30));
  EXPECT_FALSE(at_threshold.conflict(0, 1));  // 30 > 30 is false
  const synthesis_input below(wa, params_with(0.29));
  EXPECT_TRUE(below.conflict(0, 1));  // 30 > 29
  EXPECT_EQ(below.num_conflicts(), 1);
}

TEST(SynthesisInput, OverlapConflictsCanBeDisabled) {
  const traffic::window_analysis wa(make_trace(), 100);
  auto p = params_with(0.0);
  p.use_overlap_conflicts = false;
  const synthesis_input in(wa, p);
  EXPECT_EQ(in.num_conflicts(), 0);
}

TEST(SynthesisInput, CriticalOverlapForcesConflict) {
  traffic::trace t(2, 1, 100);
  t.add({0, 0, 0, 50, true});
  t.add({1, 0, 25, 75, true});
  const traffic::window_analysis wa(t, 100);
  auto p = params_with(1.0);  // overlap threshold never fires
  const synthesis_input in(wa, p);
  EXPECT_TRUE(in.conflict(0, 1));

  auto p2 = p;
  p2.separate_critical = false;
  const synthesis_input in2(wa, p2);
  EXPECT_FALSE(in2.conflict(0, 1));
}

TEST(SynthesisInput, BindingFeasibilityChecksAllConstraints) {
  const traffic::window_analysis wa(make_trace(), 100);
  const synthesis_input in(wa, params_with(0.5));

  // Bandwidth: window 0 has comm 60 + 60 = 120 > 100 for targets {0,1}.
  EXPECT_FALSE(in.binding_feasible({0, 0, 0}, 1));
  EXPECT_TRUE(in.binding_feasible({0, 1, 0}, 2));
  EXPECT_TRUE(in.binding_feasible({0, 1, 1}, 2));

  // Shape errors.
  EXPECT_FALSE(in.binding_feasible({0, 1}, 2));      // wrong size
  EXPECT_FALSE(in.binding_feasible({0, 1, 5}, 2));   // bus out of range
  EXPECT_FALSE(in.binding_feasible({0, 1, -1}, 2));  // negative bus
}

TEST(SynthesisInput, MaxTbLimitsBusPopulation) {
  const traffic::window_analysis wa(make_trace(), 100);
  const synthesis_input in(wa, params_with(0.5, /*maxtb=*/1));
  EXPECT_FALSE(in.binding_feasible({0, 1, 0}, 2));  // bus 0 holds 2 > 1
  EXPECT_TRUE(in.binding_feasible({0, 1, 2}, 3));
}

TEST(SynthesisInput, ConflictBlocksSharedBus) {
  const traffic::window_analysis wa(make_trace(), 100);
  const synthesis_input in(wa, params_with(0.1));  // 0-1 conflict
  ASSERT_TRUE(in.conflict(0, 1));
  EXPECT_FALSE(in.binding_feasible({0, 0, 1}, 2));
  EXPECT_TRUE(in.binding_feasible({0, 1, 0}, 2));
}

TEST(SynthesisInput, MaxBusOverlapMatchesHandComputation) {
  const traffic::window_analysis wa(make_trace(), 100);
  const synthesis_input in(wa, params_with(0.5));
  // Targets 0,1 share bus 0 -> overlap 30. Target 2 alone -> 0.
  EXPECT_EQ(in.max_bus_overlap({0, 0, 1}, 2), 30);
  EXPECT_EQ(in.max_bus_overlap({0, 1, 1}, 2), 0);
  EXPECT_EQ(in.max_bus_overlap({0, 0, 0}, 1), 30);
}

TEST(SynthesisInput, DirectConstructionValidates) {
  design_params p;
  p.window_size = 100;
  const std::vector<std::vector<cycle_t>> comm = {{50, 10}, {40, 0}};
  const std::vector<std::vector<cycle_t>> om = {{0, 20}, {20, 0}};
  const std::vector<std::vector<bool>> conf = {{false, false},
                                               {false, false}};
  const synthesis_input in(comm, om, conf, 100, p);
  EXPECT_EQ(in.num_targets(), 2);
  EXPECT_EQ(in.num_windows(), 2);
  EXPECT_EQ(in.om(0, 1), 20);

  // Asymmetric om rejected.
  const std::vector<std::vector<cycle_t>> bad_om = {{0, 20}, {10, 0}};
  EXPECT_THROW(synthesis_input(comm, bad_om, conf, 100, p),
               invalid_argument_error);
  // comm above the window size rejected.
  const std::vector<std::vector<cycle_t>> bad_comm = {{150, 10}, {40, 0}};
  EXPECT_THROW(synthesis_input(bad_comm, om, conf, 100, p),
               invalid_argument_error);
  // Nonzero diagonal rejected.
  const std::vector<std::vector<cycle_t>> diag_om = {{5, 20}, {20, 0}};
  EXPECT_THROW(synthesis_input(comm, diag_om, conf, 100, p),
               invalid_argument_error);
}

}  // namespace
}  // namespace stx::xbar
