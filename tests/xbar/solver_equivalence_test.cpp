// Property tests: the specialised solver, the paper-faithful MILP and
// brute-force enumeration agree on feasibility, minimum bus count and the
// optimal Eq. 11 objective.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "util/random.h"
#include "xbar/bb_solver.h"
#include "xbar/milp_formulation.h"
#include "xbar/synthesis.h"

namespace stx::xbar {
namespace {

struct random_instance {
  synthesis_input input;
};

synthesis_input make_random_input(rng& r) {
  const int T = static_cast<int>(r.uniform_int(3, 7));
  const int W = static_cast<int>(r.uniform_int(1, 4));
  const cycle_t WS = 100;
  design_params p;
  p.window_size = WS;
  p.max_targets_per_bus =
      r.chance(0.5) ? static_cast<int>(r.uniform_int(2, 4)) : 0;

  std::vector<std::vector<cycle_t>> comm(
      static_cast<std::size_t>(T),
      std::vector<cycle_t>(static_cast<std::size_t>(W), 0));
  for (auto& row : comm) {
    for (auto& c : row) c = r.uniform_int(0, 70);
  }
  std::vector<std::vector<cycle_t>> om(
      static_cast<std::size_t>(T),
      std::vector<cycle_t>(static_cast<std::size_t>(T), 0));
  std::vector<std::vector<bool>> conf(
      static_cast<std::size_t>(T),
      std::vector<bool>(static_cast<std::size_t>(T), false));
  for (int i = 0; i < T; ++i) {
    for (int j = i + 1; j < T; ++j) {
      const auto si = static_cast<std::size_t>(i);
      const auto sj = static_cast<std::size_t>(j);
      om[si][sj] = om[sj][si] = r.uniform_int(0, 50);
      conf[si][sj] = conf[sj][si] = r.chance(0.15);
    }
  }
  return synthesis_input(std::move(comm), std::move(om), std::move(conf),
                         WS, p);
}

/// Exhaustive check: enumerate all B^T bindings.
struct brute_outcome {
  bool feasible = false;
  cycle_t best_overlap = std::numeric_limits<cycle_t>::max();
};

brute_outcome brute_force(const synthesis_input& in, int num_buses) {
  brute_outcome out;
  const int T = in.num_targets();
  std::vector<int> binding(static_cast<std::size_t>(T), 0);
  std::int64_t total = 1;
  for (int i = 0; i < T; ++i) total *= num_buses;
  for (std::int64_t code = 0; code < total; ++code) {
    std::int64_t c = code;
    for (int i = 0; i < T; ++i) {
      binding[static_cast<std::size_t>(i)] =
          static_cast<int>(c % num_buses);
      c /= num_buses;
    }
    if (!in.binding_feasible(binding, num_buses)) continue;
    out.feasible = true;
    out.best_overlap =
        std::min(out.best_overlap, in.max_bus_overlap(binding, num_buses));
  }
  return out;
}

class SolverEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SolverEquivalence, FeasibilityAgreesAcrossAllThreeEngines) {
  rng r(static_cast<std::uint64_t>(GetParam()) * 612371 + 5);
  const auto in = make_random_input(r);
  const int B = static_cast<int>(r.uniform_int(1, 3));

  const auto expected = brute_force(in, B);
  const auto bb = find_feasible_binding(in, B);
  EXPECT_EQ(bb.has_value(), expected.feasible) << "seed " << GetParam();
  if (bb.has_value()) {
    EXPECT_TRUE(in.binding_feasible(*bb, B));
  }

  const auto milp = solve_feasibility_milp(in, B);
  EXPECT_EQ(milp.has_value(), expected.feasible)
      << "MILP disagrees, seed " << GetParam();
}

TEST_P(SolverEquivalence, OptimalOverlapAgreesAcrossAllThreeEngines) {
  rng r(static_cast<std::uint64_t>(GetParam()) * 104147 + 19);
  const auto in = make_random_input(r);
  const int B = static_cast<int>(r.uniform_int(2, 3));

  const auto expected = brute_force(in, B);
  const auto bb = find_min_overlap_binding(in, B);
  ASSERT_EQ(bb.has_value(), expected.feasible) << "seed " << GetParam();
  if (!expected.feasible) return;
  ASSERT_TRUE(bb->proven_optimal);
  EXPECT_EQ(bb->max_overlap, expected.best_overlap)
      << "specialised solver suboptimal, seed " << GetParam();

  const auto milp = solve_binding_milp(in, B);
  ASSERT_TRUE(milp.has_value());
  EXPECT_EQ(milp->max_overlap, expected.best_overlap)
      << "MILP suboptimal, seed " << GetParam();
}

TEST_P(SolverEquivalence, MinimumBusCountAgreesWithLinearScan) {
  rng r(static_cast<std::uint64_t>(GetParam()) * 15551 + 3);
  const auto in = make_random_input(r);

  synthesis_options opts;
  opts.params = in.params();
  const int by_binary = min_feasible_buses(in, opts);

  int by_scan = -1;
  for (int k = 1; k <= in.num_targets(); ++k) {
    if (find_feasible_binding(in, k).has_value()) {
      by_scan = k;
      break;
    }
  }
  ASSERT_GT(by_scan, 0) << "full config must always be feasible";
  EXPECT_EQ(by_binary, by_scan) << "seed " << GetParam();
}

TEST_P(SolverEquivalence, FeasibilityIsMonotoneInBusCount) {
  rng r(static_cast<std::uint64_t>(GetParam()) * 74093 + 29);
  const auto in = make_random_input(r);
  bool was_feasible = false;
  for (int k = 1; k <= in.num_targets(); ++k) {
    const bool now_feasible = find_feasible_binding(in, k).has_value();
    if (was_feasible) {
      EXPECT_TRUE(now_feasible)
          << "monotonicity violated at k=" << k << " seed " << GetParam();
    }
    was_feasible = was_feasible || now_feasible;
  }
  EXPECT_TRUE(was_feasible);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverEquivalence, ::testing::Range(0, 25));

}  // namespace
}  // namespace stx::xbar
