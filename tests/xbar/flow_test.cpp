// Integration tests: the full 4-phase design flow on real applications.
#include "xbar/flow.h"

#include <gtest/gtest.h>

#include "workloads/mpsoc_apps.h"
#include "workloads/synthetic.h"

namespace stx::xbar {
namespace {

flow_options fast_options() {
  flow_options opts;
  opts.horizon = 40'000;
  opts.synth.params.window_size = 400;
  return opts;
}

TEST(Flow, Mat2EndToEnd) {
  const auto report = run_design_flow(workloads::make_mat2(), fast_options());
  EXPECT_EQ(report.app_name, "Mat2");
  EXPECT_EQ(report.full_buses, 21);
  EXPECT_LT(report.designed_buses, report.full_buses);
  EXPECT_GT(report.savings(), 1.5);
  // The designed crossbar must stay within a small factor of full.
  EXPECT_GT(report.designed.avg_latency, 0.0);
  EXPECT_LT(report.designed.avg_latency, report.full.avg_latency * 3.0);
  EXPECT_GT(report.designed.packets, 1000);
  EXPECT_GT(report.full.iterations, 0);
}

TEST(Flow, DesignBeatsAverageBaselineOnLatency) {
  const auto app = workloads::make_mat2();
  auto opts = fast_options();
  const auto traces = collect_traces(app, opts);

  const auto avg_design = design_average_traffic(traces.request);
  const auto avg_resp = design_average_traffic(traces.response);
  const auto avg_metrics = validate_configuration(
      app, avg_design.to_config(opts.policy, opts.transfer_overhead),
      avg_resp.to_config(opts.policy, opts.transfer_overhead), opts);

  const auto report = run_design_flow(app, opts);
  // The window-based design must deliver lower average latency than the
  // average-flow design (the paper's Fig. 4 claim, here as an ordering).
  EXPECT_LT(report.designed.avg_latency, avg_metrics.avg_latency);
  // And the average design uses no more buses (it ignores overlap).
  EXPECT_LE(avg_design.num_buses, report.request_design.num_buses);
}

TEST(Flow, ReportIsDeterministic) {
  const auto a = run_design_flow(workloads::make_qsort(), fast_options());
  const auto b = run_design_flow(workloads::make_qsort(), fast_options());
  EXPECT_EQ(a.designed_buses, b.designed_buses);
  EXPECT_EQ(a.request_design.binding, b.request_design.binding);
  EXPECT_DOUBLE_EQ(a.designed.avg_latency, b.designed.avg_latency);
}

TEST(Flow, PerDirectionWindowOverrides) {
  auto opts = fast_options();
  opts.request_window_override = 800;
  opts.response_window_override = 200;
  const auto report = run_design_flow(workloads::make_des(), opts);
  EXPECT_EQ(report.request_design.params.window_size, 800);
  EXPECT_EQ(report.response_design.params.window_size, 200);
}

TEST(Flow, CriticalStreamsGetLowLatency) {
  const auto app = workloads::make_mat2_critical();
  auto opts = fast_options();
  const auto report = run_design_flow(app, opts);
  // Critical packets must see latency close to the full-crossbar level
  // (Sec. 7.3: "almost equal to the latency of ... a full crossbar").
  EXPECT_GT(report.designed.avg_critical, 0.0);
  EXPECT_LT(report.designed.avg_critical,
            report.full.avg_critical * 2.0 + 10.0);
}

TEST(Flow, SyntheticBenchmarkFlows) {
  workloads::synthetic_params p;
  p.num_cores = 12;
  auto opts = fast_options();
  opts.synth.params.window_size = 2'000;
  const auto report =
      run_design_flow(workloads::make_synthetic(p), opts);
  EXPECT_EQ(report.full_buses, 12);
  EXPECT_LE(report.designed_buses, report.full_buses);
  EXPECT_GT(report.designed.transactions, 0);
}

TEST(Flow, ValidationMetricsAreInternallyConsistent) {
  const auto report = run_design_flow(workloads::make_des(), fast_options());
  for (const auto* m : {&report.designed, &report.full}) {
    EXPECT_LE(m->avg_latency, m->max_latency);
    EXPECT_LE(m->p99_latency, m->max_latency);
    EXPECT_GE(m->p99_latency, m->avg_latency * 0.5);
    EXPECT_GT(m->packets, 0);
    EXPECT_GT(m->transactions, 0);
  }
  EXPECT_EQ(report.full.total_buses, 19);
  EXPECT_EQ(report.designed.total_buses, report.designed_buses);
}

}  // namespace
}  // namespace stx::xbar
