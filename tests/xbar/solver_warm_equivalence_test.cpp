// Warm/cold differential verification of the generic-MILP solver path on
// the real crossbar models: every built-in application plus 40 random
// testkit scenarios, re-solved with the warm-started incremental branch
// & bound and with the legacy cold path, must produce the same OUTCOME —
// same status, same bus count, same optimal Eq. 11 objective, and a
// feasible witness binding from each engine. (The witness binding VECTOR
// may differ when the model has multiple optima; both are verified
// feasible and cost-identical, which is what "same selected design" means
// at the design level: bus count and achieved overlap are what the flow
// consumes.) The exact specialised solver arbitrates: both engines must
// also match its proven optimum, which pins the symmetry-breaking lex
// rows to the paper's optima.
//
// Cost discipline: infeasibility PROOFS are what make the legacy cold
// engine intractable (a complete tree with no incumbent to prune
// against), so the UNSAT differential is gated to small models; the SAT
// and optimality differentials run everywhere the cold engine is sane.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "testkit/scenario.h"
#include "util/random.h"
#include "workloads/mpsoc_apps.h"
#include "xbar/bb_solver.h"
#include "xbar/flow.h"
#include "xbar/milp_formulation.h"
#include "xbar/synthesis.h"

namespace stx::xbar {
namespace {

constexpr int kUnsatMaxTargets = 6;  // UNSAT proofs gate (see header)

/// All solver budgets in this suite are NODE-based (no wall clock):
/// sanitizer builds run 10x slower and a time limit would turn that
/// slowdown into a spurious "hit solver limits" failure. Node counts are
/// machine-independent.
milp::bb_options engine_options(bool warm) {
  milp::bb_options bb;
  bb.warm_start = warm;
  bb.time_limit_sec = 0.0;
  return bb;
}

/// Warm vs cold vs specialised on one pre-processed input, at the
/// specialised solver's proven minimum bus count.
void expect_outcome_equivalence(const synthesis_input& input,
                                const std::string& label) {
  synthesis_options spec_opts;
  spec_opts.params = input.params();
  const int buses = min_feasible_buses(input, spec_opts);

  const auto reference = find_min_overlap_binding(input, buses);
  ASSERT_TRUE(reference.has_value()) << label;
  ASSERT_TRUE(reference->proven_optimal) << label;

  const auto warm_bb = engine_options(true);
  const auto warm = solve_binding_milp(input, buses, warm_bb);
  ASSERT_TRUE(warm.has_value()) << label;
  EXPECT_EQ(warm->max_overlap, reference->max_overlap) << label;
  EXPECT_TRUE(input.binding_feasible(warm->binding, buses)) << label;

  const auto cold_bb = engine_options(false);
  const auto cold = solve_binding_milp(input, buses, cold_bb);
  ASSERT_TRUE(cold.has_value()) << label;
  EXPECT_EQ(cold->max_overlap, reference->max_overlap) << label;
  EXPECT_TRUE(input.binding_feasible(cold->binding, buses)) << label;

  // Bus-count agreement below the minimum: both engines must prove the
  // model UNSAT one bus short. Complete-search territory — small models
  // only (the generic binary search itself is exercised in the scenario
  // sweep below through these same solves).
  if (buses > 1 && input.num_targets() <= kUnsatMaxTargets &&
      lower_bound_buses(input) < buses) {
    EXPECT_FALSE(
        solve_feasibility_milp(input, buses - 1, warm_bb).has_value())
        << label;
    EXPECT_FALSE(
        solve_feasibility_milp(input, buses - 1, cold_bb).has_value())
        << label;
  }
}

/// Feasibility agreement at the specialised solver's proven minimum bus
/// count. The WARM engine must solve every app — including the 13/15
/// target models the legacy engine cannot touch (measured: warm <= 5s on
/// fft where cold exceeds 120s; that gap is the whole point of this PR).
/// The cold differential runs where the legacy engine stays cheap even
/// under sanitizers (measured cold feasibility: qsort 0.25s, synthetic
/// 0.09s; des 5s and mat2 13s native would blow the ASan budget — des's
/// warm/cold differential runs natively in the bench-labelled solver
/// perf guard instead).
void expect_feasibility_equivalence(const synthesis_input& input,
                                    const std::string& label,
                                    bool with_cold) {
  synthesis_options spec_opts;
  spec_opts.params = input.params();
  const int buses = min_feasible_buses(input, spec_opts);

  const auto warm = solve_feasibility_milp(input, buses, engine_options(true));
  ASSERT_TRUE(warm.has_value()) << label;
  EXPECT_TRUE(input.binding_feasible(*warm, buses)) << label;

  if (with_cold) {
    const auto cold =
        solve_feasibility_milp(input, buses, engine_options(false));
    ASSERT_TRUE(cold.has_value()) << label;
    EXPECT_TRUE(input.binding_feasible(*cold, buses)) << label;
  }
}

synthesis_input app_input(const std::string& name, traffic::cycle_t horizon,
                          bool request_direction) {
  const auto app = *workloads::make_app_by_name(name);
  flow_options opts;
  opts.horizon = horizon;
  opts.synth.params.window_size = 400;
  opts.synth.params.overlap_threshold = 0.30;
  opts.synth.params.max_targets_per_bus = 4;
  const auto traces = collect_traces(app, opts);
  return input_from_trace(
      request_direction ? traces.request : traces.response,
      effective_synthesis_params(opts, request_direction));
}

TEST(SolverWarmEquivalence, FeasibilityAgreesOnEveryBuiltinApp) {
  const std::vector<std::string> cold_apps = {"qsort", "synthetic"};
  for (const auto& name : workloads::app_names()) {
    // 10k horizon: SHORTER horizons are not cheaper here — fewer windows
    // loosen Eq. 4 and deepen the search (measured: 6k more than doubles
    // the sanitized runtime of the 13/15-target warm solves).
    const auto input = app_input(name, 10'000, /*request=*/true);
    const bool with_cold =
        std::find(cold_apps.begin(), cold_apps.end(), name) !=
        cold_apps.end();
    expect_feasibility_equivalence(input, name, with_cold);
  }
}

TEST(SolverWarmEquivalence, BindingOptimaAgreeOnTractableApps) {
  // Full binding optimisation with the cold reference: the apps whose
  // Eq. 11 model the legacy engine solves in (sanitized) test time. des
  // joins natively through the bench-labelled perf guard; the larger
  // paper apps (mat1/mat2/fft) are covered by the feasibility
  // differential above and the oracle's node-capped cross-check — the
  // warm engine alone handles them end-to-end (see bench/ablation_solver
  // and the --solver=milp CLI path).
  for (const auto& name : {"qsort", "synthetic"}) {
    const auto input = app_input(name, 6'000, /*request=*/true);
    expect_outcome_equivalence(input, name);
  }
}

TEST(SolverWarmEquivalence, FortyRandomScenariosAgree) {
  int checked = 0;
  for (int s = 0; s < 40; ++s) {
    rng r(0xC0FFEEull + static_cast<unsigned>(s) * 7919);
    auto sc = testkit::sample_scenario(r);
    sc.horizon = std::min<traffic::cycle_t>(sc.horizon, 12'000);
    const auto app = sc.make_app();
    const auto opts = sc.make_flow_options();
    const auto traces = collect_traces(app, opts);
    const auto input = input_from_trace(
        traces.request, effective_synthesis_params(opts, true));
    expect_outcome_equivalence(input, sc.name());
    ++checked;
  }
  EXPECT_EQ(checked, 40);
}

}  // namespace
}  // namespace stx::xbar
