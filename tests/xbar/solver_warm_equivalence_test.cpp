// Differential verification of the generic-MILP solver path on the real
// crossbar models: every built-in application plus 40 random testkit
// scenarios, solved with the warm-started incremental branch & bound,
// must match the exact specialised solver — same status, same bus count,
// same optimal Eq. 11 objective, and a feasible witness binding. (The
// witness binding VECTOR may differ when the model has multiple optima;
// both are verified feasible and cost-identical, which is what "same
// selected design" means at the design level: bus count and achieved
// overlap are what the flow consumes.) The specialised solver's proofs
// are themselves cross-checked in tests/xbar/solver_test, so agreement
// here pins the generic path — including the symmetry-breaking lex rows
// and the root cut layer — to the paper's optima.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "testkit/scenario.h"
#include "util/random.h"
#include "workloads/mpsoc_apps.h"
#include "xbar/bb_solver.h"
#include "xbar/flow.h"
#include "xbar/milp_formulation.h"
#include "xbar/synthesis.h"

namespace stx::xbar {
namespace {

constexpr int kUnsatMaxTargets = 6;  // UNSAT-proof differential gate

/// All solver budgets in this suite are NODE-based (no wall clock):
/// sanitizer builds run 10x slower and a time limit would turn that
/// slowdown into a spurious "hit solver limits" failure. Node counts are
/// machine-independent.
milp::bb_options engine_options() {
  milp::bb_options bb;
  bb.time_limit_sec = 0.0;
  return bb;
}

/// Generic MILP vs specialised on one pre-processed input, at the
/// specialised solver's proven minimum bus count.
void expect_outcome_equivalence(const synthesis_input& input,
                                const std::string& label) {
  synthesis_options spec_opts;
  spec_opts.params = input.params();
  const int buses = min_feasible_buses(input, spec_opts);

  const auto reference = find_min_overlap_binding(input, buses);
  ASSERT_TRUE(reference.has_value()) << label;
  ASSERT_TRUE(reference->proven_optimal) << label;

  const auto bb = engine_options();
  const auto milp = solve_binding_milp(input, buses, bb);
  ASSERT_TRUE(milp.has_value()) << label;
  EXPECT_EQ(milp->max_overlap, reference->max_overlap) << label;
  EXPECT_TRUE(input.binding_feasible(milp->binding, buses)) << label;

  // Bus-count agreement below the minimum: the generic engine must prove
  // the model UNSAT one bus short. Complete-search territory — small
  // models only (the generic binary search itself is exercised in the
  // scenario sweep below through these same solves).
  if (buses > 1 && input.num_targets() <= kUnsatMaxTargets &&
      lower_bound_buses(input) < buses) {
    EXPECT_FALSE(solve_feasibility_milp(input, buses - 1, bb).has_value())
        << label;
  }
}

/// Feasibility agreement at the specialised solver's proven minimum bus
/// count — including the 13/15-target models the retired legacy cold
/// engine could not touch.
void expect_feasibility_equivalence(const synthesis_input& input,
                                    const std::string& label) {
  synthesis_options spec_opts;
  spec_opts.params = input.params();
  const int buses = min_feasible_buses(input, spec_opts);

  const auto milp = solve_feasibility_milp(input, buses, engine_options());
  ASSERT_TRUE(milp.has_value()) << label;
  EXPECT_TRUE(input.binding_feasible(*milp, buses)) << label;
}

synthesis_input app_input(const std::string& name, traffic::cycle_t horizon,
                          bool request_direction) {
  const auto app = *workloads::make_app_by_name(name);
  flow_options opts;
  opts.horizon = horizon;
  opts.synth.params.window_size = 400;
  opts.synth.params.overlap_threshold = 0.30;
  opts.synth.params.max_targets_per_bus = 4;
  const auto traces = collect_traces(app, opts);
  return input_from_trace(
      request_direction ? traces.request : traces.response,
      effective_synthesis_params(opts, request_direction));
}

TEST(SolverWarmEquivalence, FeasibilityAgreesOnEveryBuiltinApp) {
  for (const auto& name : workloads::app_names()) {
    // 10k horizon: SHORTER horizons are not cheaper here — fewer windows
    // loosen Eq. 4 and deepen the search (measured: 6k more than doubles
    // the sanitized runtime of the 13/15-target warm solves).
    const auto input = app_input(name, 10'000, /*request=*/true);
    expect_feasibility_equivalence(input, name);
  }
}

TEST(SolverWarmEquivalence, BindingOptimaAgreeOnTractableApps) {
  // Full binding optimisation differential on the apps whose Eq. 11
  // model stays cheap under sanitizers; the larger paper apps
  // (mat1/mat2/fft) are covered by the feasibility differential above
  // and the oracle's node-capped cross-check (see bench/ablation_solver
  // and the --solver=milp CLI path).
  for (const auto& name : {"qsort", "synthetic"}) {
    const auto input = app_input(name, 6'000, /*request=*/true);
    expect_outcome_equivalence(input, name);
  }
}

TEST(SolverWarmEquivalence, FortyRandomScenariosAgree) {
  int checked = 0;
  for (int s = 0; s < 40; ++s) {
    rng r(0xC0FFEEull + static_cast<unsigned>(s) * 7919);
    auto sc = testkit::sample_scenario(r);
    sc.horizon = std::min<traffic::cycle_t>(sc.horizon, 12'000);
    const auto app = sc.make_app();
    const auto opts = sc.make_flow_options();
    const auto traces = collect_traces(app, opts);
    const auto input = input_from_trace(
        traces.request, effective_synthesis_params(opts, true));
    expect_outcome_equivalence(input, sc.name());
    ++checked;
  }
  EXPECT_EQ(checked, 40);
}

}  // namespace
}  // namespace stx::xbar
