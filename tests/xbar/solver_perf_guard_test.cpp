// Solver perf guard (ctest label `bench`): the warm-started incremental
// branch & bound must never spend MORE LP iterations than the legacy
// cold path on the built-in applications' binding models — the whole
// point of inheriting the parent basis is replacing full two-phase
// solves with a handful of dual pivots. Iteration counts are
// deterministic (no wall clock), so this cannot flake on a loaded
// machine; the measured margin is ~25-140x (bench/ablation_solver), so
// tripping the 1x bound means the warm path has actually regressed.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "milp/branch_bound.h"
#include "workloads/mpsoc_apps.h"
#include "xbar/flow.h"
#include "xbar/milp_formulation.h"
#include "xbar/synthesis.h"

namespace stx::xbar {
namespace {

TEST(SolverPerfGuard, WarmNeverExceedsColdLpIterationsOnBuiltinApps) {
  constexpr traffic::cycle_t kHorizon = 8'000;
  constexpr int kMaxTargets = 10;  // keep the cold reference tractable
  int guarded = 0;
  for (const auto& name : workloads::app_names()) {
    const auto app = *workloads::make_app_by_name(name);
    flow_options opts;
    opts.horizon = kHorizon;
    opts.synth.params.window_size = 400;
    opts.synth.params.overlap_threshold = 0.30;
    opts.synth.params.max_targets_per_bus = 4;
    const auto traces = collect_traces(app, opts);
    const auto input =
        input_from_trace(traces.request, opts.synth.params);
    if (input.num_targets() > kMaxTargets) continue;
    synthesis_options so;
    so.params = input.params();
    const int buses = min_feasible_buses(input, so);
    const auto bm = build_binding_milp(input, buses);

    // Node budgets only: a wall-clock limit would make the guard's
    // verdict depend on machine speed.
    milp::bb_options warm;
    warm.warm_start = true;
    warm.time_limit_sec = 0.0;
    milp::bb_options cold;
    cold.warm_start = false;
    cold.time_limit_sec = 0.0;
    const auto w = milp::solve_branch_bound(bm.model, warm);
    const auto c = milp::solve_branch_bound(bm.model, cold);
    ASSERT_EQ(w.status, milp::milp_status::optimal) << name;
    ASSERT_EQ(c.status, milp::milp_status::optimal) << name;
    EXPECT_NEAR(w.objective, c.objective, 1e-6) << name;
    EXPECT_LE(w.lp_iterations, c.lp_iterations)
        << name << ": warm " << w.lp_iterations << " vs cold "
        << c.lp_iterations << " LP iterations (" << w.nodes << " / "
        << c.nodes << " nodes)";
    ::testing::Test::RecordProperty(
        name + "_lp_iteration_speedup",
        std::to_string(static_cast<double>(c.lp_iterations) /
                       static_cast<double>(std::max<std::int64_t>(
                           1, w.lp_iterations))));
    ++guarded;
  }
  EXPECT_GE(guarded, 3) << "too few tractable apps reached the guard";
}

}  // namespace
}  // namespace stx::xbar
