// Solver perf guard (ctest label `bench`): the warm-started incremental
// branch & bound must keep re-solving nodes from the parent basis — the
// whole point of the machinery is replacing full two-phase solves with a
// handful of dual pivots — and the root cut layer must actually shrink
// the search. Both guards are on DETERMINISTIC counters (node and solve
// counts, no wall clock), so they cannot flake on a loaded machine;
// tripping one means the respective subsystem has actually regressed.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "milp/branch_bound.h"
#include "workloads/mpsoc_apps.h"
#include "xbar/flow.h"
#include "xbar/milp_formulation.h"
#include "xbar/synthesis.h"

namespace stx::xbar {
namespace {

TEST(SolverPerfGuard, WarmSolvesDominateAndCutsPruneOnBuiltinApps) {
  constexpr traffic::cycle_t kHorizon = 8'000;
  constexpr int kMaxTargets = 10;  // keep the suite quick under sanitizers
  int guarded = 0;
  int cut_reducers = 0;
  std::int64_t nodes_with_cuts = 0, nodes_without_cuts = 0;
  for (const auto& name : workloads::app_names()) {
    const auto app = *workloads::make_app_by_name(name);
    flow_options opts;
    opts.horizon = kHorizon;
    opts.synth.params.window_size = 400;
    opts.synth.params.overlap_threshold = 0.30;
    opts.synth.params.max_targets_per_bus = 4;
    const auto traces = collect_traces(app, opts);
    const auto input =
        input_from_trace(traces.request, opts.synth.params);
    if (input.num_targets() > kMaxTargets) continue;
    synthesis_options so;
    so.params = input.params();
    const int buses = min_feasible_buses(input, so);
    const auto bm = build_binding_milp(input, buses);

    // Node budgets only: a wall-clock limit would make the guard's
    // verdict depend on machine speed.
    milp::bb_options with_cuts;
    with_cuts.time_limit_sec = 0.0;
    milp::bb_options without = with_cuts;
    without.cuts = false;
    const auto w = milp::solve_branch_bound(bm.model, with_cuts);
    const auto c = milp::solve_branch_bound(bm.model, without);
    ASSERT_EQ(w.status, milp::milp_status::optimal) << name;
    ASSERT_EQ(c.status, milp::milp_status::optimal) << name;
    EXPECT_NEAR(w.objective, c.objective, 1e-6) << name;

    // Warm-start health: on any search that branches, nearly every node
    // must re-solve from its parent's basis. Cold solves are the one
    // root separation solve plus rare dual-repair fallbacks; more than
    // 10% of all solves going cold means the warm path has regressed.
    if (w.nodes > 1) {
      EXPECT_GT(w.warm_solves, 0) << name;
      const auto total = w.warm_solves + w.cold_solves;
      EXPECT_LE(w.cold_solves * 10, std::max<std::int64_t>(10, total))
          << name << ": " << w.cold_solves << " cold of " << total
          << " solves";
    }
    nodes_with_cuts += w.nodes;
    nodes_without_cuts += c.nodes;
    if (w.cuts_added > 0 && w.nodes < c.nodes) ++cut_reducers;
    ::testing::Test::RecordProperty(
        name + "_cut_node_ratio",
        std::to_string(static_cast<double>(w.nodes) /
                       static_cast<double>(
                           std::max<std::int64_t>(1, c.nodes))));
    ++guarded;
  }
  EXPECT_GE(guarded, 3) << "too few tractable apps reached the guard";
  // The cut layer must strictly shrink the tree on at least one paper
  // model, and must not blow the total up (valid cuts tighten the
  // relaxation; a larger total tree means the separator is emitting
  // junk).
  EXPECT_GE(cut_reducers, 1);
  EXPECT_LE(nodes_with_cuts, nodes_without_cuts + nodes_without_cuts / 4)
      << nodes_with_cuts << " nodes with cuts vs " << nodes_without_cuts
      << " without";
}

}  // namespace
}  // namespace stx::xbar
