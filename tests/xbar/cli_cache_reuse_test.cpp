// Cross-process cache reuse through the real xbargen binary: a second
// run with the same --cache-dir emits byte-identical artifacts without
// re-running the simulator or the solver (its metrics snapshot contains
// no sim.* / milp.* counters at all), proving the persistent store is
// shared across processes, not just across calls.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>

#include <sys/wait.h>

namespace {

namespace fs = std::filesystem;

const std::string kXbargen = STX_XBARGEN_BIN;

int run(const std::string& cmd) {
  const int status = std::system(cmd.c_str());
  if (status == -1) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return -1;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << p;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

/// filename -> bytes for every regular file under `dir`.
std::map<std::string, std::string> dir_contents(const fs::path& dir) {
  std::map<std::string, std::string> out;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.is_regular_file()) {
      out[e.path().filename().string()] = slurp(e.path());
    }
  }
  return out;
}

TEST(CliCacheReuse, SecondRunIsBitIdenticalWithoutSimulatingOrSolving) {
  const auto root = fs::temp_directory_path() / "stx-cli-cache-test";
  fs::remove_all(root);
  fs::create_directories(root);
  const auto cache = (root / "cache").string();
  const auto base = kXbargen +
                    " --app=qsort --horizon=6000 --emit=json,report"
                    " --cache-dir=" + cache;

  // Cold process: computes and fills the store.
  const auto out1 = (root / "out1").string();
  const auto log1 = (root / "run1.log").string();
  ASSERT_EQ(run(base + " --out-dir=" + out1 +
                " --metrics-out=" + (root / "m1.json").string() + " > " +
                log1 + " 2>&1"),
            0)
      << slurp(root / "run1.log");
  EXPECT_NE(slurp(root / "run1.log").find("miss — computed"),
            std::string::npos);
  EXPECT_NE(slurp(root / "m1.json").find("sim.runs"), std::string::npos);

  // Warm process: a brand-new xbargen invocation against the same
  // directory serves the whole report from the store.
  const auto out2 = (root / "out2").string();
  const auto log2 = (root / "run2.log").string();
  ASSERT_EQ(run(base + " --out-dir=" + out2 +
                " --metrics-out=" + (root / "m2.json").string() + " > " +
                log2 + " 2>&1"),
            0)
      << slurp(root / "run2.log");
  EXPECT_NE(slurp(root / "run2.log").find("hit — reused stored design"),
            std::string::npos);

  // Byte-identical artifacts from the two processes.
  const auto first = dir_contents(out1);
  const auto second = dir_contents(out2);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);

  // And the warm process never touched the simulator or a solver: its
  // metrics snapshot has no sim.* / milp.* / synthesis counters at all.
  const auto warm_metrics = slurp(root / "m2.json");
  EXPECT_NE(warm_metrics.find("stx-metrics/v1"), std::string::npos);
  EXPECT_NE(warm_metrics.find("serve.report.store_hits"),
            std::string::npos);
  EXPECT_EQ(warm_metrics.find("sim.runs"), std::string::npos);
  EXPECT_EQ(warm_metrics.find("milp."), std::string::npos);
  EXPECT_EQ(warm_metrics.find("xbar.synth.runs"), std::string::npos);

  fs::remove_all(root);
}

TEST(CliCacheReuse, DifferentOptionsMissTheStore) {
  const auto root = fs::temp_directory_path() / "stx-cli-cache-miss-test";
  fs::remove_all(root);
  fs::create_directories(root);
  const auto cache = (root / "cache").string();
  const auto log = (root / "run.log").string();
  ASSERT_EQ(run(kXbargen + " --app=qsort --horizon=6000 --cache-dir=" +
                cache + " > " + log + " 2>&1"),
            0);
  // Any keyed option change (here the analysis window) is a fresh design.
  ASSERT_EQ(run(kXbargen + " --app=qsort --horizon=6000 --window=300"
                " --cache-dir=" + cache + " > " + log + " 2>&1"),
            0);
  EXPECT_NE(slurp(root / "run.log").find("miss — computed"),
            std::string::npos);
  fs::remove_all(root);
}

}  // namespace
