// Unit tests for the synthesis driver (binary search + binding).
#include "xbar/synthesis.h"

#include <gtest/gtest.h>

#include "traffic/windows.h"
#include "util/error.h"
#include "workloads/mpsoc_apps.h"
#include "xbar/flow.h"

namespace stx::xbar {
namespace {

design_params basic_params(cycle_t ws = 100, int maxtb = 0) {
  design_params p;
  p.window_size = ws;
  p.max_targets_per_bus = maxtb;
  return p;
}

synthesis_input make_input(std::vector<std::vector<cycle_t>> comm,
                           const design_params& p) {
  const auto n = comm.size();
  std::vector<std::vector<cycle_t>> om(n, std::vector<cycle_t>(n, 0));
  std::vector<std::vector<bool>> conf(n, std::vector<bool>(n, false));
  return synthesis_input(std::move(comm), std::move(om), std::move(conf),
                         p.window_size, p);
}

TEST(Synthesis, FindsMinimalBusCount) {
  // Demands 60,60,60,30 in a 100-cycle window: 2 buses impossible
  // (60+60>100 for at least one pair... actually 60+30 fits, so {60},{60},
  // {60,30} -> 3 buses needed since three 60s can't pair up).
  const auto in = make_input({{60}, {60}, {60}, {30}}, basic_params());
  synthesis_options opts;
  opts.params = in.params();
  EXPECT_EQ(min_feasible_buses(in, opts), 3);
}

TEST(Synthesis, SynthesizeReturnsFeasibleOptimalDesign) {
  const auto in = make_input({{40}, {40}, {40}, {40}}, basic_params());
  synthesis_options opts;
  opts.params = in.params();
  const auto design = synthesize(in, opts);
  EXPECT_EQ(design.num_buses, 2);  // 40*3 > 100, 40*2 fits
  EXPECT_TRUE(in.binding_feasible(design.binding, design.num_buses));
  EXPECT_TRUE(design.binding_optimal);
  EXPECT_EQ(design.num_targets, 4);
  EXPECT_DOUBLE_EQ(design.savings_vs_full(), 2.0);
}

TEST(Synthesis, GenericMilpEngineAgrees) {
  const auto in = make_input({{60}, {60}, {30}, {30}}, basic_params());
  synthesis_options bb_opts;
  bb_opts.params = in.params();
  synthesis_options milp_opts = bb_opts;
  milp_opts.solver = solver_kind::generic_milp;
  const auto a = synthesize(in, bb_opts);
  const auto b = synthesize(in, milp_opts);
  EXPECT_EQ(a.num_buses, b.num_buses);
  EXPECT_EQ(a.max_overlap, b.max_overlap);
}

TEST(Synthesis, OptimizeBindingOffSkipsEqElevenPhase)
{
  const auto in = make_input({{40}, {40}, {40}}, basic_params());
  synthesis_options opts;
  opts.params = in.params();
  opts.optimize_binding = false;
  const auto design = synthesize(in, opts);
  EXPECT_FALSE(design.binding_optimal);
  EXPECT_TRUE(in.binding_feasible(design.binding, design.num_buses));
}

TEST(Synthesis, ToConfigProducesValidSimulatorConfig) {
  const auto in = make_input({{40}, {40}, {40}, {40}}, basic_params());
  synthesis_options opts;
  opts.params = in.params();
  const auto design = synthesize(in, opts);
  const auto cfg = design.to_config(sim::arbitration::fixed_priority, 3);
  EXPECT_EQ(cfg.num_buses, design.num_buses);
  EXPECT_EQ(cfg.binding, design.binding);
  EXPECT_EQ(cfg.policy, sim::arbitration::fixed_priority);
  EXPECT_EQ(cfg.transfer_overhead, 3);
}

TEST(Synthesis, FromTraceRunsWindowAnalysis) {
  traffic::trace t(3, 1, 200);
  t.add({0, 0, 0, 60, false});
  t.add({1, 0, 10, 70, false});
  t.add({2, 0, 120, 150, false});
  synthesis_options opts;
  opts.params.window_size = 100;
  opts.params.max_targets_per_bus = 0;
  const auto design = synthesize_from_trace(t, opts);
  EXPECT_EQ(design.num_targets, 3);
  // 60 + 60 > 100 in window 0: targets 0,1 cannot share.
  EXPECT_NE(design.binding[0], design.binding[1]);
}

TEST(Synthesis, ProbeCountIsLogarithmic) {
  // 16 identical light targets: feasible bus counts form a long monotone
  // range; binary search should probe far fewer than 16 times.
  std::vector<std::vector<cycle_t>> comm(16, {5});
  const auto in = make_input(std::move(comm), basic_params(100, 0));
  synthesis_options opts;
  opts.params = in.params();
  int probes = 0;
  min_feasible_buses(in, opts, &probes);
  EXPECT_LE(probes, 5);  // ceil(log2(16)) + slack
}

TEST(Synthesis, DesignOnRealAppTraceIsValidatable) {
  // End-to-end spot check on a real app trace: the synthesised design
  // must be feasible and strictly smaller than full for Mat2.
  const auto app = workloads::make_mat2();
  flow_options fopts;
  fopts.horizon = 30'000;
  const auto traces = collect_traces(app, fopts);
  synthesis_options opts;
  opts.params.window_size = 400;
  const auto design = synthesize_from_trace(traces.request, opts);
  EXPECT_LT(design.num_buses, app.num_targets);
  EXPECT_GE(design.num_buses, 2);
  const traffic::window_analysis wa(traces.request, 400);
  const synthesis_input in(wa, opts.params);
  EXPECT_TRUE(in.binding_feasible(design.binding, design.num_buses));
}

}  // namespace
}  // namespace stx::xbar
