// Tests for synthesis over variable window partitions (future-work
// extension): per-window capacities flow through the feasibility model,
// the specialised solver and the MILP identically.
#include <gtest/gtest.h>

#include "traffic/variable_windows.h"
#include "xbar/bb_solver.h"
#include "xbar/milp_formulation.h"
#include "xbar/synthesis.h"

namespace stx::xbar {
namespace {

/// Two targets, one dense phase [0,100) and one quiet phase [100,1000).
/// Both targets are 60-cycle busy in the dense phase.
traffic::trace make_two_phase_trace() {
  traffic::trace t(2, 1, 1000);
  t.add({0, 0, 0, 60, false});
  t.add({1, 0, 20, 80, false});
  t.add({0, 0, 500, 520, false});
  t.add({1, 0, 700, 730, false});
  return t;
}

TEST(VariableWindowSynthesis, FinePartitionSeparatesDensePhase) {
  const auto t = make_two_phase_trace();
  design_params p;
  p.window_size = 100;  // nominal; capacities come from the partition
  p.use_overlap_conflicts = false;
  p.max_targets_per_bus = 0;

  // Fine window over the dense phase: 60+60 > 100 -> two buses.
  const traffic::variable_window_analysis fine(
      t, traffic::window_partition({0, 100, 1000}));
  const synthesis_input fine_in(fine, p);
  EXPECT_EQ(fine_in.capacity(0), 100);
  EXPECT_EQ(fine_in.capacity(1), 900);
  EXPECT_FALSE(find_feasible_binding(fine_in, 1).has_value());
  EXPECT_TRUE(find_feasible_binding(fine_in, 2).has_value());

  // One coarse window: 170 busy in 1000 -> a single bus "fits" (exactly
  // the averaging failure mode variable windows exist to avoid).
  const traffic::variable_window_analysis coarse(
      t, traffic::window_partition({0, 1000}));
  const synthesis_input coarse_in(coarse, p);
  EXPECT_TRUE(find_feasible_binding(coarse_in, 1).has_value());
}

TEST(VariableWindowSynthesis, MilpAgreesWithSpecialisedSolver) {
  const auto t = make_two_phase_trace();
  design_params p;
  p.window_size = 100;
  p.use_overlap_conflicts = false;
  p.max_targets_per_bus = 0;
  const traffic::variable_window_analysis vwa(
      t, traffic::window_partition({0, 100, 400, 1000}));
  const synthesis_input in(vwa, p);
  for (int buses = 1; buses <= 2; ++buses) {
    EXPECT_EQ(find_feasible_binding(in, buses).has_value(),
              solve_feasibility_milp(in, buses).has_value())
        << "buses=" << buses;
  }
}

TEST(VariableWindowSynthesis, SynthesizeWorksOnVariableInput) {
  const auto t = make_two_phase_trace();
  design_params p;
  p.window_size = 100;
  p.use_overlap_conflicts = true;
  p.overlap_threshold = 0.30;
  p.max_targets_per_bus = 0;
  const traffic::variable_window_analysis vwa(
      t, traffic::window_partition::burst_adaptive(t, 80, 50, 500));
  const synthesis_input in(vwa, p);
  synthesis_options opts;
  opts.params = p;
  const auto design = synthesize(in, opts);
  EXPECT_GE(design.num_buses, 2);  // dense-phase overlap is 40% > 30%
  EXPECT_TRUE(in.binding_feasible(design.binding, design.num_buses));
}

TEST(VariableWindowSynthesis, ThresholdRelativeToOwnWindow) {
  const auto t = make_two_phase_trace();
  design_params p;
  p.window_size = 100;
  p.overlap_threshold = 0.30;  // overlap [20,60) = 40 cycles, 40% of 100
  p.max_targets_per_bus = 0;
  const traffic::variable_window_analysis fine(
      t, traffic::window_partition({0, 100, 1000}));
  const synthesis_input in(fine, p);
  EXPECT_TRUE(in.conflict(0, 1));

  // With a single 1000-cycle window the same 40 cycles is only 4%.
  const traffic::variable_window_analysis coarse(
      t, traffic::window_partition({0, 1000}));
  const synthesis_input in2(coarse, p);
  EXPECT_FALSE(in2.conflict(0, 1));
}

}  // namespace
}  // namespace stx::xbar
