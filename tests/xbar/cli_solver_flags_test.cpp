// CLI validation of the solver budget flags: --solver-node-limit and
// --solver-time-ms on xbargen and xbar-sweep must reject malformed or
// out-of-range values with exit code 2 (usage error) BEFORE any
// simulation starts, and must actually reach solver_options when valid —
// a starved node budget on the generic-MILP path fails the run (exit 1,
// runtime error), proving the plumbing is live.
//
// The binaries are exercised through std::system; their paths are
// injected by CMake. Output is routed to /dev/null so failures stay
// readable.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include <sys/wait.h>

namespace {

int run(const std::string& cmd) {
  const int status =
      std::system((cmd + " >/dev/null 2>/dev/null").c_str());
  if (status == -1) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return -1;
}

const std::string kXbargen = STX_XBARGEN_BIN;
const std::string kXbarSweep = STX_XBAR_SWEEP_BIN;

TEST(CliSolverFlags, XbargenRejectsInvalidBudgetsWithExit2) {
  EXPECT_EQ(run(kXbargen + " --app=qsort --solver-node-limit=0"), 2);
  EXPECT_EQ(run(kXbargen + " --app=qsort --solver-node-limit=-7"), 2);
  EXPECT_EQ(run(kXbargen + " --app=qsort --solver-node-limit=abc"), 2);
  EXPECT_EQ(run(kXbargen + " --app=qsort --solver-time-ms=-1"), 2);
  EXPECT_EQ(run(kXbargen + " --app=qsort --solver-time-ms=soon"), 2);
}

TEST(CliSolverFlags, XbarSweepRejectsInvalidBudgetsWithExit2) {
  const std::string grid = " --grid win=200 --validate=false";
  EXPECT_EQ(run(kXbarSweep + grid + " --solver-node-limit=0"), 2);
  EXPECT_EQ(run(kXbarSweep + grid + " --solver-node-limit=x"), 2);
  EXPECT_EQ(run(kXbarSweep + grid + " --solver-time-ms=-20"), 2);
}

TEST(CliSolverFlags, ValidBudgetsRunAndStarvedBudgetsFailAtRuntime) {
  // Generous budgets: the flow completes (exit 0).
  EXPECT_EQ(run(kXbargen +
                " --app=qsort --horizon=3000 --solver-node-limit=5000000 "
                "--solver-time-ms=60000"),
            0);
  // A one-node budget on the generic-MILP path starves the solver: the
  // run fails as a RUNTIME error (exit 1), not a usage error — and the
  // failure proves the flag reached solver_options. (The horizon is big
  // enough that the binding MILP cannot be proven optimal at the root.)
  EXPECT_EQ(run(kXbargen +
                " --app=qsort --horizon=8000 --solver=milp "
                "--solver-node-limit=1"),
            1);
}

}  // namespace
