// Unit tests for the baseline design approaches.
#include "xbar/baselines.h"

#include <gtest/gtest.h>

#include <set>

#include "traffic/windows.h"

namespace stx::xbar {
namespace {

/// Trace where averages mislead: two targets alternate heavy bursts, so
/// their AVERAGE demand is low but they collide in every burst window.
traffic::trace make_bursty_trace() {
  traffic::trace t(3, 1, 1000);
  for (cycle_t start = 0; start < 1000; start += 200) {
    t.add({0, 0, start, start + 90, false});
    t.add({1, 0, start + 10, start + 100, false});
  }
  t.add({2, 0, 150, 170, false});
  return t;
}

TEST(Baselines, AverageTrafficDesignUsesOneWindowAndNoConflicts) {
  const auto t = make_bursty_trace();
  const auto design = design_average_traffic(t);
  // Average duty: target0 450/1000, target1 450/1000, target2 20/1000:
  // all fit on one bus by aggregate bandwidth.
  EXPECT_EQ(design.num_buses, 1);
  EXPECT_EQ(design.params.window_size, 1000);
  EXPECT_FALSE(design.params.use_overlap_conflicts);
}

TEST(Baselines, WindowDesignSeparatesWhatAveragesMerge) {
  const auto t = make_bursty_trace();
  synthesis_options opts;
  opts.params.window_size = 200;
  opts.params.max_targets_per_bus = 0;
  const auto design = synthesize_from_trace(t, opts);
  // Within each 200-cycle window targets 0 and 1 demand 90+90 = 180 <=
  // 200... but overlap (80 cycles = 40% of WS) exceeds the default 30%
  // threshold, so the window-based method separates them.
  EXPECT_NE(design.binding[0], design.binding[1]);
  EXPECT_GE(design.num_buses, 2);
}

TEST(Baselines, PeakDesignSeparatesAnyOverlappingPair) {
  const auto t = make_bursty_trace();
  const auto design = design_peak_contention_free(t, 200);
  // Targets 0,1 overlap -> separate. Target 2 overlaps nobody -> may
  // share with either.
  EXPECT_NE(design.binding[0], design.binding[1]);
  EXPECT_EQ(design.params.overlap_threshold, 0.0);
}

TEST(Baselines, PeakDesignOversizesRelativeToWindowDesign) {
  // Three mutually slightly-overlapping light targets: window design
  // tolerates the small overlap, the contention-free design does not.
  traffic::trace t(3, 1, 400);
  t.add({0, 0, 0, 50, false});
  t.add({1, 0, 45, 95, false});   // 5-cycle overlap with 0
  t.add({2, 0, 90, 140, false});  // 5-cycle overlap with 1
  const auto peak = design_peak_contention_free(t, 400);
  synthesis_options opts;
  opts.params.window_size = 400;
  opts.params.overlap_threshold = 0.30;
  opts.params.max_targets_per_bus = 0;
  const auto window = synthesize_from_trace(t, opts);
  EXPECT_GT(peak.num_buses, window.num_buses);
  EXPECT_EQ(window.num_buses, 1);  // 150/400 duty, 5/400 overlap: shareable
}

TEST(Baselines, RandomRebindKeepsBusCountAndFeasibility) {
  const auto t = make_bursty_trace();
  synthesis_options opts;
  opts.params.window_size = 200;
  opts.params.max_targets_per_bus = 0;
  const traffic::window_analysis wa(t, 200);
  const synthesis_input in(wa, opts.params);
  const auto design = synthesize(in, opts);

  std::set<std::vector<int>> bindings;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto rebound = rebind_randomly(in, design, seed);
    EXPECT_EQ(rebound.num_buses, design.num_buses);
    EXPECT_TRUE(in.binding_feasible(rebound.binding, rebound.num_buses));
    EXPECT_GE(rebound.max_overlap, design.max_overlap)
        << "random binding beat the proven optimum";
    bindings.insert(rebound.binding);
  }
  EXPECT_GE(bindings.size(), 2u);
}

}  // namespace
}  // namespace stx::xbar
