// Golden regression test: the headline reproduction numbers.
//
// Pins the designed crossbar sizes of all five case-study applications at
// the bench defaults (window 400, threshold 30%, maxtb 4, 120k-cycle
// collection). If a workload or solver change shifts any of these, this
// test fails before the bench output silently drifts away from
// EXPERIMENTS.md. Paper reference: Mat1 8, Mat2 6, FFT 15, QSort 6,
// DES 6 — we pin OUR reproduced values (7, 6, 13, 6, 6), three of which
// match the paper exactly.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "workloads/mpsoc_apps.h"
#include "xbar/flow.h"

namespace stx::xbar {
namespace {

flow_options bench_defaults() {
  flow_options opts;
  opts.horizon = 120'000;
  opts.synth.params.window_size = 400;
  opts.synth.params.overlap_threshold = 0.30;
  opts.synth.params.max_targets_per_bus = 4;
  return opts;
}

TEST(PaperShapes, Table2DesignedBusCounts) {
  const std::map<std::string, std::pair<int, int>> expected = {
      // app -> {full buses, designed buses (ours, pinned)}
      {"Mat1", {25, 7}}, {"Mat2", {21, 6}}, {"FFT", {29, 13}},
      {"QSort", {15, 6}}, {"DES", {19, 6}},
  };
  const auto opts = bench_defaults();
  for (const auto& app : workloads::all_mpsoc_apps()) {
    const auto report = run_design_flow(app, opts);
    const auto& [full, designed] = expected.at(app.name);
    EXPECT_EQ(report.full_buses, full) << app.name;
    EXPECT_EQ(report.designed_buses, designed) << app.name;
  }
}

TEST(PaperShapes, Table1LatencyOrdering) {
  // shared >> designed-partial >= full on average latency; the designed
  // partial stays within 1.6x of full (paper: 9.9 vs 6 = 1.65x).
  const auto app = workloads::make_mat2();
  const auto opts = bench_defaults();
  const auto report = run_design_flow(app, opts);
  const auto shared = validate_configuration(
      app, sim::crossbar_config::shared(app.num_targets),
      sim::crossbar_config::shared(app.num_initiators), opts);
  EXPECT_GT(shared.avg_latency, 2.5 * report.full.avg_latency);
  EXPECT_LT(report.designed.avg_latency, 1.6 * report.full.avg_latency);
  EXPECT_GE(report.designed.avg_latency,
            report.full.avg_latency * 0.95);
}

TEST(PaperShapes, Fig4AverageDesignIsWorseOnEveryApp) {
  const auto opts = bench_defaults();
  for (const auto& app : workloads::all_mpsoc_apps()) {
    const auto traces = collect_traces(app, opts);
    const auto avg_req = design_average_traffic(traces.request);
    const auto avg_resp = design_average_traffic(traces.response);
    const auto avg_m = validate_configuration(
        app, avg_req.to_config(opts.policy, opts.transfer_overhead),
        avg_resp.to_config(opts.policy, opts.transfer_overhead), opts);
    const auto report = run_design_flow(app, opts);
    EXPECT_GT(avg_m.avg_latency, report.designed.avg_latency) << app.name;
    EXPECT_GE(avg_m.max_latency, report.designed.max_latency * 0.99)
        << app.name;
  }
}

}  // namespace
}  // namespace stx::xbar
