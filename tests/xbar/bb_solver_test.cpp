// Unit tests for the specialised branch & bound solver.
#include "xbar/bb_solver.h"

#include <gtest/gtest.h>

#include <set>

#include "util/error.h"

namespace stx::xbar {
namespace {

design_params basic_params(cycle_t ws = 100, int maxtb = 0) {
  design_params p;
  p.window_size = ws;
  p.max_targets_per_bus = maxtb;
  return p;
}

/// Direct-input builder for readable tests.
synthesis_input make_input(std::vector<std::vector<cycle_t>> comm,
                           std::vector<std::vector<cycle_t>> om,
                           std::vector<std::pair<int, int>> conflicts,
                           const design_params& p) {
  const auto n = comm.size();
  std::vector<std::vector<bool>> conf(n, std::vector<bool>(n, false));
  for (auto [i, j] : conflicts) {
    conf[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = true;
    conf[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = true;
  }
  if (om.empty()) {
    om.assign(n, std::vector<cycle_t>(n, 0));
  }
  return synthesis_input(std::move(comm), std::move(om), std::move(conf),
                         p.window_size, p);
}

TEST(BbSolver, PacksWhenBandwidthAllows) {
  // Three targets of 30 cycles in one 100-cycle window: fit on one bus.
  const auto in = make_input({{30}, {30}, {30}}, {}, {}, basic_params());
  const auto b = find_feasible_binding(in, 1);
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(in.binding_feasible(*b, 1));
}

TEST(BbSolver, BandwidthForcesSeparation) {
  // 60 + 60 > 100: two buses needed.
  const auto in = make_input({{60}, {60}}, {}, {}, basic_params());
  EXPECT_FALSE(find_feasible_binding(in, 1).has_value());
  EXPECT_TRUE(find_feasible_binding(in, 2).has_value());
}

TEST(BbSolver, PerWindowConstraintIsNotAggregate) {
  // Aggregate fits (60+60 over two windows = 120 <= 200) but window 0
  // collides: per-window semantics must reject one bus.
  const auto in =
      make_input({{60, 0}, {60, 0}}, {}, {}, basic_params(100));
  EXPECT_FALSE(find_feasible_binding(in, 1).has_value());
  // Anti-correlated traffic shares fine.
  const auto in2 =
      make_input({{60, 0}, {0, 60}}, {}, {}, basic_params(100));
  EXPECT_TRUE(find_feasible_binding(in2, 1).has_value());
}

TEST(BbSolver, ConflictCliqueNeedsThatManyBuses) {
  const auto in = make_input({{10}, {10}, {10}}, {},
                             {{0, 1}, {0, 2}, {1, 2}}, basic_params());
  EXPECT_FALSE(find_feasible_binding(in, 2).has_value());
  const auto b = find_feasible_binding(in, 3);
  ASSERT_TRUE(b.has_value());
  std::set<int> used(b->begin(), b->end());
  EXPECT_EQ(used.size(), 3u);
}

TEST(BbSolver, MaxTbCaps) {
  const auto in =
      make_input({{10}, {10}, {10}, {10}}, {}, {}, basic_params(100, 2));
  EXPECT_FALSE(find_feasible_binding(in, 1).has_value());
  EXPECT_TRUE(find_feasible_binding(in, 2).has_value());
}

TEST(BbSolver, LowerBoundComponents) {
  // Bandwidth bound: total 180 over WS 100 -> 2 buses.
  const auto bw = make_input({{90}, {90}}, {}, {}, basic_params());
  EXPECT_EQ(lower_bound_buses(bw), 2);
  // Cardinality bound: 5 targets, maxtb 2 -> 3.
  const auto card = make_input({{1}, {1}, {1}, {1}, {1}}, {}, {},
                               basic_params(100, 2));
  EXPECT_EQ(lower_bound_buses(card), 3);
  // Clique bound: triangle -> 3.
  const auto clique = make_input({{1}, {1}, {1}}, {},
                                 {{0, 1}, {0, 2}, {1, 2}}, basic_params());
  EXPECT_EQ(lower_bound_buses(clique), 3);
}

TEST(BbSolver, MinOverlapBindingMatchesHandOptimum) {
  // Four targets: om(0,1)=100, om(2,3)=90, om(0,2)=om(1,3)=10,
  // om(0,3)=om(1,2)=40. The three 2+2 pairings score 100, 40 and 10:
  // the optimum pairs (0,2)/(1,3) for maxov 10.
  std::vector<std::vector<cycle_t>> om = {
      {0, 100, 10, 40}, {100, 0, 40, 10}, {10, 40, 0, 90}, {40, 10, 90, 0}};
  const auto in = make_input({{25}, {25}, {25}, {25}}, om, {},
                             basic_params(100, 2));
  const auto sol = find_min_overlap_binding(in, 2);
  ASSERT_TRUE(sol.has_value());
  EXPECT_TRUE(sol->proven_optimal);
  EXPECT_EQ(sol->max_overlap, 10);
  EXPECT_EQ(in.max_bus_overlap(sol->binding, 2), 10);
}

TEST(BbSolver, MinOverlapHonoursConflicts) {
  // om(0,1) = 0 would make {0,1} the obvious pair, but they conflict.
  std::vector<std::vector<cycle_t>> om = {
      {0, 0, 50}, {0, 0, 50}, {50, 50, 0}};
  const auto in = make_input({{20}, {20}, {20}}, om, {{0, 1}},
                             basic_params(100, 2));
  const auto sol = find_min_overlap_binding(in, 2);
  ASSERT_TRUE(sol.has_value());
  EXPECT_NE(sol->binding[0], sol->binding[1]);
  EXPECT_EQ(sol->max_overlap, 50);
}

TEST(BbSolver, InfeasibleOptimisationReturnsNullopt) {
  const auto in = make_input({{80}, {80}, {80}}, {}, {}, basic_params());
  EXPECT_FALSE(find_min_overlap_binding(in, 2).has_value());
}

TEST(BbSolver, RandomBindingsAreFeasibleAndVary) {
  const auto in = make_input(
      {{20}, {20}, {20}, {20}, {20}, {20}}, {}, {}, basic_params(100, 3));
  std::set<std::vector<int>> seen;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto b = find_random_feasible_binding(in, 3, seed);
    ASSERT_TRUE(b.has_value());
    EXPECT_TRUE(in.binding_feasible(*b, 3));
    seen.insert(*b);
  }
  EXPECT_GT(seen.size(), 2u);  // different seeds explore different bindings
}

TEST(BbSolver, RandomBindingProvesInfeasibilityToo) {
  const auto in = make_input({{80}, {80}}, {}, {}, basic_params());
  EXPECT_FALSE(find_random_feasible_binding(in, 1, 3).has_value());
}

TEST(BbSolver, StatsReportNodes) {
  const auto in = make_input({{30}, {30}, {30}}, {}, {}, basic_params());
  solve_stats stats;
  const auto b = find_feasible_binding(in, 2, {}, &stats);
  ASSERT_TRUE(b.has_value());
  EXPECT_GT(stats.nodes, 0);
  EXPECT_TRUE(stats.complete);
}

TEST(BbSolver, RejectsNonPositiveBusCount) {
  const auto in = make_input({{10}}, {}, {}, basic_params());
  EXPECT_THROW(find_feasible_binding(in, 0), invalid_argument_error);
}

}  // namespace
}  // namespace stx::xbar
