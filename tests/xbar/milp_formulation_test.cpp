// Unit tests for the paper-faithful MILP formulation (Eq. 3-9, Eq. 11).
#include "xbar/milp_formulation.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace stx::xbar {
namespace {

design_params basic_params(cycle_t ws = 100, int maxtb = 0) {
  design_params p;
  p.window_size = ws;
  p.max_targets_per_bus = maxtb;
  return p;
}

synthesis_input make_input(std::vector<std::vector<cycle_t>> comm,
                           std::vector<std::vector<cycle_t>> om,
                           std::vector<std::pair<int, int>> conflicts,
                           const design_params& p) {
  const auto n = comm.size();
  std::vector<std::vector<bool>> conf(n, std::vector<bool>(n, false));
  for (auto [i, j] : conflicts) {
    conf[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = true;
    conf[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = true;
  }
  if (om.empty()) om.assign(n, std::vector<cycle_t>(n, 0));
  return synthesis_input(std::move(comm), std::move(om), std::move(conf),
                         p.window_size, p);
}

TEST(MilpFormulation, VariableCountsMatchTheModel) {
  // T=3, B=2, W=1. Compact feasibility: only the x binding variables,
  // 3*2=6. Binding keeps the paper-literal sharing layer — sb: 3 pairs
  // * 2 = 6, s: 3 — plus maxov: 6+6+3+1 = 16.
  const auto in = make_input({{10}, {10}, {10}}, {}, {}, basic_params());
  const auto fm = build_feasibility_milp(in, 2);
  EXPECT_EQ(fm.model.num_variables(), 6);
  EXPECT_TRUE(fm.sb.empty());
  EXPECT_TRUE(fm.s.empty());
  const auto bm = build_binding_milp(in, 2);
  EXPECT_EQ(bm.model.num_variables(), 16);
  EXPECT_GE(bm.maxov, 0);
  EXPECT_EQ(fm.maxov, -1);
}

TEST(MilpFormulation, RowCountsMatchTheModel) {
  // T=3, B=2, W=2, maxtb set, no conflicts.
  // Compact feasibility: Eq3: 3, Eq4: B*W = 4 (all comm nonzero),
  // Eq8: 2. Total 9 (no sharing linearisation).
  // Binding: + Eq5: pairs*B*2 = 12, Eq6: 3, maxov rows: 0 (om all
  // zero). Total 24.
  const auto in = make_input({{10, 5}, {10, 5}, {10, 5}}, {}, {},
                             basic_params(100, 2));
  EXPECT_EQ(build_feasibility_milp(in, 2).model.num_rows(), 9);
  EXPECT_EQ(build_binding_milp(in, 2).model.num_rows(), 24);
}

TEST(MilpFormulation, ConflictAddsEqSevenRow) {
  // Compact form: one x_i_k + x_j_k <= 1 row PER BUS per conflicting
  // pair (B=2 here); the binding model keeps the single s=0 row.
  const auto base = make_input({{10}, {10}}, {}, {}, basic_params());
  const auto with = make_input({{10}, {10}}, {}, {{0, 1}}, basic_params());
  EXPECT_EQ(build_feasibility_milp(with, 2).model.num_rows(),
            build_feasibility_milp(base, 2).model.num_rows() + 2);
  EXPECT_EQ(build_binding_milp(with, 2).model.num_rows(),
            build_binding_milp(base, 2).model.num_rows() + 1);
}

TEST(MilpFormulation, FeasibilitySolveFindsValidBinding) {
  const auto in = make_input({{60}, {60}, {30}}, {}, {}, basic_params());
  const auto binding = solve_feasibility_milp(in, 2);
  ASSERT_TRUE(binding.has_value());
  EXPECT_TRUE(in.binding_feasible(*binding, 2));
  EXPECT_NE((*binding)[0], (*binding)[1]);  // 60+60 > 100
}

TEST(MilpFormulation, FeasibilityDetectsInfeasible) {
  const auto in = make_input({{60}, {60}, {60}}, {}, {}, basic_params());
  EXPECT_FALSE(solve_feasibility_milp(in, 2).has_value());
}

TEST(MilpFormulation, ConflictForcesSeparationInSolution) {
  const auto in =
      make_input({{10}, {10}}, {}, {{0, 1}}, basic_params());
  const auto binding = solve_feasibility_milp(in, 2);
  ASSERT_TRUE(binding.has_value());
  EXPECT_NE((*binding)[0], (*binding)[1]);
}

TEST(MilpFormulation, BindingMinimisesMaxOverlap) {
  // Same instance as the bb_solver hand-optimum test.
  std::vector<std::vector<cycle_t>> om = {
      {0, 100, 10, 40}, {100, 0, 40, 10}, {10, 40, 0, 90}, {40, 10, 90, 0}};
  const auto in = make_input({{25}, {25}, {25}, {25}}, om, {},
                             basic_params(100, 2));
  const auto sol = solve_binding_milp(in, 2);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->max_overlap, 10);
  EXPECT_TRUE(in.binding_feasible(sol->binding, 2));
}

TEST(MilpFormulation, PairIndexIsCanonical) {
  const auto in = make_input({{1}, {1}, {1}, {1}}, {}, {}, basic_params());
  const auto fm = build_feasibility_milp(in, 2);
  EXPECT_EQ(fm.pair_index(0, 1), 0);
  EXPECT_EQ(fm.pair_index(1, 0), 0);  // unordered
  EXPECT_EQ(fm.pair_index(2, 3), 5);
  EXPECT_THROW(fm.pair_index(1, 1), invalid_argument_error);
}

TEST(MilpFormulation, MaxtbZeroMeansNoCardinalityRows) {
  const auto unlimited = make_input({{10}, {10}}, {}, {},
                                    basic_params(100, 0));
  const auto limited = make_input({{10}, {10}}, {}, {},
                                  basic_params(100, 1));
  EXPECT_EQ(build_feasibility_milp(limited, 2).model.num_rows(),
            build_feasibility_milp(unlimited, 2).model.num_rows() + 2);
}

}  // namespace
}  // namespace stx::xbar
