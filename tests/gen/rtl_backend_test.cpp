// Structural invariants of the generated SystemVerilog: one arbiter per
// bus, every receiving endpoint decoded exactly once and demuxed exactly
// once, in both the hand-built and a real synthesised design.
#include "gen/rtl_backend.h"

#include <gtest/gtest.h>

#include <string>

#include "gen_test_util.h"
#include "util/error.h"

namespace stx::gen {
namespace {

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (auto pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

/// The body of `module <name> ... endmodule`.
std::string module_text(const std::string& sv, const std::string& name) {
  const auto begin = sv.find("module " + name + " ");
  EXPECT_NE(begin, std::string::npos) << "module " << name << " missing";
  const auto end = sv.find("endmodule", begin);
  EXPECT_NE(end, std::string::npos);
  return sv.substr(begin, end - begin);
}

/// Checks the per-direction invariants on one emitted module.
void check_direction_module(const std::string& sv, const std::string& name,
                            int num_buses, const std::vector<int>& binding) {
  const auto body = module_text(sv, name);
  const int num_dst = static_cast<int>(binding.size());

  // Exactly one round-robin arbiter instance per bus.
  for (int k = 0; k < num_buses; ++k) {
    EXPECT_EQ(count_occurrences(body,
                                "u_arb_bus" + std::to_string(k) + " ("),
              1u)
        << name << " bus " << k;
  }
  EXPECT_EQ(count_occurrences(body, "u_arb_bus"),
            static_cast<std::size_t>(num_buses))
      << name;

  // Every destination appears exactly once in the decode function...
  for (int t = 0; t < num_dst; ++t) {
    const std::string decode = "'d" + std::to_string(t) + ": bus_of = ";
    EXPECT_EQ(count_occurrences(body, decode), 1u)
        << name << " decode of target " << t;
    // ...routed to its bound bus...
    const auto pos = body.find(decode);
    ASSERT_NE(pos, std::string::npos);
    const auto line = body.substr(pos, body.find('\n', pos) - pos);
    EXPECT_NE(line.find("'d" +
                        std::to_string(
                            binding[static_cast<std::size_t>(t)]) +
                        ";"),
              std::string::npos)
        << name << " target " << t << " decoded to the wrong bus: " << line;
    // ...and exactly once in the output demux.
    EXPECT_EQ(count_occurrences(
                  body, "dst_valid[" + std::to_string(t) + "] = bus" +
                            std::to_string(binding[static_cast<std::size_t>(
                                t)]) +
                            "_valid"),
              1u)
        << name << " demux of target " << t;
  }
  EXPECT_EQ(count_occurrences(body, "dst_valid["),
            static_cast<std::size_t>(num_dst))
      << name;
}

TEST(RtlBackend, SmallReportStructure) {
  const auto report = testutil::small_report();
  const auto sv = rtl_backend().emit(report, "unit_app_1");

  // All four modules present, exactly once each.
  EXPECT_EQ(count_occurrences(sv, "module unit_app_1_rr_arbiter"), 1u);
  EXPECT_EQ(count_occurrences(sv, "module unit_app_1_req_xbar"), 1u);
  EXPECT_EQ(count_occurrences(sv, "module unit_app_1_resp_xbar"), 1u);
  EXPECT_EQ(count_occurrences(sv, "module unit_app_1_xbar "), 1u);
  EXPECT_EQ(count_occurrences(sv, "endmodule"), 4u);

  check_direction_module(sv, "unit_app_1_req_xbar",
                         report.request_design.num_buses,
                         report.request_design.binding);
  check_direction_module(sv, "unit_app_1_resp_xbar",
                         report.response_design.num_buses,
                         report.response_design.binding);

  // Target names and traffic annotations survive into comments.
  EXPECT_NE(sv.find("SharedMem"), std::string::npos);
  EXPECT_NE(sv.find("busy cycles"), std::string::npos);

  // The top instantiates both directions.
  const auto top = module_text(sv, "unit_app_1_xbar");
  EXPECT_EQ(count_occurrences(top, "u_req_xbar"), 1u);
  EXPECT_EQ(count_occurrences(top, "u_resp_xbar"), 1u);
}

TEST(RtlBackend, RealMat2DesignStructure) {
  const auto& report = testutil::mat2_report();
  const auto sv = rtl_backend().emit(report, "mat2");
  check_direction_module(sv, "mat2_req_xbar",
                         report.request_design.num_buses,
                         report.request_design.binding);
  check_direction_module(sv, "mat2_resp_xbar",
                         report.response_design.num_buses,
                         report.response_design.binding);
}

TEST(RtlBackend, DeterministicEmission) {
  const auto report = testutil::small_report();
  EXPECT_EQ(rtl_backend().emit(report, "unit_app_1"),
            rtl_backend().emit(report, "unit_app_1"));
}

TEST(RtlBackend, BasenameBecomesTheModulePrefix) {
  // A custom generate_options::basename must rename the modules too, so
  // the file stem and its contents never disagree.
  const auto sv = rtl_backend().emit(testutil::small_report(), "soc_a");
  EXPECT_EQ(count_occurrences(sv, "module soc_a_rr_arbiter"), 1u);
  EXPECT_EQ(count_occurrences(sv, "module soc_a_req_xbar"), 1u);
  EXPECT_EQ(count_occurrences(sv, "module soc_a_resp_xbar"), 1u);
  EXPECT_EQ(count_occurrences(sv, "module soc_a_xbar "), 1u);
  EXPECT_EQ(sv.find("unit_app_1"), std::string::npos);
}

TEST(RtlBackend, RejectsMalformedReports) {
  auto report = testutil::small_report();
  report.request_design.binding[0] = 99;  // bus id out of range
  EXPECT_THROW(rtl_backend().emit(report, "unit_app_1"), invalid_argument_error);

  auto empty = xbar::flow_report{};
  EXPECT_THROW(rtl_backend().emit(empty, "x"), invalid_argument_error);
}

}  // namespace
}  // namespace stx::gen
