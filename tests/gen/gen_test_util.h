// Shared fixture data for the gen backend tests: a small hand-built
// flow_report (no simulation needed) with every field populated, plus a
// lazily computed real report from the mat2 design flow.
#pragma once

#include "workloads/mpsoc_apps.h"
#include "xbar/flow.h"

namespace stx::gen::testutil {

/// 3 initiators, 5 targets; request 3 buses, response 2 buses. Doubles are
/// chosen to be awkward (non-representable decimals) so round-trip tests
/// actually exercise the 17-digit formatting.
inline xbar::flow_report small_report() {
  xbar::flow_report r;
  r.app_name = "Unit App-1";
  r.num_initiators = 3;
  r.num_targets = 5;
  r.target_names = {"Private0", "Private1", "SharedMem", "Semaphore",
                    "IntDev"};

  auto& rq = r.request_design;
  rq.num_targets = 5;
  rq.num_buses = 3;
  rq.binding = {0, 1, 0, 1, 2};
  rq.max_overlap = 123;
  rq.binding_optimal = true;
  rq.num_conflicts = 2;
  rq.params.window_size = 400;
  rq.params.overlap_threshold = 0.1 + 0.2;  // 0.30000000000000004
  rq.params.max_targets_per_bus = 4;
  rq.feasibility_nodes = 17;
  rq.binding_nodes = 42;
  rq.probes = 3;

  auto& rs = r.response_design;
  rs.num_targets = 3;
  rs.num_buses = 2;
  rs.binding = {0, 1, 0};
  rs.max_overlap = 77;
  rs.binding_optimal = false;
  rs.num_conflicts = 1;
  rs.params.window_size = 200;
  rs.params.overlap_threshold = 1.0 / 3.0;
  rs.params.max_targets_per_bus = 0;
  rs.params.separate_critical = false;

  r.designed.avg_latency = 10.0 / 3.0;
  r.designed.max_latency = 91.0;
  r.designed.p99_latency = 55.5;
  r.designed.avg_critical = 7.25;
  r.designed.max_critical = 12.0;
  r.designed.packets = 1234;
  r.designed.transactions = 345;
  r.designed.iterations = 5;
  r.designed.total_buses = 5;

  r.full.avg_latency = 2.5;
  r.full.max_latency = 40.0;
  r.full.p99_latency = 9.75;
  r.full.packets = 1300;
  r.full.transactions = 360;
  r.full.iterations = 6;
  r.full.total_buses = 8;

  r.full_buses = 8;
  r.designed_buses = 5;
  r.request_traffic = {{100, 0, 50, 0, 0},
                       {0, 200, 50, 10, 0},
                       {0, 0, 0, 10, 400}};
  r.response_traffic = {{30, 0, 0},  {0, 60, 0}, {20, 20, 0},
                        {0, 5, 5},   {0, 0, 120}};
  return r;
}

/// One real report from the mat2 flow (short horizon), shared across all
/// tests of a binary so the simulation runs once.
inline const xbar::flow_report& mat2_report() {
  static const xbar::flow_report r = [] {
    xbar::flow_options opts;
    opts.horizon = 30'000;
    opts.synth.params.window_size = 400;
    return xbar::run_design_flow(stx::workloads::make_mat2(), opts);
  }();
  return r;
}

}  // namespace stx::gen::testutil
