// DOT topology and Markdown report backends: node/edge coverage and the
// Table-1-style numbers.
#include <gtest/gtest.h>

#include <string>

#include "gen/dot_backend.h"
#include "gen/report_backend.h"
#include "gen_test_util.h"
#include "util/error.h"

namespace stx::gen {
namespace {

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (auto pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(DotBackend, DeclaresEveryEndpointAndBus) {
  const auto report = testutil::small_report();
  const auto dot = dot_backend().emit(report, "unit_app_1");

  EXPECT_NE(dot.find("digraph unit_app_1_xbar {"), std::string::npos);
  // Node declarations sit indented inside their cluster ("\n    name ["),
  // which keeps edge lines like "-> ini0 [label" from matching.
  for (int i = 0; i < report.num_initiators; ++i) {
    EXPECT_EQ(count_occurrences(
                  dot, "\n    ini" + std::to_string(i) + " [label"),
              1u);
  }
  for (int t = 0; t < report.num_targets; ++t) {
    EXPECT_EQ(count_occurrences(
                  dot, "\n    tgt" + std::to_string(t) + " [label"),
              1u);
  }
  for (int k = 0; k < report.request_design.num_buses; ++k) {
    EXPECT_EQ(count_occurrences(
                  dot, "\n    req_bus" + std::to_string(k) + " [label"),
              1u);
  }
  for (int k = 0; k < report.response_design.num_buses; ++k) {
    EXPECT_EQ(count_occurrences(
                  dot, "\n    resp_bus" + std::to_string(k) + " [label"),
              1u);
  }
  // Target names appear as labels.
  EXPECT_NE(dot.find("SharedMem"), std::string::npos);
}

TEST(DotBackend, BindingEdgesMatchTheDesign) {
  const auto report = testutil::small_report();
  const auto dot = dot_backend().emit(report, "unit_app_1");

  // One bus->receiver edge per receiving endpoint, to the bound bus.
  for (int t = 0; t < report.num_targets; ++t) {
    const int k =
        report.request_design.binding[static_cast<std::size_t>(t)];
    EXPECT_EQ(count_occurrences(dot, "req_bus" + std::to_string(k) +
                                         " -> tgt" + std::to_string(t)),
              1u)
        << t;
  }
  for (int i = 0; i < report.num_initiators; ++i) {
    const int k =
        report.response_design.binding[static_cast<std::size_t>(i)];
    EXPECT_EQ(count_occurrences(dot, "resp_bus" + std::to_string(k) +
                                         " -> ini" + std::to_string(i)),
              1u)
        << i;
  }
}

TEST(DotBackend, TrafficWeightsBecomeEdgeLabels) {
  const auto report = testutil::small_report();
  const auto dot = dot_backend().emit(report, "unit_app_1");
  // core2 pushes 400 cycles to IntDev (bus 2): the sender->bus edge must
  // carry that weight.
  EXPECT_NE(dot.find("ini2 -> req_bus2 [label=\"400\""), std::string::npos);
  // Zero-traffic sender->bus pairs are omitted when traffic is known.
  EXPECT_EQ(dot.find("ini0 -> req_bus2"), std::string::npos);
}

TEST(DotBackend, RealMat2DesignRenders) {
  const auto dot = dot_backend().emit(testutil::mat2_report(), "mat2");
  EXPECT_NE(dot.find("digraph mat2_xbar"), std::string::npos);
  EXPECT_EQ(count_occurrences(dot, "subgraph cluster_"), 4u);
}

TEST(DotBackend, BasenameNamesTheGraph) {
  const auto dot = dot_backend().emit(testutil::small_report(), "soc_a");
  EXPECT_NE(dot.find("digraph soc_a_xbar {"), std::string::npos);
}

TEST(DotBackend, RejectsMalformedReports) {
  // A binding with an out-of-range bus id (e.g. from hand-edited JSON fed
  // through parse_design) must throw, not index out of bounds.
  auto report = testutil::small_report();
  report.request_design.binding[0] = 99;
  EXPECT_THROW(dot_backend().emit(report, "x"),
               stx::invalid_argument_error);
  auto negative = testutil::small_report();
  negative.response_design.binding[0] = -1;
  EXPECT_THROW(dot_backend().emit(negative, "x"),
               stx::invalid_argument_error);
}

TEST(ReportBackend, CarriesTable1StyleNumbers) {
  const auto report = testutil::small_report();
  const auto md = report_backend().emit(report, "unit_app_1");

  EXPECT_NE(md.find("# Crossbar design report — Unit App-1"),
            std::string::npos);
  // Cost summary: 8 full buses vs 5 designed, 1.60x savings.
  EXPECT_NE(md.find("**5** vs **8**"), std::string::npos);
  EXPECT_NE(md.find("**1.60x** component savings"), std::string::npos);
  // Per-direction rows with conflict-pair counts.
  EXPECT_NE(md.find("| request (ini→tgt) | 5 | 3 | 1.67x | 2 | 123 |"),
            std::string::npos);
  EXPECT_NE(md.find("response (tgt→ini) | 3 | 2 |"), std::string::npos);
  // Latency table and ratio.
  EXPECT_NE(md.find("| designed partial | 3.33 |"), std::string::npos);
  EXPECT_NE(md.find("1.33x**"), std::string::npos);
  // Bus membership section names the targets.
  EXPECT_NE(md.find("- bus 0: Private0 SharedMem"), std::string::npos);
  EXPECT_NE(md.find("- bus 1: core1"), std::string::npos);
}

TEST(ReportBackend, RealMat2DesignRenders) {
  const auto md = report_backend().emit(testutil::mat2_report(), "mat2");
  EXPECT_NE(md.find("# Crossbar design report — Mat2"), std::string::npos);
  EXPECT_NE(md.find("## Crossbar cost"), std::string::npos);
  EXPECT_NE(md.find("## Validation latency"), std::string::npos);
}

}  // namespace
}  // namespace stx::gen
