// The acceptance property of the JSON backend: parse(emit(design)) ==
// design, field for field, including awkward doubles — on a hand-built
// report and on a real synthesised one.
#include "gen/json_backend.h"

#include <gtest/gtest.h>

#include "gen/json.h"
#include "gen_test_util.h"
#include "util/error.h"

namespace stx::gen {
namespace {

TEST(JsonRoundTrip, SmallReportRoundTripsExactly) {
  const auto report = testutil::small_report();
  const auto text = json_backend().emit(report, "unit_app_1");
  const auto back = parse_design(text);
  EXPECT_TRUE(back == report);

  // Spot-check the awkward doubles explicitly (the == above covers them,
  // but a failure here localises the problem).
  EXPECT_EQ(back.request_design.params.overlap_threshold, 0.1 + 0.2);
  EXPECT_EQ(back.response_design.params.overlap_threshold, 1.0 / 3.0);
  EXPECT_EQ(back.designed.avg_latency, 10.0 / 3.0);
}

TEST(JsonRoundTrip, EmitIsStableThroughOneCycle) {
  const auto report = testutil::small_report();
  const auto text = json_backend().emit(report, "unit_app_1");
  EXPECT_EQ(json_backend().emit(parse_design(text), "unit_app_1"), text);
}

TEST(JsonRoundTrip, RealMat2DesignRoundTrips) {
  const auto& report = testutil::mat2_report();
  const auto back = parse_design(json_backend().emit(report, "unit_app_1"));
  EXPECT_TRUE(back == report);
  EXPECT_EQ(back.request_design.binding, report.request_design.binding);
  EXPECT_EQ(back.designed.avg_latency, report.designed.avg_latency);
  EXPECT_EQ(back.request_traffic, report.request_traffic);
}

TEST(JsonRoundTrip, MutationsBreakEquality) {
  const auto report = testutil::small_report();
  auto changed = parse_design(json_backend().emit(report, "unit_app_1"));
  changed.request_design.binding[0] ^= 1;
  EXPECT_FALSE(changed == report);
}

TEST(JsonRoundTrip, DocumentCarriesConflictAndCostSummaries) {
  const auto doc = json::parse(json_backend().emit(testutil::small_report(), "unit_app_1"));
  EXPECT_EQ(doc.at("schema").as_string(), "stx-crossbar-design/v1");
  EXPECT_EQ(doc.at("request").at("num_conflicts").as_int(), 2);
  EXPECT_EQ(doc.at("cost").at("designed_buses").as_int(), 5);
  EXPECT_EQ(doc.at("cost").at("savings").as_double(), 8.0 / 5.0);
  EXPECT_EQ(doc.at("application").at("target_names").as_array().size(), 5u);
}

TEST(JsonRoundTrip, RejectsForeignDocuments) {
  EXPECT_THROW(parse_design("{}"), invalid_argument_error);
  EXPECT_THROW(parse_design(R"({"schema": "something-else/v9"})"),
               invalid_argument_error);
  EXPECT_THROW(parse_design("not json at all"), invalid_argument_error);
}

}  // namespace
}  // namespace stx::gen
