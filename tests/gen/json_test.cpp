// Unit tests for the minimal JSON document model, writer and parser.
#include "gen/json.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace stx::gen::json {
namespace {

TEST(Json, ScalarRoundTrip) {
  EXPECT_EQ(parse("null"), value(nullptr));
  EXPECT_EQ(parse("true"), value(true));
  EXPECT_EQ(parse("false"), value(false));
  EXPECT_EQ(parse("42"), value(42));
  EXPECT_EQ(parse("-7"), value(-7));
  EXPECT_EQ(parse("\"hi\\nthere\""), value("hi\nthere"));
}

TEST(Json, IntegersStayIntegers) {
  const auto v = parse("9007199254740993");  // not representable as double
  ASSERT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), 9007199254740993LL);
}

TEST(Json, AwkwardDoublesRoundTripExactly) {
  for (double d : {0.1 + 0.2, 1.0 / 3.0, 1e-17, 1.7976931348623157e308,
                   -2.2250738585072014e-308, 123456.789}) {
    const auto text = dump(value(d));
    const auto back = parse(text);
    ASSERT_TRUE(back.is_double()) << text;
    EXPECT_EQ(back.as_double(), d) << text;
  }
}

TEST(Json, WholeDoublesKeepDoubleness) {
  // 2.0 must not come back as the integer 2.
  const auto back = parse(dump(value(2.0)));
  ASSERT_TRUE(back.is_double());
  EXPECT_EQ(back.as_double(), 2.0);
}

TEST(Json, NestedStructureRoundTrip) {
  const value doc(object{
      {"name", "mat2"},
      {"buses", 4},
      {"ratio", 1.75},
      {"ok", true},
      {"binding", array{value(0), value(1), value(0)}},
      {"nested", object{{"empty_arr", array{}}, {"empty_obj", object{}}}},
  });
  EXPECT_EQ(parse(dump(doc)), doc);
}

TEST(Json, ObjectLookup) {
  const auto v = parse(R"({"a": 1, "b": {"c": "x"}})");
  EXPECT_EQ(v.at("a").as_int(), 1);
  EXPECT_EQ(v.at("b").at("c").as_string(), "x");
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("z"));
  EXPECT_THROW(v.at("z"), invalid_argument_error);
}

TEST(Json, TypeMismatchThrows) {
  EXPECT_THROW(parse("3").as_string(), invalid_argument_error);
  EXPECT_THROW(parse("3.5").as_int(), invalid_argument_error);
  EXPECT_THROW(parse("\"s\"").as_array(), invalid_argument_error);
  // as_double accepts integers.
  EXPECT_EQ(parse("3").as_double(), 3.0);
}

TEST(Json, MalformedInputThrows) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "1 2",
        "\"unterminated", "{\"a\":1,}", "[1 2]", "nan", "--3"}) {
    EXPECT_THROW(parse(bad), invalid_argument_error) << bad;
  }
}

TEST(Json, StringEscapes) {
  const std::string s = "tab\t quote\" slash\\ nl\n ctrl\x01";
  EXPECT_EQ(parse(dump(value(s))).as_string(), s);
}

TEST(Json, WhitespaceTolerated) {
  const auto v = parse("  { \"a\" : [ 1 , 2 ] }\n");
  EXPECT_EQ(v.at("a").as_array().size(), 2u);
}

TEST(JsonDiff, EqualDocumentsProduceNoLines) {
  const auto v = parse(R"({"a": [1, 2], "b": {"c": 3.5}})");
  EXPECT_TRUE(diff(v, v).empty());
}

TEST(JsonDiff, ScalarMismatchIsPathAnchored) {
  const auto a = parse(R"({"a": {"b": [1, 2, 3]}})");
  const auto b = parse(R"({"a": {"b": [1, 9, 3]}})");
  const auto d = diff(a, b);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], "$.a.b[1]: expected 2, got 9");
}

TEST(JsonDiff, ReportsMissingAndUnexpectedMembers) {
  const auto a = parse(R"({"keep": 1, "gone": 2})");
  const auto b = parse(R"({"keep": 1, "new": 3})");
  const auto d = diff(a, b);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0], "$.gone: missing in actual");
  EXPECT_EQ(d[1], "$.new: unexpected member in actual");
}

TEST(JsonDiff, ReportsArrayLengthDrift) {
  const auto a = parse("[1, 2, 3]");
  const auto b = parse("[1, 2]");
  const auto d = diff(a, b);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], "$[2]: missing in actual");
}

TEST(JsonDiff, TypeMismatchSummarisesContainers) {
  const auto a = parse(R"({"x": [1, 2]})");
  const auto b = parse(R"({"x": {"y": 1}})");
  const auto d = diff(a, b);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], "$.x: expected array[2], got object{1 members}");
}

TEST(JsonDiff, CapsTheNumberOfLines) {
  std::string sa = "[", sb = "[";
  for (int i = 0; i < 50; ++i) {
    if (i > 0) {
      sa += ",";
      sb += ",";
    }
    sa += std::to_string(i);
    sb += std::to_string(i + 1000);
  }
  const auto d = diff(parse(sa + "]"), parse(sb + "]"), 10);
  ASSERT_EQ(d.size(), 11u);
  EXPECT_EQ(d.back(), "... and 40 more differences");
}

}  // namespace
}  // namespace stx::gen::json
