// Backend registry: selection, ordering, errors, custom registration and
// artifact writing.
#include "gen/registry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "gen_test_util.h"
#include "util/error.h"

namespace stx::gen {
namespace {

TEST(Registry, BuiltinsAreRegisteredInOrder) {
  const auto names = registry::instance().names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "sv");
  EXPECT_EQ(names[1], "dot");
  EXPECT_EQ(names[2], "json");
  EXPECT_EQ(names[3], "report");
}

TEST(Registry, FindResolvesEveryBuiltin) {
  for (const auto& name : registry::instance().names()) {
    const auto* b = registry::instance().find(name);
    ASSERT_NE(b, nullptr) << name;
    EXPECT_EQ(b->name(), name);
    EXPECT_FALSE(b->extension().empty());
    EXPECT_EQ(b->extension().front(), '.');
    EXPECT_FALSE(b->description().empty());
  }
  EXPECT_EQ(registry::instance().find("vhdl"), nullptr);
}

TEST(Registry, GenerateSelectsRequestedBackends) {
  const auto report = testutil::small_report();
  generate_options opts;
  opts.backends = {"json", "sv"};
  const auto arts = registry::instance().generate(report, opts);
  ASSERT_EQ(arts.size(), 2u);
  EXPECT_EQ(arts[0].backend, "json");
  EXPECT_EQ(arts[0].filename, "unit_app_1.json");
  EXPECT_EQ(arts[1].backend, "sv");
  EXPECT_EQ(arts[1].filename, "unit_app_1.sv");
  EXPECT_FALSE(arts[0].content.empty());
  EXPECT_FALSE(arts[1].content.empty());
}

TEST(Registry, EmptySelectionRunsEverything) {
  const auto arts =
      registry::instance().generate(testutil::small_report(), {});
  ASSERT_EQ(arts.size(), 4u);
  EXPECT_EQ(arts[0].filename, "unit_app_1.sv");
  EXPECT_EQ(arts[3].filename, "unit_app_1.md");
}

TEST(Registry, UnknownBackendThrowsListingAvailable) {
  generate_options opts;
  opts.backends = {"verilog"};
  try {
    registry::instance().generate(testutil::small_report(), opts);
    FAIL() << "expected invalid_argument_error";
  } catch (const invalid_argument_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("verilog"), std::string::npos);
    EXPECT_NE(what.find("sv"), std::string::npos);
    EXPECT_NE(what.find("report"), std::string::npos);
  }
}

TEST(Registry, ExplicitBasenameOverridesAppName) {
  generate_options opts;
  opts.backends = {"dot"};
  opts.basename = "custom";
  const auto arts =
      registry::instance().generate(testutil::small_report(), opts);
  ASSERT_EQ(arts.size(), 1u);
  EXPECT_EQ(arts[0].filename, "custom.dot");
}

// A trivial backend to prove third-party registration works.
class echo_backend : public backend {
 public:
  std::string name() const override { return "echo"; }
  std::string extension() const override { return ".txt"; }
  std::string description() const override { return "test backend"; }
  std::string emit(const xbar::flow_report& r,
                   const std::string& basename) const override {
    return r.app_name + " as " + basename + "\n";
  }
};

TEST(Registry, CustomBackendOnOwnRegistry) {
  registry r;
  r.add(std::make_unique<echo_backend>());
  EXPECT_THROW(r.add(std::make_unique<echo_backend>()),
               invalid_argument_error);  // duplicate name
  const auto arts = r.generate(testutil::small_report(), {});
  ASSERT_EQ(arts.size(), 1u);
  // The registry hands backends the sanitised stem it names files with.
  EXPECT_EQ(arts[0].content, "Unit App-1 as unit_app_1\n");
}

TEST(Artifact, SanitizeBasename) {
  EXPECT_EQ(sanitize_basename("Mat2"), "mat2");
  EXPECT_EQ(sanitize_basename("Unit App-1"), "unit_app_1");
  EXPECT_EQ(sanitize_basename("2fast"), "x2fast");
  EXPECT_EQ(sanitize_basename(""), "x");
}

TEST(Artifact, WriteArtifactsCreatesDirectoryAndFiles) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "stx_gen_registry_test" / "nested";
  std::filesystem::remove_all(dir.parent_path());

  const auto arts =
      registry::instance().generate(testutil::small_report(), {});
  const auto paths = write_artifacts(arts, dir.string());
  ASSERT_EQ(paths.size(), arts.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    std::ifstream in(paths[i]);
    ASSERT_TRUE(in.good()) << paths[i];
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, arts[i].content);
  }
  std::filesystem::remove_all(dir.parent_path());
}

}  // namespace
}  // namespace stx::gen
