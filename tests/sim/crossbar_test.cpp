// Unit tests for crossbar configuration and routing.
#include "sim/crossbar.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace stx::sim {
namespace {

TEST(CrossbarConfig, SharedFactory) {
  const auto cfg = crossbar_config::shared(5);
  EXPECT_EQ(cfg.num_buses, 1);
  ASSERT_EQ(cfg.binding.size(), 5u);
  for (int b : cfg.binding) EXPECT_EQ(b, 0);
  cfg.validate(5);
}

TEST(CrossbarConfig, FullFactory) {
  const auto cfg = crossbar_config::full(4);
  EXPECT_EQ(cfg.num_buses, 4);
  for (int e = 0; e < 4; ++e) EXPECT_EQ(cfg.binding[static_cast<std::size_t>(e)], e);
  cfg.validate(4);
}

TEST(CrossbarConfig, PartialFactoryAndValidation) {
  const auto cfg = crossbar_config::partial(2, {0, 0, 1, 1});
  cfg.validate(4);
  EXPECT_THROW(cfg.validate(3), invalid_argument_error);  // size mismatch
  auto bad = crossbar_config::partial(2, {0, 0, 5, 1});
  EXPECT_THROW(bad.validate(4), invalid_argument_error);  // unknown bus
  auto none = crossbar_config::partial(0, {});
  EXPECT_THROW(none.validate(0), invalid_argument_error);  // no buses
}

TEST(CrossbarConfig, ToStringNamesShapes) {
  EXPECT_NE(crossbar_config::shared(3).to_string().find("shared"),
            std::string::npos);
  EXPECT_NE(crossbar_config::full(3).to_string().find("full"),
            std::string::npos);
  EXPECT_NE(crossbar_config::partial(2, {0, 1, 1}).to_string().find("partial"),
            std::string::npos);
}

packet make_packet(int src, int dst, int cells, cycle_t issue) {
  packet p;
  p.source = src;
  p.dest = dst;
  p.cells = cells;
  p.issue = issue;
  return p;
}

TEST(Crossbar, RoutesByBinding) {
  auto cfg = crossbar_config::partial(2, {0, 1, 1});
  cfg.transfer_overhead = 0;
  crossbar xb(cfg, /*send_ports=*/2, /*recv=*/3);
  xb.enqueue(make_packet(0, 0, 1, 0));  // -> bus 0
  xb.enqueue(make_packet(1, 2, 1, 0));  // -> bus 1
  int delivered = 0;
  for (cycle_t now = 0; now < 5; ++now) {
    xb.step(now, [&](const packet&, cycle_t, cycle_t) { ++delivered; });
  }
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(xb.bus_at(0).delivered_packets(), 1);
  EXPECT_EQ(xb.bus_at(1).delivered_packets(), 1);
}

TEST(Crossbar, ParallelBusesDoNotSerialise) {
  auto cfg = crossbar_config::full(2);
  cfg.transfer_overhead = 0;
  crossbar xb(cfg, 2, 2);
  xb.enqueue(make_packet(0, 0, 4, 0));
  xb.enqueue(make_packet(1, 1, 4, 0));
  cycle_t last_end = 0;
  for (cycle_t now = 0; now < 10; ++now) {
    xb.step(now, [&](const packet&, cycle_t, cycle_t re) {
      last_end = std::max(last_end, re);
    });
  }
  EXPECT_EQ(last_end, 4);  // both finish together on separate buses
}

TEST(Crossbar, SharedBusSerialises) {
  auto cfg = crossbar_config::shared(2);
  cfg.transfer_overhead = 0;
  crossbar xb(cfg, 2, 2);
  xb.enqueue(make_packet(0, 0, 4, 0));
  xb.enqueue(make_packet(1, 1, 4, 0));
  cycle_t last_end = 0;
  for (cycle_t now = 0; now < 10; ++now) {
    xb.step(now, [&](const packet&, cycle_t, cycle_t re) {
      last_end = std::max(last_end, re);
    });
  }
  EXPECT_EQ(last_end, 8);
}

TEST(Crossbar, LatencyStatsAndCriticalSplit) {
  auto cfg = crossbar_config::shared(1);
  cfg.transfer_overhead = 1;
  crossbar xb(cfg, 2, 1);
  auto p1 = make_packet(0, 0, 2, 0);
  auto p2 = make_packet(1, 0, 2, 0);
  p2.critical = true;
  xb.enqueue(p1);
  xb.enqueue(p2);
  for (cycle_t now = 0; now < 10; ++now) {
    xb.step(now, [](const packet&, cycle_t, cycle_t) {});
  }
  EXPECT_EQ(xb.latency().count(), 2);
  EXPECT_EQ(xb.critical_latency().count(), 1);
  // First packet: 3 cycles; second: waits 3 then 3 = 6.
  EXPECT_DOUBLE_EQ(xb.latency().min(), 3.0);
  EXPECT_DOUBLE_EQ(xb.latency().max(), 6.0);
}

TEST(Crossbar, DrainedReflectsOutstandingWork) {
  auto cfg = crossbar_config::shared(1);
  crossbar xb(cfg, 1, 1);
  EXPECT_TRUE(xb.drained());
  xb.enqueue(make_packet(0, 0, 3, 0));
  EXPECT_FALSE(xb.drained());
  for (cycle_t now = 0; now < 10; ++now) {
    xb.step(now, [](const packet&, cycle_t, cycle_t) {});
  }
  EXPECT_TRUE(xb.drained());
}

TEST(Crossbar, UtilizationPerBus) {
  auto cfg = crossbar_config::full(2);
  cfg.transfer_overhead = 0;
  crossbar xb(cfg, 1, 2);
  xb.enqueue(make_packet(0, 0, 5, 0));
  for (cycle_t now = 0; now < 10; ++now) {
    xb.step(now, [](const packet&, cycle_t, cycle_t) {});
  }
  EXPECT_DOUBLE_EQ(xb.utilization(0, 10), 0.5);
  EXPECT_DOUBLE_EQ(xb.utilization(1, 10), 0.0);
  EXPECT_THROW(xb.utilization(0, 0), invalid_argument_error);
  EXPECT_THROW(xb.utilization(7, 10), invalid_argument_error);
}

TEST(Crossbar, EnqueueRejectsUnknownDest) {
  crossbar xb(crossbar_config::shared(2), 1, 2);
  EXPECT_THROW(xb.enqueue(make_packet(0, 9, 1, 0)), invalid_argument_error);
}

}  // namespace
}  // namespace stx::sim
