// Batch-vs-session bit-identity: the lockstep SoA driver must produce
// run_metrics equal (operator==, every double) to a sim::session over
// the same config — for every built-in app and for a fuzzed population
// of testkit scenarios, at several batch sizes. This is the same
// differential discipline that retired the polling kernel: the session
// engine is the reference, the batch driver must never diverge.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/batch.h"
#include "sim/session.h"
#include "testkit/scenario.h"
#include "util/random.h"
#include "workloads/app.h"
#include "workloads/mpsoc_apps.h"
#include "xbar/flow.h"

namespace stx::sim {
namespace {

/// Reference metrics: one session per config.
run_metrics session_metrics(const workloads::app_spec& app,
                            const system_config& cfg, cycle_t horizon) {
  auto session =
      workloads::make_session(app, cfg.request, cfg.response, cfg);
  session.run(horizon);
  return session.metrics();
}

/// Partitions `configs` into batches of `width` instances and checks
/// every instance against its session reference.
void expect_batches_match_sessions(const workloads::app_spec& app,
                                   const std::vector<system_config>& configs,
                                   cycle_t horizon, int width) {
  std::vector<run_metrics> reference;
  reference.reserve(configs.size());
  for (const auto& cfg : configs) {
    reference.push_back(session_metrics(app, cfg, horizon));
  }
  for (std::size_t off = 0; off < configs.size();
       off += static_cast<std::size_t>(width)) {
    const auto end =
        std::min(configs.size(), off + static_cast<std::size_t>(width));
    auto batch = workloads::make_batch(app);
    for (std::size_t i = off; i < end; ++i) {
      batch.add_instance(configs[i]);
    }
    batch.run(horizon);
    for (std::size_t i = off; i < end; ++i) {
      EXPECT_TRUE(batch.metrics(static_cast<int>(i - off)) == reference[i])
          << app.name << " instance " << i << " at batch width " << width;
    }
  }
}

/// The config population of one app: the three STbus instantiation
/// shapes crossed with arbitration policies and seeds.
std::vector<system_config> config_population(const workloads::app_spec& app) {
  std::vector<system_config> out;
  const arbitration policies[] = {arbitration::round_robin,
                                  arbitration::fixed_priority,
                                  arbitration::least_recently_granted};
  std::uint64_t seed = 1;
  for (const auto policy : policies) {
    system_config cfg;
    cfg.record_traces = false;
    cfg.seed = seed++;

    cfg.request = crossbar_config::full(app.num_targets);
    cfg.response = crossbar_config::full(app.num_initiators);
    cfg.request.policy = cfg.response.policy = policy;
    out.push_back(cfg);

    cfg.request = crossbar_config::shared(app.num_targets);
    cfg.response = crossbar_config::shared(app.num_initiators);
    cfg.request.policy = cfg.response.policy = policy;
    out.push_back(cfg);

    // A partial binding (two buses, endpoints striped across them).
    std::vector<int> req_binding(static_cast<std::size_t>(app.num_targets));
    for (std::size_t e = 0; e < req_binding.size(); ++e) {
      req_binding[e] = static_cast<int>(e % 2);
    }
    std::vector<int> resp_binding(
        static_cast<std::size_t>(app.num_initiators));
    for (std::size_t e = 0; e < resp_binding.size(); ++e) {
      resp_binding[e] = static_cast<int>(e % 2);
    }
    cfg.request = crossbar_config::partial(2, req_binding);
    cfg.response = crossbar_config::partial(2, resp_binding);
    cfg.request.policy = cfg.response.policy = policy;
    cfg.request.transfer_overhead = 3;
    out.push_back(cfg);
  }
  return out;
}

TEST(BatchEquivalence, EveryBuiltinAppMatchesSessions) {
  for (const auto& name : workloads::app_names()) {
    const auto app = *workloads::make_app_by_name(name);
    const auto configs = config_population(app);
    for (const int width : {1, 4, 32}) {
      expect_batches_match_sessions(app, configs, 12'000, width);
    }
  }
}

TEST(BatchEquivalence, FortyRandomScenariosMatchSessions) {
  rng master(2026);
  for (int k = 0; k < 40; ++k) {
    rng r = master.split(static_cast<std::uint64_t>(k) + 1);
    const auto s = testkit::sample_scenario(r);
    const auto app = s.make_app();
    const auto horizon = std::min<cycle_t>(s.horizon, 16'000);

    std::vector<system_config> configs;
    system_config cfg;
    cfg.record_traces = false;
    cfg.seed = s.seed;
    cfg.request = crossbar_config::full(app.num_targets);
    cfg.response = crossbar_config::full(app.num_initiators);
    configs.push_back(cfg);
    cfg.request = crossbar_config::shared(app.num_targets);
    cfg.response = crossbar_config::shared(app.num_initiators);
    cfg.request.policy = cfg.response.policy =
        arbitration::least_recently_granted;
    configs.push_back(cfg);

    for (const int width : {1, 4, 32}) {
      expect_batches_match_sessions(app, configs, horizon, width);
    }
  }
}

TEST(BatchEquivalence, BatchedValidationEqualsValidateConfiguration) {
  // The flow-level entry sweeps actually use: validate_configurations
  // over synthesised designs must equal per-session validation entries.
  const auto app = *workloads::make_app_by_name("qsort");
  xbar::flow_options opts;
  opts.horizon = 15'000;
  const auto traces = xbar::collect_traces(app, opts);
  const auto report = xbar::synthesize_design(app, traces, opts);

  std::vector<xbar::validation_job> jobs;
  xbar::validation_job designed;
  designed.request =
      report.request_design.to_config(opts.policy, opts.transfer_overhead);
  designed.response =
      report.response_design.to_config(opts.policy, opts.transfer_overhead);
  designed.opts = opts;
  jobs.push_back(designed);

  xbar::validation_job full = designed;
  full.request = crossbar_config::full(app.num_targets);
  full.request.policy = opts.policy;
  full.request.transfer_overhead = opts.transfer_overhead;
  full.response = crossbar_config::full(app.num_initiators);
  full.response.policy = opts.policy;
  full.response.transfer_overhead = opts.transfer_overhead;
  jobs.push_back(full);

  xbar::validation_job lrg = designed;
  lrg.opts.policy = arbitration::least_recently_granted;
  lrg.request.policy = lrg.response.policy = lrg.opts.policy;
  jobs.push_back(lrg);

  const auto batched = xbar::validate_configurations(app, jobs);
  ASSERT_EQ(batched.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto reference = xbar::validate_configuration(
        app, jobs[i].request, jobs[i].response, jobs[i].opts);
    EXPECT_TRUE(batched[i] == reference) << "job " << i;
  }
  // The full-crossbar entry also matches the canonical helper.
  EXPECT_TRUE(batched[1] == xbar::validate_full_crossbars(app, opts));
}

}  // namespace
}  // namespace stx::sim
