// Integration tests for the full MPSoC system simulator.
#include "sim/system.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace stx::sim {
namespace {

core_op compute_op(cycle_t cycles) {
  core_op op;
  op.op = core_op::kind::compute;
  op.cycles = cycles;
  return op;
}

core_op read_op(int target, int cells) {
  core_op op;
  op.op = core_op::kind::read;
  op.target = target;
  op.cells = cells;
  return op;
}

core_op write_op(int target, int cells) {
  core_op op;
  op.op = core_op::kind::write;
  op.target = target;
  op.cells = cells;
  return op;
}

core_op barrier_op(int target, int id, int group) {
  core_op op;
  op.op = core_op::kind::barrier;
  op.target = target;
  op.barrier_id = id;
  op.group_size = group;
  return op;
}

system_config two_by_two_config() {
  system_config cfg;
  cfg.request = crossbar_config::full(2);
  cfg.response = crossbar_config::full(2);
  cfg.core.compute_jitter = 0.0;
  return cfg;
}

TEST(System, SingleReadRoundTrip) {
  auto cfg = two_by_two_config();
  mpsoc_system sys({{read_op(0, 4)}, {compute_op(1000)}}, 2, cfg);
  sys.run(100);
  EXPECT_GE(sys.core_at(0).transactions(), 1);
  // Round trip: request (2+1) + service 4 + response (2+4) = 13.
  EXPECT_DOUBLE_EQ(sys.core_at(0).round_trip().min(), 13.0);
}

TEST(System, ConservationRequestsEqualResponses) {
  auto cfg = two_by_two_config();
  mpsoc_system sys(
      {{read_op(0, 4), write_op(1, 8)}, {write_op(1, 2), read_op(0, 2)}}, 2,
      cfg);
  sys.run(2000);
  // Every delivered request produced exactly one delivered response;
  // in-flight work at the horizon accounts for at most the difference.
  const auto req = sys.request_crossbar().latency().count();
  const auto resp = sys.response_crossbar().latency().count();
  EXPECT_GE(req, resp);
  EXPECT_LE(req - resp, 2);  // at most one outstanding per core
  // Each completed transaction consumed one request and one response.
  EXPECT_LE(sys.total_transactions(), resp);
}

TEST(System, DeterministicForSameSeed) {
  auto cfg = two_by_two_config();
  cfg.seed = 42;
  cfg.core.compute_jitter = 0.2;
  const std::vector<std::vector<core_op>> progs = {
      {compute_op(10), read_op(0, 4)}, {compute_op(5), write_op(1, 6)}};
  mpsoc_system a(progs, 2, cfg);
  mpsoc_system b(progs, 2, cfg);
  a.run(5000);
  b.run(5000);
  EXPECT_EQ(a.total_transactions(), b.total_transactions());
  EXPECT_EQ(a.packet_latency().count(), b.packet_latency().count());
  EXPECT_DOUBLE_EQ(a.packet_latency().mean(), b.packet_latency().mean());
  EXPECT_EQ(a.request_trace().events().size(),
            b.request_trace().events().size());
}

TEST(System, DifferentSeedsDiverge) {
  system_config cfg;
  cfg.request = crossbar_config::full(2);
  cfg.response = crossbar_config::full(1);
  cfg.core.compute_jitter = 0.3;
  const std::vector<std::vector<core_op>> progs = {
      {compute_op(50), read_op(0, 4)}};
  cfg.seed = 1;
  mpsoc_system a(progs, 2, cfg);
  cfg.seed = 2;
  mpsoc_system b(progs, 2, cfg);
  a.run(20000);
  b.run(20000);
  // Jittered compute spans shift the traffic; traces should differ.
  ASSERT_FALSE(a.request_trace().events().empty());
  bool any_diff =
      a.request_trace().events().size() != b.request_trace().events().size();
  if (!any_diff) {
    for (std::size_t i = 0; i < a.request_trace().events().size(); ++i) {
      if (a.request_trace().events()[i].begin !=
          b.request_trace().events()[i].begin) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(System, SharedBusSlowerThanFullCrossbar) {
  std::vector<std::vector<core_op>> progs;
  for (int i = 0; i < 4; ++i) {
    progs.push_back({read_op(i, 12), compute_op(5)});
  }
  system_config full_cfg;
  full_cfg.request = crossbar_config::full(4);
  full_cfg.response = crossbar_config::full(4);
  full_cfg.core.compute_jitter = 0.0;
  mpsoc_system full(progs, 4, full_cfg);
  full.run(20000);

  system_config shared_cfg = full_cfg;
  shared_cfg.request = crossbar_config::shared(4);
  shared_cfg.response = crossbar_config::shared(4);
  mpsoc_system shared(progs, 4, shared_cfg);
  shared.run(20000);

  EXPECT_GT(shared.packet_latency().mean(), full.packet_latency().mean());
  EXPECT_GT(full.total_iterations(), shared.total_iterations());
}

TEST(System, TraceEventsMatchDeliveredPackets) {
  auto cfg = two_by_two_config();
  mpsoc_system sys({{read_op(0, 4)}, {write_op(1, 4)}}, 2, cfg);
  sys.run(3000);
  std::int64_t delivered_req = 0;
  for (int k = 0; k < sys.request_crossbar().num_buses(); ++k) {
    delivered_req += sys.request_crossbar().bus_at(k).delivered_packets();
  }
  EXPECT_EQ(static_cast<std::int64_t>(sys.request_trace().events().size()),
            delivered_req);
  EXPECT_EQ(sys.request_trace().horizon(), sys.now());
}

TEST(System, PerTargetTraceIntervalsAreDisjoint) {
  // A target's receive intervals come from a single bus, so merging them
  // must not lose cycles: total busy == sum of event lengths.
  auto cfg = two_by_two_config();
  mpsoc_system sys({{read_op(0, 3), write_op(0, 5)},
                    {write_op(1, 7), read_op(1, 2)}},
                   2, cfg);
  sys.run(4000);
  const auto& tr = sys.request_trace();
  for (int t = 0; t < tr.num_targets(); ++t) {
    cycle_t event_sum = 0;
    for (const auto& e : tr.events()) {
      if (e.target == t) event_sum += e.end - e.begin;
    }
    EXPECT_EQ(tr.total_busy_per_target()[static_cast<std::size_t>(t)],
              event_sum);
  }
}

TEST(System, BarrierSynchronisesCores) {
  // Core 0 computes 10, core 1 computes 200; both barrier each iteration.
  // Iteration counts can differ by at most one despite the asymmetry.
  std::vector<std::vector<core_op>> progs = {
      {compute_op(10), barrier_op(2, 0, 2)},
      {compute_op(200), barrier_op(2, 0, 2)}};
  system_config cfg;
  cfg.request = crossbar_config::full(3);
  cfg.response = crossbar_config::full(2);
  cfg.core.compute_jitter = 0.0;
  mpsoc_system sys(progs, 3, cfg);
  sys.run(30000);
  EXPECT_GT(sys.core_at(0).iterations(), 10);
  EXPECT_LE(std::abs(sys.core_at(0).iterations() -
                     sys.core_at(1).iterations()),
            1);
}

TEST(System, RecordTracesOffKeepsTracesEmpty) {
  auto cfg = two_by_two_config();
  cfg.record_traces = false;
  mpsoc_system sys({{read_op(0, 4)}, {write_op(1, 4)}}, 2, cfg);
  sys.run(1000);
  EXPECT_TRUE(sys.request_trace().empty());
  EXPECT_TRUE(sys.response_trace().empty());
  EXPECT_GT(sys.total_transactions(), 0);
}

TEST(System, RunIsResumable) {
  system_config cfg;
  cfg.request = crossbar_config::full(1);
  cfg.response = crossbar_config::full(1);
  mpsoc_system sys({{read_op(0, 4)}}, 1, cfg);
  sys.run(100);
  const auto t1 = sys.total_transactions();
  sys.run(200);
  EXPECT_GT(sys.total_transactions(), t1);
  EXPECT_THROW(sys.run(50), invalid_argument_error);  // backwards
}

TEST(System, ValidatesConstruction) {
  system_config cfg = two_by_two_config();
  EXPECT_THROW(mpsoc_system({}, 2, cfg), invalid_argument_error);
  EXPECT_THROW(mpsoc_system({{read_op(5, 1)}}, 2, cfg),
               invalid_argument_error);
}

}  // namespace
}  // namespace stx::sim
