// Perf guard (ctest label `bench`): the event kernel must keep doing
// strictly less work than the retired per-cycle polling loop would have.
//
// The polling loop visited every component every cycle — exactly
// horizon * (cores + buses + targets) component steps. The calendar
// queue's whole point is skipping the idle ones, so the number of
// processed events on the built-in applications must stay well under
// that budget. Counter-based (no wall clock), hence deterministic: a
// regression that re-introduces per-cycle busywork trips this on any
// machine, and scheduler noise cannot flake it.
#include <gtest/gtest.h>

#include "workloads/mpsoc_apps.h"

namespace stx::sim {
namespace {

constexpr cycle_t kPinnedHorizon = 60'000;

TEST(PerfGuard, EventKernelProcessesFarFewerEventsThanPollingWould) {
  for (const auto& name : workloads::app_names()) {
    const auto app = *workloads::make_app_by_name(name);
    system_config cfg;
    cfg.seed = 1;
    cfg.record_traces = false;
    cfg.keep_latency_samples = false;
    auto system = workloads::make_full_crossbar_system(app, cfg);
    system.run(kPinnedHorizon);
    // Defence against guarding a stuck simulation.
    ASSERT_GT(system.total_transactions(), 0) << app.name;

    const std::int64_t polling_steps =
        static_cast<std::int64_t>(kPinnedHorizon) * system.num_components();
    const auto& stats = system.event_stats();
    // The dense paper apps run 5-8x fewer events than polling steps;
    // 50% is generous slack that still catches a per-cycle regression.
    EXPECT_LT(stats.events_processed, polling_steps / 2)
        << app.name << ": " << stats.events_processed
        << " events vs the polling loop's " << polling_steps
        << " component steps at horizon " << kPinnedHorizon;
    ::testing::Test::RecordProperty(
        name + "_event_vs_polling_work",
        std::to_string(static_cast<double>(polling_steps) /
                       static_cast<double>(stats.events_processed)));
  }
}

}  // namespace
}  // namespace stx::sim
