// Perf guard (ctest label `bench`): the event kernel must not be slower
// than the polling loop on the built-in applications at a pinned
// horizon. The refactor's whole point is skipping idle work — if this
// fails, the calendar queue has regressed into overhead.
//
// Timing test: it compares the two kernels against each other in the
// same process (not against a wall-clock budget), uses the median of
// repeated runs, and allows generous slack, so scheduler noise does not
// flake it — the observed aggregate advantage is >5x.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "workloads/mpsoc_apps.h"

namespace stx::sim {
namespace {

constexpr cycle_t kPinnedHorizon = 60'000;
constexpr int kRepeats = 3;

double run_once(const workloads::app_spec& app, kernel_kind kernel) {
  system_config cfg;
  cfg.seed = 1;
  cfg.record_traces = false;
  cfg.keep_latency_samples = false;
  cfg.kernel = kernel;
  auto system = workloads::make_full_crossbar_system(app, cfg);
  const auto t0 = std::chrono::steady_clock::now();
  system.run(kPinnedHorizon);
  const auto t1 = std::chrono::steady_clock::now();
  // Defence against dead-code elimination and against timing a stuck sim.
  EXPECT_GT(system.total_transactions(), 0) << app.name;
  return std::chrono::duration<double>(t1 - t0).count();
}

double median_seconds(const workloads::app_spec& app, kernel_kind kernel) {
  std::vector<double> times;
  for (int r = 0; r < kRepeats; ++r) times.push_back(run_once(app, kernel));
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

TEST(PerfGuard, EventKernelNotSlowerThanPollingOnBuiltinApps) {
  double polling_total = 0.0;
  double event_total = 0.0;
  for (const auto& name : workloads::app_names()) {
    const auto app = *workloads::make_app_by_name(name);
    const double poll = median_seconds(app, kernel_kind::polling);
    const double evt = median_seconds(app, kernel_kind::event);
    polling_total += poll;
    event_total += evt;
    ::testing::Test::RecordProperty(name + "_speedup",
                                    std::to_string(poll / evt));
  }
  // Aggregate over all apps with 1.10x slack: the event kernel is >5x
  // faster in practice, so tripping this means a real regression.
  EXPECT_LE(event_total, polling_total * 1.10)
      << "event kernel total " << event_total << "s vs polling "
      << polling_total << "s over " << workloads::app_names().size()
      << " apps at horizon " << kPinnedHorizon;
}

}  // namespace
}  // namespace stx::sim
