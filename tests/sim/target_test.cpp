// Unit tests for the memory target model.
#include "sim/target.h"

#include <gtest/gtest.h>

#include <vector>

namespace stx::sim {
namespace {

packet make_request(packet_kind kind, int src, int dst, int cells,
                    int response_cells, std::int64_t txn) {
  packet p;
  p.kind = kind;
  p.source = src;
  p.dest = dst;
  p.cells = cells;
  p.response_cells = response_cells;
  p.txn = txn;
  return p;
}

std::vector<packet> drain(memory_target& t, cycle_t from, cycle_t to) {
  std::vector<packet> out;
  for (cycle_t now = from; now < to; ++now) {
    t.step(now, [&](const packet& p) { out.push_back(p); });
  }
  return out;
}

TEST(Target, ReadProducesResponseOfRequestedSize) {
  memory_target t(3, {/*service_latency=*/4});
  t.on_request(make_request(packet_kind::request_read, 1, 3, 1, 16, 7), 10);
  const auto replies = drain(t, 0, 40);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].kind, packet_kind::response_read);
  EXPECT_EQ(replies[0].cells, 16);
  EXPECT_EQ(replies[0].source, 3);
  EXPECT_EQ(replies[0].dest, 1);
  EXPECT_EQ(replies[0].txn, 7);
}

TEST(Target, WriteProducesSingleCellAck) {
  memory_target t(0, {4});
  t.on_request(make_request(packet_kind::request_write, 2, 0, 16, 1, 9), 0);
  const auto replies = drain(t, 0, 20);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].kind, packet_kind::response_ack);
  EXPECT_EQ(replies[0].cells, 1);
  EXPECT_EQ(replies[0].dest, 2);
}

TEST(Target, ServiceLatencyDelaysReply) {
  memory_target t(0, {6});
  t.on_request(make_request(packet_kind::request_read, 0, 0, 1, 4, 1), 10);
  std::vector<cycle_t> emit_times;
  for (cycle_t now = 0; now < 30; ++now) {
    t.step(now, [&](const packet&) { emit_times.push_back(now); });
  }
  ASSERT_EQ(emit_times.size(), 1u);
  EXPECT_EQ(emit_times[0], 16);  // arrival 10 + service 6
}

TEST(Target, RequestsAreServedSerially) {
  memory_target t(0, {5});
  t.on_request(make_request(packet_kind::request_read, 0, 0, 1, 2, 1), 0);
  t.on_request(make_request(packet_kind::request_read, 1, 0, 1, 2, 2), 0);
  std::vector<std::pair<cycle_t, std::int64_t>> emissions;
  for (cycle_t now = 0; now < 30; ++now) {
    t.step(now, [&](const packet& p) { emissions.emplace_back(now, p.txn); });
  }
  ASSERT_EQ(emissions.size(), 2u);
  EXPECT_EQ(emissions[0].first, 5);
  EXPECT_EQ(emissions[0].second, 1);
  EXPECT_EQ(emissions[1].first, 10);  // serialised behind the first
  EXPECT_EQ(emissions[1].second, 2);
  EXPECT_EQ(t.served(), 2);
}

TEST(Target, CriticalFlagPropagatesToReply) {
  memory_target t(0, {1});
  auto req = make_request(packet_kind::request_read, 0, 0, 1, 2, 1);
  req.critical = true;
  t.on_request(req, 0);
  const auto replies = drain(t, 0, 10);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0].critical);
}

TEST(Target, ZeroServiceLatency) {
  memory_target t(0, {0});
  t.on_request(make_request(packet_kind::request_read, 0, 0, 1, 2, 1), 3);
  std::vector<cycle_t> emit_times;
  for (cycle_t now = 0; now < 10; ++now) {
    t.step(now, [&](const packet&) { emit_times.push_back(now); });
  }
  ASSERT_EQ(emit_times.size(), 1u);
  EXPECT_EQ(emit_times[0], 3);
}

}  // namespace
}  // namespace stx::sim
