// sim::session: the unified build-run-harvest API.
#include "sim/session.h"

#include <gtest/gtest.h>

#include "workloads/mpsoc_apps.h"

namespace stx::sim {
namespace {

core_op read_op(int target, int cells) {
  core_op op;
  op.op = core_op::kind::read;
  op.target = target;
  op.cells = cells;
  return op;
}

TEST(Session, HarvestsTheSameMetricsAsTheBareSystem) {
  const auto app = *workloads::make_app_by_name("qsort");
  system_config cfg;
  cfg.seed = 5;
  auto session = workloads::make_full_crossbar_session(app, cfg);
  session.run(20'000);
  auto system = workloads::make_full_crossbar_system(app, cfg);
  system.run(20'000);

  const auto& m = session.metrics();
  EXPECT_EQ(m.transactions, system.total_transactions());
  EXPECT_EQ(m.iterations, system.total_iterations());
  EXPECT_EQ(m.packets, system.packet_latency().count());
  EXPECT_DOUBLE_EQ(m.avg_latency, system.packet_latency().mean());
  EXPECT_DOUBLE_EQ(m.max_latency, system.packet_latency().max());
  EXPECT_EQ(m.total_buses, system.request_crossbar().num_buses() +
                               system.response_crossbar().num_buses());
  EXPECT_TRUE(session.request_trace() == system.request_trace());
  EXPECT_TRUE(session.response_trace() == system.response_trace());
  // The free-function harvest is the same maths.
  EXPECT_TRUE(harvest_metrics(system) == m);
}

TEST(Session, MetricsAreCachedUntilTheNextRun) {
  system_config cfg;
  cfg.request = crossbar_config::full(1);
  cfg.response = crossbar_config::full(1);
  session s({{read_op(0, 4)}}, 1, cfg);
  s.run(500);
  const auto* first = &s.metrics();
  // Repeated queries return the identical cached object (no re-scan).
  EXPECT_EQ(first, &s.metrics());
  const auto snapshot = *first;
  s.run(1000);
  // Invalidation: a longer run re-harvests and sees more work.
  EXPECT_GT(s.metrics().transactions, snapshot.transactions);
  EXPECT_EQ(s.now(), 1000);
}

TEST(Session, RunsOnTheEventKernel) {
  const auto app = *workloads::make_app_by_name("mat2");
  auto evt = workloads::make_full_crossbar_session(app, {});
  evt.run(10'000);
  EXPECT_GT(evt.system().event_stats().events_processed, 0);
  EXPECT_GT(evt.metrics().transactions, 0);
}

TEST(Session, CriticalMetricsFlowThrough) {
  const auto app = *workloads::make_app_by_name("mat2-critical");
  auto session = workloads::make_full_crossbar_session(app, {});
  session.run(20'000);
  const auto& m = session.metrics();
  EXPECT_GT(m.packets, 0);
  EXPECT_GT(m.avg_critical, 0.0);
  EXPECT_GE(m.max_critical, m.avg_critical);
}

}  // namespace
}  // namespace stx::sim
