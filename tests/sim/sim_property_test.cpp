// Property tests: simulator invariants on randomly generated systems.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/system.h"
#include "util/random.h"

namespace stx::sim {
namespace {

/// Random small closed-loop system: 2-5 cores, 2-5 targets, random
/// programs of reads/writes/computes.
struct random_system_spec {
  std::vector<std::vector<core_op>> programs;
  int num_targets = 0;
};

random_system_spec make_random_spec(rng& r) {
  random_system_spec spec;
  const int cores = static_cast<int>(r.uniform_int(2, 5));
  spec.num_targets = static_cast<int>(r.uniform_int(2, 5));
  for (int c = 0; c < cores; ++c) {
    std::vector<core_op> prog;
    const int ops = static_cast<int>(r.uniform_int(1, 6));
    for (int o = 0; o < ops; ++o) {
      core_op op;
      const int kind = static_cast<int>(r.uniform_int(0, 2));
      if (kind == 0) {
        op.op = core_op::kind::compute;
        op.cycles = r.uniform_int(0, 60);
      } else {
        op.op = kind == 1 ? core_op::kind::read : core_op::kind::write;
        op.target = static_cast<int>(
            r.uniform_int(0, spec.num_targets - 1));
        op.cells = static_cast<int>(r.uniform_int(1, 24));
        op.critical = r.chance(0.1);
      }
      prog.push_back(op);
    }
    // Ensure at least one transfer so the system generates traffic.
    bool has_transfer = false;
    for (const auto& op : prog) {
      has_transfer |= op.op != core_op::kind::compute;
    }
    if (!has_transfer) {
      core_op op;
      op.op = core_op::kind::read;
      op.target = 0;
      op.cells = 4;
      prog.push_back(op);
    }
    spec.programs.push_back(std::move(prog));
  }
  return spec;
}

crossbar_config random_partial(rng& r, int endpoints) {
  const int buses = static_cast<int>(r.uniform_int(1, endpoints));
  std::vector<int> binding;
  for (int e = 0; e < endpoints; ++e) {
    binding.push_back(static_cast<int>(r.uniform_int(0, buses - 1)));
  }
  return crossbar_config::partial(buses, binding);
}

class SimRandom : public ::testing::TestWithParam<int> {};

TEST_P(SimRandom, InvariantsHoldOnRandomConfigurations) {
  rng r(static_cast<std::uint64_t>(GetParam()) * 48271 + 13);
  const auto spec = make_random_spec(r);
  system_config cfg;
  cfg.request = random_partial(r, spec.num_targets);
  cfg.response =
      random_partial(r, static_cast<int>(spec.programs.size()));
  cfg.seed = static_cast<std::uint64_t>(GetParam());
  mpsoc_system sys(spec.programs, spec.num_targets, cfg);
  const cycle_t horizon = 4000;
  sys.run(horizon);

  // 1. Requests delivered >= responses delivered >= completed txns.
  std::int64_t req = 0, resp = 0;
  for (int k = 0; k < sys.request_crossbar().num_buses(); ++k) {
    req += sys.request_crossbar().bus_at(k).delivered_packets();
  }
  for (int k = 0; k < sys.response_crossbar().num_buses(); ++k) {
    resp += sys.response_crossbar().bus_at(k).delivered_packets();
  }
  EXPECT_GE(req, resp) << "seed " << GetParam();
  EXPECT_GE(resp, sys.total_transactions()) << "seed " << GetParam();
  // At most one outstanding transaction per core.
  EXPECT_LE(req - sys.total_transactions(),
            static_cast<std::int64_t>(spec.programs.size()) * 2)
      << "seed " << GetParam();

  // 2. Latency is at least overhead + 1 cell for every packet.
  if (sys.packet_latency().count() > 0) {
    EXPECT_GE(sys.packet_latency().min(),
              static_cast<double>(cfg.request.transfer_overhead + 1))
        << "seed " << GetParam();
  }

  // 3. Bus busy cycles never exceed elapsed time.
  for (int k = 0; k < sys.request_crossbar().num_buses(); ++k) {
    EXPECT_LE(sys.request_crossbar().bus_at(k).busy_cycles(), horizon);
  }

  // 4. Trace events lie within the horizon and reference valid ids.
  for (const auto& e : sys.request_trace().events()) {
    EXPECT_GE(e.begin, 0);
    EXPECT_LT(e.begin, e.end);
    EXPECT_LE(e.end, sys.now());
    EXPECT_GE(e.target, 0);
    EXPECT_LT(e.target, spec.num_targets);
  }

  // 5. Per-target busy time never exceeds the horizon (a target receives
  // from exactly one bus).
  for (const cycle_t busy : sys.request_trace().total_busy_per_target()) {
    EXPECT_LE(busy, horizon) << "seed " << GetParam();
  }
}

TEST_P(SimRandom, FullCrossbarLatencyLowerBoundsPartial) {
  rng r(static_cast<std::uint64_t>(GetParam()) * 69621 + 101);
  const auto spec = make_random_spec(r);

  system_config full_cfg;
  full_cfg.request = crossbar_config::full(spec.num_targets);
  full_cfg.response =
      crossbar_config::full(static_cast<int>(spec.programs.size()));
  full_cfg.seed = 7;
  mpsoc_system full(spec.programs, spec.num_targets, full_cfg);
  full.run(4000);

  system_config shared_cfg = full_cfg;
  shared_cfg.request = crossbar_config::shared(spec.num_targets);
  shared_cfg.response =
      crossbar_config::shared(static_cast<int>(spec.programs.size()));
  mpsoc_system shared(spec.programs, spec.num_targets, shared_cfg);
  shared.run(4000);

  if (full.packet_latency().count() > 100 &&
      shared.packet_latency().count() > 100) {
    // The shared bus can never beat the full crossbar on mean latency
    // (same workload, strictly fewer resources). Tiny tolerance for
    // closed-loop scheduling noise.
    EXPECT_GE(shared.packet_latency().mean(),
              full.packet_latency().mean() * 0.98)
        << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimRandom, ::testing::Range(0, 30));

}  // namespace
}  // namespace stx::sim
