// Unit tests for the single-bus model.
#include "sim/bus.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.h"

namespace stx::sim {
namespace {

struct delivery {
  packet p;
  cycle_t begin = 0;
  cycle_t end = 0;
};

/// Steps the bus through [from, to) collecting deliveries.
std::vector<delivery> run_bus(bus& b, cycle_t from, cycle_t to) {
  std::vector<delivery> out;
  for (cycle_t now = from; now < to; ++now) {
    b.step(now, [&](const packet& p, cycle_t rb, cycle_t re) {
      out.push_back({p, rb, re});
    });
  }
  return out;
}

packet make_packet(int src, int dst, int cells, cycle_t issue) {
  packet p;
  p.source = src;
  p.dest = dst;
  p.cells = cells;
  p.issue = issue;
  return p;
}

TEST(Bus, SinglePacketLatencyIsOverheadPlusCells) {
  bus b(0, 2, arbitration::round_robin, /*overhead=*/2);
  b.enqueue(0, make_packet(0, 0, 4, 0));
  const auto dd = run_bus(b, 0, 20);
  ASSERT_EQ(dd.size(), 1u);
  EXPECT_EQ(dd[0].begin, 0);   // granted at cycle 0
  EXPECT_EQ(dd[0].end, 6);     // 2 overhead + 4 cells
  EXPECT_EQ(b.busy_cycles(), 6);
  EXPECT_EQ(b.delivered_packets(), 1);
}

TEST(Bus, ZeroOverheadSingleCell) {
  bus b(0, 1, arbitration::round_robin, 0);
  b.enqueue(0, make_packet(0, 0, 1, 0));
  const auto dd = run_bus(b, 0, 3);
  ASSERT_EQ(dd.size(), 1u);
  EXPECT_EQ(dd[0].end - dd[0].begin, 1);
  EXPECT_EQ(b.busy_cycles(), 1);
}

TEST(Bus, SerialisesCompetingPackets) {
  bus b(0, 2, arbitration::round_robin, 1);
  b.enqueue(0, make_packet(0, 0, 3, 0));
  b.enqueue(1, make_packet(1, 0, 3, 0));
  const auto dd = run_bus(b, 0, 30);
  ASSERT_EQ(dd.size(), 2u);
  // First transfer occupies [0,4), second [4,8): no overlap, no gap.
  EXPECT_EQ(dd[0].end, 4);
  EXPECT_EQ(dd[1].begin, 4);
  EXPECT_EQ(dd[1].end, 8);
  EXPECT_EQ(b.busy_cycles(), 8);
}

TEST(Bus, QueueDepthTracksBacklog) {
  bus b(0, 1, arbitration::round_robin, 0);
  b.enqueue(0, make_packet(0, 0, 10, 0));
  b.enqueue(0, make_packet(0, 0, 10, 0));
  b.enqueue(0, make_packet(0, 0, 10, 0));
  EXPECT_EQ(b.max_queue_depth(), 3);
  EXPECT_TRUE(b.has_backlog());
  run_bus(b, 0, 40);
  EXPECT_FALSE(b.has_backlog());
  EXPECT_TRUE(b.idle());
}

TEST(Bus, LatePacketWaitsForArbitration) {
  bus b(0, 2, arbitration::round_robin, 2);
  b.enqueue(0, make_packet(0, 0, 4, 0));
  std::vector<delivery> dd;
  for (cycle_t now = 0; now < 20; ++now) {
    if (now == 3) b.enqueue(1, make_packet(1, 0, 2, 3));
    b.step(now, [&](const packet& p, cycle_t rb, cycle_t re) {
      dd.push_back({p, rb, re});
    });
  }
  ASSERT_EQ(dd.size(), 2u);
  // First ends at 6; second granted at 6, ends at 10.
  EXPECT_EQ(dd[1].begin, 6);
  EXPECT_EQ(dd[1].end, 10);
}

TEST(Bus, DeliveryOrderWithinPortIsFifo) {
  bus b(0, 1, arbitration::round_robin, 0);
  for (int i = 0; i < 5; ++i) {
    auto p = make_packet(0, 0, 1, 0);
    p.txn = i;
    b.enqueue(0, p);
  }
  const auto dd = run_bus(b, 0, 10);
  ASSERT_EQ(dd.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(dd[static_cast<std::size_t>(i)].p.txn, i);
  }
}

TEST(Bus, RejectsBadEnqueue) {
  bus b(0, 2, arbitration::round_robin, 0);
  EXPECT_THROW(b.enqueue(5, make_packet(0, 0, 1, 0)),
               invalid_argument_error);
  EXPECT_THROW(b.enqueue(0, make_packet(0, 0, 0, 0)),
               invalid_argument_error);
}

TEST(Bus, UtilisationIsFullUnderSaturation) {
  bus b(0, 1, arbitration::round_robin, 1);
  for (int i = 0; i < 10; ++i) b.enqueue(0, make_packet(0, 0, 4, 0));
  run_bus(b, 0, 50);  // 10 packets x 5 cycles each = 50 busy cycles
  EXPECT_EQ(b.busy_cycles(), 50);
  EXPECT_EQ(b.delivered_packets(), 10);
}

}  // namespace
}  // namespace stx::sim
