// Unit tests for the program-driven core model.
#include "sim/core.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.h"

namespace stx::sim {
namespace {

core_op compute_op(cycle_t cycles) {
  core_op op;
  op.op = core_op::kind::compute;
  op.cycles = cycles;
  return op;
}

core_op read_op(int target, int cells) {
  core_op op;
  op.op = core_op::kind::read;
  op.target = target;
  op.cells = cells;
  return op;
}

core_op write_op(int target, int cells) {
  core_op op;
  op.op = core_op::kind::write;
  op.target = target;
  op.cells = cells;
  return op;
}

core_params no_jitter_params() {
  core_params p;
  p.compute_jitter = 0.0;
  return p;
}

TEST(Core, ReadBlocksUntilResponse) {
  core c(0, {read_op(2, 8)}, no_jitter_params(), rng(1));
  barrier_board board;
  std::vector<packet> sent;
  const send_fn sink = [&](const packet& p) { sent.push_back(p); };

  c.step(0, sink, board);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].kind, packet_kind::request_read);
  EXPECT_EQ(sent[0].dest, 2);
  EXPECT_EQ(sent[0].response_cells, 8);
  EXPECT_TRUE(c.waiting());

  // Stays blocked while the response is in flight.
  for (cycle_t now = 1; now < 10; ++now) c.step(now, sink, board);
  EXPECT_EQ(sent.size(), 1u);

  packet resp;
  resp.kind = packet_kind::response_read;
  resp.txn = sent[0].txn;
  resp.dest = 0;
  c.on_response(resp, 12);
  EXPECT_FALSE(c.waiting());
  EXPECT_EQ(c.transactions(), 1);
  EXPECT_DOUBLE_EQ(c.round_trip().max(), 12.0);

  // Program loops: next step issues the read again.
  c.step(13, sink, board);
  EXPECT_EQ(sent.size(), 2u);
  EXPECT_EQ(c.iterations(), 1);
}

TEST(Core, WriteCarriesPayloadAndAwaitsAck) {
  core c(0, {write_op(1, 16)}, no_jitter_params(), rng(1));
  barrier_board board;
  std::vector<packet> sent;
  const send_fn sink = [&](const packet& p) { sent.push_back(p); };
  c.step(0, sink, board);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].kind, packet_kind::request_write);
  EXPECT_EQ(sent[0].cells, 16);
  EXPECT_EQ(sent[0].response_cells, 1);
}

TEST(Core, ComputeConsumesExactCyclesWithoutJitter) {
  core c(0, {compute_op(5), read_op(0, 1)}, no_jitter_params(), rng(1));
  barrier_board board;
  std::vector<cycle_t> issue_times;
  const send_fn sink = [&](const packet& p) { issue_times.push_back(p.issue); };
  for (cycle_t now = 0; now < 10 && issue_times.empty(); ++now) {
    c.step(now, sink, board);
  }
  ASSERT_EQ(issue_times.size(), 1u);
  EXPECT_EQ(issue_times[0], 5);  // compute occupied cycles [0,5)
}

TEST(Core, ZeroComputeTakesOneCycle) {
  core c(0, {compute_op(0), read_op(0, 1)}, no_jitter_params(), rng(1));
  barrier_board board;
  std::vector<cycle_t> issue_times;
  const send_fn sink = [&](const packet& p) { issue_times.push_back(p.issue); };
  for (cycle_t now = 0; now < 5 && issue_times.empty(); ++now) {
    c.step(now, sink, board);
  }
  ASSERT_EQ(issue_times.size(), 1u);
  EXPECT_EQ(issue_times[0], 1);  // op slot still costs a cycle
}

TEST(Core, LoopStartSkipsPrologue) {
  // Prologue: long compute. Body: read. After the first iteration the
  // prologue must not run again.
  core c(0, {compute_op(50), read_op(0, 1)}, no_jitter_params(), rng(1),
         /*loop_start=*/1);
  barrier_board board;
  std::vector<cycle_t> issue_times;
  const send_fn sink = [&](const packet& p) { issue_times.push_back(p.issue); };
  cycle_t now = 0;
  for (; now < 200 && issue_times.size() < 2; ++now) {
    c.step(now, sink, board);
    if (!issue_times.empty() && c.waiting()) {
      packet resp;
      resp.kind = packet_kind::response_read;
      resp.txn = issue_times.size();  // txns count from 1
      c.on_response(resp, now + 1);
    }
  }
  ASSERT_EQ(issue_times.size(), 2u);
  EXPECT_EQ(issue_times[0], 50);
  // Second issue follows immediately after the response, not after
  // another 50-cycle prologue.
  EXPECT_LT(issue_times[1], 60);
}

TEST(Core, RejectsEmptyProgramAndBadOps) {
  EXPECT_THROW(core(0, {}, no_jitter_params(), rng(1)),
               invalid_argument_error);
  core_op bad_barrier;
  bad_barrier.op = core_op::kind::barrier;
  bad_barrier.group_size = 0;
  EXPECT_THROW(core(0, {bad_barrier}, no_jitter_params(), rng(1)),
               invalid_argument_error);
  EXPECT_THROW(core(0, {read_op(0, 0)}, no_jitter_params(), rng(1)),
               invalid_argument_error);
  EXPECT_THROW(core(0, {read_op(0, 1)}, no_jitter_params(), rng(1),
                    /*loop_start=*/5),
               invalid_argument_error);
}

TEST(Core, ResponseTxnMismatchIsInternalError) {
  core c(0, {read_op(0, 1)}, no_jitter_params(), rng(1));
  barrier_board board;
  const send_fn sink = [](const packet&) {};
  c.step(0, sink, board);
  packet wrong;
  wrong.txn = 999;
  EXPECT_THROW(c.on_response(wrong, 1), internal_error);
}

TEST(BarrierBoard, OpensAtGroupSize) {
  barrier_board board;
  EXPECT_FALSE(board.open(1, 0, 2));
  board.arrive(1, 0);
  EXPECT_FALSE(board.open(1, 0, 2));
  board.arrive(1, 0);
  EXPECT_TRUE(board.open(1, 0, 2));
  // Different epoch is independent.
  EXPECT_FALSE(board.open(1, 1, 2));
  // Different barrier id is independent.
  EXPECT_FALSE(board.open(2, 0, 2));
}

}  // namespace
}  // namespace stx::sim
