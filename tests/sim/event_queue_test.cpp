// Event-queue and event-kernel edge cases: deterministic ordering of
// simultaneous wakes, zero-length horizons, events at horizon-1, and
// re-arming components that are already queued.
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/engine.h"
#include "sim/system.h"
#include "util/error.h"
#include "util/random.h"

namespace stx::sim {
namespace {

TEST(EventQueue, PopsInCycleMajorOrder) {
  event_queue q;
  q.push({30, phase_core, 0});
  q.push({10, phase_response_bus, 5});
  q.push({20, phase_target, 1});
  EXPECT_EQ(q.pop().cycle, 10);
  EXPECT_EQ(q.pop().cycle, 20);
  EXPECT_EQ(q.pop().cycle, 30);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SimultaneousWakesOrderByPhaseThenComponent) {
  // Same cycle: the polling loop's sweep order (cores, request buses,
  // targets, response buses), then component id as the stable tie-break.
  event_queue q;
  q.push({5, phase_target, 2});
  q.push({5, phase_core, 3});
  q.push({5, phase_core, 1});
  q.push({5, phase_response_bus, 0});
  q.push({5, phase_request_bus, 4});
  std::vector<event_key> popped;
  while (!q.empty()) popped.push_back(q.pop());
  ASSERT_EQ(popped.size(), 5u);
  EXPECT_EQ(popped[0], (event_key{5, phase_core, 1}));
  EXPECT_EQ(popped[1], (event_key{5, phase_core, 3}));
  EXPECT_EQ(popped[2], (event_key{5, phase_request_bus, 4}));
  EXPECT_EQ(popped[3], (event_key{5, phase_target, 2}));
  EXPECT_EQ(popped[4], (event_key{5, phase_response_bus, 0}));
}

TEST(EventQueue, RandomKeysAlwaysPopSorted) {
  rng r(99);
  event_queue q;
  std::vector<event_key> keys;
  for (int i = 0; i < 500; ++i) {
    event_key k{static_cast<cycle_t>(r.uniform_int(0, 50)),
                static_cast<int>(r.uniform_int(0, 3)),
                static_cast<int>(r.uniform_int(0, 7))};
    keys.push_back(k);
    q.push(k);
  }
  EXPECT_EQ(q.size(), keys.size());
  EXPECT_EQ(q.total_pushed(), 500);
  std::sort(keys.begin(), keys.end());
  for (const auto& expected : keys) EXPECT_EQ(q.pop(), expected);
}

TEST(EventQueue, DuplicateKeysAreLegal) {
  event_queue q;
  q.push({7, phase_core, 0});
  q.push({7, phase_core, 0});
  EXPECT_EQ(q.pop(), q.pop());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, AccessorsThrowOnEmpty) {
  event_queue q;
  EXPECT_THROW(q.top(), invalid_argument_error);
  EXPECT_THROW(q.pop(), invalid_argument_error);
}

// ---- Engine-level edge cases, driven through mpsoc_system.

core_op read_op(int target, int cells) {
  core_op op;
  op.op = core_op::kind::read;
  op.target = target;
  op.cells = cells;
  return op;
}

core_op compute_op(cycle_t cycles) {
  core_op op;
  op.op = core_op::kind::compute;
  op.cycles = cycles;
  return op;
}

system_config event_config(int n) {
  system_config cfg;
  cfg.request = crossbar_config::full(n);
  cfg.response = crossbar_config::full(n);
  cfg.core.compute_jitter = 0.0;
  return cfg;
}

TEST(EventKernel, ZeroLengthHorizonIsANoOp) {
  auto cfg = event_config(1);
  mpsoc_system sys({{read_op(0, 4)}}, 1, cfg);
  sys.run(0);
  EXPECT_EQ(sys.now(), 0);
  EXPECT_EQ(sys.total_transactions(), 0);
  EXPECT_EQ(sys.event_stats().events_processed, 0);
  // Re-running to the same horizon is also a no-op.
  sys.run(50);
  const auto t = sys.total_transactions();
  const auto processed = sys.event_stats().events_processed;
  sys.run(50);
  EXPECT_EQ(sys.total_transactions(), t);
  EXPECT_EQ(sys.event_stats().events_processed, processed);
}

TEST(EventKernel, EventsAtHorizonMinusOneAreProcessed) {
  // A 1-cell read with zero overheads round-trips quickly; run once to
  // the full horizon and once stopping at EVERY intermediate cycle: a
  // horizon-edge bug (events at h-1 dropped or double-run) would make
  // the segmented run diverge from the single-shot run.
  auto cfg = event_config(2);
  cfg.request.transfer_overhead = 0;
  cfg.response.transfer_overhead = 0;
  cfg.target.service_latency = 0;
  const std::vector<std::vector<core_op>> progs = {{read_op(0, 1)},
                                                   {read_op(1, 1)}};
  mpsoc_system whole(progs, 2, cfg);
  whole.run(100);
  mpsoc_system evt(progs, 2, cfg);
  for (cycle_t h = 1; h <= 100; ++h) evt.run(h);  // every split point
  EXPECT_GT(whole.total_transactions(), 0);
  EXPECT_EQ(whole.total_transactions(), evt.total_transactions());
  EXPECT_TRUE(whole.request_trace() == evt.request_trace());
  EXPECT_TRUE(whole.response_trace() == evt.response_trace());
  EXPECT_EQ(whole.packet_latency().count(), evt.packet_latency().count());
  EXPECT_DOUBLE_EQ(whole.packet_latency().sum(), evt.packet_latency().sum());
}

TEST(EventKernel, ReArmingAQueuedComponentStepsItOncePerCycle) {
  // Two cores hammering the same target produce overlapping wake causes
  // (self re-arm + enqueue wakes + completion wakes) for the shared bus:
  // the engine must drop the duplicates, not double-step the component.
  // Double-stepping would also desynchronise segmented runs, so compare
  // against a run split at every cycle.
  system_config cfg;
  cfg.request = crossbar_config::shared(1);
  cfg.response = crossbar_config::shared(2);
  cfg.core.compute_jitter = 0.0;
  const std::vector<std::vector<core_op>> progs = {{read_op(0, 2)},
                                                   {read_op(0, 3)}};
  mpsoc_system evt(progs, 1, cfg);
  evt.run(2000);
  EXPECT_GT(evt.event_stats().events_skipped, 0);
  EXPECT_GT(evt.total_transactions(), 0);

  mpsoc_system split(progs, 1, cfg);
  for (cycle_t h = 50; h <= 2000; h += 50) split.run(h);
  EXPECT_EQ(split.total_transactions(), evt.total_transactions());
  EXPECT_TRUE(split.request_trace() == evt.request_trace());
  EXPECT_DOUBLE_EQ(split.packet_latency().sum(), evt.packet_latency().sum());
}

TEST(EventKernel, IdleSpansAreActuallySkipped) {
  // 10k compute cycles between tiny transfers: the event kernel must
  // visit far fewer cycles than the horizon.
  auto cfg = event_config(1);
  mpsoc_system sys({{compute_op(10'000), read_op(0, 1)}}, 1, cfg);
  sys.run(100'000);
  EXPECT_GT(sys.total_transactions(), 5);
  EXPECT_LT(sys.event_stats().cycles_visited, 2'000);
}

TEST(EventKernel, StatsAccumulateAcrossSegments) {
  auto cfg = event_config(1);
  mpsoc_system sys({{read_op(0, 4)}}, 1, cfg);
  sys.run(500);
  const auto first = sys.event_stats().events_processed;
  EXPECT_GT(first, 0);
  sys.run(1000);
  EXPECT_GT(sys.event_stats().events_processed, first);
}

}  // namespace
}  // namespace stx::sim
