// sim::batch driver basics: construction rules, resumability, observers.
#include "sim/batch.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "workloads/mpsoc_apps.h"

namespace stx::sim {
namespace {

system_config full_config(const workloads::app_spec& app,
                          std::uint64_t seed) {
  system_config cfg;
  cfg.request = crossbar_config::full(app.num_targets);
  cfg.response = crossbar_config::full(app.num_initiators);
  cfg.record_traces = false;
  cfg.seed = seed;
  return cfg;
}

TEST(Batch, RefusesTraceRecordingConfigs) {
  const auto app = *workloads::make_app_by_name("qsort");
  auto batch = workloads::make_batch(app);
  auto cfg = full_config(app, 1);
  cfg.record_traces = true;
  EXPECT_THROW(batch.add_instance(cfg), invalid_argument_error);
}

TEST(Batch, ValidatesCrossbarShapes) {
  const auto app = *workloads::make_app_by_name("qsort");
  auto batch = workloads::make_batch(app);
  auto cfg = full_config(app, 1);
  cfg.request.binding.push_back(0);  // one endpoint too many
  EXPECT_THROW(batch.add_instance(cfg), invalid_argument_error);
}

TEST(Batch, RefusesInstancesAfterTheFirstRun) {
  const auto app = *workloads::make_app_by_name("qsort");
  auto batch = workloads::make_batch(app);
  batch.add_instance(full_config(app, 1));
  batch.run(1'000);
  EXPECT_THROW(batch.add_instance(full_config(app, 2)),
               invalid_argument_error);
}

TEST(Batch, SegmentedRunsMatchOneLongRun) {
  const auto app = *workloads::make_app_by_name("mat1");
  auto one = workloads::make_batch(app);
  one.add_instance(full_config(app, 7));
  one.run(20'000);

  auto segmented = workloads::make_batch(app);
  segmented.add_instance(full_config(app, 7));
  segmented.run(4'000);
  segmented.run(9'000);
  segmented.run(20'000);

  EXPECT_TRUE(one.metrics(0) == segmented.metrics(0));
  EXPECT_TRUE(one.observers(0) == segmented.observers(0));
  EXPECT_EQ(segmented.now(), 20'000);
}

TEST(Batch, ObserversMatchTheSessionSystemCounters) {
  const auto app = *workloads::make_app_by_name("qsort");
  auto batch = workloads::make_batch(app);
  batch.add_instance(full_config(app, 3));
  batch.run(15'000);

  auto session = workloads::make_full_crossbar_session(app, full_config(app, 3));
  session.run(15'000);

  const auto obs = batch.observers(0);
  cycle_t busy = 0;
  std::int64_t delivered = 0;
  int depth = 0;
  std::int64_t served = 0;
  const auto& sys = session.system();
  for (const auto* xb : {&sys.request_crossbar(), &sys.response_crossbar()}) {
    for (int k = 0; k < xb->num_buses(); ++k) {
      busy += xb->bus_at(k).busy_cycles();
      delivered += xb->bus_at(k).delivered_packets();
      depth = std::max(depth, xb->bus_at(k).max_queue_depth());
    }
  }
  for (int t = 0; t < sys.num_targets(); ++t) {
    served += sys.target_at(t).served();
  }
  EXPECT_EQ(obs.busy_cycles, busy);
  EXPECT_EQ(obs.delivered_packets, delivered);
  EXPECT_EQ(obs.max_queue_depth, depth);
  EXPECT_EQ(obs.replies_served, served);
}

TEST(Batch, MixedInstancesDoNotInterfere) {
  // One batch holding different seeds and shapes must reproduce the
  // exact metrics of each instance simulated alone.
  const auto app = *workloads::make_app_by_name("qsort");
  auto cfg_a = full_config(app, 11);
  auto cfg_b = full_config(app, 12);
  cfg_b.request = crossbar_config::shared(app.num_targets);
  auto cfg_c = full_config(app, 13);
  cfg_c.request.policy = arbitration::least_recently_granted;
  cfg_c.response.policy = arbitration::fixed_priority;

  auto mixed = workloads::make_batch(app);
  mixed.add_instance(cfg_a);
  mixed.add_instance(cfg_b);
  mixed.add_instance(cfg_c);
  mixed.run(12'000);

  int b = 0;
  for (const auto& cfg : {cfg_a, cfg_b, cfg_c}) {
    auto solo = workloads::make_batch(app);
    solo.add_instance(cfg);
    solo.run(12'000);
    EXPECT_TRUE(mixed.metrics(b) == solo.metrics(0)) << "instance " << b;
    EXPECT_TRUE(mixed.observers(b) == solo.observers(0)) << "instance " << b;
    ++b;
  }
}

TEST(Batch, InstanceIndexOutOfRangeThrows) {
  const auto app = *workloads::make_app_by_name("qsort");
  auto batch = workloads::make_batch(app);
  batch.add_instance(full_config(app, 1));
  batch.run(100);
  EXPECT_THROW(batch.metrics(1), invalid_argument_error);
  EXPECT_THROW(batch.observers(-1), invalid_argument_error);
}

}  // namespace
}  // namespace stx::sim
