// Differential verification of the simulation kernels: the event-driven
// engine must be bit-identical to the legacy polling loop — same traces,
// same latency statistics, same per-component counters — on every
// built-in application and on randomized systems (partial crossbars,
// barriers, every arbitration policy).
#include <gtest/gtest.h>

#include <vector>

#include "sim/system.h"
#include "util/random.h"
#include "workloads/mpsoc_apps.h"

namespace stx::sim {
namespace {

/// Full bit-identity check between two finished systems.
void expect_identical(const mpsoc_system& a, const mpsoc_system& b,
                      const std::string& label) {
  EXPECT_TRUE(a.request_trace() == b.request_trace()) << label;
  EXPECT_TRUE(a.response_trace() == b.response_trace()) << label;
  EXPECT_EQ(a.total_transactions(), b.total_transactions()) << label;
  EXPECT_EQ(a.total_iterations(), b.total_iterations()) << label;
  const auto la = a.packet_latency();
  const auto lb = b.packet_latency();
  EXPECT_EQ(la.count(), lb.count()) << label;
  EXPECT_DOUBLE_EQ(la.sum(), lb.sum()) << label;
  EXPECT_DOUBLE_EQ(la.mean(), lb.mean()) << label;
  EXPECT_DOUBLE_EQ(la.variance(), lb.variance()) << label;
  if (la.count() > 0 && la.keeps_samples() && lb.keeps_samples()) {
    EXPECT_DOUBLE_EQ(la.percentile(0.99), lb.percentile(0.99)) << label;
  }
  const auto ca = a.critical_packet_latency();
  const auto cb = b.critical_packet_latency();
  EXPECT_EQ(ca.count(), cb.count()) << label;
  EXPECT_DOUBLE_EQ(ca.sum(), cb.sum()) << label;
  for (int k = 0; k < a.request_crossbar().num_buses(); ++k) {
    EXPECT_EQ(a.request_crossbar().bus_at(k).busy_cycles(),
              b.request_crossbar().bus_at(k).busy_cycles())
        << label << " request bus " << k;
    EXPECT_EQ(a.request_crossbar().bus_at(k).delivered_packets(),
              b.request_crossbar().bus_at(k).delivered_packets())
        << label << " request bus " << k;
    EXPECT_EQ(a.request_crossbar().bus_at(k).max_queue_depth(),
              b.request_crossbar().bus_at(k).max_queue_depth())
        << label << " request bus " << k;
  }
  for (int k = 0; k < a.response_crossbar().num_buses(); ++k) {
    EXPECT_EQ(a.response_crossbar().bus_at(k).busy_cycles(),
              b.response_crossbar().bus_at(k).busy_cycles())
        << label << " response bus " << k;
  }
  for (int i = 0; i < a.num_cores(); ++i) {
    EXPECT_EQ(a.core_at(i).transactions(), b.core_at(i).transactions())
        << label << " core " << i;
    EXPECT_EQ(a.core_at(i).iterations(), b.core_at(i).iterations())
        << label << " core " << i;
    EXPECT_DOUBLE_EQ(a.core_at(i).round_trip().sum(),
                     b.core_at(i).round_trip().sum())
        << label << " core " << i;
  }
  for (int t = 0; t < a.num_targets(); ++t) {
    EXPECT_EQ(a.target_at(t).served(), b.target_at(t).served())
        << label << " target " << t;
  }
}

TEST(KernelEquivalence, AllBuiltinAppsFullCrossbar) {
  for (const auto& name : workloads::app_names()) {
    const auto app = *workloads::make_app_by_name(name);
    system_config cfg;
    cfg.seed = 11;
    cfg.kernel = kernel_kind::polling;
    auto poll = workloads::make_full_crossbar_system(app, cfg);
    cfg.kernel = kernel_kind::event;
    auto evt = workloads::make_full_crossbar_system(app, cfg);
    poll.run(40'000);
    evt.run(40'000);
    expect_identical(poll, evt, name);
  }
}

TEST(KernelEquivalence, BuiltinAppsOnSharedBuses) {
  // The congested extreme: one bus per direction, maximum arbitration
  // pressure and queue depth.
  for (const std::string name : {"mat2", "qsort"}) {
    const auto app = *workloads::make_app_by_name(name);
    system_config cfg;
    cfg.request = crossbar_config::shared(app.num_targets);
    cfg.response = crossbar_config::shared(app.num_initiators);
    cfg.kernel = kernel_kind::polling;
    auto poll = workloads::make_system(app, cfg.request, cfg.response, cfg);
    cfg.kernel = kernel_kind::event;
    auto evt = workloads::make_system(app, cfg.request, cfg.response, cfg);
    poll.run(20'000);
    evt.run(20'000);
    expect_identical(poll, evt, name + "-shared");
  }
}

TEST(KernelEquivalence, SegmentedEventRunMatchesOneLongPollingRun) {
  const auto app = *workloads::make_app_by_name("mat2");
  system_config cfg;
  cfg.seed = 23;
  cfg.kernel = kernel_kind::polling;
  auto poll = workloads::make_full_crossbar_system(app, cfg);
  poll.run(15'000);
  cfg.kernel = kernel_kind::event;
  auto evt = workloads::make_full_crossbar_system(app, cfg);
  for (cycle_t h : {1, 2, 40, 41, 999, 7'000, 7'001, 14'999, 15'000}) {
    evt.run(h);
  }
  expect_identical(poll, evt, "mat2-segmented");
}

/// Random closed-loop system with optional all-core barriers.
struct random_spec {
  std::vector<std::vector<core_op>> programs;
  int num_targets = 0;
};

random_spec make_random_spec(rng& r) {
  random_spec spec;
  const int cores = static_cast<int>(r.uniform_int(2, 6));
  spec.num_targets = static_cast<int>(r.uniform_int(2, 6));
  const bool with_barrier = r.chance(0.3);
  const int barrier_target =
      static_cast<int>(r.uniform_int(0, spec.num_targets - 1));
  for (int c = 0; c < cores; ++c) {
    std::vector<core_op> prog;
    const int ops = static_cast<int>(r.uniform_int(1, 6));
    for (int o = 0; o < ops; ++o) {
      core_op op;
      const int kind = static_cast<int>(r.uniform_int(0, 2));
      if (kind == 0) {
        op.op = core_op::kind::compute;
        op.cycles = r.uniform_int(0, 120);
      } else {
        op.op = kind == 1 ? core_op::kind::read : core_op::kind::write;
        op.target =
            static_cast<int>(r.uniform_int(0, spec.num_targets - 1));
        op.cells = static_cast<int>(r.uniform_int(1, 24));
        op.critical = r.chance(0.1);
      }
      prog.push_back(op);
    }
    if (with_barrier) {
      // Same barrier in every program so the group can actually open —
      // barrier traffic is where wake propagation is hardest.
      core_op b;
      b.op = core_op::kind::barrier;
      b.target = barrier_target;
      b.barrier_id = 0;
      b.group_size = cores;
      prog.push_back(b);
    } else {
      bool has_transfer = false;
      for (const auto& op : prog) {
        has_transfer |= op.op != core_op::kind::compute;
      }
      if (!has_transfer) {
        core_op op;
        op.op = core_op::kind::read;
        op.target = 0;
        op.cells = 4;
        prog.push_back(op);
      }
    }
    spec.programs.push_back(std::move(prog));
  }
  return spec;
}

crossbar_config random_partial(rng& r, int endpoints) {
  const int buses = static_cast<int>(r.uniform_int(1, endpoints));
  std::vector<int> binding;
  for (int e = 0; e < endpoints; ++e) {
    binding.push_back(static_cast<int>(r.uniform_int(0, buses - 1)));
  }
  return crossbar_config::partial(buses, binding);
}

class KernelEquivalenceRandom : public ::testing::TestWithParam<int> {};

TEST_P(KernelEquivalenceRandom, RandomSystemsAreBitIdentical) {
  rng r(static_cast<std::uint64_t>(GetParam()) * 104'729 + 7);
  const auto spec = make_random_spec(r);
  system_config cfg;
  cfg.request = random_partial(r, spec.num_targets);
  cfg.response =
      random_partial(r, static_cast<int>(spec.programs.size()));
  const auto policies = {arbitration::fixed_priority,
                         arbitration::round_robin,
                         arbitration::least_recently_granted};
  cfg.request.policy = *(policies.begin() + GetParam() % 3);
  cfg.response.policy = cfg.request.policy;
  cfg.request.transfer_overhead = r.uniform_int(0, 4);
  cfg.response.transfer_overhead = r.uniform_int(0, 4);
  cfg.target.service_latency = r.uniform_int(0, 8);
  cfg.seed = static_cast<std::uint64_t>(GetParam());
  cfg.kernel = kernel_kind::polling;
  mpsoc_system poll(spec.programs, spec.num_targets, cfg);
  cfg.kernel = kernel_kind::event;
  mpsoc_system evt(spec.programs, spec.num_targets, cfg);
  poll.run(5'000);
  evt.run(5'000);
  expect_identical(poll, evt,
                   "seed " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelEquivalenceRandom,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace stx::sim
