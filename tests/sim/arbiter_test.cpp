// Unit tests for arbitration policies.
#include "sim/arbiter.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace stx::sim {
namespace {

TEST(Arbiter, FixedPriorityPicksLowestIndex) {
  auto a = make_arbiter(arbitration::fixed_priority, 4);
  EXPECT_EQ(a->pick({false, true, true, false}, 0), 1);
  EXPECT_EQ(a->pick({false, true, true, false}, 1), 1);  // no rotation
  EXPECT_EQ(a->pick({true, true, true, true}, 2), 0);
}

TEST(Arbiter, NoRequestsReturnsMinusOne) {
  for (auto policy :
       {arbitration::fixed_priority, arbitration::round_robin,
        arbitration::least_recently_granted}) {
    auto a = make_arbiter(policy, 3);
    EXPECT_EQ(a->pick({false, false, false}, 0), -1);
  }
}

TEST(Arbiter, RoundRobinRotatesThroughRequesters) {
  auto a = make_arbiter(arbitration::round_robin, 3);
  const std::vector<bool> all = {true, true, true};
  EXPECT_EQ(a->pick(all, 0), 0);
  EXPECT_EQ(a->pick(all, 1), 1);
  EXPECT_EQ(a->pick(all, 2), 2);
  EXPECT_EQ(a->pick(all, 3), 0);  // wraps
}

TEST(Arbiter, RoundRobinSkipsIdlePorts) {
  auto a = make_arbiter(arbitration::round_robin, 4);
  EXPECT_EQ(a->pick({true, false, true, false}, 0), 0);
  EXPECT_EQ(a->pick({true, false, true, false}, 1), 2);
  EXPECT_EQ(a->pick({true, false, true, false}, 2), 0);
}

TEST(Arbiter, RoundRobinIsWorkConserving) {
  auto a = make_arbiter(arbitration::round_robin, 3);
  EXPECT_EQ(a->pick({false, false, true}, 0), 2);
  EXPECT_EQ(a->pick({true, false, false}, 1), 0);
}

TEST(Arbiter, LeastRecentlyGrantedPrefersLongestWait) {
  auto a = make_arbiter(arbitration::least_recently_granted, 3);
  const std::vector<bool> all = {true, true, true};
  EXPECT_EQ(a->pick(all, 0), 0);  // all tied: lowest index
  EXPECT_EQ(a->pick(all, 1), 1);  // 0 just granted
  EXPECT_EQ(a->pick(all, 2), 2);
  EXPECT_EQ(a->pick(all, 3), 0);  // 0 waited longest now
  // Port 1 sits out a few grants, then has priority over port 2.
  EXPECT_EQ(a->pick({false, true, true}, 4), 1);
}

TEST(Arbiter, FairnessUnderSaturation) {
  // Round robin: after N*k picks with all ports requesting, every port
  // granted exactly k times.
  auto a = make_arbiter(arbitration::round_robin, 4);
  std::vector<int> grants(4, 0);
  const std::vector<bool> all(4, true);
  for (int i = 0; i < 400; ++i) {
    ++grants[static_cast<std::size_t>(a->pick(all, i))];
  }
  for (int g : grants) EXPECT_EQ(g, 100);
}

TEST(Arbiter, FactoryRejectsZeroPorts) {
  EXPECT_THROW(make_arbiter(arbitration::round_robin, 0),
               invalid_argument_error);
}

TEST(Arbiter, PolicyNames) {
  EXPECT_STREQ(to_string(arbitration::fixed_priority), "fixed_priority");
  EXPECT_STREQ(to_string(arbitration::round_robin), "round_robin");
  EXPECT_STREQ(to_string(arbitration::least_recently_granted),
               "least_recently_granted");
}

}  // namespace
}  // namespace stx::sim
