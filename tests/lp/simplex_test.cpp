// Unit tests for the bounded-variable two-phase simplex solver.
#include "lp/simplex.h"

#include <gtest/gtest.h>

#include "lp/model.h"
#include "util/error.h"

namespace stx::lp {
namespace {

TEST(Simplex, SolvesTextbookTwoVariableMax) {
  // max 3a + 5b s.t. a <= 4; 2b <= 12; 3a + 2b <= 18  (as min of negation)
  // Optimum: a=2, b=6, obj = 36.
  model m;
  const int a = m.add_variable(0, infinity, -3, "a");
  const int b = m.add_variable(0, infinity, -5, "b");
  m.add_row({{a, 1}}, relation::less_equal, 4);
  m.add_row({{b, 2}}, relation::less_equal, 12);
  m.add_row({{a, 3}, {b, 2}}, relation::less_equal, 18);

  const auto res = solve_simplex(m);
  ASSERT_EQ(res.status, solve_status::optimal);
  EXPECT_NEAR(res.objective, -36.0, 1e-6);
  EXPECT_NEAR(res.x[0], 2.0, 1e-6);
  EXPECT_NEAR(res.x[1], 6.0, 1e-6);
}

TEST(Simplex, HandlesEqualityRows) {
  // min x + y  s.t.  x + y = 10, x - y = 4  ->  x=7, y=3.
  model m;
  const int x = m.add_variable(0, infinity, 1);
  const int y = m.add_variable(0, infinity, 1);
  m.add_row({{x, 1}, {y, 1}}, relation::equal, 10);
  m.add_row({{x, 1}, {y, -1}}, relation::equal, 4);

  const auto res = solve_simplex(m);
  ASSERT_EQ(res.status, solve_status::optimal);
  EXPECT_NEAR(res.x[0], 7.0, 1e-6);
  EXPECT_NEAR(res.x[1], 3.0, 1e-6);
  EXPECT_NEAR(res.objective, 10.0, 1e-6);
}

TEST(Simplex, HandlesGreaterEqualRows) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1 -> x=4 (cheaper), y=0: obj 8.
  model m;
  const int x = m.add_variable(0, infinity, 2);
  const int y = m.add_variable(0, infinity, 3);
  m.add_row({{x, 1}, {y, 1}}, relation::greater_equal, 4);
  m.add_row({{x, 1}}, relation::greater_equal, 1);

  const auto res = solve_simplex(m);
  ASSERT_EQ(res.status, solve_status::optimal);
  EXPECT_NEAR(res.objective, 8.0, 1e-6);
  EXPECT_NEAR(res.x[0], 4.0, 1e-6);
}

TEST(Simplex, RespectsUpperBoundsWithoutExplicitRows) {
  // min -x - y with x in [0,3], y in [0,2], x + y <= 4 -> x=3, y=1 or x=2,y=2.
  model m;
  const int x = m.add_variable(0, 3, -1);
  const int y = m.add_variable(0, 2, -1);
  m.add_row({{x, 1}, {y, 1}}, relation::less_equal, 4);

  const auto res = solve_simplex(m);
  ASSERT_EQ(res.status, solve_status::optimal);
  EXPECT_NEAR(res.objective, -4.0, 1e-6);
  EXPECT_TRUE(m.is_feasible(res.x));
}

TEST(Simplex, DetectsInfeasibility) {
  model m;
  const int x = m.add_variable(0, 1, 0);
  m.add_row({{x, 1}}, relation::greater_equal, 2);
  EXPECT_EQ(solve_simplex(m).status, solve_status::infeasible);
}

TEST(Simplex, DetectsInfeasibleEqualitySystem) {
  model m;
  const int x = m.add_variable(0, infinity, 1);
  const int y = m.add_variable(0, infinity, 1);
  m.add_row({{x, 1}, {y, 1}}, relation::equal, 1);
  m.add_row({{x, 1}, {y, 1}}, relation::equal, 2);
  EXPECT_EQ(solve_simplex(m).status, solve_status::infeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  model m;
  const int x = m.add_variable(0, infinity, -1);
  const int y = m.add_variable(0, infinity, 0);
  m.add_row({{x, 1}, {y, -1}}, relation::less_equal, 1);
  EXPECT_EQ(solve_simplex(m).status, solve_status::unbounded);
}

TEST(Simplex, HandlesNegativeLowerBounds) {
  // min x with x in [-5, 5], x >= -3  ->  x = -3.
  model m;
  const int x = m.add_variable(-5, 5, 1);
  m.add_row({{x, 1}}, relation::greater_equal, -3);
  const auto res = solve_simplex(m);
  ASSERT_EQ(res.status, solve_status::optimal);
  EXPECT_NEAR(res.x[0], -3.0, 1e-6);
}

TEST(Simplex, HandlesFreeVariables) {
  // min x + y with x free, y >= 0, x + y >= 2, x >= -10 -> x=-10? No:
  // min x: drives x down to the -10 row bound; y picks up the slack.
  model m;
  const int x = m.add_variable(-infinity, infinity, 1);
  const int y = m.add_variable(0, infinity, 2);
  m.add_row({{x, 1}, {y, 1}}, relation::greater_equal, 2);
  m.add_row({{x, 1}}, relation::greater_equal, -10);
  const auto res = solve_simplex(m);
  ASSERT_EQ(res.status, solve_status::optimal);
  EXPECT_NEAR(res.x[0], 2.0, 1e-6);  // y costs 2 > x's 1, so x carries all
  EXPECT_NEAR(res.x[1], 0.0, 1e-6);
}

TEST(Simplex, EmptyModelIsTriviallyOptimal) {
  model m;
  const auto res = solve_simplex(m);
  EXPECT_EQ(res.status, solve_status::optimal);
  EXPECT_EQ(res.objective, 0.0);
}

TEST(Simplex, BoundOnlyModelPicksCheapBounds) {
  model m;
  m.add_variable(1, 4, 2);    // min -> lower
  m.add_variable(-3, 7, -1);  // min of negative -> upper
  const auto res = solve_simplex(m);
  ASSERT_EQ(res.status, solve_status::optimal);
  EXPECT_NEAR(res.x[0], 1.0, 1e-9);
  EXPECT_NEAR(res.x[1], 7.0, 1e-9);
  EXPECT_NEAR(res.objective, 2.0 - 7.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degenerate LP (multiple identical corner constraints).
  model m;
  const int x = m.add_variable(0, infinity, -1);
  const int y = m.add_variable(0, infinity, -1);
  m.add_row({{x, 1}, {y, 1}}, relation::less_equal, 1);
  m.add_row({{x, 1}, {y, 1}}, relation::less_equal, 1);
  m.add_row({{x, 2}, {y, 2}}, relation::less_equal, 2);
  m.add_row({{x, 1}}, relation::less_equal, 1);
  const auto res = solve_simplex(m);
  ASSERT_EQ(res.status, solve_status::optimal);
  EXPECT_NEAR(res.objective, -1.0, 1e-6);
}

TEST(Simplex, LargeCoefficientScalesAreHandled) {
  // Mirrors the window-bandwidth rows: coefficients in the 1e5..1e6 range.
  model m;
  const int a = m.add_variable(0, 1, 0);
  const int b = m.add_variable(0, 1, 0);
  const int c = m.add_variable(0, 1, -1);
  m.add_row({{a, 400000}, {b, 350000}, {c, 300000}}, relation::less_equal,
            700000);
  const auto res = solve_simplex(m);
  ASSERT_EQ(res.status, solve_status::optimal);
  EXPECT_NEAR(res.x[2], 1.0, 1e-6);
  EXPECT_TRUE(m.is_feasible(res.x));
}

TEST(Simplex, FixedVariableViaBoundsStaysFixed) {
  model m;
  const int x = m.add_variable(2, 2, -10);
  const int y = m.add_variable(0, 5, 1);
  m.add_row({{x, 1}, {y, 1}}, relation::greater_equal, 4);
  const auto res = solve_simplex(m);
  ASSERT_EQ(res.status, solve_status::optimal);
  EXPECT_NEAR(res.x[0], 2.0, 1e-9);
  EXPECT_NEAR(res.x[1], 2.0, 1e-6);
}

TEST(SimplexModel, RejectsDuplicateTermsInRow) {
  model m;
  const int x = m.add_variable(0, 1, 0);
  EXPECT_THROW(m.add_row({{x, 1}, {x, 2}}, relation::less_equal, 1),
               stx::invalid_argument_error);
}

TEST(SimplexModel, RejectsCrossedBounds) {
  model m;
  EXPECT_THROW(m.add_variable(3, 1, 0), stx::invalid_argument_error);
}

TEST(SimplexModel, RejectsUnknownVariableInRow) {
  model m;
  m.add_variable(0, 1, 0);
  EXPECT_THROW(m.add_row({{5, 1.0}}, relation::less_equal, 1),
               stx::invalid_argument_error);
}

TEST(SimplexModel, FeasibilityCheckerAgreesWithRelations) {
  model m;
  const int x = m.add_variable(0, 10, 0);
  m.add_row({{x, 1}}, relation::less_equal, 5);
  m.add_row({{x, 1}}, relation::greater_equal, 2);
  EXPECT_TRUE(m.is_feasible({3.0}));
  EXPECT_FALSE(m.is_feasible({6.0}));
  EXPECT_FALSE(m.is_feasible({1.0}));
  EXPECT_FALSE(m.is_feasible({11.0}));
}

}  // namespace
}  // namespace stx::lp
