// Property-based tests: randomly generated LPs with known-feasible points.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"
#include "util/random.h"

namespace stx::lp {
namespace {

/// Builds a random LP that is feasible by construction: pick a point x0
/// inside the box, then set every row's rhs so that x0 satisfies it.
struct random_lp {
  model m;
  std::vector<double> x0;
};

random_lp make_random_feasible_lp(rng& r, int n_vars, int n_rows) {
  random_lp out;
  out.x0.reserve(static_cast<std::size_t>(n_vars));
  for (int v = 0; v < n_vars; ++v) {
    const double ub = r.uniform(0.5, 10.0);
    const double obj = r.uniform(-5.0, 5.0);
    out.m.add_variable(0.0, ub, obj);
    out.x0.push_back(r.uniform(0.0, ub));
  }
  for (int rr = 0; rr < n_rows; ++rr) {
    std::vector<term> terms;
    double activity = 0.0;
    for (int v = 0; v < n_vars; ++v) {
      if (!r.chance(0.6)) continue;
      const double a = r.uniform(-4.0, 4.0);
      terms.push_back(term{v, a});
      activity += a * out.x0[static_cast<std::size_t>(v)];
    }
    if (terms.empty()) continue;
    const int kind = static_cast<int>(r.uniform_int(0, 2));
    if (kind == 0) {
      out.m.add_row(terms, relation::less_equal,
                    activity + r.uniform(0.0, 3.0));
    } else if (kind == 1) {
      out.m.add_row(terms, relation::greater_equal,
                    activity - r.uniform(0.0, 3.0));
    } else {
      out.m.add_row(terms, relation::equal, activity);
    }
  }
  return out;
}

class SimplexRandomLp : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomLp, FindsFeasibleOptimumAtLeastAsGoodAsWitness) {
  rng r(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const int n_vars = static_cast<int>(r.uniform_int(1, 14));
  const int n_rows = static_cast<int>(r.uniform_int(0, 18));
  auto inst = make_random_feasible_lp(r, n_vars, n_rows);

  const auto res = solve_simplex(inst.m);
  ASSERT_EQ(res.status, solve_status::optimal)
      << "seed=" << GetParam() << "\n"
      << inst.m.to_string();
  EXPECT_TRUE(inst.m.is_feasible(res.x, 1e-5))
      << "seed=" << GetParam() << "\n"
      << inst.m.to_string();
  // The witness point x0 is feasible, so the optimum cannot be worse.
  EXPECT_LE(res.objective, inst.m.objective_value(inst.x0) + 1e-5)
      << "seed=" << GetParam();
}

TEST_P(SimplexRandomLp, TighteningABoundNeverImprovesTheObjective) {
  rng r(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  const int n_vars = static_cast<int>(r.uniform_int(2, 10));
  const int n_rows = static_cast<int>(r.uniform_int(1, 12));
  auto inst = make_random_feasible_lp(r, n_vars, n_rows);

  const auto base = solve_simplex(inst.m);
  ASSERT_EQ(base.status, solve_status::optimal);

  // Tighten a random variable's upper bound to its optimal value; the
  // optimum stays attainable, so the objective must not change by more
  // than tolerance in the improving direction.
  const int v = static_cast<int>(r.uniform_int(0, n_vars - 1));
  const double xv = base.x[static_cast<std::size_t>(v)];
  inst.m.set_bounds(v, inst.m.var(v).lower, xv + 1e-9);
  const auto tightened = solve_simplex(inst.m);
  ASSERT_EQ(tightened.status, solve_status::optimal);
  EXPECT_GE(tightened.objective, base.objective - 1e-5)
      << "seed=" << GetParam();
  EXPECT_LE(tightened.objective, base.objective + 1e-4)
      << "tightening to the optimal value should keep the optimum, seed="
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomLp, ::testing::Range(0, 60));

class SimplexInfeasibleLp : public ::testing::TestWithParam<int> {};

TEST_P(SimplexInfeasibleLp, DetectsPlantedContradiction) {
  rng r(static_cast<std::uint64_t>(GetParam()) * 31337 + 3);
  const int n_vars = static_cast<int>(r.uniform_int(1, 8));
  auto inst = make_random_feasible_lp(r, n_vars, static_cast<int>(r.uniform_int(0, 6)));
  // Plant a contradiction: sum of all vars >= (sum of uppers) + 1.
  std::vector<term> terms;
  double max_sum = 0.0;
  for (int v = 0; v < n_vars; ++v) {
    terms.push_back(term{v, 1.0});
    max_sum += inst.m.var(v).upper;
  }
  inst.m.add_row(terms, relation::greater_equal, max_sum + 1.0);
  EXPECT_EQ(solve_simplex(inst.m).status, solve_status::infeasible)
      << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexInfeasibleLp, ::testing::Range(0, 40));

}  // namespace
}  // namespace stx::lp
