// Revised-simplex engine: agreement with the legacy tableau engine on
// random models, dual-simplex warm starts after bound changes, basis
// snapshot consistency, and the refactorization drift bound.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/model.h"
#include "lp/revised_simplex.h"
#include "lp/simplex.h"
#include "util/random.h"

namespace stx::lp {
namespace {

/// Random LP that is feasible by construction (same generator family as
/// simplex_property_test): pick x0 in the box, derive each rhs from it.
struct random_lp {
  model m;
  std::vector<double> x0;
};

random_lp make_random_feasible_lp(rng& r, int n_vars, int n_rows) {
  random_lp out;
  out.x0.reserve(static_cast<std::size_t>(n_vars));
  for (int v = 0; v < n_vars; ++v) {
    const double ub = r.uniform(0.5, 10.0);
    const double obj = r.uniform(-5.0, 5.0);
    out.m.add_variable(0.0, ub, obj);
    out.x0.push_back(r.uniform(0.0, ub));
  }
  for (int rr = 0; rr < n_rows; ++rr) {
    std::vector<term> terms;
    double activity = 0.0;
    for (int v = 0; v < n_vars; ++v) {
      if (!r.chance(0.6)) continue;
      const double a = r.uniform(-4.0, 4.0);
      terms.push_back(term{v, a});
      activity += a * out.x0[static_cast<std::size_t>(v)];
    }
    if (terms.empty()) continue;
    const int kind = static_cast<int>(r.uniform_int(0, 2));
    if (kind == 0) {
      out.m.add_row(terms, relation::less_equal,
                    activity + r.uniform(0.0, 3.0));
    } else if (kind == 1) {
      out.m.add_row(terms, relation::greater_equal,
                    activity - r.uniform(0.0, 3.0));
    } else {
      out.m.add_row(terms, relation::equal, activity);
    }
  }
  return out;
}

TEST(RevisedSimplex, SolvesATinyKnownLp) {
  // min -x - 2y  s.t.  x + y <= 4, x <= 3, y <= 2  ->  x=2? No: optimum
  // at x=2,y=2 with objective -6 (x+y=4 binding, y at its bound).
  model m;
  const int x = m.add_variable(0.0, 3.0, -1.0, "x");
  const int y = m.add_variable(0.0, 2.0, -2.0, "y");
  m.add_row({{x, 1.0}, {y, 1.0}}, relation::less_equal, 4.0);
  const auto res = solve_revised(m);
  ASSERT_EQ(res.status, solve_status::optimal);
  EXPECT_NEAR(res.objective, -6.0, 1e-7);
  EXPECT_NEAR(res.x[0], 2.0, 1e-7);
  EXPECT_NEAR(res.x[1], 2.0, 1e-7);
}

TEST(RevisedSimplex, DetectsInfeasibility) {
  model m;
  const int x = m.add_variable(0.0, 1.0, 1.0, "x");
  m.add_row({{x, 1.0}}, relation::greater_equal, 2.0);
  EXPECT_EQ(solve_revised(m).status, solve_status::infeasible);
}

TEST(RevisedSimplex, DetectsUnboundedness) {
  model m;
  const int x = m.add_variable(0.0, infinity, -1.0, "x");
  m.add_row({{x, -1.0}}, relation::less_equal, 0.0);
  EXPECT_EQ(solve_revised(m).status, solve_status::unbounded);
}

class RevisedVsLegacy : public ::testing::TestWithParam<int> {};

TEST_P(RevisedVsLegacy, ColdSolvesAgreeWithTheTableauEngine) {
  rng r(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const int n_vars = static_cast<int>(r.uniform_int(1, 14));
  const int n_rows = static_cast<int>(r.uniform_int(0, 18));
  auto inst = make_random_feasible_lp(r, n_vars, n_rows);

  const auto legacy = solve_simplex(inst.m);
  const auto revised = solve_revised(inst.m);
  ASSERT_EQ(legacy.status, solve_status::optimal) << "seed=" << GetParam();
  ASSERT_EQ(revised.status, solve_status::optimal) << "seed=" << GetParam();
  EXPECT_TRUE(inst.m.is_feasible(revised.x, 1e-5))
      << "seed=" << GetParam() << "\n"
      << inst.m.to_string();
  EXPECT_NEAR(legacy.objective, revised.objective,
              1e-5 * std::max(1.0, std::abs(legacy.objective)))
      << "seed=" << GetParam() << "\n"
      << inst.m.to_string();
}

TEST_P(RevisedVsLegacy, WarmRestartAfterBoundChangeMatchesAColdSolve) {
  rng r(static_cast<std::uint64_t>(GetParam()) * 60013 + 101);
  const int n_vars = static_cast<int>(r.uniform_int(2, 12));
  const int n_rows = static_cast<int>(r.uniform_int(1, 14));
  auto inst = make_random_feasible_lp(r, n_vars, n_rows);

  revised_solver solver(inst.m, {});
  const auto root = solver.solve();
  ASSERT_EQ(root.status, solve_status::optimal) << "seed=" << GetParam();
  const basis_state parent = solver.last_basis();
  EXPECT_TRUE(parent.consistent());

  // Tighten one variable's bounds the way branching would (floor/ceil
  // split around its LP value) and compare warm vs cold on the child.
  const int v = static_cast<int>(r.uniform_int(0, n_vars - 1));
  const double xv = root.x[static_cast<std::size_t>(v)];
  const double lo = inst.m.var(v).lower;
  const double hi = inst.m.var(v).upper;
  const bool up = r.chance(0.5);
  const double new_lo = up ? std::min(hi, std::floor(xv) + 1.0) : lo;
  const double new_hi = up ? hi : std::max(lo, std::floor(xv));

  solver.set_bounds(v, new_lo, new_hi);
  const auto warm = solver.solve_from(parent);

  model child = inst.m;
  child.set_bounds(v, new_lo, new_hi);
  const auto cold = solve_simplex(child);

  ASSERT_EQ(warm.status, cold.status) << "seed=" << GetParam();
  if (cold.status == solve_status::optimal) {
    EXPECT_TRUE(child.is_feasible(warm.x, 1e-5)) << "seed=" << GetParam();
    EXPECT_NEAR(warm.objective, cold.objective,
                1e-5 * std::max(1.0, std::abs(cold.objective)))
        << "seed=" << GetParam();
  }
}

TEST_P(RevisedVsLegacy, RefactorizationIntervalDoesNotChangeTheOutcome) {
  // Drift bound: refactorizing after EVERY pivot (interval 1, pure
  // factorized path) and only rarely (interval 1024, pure eta path) must
  // agree on status and objective — the eta accumulation stays within
  // the refresh tolerance by construction.
  rng r(static_cast<std::uint64_t>(GetParam()) * 271 + 17);
  const int n_vars = static_cast<int>(r.uniform_int(2, 12));
  const int n_rows = static_cast<int>(r.uniform_int(1, 14));
  auto inst = make_random_feasible_lp(r, n_vars, n_rows);

  solve_options every_pivot;
  every_pivot.refactor_interval = 1;
  solve_options rarely;
  rarely.refactor_interval = 1024;

  const auto a = solve_revised(inst.m, every_pivot);
  const auto b = solve_revised(inst.m, rarely);
  ASSERT_EQ(a.status, solve_status::optimal) << "seed=" << GetParam();
  ASSERT_EQ(b.status, solve_status::optimal) << "seed=" << GetParam();
  EXPECT_NEAR(a.objective, b.objective,
              1e-6 * std::max(1.0, std::abs(a.objective)))
      << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RevisedVsLegacy, ::testing::Range(0, 60));

}  // namespace
}  // namespace stx::lp
