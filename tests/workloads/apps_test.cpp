// Unit tests for the MPSoC application models.
#include "workloads/mpsoc_apps.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "workloads/synthetic.h"

namespace stx::workloads {
namespace {

TEST(Apps, CoreCountsMatchThePaper) {
  EXPECT_EQ(make_mat1().total_cores(), 25);
  EXPECT_EQ(make_mat2().total_cores(), 21);
  EXPECT_EQ(make_fft().total_cores(), 29);
  EXPECT_EQ(make_qsort().total_cores(), 15);
  EXPECT_EQ(make_des().total_cores(), 19);
}

TEST(Apps, AllAppsValidate) {
  for (const auto& app : all_mpsoc_apps()) {
    EXPECT_NO_THROW(app.validate()) << app.name;
    EXPECT_EQ(static_cast<int>(app.programs.size()), app.num_initiators)
        << app.name;
  }
}

TEST(Apps, Mat2HasTheFigure2Roles) {
  const auto app = make_mat2();
  EXPECT_EQ(app.num_initiators, 9);
  EXPECT_EQ(app.num_targets, 12);
  EXPECT_EQ(app.shared_mem, 9);
  EXPECT_EQ(app.semaphore, 10);
  EXPECT_EQ(app.interrupt_dev, 11);
  EXPECT_EQ(app.private_mem.size(), 9u);
  EXPECT_EQ(app.target_names[10], "Semaphore");
}

TEST(Apps, Mat2ProgramsTouchPrivateSharedAndSync) {
  const auto app = make_mat2();
  for (int i = 0; i < app.num_initiators; ++i) {
    bool touches_private = false, touches_shared = false, has_barrier = false;
    for (const auto& op : app.programs[static_cast<std::size_t>(i)]) {
      if (op.op == sim::core_op::kind::barrier) has_barrier = true;
      if (op.op == sim::core_op::kind::read ||
          op.op == sim::core_op::kind::write) {
        touches_private |= op.target == i;
        touches_shared |= op.target == app.shared_mem;
      }
    }
    EXPECT_TRUE(touches_private) << "core " << i;
    EXPECT_TRUE(touches_shared) << "core " << i;
    EXPECT_TRUE(has_barrier) << "core " << i;
  }
}

TEST(Apps, Mat2CriticalMarksExactlyTwoCoresPrivateStreams) {
  const auto app = make_mat2_critical();
  int critical_cores = 0;
  for (int i = 0; i < app.num_initiators; ++i) {
    bool any = false;
    for (const auto& op : app.programs[static_cast<std::size_t>(i)]) {
      any |= op.critical;
    }
    critical_cores += any ? 1 : 0;
  }
  EXPECT_EQ(critical_cores, 2);
}

TEST(Apps, DesIsAStreamingPipeline) {
  const auto app = make_des();
  for (int i = 0; i < app.num_initiators; ++i) {
    bool reads_own = false, writes_next = false;
    for (const auto& op : app.programs[static_cast<std::size_t>(i)]) {
      if (op.op == sim::core_op::kind::read && op.target == i) {
        reads_own = true;
      }
      if (op.op == sim::core_op::kind::write && op.target == i + 1) {
        writes_next = true;
      }
    }
    EXPECT_TRUE(reads_own) << "stage " << i;
    EXPECT_TRUE(writes_next) << "stage " << i;
  }
}

TEST(Apps, FftUsesPerParityStageBarriers) {
  const auto app = make_fft();
  for (int i = 0; i < app.num_initiators; ++i) {
    bool barrier_found = false;
    for (const auto& op : app.programs[static_cast<std::size_t>(i)]) {
      if (op.op == sim::core_op::kind::barrier) {
        barrier_found = true;
        // Even and odd butterfly groups sync separately (7 cores each).
        EXPECT_EQ(op.group_size, 7);
        EXPECT_EQ(op.barrier_id, 1 + i % 2);
      }
    }
    EXPECT_TRUE(barrier_found) << "core " << i;
  }
  // Odd banks carry the half-stage skew prologue.
  EXPECT_EQ(app.loop_starts[0], 0u);
  EXPECT_EQ(app.loop_starts[1], 1u);
}

TEST(Synthetic, DefaultShapeIsTwentyCores) {
  const auto app = make_synthetic();
  EXPECT_EQ(app.num_initiators, 10);
  EXPECT_EQ(app.num_targets, 10);
  EXPECT_EQ(app.total_cores(), 20);
  app.validate();
}

TEST(Synthetic, BurstSizeControlsPacketCount) {
  synthetic_params small;
  small.burst_cycles = 160;
  small.packet_cells = 16;
  synthetic_params big = small;
  big.burst_cycles = 1600;
  const auto app_small = make_synthetic(small);
  const auto app_big = make_synthetic(big);
  EXPECT_GT(app_big.programs[0].size(), app_small.programs[0].size());
}

TEST(Synthetic, PhaseSpreadCreatesPrologues) {
  synthetic_params p;
  p.phase_spread = 0.5;
  const auto app = make_synthetic(p);
  // Core 0 has no offset; later cores carry a one-time prologue.
  EXPECT_EQ(app.loop_starts[0], 0u);
  EXPECT_EQ(app.loop_starts[5], 1u);
  EXPECT_EQ(app.programs[5][0].op, sim::core_op::kind::compute);
  EXPECT_GT(app.programs[5][0].cycles, 0);
}

TEST(Synthetic, ZeroSpreadMeansNoPrologues) {
  synthetic_params p;
  p.phase_spread = 0.0;
  const auto app = make_synthetic(p);
  for (const auto ls : app.loop_starts) EXPECT_EQ(ls, 0u);
}

TEST(Synthetic, CrossTrafficTargetsNeighbour) {
  synthetic_params p;
  p.cross_traffic = true;
  const auto app = make_synthetic(p);
  bool found = false;
  for (const auto& op : app.programs[3]) {
    if (op.op != sim::core_op::kind::compute && op.target == 4) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Synthetic, RejectsBadParameters) {
  synthetic_params odd;
  odd.num_cores = 7;
  EXPECT_THROW(make_synthetic(odd), invalid_argument_error);
  synthetic_params tiny;
  tiny.num_cores = 2;
  EXPECT_THROW(make_synthetic(tiny), invalid_argument_error);
  synthetic_params bad_read;
  bad_read.read_fraction = 1.5;
  EXPECT_THROW(make_synthetic(bad_read), invalid_argument_error);
  synthetic_params neg_read;
  neg_read.read_fraction = -0.1;
  EXPECT_THROW(make_synthetic(neg_read), invalid_argument_error);
  synthetic_params bad_spread;
  bad_spread.phase_spread = 1.25;
  EXPECT_THROW(make_synthetic(bad_spread), invalid_argument_error);
  synthetic_params neg_spread;
  neg_spread.phase_spread = -0.5;
  EXPECT_THROW(make_synthetic(neg_spread), invalid_argument_error);
  synthetic_params neg_gap;
  neg_gap.gap_cycles = -1;
  EXPECT_THROW(make_synthetic(neg_gap), invalid_argument_error);
  synthetic_params no_burst;
  no_burst.burst_cycles = 0;
  EXPECT_THROW(make_synthetic(no_burst), invalid_argument_error);
}

TEST(Synthetic, BoundaryParametersAreAccepted) {
  synthetic_params p;
  p.phase_spread = 1.0;
  p.read_fraction = 1.0;
  p.gap_cycles = 0;
  p.num_cores = 4;
  const auto app = make_synthetic(p);
  app.validate();
  EXPECT_EQ(app.total_cores(), 4);
}

TEST(AppSpec, ValidateCatchesBrokenSpecs) {
  auto app = make_mat2();
  app.programs.pop_back();
  EXPECT_THROW(app.validate(), invalid_argument_error);

  auto app2 = make_mat2();
  app2.programs[0][1].target = 99;
  EXPECT_THROW(app2.validate(), invalid_argument_error);
}

TEST(AppSpec, MakeSystemRunsEveryApp) {
  for (const auto& app : all_mpsoc_apps()) {
    auto sys = make_full_crossbar_system(app);
    sys.run(5000);
    EXPECT_GT(sys.total_transactions(), 0) << app.name;
    EXPECT_FALSE(sys.request_trace().empty()) << app.name;
  }
}

}  // namespace
}  // namespace stx::workloads
