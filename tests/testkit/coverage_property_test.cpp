// Property test (oracle "coverage" on the real inventory): for every app
// make_app_by_name knows, the synthesized request/response designs cover
// exactly the links with nonzero phase-1 traffic — every initiator and
// target carries traffic (no orphans), every traffic-carrying endpoint
// is routed to a real bus, and no bus is dead.
#include <gtest/gtest.h>

#include "testkit/oracle.h"
#include "testkit/scenario.h"
#include "workloads/mpsoc_apps.h"
#include "xbar/flow.h"

namespace stx::testkit {
namespace {

xbar::flow_options fast_options() {
  xbar::flow_options opts;
  opts.horizon = 20'000;
  opts.synth.params.window_size = 400;
  return opts;
}

TEST(CoverageProperty, EveryAppCoversExactlyItsTrafficLinks) {
  for (const auto& name : workloads::app_names()) {
    SCOPED_TRACE(name);
    const auto app = *workloads::make_app_by_name(name);
    const auto opts = fast_options();
    const auto traces = xbar::collect_traces(app, opts);
    // Synthesis-only: coverage is a property of the designs and the
    // phase-1 traffic, not of the validation run.
    const auto report = xbar::synthesize_design(app, traces, opts);

    // No orphan endpoints: every initiator keeps some target busy, every
    // target is kept busy by someone, in both directions.
    for (int t = 0; t < app.num_targets; ++t) {
      traffic::cycle_t total = 0;
      for (const auto& row : report.request_traffic) {
        total += row[static_cast<std::size_t>(t)];
      }
      EXPECT_GT(total, 0) << "orphan target " << t;
    }
    for (int i = 0; i < app.num_initiators; ++i) {
      traffic::cycle_t sent = 0;
      for (const auto& col : report.request_traffic[
               static_cast<std::size_t>(i)]) {
        sent += col;
      }
      EXPECT_GT(sent, 0) << "initiator " << i << " sent nothing";
      traffic::cycle_t received = 0;
      for (const auto& row : report.response_traffic) {
        received += row[static_cast<std::size_t>(i)];
      }
      EXPECT_GT(received, 0) << "initiator " << i
                             << " received no responses";
    }

    // Every traffic-carrying endpoint routed, no dead buses: the
    // oracle's coverage invariant verbatim.
    std::vector<violation> vs;
    check_coverage(report, &vs);
    check_shape(app, report, &vs);
    check_bus_bounds(app, report, &vs);
    EXPECT_TRUE(vs.empty()) << to_string(vs);
  }
}

TEST(CoverageProperty, HoldsOnRandomScenariosToo) {
  rng r(123);
  for (int k = 0; k < 8; ++k) {
    auto s = sample_scenario(r);
    SCOPED_TRACE(encode(s));
    const auto app = s.make_app();
    const auto opts = s.make_flow_options();
    const auto traces = xbar::collect_traces(app, opts);
    const auto report = xbar::synthesize_design(app, traces, opts);
    std::vector<violation> vs;
    check_coverage(report, &vs);
    EXPECT_TRUE(vs.empty()) << to_string(vs);
  }
}

}  // namespace
}  // namespace stx::testkit
