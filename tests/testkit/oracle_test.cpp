// Oracle tests: a clean flow passes, and every invariant fires on a
// report tampered to violate exactly it.
#include "testkit/oracle.h"

#include <gtest/gtest.h>

#include "testkit/scenario.h"

namespace stx::testkit {
namespace {

/// One real, small flow shared by all tests (runs once per binary).
struct flow_fixture {
  workloads::app_spec app;
  xbar::flow_options opts;
  xbar::collected_traces traces;
  xbar::flow_report report;
};

const flow_fixture& fixture() {
  static const flow_fixture f = [] {
    scenario s;
    s.seed = 5;
    s.num_initiators = 3;
    s.num_targets = 3;
    s.burst_cycles = 400;
    s.packet_cells = 8;
    s.gap_cycles = 800;
    s.phase_spread = 0.3;
    s.read_fraction = 0.25;
    s.window_size = 400;
    s.horizon = 15'000;
    flow_fixture out;
    out.app = s.make_app();
    out.opts = s.make_flow_options();
    out.traces = xbar::collect_traces(out.app, out.opts);
    out.report = xbar::design_from_traces(out.app, out.traces, out.opts);
    return out;
  }();
  return f;
}

bool has_invariant(const std::vector<violation>& vs, const std::string& tag) {
  for (const auto& v : vs) {
    if (v.invariant == tag) return true;
  }
  return false;
}

TEST(Oracle, CleanFlowHasNoViolations) {
  const auto& f = fixture();
  const auto vs =
      check_flow_invariants(f.app, f.traces, f.opts, f.report);
  EXPECT_TRUE(vs.empty()) << to_string(vs);
}

TEST(Oracle, ShapeCatchesDimensionMismatch) {
  const auto& f = fixture();
  auto broken = f.report;
  broken.num_targets += 1;
  std::vector<violation> vs;
  check_shape(f.app, broken, &vs);
  EXPECT_TRUE(has_invariant(vs, "shape")) << to_string(vs);

  auto broken2 = f.report;
  broken2.target_names.pop_back();
  vs.clear();
  check_shape(f.app, broken2, &vs);
  EXPECT_TRUE(has_invariant(vs, "shape")) << to_string(vs);
}

TEST(Oracle, CoverageCatchesOrphanEndpoint) {
  const auto& f = fixture();
  auto broken = f.report;
  broken.request_design.binding[0] = 99;  // traffic-carrying, unroutable
  std::vector<violation> vs;
  check_coverage(broken, &vs);
  EXPECT_TRUE(has_invariant(vs, "coverage")) << to_string(vs);
}

TEST(Oracle, CoverageCatchesDeadBus) {
  const auto& f = fixture();
  auto broken = f.report;
  broken.response_design.num_buses += 1;  // one bus nobody is bound to
  std::vector<violation> vs;
  check_coverage(broken, &vs);
  EXPECT_TRUE(has_invariant(vs, "coverage")) << to_string(vs);
}

TEST(Oracle, BusBoundCatchesCostInflation) {
  const auto& f = fixture();
  auto broken = f.report;
  broken.designed_buses = broken.full_buses + 5;
  std::vector<violation> vs;
  check_bus_bounds(f.app, broken, &vs);
  EXPECT_TRUE(has_invariant(vs, "bus-bound")) << to_string(vs);

  auto broken2 = f.report;
  broken2.request_design.num_buses = broken2.num_targets + 3;
  vs.clear();
  check_bus_bounds(f.app, broken2, &vs);
  EXPECT_TRUE(has_invariant(vs, "bus-bound")) << to_string(vs);
}

TEST(Oracle, LatencyCatchesDegradationBeyondBound) {
  const auto& f = fixture();
  auto broken = f.report;
  broken.designed.avg_latency =
      broken.full.avg_latency * 1000.0 + 10'000.0;
  std::vector<violation> vs;
  check_latency(broken, oracle_options{}, &vs);
  EXPECT_TRUE(has_invariant(vs, "latency")) << to_string(vs);
}

TEST(Oracle, LatencyCatchesStarvation) {
  const auto& f = fixture();
  auto broken = f.report;
  broken.designed.packets = 0;
  std::vector<violation> vs;
  check_latency(broken, oracle_options{}, &vs);
  EXPECT_TRUE(has_invariant(vs, "latency")) << to_string(vs);
}

TEST(Oracle, MetricsCatchDisorderedStats) {
  const auto& f = fixture();
  auto broken = f.report;
  broken.designed.p99_latency = broken.designed.max_latency + 1.0;
  std::vector<violation> vs;
  check_metrics(broken, &vs);
  EXPECT_TRUE(has_invariant(vs, "metrics")) << to_string(vs);
}

TEST(Oracle, MetricsCatchBusCountMismatchWithValidation) {
  const auto& f = fixture();
  auto broken = f.report;
  broken.designed.total_buses += 1;
  std::vector<violation> vs;
  check_metrics(broken, &vs);
  EXPECT_TRUE(has_invariant(vs, "metrics")) << to_string(vs);
}

TEST(Oracle, FeasibilityCatchesObjectiveMismatch) {
  const auto& f = fixture();
  auto broken = f.report;
  broken.request_design.max_overlap += 1;
  std::vector<violation> vs;
  check_feasibility(f.traces, f.opts, broken, &vs);
  EXPECT_TRUE(has_invariant(vs, "feasibility")) << to_string(vs);
}

TEST(Oracle, FeasibilityCatchesModelViolatingBinding) {
  const auto& f = fixture();
  auto broken = f.report;
  // Cramming every endpoint onto bus 0 keeps the binding well-formed but
  // breaks the rebuilt Eq. 3-9 model (bandwidth/conflicts) or at minimum
  // the recorded objective.
  for (auto& b : broken.request_design.binding) b = 0;
  std::vector<violation> vs;
  check_feasibility(f.traces, f.opts, broken, &vs);
  EXPECT_TRUE(has_invariant(vs, "feasibility")) << to_string(vs);
}

TEST(Oracle, ObserverEquivalenceAcceptsTheRealReport) {
  const auto& f = fixture();
  std::vector<violation> vs;
  check_observer_equivalence(f.app, f.opts, f.report, oracle_options{}, &vs);
  EXPECT_TRUE(vs.empty()) << to_string(vs);
}

TEST(Oracle, ObserverEquivalenceCatchesTamperedMetrics) {
  const auto& f = fixture();
  auto broken = f.report;
  broken.designed.avg_latency += 0.5;  // any double off by any amount
  std::vector<violation> vs;
  check_observer_equivalence(f.app, f.opts, broken, oracle_options{}, &vs);
  EXPECT_TRUE(has_invariant(vs, "observer-equivalence")) << to_string(vs);
}

TEST(Oracle, ObserverEquivalenceSkipsUnvalidatedReports) {
  const auto& f = fixture();
  auto unvalidated = f.report;
  unvalidated.designed = {};  // as a synthesis-only flow leaves it
  std::vector<violation> vs;
  check_observer_equivalence(f.app, f.opts, unvalidated, oracle_options{},
                             &vs);
  EXPECT_TRUE(vs.empty()) << to_string(vs);
}

TEST(Oracle, SolverAgreementCatchesWrongBusCount) {
  const auto& f = fixture();
  auto broken = f.report;
  broken.request_design.num_buses += 1;
  std::vector<violation> vs;
  check_solver_agreement(f.traces, f.opts, broken, oracle_options{}, &vs);
  EXPECT_TRUE(has_invariant(vs, "solver-agreement")) << to_string(vs);
}

TEST(Oracle, SolverAgreementRespectsTheSizeGate) {
  const auto& f = fixture();
  auto broken = f.report;
  broken.request_design.num_buses += 1;
  broken.response_design.num_buses += 1;
  oracle_options opts;
  opts.solver_agreement_max_targets = 0;  // everything gated out
  std::vector<violation> vs;
  check_solver_agreement(f.traces, f.opts, broken, opts, &vs);
  EXPECT_TRUE(vs.empty()) << to_string(vs);
}

}  // namespace
}  // namespace stx::testkit
