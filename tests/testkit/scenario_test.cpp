// Unit tests for the fuzzing scenario model: sampling, expansion,
// encode/decode round-trips.
#include "testkit/scenario.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace stx::testkit {
namespace {

TEST(Scenario, EncodeDecodeRoundTripsDefaults) {
  const scenario s;
  EXPECT_EQ(decode(encode(s)), s);
}

TEST(Scenario, EncodeDecodeRoundTripsSampled) {
  rng r(99);
  for (int k = 0; k < 200; ++k) {
    rng child = r.split(static_cast<std::uint64_t>(k));
    const auto s = sample_scenario(child);
    const auto line = encode(s);
    EXPECT_EQ(decode(line), s) << line;
    // One line, no embedded whitespace surprises.
    EXPECT_EQ(line.find('\n'), std::string::npos);
  }
}

TEST(Scenario, SamplingIsDeterministic) {
  rng a(7), b(7);
  for (int k = 0; k < 20; ++k) {
    EXPECT_EQ(sample_scenario(a), sample_scenario(b));
  }
}

TEST(Scenario, SampledAppsValidateAndMatchShape) {
  rng r(5);
  for (int k = 0; k < 50; ++k) {
    const auto s = sample_scenario(r);
    const auto app = s.make_app();
    EXPECT_EQ(app.num_initiators, s.num_initiators);
    EXPECT_EQ(app.num_targets, s.num_targets);
    EXPECT_NO_THROW(app.validate());
  }
}

TEST(Scenario, MakeAppIsAPureFunctionOfTheRecord) {
  rng r(11);
  const auto s = sample_scenario(r);
  const auto a = s.make_app();
  const auto b = s.make_app();
  ASSERT_EQ(a.programs.size(), b.programs.size());
  for (std::size_t i = 0; i < a.programs.size(); ++i) {
    ASSERT_EQ(a.programs[i].size(), b.programs[i].size());
    for (std::size_t p = 0; p < a.programs[i].size(); ++p) {
      EXPECT_EQ(a.programs[i][p].target, b.programs[i][p].target);
      EXPECT_EQ(a.programs[i][p].op, b.programs[i][p].op);
    }
  }
}

TEST(Scenario, CriticalCoresMarkTheirHomeStreams) {
  scenario s;
  s.critical_cores = 2;
  s.num_initiators = 4;
  const auto app = s.make_app();
  for (int i = 0; i < app.num_initiators; ++i) {
    bool any = false;
    for (const auto& op : app.programs[static_cast<std::size_t>(i)]) {
      any |= op.critical;
    }
    EXPECT_EQ(any, i < 2) << "core " << i;
  }
}

TEST(Scenario, HotspotRedirectsSomeTraffic) {
  scenario s;
  s.hotspot_fraction = 0.5;
  s.hotspot_target = 3;
  s.num_initiators = 2;
  s.num_targets = 4;
  s.burst_cycles = 800;
  s.packet_cells = 4;
  const auto app = s.make_app();
  bool hits_hotspot = false;
  for (const auto& op : app.programs[0]) {
    if (op.op != sim::core_op::kind::compute && op.target == 3) {
      hits_hotspot = true;
    }
  }
  EXPECT_TRUE(hits_hotspot);
}

TEST(Scenario, DecodeRejectsMalformedInput) {
  EXPECT_THROW(decode(""), invalid_argument_error);
  EXPECT_THROW(decode("not-a-scenario seed=1"), invalid_argument_error);
  EXPECT_THROW(decode("stxfuzz/v1 bogus=3"), invalid_argument_error);
  EXPECT_THROW(decode("stxfuzz/v1 seed"), invalid_argument_error);
  EXPECT_THROW(decode("stxfuzz/v1 ini=abc"), invalid_argument_error);
  // Out-of-range fields fail validation even when well-formed.
  EXPECT_THROW(decode("stxfuzz/v1 ini=0"), invalid_argument_error);
  EXPECT_THROW(decode("stxfuzz/v1 spread=1.5"), invalid_argument_error);
  EXPECT_THROW(decode("stxfuzz/v1 hot=7 tgt=4"), invalid_argument_error);
}

TEST(Scenario, DecodeFillsOmittedFieldsWithDefaults) {
  const auto s = decode("stxfuzz/v1 seed=42 ini=3");
  EXPECT_EQ(s.seed, 42u);
  EXPECT_EQ(s.num_initiators, 3);
  EXPECT_EQ(s.num_targets, scenario{}.num_targets);
  EXPECT_EQ(s.window_size, scenario{}.window_size);
}

TEST(Scenario, ValidateRejectsDegenerateRecords) {
  scenario s;
  s.horizon = 10;
  EXPECT_THROW(s.validate(), invalid_argument_error);
  s = scenario{};
  s.critical_cores = s.num_initiators + 1;
  EXPECT_THROW(s.validate(), invalid_argument_error);
  s = scenario{};
  s.burst_cycles = 0;
  EXPECT_THROW(s.validate(), invalid_argument_error);
}

TEST(Scenario, ValidateRejectsAbsurdlyLargeFields) {
  // Upper bounds guard the reproduction contract: a scenario that would
  // overflow downstream arithmetic must be rejected at decode time, not
  // silently simulated as something else.
  EXPECT_THROW(decode("stxfuzz/v1 burst=8589934592"),
               invalid_argument_error);
  EXPECT_THROW(decode("stxfuzz/v1 horizon=999999999999"),
               invalid_argument_error);
  EXPECT_THROW(decode("stxfuzz/v1 ini=5000"), invalid_argument_error);
}

}  // namespace
}  // namespace stx::testkit
