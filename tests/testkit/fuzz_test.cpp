// Campaign driver tests: determinism, failure reporting, JSON rendering.
#include "testkit/fuzz.h"

#include <gtest/gtest.h>

#include "gen/json.h"
#include "obs/obs.h"

namespace stx::testkit {
namespace {

fuzz_options small_campaign() {
  fuzz_options opts;
  opts.runs = 4;
  opts.seed = 11;
  // Keep the unit test quick; the solver cross-check has its own tests
  // and runs in the CI smoke campaign.
  opts.oracle.solver_agreement = false;
  return opts;
}

TEST(Fuzz, CampaignIsDeterministic) {
  const auto a = run_fuzz(small_campaign());
  const auto b = run_fuzz(small_campaign());
  EXPECT_EQ(a.failures.size(), b.failures.size());
  EXPECT_EQ(a.total_packets, b.total_packets);
  EXPECT_EQ(render_json(a), render_json(b));
}

TEST(Fuzz, CleanCampaignReportsWork) {
  const auto r = run_fuzz(small_campaign());
  EXPECT_TRUE(r.ok()) << render_json(r);
  EXPECT_EQ(r.runs, 4);
  EXPECT_GT(r.total_packets, 0);
  EXPECT_GT(r.total_buses_designed, 0);
}

TEST(Fuzz, ProgressHookSeesEveryRun) {
  int calls = 0;
  run_fuzz(small_campaign(),
           [&](int, const scenario&, bool) { ++calls; });
  EXPECT_EQ(calls, 4);
}

TEST(Fuzz, RunScenarioReportsExceptionsAsViolations) {
  scenario s;
  s.num_initiators = 0;  // make_app will throw on validate
  const auto vs = run_scenario(s, oracle_options{});
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].invariant, "exception");
}

TEST(Fuzz, BrutalOracleProducesShrunkFailures) {
  // An impossible latency bound makes every scenario "fail", exercising
  // the full failure path (shrink + re-check) without a real bug.
  fuzz_options opts;
  opts.runs = 1;
  opts.seed = 3;
  opts.oracle.solver_agreement = false;
  opts.oracle.latency_factor = 0.0;
  opts.oracle.latency_slack_cycles = -1.0;  // avg > -1 always
  opts.shrinker.max_attempts = 40;
  const auto r = run_fuzz(opts);
  ASSERT_EQ(r.failures.size(), 1u);
  const auto& f = r.failures[0];
  EXPECT_FALSE(f.violations.empty());
  EXPECT_FALSE(f.shrunk_violations.empty());
  // The shrunk scenario is no larger and still reproduces standalone.
  EXPECT_LE(f.shrunk.num_initiators, f.original.num_initiators);
  EXPECT_LE(f.shrunk.horizon, f.original.horizon);
  EXPECT_FALSE(run_scenario(f.shrunk, opts.oracle).empty());
  // And its seed string round-trips, as the repro command requires.
  EXPECT_EQ(decode(encode(f.shrunk)), f.shrunk);
}

TEST(Fuzz, InvariantCostsPopulateWhenTelemetryIsOn) {
  obs::disable();
  obs::reset();
  // Without telemetry the v2 invariants section stays empty...
  EXPECT_TRUE(run_fuzz(small_campaign()).invariants.empty());
  // ...and with it, every enabled oracle check reports one row with an
  // evaluation count covering each of the campaign's runs.
  obs::enable();
  const auto r = run_fuzz(small_campaign());
  obs::disable();
  obs::reset();
  ASSERT_FALSE(r.invariants.empty());
  bool saw_shape = false;
  for (const auto& cost : r.invariants) {
    EXPECT_GE(cost.evaluations, r.runs) << cost.invariant;
    EXPECT_GE(cost.wall_seconds, 0.0) << cost.invariant;
    saw_shape |= cost.invariant == "shape";
  }
  EXPECT_TRUE(saw_shape);
  const auto doc = gen::json::parse(render_json(r));
  const auto& rows = doc.at("invariants").as_array();
  EXPECT_EQ(rows.size(), r.invariants.size());
  EXPECT_TRUE(rows[0].contains("evaluations"));
  EXPECT_TRUE(rows[0].contains("wall_ms_nondeterministic"));
}

TEST(Fuzz, RenderJsonParsesBackWithFailures) {
  fuzz_options opts;
  opts.runs = 1;
  opts.seed = 3;
  opts.shrink = false;
  opts.oracle.solver_agreement = false;
  opts.oracle.latency_factor = 0.0;
  opts.oracle.latency_slack_cycles = -1.0;
  const auto r = run_fuzz(opts);
  ASSERT_FALSE(r.ok());
  const auto doc = gen::json::parse(render_json(r));
  EXPECT_EQ(doc.at("schema").as_string(), "stx-fuzz-report/v2");
  EXPECT_EQ(doc.at("runs").as_int(), 1);
  const auto& failures = doc.at("failures").as_array();
  ASSERT_EQ(failures.size(), 1u);
  const auto& f = failures[0];
  // The embedded scenario string decodes back to the sampled scenario.
  EXPECT_EQ(decode(f.at("scenario").as_string()), r.failures[0].original);
  EXPECT_NE(f.at("repro").as_string().find("--scenario="),
            std::string::npos);
}

}  // namespace
}  // namespace stx::testkit
