// Shrinker tests: pure predicates (no simulation) so they pin down the
// greedy descent behaviour exactly.
#include "testkit/shrink.h"

#include <gtest/gtest.h>

namespace stx::testkit {
namespace {

scenario big_scenario() {
  scenario s;
  s.seed = 3;
  s.num_initiators = 8;
  s.num_targets = 8;
  s.burst_cycles = 1600;
  s.packet_cells = 16;
  s.gap_cycles = 4000;
  s.phase_spread = 0.8;
  s.read_fraction = 0.4;
  s.hotspot_fraction = 0.2;
  s.hotspot_target = 7;
  s.critical_cores = 2;
  s.horizon = 40'000;
  return s;
}

TEST(Shrink, CandidatesAreValidAndStrictlySmaller) {
  const auto s = big_scenario();
  const auto candidates = shrink_candidates(s);
  EXPECT_FALSE(candidates.empty());
  for (const auto& c : candidates) {
    EXPECT_NO_THROW(c.validate());
    EXPECT_FALSE(c == s);
    // Round-trippable: the shrunk repro string must stay usable.
    EXPECT_EQ(decode(encode(c)), c);
  }
}

TEST(Shrink, ReachesThePredicateBoundary) {
  // Fails whenever the scenario still has >= 3 initiators and a burst of
  // >= 100 cycles; the minimum still-failing scenario has exactly those.
  const auto pred = [](const scenario& c) {
    return c.num_initiators >= 3 && c.burst_cycles >= 100;
  };
  const auto res = shrink(big_scenario(), pred);
  EXPECT_TRUE(pred(res.best));
  EXPECT_LE(res.best.num_initiators, 3);
  EXPECT_LT(res.best.burst_cycles, 200);
  // Unrelated features were stripped along the way.
  EXPECT_EQ(res.best.hotspot_fraction, 0.0);
  EXPECT_EQ(res.best.critical_cores, 0);
  EXPECT_GT(res.improvements, 0);
}

TEST(Shrink, ReturnsTheOriginalWhenNothingSmallerFails) {
  const auto s = big_scenario();
  int calls = 0;
  const auto res = shrink(s, [&](const scenario&) {
    ++calls;
    return false;
  });
  EXPECT_EQ(res.best, s);
  EXPECT_EQ(res.improvements, 0);
  EXPECT_EQ(res.attempts, calls);
}

TEST(Shrink, HonoursTheAttemptBudget) {
  shrink_options opts;
  opts.max_attempts = 5;
  const auto res = shrink(
      big_scenario(), [](const scenario&) { return true; }, opts);
  EXPECT_LE(res.attempts, 5);
}

TEST(Shrink, TerminatesOnAlwaysFailingPredicate) {
  // Every candidate "fails", so descent only stops when no candidate
  // changes the scenario any further — well before the default budget.
  const auto res =
      shrink(big_scenario(), [](const scenario&) { return true; });
  EXPECT_LT(res.attempts, shrink_options{}.max_attempts);
  // Fully reduced: the structural fields sit at their floors.
  EXPECT_EQ(res.best.num_initiators, 1);
  EXPECT_EQ(res.best.num_targets, 1);
  EXPECT_EQ(res.best.hotspot_fraction, 0.0);
}

}  // namespace
}  // namespace stx::testkit
