// Golden regression: the flow's JSON output for the paper apps must
// match the snapshots committed under tests/golden/ exactly. On drift,
// the failure message is a JSON-path diff plus the regeneration command.
//
// STX_GOLDEN_DIR is injected by tests/testkit/CMakeLists.txt and points
// at the source tree's tests/golden directory.
#include "testkit/golden.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "gen/json_backend.h"

namespace stx::testkit {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string join(const std::vector<std::string>& lines) {
  std::ostringstream out;
  for (const auto& l : lines) out << "  " << l << "\n";
  return out.str();
}

TEST(Golden, PaperAppSnapshotsMatch) {
  for (const auto& name : golden_apps()) {
    SCOPED_TRACE(name);
    const auto path =
        std::string(STX_GOLDEN_DIR) + "/" + golden_filename(name);
    const auto expected = read_file(path);
    ASSERT_FALSE(expected.empty())
        << "missing golden snapshot " << path
        << " — run scripts/regen-goldens.sh";
    const auto actual = golden_json(golden_report(name));
    const auto d = golden_diff(expected, actual);
    EXPECT_TRUE(d.empty())
        << "flow output drifted from " << path << ":\n" << join(d)
        << "if the change is intentional, refresh with "
           "scripts/regen-goldens.sh";
  }
}

TEST(Golden, SnapshotsRoundTripThroughTheJsonBackend) {
  // Guards the regeneration path itself: a snapshot is the canonical
  // json-backend emission, so parse_design must reconstruct the report.
  const auto report = golden_report("qsort");
  const auto parsed = gen::parse_design(golden_json(report));
  EXPECT_EQ(parsed, report);
}

TEST(Golden, DiffIsReadableAndAnchored) {
  const auto a = R"({"x": 1, "y": {"z": 2.5}})";
  const auto b = R"({"x": 1, "y": {"z": 3.5}})";
  const auto d = golden_diff(a, b);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], "$.y.z: expected 2.5, got 3.5");
  EXPECT_TRUE(golden_diff(a, a).empty());
  // Malformed input degrades to a message, not a throw.
  EXPECT_FALSE(golden_diff("{", b).empty());
}

}  // namespace
}  // namespace stx::testkit
