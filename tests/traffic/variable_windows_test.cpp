// Unit tests for variable-size analysis windows.
#include "traffic/variable_windows.h"

#include <gtest/gtest.h>

#include "traffic/windows.h"
#include "util/error.h"

namespace stx::traffic {
namespace {

TEST(WindowPartition, UniformFactoryCoversHorizon) {
  const auto p = window_partition::uniform(1000, 300);
  EXPECT_EQ(p.num_windows(), 4);  // 300,300,300,100
  EXPECT_EQ(p.begin(0), 0);
  EXPECT_EQ(p.end(3), 1000);
  EXPECT_EQ(p.size(3), 100);
  EXPECT_EQ(p.max_size(), 300);
  EXPECT_EQ(p.horizon(), 1000);
}

TEST(WindowPartition, ValidatesBoundaries) {
  EXPECT_THROW(window_partition({0}), invalid_argument_error);
  EXPECT_THROW(window_partition({5, 10}), invalid_argument_error);
  EXPECT_THROW(window_partition({0, 10, 10}), invalid_argument_error);
  EXPECT_THROW(window_partition({0, 20, 10}), invalid_argument_error);
  EXPECT_NO_THROW(window_partition({0, 10, 30}));
}

TEST(WindowPartition, BurstAdaptiveShrinksInDensePhases) {
  // Dense activity in [0,200), silence until 2000.
  trace t(2, 1, 2000);
  t.add({0, 0, 0, 200, false});
  t.add({1, 0, 0, 200, false});
  const auto p = window_partition::burst_adaptive(
      t, /*target_busy_per_window=*/100, /*min_size=*/50, /*max_size=*/1000);
  // Dense region: ~100 busy per 50-cycle window -> several small windows;
  // quiet region: max_size windows.
  ASSERT_GE(p.num_windows(), 4);
  EXPECT_LE(p.size(0), 100);
  EXPECT_EQ(p.max_size(), 1000);
  EXPECT_EQ(p.horizon(), 2000);
}

TEST(WindowPartition, BurstAdaptiveRespectsClamp) {
  trace t(1, 1, 5000);
  t.add({0, 0, 0, 5000, false});  // uniformly busy
  const auto p = window_partition::burst_adaptive(t, 100, 200, 400);
  for (int m = 0; m < p.num_windows() - 1; ++m) {
    EXPECT_GE(p.size(m), 200);
    EXPECT_LE(p.size(m), 400);
  }
}

TEST(VariableWindows, AgreesWithUniformAnalysisOnUniformPartition) {
  trace t(3, 1, 500);
  t.add({0, 0, 10, 80, false});
  t.add({1, 0, 40, 140, false});
  t.add({2, 0, 300, 420, false});
  t.add({0, 0, 350, 380, true});

  const window_analysis uniform(t, 100);
  const variable_window_analysis variable(
      t, window_partition::uniform(500, 100));

  ASSERT_EQ(variable.num_windows(), uniform.num_windows());
  for (int i = 0; i < 3; ++i) {
    for (int m = 0; m < uniform.num_windows(); ++m) {
      EXPECT_EQ(variable.comm(i, m), uniform.comm(i, m))
          << "i=" << i << " m=" << m;
    }
    for (int j = i + 1; j < 3; ++j) {
      EXPECT_EQ(variable.total_overlap(i, j), uniform.total_overlap(i, j));
      EXPECT_EQ(variable.critical_overlap(i, j),
                uniform.critical_overlap(i, j));
      for (int m = 0; m < uniform.num_windows(); ++m) {
        EXPECT_EQ(variable.pair_window_overlap(i, j, m),
                  uniform.pair_window_overlap(i, j, m));
      }
    }
  }
}

TEST(VariableWindows, CommBoundedByWindowSize) {
  trace t(1, 1, 1000);
  t.add({0, 0, 0, 1000, false});
  const variable_window_analysis vwa(
      t, window_partition({0, 100, 400, 1000}));
  EXPECT_EQ(vwa.comm(0, 0), 100);
  EXPECT_EQ(vwa.comm(0, 1), 300);
  EXPECT_EQ(vwa.comm(0, 2), 600);
}

TEST(VariableWindows, OverlapFractionUsesOwnWindowSize) {
  // Overlap of 50 cycles inside a 100-cycle window is 50%, even though a
  // later window is 10x larger.
  trace t(2, 1, 1100);
  t.add({0, 0, 0, 60, false});
  t.add({1, 0, 10, 60, false});
  const variable_window_analysis vwa(t,
                                     window_partition({0, 100, 1100}));
  EXPECT_DOUBLE_EQ(vwa.max_window_overlap_fraction(0, 1), 0.5);
}

}  // namespace
}  // namespace stx::traffic
