// Property tests: window-analysis identities on random traces.
#include <gtest/gtest.h>

#include <algorithm>

#include "traffic/windows.h"
#include "util/random.h"

namespace stx::traffic {
namespace {

trace make_random_trace(rng& r, int targets, int initiators,
                        cycle_t horizon, int events) {
  trace t(targets, initiators, horizon);
  for (int e = 0; e < events; ++e) {
    stream_event ev;
    ev.target = static_cast<int>(r.uniform_int(0, targets - 1));
    ev.initiator = static_cast<int>(r.uniform_int(0, initiators - 1));
    ev.begin = r.uniform_int(0, horizon - 2);
    ev.end = std::min<cycle_t>(horizon,
                               ev.begin + r.uniform_int(1, horizon / 8));
    ev.critical = r.chance(0.2);
    t.add(ev);
  }
  return t;
}

class WindowsRandom : public ::testing::TestWithParam<int> {};

TEST_P(WindowsRandom, CommSumsToMergedBusyTotal) {
  rng r(static_cast<std::uint64_t>(GetParam()) * 90001 + 7);
  const auto t = make_random_trace(r, 4, 2, 2000,
                                   static_cast<int>(r.uniform_int(5, 60)));
  const auto ws = r.uniform_int(50, 700);
  const window_analysis wa(t, ws);
  const auto busy = t.total_busy_per_target();
  for (int i = 0; i < t.num_targets(); ++i) {
    EXPECT_EQ(wa.total_comm(i), busy[static_cast<std::size_t>(i)])
        << "target " << i << " seed " << GetParam();
  }
}

TEST_P(WindowsRandom, OverlapBoundedByComm) {
  rng r(static_cast<std::uint64_t>(GetParam()) * 7349 + 3);
  const auto t = make_random_trace(r, 5, 2, 1500,
                                   static_cast<int>(r.uniform_int(5, 50)));
  const auto ws = r.uniform_int(40, 500);
  const window_analysis wa(t, ws);
  for (int i = 0; i < t.num_targets(); ++i) {
    for (int j = i + 1; j < t.num_targets(); ++j) {
      cycle_t total = 0;
      for (int m = 0; m < wa.num_windows(); ++m) {
        const auto wo = wa.pair_window_overlap(i, j, m);
        EXPECT_GE(wo, 0);
        EXPECT_LE(wo, std::min(wa.comm(i, m), wa.comm(j, m)))
            << "seed " << GetParam();
        EXPECT_LE(wo, ws);
        total += wo;
      }
      EXPECT_EQ(total, wa.total_overlap(i, j)) << "Eq. 1, seed " << GetParam();
      EXPECT_EQ(wa.total_overlap(i, j), wa.total_overlap(j, i));
      EXPECT_LE(wa.max_window_overlap(i, j), ws);
      EXPECT_LE(wa.critical_overlap(i, j), wa.total_overlap(i, j));
    }
  }
}

TEST_P(WindowsRandom, CommNeverExceedsWindowSize) {
  rng r(static_cast<std::uint64_t>(GetParam()) * 333667 + 11);
  const auto t = make_random_trace(r, 3, 2, 1200,
                                   static_cast<int>(r.uniform_int(5, 40)));
  const auto ws = r.uniform_int(30, 400);
  const window_analysis wa(t, ws);
  for (int i = 0; i < t.num_targets(); ++i) {
    for (int m = 0; m < wa.num_windows(); ++m) {
      EXPECT_GE(wa.comm(i, m), 0);
      EXPECT_LE(wa.comm(i, m), ws) << "seed " << GetParam();
    }
  }
}

TEST_P(WindowsRandom, WindowSizeUnionIsInvariant) {
  // Splitting into windows must not create or destroy busy cycles:
  // analyses with different window sizes agree on totals.
  rng r(static_cast<std::uint64_t>(GetParam()) * 104659 + 23);
  const auto t = make_random_trace(r, 4, 2, 1000,
                                   static_cast<int>(r.uniform_int(5, 40)));
  const window_analysis fine(t, 37);
  const window_analysis coarse(t, 1000);
  for (int i = 0; i < t.num_targets(); ++i) {
    EXPECT_EQ(fine.total_comm(i), coarse.total_comm(i));
    for (int j = i + 1; j < t.num_targets(); ++j) {
      EXPECT_EQ(fine.total_overlap(i, j), coarse.total_overlap(i, j))
          << "seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowsRandom, ::testing::Range(0, 30));

}  // namespace
}  // namespace stx::traffic
