// Unit tests for burst structure estimation.
#include "traffic/burst.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace stx::traffic {
namespace {

TEST(Burst, SingleInterval) {
  trace t(1, 1, 1000);
  t.add({0, 0, 100, 150, false});
  const auto s = analyze_bursts(t, 0, 20);
  EXPECT_EQ(s.count, 1);
  EXPECT_DOUBLE_EQ(s.mean_length, 50.0);
  EXPECT_EQ(s.max_length, 50);
  EXPECT_DOUBLE_EQ(s.mean_gap, 0.0);
}

TEST(Burst, GapThresholdMergesCloseIntervals) {
  trace t(1, 1, 1000);
  t.add({0, 0, 0, 10, false});
  t.add({0, 0, 15, 25, false});   // gap 5 <= 20: same burst
  t.add({0, 0, 100, 110, false}); // gap 75 > 20: new burst
  const auto s = analyze_bursts(t, 0, 20);
  EXPECT_EQ(s.count, 2);
  EXPECT_DOUBLE_EQ(s.mean_length, (25.0 + 10.0) / 2.0);
  EXPECT_EQ(s.max_length, 25);
  EXPECT_DOUBLE_EQ(s.mean_gap, 75.0);
}

TEST(Burst, ZeroThresholdKeepsSeparateIntervals) {
  trace t(1, 1, 100);
  t.add({0, 0, 0, 10, false});
  t.add({0, 0, 11, 20, false});
  const auto s = analyze_bursts(t, 0, 0);
  EXPECT_EQ(s.count, 2);
}

TEST(Burst, EmptyTargetHasNoBursts) {
  trace t(2, 1, 100);
  t.add({1, 0, 0, 10, false});
  const auto s = analyze_bursts(t, 0, 10);
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.mean_length, 0.0);
}

TEST(Burst, RejectsNegativeThreshold) {
  trace t(1, 1, 100);
  EXPECT_THROW(analyze_bursts(t, 0, -1), invalid_argument_error);
}

TEST(Burst, TypicalLengthAveragesOverActiveTargets) {
  trace t(3, 1, 1000);
  t.add({0, 0, 0, 100, false});   // burst length 100
  t.add({1, 0, 0, 300, false});   // burst length 300
  // target 2 silent: excluded from the average
  EXPECT_DOUBLE_EQ(typical_burst_length(t, 10), 200.0);
}

TEST(Burst, TypicalLengthEmptyTraceIsZero) {
  trace t(2, 1, 100);
  EXPECT_DOUBLE_EQ(typical_burst_length(t, 10), 0.0);
}

}  // namespace
}  // namespace stx::traffic
