// Unit tests for window-based traffic analysis.
#include "traffic/windows.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace stx::traffic {
namespace {

TEST(IntervalOverlap, BasicCases) {
  const std::vector<std::pair<cycle_t, cycle_t>> a = {{0, 10}, {20, 30}};
  const std::vector<std::pair<cycle_t, cycle_t>> b = {{5, 25}};
  // a∩b = [5,10) + [20,25) = 10 cycles.
  EXPECT_EQ(interval_overlap(a, b, 0, 100), 10);
  EXPECT_EQ(interval_overlap(b, a, 0, 100), 10);  // commutative
}

TEST(IntervalOverlap, RespectsClipRange) {
  const std::vector<std::pair<cycle_t, cycle_t>> a = {{0, 100}};
  const std::vector<std::pair<cycle_t, cycle_t>> b = {{0, 100}};
  EXPECT_EQ(interval_overlap(a, b, 10, 40), 30);
}

TEST(IntervalOverlap, DisjointIsZero) {
  const std::vector<std::pair<cycle_t, cycle_t>> a = {{0, 10}};
  const std::vector<std::pair<cycle_t, cycle_t>> b = {{10, 20}};
  EXPECT_EQ(interval_overlap(a, b, 0, 100), 0);
}

TEST(IntervalOverlap, EmptyLists) {
  const std::vector<std::pair<cycle_t, cycle_t>> a = {{0, 10}};
  EXPECT_EQ(interval_overlap(a, {}, 0, 100), 0);
  EXPECT_EQ(interval_overlap({}, {}, 0, 100), 0);
}

/// Two targets with hand-computable layout:
/// target 0 busy [0,10) and [95,105); target 1 busy [5,12) and [100,103).
trace make_hand_trace() {
  trace t(2, 1, 200);
  t.add({0, 0, 0, 10, false});
  t.add({0, 0, 95, 105, false});
  t.add({1, 0, 5, 12, false});
  t.add({1, 0, 100, 103, false});
  return t;
}

TEST(WindowAnalysis, CommSplitsAcrossWindowBoundaries) {
  const auto t = make_hand_trace();
  const window_analysis wa(t, 100);  // windows [0,100) and [100,200)
  EXPECT_EQ(wa.num_windows(), 2);
  EXPECT_EQ(wa.comm(0, 0), 15);  // [0,10) + [95,100)
  EXPECT_EQ(wa.comm(0, 1), 5);   // [100,105)
  EXPECT_EQ(wa.comm(1, 0), 7);
  EXPECT_EQ(wa.comm(1, 1), 3);
}

TEST(WindowAnalysis, PairOverlapPerWindow) {
  const auto t = make_hand_trace();
  const window_analysis wa(t, 100);
  // Window 0: [5,10) = 5; window 1: [100,103) = 3.
  EXPECT_EQ(wa.pair_window_overlap(0, 1, 0), 5);
  EXPECT_EQ(wa.pair_window_overlap(0, 1, 1), 3);
  EXPECT_EQ(wa.pair_window_overlap(1, 0, 0), 5);  // symmetric
}

TEST(WindowAnalysis, OverlapMatrixIsSumOverWindows) {
  const auto t = make_hand_trace();
  const window_analysis wa(t, 100);
  EXPECT_EQ(wa.total_overlap(0, 1), 8);
  EXPECT_EQ(wa.max_window_overlap(0, 1), 5);
  EXPECT_EQ(wa.total_overlap(0, 0), 0);  // diagonal convention
}

TEST(WindowAnalysis, OverlapSpanningWindowBoundary) {
  trace t(2, 1, 200);
  t.add({0, 0, 90, 110, false});
  t.add({1, 0, 95, 120, false});
  const window_analysis wa(t, 100);
  EXPECT_EQ(wa.pair_window_overlap(0, 1, 0), 5);   // [95,100)
  EXPECT_EQ(wa.pair_window_overlap(0, 1, 1), 10);  // [100,110)
  EXPECT_EQ(wa.total_overlap(0, 1), 15);
}

TEST(WindowAnalysis, SingleWindowEqualsTotals) {
  const auto t = make_hand_trace();
  const window_analysis wa(t, 1000);  // one window covers everything
  EXPECT_EQ(wa.num_windows(), 1);
  EXPECT_EQ(wa.comm(0, 0), 20);
  EXPECT_EQ(wa.total_overlap(0, 1), wa.max_window_overlap(0, 1));
}

TEST(WindowAnalysis, PeakAndTotalComm) {
  const auto t = make_hand_trace();
  const window_analysis wa(t, 100);
  EXPECT_EQ(wa.peak_comm(0), 15);
  EXPECT_EQ(wa.total_comm(0), 20);
  EXPECT_EQ(wa.total_comm(1), 10);
}

TEST(WindowAnalysis, CriticalOverlapOnlyCountsCriticalEvents) {
  trace t(2, 1, 100);
  t.add({0, 0, 0, 10, true});
  t.add({1, 0, 5, 15, false});  // overlaps but not critical
  const window_analysis wa1(t, 100);
  EXPECT_EQ(wa1.critical_overlap(0, 1), 0);
  EXPECT_EQ(wa1.total_overlap(0, 1), 5);  // plain overlap still seen

  trace t2(2, 1, 100);
  t2.add({0, 0, 0, 10, true});
  t2.add({1, 0, 5, 15, true});
  const window_analysis wa2(t2, 100);
  EXPECT_EQ(wa2.critical_overlap(0, 1), 5);
  EXPECT_TRUE(wa2.critical_targets()[0]);
  EXPECT_TRUE(wa2.critical_targets()[1]);
}

TEST(WindowAnalysis, RejectsBadWindowSize) {
  const auto t = make_hand_trace();
  EXPECT_THROW(window_analysis(t, 0), invalid_argument_error);
  EXPECT_THROW(window_analysis(t, -5), invalid_argument_error);
}

TEST(WindowAnalysis, EmptyTraceYieldsZeroes) {
  trace t(3, 1, 1000);
  const window_analysis wa(t, 100);
  EXPECT_EQ(wa.num_windows(), 10);
  EXPECT_EQ(wa.comm(0, 5), 0);
  EXPECT_EQ(wa.total_overlap(0, 1), 0);
  EXPECT_EQ(wa.peak_comm(2), 0);
}

TEST(WindowAnalysis, BoundsChecking) {
  const auto t = make_hand_trace();
  const window_analysis wa(t, 100);
  EXPECT_THROW(wa.comm(5, 0), invalid_argument_error);
  EXPECT_THROW(wa.comm(0, 9), invalid_argument_error);
  EXPECT_THROW(wa.pair_window_overlap(0, 1, 9), invalid_argument_error);
}

}  // namespace
}  // namespace stx::traffic
