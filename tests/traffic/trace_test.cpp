// Unit tests for traffic traces.
#include "traffic/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"

namespace stx::traffic {
namespace {

TEST(Trace, ConstructionAndDimensions) {
  trace t(4, 3, 1000);
  EXPECT_EQ(t.num_targets(), 4);
  EXPECT_EQ(t.num_initiators(), 3);
  EXPECT_EQ(t.horizon(), 1000);
  EXPECT_TRUE(t.empty());
}

TEST(Trace, AddValidatesIds) {
  trace t(2, 2, 100);
  EXPECT_THROW(t.add({5, 0, 0, 10, false}), invalid_argument_error);
  EXPECT_THROW(t.add({0, 7, 0, 10, false}), invalid_argument_error);
  EXPECT_THROW(t.add({0, 0, 10, 10, false}), invalid_argument_error);
  EXPECT_THROW(t.add({0, 0, -1, 10, false}), invalid_argument_error);
  t.add({0, 0, 0, 10, false});
  EXPECT_EQ(t.events().size(), 1u);
}

TEST(Trace, HorizonGrowsWithEvents) {
  trace t(1, 1, 50);
  t.add({0, 0, 40, 120, false});
  EXPECT_EQ(t.horizon(), 120);
}

TEST(Trace, ExtendHorizonNeverShrinks) {
  trace t(1, 1, 100);
  t.extend_horizon(50);
  EXPECT_EQ(t.horizon(), 100);
  t.extend_horizon(300);
  EXPECT_EQ(t.horizon(), 300);
}

TEST(Trace, BusyIntervalsMergeAdjacentAndOverlapping) {
  trace t(2, 1, 100);
  t.add({0, 0, 0, 10, false});
  t.add({0, 0, 10, 20, false});   // adjacent: merges
  t.add({0, 0, 30, 50, false});
  t.add({0, 0, 40, 60, false});   // overlapping: merges
  t.add({1, 0, 5, 7, false});     // different target: untouched
  const auto iv = t.busy_intervals(0);
  ASSERT_EQ(iv.size(), 2u);
  EXPECT_EQ(iv[0].first, 0);
  EXPECT_EQ(iv[0].second, 20);
  EXPECT_EQ(iv[1].first, 30);
  EXPECT_EQ(iv[1].second, 60);
}

TEST(Trace, BusyIntervalsCriticalOnly) {
  trace t(1, 1, 100);
  t.add({0, 0, 0, 10, false});
  t.add({0, 0, 20, 30, true});
  const auto all = t.busy_intervals(0);
  const auto crit = t.busy_intervals(0, /*critical_only=*/true);
  EXPECT_EQ(all.size(), 2u);
  ASSERT_EQ(crit.size(), 1u);
  EXPECT_EQ(crit[0].first, 20);
}

TEST(Trace, TotalBusyPerTarget) {
  trace t(2, 1, 100);
  t.add({0, 0, 0, 10, false});
  t.add({0, 0, 5, 15, false});  // overlap merged: total 15, not 20
  t.add({1, 0, 0, 4, false});
  const auto busy = t.total_busy_per_target();
  EXPECT_EQ(busy[0], 15);
  EXPECT_EQ(busy[1], 4);
}

TEST(Trace, TargetHasCritical) {
  trace t(2, 1, 100);
  t.add({0, 0, 0, 10, true});
  t.add({1, 0, 0, 10, false});
  EXPECT_TRUE(t.target_has_critical(0));
  EXPECT_FALSE(t.target_has_critical(1));
}

TEST(Trace, SaveLoadRoundTrip) {
  trace t(3, 2, 500);
  t.add({0, 1, 10, 20, false});
  t.add({2, 0, 30, 45, true});
  std::stringstream buffer;
  t.save(buffer);
  const auto loaded = trace::load(buffer);
  EXPECT_EQ(loaded.num_targets(), 3);
  EXPECT_EQ(loaded.num_initiators(), 2);
  EXPECT_EQ(loaded.horizon(), 500);
  ASSERT_EQ(loaded.events().size(), 2u);
  EXPECT_EQ(loaded.events()[1].target, 2);
  EXPECT_EQ(loaded.events()[1].begin, 30);
  EXPECT_TRUE(loaded.events()[1].critical);
  EXPECT_FALSE(loaded.events()[0].critical);
}

TEST(Trace, LoadRejectsGarbage) {
  std::stringstream buffer("not a trace at all");
  EXPECT_THROW(trace::load(buffer), invalid_argument_error);
}

TEST(Trace, LoadRejectsTruncated) {
  trace t(1, 1, 100);
  t.add({0, 0, 0, 10, false});
  std::stringstream buffer;
  t.save(buffer);
  std::string text = buffer.str();
  text.resize(text.size() / 2);
  std::stringstream half(text);
  EXPECT_THROW(trace::load(half), invalid_argument_error);
}

TEST(Trace, BusyIntervalsRejectsBadTarget) {
  trace t(1, 1, 10);
  EXPECT_THROW(t.busy_intervals(3), invalid_argument_error);
}

}  // namespace
}  // namespace stx::traffic
