// Unit tests for running statistics and histogram.
#include "util/stats.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace stx {
namespace {

TEST(RunningStats, BasicMoments) {
  running_stats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.variance(), 4.0, 1e-12);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-12);
}

TEST(RunningStats, EmptyBehaviour) {
  running_stats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_THROW(s.min(), invalid_argument_error);
  EXPECT_THROW(s.max(), invalid_argument_error);
}

TEST(RunningStats, SingleSample) {
  running_stats s;
  s.add(3.5);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(RunningStats, MergeMatchesSequential) {
  running_stats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.77 - 3;
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  running_stats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1);
  b.merge(a);
  EXPECT_EQ(b.count(), 1);
  EXPECT_EQ(b.mean(), 1.0);
}

TEST(RunningStats, PercentileExact) {
  running_stats s(/*keep_samples=*/true);
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(s.percentile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0.99), 99.01, 1e-9);
}

TEST(RunningStats, PercentileRequiresSamples) {
  running_stats s(false);
  s.add(1.0);
  EXPECT_THROW(s.percentile(0.5), invalid_argument_error);
}

TEST(RunningStats, PercentileRejectsBadP) {
  running_stats s(true);
  s.add(1.0);
  EXPECT_THROW(s.percentile(1.5), invalid_argument_error);
}

TEST(Histogram, CountsAndClamping) {
  histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-3.0);   // clamps to bin 0
  h.add(100.0);  // clamps to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5);
  EXPECT_EQ(h.bin_count(0), 2);
  EXPECT_EQ(h.bin_count(2), 1);
  EXPECT_EQ(h.bin_count(4), 2);
  EXPECT_EQ(h.bin_count(1), 0);
}

TEST(Histogram, BinEdges) {
  histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_lo(0), 0.0);
  EXPECT_EQ(h.bin_hi(0), 2.0);
  EXPECT_EQ(h.bin_lo(4), 8.0);
  EXPECT_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, RenderSkipsEmptyBins) {
  histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(3.5);
  const auto text = h.render();
  EXPECT_NE(text.find("[0, 1)"), std::string::npos);
  EXPECT_NE(text.find("[3, 4)"), std::string::npos);
  EXPECT_EQ(text.find("[1, 2)"), std::string::npos);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(histogram(5.0, 5.0, 3), invalid_argument_error);
  EXPECT_THROW(histogram(0.0, 1.0, 0), invalid_argument_error);
}

}  // namespace
}  // namespace stx
