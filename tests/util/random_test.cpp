// Unit tests for the deterministic RNG.
#include "util/random.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/error.h"

namespace stx {
namespace {

TEST(Rng, SameSeedSameSequence) {
  rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformIntStaysInRange) {
  rng r(7);
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntCoversRange) {
  rng r(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntDegenerateRange) {
  rng r(3);
  EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  rng r(19);
  for (int i = 0; i < 2000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsPlausible) {
  rng r(23);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  rng r(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, JitterClampsAtMinimum) {
  rng r(31);
  for (int i = 0; i < 500; ++i) {
    EXPECT_GE(r.jitter(10, 50, 5), 5);
  }
}

TEST(Rng, JitterStaysInBand) {
  rng r(37);
  for (int i = 0; i < 500; ++i) {
    const auto v = r.jitter(100, 10);
    EXPECT_GE(v, 90);
    EXPECT_LE(v, 110);
  }
}

TEST(Rng, WeightedIndexRespectsZeroWeights) {
  rng r(41);
  const std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(r.weighted_index(w), 1);
  }
}

TEST(Rng, WeightedIndexRoughProportions) {
  rng r(43);
  const std::vector<double> w = {1.0, 3.0};
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (r.weighted_index(w) == 1) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.75, 0.03);
}

TEST(Rng, WeightedIndexRejectsAllZero) {
  rng r(47);
  EXPECT_THROW(r.weighted_index({0.0, 0.0}), invalid_argument_error);
}

TEST(Rng, ShufflePreservesElements) {
  rng r(53);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  r.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  rng parent(99);
  rng c1 = parent.split(1);
  rng c2 = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.next_u64() == c2.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitIsDeterministic) {
  rng p1(5), p2(5);
  rng a = p1.split(3);
  rng b = p2.split(3);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

}  // namespace
}  // namespace stx
