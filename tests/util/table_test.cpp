// Unit tests for the ASCII table renderer.
#include "util/table.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace stx {
namespace {

TEST(Table, RendersAlignedColumns) {
  table t({"Type", "Avg"});
  t.add_row({"shared", "35.1"});
  t.add_row({"full", "6"});
  const auto text = t.render();
  EXPECT_NE(text.find("Type"), std::string::npos);
  EXPECT_NE(text.find("shared"), std::string::npos);
  // Header separator present.
  EXPECT_NE(text.find("|---"), std::string::npos);
}

TEST(Table, CellBuilderTypesFormat) {
  table t({"a", "b", "c", "d"});
  t.cell("x").cell(3.14159, 2).cell(std::int64_t{42}).cell(7).end_row();
  ASSERT_EQ(t.rows(), 1);
  const auto text = t.render();
  EXPECT_NE(text.find("3.14"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
}

TEST(Table, RejectsWrongWidthRow) {
  table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), invalid_argument_error);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(table({}), invalid_argument_error);
}

TEST(Table, CsvEscapesSpecials) {
  table t({"name", "note"});
  t.add_row({"a,b", "say \"hi\""});
  const auto csv = t.render_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvPlainCellsUnquoted) {
  table t({"x"});
  t.add_row({"plain"});
  EXPECT_EQ(t.render_csv(), "x\nplain\n");
}

TEST(FormatHelpers, FixedPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_ratio(3.5, 1), "3.5x");
}

}  // namespace
}  // namespace stx
