// Unit tests for the CLI flag parser.
#include "util/flags.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace stx {
namespace {

flag_set parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return flag_set(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsSyntax) {
  const auto f = parse({"--seed=42", "--name=mat2"});
  EXPECT_EQ(f.get_int("seed", 0), 42);
  EXPECT_EQ(f.get_string("name", ""), "mat2");
}

TEST(Flags, SpaceSyntax) {
  const auto f = parse({"--seed", "7"});
  EXPECT_EQ(f.get_int("seed", 0), 7);
}

TEST(Flags, BareFlagIsPresentAndTrue) {
  const auto f = parse({"--verbose"});
  EXPECT_TRUE(f.has("verbose"));
  EXPECT_TRUE(f.get_bool("verbose", false));
}

TEST(Flags, FallbacksWhenAbsent) {
  const auto f = parse({});
  EXPECT_EQ(f.get_int("missing", 9), 9);
  EXPECT_EQ(f.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(f.get_string("missing", "d"), "d");
  EXPECT_FALSE(f.get_bool("missing", false));
  EXPECT_FALSE(f.has("missing"));
}

TEST(Flags, PositionalArgumentsKept) {
  const auto f = parse({"input.trace", "--x=1", "more"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.trace");
  EXPECT_EQ(f.positional()[1], "more");
}

TEST(Flags, DoubleParsing) {
  const auto f = parse({"--thr=0.25"});
  EXPECT_DOUBLE_EQ(f.get_double("thr", 0), 0.25);
}

TEST(Flags, BooleanExplicitValues) {
  EXPECT_TRUE(parse({"--b=true"}).get_bool("b", false));
  EXPECT_TRUE(parse({"--b=1"}).get_bool("b", false));
  EXPECT_FALSE(parse({"--b=false"}).get_bool("b", true));
  EXPECT_FALSE(parse({"--b=0"}).get_bool("b", true));
}

TEST(Flags, RejectsGarbageNumbers) {
  const auto f = parse({"--n=abc"});
  EXPECT_THROW(f.get_int("n", 0), invalid_argument_error);
  EXPECT_THROW(f.get_double("n", 0), invalid_argument_error);
}

TEST(Flags, RejectsGarbageBool) {
  const auto f = parse({"--b=maybe"});
  EXPECT_THROW(f.get_bool("b", false), invalid_argument_error);
}

TEST(Flags, LaterValueWins) {
  const auto f = parse({"--x=1", "--x=2"});
  EXPECT_EQ(f.get_int("x", 0), 2);
}

TEST(Flags, GetListCollectsRepeatedFlagsInOrder) {
  const auto f = parse({"--grid", "win=200,400", "--x=1", "--grid=thr=0.1",
                        "--grid", "maxtb=0"});
  const auto grids = f.get_list("grid");
  ASSERT_EQ(grids.size(), 3u);
  EXPECT_EQ(grids[0], "win=200,400");
  EXPECT_EQ(grids[1], "thr=0.1");
  EXPECT_EQ(grids[2], "maxtb=0");
  // Scalar lookups keep last-one-wins; absent flags give an empty list.
  EXPECT_EQ(f.get_string("grid", ""), "maxtb=0");
  EXPECT_TRUE(f.get_list("absent").empty());
  EXPECT_EQ(f.get_list("x"), std::vector<std::string>{"1"});
}

TEST(Flags, NamesListsEverySuppliedFlagSorted) {
  const auto f = parse({"--zeta=1", "--alpha", "--mid=x", "positional"});
  const auto names = f.names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "mid");
  EXPECT_EQ(names[2], "zeta");
  EXPECT_TRUE(parse({}).names().empty());
}

}  // namespace
}  // namespace stx
