#include "util/strings.h"

#include <gtest/gtest.h>

namespace stx {
namespace {

TEST(Strings, SplitListDropsEmptyItems) {
  EXPECT_EQ(split_list("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_list("a,,b,"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(split_list(",,,"), std::vector<std::string>{});
  EXPECT_EQ(split_list(""), std::vector<std::string>{});
  EXPECT_EQ(split_list("solo"), std::vector<std::string>{"solo"});
}

TEST(Strings, SplitListHonoursTheSeparator) {
  EXPECT_EQ(split_list("a;b", ';'), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(split_list("a,b", ';'), std::vector<std::string>{"a,b"});
}

}  // namespace
}  // namespace stx
