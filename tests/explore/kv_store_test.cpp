// The narrow kv_store contract on the in-process implementation:
// get/put/contains semantics and honest hit/miss accounting.
#include "explore/kv_store.h"

#include <gtest/gtest.h>

namespace stx::explore {
namespace {

cache_key key_for(const std::string& app) {
  return trace_key(app, xbar::flow_options{});
}

TEST(MemoryStore, MissThenPutThenHit) {
  memory_store store;
  const auto key = key_for("mat2");
  EXPECT_EQ(store.get(key), std::nullopt);
  store.put(key, "payload bytes");
  const auto got = store.get(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "payload bytes");

  const auto stats = store.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.puts, 1);
  EXPECT_EQ(stats.corrupt, 0);  // memory entries cannot corrupt
}

TEST(MemoryStore, ContainsDoesNotCountAsAHit) {
  memory_store store;
  const auto key = key_for("fft");
  EXPECT_FALSE(store.contains(key));
  store.put(key, "x");
  EXPECT_TRUE(store.contains(key));
  const auto stats = store.stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 0);
}

TEST(MemoryStore, PutReplacesAndLastWriterWins) {
  memory_store store;
  const auto key = key_for("qsort");
  store.put(key, "first");
  store.put(key, "second");
  EXPECT_EQ(store.get(key).value(), "second");
  EXPECT_EQ(store.stats().puts, 2);
}

TEST(MemoryStore, DistinctKeysAreDistinctEntries) {
  memory_store store;
  store.put(key_for("a"), "A");
  store.put(key_for("b"), "B");
  EXPECT_EQ(store.get(key_for("a")).value(), "A");
  EXPECT_EQ(store.get(key_for("b")).value(), "B");
  // Binary payloads (embedded NUL, newlines) survive untouched.
  const std::string blob("tr\0ace\nbytes", 12);
  store.put(key_for("bin"), blob);
  EXPECT_EQ(store.get(key_for("bin")).value(), blob);
}

}  // namespace
}  // namespace stx::explore
