// Grid expansion and CLI axis parsing.
#include "explore/grid.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace stx::explore {
namespace {

TEST(Grid, EmptyGridExpandsToTheSingleDefaultPoint) {
  const sweep_grid grid;
  EXPECT_TRUE(grid.empty());
  EXPECT_EQ(grid.num_points(), 1u);
  const auto points = expand_grid(grid);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0], sweep_point{});
}

TEST(Grid, CrossProductSizeIsTheAxisProduct) {
  sweep_grid grid;
  grid.window_sizes = {200, 400, 1000};
  grid.overlap_thresholds = {0.1, 0.3};
  grid.max_targets_per_bus = {0, 4};
  EXPECT_EQ(grid.num_points(), 12u);
  const auto points = expand_grid(grid);
  EXPECT_EQ(points.size(), 12u);
  // Window-major order, axis value order preserved.
  EXPECT_EQ(points[0].window_size, 200);
  EXPECT_DOUBLE_EQ(points[0].overlap_threshold, 0.1);
  EXPECT_EQ(points[0].max_targets_per_bus, 0);
  EXPECT_EQ(points[1].max_targets_per_bus, 4);
  EXPECT_EQ(points.back().window_size, 1000);
  EXPECT_DOUBLE_EQ(points.back().overlap_threshold, 0.3);
  // Unswept axes keep defaults everywhere.
  for (const auto& p : points) {
    EXPECT_EQ(p.policy, sim::arbitration::round_robin);
    EXPECT_EQ(p.solver, xbar::solver_kind::specialized);
  }
}

TEST(Grid, DuplicateAxisValuesAreDeduplicated) {
  sweep_grid grid;
  grid.window_sizes = {400, 400, 800, 400};
  grid.overlap_thresholds = {0.3, 0.3};
  EXPECT_EQ(grid.num_points(), 8u);  // raw cross product
  const auto points = expand_grid(grid);
  ASSERT_EQ(points.size(), 2u);  // deduplicated, first occurrences kept
  EXPECT_EQ(points[0].window_size, 400);
  EXPECT_EQ(points[1].window_size, 800);
}

TEST(Grid, ParsesEveryAxisKey) {
  const auto grid = parse_grid({
      "win=200,400",
      "thr=0.1,0.5",
      "maxtb=0,4",
      "burstwin=1000",
      "policy=fixed,rr,lrg",
      "solver=specialized,milp",
      "reqwin=100",
      "respwin=300",
  });
  EXPECT_EQ(grid.window_sizes, (std::vector<cycle_t>{200, 400}));
  EXPECT_EQ(grid.overlap_thresholds, (std::vector<double>{0.1, 0.5}));
  EXPECT_EQ(grid.max_targets_per_bus, (std::vector<int>{0, 4}));
  EXPECT_EQ(grid.burst_windows, (std::vector<cycle_t>{1000}));
  EXPECT_EQ(grid.policies,
            (std::vector<sim::arbitration>{
                sim::arbitration::fixed_priority,
                sim::arbitration::round_robin,
                sim::arbitration::least_recently_granted}));
  EXPECT_EQ(grid.solvers,
            (std::vector<xbar::solver_kind>{xbar::solver_kind::specialized,
                                            xbar::solver_kind::generic_milp}));
  EXPECT_EQ(grid.request_windows, (std::vector<cycle_t>{100}));
  EXPECT_EQ(grid.response_windows, (std::vector<cycle_t>{300}));
}

TEST(Grid, RejectsUnknownKeysEmptyAxesAndBadValues) {
  sweep_grid grid;
  EXPECT_THROW(parse_grid_axis("windows=200", grid), invalid_argument_error);
  EXPECT_THROW(parse_grid_axis("win=", grid), invalid_argument_error);
  EXPECT_THROW(parse_grid_axis("win=,,", grid), invalid_argument_error);
  EXPECT_THROW(parse_grid_axis("no-equals-sign", grid),
               invalid_argument_error);
  EXPECT_THROW(parse_grid_axis("win=abc", grid), invalid_argument_error);
  EXPECT_THROW(parse_grid_axis("win=-5", grid), invalid_argument_error);
  // Zero windows and out-of-range values must die at parse time, not
  // after the phase-1 simulation.
  EXPECT_THROW(parse_grid_axis("win=0", grid), invalid_argument_error);
  EXPECT_THROW(parse_grid_axis("win=99999999999999999999", grid),
               invalid_argument_error);
  EXPECT_THROW(parse_grid_axis("policy=banana", grid),
               invalid_argument_error);
  EXPECT_THROW(parse_grid_axis("solver=cplex", grid),
               invalid_argument_error);
  EXPECT_TRUE(grid.empty());  // failed parses never half-populate

  // 0 stays legal where it means "off" / "no override".
  sweep_grid zeros;
  EXPECT_NO_THROW(parse_grid_axis("maxtb=0", zeros));
  EXPECT_NO_THROW(parse_grid_axis("burstwin=0", zeros));
  EXPECT_NO_THROW(parse_grid_axis("reqwin=0", zeros));
  EXPECT_NO_THROW(parse_grid_axis("respwin=0", zeros));
}

TEST(Grid, UnknownKeyErrorListsTheValidKeys) {
  sweep_grid grid;
  try {
    parse_grid_axis("banana=1", grid);
    FAIL() << "expected invalid_argument_error";
  } catch (const invalid_argument_error& e) {
    const std::string what = e.what();
    for (const auto& key : grid_keys()) {
      EXPECT_NE(what.find(key), std::string::npos) << key;
    }
  }
}

TEST(Grid, PointToStringNamesTheKnobs) {
  sweep_point p;
  p.window_size = 1234;
  p.burst_window = 500;
  p.solver = xbar::solver_kind::generic_milp;
  const auto s = p.to_string();
  EXPECT_NE(s.find("win=1234"), std::string::npos);
  EXPECT_NE(s.find("burstwin=500"), std::string::npos);
  EXPECT_NE(s.find("solver=milp"), std::string::npos);
}

}  // namespace
}  // namespace stx::explore
