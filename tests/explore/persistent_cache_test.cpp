// The persistent content-addressed store under the trace cache and the
// staged design flow: entries survive into fresh store/cache instances
// (the in-process stand-in for a second process), corrupted objects are
// misses that get rewritten — never crashes — and a warm whole-report
// hit is bit-identical to the cold computation without running the
// simulator or the solver.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>

#include "explore/cache_key.h"
#include "explore/codec.h"
#include "explore/disk_store.h"
#include "explore/sweep.h"
#include "explore/trace_cache.h"
#include "obs/obs.h"
#include "serve/service.h"
#include "workloads/synthetic.h"

namespace stx::explore {
namespace {

namespace fs = std::filesystem;

/// A fresh per-test directory under the system temp root.
fs::path test_dir(const std::string& name) {
  const auto dir = fs::temp_directory_path() / ("stx-pcache-" + name);
  fs::remove_all(dir);
  return dir;
}

workloads::app_spec small_app() {
  workloads::synthetic_params params;
  params.num_cores = 8;
  return workloads::make_synthetic(params);
}

xbar::flow_options fast_options() {
  xbar::flow_options opts;
  opts.horizon = 8'000;
  return opts;
}

TEST(DiskStore, EntriesSurviveReopen) {
  const auto dir = test_dir("reopen");
  const auto key = trace_key("mat2", fast_options());
  {
    disk_store store(dir.string());
    EXPECT_EQ(store.get(key), std::nullopt);
    store.put(key, "persisted bytes");
    EXPECT_EQ(store.get(key).value(), "persisted bytes");
  }
  // A brand-new instance on the same directory — how a second process
  // sees the store — serves the entry.
  disk_store reopened(dir.string());
  EXPECT_TRUE(reopened.contains(key));
  EXPECT_EQ(reopened.get(key).value(), "persisted bytes");
  const auto stats = reopened.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 0);
  fs::remove_all(dir);
}

TEST(DiskStore, TruncatedObjectIsAMissAndIsRewritten) {
  const auto dir = test_dir("truncated");
  disk_store store(dir.string());
  const auto key = trace_key("mat2", fast_options());
  store.put(key, "a payload long enough to truncate meaningfully");
  const auto obj = dir / "objects" / (hash_hex(key) + ".stx");
  ASSERT_TRUE(fs::exists(obj));

  fs::resize_file(obj, fs::file_size(obj) / 2);
  EXPECT_EQ(store.get(key), std::nullopt);
  EXPECT_FALSE(store.contains(key));
  EXPECT_EQ(store.stats().corrupt, 1);

  // The recompute-and-put cycle heals the entry in place.
  store.put(key, "recomputed payload");
  EXPECT_EQ(store.get(key).value(), "recomputed payload");
  EXPECT_EQ(store.stats().corrupt, 1);  // no new corruption seen
  fs::remove_all(dir);
}

TEST(DiskStore, GarbageAndWrongKeyObjectsAreMisses) {
  const auto dir = test_dir("garbage");
  disk_store store(dir.string());
  const auto key = full_key("fft", fast_options());
  const auto obj = dir / "objects" / (hash_hex(key) + ".stx");

  {
    std::ofstream out(obj, std::ios::binary);
    out << "not an stxstore envelope at all\n\x01\x02\x03";
  }
  EXPECT_EQ(store.get(key), std::nullopt);
  EXPECT_EQ(store.stats().corrupt, 1);

  // A well-formed envelope for a DIFFERENT key at this path (a hash
  // collision in effigy) must not be served as this key's value.
  store.put(key, "right");
  auto envelope = [&] {
    std::ifstream in(obj, std::ios::binary);
    std::string s((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
    return s;
  }();
  const auto other_line = encode(full_key("other-app", fast_options()));
  const auto key_line = encode(key);
  envelope.replace(envelope.find(key_line), key_line.size(), other_line);
  {
    std::ofstream out(obj, std::ios::binary | std::ios::trunc);
    out << envelope;
  }
  EXPECT_EQ(store.get(key), std::nullopt);
  EXPECT_EQ(store.stats().corrupt, 2);
  fs::remove_all(dir);
}

TEST(DiskStore, OpenSweepsOrphanedStagingFiles) {
  const auto dir = test_dir("sweep");
  // Seed the store and plant tmp/ leftovers before reopening:
  //  * dead-writer: a staging file naming a pid that cannot exist,
  //  * ancient: a foreign-named file with an hour-old mtime,
  //  * live-writer: a fresh file naming THIS process (an in-flight put).
  const auto key = trace_key("mat2", fast_options());
  { disk_store store(dir.string()); store.put(key, "kept object"); }
  const auto tmp = dir / "tmp";
  const auto dead = tmp / "aaaa.999999999.0";  // > pid_max everywhere
  const auto ancient = tmp / "leftover-from-another-tool";
  const auto live =
      tmp / ("bbbb." + std::to_string(::getpid()) + ".7");
  for (const auto& p : {dead, ancient, live}) {
    std::ofstream(p, std::ios::binary) << "partial envelope";
  }
  fs::last_write_time(ancient,
                      fs::file_time_type::clock::now() - std::chrono::hours(2));

  disk_store reopened(dir.string());
  EXPECT_EQ(reopened.stats().tmp_swept, 2);
  EXPECT_FALSE(fs::exists(dead));     // writer pid provably dead
  EXPECT_FALSE(fs::exists(ancient));  // unparsable name, age-gated
  EXPECT_TRUE(fs::exists(live));      // never yank a live writer's file
  // The sweep touches only tmp/ — published objects are untouched.
  EXPECT_EQ(reopened.get(key).value(), "kept object");

  // A third open finds only the live-writer file, which stays again.
  disk_store again(dir.string());
  EXPECT_EQ(again.stats().tmp_swept, 0);
  EXPECT_TRUE(fs::exists(live));
  fs::remove_all(dir);
}

/// Sets a file's access time (and mtime) to `when` seconds before now —
/// the eviction clock under test.
void age_access_time(const fs::path& p, int hours_ago) {
  struct timespec times[2];
  const auto now = std::chrono::system_clock::now();
  const auto then = std::chrono::system_clock::to_time_t(
      now - std::chrono::hours(hours_ago));
  times[0].tv_sec = then;
  times[0].tv_nsec = 0;
  times[1] = times[0];
  ASSERT_EQ(::utimensat(AT_FDCWD, p.c_str(), times, 0), 0);
}

TEST(DiskStore, SizeCapEvictsOldestAccessedOnOpen) {
  const auto dir = test_dir("evict");
  const auto opts = fast_options();
  const cache_key keys[4] = {trace_key("app-a", opts), trace_key("app-b", opts),
                             trace_key("app-c", opts),
                             trace_key("app-d", opts)};
  {
    disk_store store(dir.string());
    for (const auto& k : keys) store.put(k, std::string(100, 'x'));
  }
  // Ages: app-a is the coldest entry, app-d the most recently read.
  std::uint64_t total = 0, oldest_two = 0;
  for (int i = 0; i < 4; ++i) {
    const auto obj = dir / "objects" / (hash_hex(keys[i]) + ".stx");
    ASSERT_TRUE(fs::exists(obj));
    age_access_time(obj, 8 - i);
    total += fs::file_size(obj);
    if (i < 2) oldest_two += fs::file_size(obj);
  }

  // A cap the two newest entries exactly fit: the open must drop the two
  // coldest and nothing else.
  disk_store capped(dir.string(), total - oldest_two);
  EXPECT_EQ(capped.stats().evicted, 2);
  EXPECT_FALSE(capped.contains(keys[0]));
  EXPECT_FALSE(capped.contains(keys[1]));
  EXPECT_EQ(capped.get(keys[2]).value(), std::string(100, 'x'));
  EXPECT_EQ(capped.get(keys[3]).value(), std::string(100, 'x'));

  // Zero cap = unlimited: reopening evicts nothing further.
  disk_store unlimited(dir.string());
  EXPECT_EQ(unlimited.stats().evicted, 0);
  EXPECT_TRUE(unlimited.contains(keys[2]));

  // A cap above the remaining total is a no-op too.
  disk_store roomy(dir.string(), total);
  EXPECT_EQ(roomy.stats().evicted, 0);
  fs::remove_all(dir);
}

TEST(DiskStore, EvictedEntriesAreRecomputableMisses) {
  // Eviction only ever drops cache entries: a consumer seeing the
  // evicted key misses, recomputes, and the store heals.
  const auto dir = test_dir("evict-heal");
  const auto key = trace_key("mat2", fast_options());
  {
    disk_store store(dir.string());
    store.put(key, "original");
  }
  age_access_time(dir / "objects" / (hash_hex(key) + ".stx"), 4);
  disk_store capped(dir.string(), /*max_bytes=*/1);
  EXPECT_EQ(capped.stats().evicted, 1);
  EXPECT_EQ(capped.get(key), std::nullopt);
  capped.put(key, "recomputed");
  EXPECT_EQ(capped.get(key).value(), "recomputed");
  fs::remove_all(dir);
}

TEST(PersistentCache, SecondCacheInstanceServesWithoutSimulating) {
  const auto dir = test_dir("reuse");
  const auto app = small_app();
  const auto opts = fast_options();
  {
    trace_cache cache(std::make_shared<disk_store>(dir.string()));
    (void)cache.traces(app, opts);
    (void)cache.full_metrics(app, opts);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.trace_misses, 1);
    EXPECT_EQ(stats.full_misses, 1);
    EXPECT_EQ(stats.trace_store_hits, 0);
  }
  // A fresh cache over a fresh store on the same directory: both stages
  // load from disk — `misses` (simulations actually run) stays 0.
  trace_cache cache(std::make_shared<disk_store>(dir.string()));
  const auto traces = cache.traces(app, opts);
  const auto metrics = cache.full_metrics(app, opts);
  ASSERT_NE(traces, nullptr);
  ASSERT_NE(metrics, nullptr);
  EXPECT_GT(metrics->avg_latency, 0.0);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.trace_misses, 0);
  EXPECT_EQ(stats.full_misses, 0);
  EXPECT_EQ(stats.trace_store_hits, 1);
  EXPECT_EQ(stats.full_store_hits, 1);
  fs::remove_all(dir);
}

TEST(PersistentCache, CorruptTraceObjectFallsBackToSimulation) {
  const auto dir = test_dir("heal");
  const auto app = small_app();
  const auto opts = fast_options();
  const auto key = trace_key(app.name, opts);
  {
    trace_cache cache(std::make_shared<disk_store>(dir.string()));
    (void)cache.traces(app, opts);
  }
  const auto obj = dir / "objects" / (hash_hex(key) + ".stx");
  ASSERT_TRUE(fs::exists(obj));
  fs::resize_file(obj, 5);

  // The corrupt entry reads as a miss: the cache re-simulates and the
  // write-through heals the object for the next consumer.
  auto store = std::make_shared<disk_store>(dir.string());
  {
    trace_cache cache(store);
    ASSERT_NE(cache.traces(app, opts), nullptr);
    EXPECT_EQ(cache.stats().trace_misses, 1);
    EXPECT_EQ(cache.stats().trace_store_hits, 0);
  }
  EXPECT_EQ(store->stats().corrupt, 1);
  trace_cache healed(std::make_shared<disk_store>(dir.string()));
  (void)healed.traces(app, opts);
  EXPECT_EQ(healed.stats().trace_store_hits, 1);
  fs::remove_all(dir);
}

// The acceptance criterion of the design service: a warm-cache request
// returns a bit-identical flow_report WITHOUT re-running simulation or
// the solver — asserted on the sim.* / milp.* obs counters staying flat
// across the hit.
TEST(PersistentCache, WarmReportIsBitIdenticalWithSimAndSolverCountersFlat) {
  const auto dir = test_dir("warm-report");
  const auto app = small_app();
  auto opts = fast_options();
  // The generic-MILP solver, so the solver cost shows up in milp.*
  // counters on the cold pass (the specialized solver would too, under
  // xbar.synth.*, but the MILP path covers both families).
  opts.synth.solver = xbar::solver_kind::generic_milp;

  obs::reset();
  obs::enable();
  xbar::flow_report cold;
  {
    auto store = std::make_shared<disk_store>(dir.string());
    trace_cache cache(store);
    auto result = serve::cached_design(app, app.name, opts,
                                       /*validate=*/true, cache, store.get());
    EXPECT_FALSE(result.from_store);
    cold = std::move(result.report);
  }
  const auto before = obs::snapshot();
  ASSERT_GT(before.counter("sim.runs"), 0);
  ASSERT_GT(before.counter("milp.solves"), 0);

  {
    auto store = std::make_shared<disk_store>(dir.string());
    trace_cache cache(store);
    auto result = serve::cached_design(app, app.name, opts,
                                       /*validate=*/true, cache, store.get());
    EXPECT_TRUE(result.from_store);
    EXPECT_EQ(result.report, cold);  // field-exact, doubles included
    // Bit-identical on the wire too: the stored document re-encodes to
    // the same bytes the cold report encodes to.
    EXPECT_EQ(encode_report(result.report), encode_report(cold));
  }
  const auto after = obs::snapshot();
  EXPECT_EQ(after.counter("sim.runs"), before.counter("sim.runs"));
  EXPECT_EQ(after.counter("sim.events_processed"),
            before.counter("sim.events_processed"));
  EXPECT_EQ(after.counter("milp.solves"), before.counter("milp.solves"));
  EXPECT_EQ(after.counter("milp.nodes"), before.counter("milp.nodes"));
  EXPECT_EQ(after.counter("xbar.synth.runs"),
            before.counter("xbar.synth.runs"));
  EXPECT_EQ(after.counter("serve.report.store_hits"),
            before.counter("serve.report.store_hits") + 1);
  obs::reset();
  fs::remove_all(dir);
}

// A re-run of a store-backed validating sweep must serve every phase-4
// designed-configuration result from the stage=metrics store entries —
// no batched re-simulation at all, pinned on the sim.* obs counters —
// and produce bit-identical results.
TEST(PersistentCache, SweepRerunServesDesignedMetricsFromStore) {
  const auto dir = test_dir("sweep-metrics");
  sweep_spec spec;
  spec.apps = {small_app()};
  spec.grid.window_sizes = {200, 400, 1000};
  spec.horizon = 8'000;
  spec.validate = true;
  spec.batch_size = 2;  // one full cohort + one straggler: both paths

  obs::reset();
  obs::enable();
  sweep_report cold;
  {
    trace_cache cache(std::make_shared<disk_store>(dir.string()));
    cold = run_sweep(spec, cache);
  }
  EXPECT_EQ(cold.designed_store_hits, 0);
  EXPECT_EQ(cold.phase1_simulations, 1);
  const auto before = obs::snapshot();
  ASSERT_GT(before.counter("sim.runs"), 0);

  sweep_report warm;
  {
    trace_cache cache(std::make_shared<disk_store>(dir.string()));
    warm = run_sweep(spec, cache);
  }
  // Every point's designed metrics came off disk; nothing simulated.
  EXPECT_EQ(warm.designed_store_hits, 3);
  EXPECT_EQ(warm.phase1_simulations, 0);
  EXPECT_EQ(warm.full_simulations, 0);
  const auto after = obs::snapshot();
  EXPECT_EQ(after.counter("sim.runs"), before.counter("sim.runs"));
  EXPECT_EQ(after.counter("sim.events_processed"),
            before.counter("sim.events_processed"));
  EXPECT_EQ(after.counter("explore.designed.store_hits"), 3);
  // Warm results (designed metrics included) are bit-identical to cold.
  EXPECT_EQ(warm.results, cold.results);
  EXPECT_EQ(warm.pareto, cold.pareto);
  obs::reset();
  fs::remove_all(dir);
}

// The metrics key carries every synthesis knob: a sweep at different
// knobs on the same store directory must never alias into warm hits.
TEST(PersistentCache, DesignedMetricsKeyedBySynthesisKnobs) {
  const auto dir = test_dir("sweep-metrics-keys");
  sweep_spec spec;
  spec.apps = {small_app()};
  spec.grid.window_sizes = {200, 400};
  spec.horizon = 8'000;
  spec.validate = true;
  spec.batch_size = 2;
  {
    trace_cache cache(std::make_shared<disk_store>(dir.string()));
    (void)run_sweep(spec, cache);
  }
  // Same app + simulator settings, different maxtb: different designs,
  // so phase 4 must re-run (store misses), while phase 1 still hits.
  spec.grid.max_targets_per_bus = {2};
  trace_cache cache(std::make_shared<disk_store>(dir.string()));
  const auto report = run_sweep(spec, cache);
  EXPECT_EQ(report.designed_store_hits, 0);
  EXPECT_EQ(report.phase1_simulations, 0);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace stx::explore
