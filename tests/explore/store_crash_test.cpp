// Crash-recovery matrix for the persistent store: a writer killed at
// every failpoint inside put() (torn staged bytes, crash before the
// rename, crash after the rename) must leave a directory that a fresh
// disk_store heals on reopen — torn staging files are swept, a torn or
// absent object is a plain miss, and a complete object is served byte
// for byte. The "crash" action is std::_Exit (no destructors, no stdio
// flush): the closest portable stand-in for kill -9 / power loss.
//
// The matrix forks one child per scenario: the child arms the failpoint
// programmatically and runs put(); the parent reaps it, asserts the
// injected exit code, then reopens the same directory and checks the
// recovery contract.
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "explore/disk_store.h"
#include "util/error.h"
#include "util/failpoint.h"

namespace stx::explore {
namespace {

namespace fs = std::filesystem;

cache_key key_for(const std::string& app) {
  return trace_key(app, xbar::flow_options{});
}

fs::path fresh_dir(const std::string& name) {
  const auto dir = fs::temp_directory_path() / ("stx-crash-" + name);
  fs::remove_all(dir);
  return dir;
}

std::size_t count_files(const fs::path& dir) {
  std::size_t n = 0;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    ++n;
  }
  return n;
}

/// Forks a child that arms `failpoints` (STX_FAILPOINTS grammar) and
/// put()s `value` under `key` in a store rooted at `dir`, expecting to
/// die at an armed crash site. Returns the child's exit status.
int crash_writer(const fs::path& dir, const std::string& failpoints,
                 const cache_key& key, const std::string& value) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Child. gtest machinery is off-limits from here: _Exit(0) on the
    // unexpected paths so a bug reads as a wrong exit status, not a
    // duplicated test-suite run.
    try {
      failpoint::arm_from_spec(failpoints);
      disk_store store(dir.string());
      store.put(key, value);
    } catch (...) {
      std::_Exit(43);  // put threw instead of crashing
    }
    std::_Exit(0);  // put survived a site that was meant to crash
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

TEST(StoreCrash, CrashBeforeRenameLeavesNoObjectAndSweepsTmp) {
  const auto dir = fresh_dir("before-rename");
  const auto key = key_for("mat2");
  const int status =
      crash_writer(dir, "store.put.before_rename=crash", key, "payload");
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), failpoint::crash_exit_code);
  // The staged file is orphaned (writer dead, rename never happened)…
  EXPECT_EQ(count_files(dir / "tmp"), 1u);
  EXPECT_EQ(count_files(dir / "objects"), 0u);
  // …and reopening the directory sweeps it and serves a clean miss.
  disk_store store(dir.string());
  EXPECT_EQ(store.stats().tmp_swept, 1);
  EXPECT_EQ(count_files(dir / "tmp"), 0u);
  EXPECT_EQ(store.get(key), std::nullopt);
  // The next put heals the entry completely.
  store.put(key, "payload");
  EXPECT_EQ(store.get(key).value(), "payload");
}

TEST(StoreCrash, TornWriteThenCrashNeverServesTornBlob) {
  const auto dir = fresh_dir("torn");
  const auto key = key_for("fft");
  const std::string value(4096, 'x');
  // Torn staged bytes AND the writer dies before the rename: recovery
  // must sweep the torn staging file, not publish it.
  const int status = crash_writer(
      dir,
      "store.put.after_tmp_write=torn-write;store.put.before_rename=crash",
      key, value);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), failpoint::crash_exit_code);
  disk_store store(dir.string());
  EXPECT_EQ(store.stats().tmp_swept, 1);
  EXPECT_EQ(store.get(key), std::nullopt);
  EXPECT_EQ(store.stats().corrupt, 0);  // nothing published, plain miss
}

TEST(StoreCrash, TornObjectPublishedByCrashIsCorruptAsMiss) {
  const auto dir = fresh_dir("torn-published");
  const auto key = key_for("qsort");
  const std::string value(4096, 'y');
  // Torn staged bytes but the put is allowed to rename and die after:
  // the torn object IS published, and get() must refuse to serve it.
  const int status = crash_writer(
      dir,
      "store.put.after_tmp_write=torn-write;store.put.after_rename=crash",
      key, value);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), failpoint::crash_exit_code);
  EXPECT_EQ(count_files(dir / "objects"), 1u);
  disk_store store(dir.string());
  EXPECT_EQ(store.get(key), std::nullopt);  // torn blob never served
  EXPECT_EQ(store.stats().corrupt, 1);
  // Overwriting heals: the complete object replaces the torn one.
  store.put(key, value);
  EXPECT_EQ(store.get(key).value(), value);
}

TEST(StoreCrash, CrashAfterRenameIsDurable) {
  const auto dir = fresh_dir("after-rename");
  const auto key = key_for("lu");
  const std::string value = "fully published payload";
  const int status =
      crash_writer(dir, "store.put.after_rename=crash", key, value);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), failpoint::crash_exit_code);
  // The object survived the crash whole; a fresh store serves it.
  disk_store store(dir.string());
  EXPECT_EQ(store.get(key).value(), value);
  EXPECT_EQ(store.stats().hits, 1);
  EXPECT_EQ(store.stats().corrupt, 0);
}

TEST(StoreCrash, FsyncFailureIsAPutFailureAndWithholdsTheEntry) {
  const auto dir = fresh_dir("fsync");
  const auto key = key_for("aes");
  disk_store store(dir.string());
  failpoint::arm("store.put.fsync", "error");
  EXPECT_THROW(store.put(key, "never published"), stx::error);
  failpoint::disarm_all();
  EXPECT_EQ(store.stats().put_failures, 1);
  EXPECT_EQ(count_files(dir / "tmp"), 0u);      // staged file cleaned up
  EXPECT_EQ(count_files(dir / "objects"), 0u);  // nothing published
  EXPECT_EQ(store.get(key), std::nullopt);
  // The store is not poisoned: the next put succeeds normally.
  store.put(key, "published");
  EXPECT_EQ(store.get(key).value(), "published");
  EXPECT_EQ(store.stats().puts, 1);
}

TEST(StoreCrash, InjectedReadErrorIsCorruptAsMiss) {
  const auto dir = fresh_dir("read-error");
  const auto key = key_for("sha");
  disk_store store(dir.string());
  store.put(key, "bytes");
  failpoint::arm("store.get.read", "error");
  EXPECT_EQ(store.get(key), std::nullopt);
  failpoint::disarm_all();
  EXPECT_EQ(store.stats().corrupt, 1);
  // The object itself is intact — only the read was injected.
  EXPECT_EQ(store.get(key).value(), "bytes");
}

}  // namespace
}  // namespace stx::explore
