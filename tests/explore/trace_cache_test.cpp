// Trace-cache hit behaviour: phase 1 simulates exactly once per
// (app, settings) key, under serial and concurrent access.
#include "explore/trace_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "workloads/synthetic.h"

namespace stx::explore {
namespace {

workloads::app_spec small_app() {
  workloads::synthetic_params params;
  params.num_cores = 8;
  return workloads::make_synthetic(params);
}

xbar::flow_options fast_options() {
  xbar::flow_options opts;
  opts.horizon = 8'000;
  return opts;
}

TEST(TraceCache, SecondRequestHitsAndSharesTheEntry) {
  trace_cache cache;
  const auto app = small_app();
  const auto opts = fast_options();
  const auto a = cache.traces(app, opts);
  const auto b = cache.traces(app, opts);
  EXPECT_EQ(a.get(), b.get());  // literally the same trace object
  const auto stats = cache.stats();
  EXPECT_EQ(stats.trace_misses, 1);
  EXPECT_EQ(stats.trace_hits, 1);
}

TEST(TraceCache, KeyCoversEverythingPhase1DependsOn) {
  trace_cache cache;
  const auto app = small_app();
  auto opts = fast_options();
  (void)cache.traces(app, opts);

  // Synthesis knobs do NOT key the cache: same trace serves every point.
  auto synth_only = opts;
  synth_only.synth.params.window_size = 999;
  synth_only.synth.params.overlap_threshold = 0.05;
  (void)cache.traces(app, synth_only);
  EXPECT_EQ(cache.stats().trace_misses, 1);

  // Simulator settings DO key it.
  auto other_seed = opts;
  other_seed.seed = 2;
  (void)cache.traces(app, other_seed);
  auto other_policy = opts;
  other_policy.policy = sim::arbitration::fixed_priority;
  (void)cache.traces(app, other_policy);
  auto other_horizon = opts;
  other_horizon.horizon = 4'000;
  (void)cache.traces(app, other_horizon);
  EXPECT_EQ(cache.stats().trace_misses, 4);
}

TEST(TraceCache, ConcurrentRequestersSimulateExactlyOnce) {
  trace_cache cache;
  const auto app = small_app();
  const auto opts = fast_options();
  std::vector<std::shared_ptr<const xbar::collected_traces>> got(8);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < got.size(); ++i) {
    threads.emplace_back(
        [&, i] { got[i] = cache.traces(app, opts); });
  }
  for (auto& t : threads) t.join();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.trace_misses, 1);
  EXPECT_EQ(stats.trace_hits, static_cast<std::int64_t>(got.size()) - 1);
  for (const auto& p : got) {
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p.get(), got[0].get());
  }
}

TEST(TraceCache, FullMetricsAreCachedIndependently) {
  trace_cache cache;
  const auto app = small_app();
  const auto opts = fast_options();
  const auto a = cache.full_metrics(app, opts);
  const auto b = cache.full_metrics(app, opts);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_GT(a->avg_latency, 0.0);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.full_misses, 1);
  EXPECT_EQ(stats.full_hits, 1);
  EXPECT_EQ(stats.trace_misses, 0);  // no trace was ever requested
}

}  // namespace
}  // namespace stx::explore
