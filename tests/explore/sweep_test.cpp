// The sweep engine: point evaluation equals the serial flow, phase 1 is
// shared, and reports are bit-identical across thread counts.
#include "explore/sweep.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "workloads/synthetic.h"
#include "xbar/flow.h"

namespace stx::explore {
namespace {

workloads::app_spec small_app(int cores = 8) {
  workloads::synthetic_params params;
  params.num_cores = cores;
  return workloads::make_synthetic(params);
}

sweep_spec small_spec() {
  sweep_spec spec;
  spec.apps = {small_app()};
  spec.horizon = 8'000;
  spec.grid.window_sizes = {200, 400, 1000, 2000};
  spec.grid.overlap_thresholds = {0.30};
  return spec;
}

TEST(Sweep, SharesOnePhase1SimulationAcrossAllPoints) {
  trace_cache cache;
  const auto report = run_sweep(small_spec(), cache);
  ASSERT_EQ(report.results.size(), 4u);
  EXPECT_EQ(report.phase1_simulations, 1);
  EXPECT_EQ(report.full_simulations, 1);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.trace_misses, 1);
  EXPECT_EQ(stats.trace_hits, 3);
}

TEST(Sweep, PointReportsEqualTheSerialDesignFlow) {
  const auto spec = small_spec();
  const auto report = run_sweep(spec);
  const auto points = sweep_points(spec);
  ASSERT_EQ(report.results.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto serial =
        xbar::run_design_flow(spec.apps[0], options_for(spec, points[i]));
    EXPECT_EQ(report.results[i].report, serial)
        << "point " << points[i].to_string();
  }
}

TEST(Sweep, ReportIsBitIdenticalAcrossThreadCounts) {
  auto spec = small_spec();
  spec.apps = {small_app(6), small_app(10)};
  spec.apps[0].name += "-6";
  spec.apps[1].name += "-10";
  spec.threads = 1;
  const auto serial = run_sweep(spec);
  spec.threads = 2;
  const auto parallel2 = run_sweep(spec);
  spec.threads = 8;
  const auto parallel8 = run_sweep(spec);
  EXPECT_EQ(serial, parallel2);
  EXPECT_EQ(serial, parallel8);
  EXPECT_EQ(render_json(serial), render_json(parallel2));
  EXPECT_EQ(render_json(serial), render_json(parallel8));
  EXPECT_EQ(render_csv(serial), render_csv(parallel8));
}

TEST(Sweep, ResultsAreAppMajorInGridOrder) {
  auto spec = small_spec();
  spec.apps = {small_app(6), small_app(10)};
  spec.apps[0].name = "app-a";
  spec.apps[1].name = "app-b";
  spec.threads = 4;
  const auto report = run_sweep(spec);
  const auto points = sweep_points(spec);
  ASSERT_EQ(report.results.size(), 2 * points.size());
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    EXPECT_EQ(report.results[i].app_name,
              i < points.size() ? "app-a" : "app-b");
    EXPECT_EQ(report.results[i].point, points[i % points.size()]);
  }
}

TEST(Sweep, ValidationOffSkipsPhase4ButKeepsDesigns) {
  auto spec = small_spec();
  spec.validate = false;
  const auto report = run_sweep(spec);
  EXPECT_EQ(report.full_simulations, 0);
  EXPECT_EQ(report.phase1_simulations, 1);
  EXPECT_TRUE(report.pareto.empty());
  for (const auto& r : report.results) {
    EXPECT_FALSE(r.validated);
    EXPECT_GT(r.total_buses(), 0);
    EXPECT_EQ(r.avg_latency(), 0.0);
    // Synthesis-only reports stay complete for the gen:: backends:
    // padded endpoint names and the phase-1 traffic matrices.
    EXPECT_EQ(r.report.target_names.size(),
              static_cast<std::size_t>(r.report.num_targets));
    EXPECT_FALSE(r.report.request_traffic.empty());
    EXPECT_FALSE(r.report.response_traffic.empty());
  }
  // The synthesised designs match the validated sweep's designs.
  auto validated = small_spec();
  const auto vreport = run_sweep(validated);
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    EXPECT_EQ(report.results[i].report.request_design,
              vreport.results[i].report.request_design);
  }
}

TEST(Sweep, ExtraPointsAppendAndDeduplicate) {
  auto spec = small_spec();
  sweep_point dup;  // equals the grid's win=400 point
  dup.window_size = 400;
  dup.overlap_threshold = 0.30;
  sweep_point fresh;
  fresh.window_size = 123;
  spec.extra_points = {dup, fresh, fresh};
  const auto points = sweep_points(spec);
  ASSERT_EQ(points.size(), 5u);  // 4 grid + 1 genuinely new
  EXPECT_EQ(points.back().window_size, 123);
}

TEST(Sweep, ParetoFrontMarksTheBusLatencyTradeoff) {
  const auto report = run_sweep(small_spec());
  ASSERT_FALSE(report.pareto.empty());
  // Every index valid; front members are mutually non-dominating.
  for (const auto i : report.pareto) {
    ASSERT_LT(i, report.results.size());
  }
  for (const auto i : report.pareto) {
    for (const auto j : report.pareto) {
      if (i == j) continue;
      const bool dominates =
          report.results[j].total_buses() <= report.results[i].total_buses() &&
          report.results[j].avg_latency() <= report.results[i].avg_latency() &&
          (report.results[j].total_buses() <
               report.results[i].total_buses() ||
           report.results[j].avg_latency() <
               report.results[i].avg_latency());
      EXPECT_FALSE(dominates);
    }
  }
}

TEST(Sweep, SynthBaseCarriesTheUnsweptKnobs) {
  // Disabling conflict pre-processing through the base must reach every
  // point (the overlap threshold then has nothing to forbid, so designs
  // can only shrink or stay).
  auto strict_spec = small_spec();
  auto loose_spec = small_spec();
  loose_spec.synth_base.params.use_overlap_conflicts = false;
  loose_spec.validate = false;
  strict_spec.validate = false;
  const auto strict_report = run_sweep(strict_spec);
  const auto loose_report = run_sweep(loose_spec);
  for (std::size_t i = 0; i < strict_report.results.size(); ++i) {
    EXPECT_LE(loose_report.results[i].total_buses(),
              strict_report.results[i].total_buses());
    EXPECT_EQ(
        loose_report.results[i].report.request_design.params
            .use_overlap_conflicts,
        false);
  }
}

TEST(Sweep, RejectsDegenerateSpecs) {
  sweep_spec empty_apps = small_spec();
  empty_apps.apps.clear();
  EXPECT_THROW(run_sweep(empty_apps), invalid_argument_error);

  sweep_spec dup_names = small_spec();
  dup_names.apps = {small_app(6), small_app(8)};  // same name "synthetic…"
  dup_names.apps[1].name = dup_names.apps[0].name;
  EXPECT_THROW(run_sweep(dup_names), invalid_argument_error);
}

}  // namespace
}  // namespace stx::explore
