// The canonical stxkey/v1 encoder: round-trip exactness, the
// stage-dependent field-selection rules, escaping of arbitrary app
// identities, strict decoding, and hash stability.
#include "explore/cache_key.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace stx::explore {
namespace {

xbar::flow_options rich_options() {
  xbar::flow_options opts;
  opts.horizon = 54'321;
  opts.seed = 7;
  opts.policy = sim::arbitration::fixed_priority;
  opts.transfer_overhead = 3;
  opts.synth.params.window_size = 640;
  opts.synth.params.overlap_threshold = 0.275;
  opts.synth.params.max_targets_per_bus = 5;
  opts.synth.params.burst_window = 128;
  opts.synth.params.use_overlap_conflicts = false;
  opts.synth.params.separate_critical = false;
  opts.request_window_override = 200;
  opts.response_window_override = 300;
  opts.synth.solver = xbar::solver_kind::generic_milp;
  opts.synth.optimize_binding = false;
  opts.synth.limits.max_nodes = 123'456;
  opts.synth.limits.time_limit_sec = 1.5;
  opts.synth.limits.cuts = false;     // non-default: must round-trip
  opts.synth.limits.portfolio = true;  // non-default: must round-trip
  return opts;
}

TEST(CacheKey, EncodeDecodeRoundTripsEveryStage) {
  const auto opts = rich_options();
  for (const auto& key :
       {trace_key("mat2", opts), full_key("mat2", opts),
        report_key("mat2", opts, true), report_key("mat2", opts, false)}) {
    EXPECT_EQ(decode(encode(key)), key) << encode(key);
  }
}

TEST(CacheKey, WireFormIsTheDocumentedLine) {
  const auto key = trace_key("mat2", xbar::flow_options{});
  const auto line = encode(key);
  EXPECT_EQ(line.rfind("stxkey/v1 v=1 stage=trace app=mat2 ", 0), 0) << line;
  // Phase-1 stages omit the synthesis fields entirely.
  EXPECT_EQ(line.find("win="), std::string::npos);
  EXPECT_NE(encode(report_key("mat2", xbar::flow_options{})).find("win="),
            std::string::npos);
}

TEST(CacheKey, AppIdentityMayBeAnArbitraryString) {
  // The serve path uses whole stxfuzz/v1 tokens (spaces, '=') as the
  // identity of generated applications.
  const std::string app_id =
      "stxfuzz/v1 seed=42 ini=4 tgt=6 thr=0.25 note=100%\tdone";
  const auto key = report_key(app_id, rich_options());
  EXPECT_EQ(decode(encode(key)).app, app_id);
}

TEST(CacheKey, TraceKeyIgnoresSynthesisKnobsReportKeyDoesNot) {
  auto opts = rich_options();
  const auto t0 = trace_key("a", opts);
  const auto r0 = report_key("a", opts);
  opts.synth.params.window_size = 9'999;
  EXPECT_EQ(trace_key("a", opts), t0);
  EXPECT_NE(report_key("a", opts), r0);

  // And every stage keys on the simulator settings.
  auto sim_changed = rich_options();
  sim_changed.seed = 99;
  EXPECT_NE(trace_key("a", sim_changed), t0);
  EXPECT_NE(report_key("a", sim_changed), r0);
}

TEST(CacheKey, DistinctStagesOfOneConfigurationNeverCollide) {
  const auto opts = rich_options();
  EXPECT_NE(encode(trace_key("a", opts)), encode(full_key("a", opts)));
  EXPECT_NE(hash64(trace_key("a", opts)), hash64(full_key("a", opts)));
  EXPECT_NE(encode(report_key("a", opts, true)),
            encode(report_key("a", opts, false)));
}

TEST(CacheKey, DecodeRejectsMalformedLines) {
  const auto good = encode(report_key("mat2", rich_options()));
  EXPECT_THROW(decode("stxkey/v2 v=1 stage=trace app=x"),
               invalid_argument_error);
  EXPECT_THROW(decode("not a key at all"), invalid_argument_error);
  EXPECT_THROW(decode(good + " bogus=1"), invalid_argument_error);
  EXPECT_THROW(decode(good + " app=twice"), invalid_argument_error);
  EXPECT_THROW(decode("stxkey/v1 v=1 stage=trace"),  // missing app
               invalid_argument_error);
}

TEST(CacheKey, HashIsStableAcrossProcessesByConstruction) {
  // FNV-1a over the canonical line: pin one value so an accidental
  // change to the encoding or the hash shows up as a test failure, not
  // as a silently cold cache after an upgrade.
  cache_key key;
  key.stage = cache_stage::trace;
  key.app = "pin";
  key.horizon = 1000;
  key.seed = 1;
  key.policy = 1;
  key.transfer_overhead = 2;
  EXPECT_EQ(encode(key), "stxkey/v1 v=1 stage=trace app=pin horizon=1000 "
                         "seed=1 policy=1 overhead=2");
  EXPECT_EQ(hash_hex(key), [] {
    // Independently computed FNV-1a of the line above.
    std::uint64_t h = 14695981039346656037ull;
    for (const char c : std::string(
             "stxkey/v1 v=1 stage=trace app=pin horizon=1000 "
             "seed=1 policy=1 overhead=2")) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return std::string(buf);
  }());
}

}  // namespace
}  // namespace stx::explore
