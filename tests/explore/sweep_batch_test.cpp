// Batched phase-4 validation in run_sweep: reports are bit-identical
// across thread counts AND batch sizes, cohorts fall back to sessions
// for stragglers, and batching changes no cache accounting.
#include <gtest/gtest.h>

#include "explore/report.h"
#include "explore/sweep.h"
#include "workloads/mpsoc_apps.h"
#include "workloads/synthetic.h"

namespace stx::explore {
namespace {

sweep_spec two_app_spec() {
  workloads::synthetic_params params;
  params.num_cores = 8;
  sweep_spec spec;
  spec.apps = {workloads::make_synthetic(params),
               *workloads::make_app_by_name("qsort")};
  spec.horizon = 8'000;
  spec.grid.window_sizes = {200, 400, 1000};
  spec.grid.policies = {sim::arbitration::round_robin,
                        sim::arbitration::fixed_priority};
  return spec;
}

TEST(SweepBatch, ReportsBitIdenticalAcrossThreadsAndBatchSizes) {
  auto spec = two_app_spec();
  spec.threads = 1;
  spec.batch_size = 1;  // the legacy per-session path is the reference
  const auto reference = render_json(run_sweep(spec));
  for (const int threads : {1, 8}) {
    for (const int batch_size : {1, 4, 32}) {
      if (threads == 1 && batch_size == 1) continue;
      spec.threads = threads;
      spec.batch_size = batch_size;
      EXPECT_EQ(render_json(run_sweep(spec)), reference)
          << "threads=" << threads << " batch=" << batch_size;
    }
  }
}

TEST(SweepBatch, StragglerCohortsStillValidate) {
  // 6 points per app at batch_size 4 -> one full cohort plus a 2-wide
  // straggler; batch_size 5 -> a single-job straggler (session fallback).
  auto spec = two_app_spec();
  spec.batch_size = 5;
  const auto report = run_sweep(spec);
  ASSERT_EQ(report.results.size(), 12u);
  for (const auto& r : report.results) {
    EXPECT_TRUE(r.validated);
    EXPECT_GT(r.report.designed.packets, 0) << r.point.to_string();
    EXPECT_GT(r.report.full.packets, 0) << r.point.to_string();
  }
}

TEST(SweepBatch, BatchingKeepsCacheAccountingIdentical) {
  auto spec = two_app_spec();
  trace_cache serial_cache;
  spec.batch_size = 1;
  const auto serial = run_sweep(spec, serial_cache);
  trace_cache batched_cache;
  spec.batch_size = 32;
  const auto batched = run_sweep(spec, batched_cache);
  EXPECT_EQ(serial.phase1_simulations, batched.phase1_simulations);
  EXPECT_EQ(serial.full_simulations, batched.full_simulations);
  ASSERT_EQ(serial.cache.size(), batched.cache.size());
  for (std::size_t i = 0; i < serial.cache.size(); ++i) {
    EXPECT_EQ(serial.cache[i].trace_hits, batched.cache[i].trace_hits);
    EXPECT_EQ(serial.cache[i].full_misses, batched.cache[i].full_misses);
  }
}

TEST(SweepBatch, SynthesisOnlySweepsSkipValidationEitherWay) {
  auto spec = two_app_spec();
  spec.validate = false;
  spec.batch_size = 32;
  const auto report = run_sweep(spec);
  for (const auto& r : report.results) {
    EXPECT_FALSE(r.validated);
    EXPECT_EQ(r.report.designed.packets, 0);
  }
  EXPECT_TRUE(report.pareto.empty());
}

}  // namespace
}  // namespace stx::explore
