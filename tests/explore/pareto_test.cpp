// Pareto-front correctness on hand-built reports.
#include <gtest/gtest.h>

#include "explore/report.h"

namespace stx::explore {
namespace {

sweep_result make_result(const std::string& app, int buses, double latency,
                         cycle_t window = 400) {
  sweep_result r;
  r.app_name = app;
  r.point.window_size = window;
  r.report.app_name = app;
  r.report.designed_buses = buses;
  r.report.full_buses = buses * 2;
  r.report.designed.avg_latency = latency;
  r.report.full.avg_latency = latency / 2.0;
  return r;
}

TEST(Pareto, PairsFrontKeepsOnlyNonDominated) {
  // (4, 90) and (8, 40) trade off; (8, 60) and (10, 95) are dominated.
  const std::vector<std::pair<int, double>> pts = {
      {8, 60.0}, {4, 90.0}, {8, 40.0}, {10, 95.0}, {6, 70.0}};
  EXPECT_EQ(pareto_front(pts), (std::vector<std::size_t>{1, 2, 4}));
}

TEST(Pareto, EqualPointsDoNotDominateEachOther) {
  const std::vector<std::pair<int, double>> pts = {
      {4, 50.0}, {4, 50.0}, {5, 60.0}};
  EXPECT_EQ(pareto_front(pts), (std::vector<std::size_t>{0, 1}));
}

TEST(Pareto, SinglePointIsItsOwnFront) {
  EXPECT_EQ(pareto_front(std::vector<std::pair<int, double>>{{7, 1.0}}),
            (std::vector<std::size_t>{0}));
  EXPECT_TRUE(pareto_front(std::vector<std::pair<int, double>>{}).empty());
}

TEST(Pareto, DominationNeedsOneStrictImprovement) {
  // Same bus count, better latency dominates; same both ways does not.
  const std::vector<std::pair<int, double>> pts = {{4, 50.0}, {4, 40.0}};
  EXPECT_EQ(pareto_front(pts), (std::vector<std::size_t>{1}));
}

TEST(Pareto, FrontIsComputedPerApplication) {
  // mat2's 6-bus point would dominate fft's 10-bus points if the front
  // were global; per-app it must not.
  const std::vector<sweep_result> results = {
      make_result("fft", 12, 80.0, 200),   // dominated by #1
      make_result("fft", 10, 70.0, 400),
      make_result("mat2", 6, 30.0, 400),
      make_result("mat2", 8, 50.0, 800),   // dominated by #2
  };
  EXPECT_EQ(pareto_front(results), (std::vector<std::size_t>{1, 2}));
}

TEST(Pareto, RendersMembershipConsistently) {
  sweep_report report;
  report.results = {
      make_result("mat2", 6, 30.0, 200),
      make_result("mat2", 4, 90.0, 400),
      make_result("mat2", 8, 60.0, 800),  // dominated by the first
  };
  report.pareto = pareto_front(report.results);
  EXPECT_EQ(report.pareto, (std::vector<std::size_t>{0, 1}));

  const auto csv = render_csv(report);
  // Exactly two pareto "yes" rows in the CSV.
  std::size_t yes = 0, pos = 0;
  while ((pos = csv.find(",yes", pos)) != std::string::npos) {
    ++yes;
    pos += 4;
  }
  EXPECT_EQ(yes, 2u);

  const auto md = render_markdown(report);
  EXPECT_NE(md.find("Pareto front"), std::string::npos);
  EXPECT_NE(md.find("win=200"), std::string::npos);
}

}  // namespace
}  // namespace stx::explore
