// Unit tests for the obs subsystem: counter determinism across thread
// counts, span nesting, trace/metrics JSON rendering, and the
// end-to-end flow instrumentation smoke test.
#include "obs/obs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "gen/json.h"
#include "milp/branch_bound.h"
#include "milp/model.h"
#include "obs/export.h"
#include "workloads/mpsoc_apps.h"
#include "xbar/flow.h"

namespace stx {
namespace {

/// Every test starts from a clean, disabled registry and leaves it that
/// way: obs state is process-global, so leakage between tests (or into
/// other suites linked against the same library) must be impossible.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::disable();
    obs::reset();
  }
  void TearDown() override {
    obs::disable();
    obs::reset();
  }
};

TEST_F(ObsTest, DisabledEntryPointsAreNoOps) {
  ASSERT_FALSE(obs::enabled());
  obs::add_counter("noop.counter", 5);
  obs::gauge_max("noop.gauge", 7);
  obs::record_wall("noop.wall", 0.25);
  {
    obs::span sp("noop.span", {{"k", 1}});
    sp.set_attr({"late", "value"});
  }
  const auto snap = obs::snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.wall.empty());
  EXPECT_TRUE(obs::trace_events().empty());
}

/// The deterministic workload the thread-identity test distributes:
/// item i contributes i to one counter, 1 to another, and raises a
/// high-water gauge — all order-independent updates.
void run_items_over_threads(int num_threads, int num_items) {
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    pool.emplace_back([=] {
      for (int i = t; i < num_items; i += num_threads) {
        obs::span sp("items.work", {{"item", i}});
        obs::add_counter("items.sum", i);
        obs::add_counter("items.count", 1);
        obs::gauge_max("items.max", i);
      }
    });
  }
  for (auto& th : pool) th.join();
}

TEST_F(ObsTest, CountersBitIdenticalAcrossThreadCounts) {
  obs::enable();
  run_items_over_threads(1, 500);
  const auto serial = obs::snapshot();

  obs::reset();
  run_items_over_threads(8, 500);
  const auto parallel = obs::snapshot();

  // The deterministic sections must match exactly — same names, same
  // values, same order — regardless of how the work was scheduled.
  EXPECT_EQ(serial.counters, parallel.counters);
  EXPECT_EQ(serial.gauges, parallel.gauges);
  EXPECT_EQ(serial.counter("items.count"), 500);
  EXPECT_EQ(serial.counter("items.sum"), 500 * 499 / 2);
  ASSERT_EQ(serial.gauges.size(), 1u);
  EXPECT_EQ(serial.gauges[0].name, "items.max");
  EXPECT_EQ(serial.gauges[0].value, 499);
  // The wall section saw the same number of samples even though the
  // durations themselves are timing (non-deterministic).
  const auto* wall = parallel.find_wall("items.work");
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(wall->count, 500);
}

TEST_F(ObsTest, SpansRecordNestingDepthAndAttributes) {
  obs::enable();
  {
    obs::span outer("outer", {{"app", "mat1"}});
    {
      obs::span inner("inner");
    }
    outer.set_attr({"buses", 7});
  }
  const auto events = obs::trace_events();
  ASSERT_EQ(events.size(), 2u);
  // Events land in completion order: inner closes first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_EQ(events[0].tid, events[1].tid);
  // Containment on the shared thread track: that is what Perfetto uses
  // to reconstruct the hierarchy.
  EXPECT_GE(events[0].start_ns, events[1].start_ns);
  EXPECT_LE(events[0].start_ns + events[0].dur_ns,
            events[1].start_ns + events[1].dur_ns);
  ASSERT_EQ(events[1].attrs.size(), 2u);
  EXPECT_EQ(events[1].attrs[0], (obs::attr{"app", "mat1"}));
  EXPECT_EQ(events[1].attrs[1], (obs::attr{"buses", 7}));
  // Ending a span also feeds the registry's wall section.
  const auto snap = obs::snapshot();
  ASSERT_NE(snap.find_wall("outer"), nullptr);
  EXPECT_EQ(snap.find_wall("outer")->count, 1);
}

TEST_F(ObsTest, TraceJsonIsValidChromeTraceFormat) {
  obs::enable();
  {
    obs::span sp("traced.op", {{"kind", "unit"}, {"n", 3}});
  }
  const auto doc = gen::json::parse(obs::render_trace_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 1u);
  const auto& ev = events[0];
  EXPECT_EQ(ev.at("name").as_string(), "traced.op");
  EXPECT_EQ(ev.at("cat").as_string(), "stx");
  EXPECT_EQ(ev.at("ph").as_string(), "X");
  EXPECT_EQ(ev.at("pid").as_int(), 1);
  EXPECT_TRUE(ev.at("tid").is_int());
  EXPECT_TRUE(ev.at("ts").is_number());
  EXPECT_TRUE(ev.at("dur").is_number());
  EXPECT_GE(ev.at("dur").as_double(), 0.0);
  const auto& args = ev.at("args");
  EXPECT_EQ(args.at("kind").as_string(), "unit");
  EXPECT_EQ(args.at("n").as_int(), 3);
}

TEST_F(ObsTest, MetricsSnapshotIsNameSortedAndRendersSchema) {
  obs::enable();
  // Registered out of order on purpose: snapshots must sort by name.
  obs::add_counter("zeta", 2);
  obs::add_counter("alpha", 1);
  obs::add_counter("mid", 4);
  obs::gauge_max("depth", 3);
  obs::record_wall("walltime", 0.5);
  const auto snap = obs::snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      snap.counters.begin(), snap.counters.end(),
      [](const auto& a, const auto& b) { return a.name < b.name; }));
  EXPECT_EQ(snap.counter("alpha"), 1);
  EXPECT_EQ(snap.counter("absent"), 0);

  const auto doc = gen::json::parse(obs::render_metrics_json(snap));
  EXPECT_EQ(doc.at("schema").as_string(), "stx-metrics/v1");
  EXPECT_EQ(doc.at("counters").at("zeta").as_int(), 2);
  EXPECT_EQ(doc.at("gauges").at("depth").as_int(), 3);
  const auto& wall = doc.at("wall_nondeterministic").at("walltime");
  EXPECT_EQ(wall.at("count").as_int(), 1);
  EXPECT_NEAR(wall.at("total_ms").as_double(), 500.0, 1e-6);

  // Two snapshots of the same registry render byte-identically.
  EXPECT_EQ(obs::render_metrics_json(snap),
            obs::render_metrics_json(obs::snapshot()));
}

/// End-to-end smoke test of the acceptance criterion: one flow run emits
/// the five stage spans exactly once each, with solver/simulator child
/// spans strictly below them.
TEST_F(ObsTest, DesignFlowEmitsFiveStageSpansExactlyOnce) {
  obs::enable();
  const auto app = workloads::make_app_by_name("mat1");
  ASSERT_TRUE(app.has_value());
  xbar::flow_options opts;
  opts.horizon = 4'000;  // smoke horizon: structure, not fidelity
  const auto report = xbar::run_design_flow(*app, opts);
  gen::generate_options gopts;
  gopts.backends = {"json"};
  const auto artifacts = xbar::generate_artifacts(report, gopts);
  ASSERT_FALSE(artifacts.empty());

  const auto events = obs::trace_events();
  const auto count_of = [&](std::string_view name) {
    return std::count_if(events.begin(), events.end(),
                         [&](const auto& e) { return e.name == name; });
  };
  const auto depth_of = [&](std::string_view name) {
    for (const auto& e : events) {
      if (e.name == name) return e.depth;
    }
    return -1;
  };
  for (const char* stage : {"flow.collect", "flow.analyze",
                            "flow.synthesize", "flow.validate",
                            "flow.generate"}) {
    EXPECT_EQ(count_of(stage), 1) << stage;
  }
  // Child spans nest strictly below their stage.
  EXPECT_GE(count_of("sim.run"), 1);
  EXPECT_GT(depth_of("sim.run"), depth_of("flow.collect"));
  EXPECT_EQ(count_of("xbar.synthesize"), 2);  // request + response
  EXPECT_GT(depth_of("xbar.synthesize"), depth_of("flow.synthesize"));
  EXPECT_EQ(count_of("xbar.size_search"), 2);
  EXPECT_GT(depth_of("xbar.size_search"), depth_of("xbar.synthesize"));

  // The registry carries the flow's deterministic counters.
  const auto snap = obs::snapshot();
  EXPECT_GE(snap.counter("sim.runs"), 2);  // phase 1 + validation
  EXPECT_GT(snap.counter("sim.events_processed"), 0);
  EXPECT_EQ(snap.counter("xbar.synth.runs"), 2);
  EXPECT_GT(snap.counter("xbar.synth.feasibility_nodes"), 0);
  EXPECT_EQ(snap.counter("gen.artifacts"),
            static_cast<std::int64_t>(artifacts.size()));
}

/// The generic solver's span + counter flush, on a model small enough
/// that the MILP engine answers instantly.
TEST_F(ObsTest, MilpSolveFlushesSpanAndCounters) {
  obs::enable();
  // maximise x0 + x1 s.t. x0 + x1 <= 1, binaries: optimum 1.
  milp::model m;
  m.add_binary(-1.0);
  m.add_binary(-1.0);
  m.add_row({{0, 1.0}, {1, 1.0}}, lp::relation::less_equal, 1.0);
  const auto res = milp::solve_branch_bound(m, milp::bb_options{});
  ASSERT_EQ(res.status, milp::milp_status::optimal);

  const auto events = obs::trace_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "milp.solve");
  const auto snap = obs::snapshot();
  EXPECT_EQ(snap.counter("milp.solves"), 1);
  EXPECT_EQ(snap.counter("milp.nodes"), res.nodes);
  EXPECT_EQ(snap.counter("milp.lp_iterations"), res.lp_iterations);
  EXPECT_EQ(snap.counter("lp.dual_pivots"), res.dual_pivots);
}

}  // namespace
}  // namespace stx
