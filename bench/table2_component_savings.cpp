// Reproduces Table 2: "component savings".
//
// For each of the five MPSoC applications, the bus count of the full
// crossbar (one bus per core across both directions) is compared with the
// crossbar designed by the window-based methodology.
//
// Paper reference: Mat1 25->8 (3.13x), Mat2 21->6 (3.5x),
//                  FFT 29->15 (1.93x), QSort 15->6 (2.5x),
//                  DES 19->6 (3.12x).
#include <cstdio>
#include <map>
#include <string>

#include "bench_common.h"
#include "util/table.h"
#include "workloads/mpsoc_apps.h"
#include "xbar/flow.h"

int main() {
  using namespace stx;
  bench::print_header("Table 2 — component savings (buses, both crossbars)",
                      "window=400cy, threshold=30%, maxtb=4");

  const std::map<std::string, std::pair<int, double>> paper = {
      {"Mat1", {8, 3.13}}, {"Mat2", {6, 3.5}},  {"FFT", {15, 1.93}},
      {"QSort", {6, 2.5}}, {"DES", {6, 3.12}},
  };

  table t({"Application", "Full crossbar", "Designed crossbar", "Ratio",
           "Paper designed", "Paper ratio"});
  const auto opts = bench::default_flow();
  for (const auto& app : workloads::all_mpsoc_apps()) {
    const auto report = xbar::run_design_flow(app, opts);
    const auto& ref = paper.at(app.name);
    t.cell(app.name)
        .cell(report.full_buses)
        .cell(report.designed_buses)
        .cell(report.savings(), 2)
        .cell(ref.first)
        .cell(ref.second, 2)
        .end_row();
  }
  std::printf("%s", t.render().c_str());
  return 0;
}
