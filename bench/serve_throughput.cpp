// Design-service throughput: designs/second through a live xbar-serve
// worker pool at client concurrency 1 / 4 / 16, cold cache vs warm
// cache (BENCH_serve.json, schema stx-bench-serve/v1).
//
//   $ ./serve_throughput [--horizon=20000] [--requests=48]
//                        [--workers=4] [--json=BENCH_serve.json]
//
// Each round submits `requests` distinct design requests (the five paper
// apps x a small horizon ladder, so no two requests dedup onto each
// other) from N concurrent client threads over the socket transport:
//   cold — fresh cache directory; every request runs the full staged
//          flow (phase-1 collection, synthesis, validation).
//   warm — same requests against the same directory; every report is
//          served from the content-addressed store without touching the
//          simulator or the solver.
// The cold/warm designs/sec ratio is the headline number: what the
// persistent store buys a design-service deployment.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "gen/json.h"
#include "serve/server.h"
#include "serve/service.h"
#include "util/error.h"

namespace {

using namespace stx;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The request mix: every paper app across a horizon ladder, encoded as
/// protocol lines. Distinct (app, horizon) pairs → distinct cache keys.
std::vector<std::string> request_mix(int requests, std::int64_t horizon) {
  static const std::vector<std::string> apps = {"mat1", "mat2", "fft",
                                                "qsort", "des"};
  std::vector<std::string> lines;
  lines.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    const auto& app = apps[static_cast<std::size_t>(i) % apps.size()];
    // Each wrap of the app list shifts the horizon so requests stay
    // unique (no in-flight dedup within a round).
    const auto h = horizon + 1000 * (i / static_cast<int>(apps.size()));
    lines.push_back("{\"op\":\"design\",\"id\":\"q" + std::to_string(i) +
                    "\",\"app\":\"" + app +
                    "\",\"horizon\":" + std::to_string(h) + "}");
  }
  return lines;
}

struct round_result {
  double seconds = 0.0;
  int completed = 0;
  int store_hits = 0;  ///< responses with source == "store"
};

/// Plays `lines` against the server from `concurrency` client
/// connections (each thread its own socket, requests round-robined) and
/// checks every response.
round_result run_round(const std::string& socket_path,
                       const std::vector<std::string>& lines,
                       int concurrency) {
  std::atomic<int> completed{0}, store_hits{0}, failures{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < concurrency; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::string> mine;
      for (std::size_t i = static_cast<std::size_t>(c); i < lines.size();
           i += static_cast<std::size_t>(concurrency)) {
        mine.push_back(lines[i]);
      }
      if (mine.empty()) return;
      try {
        for (const auto& resp_line : serve::request_lines(socket_path, mine)) {
          const auto resp = serve::parse_response(resp_line);
          if (!resp.ok || !resp.report.has_value()) {
            ++failures;
            continue;
          }
          ++completed;
          if (resp.source == "store") ++store_hits;
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  round_result r;
  r.seconds = bench::finite_seconds(seconds_since(t0));
  r.completed = completed.load();
  r.store_hits = store_hits.load();
  if (failures.load() > 0) {
    std::fprintf(stderr, "serve_throughput: %d request(s) failed\n",
                 failures.load());
    std::exit(1);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const flag_set flags(argc, argv);
  bench::require_known_flags(
      flags, {"horizon", "requests", "workers", "json", "help"});
  const auto horizon = flags.get_int("horizon", 20'000);
  const int requests = static_cast<int>(flags.get_int("requests", 48));
  const int workers = static_cast<int>(flags.get_int("workers", 4));
  const std::vector<int> concurrencies = {1, 4, 16};

  bench::print_header(
      "Design-service throughput (xbar-serve)",
      "designs/sec at client concurrency 1/4/16, cold vs warm cache; " +
          std::to_string(requests) + " requests, horizon " +
          std::to_string(horizon) + ", " + std::to_string(workers) +
          " workers");

  const auto lines = request_mix(requests, horizon);
  namespace fs = std::filesystem;
  const auto root = fs::temp_directory_path() / "stx-serve-bench";
  fs::remove_all(root);
  fs::create_directories(root);

  gen::json::array results;
  std::printf("%-12s %-6s %12s %12s %10s\n", "phase", "conc", "designs/s",
              "wall_s", "store_hits");
  for (const int conc : concurrencies) {
    // A fresh cache directory per concurrency level: the cold round
    // really is cold, and its warm twin covers exactly its keys.
    const auto cache_dir = root / ("c" + std::to_string(conc));
    const auto socket_path =
        (root / ("s" + std::to_string(conc) + ".sock")).string();
    serve::service::options sopts;
    sopts.workers = workers;
    sopts.queue_depth = requests + 16;
    sopts.cache_dir = cache_dir.string();
    serve::service svc(sopts);
    serve::server srv(svc, socket_path);
    srv.start();

    for (const bool warm : {false, true}) {
      const auto r = run_round(socket_path, lines, conc);
      const double rate = static_cast<double>(r.completed) / r.seconds;
      const double hit_ratio =
          static_cast<double>(r.store_hits) /
          static_cast<double>(std::max(r.completed, 1));
      std::printf("%-12s %-6d %12.1f %12.3f %10d\n",
                  warm ? "warm" : "cold", conc, rate, r.seconds,
                  r.store_hits);
      results.push_back(gen::json::object{
          {"phase", warm ? "warm" : "cold"},
          {"concurrency", conc},
          {"requests", r.completed},
          {"designs_per_sec_nondeterministic", rate},
          {"wall_seconds_nondeterministic", r.seconds},
          {"store_hits", r.store_hits},
          {"store_hit_ratio", hit_ratio},
      });
      if (warm && r.store_hits != r.completed) {
        std::fprintf(stderr,
                     "serve_throughput: warm round expected %d store "
                     "hits, saw %d\n",
                     r.completed, r.store_hits);
        return 1;
      }
    }
    srv.stop();
  }

  const auto json_path = flags.get_string("json", "");
  if (!json_path.empty()) {
    const gen::json::value doc = gen::json::object{
        {"schema", "stx-bench-serve/v1"},
        {"horizon", horizon},
        {"requests", requests},
        {"workers", workers},
        {"results", std::move(results)},
    };
    std::ofstream out(json_path);
    STX_REQUIRE(out.good(), "cannot write " + json_path);
    out << gen::json::dump(doc);
    std::printf("wrote %s\n", json_path.c_str());
  }
  fs::remove_all(root);
  return 0;
}
