// Batched lockstep driver vs per-session validation: designs/second
// over a synthetic (design-point, seed) grid — the workload shape
// explore::run_sweep's phase-4 cohorts run. Every instance is checked
// bit-identical between the two paths (run_metrics operator==, doubles
// included) before any rate is reported: a speedup from a diverging
// simulator would be worthless.
//
// The batched driver is thread-batched, exactly like the sweep's
// validation cohorts: instances are mutually independent, so cohorts
// fan out across worker threads without changing any per-instance
// event order (the bit-identity check covers the threaded rows too).
// Single-thread rows isolate the SoA calendar kernel itself; the
// headline "batched" figure is the driver as deployed — cohorts of
// --batch across --threads workers — against the serial per-session
// baseline.
//
//   $ ./sweep_batch_throughput [--points=10000] [--horizon=2000]
//                              [--batch=32] [--threads=N] [--repeats=3]
//                              [--json=BENCH_sweep.json]
//
// JSON schema `stx-bench-sweep-batch/v1`:
//   {points, horizon, batch_size, threads, bit_identical,
//    session: {wall_seconds, designs_per_second},
//    batched: {threads, wall_seconds, designs_per_second,
//              speedup_vs_session},
//    batch_sizes: [{batch_size, threads, wall_seconds,
//                   designs_per_second, speedup_vs_session}]}
#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "gen/json.h"
#include "sim/batch.h"
#include "sim/session.h"
#include "util/table.h"
#include "workloads/app.h"
#include "workloads/synthetic.h"

namespace {

using namespace stx;

/// The (design-point, seed) grid: three crossbar shapes x three
/// arbitration policies, seeds rolling so no two instances share an RNG
/// stream — the mix a sweep's validation cohorts actually contain.
std::vector<sim::system_config> make_grid(const workloads::app_spec& app,
                                          int points) {
  const sim::arbitration policies[] = {
      sim::arbitration::round_robin, sim::arbitration::fixed_priority,
      sim::arbitration::least_recently_granted};
  std::vector<int> striped(static_cast<std::size_t>(app.num_targets));
  for (std::size_t e = 0; e < striped.size(); ++e) {
    striped[e] = static_cast<int>(e % 2);
  }
  std::vector<int> striped_resp(static_cast<std::size_t>(app.num_initiators));
  for (std::size_t e = 0; e < striped_resp.size(); ++e) {
    striped_resp[e] = static_cast<int>(e % 2);
  }
  std::vector<sim::system_config> out;
  out.reserve(static_cast<std::size_t>(points));
  for (int k = 0; k < points; ++k) {
    sim::system_config cfg;
    cfg.record_traces = false;
    cfg.seed = static_cast<std::uint64_t>(k) + 1;
    cfg.request.policy = cfg.response.policy = policies[k % 3];
    switch ((k / 3) % 3) {
      case 0:
        cfg.request = sim::crossbar_config::full(app.num_targets);
        cfg.response = sim::crossbar_config::full(app.num_initiators);
        break;
      case 1:
        cfg.request = sim::crossbar_config::shared(app.num_targets);
        cfg.response = sim::crossbar_config::shared(app.num_initiators);
        break;
      default:
        cfg.request = sim::crossbar_config::partial(2, striped);
        cfg.response = sim::crossbar_config::partial(2, striped_resp);
        break;
    }
    cfg.request.policy = cfg.response.policy = policies[k % 3];
    out.push_back(cfg);
  }
  return out;
}

std::vector<sim::run_metrics> run_sessions(
    const workloads::app_spec& app,
    const std::vector<sim::system_config>& grid, traffic::cycle_t horizon) {
  std::vector<sim::run_metrics> out;
  out.reserve(grid.size());
  for (const auto& cfg : grid) {
    auto session =
        workloads::make_session(app, cfg.request, cfg.response, cfg);
    session.run(horizon);
    out.push_back(session.metrics());
  }
  return out;
}

std::vector<sim::run_metrics> run_batches(
    const workloads::app_spec& app,
    const std::vector<sim::system_config>& grid, traffic::cycle_t horizon,
    int batch_size, int threads) {
  std::vector<sim::run_metrics> out(grid.size());
  const auto bs = static_cast<std::size_t>(batch_size);
  const std::size_t cohorts = (grid.size() + bs - 1) / bs;
  std::atomic<std::size_t> next{0};
  // Cohorts are claimed off a shared counter; each writes only its own
  // disjoint result slots, so the output is identical for any thread
  // count (instances never share state).
  const auto worker = [&] {
    for (std::size_t k = next.fetch_add(1); k < cohorts;
         k = next.fetch_add(1)) {
      const auto off = k * bs;
      const auto end = std::min(grid.size(), off + bs);
      auto batch = workloads::make_batch(app);
      for (std::size_t i = off; i < end; ++i) batch.add_instance(grid[i]);
      batch.run(horizon);
      for (std::size_t i = off; i < end; ++i) {
        out[i] = batch.metrics(static_cast<int>(i - off));
      }
    }
  };
  if (threads <= 1) {
    worker();
    return out;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const flag_set flags(argc, argv);
  bench::require_known_flags(
      flags, {"points", "horizon", "batch", "threads", "repeats", "json"});
  const int points = static_cast<int>(flags.get_int("points", 10'000));
  const traffic::cycle_t horizon = flags.get_int("horizon", 2'000);
  const int batch_size = static_cast<int>(flags.get_int("batch", 32));
  const int threads = static_cast<int>(flags.get_int(
      "threads",
      static_cast<std::int64_t>(
          std::max(1u, std::thread::hardware_concurrency()))));
  const int repeats = static_cast<int>(flags.get_int("repeats", 3));
  bench::print_header(
      "Batched lockstep validation vs one session per design point",
      std::to_string(points) + " synthetic (design-point, seed) instances, "
          "horizon " + std::to_string(horizon) + ", best of " +
          std::to_string(repeats));

  workloads::synthetic_params params;
  params.num_cores = 8;
  const auto app = workloads::make_synthetic(params);
  const auto grid = make_grid(app, points);

  std::vector<sim::run_metrics> session_metrics;
  const auto session_acc = bench::time_reps(repeats, [&](int) {
    obs::stopwatch sw;
    session_metrics = run_sessions(app, grid, horizon);
    return sw.seconds();
  });
  const double session_sec = session_acc.min_seconds();
  const double session_rate = static_cast<double>(points) / session_sec;

  // The batched path at the headline cohort size plus a size sweep, every
  // run checked bit-identical against the session reference.
  bool identical = true;
  const auto check = [&](const std::vector<sim::run_metrics>& got) {
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (!(got[i] == session_metrics[i])) {
        std::fprintf(stderr,
                     "bench: batch metrics diverge from session at "
                     "instance %zu\n",
                     i);
        identical = false;
        return;
      }
    }
  };

  table t({"Path", "Batch", "Threads", "Wall (s)", "Designs/s", "Speedup"});
  t.cell("session").cell(static_cast<std::int64_t>(1))
      .cell(static_cast<std::int64_t>(1))
      .cell(session_sec, 3).cell(session_rate, 0).cell(1.0, 2).end_row();

  // One timed row per (batch size, thread count); returns best-of-reps
  // seconds after checking the result bit-identical to the sessions.
  gen::json::array size_rows;
  const auto time_row = [&](int bs, int nthreads) {
    std::vector<sim::run_metrics> got;
    const auto acc = bench::time_reps(repeats, [&](int) {
      obs::stopwatch sw;
      got = run_batches(app, grid, horizon, bs, nthreads);
      return sw.seconds();
    });
    check(got);
    const double sec = acc.min_seconds();
    const double rate = static_cast<double>(points) / sec;
    const double speedup = session_sec / sec;
    t.cell("batched").cell(static_cast<std::int64_t>(bs))
        .cell(static_cast<std::int64_t>(nthreads))
        .cell(sec, 3).cell(rate, 0).cell(speedup, 2).end_row();
    size_rows.push_back(gen::json::object{
        {"batch_size", static_cast<std::int64_t>(bs)},
        {"threads", static_cast<std::int64_t>(nthreads)},
        {"wall_seconds", sec},
        {"designs_per_second", rate},
        {"speedup_vs_session", speedup},
    });
    return sec;
  };

  // Single-thread rows isolate the SoA kernel across cohort sizes...
  double headline_sec = 0.0;
  for (const int bs : {8, batch_size, 128}) {
    const double sec = time_row(bs, 1);
    if (bs == batch_size) headline_sec = sec;
  }
  // ...and the headline row is the driver as deployed: cohorts of
  // --batch fanned across --threads workers (same row when threads=1).
  if (threads > 1) headline_sec = time_row(batch_size, threads);

  std::printf("%s", t.render().c_str());
  const double headline_speedup = session_sec / headline_sec;
  std::printf("\nbatched (cohorts of %d on %d thread%s) vs per-session: "
              "%.2fx, bit-identical: %s\n",
              batch_size, threads, threads == 1 ? "" : "s",
              headline_speedup, identical ? "yes" : "NO");

  const auto json_path = flags.get_string("json", "");
  if (!json_path.empty()) {
    const gen::json::value doc = gen::json::object{
        {"schema", "stx-bench-sweep-batch/v1"},
        {"points", static_cast<std::int64_t>(points)},
        {"horizon", static_cast<std::int64_t>(horizon)},
        {"batch_size", static_cast<std::int64_t>(batch_size)},
        {"threads", static_cast<std::int64_t>(threads)},
        {"bit_identical", identical},
        {"session",
         gen::json::object{{"wall_seconds", session_sec},
                           {"designs_per_second", session_rate}}},
        {"batched",
         gen::json::object{{"threads", static_cast<std::int64_t>(threads)},
                           {"wall_seconds", headline_sec},
                           {"designs_per_second",
                            static_cast<double>(points) / headline_sec},
                           {"speedup_vs_session", headline_speedup}}},
        {"batch_sizes", std::move(size_rows)},
    };
    std::ofstream out(json_path);
    out << gen::json::dump(doc);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return identical ? 0 : 1;
}
