// Reproduces Section 7.3: the effect of the optimal (overlap-minimising)
// binding versus a random feasible binding, and the latency of critical
// (real-time) streams under the criticality-aware design.
//
// Paper reference: random bindings average ~2.1x the average latency of
// the optimal binding; overlapping critical streams placed on separate
// buses see latencies "almost equal to ... a full crossbar".
#include <cstdio>

#include "bench_common.h"
#include "traffic/windows.h"
#include "util/table.h"
#include "workloads/mpsoc_apps.h"
#include "workloads/synthetic.h"
#include "xbar/baselines.h"
#include "xbar/flow.h"

int main() {
  using namespace stx;
  bench::print_header(
      "Section 7.3 — optimal vs random binding, and critical streams",
      "random = mean over 5 random feasible bindings (paper: ~2.1x)");

  const auto opts = bench::default_flow();

  table t({"Application", "optimal avg lat", "random avg lat",
           "random/optimal"});
  double ratio_sum = 0.0;
  int ratio_count = 0;
  auto apps = workloads::all_mpsoc_apps();
  apps.push_back(workloads::make_synthetic());  // strong overlap gradient
  for (const auto& app : apps) {
    const auto traces = xbar::collect_traces(app, opts);
    const traffic::window_analysis req_wa(traces.request,
                                          opts.synth.params.window_size);
    const traffic::window_analysis resp_wa(traces.response,
                                           opts.synth.params.window_size);
    const xbar::synthesis_input req_in(req_wa, opts.synth.params);
    const xbar::synthesis_input resp_in(resp_wa, opts.synth.params);
    const auto req_design = xbar::synthesize(req_in, opts.synth);
    const auto resp_design = xbar::synthesize(resp_in, opts.synth);

    const auto optimal = xbar::validate_configuration(
        app, req_design.to_config(opts.policy, opts.transfer_overhead),
        resp_design.to_config(opts.policy, opts.transfer_overhead), opts);

    double random_sum = 0.0;
    const int kSeeds = 5;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const auto rnd_req = xbar::rebind_randomly(req_in, req_design, seed);
      const auto rnd_resp =
          xbar::rebind_randomly(resp_in, resp_design, seed + 100);
      const auto metrics = xbar::validate_configuration(
          app, rnd_req.to_config(opts.policy, opts.transfer_overhead),
          rnd_resp.to_config(opts.policy, opts.transfer_overhead), opts);
      random_sum += metrics.avg_latency;
    }
    const double random_avg = random_sum / kSeeds;
    const double ratio = random_avg / optimal.avg_latency;
    ratio_sum += ratio;
    ++ratio_count;
    t.cell(app.name)
        .cell(optimal.avg_latency, 2)
        .cell(random_avg, 2)
        .cell(ratio, 2)
        .end_row();
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "mean random/optimal ratio: %.2fx (paper: ~2.1x)\n"
      "note: the ordering (random >= optimal) reproduces; the magnitude is\n"
      "smaller than the paper's because our cores are strictly closed-loop\n"
      "(one outstanding transaction) and maxtb bounds per-bus queueing —\n"
      "see EXPERIMENTS.md.\n\n",
      ratio_sum / ratio_count);

  // ---- Critical streams (Mat2 with two real-time private streams).
  const auto app = workloads::make_mat2_critical();
  const auto report = xbar::run_design_flow(app, opts);
  table c({"Metric", "Full crossbar", "Designed crossbar"});
  c.cell("critical avg latency")
      .cell(report.full.avg_critical, 2)
      .cell(report.designed.avg_critical, 2)
      .end_row();
  c.cell("critical max latency")
      .cell(report.full.max_critical, 0)
      .cell(report.designed.max_critical, 0)
      .end_row();
  c.cell("all-packet avg latency")
      .cell(report.full.avg_latency, 2)
      .cell(report.designed.avg_latency, 2)
      .end_row();
  std::printf("%s", c.render().c_str());
  std::printf(
      "\nshape check: critical latency under the designed crossbar should "
      "sit close to the full-crossbar level (paper: \"almost equal\").\n");
  return 0;
}
