// Ablation (ours): simulator throughput (simulated cycles per second) as
// the system grows — establishes that the cycle-accurate substrate is
// fast enough for the collection/validation loops the flow runs.
// google-benchmark binary.
#include <benchmark/benchmark.h>

#include "workloads/synthetic.h"
#include "xbar/flow.h"

namespace {

using namespace stx;

void BM_SimulateSynthetic(benchmark::State& state) {
  workloads::synthetic_params params;
  params.num_cores = static_cast<int>(state.range(0));
  const auto app = workloads::make_synthetic(params);
  const traffic::cycle_t horizon = 50'000;
  for (auto _ : state) {
    sim::system_config cfg;
    cfg.request = sim::crossbar_config::full(app.num_targets);
    cfg.response = sim::crossbar_config::full(app.num_initiators);
    cfg.record_traces = false;
    cfg.keep_latency_samples = false;
    auto system = sim::mpsoc_system(app.programs, app.num_targets, cfg,
                                    app.loop_starts);
    system.run(horizon);
    benchmark::DoNotOptimize(system.total_transactions());
  }
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(horizon) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateSynthetic)
    ->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_SimulateSharedBusCongested(benchmark::State& state) {
  workloads::synthetic_params params;
  params.num_cores = static_cast<int>(state.range(0));
  const auto app = workloads::make_synthetic(params);
  const traffic::cycle_t horizon = 50'000;
  for (auto _ : state) {
    sim::system_config cfg;
    cfg.request = sim::crossbar_config::shared(app.num_targets);
    cfg.response = sim::crossbar_config::shared(app.num_initiators);
    cfg.record_traces = false;
    cfg.keep_latency_samples = false;
    auto system = sim::mpsoc_system(app.programs, app.num_targets, cfg,
                                    app.loop_starts);
    system.run(horizon);
    benchmark::DoNotOptimize(system.total_transactions());
  }
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(horizon) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateSharedBusCongested)
    ->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_WindowAnalysis(benchmark::State& state) {
  workloads::synthetic_params params;
  const auto app = workloads::make_synthetic(params);
  xbar::flow_options fopts;
  fopts.horizon = 150'000;
  const auto traces = xbar::collect_traces(app, fopts);
  const auto ws = state.range(0);
  for (auto _ : state) {
    traffic::window_analysis wa(traces.request, ws);
    benchmark::DoNotOptimize(wa.total_overlap(0, 1));
  }
}
BENCHMARK(BM_WindowAnalysis)
    ->Arg(200)->Arg(2000)->Arg(20000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
