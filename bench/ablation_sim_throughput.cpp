// Ablation (ours): simulator throughput (simulated cycles per second),
// polling loop vs event-driven kernel, across the built-in applications
// and synthetic workloads at both utilisation extremes — establishes
// that the cycle-accurate substrate is fast enough for the
// collection/validation loops the flow runs, and tracks the event
// kernel's advantage as the repo's perf trajectory (BENCH_sim.json).
//
//   $ ./ablation_sim_throughput [--horizon=200000] [--repeats=3]
//                               [--json=BENCH_sim.json]
//
// Every workload runs under both kernels with identical settings; the
// bench refuses to report a run where the kernels disagree on the work
// done (transactions/iterations), so a throughput number can never come
// from a diverged simulation. A second section times the phase-2
// window analysis over the synthetic trace (the other hot path of
// sweep-heavy runs). JSON schema `stx-bench-sim/v1`:
//   {results: [{workload, kernel, wall_seconds, cycles_per_second,
//               transactions, events_processed, speedup_vs_polling}],
//    window_analysis: [{window_size, wall_seconds}]}
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gen/json.h"
#include "traffic/windows.h"
#include "util/table.h"
#include "workloads/mpsoc_apps.h"
#include "workloads/synthetic.h"
#include "xbar/flow.h"

namespace {

using namespace stx;

struct workload {
  std::string name;
  workloads::app_spec app;
};

/// The bench inventory: every built-in app plus the two synthetic
/// utilisation extremes the event kernel is characterised by.
std::vector<workload> make_workloads() {
  std::vector<workload> out;
  for (const auto& name : workloads::app_names()) {
    out.push_back({name, *workloads::make_app_by_name(name)});
  }
  // Bursty / low utilisation: long idle gaps between short bursts — the
  // calendar queue's best case (idle spans are skipped wholesale).
  workloads::synthetic_params bursty;
  bursty.num_cores = 16;
  bursty.burst_cycles = 300;
  bursty.gap_cycles = 12'000;
  out.push_back({"synthetic-bursty", workloads::make_synthetic(bursty)});
  // Dense / high utilisation: back-to-back bursts, no gaps — the event
  // kernel's worst case (every cycle has work; the queue is pure
  // overhead). The guard requirement is "no regression", not "speedup".
  workloads::synthetic_params dense;
  dense.num_cores = 16;
  dense.burst_cycles = 2'000;
  dense.gap_cycles = 0;
  dense.phase_spread = 0.0;
  out.push_back({"synthetic-dense", workloads::make_synthetic(dense)});
  return out;
}

struct measurement {
  double wall_seconds = 0.0;
  std::int64_t transactions = 0;
  std::int64_t iterations = 0;
  std::int64_t events_processed = 0;
};

/// Floors a measured duration away from zero so derived rates stay
/// finite (sub-resolution runs at tiny horizons would otherwise put inf
/// into the JSON, which gen::json refuses to serialise).
double finite_seconds(double secs) { return std::max(secs, 1e-9); }

measurement run_once(const workloads::app_spec& app, sim::kernel_kind kernel,
                     traffic::cycle_t horizon) {
  sim::system_config cfg;
  cfg.seed = 1;
  cfg.record_traces = false;
  cfg.keep_latency_samples = false;
  cfg.kernel = kernel;
  auto system = workloads::make_full_crossbar_system(app, cfg);
  const auto t0 = std::chrono::steady_clock::now();
  system.run(horizon);
  const auto t1 = std::chrono::steady_clock::now();
  measurement m;
  m.wall_seconds =
      finite_seconds(std::chrono::duration<double>(t1 - t0).count());
  m.transactions = system.total_transactions();
  m.iterations = system.total_iterations();
  m.events_processed = system.event_stats().events_processed;
  return m;
}

measurement best_of(const workloads::app_spec& app, sim::kernel_kind kernel,
                    traffic::cycle_t horizon, int repeats) {
  measurement best = run_once(app, kernel, horizon);
  for (int r = 1; r < repeats; ++r) {
    const auto m = run_once(app, kernel, horizon);
    if (m.wall_seconds < best.wall_seconds) best = m;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const flag_set flags(argc, argv);
  bench::require_known_flags(flags, {"horizon", "repeats", "json"});
  const traffic::cycle_t horizon = flags.get_int("horizon", 200'000);
  const int repeats = static_cast<int>(flags.get_int("repeats", 3));
  bench::print_header(
      "Ablation — simulator throughput, polling vs event kernel",
      "full crossbars, horizon " + std::to_string(horizon) + ", best of " +
          std::to_string(repeats));

  table t({"Workload", "Kernel", "Wall (s)", "Mcycles/s", "Events",
           "Speedup"});
  gen::json::array results;
  int divergences = 0;
  for (const auto& w : make_workloads()) {
    const auto poll =
        best_of(w.app, sim::kernel_kind::polling, horizon, repeats);
    const auto evt = best_of(w.app, sim::kernel_kind::event, horizon, repeats);
    if (poll.transactions != evt.transactions ||
        poll.iterations != evt.iterations) {
      std::fprintf(stderr,
                   "bench: kernels diverged on %s "
                   "(polling %lld txns, event %lld txns)\n",
                   w.name.c_str(),
                   static_cast<long long>(poll.transactions),
                   static_cast<long long>(evt.transactions));
      ++divergences;
      continue;
    }
    const double speedup = poll.wall_seconds / evt.wall_seconds;
    for (const auto* m : {&poll, &evt}) {
      const bool is_event = m == &evt;
      const double cps = static_cast<double>(horizon) / m->wall_seconds;
      t.cell(w.name)
          .cell(is_event ? "event" : "polling")
          .cell(m->wall_seconds, 4)
          .cell(cps / 1e6, 1)
          .cell(m->events_processed)
          .cell(is_event ? speedup : 1.0, 2)
          .end_row();
      results.push_back(gen::json::object{
          {"workload", w.name},
          {"kernel", is_event ? "event" : "polling"},
          {"wall_seconds", m->wall_seconds},
          {"cycles_per_second", cps},
          {"transactions", m->transactions},
          {"events_processed", m->events_processed},
          {"speedup_vs_polling", is_event ? speedup : 1.0},
      });
    }
  }
  std::printf("%s", t.render().c_str());

  // ---- Window-analysis throughput (phase 2's hot path in sweeps):
  // construction + one overlap query over the default synthetic trace.
  xbar::flow_options fopts;
  fopts.horizon = horizon;
  const auto traces = xbar::collect_traces(workloads::make_synthetic(), fopts);
  table wt({"Window (cycles)", "Wall (s)"});
  gen::json::array window_results;
  for (const traffic::cycle_t ws : {200, 2'000, 20'000}) {
    double best = 0.0;
    for (int r = 0; r < repeats; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      traffic::window_analysis wa(traces.request, ws);
      volatile auto keep = wa.total_overlap(0, 1);
      (void)keep;
      const double secs = finite_seconds(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count());
      if (r == 0 || secs < best) best = secs;
    }
    wt.cell(static_cast<std::int64_t>(ws)).cell(best, 4).end_row();
    window_results.push_back(gen::json::object{
        {"window_size", static_cast<std::int64_t>(ws)},
        {"wall_seconds", best},
    });
  }
  std::printf("\nwindow analysis over the synthetic phase-1 trace:\n%s",
              wt.render().c_str());

  const auto json_path = flags.get_string("json", "");
  if (!json_path.empty()) {
    const gen::json::value doc = gen::json::object{
        {"schema", "stx-bench-sim/v1"},
        {"horizon", static_cast<std::int64_t>(horizon)},
        {"repeats", repeats},
        {"results", std::move(results)},
        {"window_analysis", std::move(window_results)},
    };
    std::ofstream out(json_path);
    out << gen::json::dump(doc);
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (divergences > 0) return 1;
  return 0;
}
