// Ablation (ours): simulator throughput (simulated cycles per second) of
// the event-driven kernel across the built-in applications and synthetic
// workloads at both utilisation extremes — establishes that the
// cycle-accurate substrate is fast enough for the collection/validation
// loops the flow runs, and tracks it as the repo's perf trajectory
// (BENCH_sim.json). The polling loop this bench originally compared
// against soaked one release as the bit-identical reference and has been
// retired; its cost model (horizon * components steps) survives as the
// work-ratio column, which is counter-based and machine-independent.
//
//   $ ./ablation_sim_throughput [--horizon=200000] [--repeats=3]
//                               [--json=BENCH_sim.json]
//
// A second section times the phase-2 window analysis over the synthetic
// trace (the other hot path of sweep-heavy runs). JSON schema
// `stx-bench-sim/v2`:
//   {results: [{workload, wall_seconds, median_wall_seconds,
//               cycles_per_second, transactions, events_processed,
//               work_ratio_vs_polling_model}],
//    window_analysis: [{window_size, wall_seconds,
//                       median_wall_seconds}]}
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gen/json.h"
#include "traffic/windows.h"
#include "util/table.h"
#include "workloads/mpsoc_apps.h"
#include "workloads/synthetic.h"
#include "xbar/flow.h"

namespace {

using namespace stx;

struct workload {
  std::string name;
  workloads::app_spec app;
};

/// The bench inventory: every built-in app plus the two synthetic
/// utilisation extremes the event kernel is characterised by.
std::vector<workload> make_workloads() {
  std::vector<workload> out;
  for (const auto& name : workloads::app_names()) {
    out.push_back({name, *workloads::make_app_by_name(name)});
  }
  // Bursty / low utilisation: long idle gaps between short bursts — the
  // calendar queue's best case (idle spans are skipped wholesale).
  workloads::synthetic_params bursty;
  bursty.num_cores = 16;
  bursty.burst_cycles = 300;
  bursty.gap_cycles = 12'000;
  out.push_back({"synthetic-bursty", workloads::make_synthetic(bursty)});
  // Dense / high utilisation: back-to-back bursts, no gaps — the event
  // kernel's worst case (every cycle has work; the queue is pure
  // overhead relative to a hypothetical per-cycle loop).
  workloads::synthetic_params dense;
  dense.num_cores = 16;
  dense.burst_cycles = 2'000;
  dense.gap_cycles = 0;
  dense.phase_spread = 0.0;
  out.push_back({"synthetic-dense", workloads::make_synthetic(dense)});
  return out;
}

struct measurement {
  double wall_seconds = 0.0;         ///< minimum over the repeats
  double median_wall_seconds = 0.0;
  std::int64_t transactions = 0;
  std::int64_t iterations = 0;
  std::int64_t events_processed = 0;
  std::int64_t components = 0;
};

measurement run_once(const workloads::app_spec& app,
                     traffic::cycle_t horizon) {
  sim::system_config cfg;
  cfg.seed = 1;
  cfg.record_traces = false;
  cfg.keep_latency_samples = false;
  auto system = workloads::make_full_crossbar_system(app, cfg);
  obs::stopwatch sw;
  system.run(horizon);
  measurement m;
  m.wall_seconds = bench::finite_seconds(sw.seconds());
  m.transactions = system.total_transactions();
  m.iterations = system.total_iterations();
  m.events_processed = system.event_stats().events_processed;
  m.components = system.num_components();
  return m;
}

measurement best_of(const workloads::app_spec& app, traffic::cycle_t horizon,
                    int repeats) {
  measurement best;
  const auto acc = bench::time_reps(repeats, [&](int) {
    // The simulation is deterministic (fixed seed): every repeat yields
    // the same counters, only the wall time varies.
    const auto m = run_once(app, horizon);
    best = m;
    return m.wall_seconds;
  });
  best.wall_seconds = acc.min_seconds();
  best.median_wall_seconds = acc.median_seconds();
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const flag_set flags(argc, argv);
  bench::require_known_flags(flags, {"horizon", "repeats", "json"});
  const traffic::cycle_t horizon = flags.get_int("horizon", 200'000);
  const int repeats = static_cast<int>(flags.get_int("repeats", 3));
  bench::print_header(
      "Ablation — simulator throughput, event-driven kernel",
      "full crossbars, horizon " + std::to_string(horizon) + ", best of " +
          std::to_string(repeats));

  table t({"Workload", "Wall (s)", "Mcycles/s", "Events", "Work ratio"});
  gen::json::array results;
  int stuck = 0;
  for (const auto& w : make_workloads()) {
    const auto m = best_of(w.app, horizon, repeats);
    if (m.transactions == 0) {
      std::fprintf(stderr, "bench: %s simulated no transactions\n",
                   w.name.c_str());
      ++stuck;
      continue;
    }
    const double cps = static_cast<double>(horizon) / m.wall_seconds;
    // What the retired polling loop would have cost on this run: one
    // component step per component per cycle.
    const double polling_steps =
        static_cast<double>(horizon) * static_cast<double>(m.components);
    const double work_ratio =
        polling_steps / static_cast<double>(std::max<std::int64_t>(
                            1, m.events_processed));
    t.cell(w.name)
        .cell(m.wall_seconds, 4)
        .cell(cps / 1e6, 1)
        .cell(m.events_processed)
        .cell(work_ratio, 2)
        .end_row();
    results.push_back(gen::json::object{
        {"workload", w.name},
        {"wall_seconds", m.wall_seconds},
        {"median_wall_seconds", m.median_wall_seconds},
        {"cycles_per_second", cps},
        {"transactions", m.transactions},
        {"events_processed", m.events_processed},
        {"work_ratio_vs_polling_model", work_ratio},
    });
  }
  std::printf("%s", t.render().c_str());

  // ---- Window-analysis throughput (phase 2's hot path in sweeps):
  // construction + one overlap query over the default synthetic trace.
  xbar::flow_options fopts;
  fopts.horizon = horizon;
  const auto traces = xbar::collect_traces(workloads::make_synthetic(), fopts);
  table wt({"Window (cycles)", "Wall (s)"});
  gen::json::array window_results;
  for (const traffic::cycle_t ws : {200, 2'000, 20'000}) {
    const auto acc = bench::time_reps(repeats, [&](int) {
      obs::stopwatch sw;
      traffic::window_analysis wa(traces.request, ws);
      volatile auto keep = wa.total_overlap(0, 1);
      (void)keep;
      return sw.seconds();
    });
    const double best = acc.min_seconds();
    wt.cell(static_cast<std::int64_t>(ws)).cell(best, 4).end_row();
    window_results.push_back(gen::json::object{
        {"window_size", static_cast<std::int64_t>(ws)},
        {"wall_seconds", best},
        {"median_wall_seconds", acc.median_seconds()},
    });
  }
  std::printf("\nwindow analysis over the synthetic phase-1 trace:\n%s",
              wt.render().c_str());

  const auto json_path = flags.get_string("json", "");
  if (!json_path.empty()) {
    const gen::json::value doc = gen::json::object{
        {"schema", "stx-bench-sim/v2"},
        {"horizon", static_cast<std::int64_t>(horizon)},
        {"repeats", repeats},
        {"results", std::move(results)},
        {"window_analysis", std::move(window_results)},
    };
    std::ofstream out(json_path);
    out << gen::json::dump(doc);
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (stuck > 0) return 1;
  return 0;
}
