// Shared defaults for the table/figure reproduction harnesses.
#pragma once

#include <cstdio>
#include <string>

#include "util/table.h"
#include "workloads/mpsoc_apps.h"
#include "xbar/flow.h"

namespace stx::bench {

/// Default flow settings used by every paper-reproduction bench: one
/// uniform window size (~2-4x the apps' characteristic burst length),
/// 30% overlap threshold, maxtb 4, 120k-cycle simulations.
inline xbar::flow_options default_flow() {
  xbar::flow_options opts;
  opts.horizon = 120'000;
  opts.synth.params.window_size = 400;
  opts.synth.params.overlap_threshold = 0.30;
  opts.synth.params.max_targets_per_bus = 4;
  return opts;
}

/// Prints the standard bench header: what artefact is being reproduced
/// and which knobs are in force.
inline void print_header(const std::string& artefact,
                         const std::string& note) {
  std::printf("==============================================================\n");
  std::printf("%s\n", artefact.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("==============================================================\n");
}

/// Shared-bus configurations for a given app (one bus per direction).
inline sim::crossbar_config shared_request(const workloads::app_spec& app) {
  return sim::crossbar_config::shared(app.num_targets);
}
inline sim::crossbar_config shared_response(const workloads::app_spec& app) {
  return sim::crossbar_config::shared(app.num_initiators);
}
inline sim::crossbar_config full_request(const workloads::app_spec& app) {
  return sim::crossbar_config::full(app.num_targets);
}
inline sim::crossbar_config full_response(const workloads::app_spec& app) {
  return sim::crossbar_config::full(app.num_initiators);
}

}  // namespace stx::bench
