// Shared defaults for the table/figure reproduction harnesses.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "util/flags.h"
#include "util/table.h"
#include "workloads/mpsoc_apps.h"
#include "xbar/flow.h"

namespace stx::bench {

/// Exits 2 when `flags` contains anything outside `known`: bench output
/// feeds CI artifacts (BENCH_sweep.json), so a typo'd flag must not
/// silently fall back to defaults — same contract as xbargen/xbar-sweep.
inline void require_known_flags(const flag_set& flags,
                                const std::vector<std::string>& known) {
  if (report_unknown_flags(flags, known, "bench") > 0) {
    std::fprintf(stderr, "bench: known flags:");
    for (const auto& k : known) std::fprintf(stderr, " --%s", k.c_str());
    std::fprintf(stderr, "\n");
    std::exit(2);
  }
}

/// Floors a measured duration away from zero so derived rates stay
/// finite (sub-resolution runs at tiny horizons would otherwise put inf
/// into the JSON, which gen::json refuses to serialise).
inline double finite_seconds(double secs) { return std::max(secs, 1e-9); }

/// The one repeated-measurement loop every bench uses: runs `fn(rep)`
/// `repeats` times (at least once) and records each returned duration —
/// `fn` measures its own timed region and returns seconds, so setup work
/// inside the callback stays out of the measurement. The returned
/// accumulator is the single definition of "minimum / median wall time
/// over N repetitions" (obs::latency_accumulator), replacing the
/// hand-rolled min-of-N loops each bench previously duplicated.
template <typename Fn>
obs::latency_accumulator time_reps(int repeats, Fn&& fn) {
  obs::latency_accumulator acc;
  for (int r = 0; r < std::max(repeats, 1); ++r) {
    acc.record(finite_seconds(fn(r)));
  }
  return acc;
}

/// Default flow settings used by every paper-reproduction bench: one
/// uniform window size (~2-4x the apps' characteristic burst length),
/// 30% overlap threshold, maxtb 4, 120k-cycle simulations.
inline xbar::flow_options default_flow() {
  xbar::flow_options opts;
  opts.horizon = 120'000;
  opts.synth.params.window_size = 400;
  opts.synth.params.overlap_threshold = 0.30;
  opts.synth.params.max_targets_per_bus = 4;
  return opts;
}

/// Prints the standard bench header: what artefact is being reproduced
/// and which knobs are in force.
inline void print_header(const std::string& artefact,
                         const std::string& note) {
  std::printf("==============================================================\n");
  std::printf("%s\n", artefact.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("==============================================================\n");
}

/// Shared-bus configurations for a given app (one bus per direction).
inline sim::crossbar_config shared_request(const workloads::app_spec& app) {
  return sim::crossbar_config::shared(app.num_targets);
}
inline sim::crossbar_config shared_response(const workloads::app_spec& app) {
  return sim::crossbar_config::shared(app.num_initiators);
}
inline sim::crossbar_config full_request(const workloads::app_spec& app) {
  return sim::crossbar_config::full(app.num_targets);
}
inline sim::crossbar_config full_response(const workloads::app_spec& app) {
  return sim::crossbar_config::full(app.num_initiators);
}

}  // namespace stx::bench
