// Ablation (paper's future work, Sec. 8): uniform versus burst-adaptive
// variable analysis windows at a comparable window count. Variable
// windows concentrate analysis resolution in dense phases, which buys a
// tighter design (or better latency at equal size) on phase-structured
// traffic.
#include <cstdio>

#include "bench_common.h"
#include "traffic/variable_windows.h"
#include "traffic/windows.h"
#include "util/table.h"
#include "workloads/mpsoc_apps.h"
#include "xbar/flow.h"

int main() {
  using namespace stx;
  bench::print_header(
      "Ablation — uniform vs burst-adaptive variable windows",
      "future work of the paper (Sec. 8); five MPSoC apps");

  auto opts = bench::default_flow();
  table t({"Application", "uniform buses", "uniform avg lat",
           "variable buses", "variable avg lat", "variable windows"});

  for (const auto& app : workloads::all_mpsoc_apps()) {
    const auto traces = xbar::collect_traces(app, opts);

    // Uniform design at the default window size.
    const auto uni_req = xbar::synthesize_from_trace(traces.request,
                                                     opts.synth);
    const auto uni_resp = xbar::synthesize_from_trace(traces.response,
                                                      opts.synth);
    const auto uni = xbar::validate_configuration(
        app, uni_req.to_config(opts.policy, opts.transfer_overhead),
        uni_resp.to_config(opts.policy, opts.transfer_overhead), opts);

    // Burst-adaptive partition with roughly the same number of windows:
    // equal-work windows sized to the average busy mass per uniform
    // window, clamped to [WS/4, 4*WS].
    auto design_variable = [&](const traffic::trace& tr) {
      const auto busy = tr.total_busy_per_target();
      traffic::cycle_t total = 0;
      for (const auto b : busy) total += b;
      const auto n_windows =
          std::max<traffic::cycle_t>(1, tr.horizon() /
                                            opts.synth.params.window_size);
      const auto per_window = std::max<traffic::cycle_t>(1, total / n_windows);
      const auto part = traffic::window_partition::burst_adaptive(
          tr, per_window, opts.synth.params.window_size / 4,
          opts.synth.params.window_size * 4);
      const traffic::variable_window_analysis vwa(tr, part);
      const xbar::synthesis_input input(vwa, opts.synth.params);
      return std::make_pair(xbar::synthesize(input, opts.synth),
                            part.num_windows());
    };
    const auto [var_req, req_windows] = design_variable(traces.request);
    const auto [var_resp, resp_windows] = design_variable(traces.response);
    const auto var = xbar::validate_configuration(
        app, var_req.to_config(opts.policy, opts.transfer_overhead),
        var_resp.to_config(opts.policy, opts.transfer_overhead), opts);

    t.cell(app.name)
        .cell(uni_req.num_buses + uni_resp.num_buses)
        .cell(uni.avg_latency, 2)
        .cell(var_req.num_buses + var_resp.num_buses)
        .cell(var.avg_latency, 2)
        .cell(std::to_string(req_windows) + "+" +
              std::to_string(resp_windows))
        .end_row();
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nreading: equal-work windows put analysis resolution where the\n"
      "traffic is; on phase-structured apps (QSort, DES) they buy lower\n"
      "validated latency at the cost of extra buses — the conservative,\n"
      "QoS-oriented end of the design spectrum the paper's future work\n"
      "points at.\n");
  return 0;
}
