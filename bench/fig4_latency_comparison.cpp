// Reproduces Figures 4(a) and 4(b): packet latencies of crossbars
// designed from AVERAGE traffic flows ("previous approaches": one window
// over the whole run, no overlap constraints) versus the window-based
// methodology, both normalised to the latency of a full crossbar.
//
// Paper reference: the avg-flow designs incur 4x-7x (avg) and up to
// ~9x (max) the full-crossbar latency; the window-based designs stay
// within a small factor of full.
#include <cstdio>

#include "bench_common.h"
#include "util/table.h"
#include "workloads/mpsoc_apps.h"
#include "xbar/baselines.h"
#include "xbar/flow.h"

int main() {
  using namespace stx;
  bench::print_header(
      "Figures 4(a)/4(b) — relative packet latency: avg-flow design vs "
      "window-based design",
      "values normalised to the full crossbar (1.0 = full); paper: avg "
      "4x-7x, win within acceptable bounds");

  table t({"Application", "avg-design rel avg", "win-design rel avg",
           "avg-design rel max", "win-design rel max", "avg buses",
           "win buses"});

  const auto opts = bench::default_flow();
  for (const auto& app : workloads::all_mpsoc_apps()) {
    // Window-based design + full reference (phases 1-4).
    const auto report = xbar::run_design_flow(app, opts);

    // Average-flow baseline on the same traces.
    const auto traces = xbar::collect_traces(app, opts);
    const auto avg_req = xbar::design_average_traffic(traces.request);
    const auto avg_resp = xbar::design_average_traffic(traces.response);
    const auto avg_metrics = xbar::validate_configuration(
        app, avg_req.to_config(opts.policy, opts.transfer_overhead),
        avg_resp.to_config(opts.policy, opts.transfer_overhead), opts);

    t.cell(app.name)
        .cell(avg_metrics.avg_latency / report.full.avg_latency, 2)
        .cell(report.designed.avg_latency / report.full.avg_latency, 2)
        .cell(avg_metrics.max_latency / report.full.max_latency, 2)
        .cell(report.designed.max_latency / report.full.max_latency, 2)
        .cell(avg_req.num_buses + avg_resp.num_buses)
        .cell(report.designed_buses)
        .end_row();
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nshape check: the avg-flow column should sit several times above "
      "the window column on every row.\n");
  return 0;
}
