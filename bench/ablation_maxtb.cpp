// Ablation (ours): the maxtb knob (Eq. 8 — maximum targets per bus).
// Sweeps maxtb on the synthetic benchmark and reports designed size and
// validated latency: the size/worst-case-latency trade-off the paper
// motivates when introducing the constraint.
#include <cstdio>

#include "bench_common.h"
#include "util/table.h"
#include "workloads/synthetic.h"
#include "xbar/flow.h"

int main() {
  using namespace stx;
  bench::print_header(
      "Ablation — maxtb (max targets per bus) sweep, synthetic 20-core",
      "window = 2000 cycles, threshold 30%");

  workloads::synthetic_params params;
  const auto app = workloads::make_synthetic(params);
  xbar::flow_options fopts;
  fopts.horizon = 150'000;
  const auto traces = xbar::collect_traces(app, fopts);

  const auto full = xbar::validate_configuration(
      app, bench::full_request(app), bench::full_response(app), fopts);

  table t({"maxtb", "req buses", "resp buses", "avg lat", "max lat",
           "max/full-max"});
  for (const int maxtb : {0, 2, 3, 4, 6, 8}) {
    xbar::synthesis_options so;
    so.params.window_size = 2'000;
    so.params.max_targets_per_bus = maxtb;
    const auto req = xbar::synthesize_from_trace(traces.request, so);
    const auto resp = xbar::synthesize_from_trace(traces.response, so);
    const auto m = xbar::validate_configuration(
        app, req.to_config(fopts.policy, fopts.transfer_overhead),
        resp.to_config(fopts.policy, fopts.transfer_overhead), fopts);
    t.cell(maxtb == 0 ? std::string("off") : std::to_string(maxtb))
        .cell(req.num_buses)
        .cell(resp.num_buses)
        .cell(m.avg_latency, 2)
        .cell(m.max_latency, 0)
        .cell(m.max_latency / full.max_latency, 2)
        .end_row();
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nexpectation: tighter maxtb buys a lower worst-case latency at "
      "the cost of more buses.\n");
  return 0;
}
