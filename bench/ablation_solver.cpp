// Ablation (ours): runtime of the two exact engines on the same model —
// the specialised branch & bound versus the paper-faithful MILP through
// the generic simplex B&B (the CPLEX stand-in). Both return identical
// answers (see tests/xbar/solver_equivalence_test.cpp); this measures the
// cost of generality. google-benchmark binary.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "util/random.h"
#include "xbar/bb_solver.h"
#include "xbar/milp_formulation.h"

namespace {

using namespace stx;

xbar::synthesis_input random_instance(int targets, int windows,
                                      std::uint64_t seed) {
  rng r(seed);
  xbar::design_params p;
  p.window_size = 100;
  p.max_targets_per_bus = 4;
  std::vector<std::vector<xbar::cycle_t>> comm(
      static_cast<std::size_t>(targets),
      std::vector<xbar::cycle_t>(static_cast<std::size_t>(windows), 0));
  for (auto& row : comm) {
    for (auto& c : row) c = r.uniform_int(0, 60);
  }
  std::vector<std::vector<xbar::cycle_t>> om(
      static_cast<std::size_t>(targets),
      std::vector<xbar::cycle_t>(static_cast<std::size_t>(targets), 0));
  std::vector<std::vector<bool>> conf(
      static_cast<std::size_t>(targets),
      std::vector<bool>(static_cast<std::size_t>(targets), false));
  for (int i = 0; i < targets; ++i) {
    for (int j = i + 1; j < targets; ++j) {
      const auto si = static_cast<std::size_t>(i);
      const auto sj = static_cast<std::size_t>(j);
      om[si][sj] = om[sj][si] = r.uniform_int(0, 40);
      conf[si][sj] = conf[sj][si] = r.chance(0.1);
    }
  }
  return xbar::synthesis_input(std::move(comm), std::move(om),
                               std::move(conf), 100, p);
}

void BM_SpecializedFeasibility(benchmark::State& state) {
  const int targets = static_cast<int>(state.range(0));
  const auto in = random_instance(targets, 4, 42);
  const int buses = std::max(2, targets / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(xbar::find_feasible_binding(in, buses));
  }
}
BENCHMARK(BM_SpecializedFeasibility)
    ->Arg(6)->Arg(10)->Arg(16)->Arg(24)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_GenericMilpFeasibility(benchmark::State& state) {
  const int targets = static_cast<int>(state.range(0));
  const auto in = random_instance(targets, 4, 42);
  const int buses = std::max(2, targets / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(xbar::solve_feasibility_milp(in, buses));
  }
}
BENCHMARK(BM_GenericMilpFeasibility)
    ->Arg(6)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMillisecond);

void BM_SpecializedOptimalBinding(benchmark::State& state) {
  const int targets = static_cast<int>(state.range(0));
  const auto in = random_instance(targets, 4, 7);
  const int buses = std::max(2, targets / 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(xbar::find_min_overlap_binding(in, buses));
  }
}
BENCHMARK(BM_SpecializedOptimalBinding)
    ->Arg(6)->Arg(10)->Arg(14)
    ->Unit(benchmark::kMicrosecond);

void BM_GenericMilpOptimalBinding(benchmark::State& state) {
  const int targets = static_cast<int>(state.range(0));
  const auto in = random_instance(targets, 2, 7);
  const int buses = std::max(2, targets / 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(xbar::solve_binding_milp(in, buses));
  }
}
BENCHMARK(BM_GenericMilpOptimalBinding)
    ->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond);

}  // namespace
