// Ablation (ours): the MILP solver pipeline, warm-started incremental
// branch & bound (revised simplex, parent-basis dual re-solves,
// best-bound + pseudocost search) versus the legacy cold path that
// re-solves the full two-phase tableau LP at every node. Both engines
// are exact and must agree on every instance — the bench refuses to
// report a diverged pair — so the numbers measure pure solver speed on
// the paper's Eq. 3-9 / Eq. 11 binding models, built from the real
// phase-1 traces of every built-in application plus random testkit
// scenarios. This is the fast path that PR 5 adds; BENCH_solver.json is
// the perf trajectory CI uploads (mirror of BENCH_sim.json).
//
//   $ ./ablation_solver [--horizon=30000] [--repeats=3] [--scenarios=4]
//                       [--max-targets=10] [--json=BENCH_solver.json]
//
// JSON schema `stx-bench-solver/v1`:
//   {results: [{instance, targets, buses, variables, rows,
//               warm:  {nodes, lp_iterations, wall_seconds,
//                       median_wall_seconds, solves_per_second,
//                       warm_solves, cold_solves},
//               cold:  {nodes, lp_iterations, wall_seconds,
//                       median_wall_seconds, solves_per_second},
//               speedup_lp_iterations, speedup_wall}],
//    summary: {instances, total_warm_lp_iterations,
//              total_cold_lp_iterations, lp_iteration_speedup,
//              wall_speedup}}
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gen/json.h"
#include "milp/branch_bound.h"
#include "testkit/scenario.h"
#include "util/random.h"
#include "util/table.h"
#include "workloads/mpsoc_apps.h"
#include "xbar/bb_solver.h"
#include "xbar/flow.h"
#include "xbar/milp_formulation.h"
#include "xbar/synthesis.h"

namespace {

using namespace stx;

struct instance {
  std::string name;
  xbar::synthesis_input input;
  int buses = 0;
};

/// Phase 1-3 for one app at the bench settings: trace collection, window
/// analysis, pre-processing, minimum bus count (specialised solver — not
/// what is being measured), yielding the request-direction Eq. 11 model.
instance make_app_instance(const std::string& name,
                           const workloads::app_spec& app,
                           traffic::cycle_t horizon) {
  xbar::flow_options opts = bench::default_flow();
  opts.horizon = horizon;
  const auto traces = xbar::collect_traces(app, opts);
  auto input = xbar::input_from_trace(traces.request, opts.synth.params);
  xbar::synthesis_options so;
  so.params = opts.synth.params;
  const int buses = xbar::min_feasible_buses(input, so);
  return {name, std::move(input), buses};
}

instance make_scenario_instance(std::uint64_t seed) {
  rng r(seed);
  auto sc = testkit::sample_scenario(r);
  sc.horizon = std::min<traffic::cycle_t>(sc.horizon, 20'000);
  const auto app = sc.make_app();
  const auto opts = sc.make_flow_options();
  const auto traces = xbar::collect_traces(app, opts);
  auto input = xbar::input_from_trace(
      traces.request, xbar::effective_synthesis_params(opts, true));
  xbar::synthesis_options so;
  so.params = input.params();
  const int buses = xbar::min_feasible_buses(input, so);
  return {sc.name(), std::move(input), buses};
}

struct measurement {
  milp::bb_result result;
  double wall_seconds = 0.0;         ///< minimum over the repeats
  double median_wall_seconds = 0.0;
};

measurement solve_best_of(const milp::model& m, bool warm, int repeats) {
  milp::bb_options opts;
  opts.warm_start = warm;
  // Node budgets only: with the default 120s wall clock, a loaded CI
  // runner could time a cold solve out into status `limit` and the
  // divergence check would misread machine speed as an engine bug.
  opts.time_limit_sec = 0.0;
  measurement best;
  const auto acc = bench::time_reps(repeats, [&](int) {
    obs::stopwatch sw;
    // Both engines are deterministic: every repeat produces the same
    // result, so keeping the last is keeping them all.
    best.result = milp::solve_branch_bound(m, opts);
    return sw.seconds();
  });
  best.wall_seconds = acc.min_seconds();
  best.median_wall_seconds = acc.median_seconds();
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const flag_set flags(argc, argv);
  bench::require_known_flags(
      flags, {"horizon", "repeats", "scenarios", "max-targets", "json"});
  const traffic::cycle_t horizon = flags.get_int("horizon", 30'000);
  const int repeats = static_cast<int>(flags.get_int("repeats", 3));
  const int scenarios = static_cast<int>(flags.get_int("scenarios", 4));
  const int max_targets = static_cast<int>(flags.get_int("max-targets", 10));
  bench::print_header(
      "Ablation — MILP solver, warm-started incremental B&B vs cold path",
      "Eq. 11 binding models from phase-1 traces, horizon " +
          std::to_string(horizon) + ", best of " + std::to_string(repeats));

  std::vector<instance> instances;
  for (const auto& name : workloads::app_names()) {
    instances.push_back(
        make_app_instance(name, *workloads::make_app_by_name(name), horizon));
  }
  for (int s = 0; s < scenarios; ++s) {
    instances.push_back(
        make_scenario_instance(0xB0B5'0000ull + static_cast<unsigned>(s)));
  }

  table t({"Instance", "T", "B", "Warm nodes", "Cold nodes", "Warm LP it",
           "Cold LP it", "Warm (s)", "Cold (s)", "LP-it x", "Wall x"});
  gen::json::array results;
  int divergences = 0;
  int skipped = 0;
  std::int64_t total_warm_it = 0, total_cold_it = 0;
  double total_warm_s = 0.0, total_cold_s = 0.0;
  for (const auto& inst : instances) {
    if (inst.input.num_targets() > max_targets) {
      // No silent caps: the legacy cold path is what makes big models
      // intractable — say what was dropped instead of hiding it.
      std::printf("skipping %s (%d targets > --max-targets=%d)\n",
                  inst.name.c_str(), inst.input.num_targets(), max_targets);
      ++skipped;
      continue;
    }
    const auto bm = xbar::build_binding_milp(inst.input, inst.buses);
    const auto warm = solve_best_of(bm.model, /*warm=*/true, repeats);
    const auto cold = solve_best_of(bm.model, /*warm=*/false, repeats);
    if (warm.result.status != cold.result.status ||
        (warm.result.status == milp::milp_status::optimal &&
         std::abs(warm.result.objective - cold.result.objective) > 1e-5)) {
      std::fprintf(stderr,
                   "bench: engines diverged on %s (warm %s obj %.6f, cold "
                   "%s obj %.6f)\n",
                   inst.name.c_str(), milp::to_string(warm.result.status),
                   warm.result.objective, milp::to_string(cold.result.status),
                   cold.result.objective);
      ++divergences;
      continue;
    }
    total_warm_it += warm.result.lp_iterations;
    total_cold_it += cold.result.lp_iterations;
    total_warm_s += warm.wall_seconds;
    total_cold_s += cold.wall_seconds;
    const double it_speedup =
        static_cast<double>(cold.result.lp_iterations) /
        static_cast<double>(std::max<std::int64_t>(
            1, warm.result.lp_iterations));
    const double wall_speedup = cold.wall_seconds / warm.wall_seconds;
    t.cell(inst.name)
        .cell(static_cast<std::int64_t>(inst.input.num_targets()))
        .cell(static_cast<std::int64_t>(inst.buses))
        .cell(warm.result.nodes)
        .cell(cold.result.nodes)
        .cell(warm.result.lp_iterations)
        .cell(cold.result.lp_iterations)
        .cell(warm.wall_seconds, 4)
        .cell(cold.wall_seconds, 4)
        .cell(it_speedup, 2)
        .cell(wall_speedup, 2)
        .end_row();
    const auto engine_json = [](const measurement& m) {
      return gen::json::object{
          {"nodes", m.result.nodes},
          {"lp_iterations", m.result.lp_iterations},
          {"wall_seconds", m.wall_seconds},
          {"median_wall_seconds", m.median_wall_seconds},
          {"solves_per_second",
           static_cast<double>(m.result.nodes) / m.wall_seconds},
          {"warm_solves", m.result.warm_solves},
          {"cold_solves", m.result.cold_solves},
      };
    };
    results.push_back(gen::json::object{
        {"instance", inst.name},
        {"targets", static_cast<std::int64_t>(inst.input.num_targets())},
        {"buses", static_cast<std::int64_t>(inst.buses)},
        {"variables", static_cast<std::int64_t>(bm.model.num_variables())},
        {"rows", static_cast<std::int64_t>(bm.model.num_rows())},
        {"warm", engine_json(warm)},
        {"cold", engine_json(cold)},
        {"speedup_lp_iterations", it_speedup},
        {"speedup_wall", wall_speedup},
    });
  }
  std::printf("%s", t.render().c_str());
  const double sum_it_speedup =
      static_cast<double>(total_cold_it) /
      static_cast<double>(std::max<std::int64_t>(1, total_warm_it));
  const double sum_wall_speedup =
      total_cold_s / std::max(total_warm_s, 1e-9);
  std::printf(
      "\ntotal: %lld warm vs %lld cold LP iterations (%.2fx), "
      "%.3fs vs %.3fs wall (%.2fx)\n",
      static_cast<long long>(total_warm_it),
      static_cast<long long>(total_cold_it), sum_it_speedup, total_warm_s,
      total_cold_s, sum_wall_speedup);

  const auto json_path = flags.get_string("json", "");
  if (!json_path.empty()) {
    const auto reported = static_cast<std::int64_t>(results.size());
    const gen::json::value doc = gen::json::object{
        {"schema", "stx-bench-solver/v1"},
        {"horizon", static_cast<std::int64_t>(horizon)},
        {"repeats", repeats},
        {"results", std::move(results)},
        {"summary",
         gen::json::object{
             {"instances", reported},
             {"skipped", static_cast<std::int64_t>(skipped)},
             {"total_warm_lp_iterations", total_warm_it},
             {"total_cold_lp_iterations", total_cold_it},
             {"lp_iteration_speedup", sum_it_speedup},
             {"wall_speedup", sum_wall_speedup},
         }},
    };
    std::ofstream out(json_path);
    out << gen::json::dump(doc);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return divergences > 0 ? 1 : 0;
}
