// Ablation (ours): the MILP solver pipeline — wave-parallel warm-started
// branch & bound (revised simplex, parent-basis dual re-solves,
// best-bound + pseudocost search, root cover/clique cuts) measured
// across worker thread counts and with the cut layer switched off. The
// engine is deterministically parallel: every thread count must return a
// bit-identical bb_result — the bench refuses to report a diverged set —
// so the per-thread rows measure pure wall-clock scaling on the paper's
// Eq. 11 binding models (built-in apps + random testkit scenarios) and
// on the big_fabric solver-scaling family's compact Eq. 3-9 feasibility
// models (32x32 / 64x64, far beyond the paper's 15 targets).
// BENCH_solver.json is the perf trajectory CI uploads (mirror of
// BENCH_sim.json).
//
//   $ ./ablation_solver [--horizon=8000] [--repeats=3] [--scenarios=4]
//                       [--max-targets=12] [--threads=1,2,8]
//                       [--big-fabric=1] [--json=BENCH_solver.json]
//
// Defaults keep every binding instance tractable: mat1 (13 targets) and
// fft (15) build Eq. 11 models whose node LPs run minutes-per-thousand
// nodes — they are skipped (and reported) at max-targets=12, and every
// measured solve carries a node budget (20k for binding rows, tighter
// for the big_fabric family, see `instance::max_nodes`) so a
// pathological instance turns into a `limit` row instead of a hung
// bench.
//
// JSON schema `stx-bench-solver/v2`:
//   {results: [{instance, kind, targets, buses, variables, rows,
//               status, max_nodes, nodes, lp_iterations, cuts_added, waves,
//               threads: [{threads, wall_seconds, median_wall_seconds,
//                          solves_per_second}],
//               no_cuts: {nodes, lp_iterations},
//               speedup_wall_max_threads, node_ratio_cuts}],
//    summary: {instances, wall_speedup_max_threads,
//              total_nodes_with_cuts, total_nodes_without_cuts}}
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gen/json.h"
#include "milp/branch_bound.h"
#include "testkit/scenario.h"
#include "util/error.h"
#include "util/random.h"
#include "util/strings.h"
#include "util/table.h"
#include "workloads/big_fabric.h"
#include "workloads/mpsoc_apps.h"
#include "xbar/bb_solver.h"
#include "xbar/flow.h"
#include "xbar/milp_formulation.h"
#include "xbar/synthesis.h"

namespace {

using namespace stx;

struct instance {
  std::string name;
  std::string kind;  ///< "binding" (Eq. 11) or "feasibility" (Eq. 3-9)
  milp::model model;
  int targets = 0;
  int buses = 0;
  /// Node budget for this instance's solves. The binding models finish
  /// well under the default; the big_fabric family sits deliberately
  /// near the infeasibility boundary where the full default budget runs
  /// for tens of minutes at tens of ms per node — its rows measure a
  /// fixed, deterministic slice of that tree instead (a `limit` status
  /// is expected and fine: identical work at every thread count is what
  /// the scaling rows need).
  int max_nodes = 20'000;
};

/// Bus count of a big_fabric feasibility instance: 25% slack over the
/// solver's combinatorial lower bound (bandwidth + cardinality +
/// conflict clique). Scanning for the exact first-SAT boundary is a
/// trap here — every near-boundary probe burns its whole node budget at
/// tens of milliseconds per node proving nothing (and the specialised
/// DFS thrashes outright on this family; that is the portfolio-mode
/// motivation). The scaling rows only need a deterministic hard
/// instance: at this slack the model sits near the infeasibility
/// boundary, and whether the capped solve ends `feasible` or `limit`,
/// every thread count does bit-identical work — which is exactly what
/// the rows measure.
int big_fabric_buses(const xbar::synthesis_input& input) {
  const int lb = xbar::lower_bound_buses(input);
  const int b = lb + (lb + 3) / 4;
  STX_ENSURE(b <= input.num_targets(), "slack bus count exceeds targets");
  return b;
}

/// Phase 1-3 for one app at the bench settings: trace collection, window
/// analysis, pre-processing, bus count (specialised solver for the small
/// binding instances, generic-MILP scan for the big_fabric family — not
/// what is being measured either way), yielding the request-direction
/// model.
instance make_instance(const std::string& name,
                       const workloads::app_spec& app,
                       const xbar::flow_options& opts, bool binding) {
  const auto traces = xbar::collect_traces(app, opts);
  const auto input = xbar::input_from_trace(
      traces.request, xbar::effective_synthesis_params(opts, true));
  int buses = 0;
  if (binding) {
    xbar::synthesis_options so;
    so.params = input.params();
    buses = xbar::min_feasible_buses(input, so);
  } else {
    buses = big_fabric_buses(input);
  }
  instance out;
  out.name = name;
  out.kind = binding ? "binding" : "feasibility";
  out.model = binding ? xbar::build_binding_milp(input, buses).model
                      : xbar::build_feasibility_milp(input, buses).model;
  out.targets = input.num_targets();
  out.buses = buses;
  return out;
}

milp::bb_options solver_options(int threads, bool cuts, bool feasibility,
                                int max_nodes) {
  milp::bb_options opts;
  // Node budgets only: with the default 120s wall clock, a loaded CI
  // runner could time a solve out into status `limit`, and a fired wall
  // limit is the one thing that breaks thread-count bit-identity. A
  // node cap bounds a pathological instance deterministically — a
  // `limit` row still measures identical work at every thread count.
  opts.time_limit_sec = 0.0;
  opts.max_nodes = max_nodes;
  opts.threads = threads;
  opts.cuts = cuts;
  opts.feasibility_only = feasibility;
  return opts;
}

struct measurement {
  milp::bb_result result;
  double wall_seconds = 0.0;  ///< minimum over the repeats
  double median_wall_seconds = 0.0;
};

measurement solve_best_of(const milp::model& m, const milp::bb_options& opts,
                          int repeats) {
  measurement best;
  const auto acc = bench::time_reps(repeats, [&](int) {
    obs::stopwatch sw;
    // The engine is deterministic: every repeat produces the same
    // result, so keeping the last is keeping them all.
    best.result = milp::solve_branch_bound(m, opts);
    return sw.seconds();
  });
  best.wall_seconds = acc.min_seconds();
  best.median_wall_seconds = acc.median_seconds();
  return best;
}

bool results_identical(const milp::bb_result& a, const milp::bb_result& b) {
  return a.status == b.status && a.objective == b.objective && a.x == b.x &&
         a.nodes == b.nodes && a.lp_iterations == b.lp_iterations &&
         a.best_bound == b.best_bound && a.warm_solves == b.warm_solves &&
         a.cold_solves == b.cold_solves && a.cuts_added == b.cuts_added &&
         a.waves == b.waves;
}

}  // namespace

int main(int argc, char** argv) {
  const flag_set flags(argc, argv);
  bench::require_known_flags(flags, {"horizon", "repeats", "scenarios",
                                     "max-targets", "threads", "big-fabric",
                                     "json"});
  const traffic::cycle_t horizon = flags.get_int("horizon", 8'000);
  const int repeats = static_cast<int>(flags.get_int("repeats", 3));
  const int scenarios = static_cast<int>(flags.get_int("scenarios", 4));
  const int max_targets = static_cast<int>(flags.get_int("max-targets", 12));
  const bool big_fabric = flags.get_int("big-fabric", 1) != 0;
  std::vector<int> thread_counts;
  for (const auto& tok :
       split_list(flags.get_string("threads", "1,2,8"))) {
    thread_counts.push_back(std::atoi(tok.c_str()));
  }
  if (thread_counts.empty() || thread_counts.front() != 1) {
    thread_counts.insert(thread_counts.begin(), 1);  // baseline is 1 thread
  }
  bench::print_header(
      "Ablation — MILP solver: wave-parallel scaling + root cut layer",
      "binding models (apps/scenarios) + big_fabric feasibility, horizon " +
          std::to_string(horizon) + ", best of " + std::to_string(repeats));

  std::vector<instance> instances;
  std::vector<std::pair<std::string, workloads::app_spec>> apps;
  for (const auto& name : workloads::app_names()) {
    apps.emplace_back(name, *workloads::make_app_by_name(name));
  }
  int skipped = 0;
  for (const auto& [name, app] : apps) {
    xbar::flow_options opts = bench::default_flow();
    opts.horizon = horizon;
    if (app.num_targets > max_targets) {
      // No silent caps: say what was dropped instead of hiding it.
      std::printf("skipping %s binding model (%d targets > %d)\n",
                  name.c_str(), app.num_targets, max_targets);
      ++skipped;
      continue;
    }
    instances.push_back(make_instance(name, app, opts, /*binding=*/true));
  }
  for (int s = 0; s < scenarios; ++s) {
    rng r(0xB0B5'0000ull + static_cast<unsigned>(s));
    auto sc = testkit::sample_scenario(r);
    sc.horizon = std::min<traffic::cycle_t>(sc.horizon, 12'000);
    if (sc.num_targets > max_targets) {
      ++skipped;
      continue;
    }
    instances.push_back(make_instance(sc.name(), sc.make_app(),
                                      sc.make_flow_options(),
                                      /*binding=*/true));
  }
  if (big_fabric) {
    // The solver-scaling family: feasibility models only (the Eq. 11
    // objective's sharing variables would dwarf solve time with build
    // size at 64x64 — and feasibility probes are what the flow's binary
    // search actually spends its time on).
    xbar::flow_options opts = bench::default_flow();
    // Fixed horizon: the solver-scaling family is DEFINED at 8k cycles
    // so its rows stay comparable across runs whatever --horizon says.
    // (At 20k the denser conflict graph pushes the 64x64 LP to ~1.7s
    // per node — the family should measure tree parallelism, not one
    // giant LP.)
    opts.horizon = 8'000;
    auto bf32 = make_instance("big_fabric_32",
                              workloads::make_big_fabric_32(), opts,
                              /*binding=*/false);
    bf32.max_nodes = 2'000;
    instances.push_back(std::move(bf32));
    auto bf64 = make_instance("big_fabric_64",
                              workloads::make_big_fabric_64(), opts,
                              /*binding=*/false);
    bf64.max_nodes = 1'000;
    instances.push_back(std::move(bf64));
  }

  table t({"Instance", "Kind", "T", "B", "Nodes", "Cuts", "LP it",
           "1t (s)", "max-t (s)", "Wall x", "No-cut nodes"});
  gen::json::array results;
  int divergences = 0;
  double total_base_s = 0.0, total_fast_s = 0.0;
  std::int64_t total_nodes_cuts = 0, total_nodes_nocuts = 0;
  for (const auto& inst : instances) {
    const bool feas = inst.kind == "feasibility";
    std::printf("solving %s (%s, T=%d, B=%d)...\n", inst.name.c_str(),
                inst.kind.c_str(), inst.targets, inst.buses);
    std::fflush(stdout);
    std::vector<measurement> per_thread;
    for (const int threads : thread_counts) {
      per_thread.push_back(solve_best_of(
          inst.model, solver_options(threads, true, feas, inst.max_nodes),
          repeats));
      if (!results_identical(per_thread.front().result,
                             per_thread.back().result)) {
        std::fprintf(stderr,
                     "bench: DETERMINISM VIOLATION on %s: %d threads "
                     "diverged from 1 thread\n",
                     inst.name.c_str(), threads);
        ++divergences;
      }
    }
    // Cut ablation at 1 thread (identical across thread counts anyway).
    const auto no_cuts = solve_best_of(
        inst.model, solver_options(1, false, feas, inst.max_nodes), repeats);

    const auto& base = per_thread.front();
    const auto& fast = per_thread.back();
    total_base_s += base.wall_seconds;
    total_fast_s += fast.wall_seconds;
    total_nodes_cuts += base.result.nodes;
    total_nodes_nocuts += no_cuts.result.nodes;
    const double wall_speedup = base.wall_seconds / fast.wall_seconds;
    t.cell(inst.name)
        .cell(inst.kind)
        .cell(static_cast<std::int64_t>(inst.targets))
        .cell(static_cast<std::int64_t>(inst.buses))
        .cell(base.result.nodes)
        .cell(base.result.cuts_added)
        .cell(base.result.lp_iterations)
        .cell(base.wall_seconds, 4)
        .cell(fast.wall_seconds, 4)
        .cell(wall_speedup, 2)
        .cell(no_cuts.result.nodes)
        .end_row();

    gen::json::array thread_rows;
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
      thread_rows.push_back(gen::json::object{
          {"threads", static_cast<std::int64_t>(
                          thread_counts[i])},
          {"wall_seconds", per_thread[i].wall_seconds},
          {"median_wall_seconds", per_thread[i].median_wall_seconds},
          {"solves_per_second",
           static_cast<double>(per_thread[i].result.nodes) /
               per_thread[i].wall_seconds},
      });
    }
    results.push_back(gen::json::object{
        {"instance", inst.name},
        {"kind", inst.kind},
        {"targets", static_cast<std::int64_t>(inst.targets)},
        {"buses", static_cast<std::int64_t>(inst.buses)},
        {"variables",
         static_cast<std::int64_t>(inst.model.num_variables())},
        {"rows", static_cast<std::int64_t>(inst.model.num_rows())},
        {"status", std::string(milp::to_string(base.result.status))},
        {"max_nodes", static_cast<std::int64_t>(inst.max_nodes)},
        {"nodes", base.result.nodes},
        {"lp_iterations", base.result.lp_iterations},
        {"cuts_added", base.result.cuts_added},
        {"waves", base.result.waves},
        {"threads", std::move(thread_rows)},
        {"no_cuts", gen::json::object{
                        {"nodes", no_cuts.result.nodes},
                        {"lp_iterations", no_cuts.result.lp_iterations},
                    }},
        {"speedup_wall_max_threads", wall_speedup},
        {"node_ratio_cuts",
         static_cast<double>(base.result.nodes) /
             static_cast<double>(
                 std::max<std::int64_t>(1, no_cuts.result.nodes))},
    });
  }
  std::printf("%s", t.render().c_str());
  const double sum_speedup = total_base_s / std::max(total_fast_s, 1e-9);
  std::printf(
      "\ntotal: %.3fs at 1 thread vs %.3fs at %d threads (%.2fx); "
      "%lld nodes with cuts vs %lld without\n",
      total_base_s, total_fast_s, thread_counts.back(), sum_speedup,
      static_cast<long long>(total_nodes_cuts),
      static_cast<long long>(total_nodes_nocuts));

  const auto json_path = flags.get_string("json", "");
  if (!json_path.empty()) {
    const gen::json::value doc = gen::json::object{
        {"schema", "stx-bench-solver/v2"},
        {"horizon", static_cast<std::int64_t>(horizon)},
        {"repeats", repeats},
        {"max_threads", static_cast<std::int64_t>(thread_counts.back())},
        {"results", std::move(results)},
        {"summary",
         gen::json::object{
             {"instances", static_cast<std::int64_t>(instances.size())},
             {"skipped", static_cast<std::int64_t>(skipped)},
             {"wall_speedup_max_threads", sum_speedup},
             {"total_nodes_with_cuts", total_nodes_cuts},
             {"total_nodes_without_cuts", total_nodes_nocuts},
         }},
    };
    std::ofstream out(json_path);
    out << gen::json::dump(doc);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return divergences > 0 ? 1 : 0;
}
