// Reproduces Figure 6: designed crossbar size versus the overlap
// threshold (as a % of the window size) used in the pre-processing step —
// driven through the explore sweep engine, so the full-crossbar trace is
// simulated once for all threshold points.
//
// Paper reference: the size falls from near-full at 0% (any overlap
// forces separation, the contention-free extreme) to the bandwidth-bound
// minimum by 50% (above 50% the bandwidth constraint subsumes the
// threshold, so the sweep ends there).
//
//   $ ./fig6_overlap_threshold [--horizon=200000] [--threads=N]
//                              [--validate=BOOL] [--json=PATH]
#include <cstdio>
#include <fstream>
#include <thread>

#include "bench_common.h"
#include "explore/sweep.h"
#include "util/flags.h"
#include "util/table.h"
#include "workloads/synthetic.h"

int main(int argc, char** argv) {
  using namespace stx;
  const flag_set flags(argc, argv);
  bench::require_known_flags(flags,
                             {"horizon", "threads", "validate", "json"});
  bench::print_header(
      "Figure 6 — initiator->target crossbar size vs overlap threshold",
      "synthetic 20-core benchmark, window = 2000 cycles (~2x burst)");

  explore::sweep_spec spec;
  spec.apps = {workloads::make_synthetic()};
  spec.horizon = flags.get_int("horizon", 200'000);
  spec.validate = flags.get_bool("validate", false);
  const unsigned hw = std::thread::hardware_concurrency();
  spec.threads =
      static_cast<int>(flags.get_int("threads", hw == 0 ? 1 : hw));
  spec.grid.window_sizes = {2'000};
  spec.grid.overlap_thresholds = {0.0, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50};
  spec.grid.max_targets_per_bus = {0};

  const auto report = explore::run_sweep(spec);

  table t({"Threshold (% of WS)", "Crossbar size", "Size/full", "Conflicts"});
  const int full_size = spec.apps[0].num_targets;
  for (const auto& r : report.results) {
    t.cell(r.point.overlap_threshold * 100.0, 0)
        .cell(r.report.request_design.num_buses)
        .cell(static_cast<double>(r.report.request_design.num_buses) /
                  full_size,
              2)
        .cell(r.report.request_design.num_conflicts)
        .end_row();
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nshape check: monotone decrease from near-full at 0%% to the "
      "bandwidth-bound size at 50%% (paper Fig. 6).\n");
  std::printf("phase-1 simulations: %lld (one per app, shared by %zu "
              "points)\n",
              static_cast<long long>(report.phase1_simulations),
              report.results.size());

  const auto json_path = flags.get_string("json", "");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << explore::render_json(report);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
