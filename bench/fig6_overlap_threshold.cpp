// Reproduces Figure 6: designed crossbar size versus the overlap
// threshold (as a % of the window size) used in the pre-processing step.
//
// Paper reference: the size falls from near-full at 0% (any overlap
// forces separation, the contention-free extreme) to the bandwidth-bound
// minimum by 50% (above 50% the bandwidth constraint subsumes the
// threshold, so the sweep ends there).
#include <cstdio>

#include "bench_common.h"
#include "util/table.h"
#include "workloads/synthetic.h"
#include "xbar/flow.h"

int main() {
  using namespace stx;
  bench::print_header(
      "Figure 6 — initiator->target crossbar size vs overlap threshold",
      "synthetic 20-core benchmark, window = 2000 cycles (~2x burst)");

  workloads::synthetic_params params;
  const auto app = workloads::make_synthetic(params);
  xbar::flow_options fopts;
  fopts.horizon = 200'000;
  const auto traces = xbar::collect_traces(app, fopts);

  table t({"Threshold (% of WS)", "Crossbar size", "Size/full",
           "Conflicts"});
  for (const double thr : {0.0, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50}) {
    xbar::synthesis_options so;
    so.params.window_size = 2'000;
    so.params.overlap_threshold = thr;
    so.params.max_targets_per_bus = 0;
    const traffic::window_analysis wa(traces.request,
                                      so.params.window_size);
    const xbar::synthesis_input input(wa, so.params);
    const auto design = xbar::synthesize(input, so);
    t.cell(thr * 100.0, 0)
        .cell(design.num_buses)
        .cell(static_cast<double>(design.num_buses) / app.num_targets, 2)
        .cell(input.num_conflicts())
        .end_row();
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nshape check: monotone decrease from near-full at 0%% to the "
      "bandwidth-bound size at 50%% (paper Fig. 6).\n");
  return 0;
}
