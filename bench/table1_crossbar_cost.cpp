// Reproduces Table 1: "Crossbar Performance and Cost".
//
// The paper simulates the 21-core matrix-multiplication MPSoC (Mat2) on
// three STbus instantiations — a single shared bus, a full crossbar and
// the designed partial crossbar — and reports average/maximum packet
// latency plus crossbar size (components, normalised to the shared bus).
//
// Paper reference values:   shared 35.1 / 51 / 1
//                           full    6.0 /  9 / 10.5
//                           partial 9.9 / 20 / 4
#include <cstdio>

#include "bench_common.h"
#include "util/table.h"
#include "workloads/mpsoc_apps.h"
#include "xbar/flow.h"

int main() {
  using namespace stx;
  bench::print_header(
      "Table 1 — Crossbar Performance and Cost (Mat2, 21 cores)",
      "latencies in cycles; size = total buses normalised to shared (2)");

  const auto app = workloads::make_mat2();
  const auto opts = bench::default_flow();

  // Shared and full references.
  const auto shared = xbar::validate_configuration(
      app, bench::shared_request(app), bench::shared_response(app), opts);
  const auto report = xbar::run_design_flow(app, opts);
  const auto& full = report.full;
  const auto& partial = report.designed;

  const double shared_buses = 2.0;  // one bus per direction

  table t({"Type", "Avg Lat (cy)", "Max Lat (cy)", "Size Ratio",
           "Paper Avg", "Paper Max", "Paper Size"});
  t.cell("shared")
      .cell(shared.avg_latency, 1)
      .cell(shared.max_latency, 0)
      .cell(shared.total_buses / shared_buses, 1)
      .cell("35.1").cell("51").cell("1")
      .end_row();
  t.cell("full")
      .cell(full.avg_latency, 1)
      .cell(full.max_latency, 0)
      .cell(full.total_buses / shared_buses, 1)
      .cell("6").cell("9").cell("10.5")
      .end_row();
  t.cell("partial")
      .cell(partial.avg_latency, 1)
      .cell(partial.max_latency, 0)
      .cell(partial.total_buses / shared_buses, 1)
      .cell("9.9").cell("20").cell("4")
      .end_row();
  std::printf("%s", t.render().c_str());

  std::printf(
      "\nshape check: shared/full avg ratio = %.2fx (paper 5.9x); "
      "partial/full avg ratio = %.2fx (paper 1.7x)\n",
      shared.avg_latency / full.avg_latency,
      partial.avg_latency / full.avg_latency);
  std::printf(
      "designed partial crossbar: %d request + %d response buses\n",
      report.request_design.num_buses, report.response_design.num_buses);
  return 0;
}
