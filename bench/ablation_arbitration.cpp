// Ablation (ours): effect of the per-bus arbitration policy on the
// validated latency of the designed crossbar. The paper fixes the STbus
// arbiter; this quantifies how much the choice matters for the designs
// the methodology produces.
#include <cstdio>

#include "bench_common.h"
#include "util/table.h"
#include "workloads/mpsoc_apps.h"
#include "xbar/flow.h"

int main() {
  using namespace stx;
  bench::print_header(
      "Ablation — arbitration policy under the designed crossbar (Mat2)",
      "same designed binding, three arbiter policies");

  const auto app = workloads::make_mat2();
  auto opts = bench::default_flow();
  const auto report = xbar::run_design_flow(app, opts);

  table t({"Policy", "avg lat", "max lat", "p99 lat", "iterations"});
  for (const auto policy :
       {sim::arbitration::fixed_priority, sim::arbitration::round_robin,
        sim::arbitration::least_recently_granted}) {
    auto req = report.request_design.to_config(policy,
                                               opts.transfer_overhead);
    auto resp = report.response_design.to_config(policy,
                                                 opts.transfer_overhead);
    auto run_opts = opts;
    run_opts.policy = policy;
    const auto m = xbar::validate_configuration(app, req, resp, run_opts);
    t.cell(sim::to_string(policy))
        .cell(m.avg_latency, 2)
        .cell(m.max_latency, 0)
        .cell(m.p99_latency, 1)
        .cell(m.iterations)
        .end_row();
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nexpectation: round-robin and least-recently-granted bound the "
      "tail; fixed priority starves high-index cores (higher max).\n");
  return 0;
}
