// Reproduces Figure 5(a): designed initiator->target crossbar size as a
// function of the analysis window size, on the 20-core synthetic
// benchmark with ~1000-cycle bursts — driven through the explore sweep
// engine, so the full-crossbar trace is simulated once and the window
// points evaluate in parallel.
//
// Paper reference: window << burst  -> size close to full (10);
//                  window 1-4x burst -> ~25% of full;
//                  very large window -> converges to the average design.
//
//   $ ./fig5a_window_size [--horizon=400000] [--threads=N]
//                         [--validate=BOOL] [--json=PATH]
//
// --json writes the sweep report (e.g. BENCH_sweep.json for the CI bench
// smoke job's perf trajectory artifact).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <thread>

#include "bench_common.h"
#include "explore/sweep.h"
#include "traffic/burst.h"
#include "util/flags.h"
#include "util/table.h"
#include "workloads/synthetic.h"

int main(int argc, char** argv) {
  using namespace stx;
  const flag_set flags(argc, argv);
  bench::require_known_flags(flags,
                             {"horizon", "threads", "validate", "json"});
  bench::print_header(
      "Figure 5(a) — initiator->target crossbar size vs window size",
      "synthetic 20-core benchmark, burst ~= 1000 busy cycles; maxtb off");

  explore::sweep_spec spec;
  spec.apps = {workloads::make_synthetic()};
  spec.horizon = flags.get_int("horizon", 400'000);
  spec.validate = flags.get_bool("validate", false);
  const unsigned hw = std::thread::hardware_concurrency();
  spec.threads =
      static_cast<int>(flags.get_int("threads", hw == 0 ? 1 : hw));
  spec.grid.window_sizes = {200,  300,  400,  750,    1000,   2000,
                            3000, 4000, 8000, 50'000, 400'000};
  spec.grid.overlap_thresholds = {0.30};
  spec.grid.max_targets_per_bus = {0};  // isolate the window-size effect

  explore::trace_cache cache;
  const auto report = explore::run_sweep(spec, cache);

  // The cached phase-1 trace also supplies the burst-length estimate —
  // no extra simulation.
  const auto traces = cache.traces(
      spec.apps[0],
      explore::options_for(spec, explore::sweep_points(spec)[0]));
  const double burst =
      traffic::typical_burst_length(traces->request, /*gap_threshold=*/50);

  table t({"Window (cycles)", "Window/burst", "Crossbar size", "Size/full"});
  const int full_size = spec.apps[0].num_targets;
  for (const auto& r : report.results) {
    t.cell(static_cast<std::int64_t>(r.point.window_size))
        .cell(static_cast<double>(r.point.window_size) / burst, 2)
        .cell(r.report.request_design.num_buses)
        .cell(static_cast<double>(r.report.request_design.num_buses) /
                  full_size,
              2)
        .end_row();
  }
  std::printf("measured typical burst length: %.0f cycles\n\n", burst);
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nshape check: near-full size for windows below the burst size, "
      "a knee around 1-4x the burst, small sizes for huge windows.\n");
  std::printf("phase-1 simulations: %lld (one per app, shared by %zu "
              "points)\n",
              static_cast<long long>(report.phase1_simulations),
              report.results.size());

  const auto json_path = flags.get_string("json", "");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << explore::render_json(report);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
