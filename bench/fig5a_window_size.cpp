// Reproduces Figure 5(a): designed initiator->target crossbar size as a
// function of the analysis window size, on the 20-core synthetic
// benchmark with ~1000-cycle bursts.
//
// Paper reference: window << burst  -> size close to full (10);
//                  window 1-4x burst -> ~25% of full;
//                  very large window -> converges to the average design.
#include <cstdio>

#include "bench_common.h"
#include "traffic/burst.h"
#include "util/table.h"
#include "workloads/synthetic.h"
#include "xbar/flow.h"

int main() {
  using namespace stx;
  bench::print_header(
      "Figure 5(a) — initiator->target crossbar size vs window size",
      "synthetic 20-core benchmark, burst ~= 1000 busy cycles; maxtb off");

  workloads::synthetic_params params;  // defaults: 20 cores, 1000-cycle bursts
  const auto app = workloads::make_synthetic(params);

  xbar::flow_options fopts;
  fopts.horizon = 400'000;  // large enough for the biggest windows
  const auto traces = xbar::collect_traces(app, fopts);
  const double burst =
      traffic::typical_burst_length(traces.request, /*gap_threshold=*/50);

  table t({"Window (cycles)", "Window/burst", "Crossbar size",
           "Size/full"});
  const int full_size = app.num_targets;
  for (const traffic::cycle_t ws :
       {200, 300, 400, 750, 1000, 2000, 3000, 4000, 8000, 50'000, 400'000}) {
    xbar::synthesis_options so;
    so.params.window_size = ws;
    so.params.overlap_threshold = 0.30;
    so.params.max_targets_per_bus = 0;  // isolate the window-size effect
    const auto design = xbar::synthesize_from_trace(traces.request, so);
    t.cell(static_cast<std::int64_t>(ws))
        .cell(static_cast<double>(ws) / burst, 2)
        .cell(design.num_buses)
        .cell(static_cast<double>(design.num_buses) / full_size, 2)
        .end_row();
  }
  std::printf("measured typical burst length: %.0f cycles\n\n", burst);
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nshape check: near-full size for windows below the burst size, "
      "a knee around 1-4x the burst, small sizes for huge windows.\n");
  return 0;
}
