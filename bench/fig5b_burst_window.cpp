// Reproduces Figure 5(b): the largest acceptable analysis window versus
// the benchmark's burst size — the paper reports a near-linear relation
// (window ~ a few times the burst size).
//
// "Acceptable" here is made operational: the largest window BEFORE the
// validated average latency first exceeds 1.40x the full crossbar's (the
// paper quotes ~1.5x as the acceptable level in Sec. 7.2; measured
// ratios plateau at 1.45-1.57 once the design bottoms out at its
// bandwidth minimum, so 1.40 separates the knee from the plateau for
// every burst size).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "util/table.h"
#include "workloads/synthetic.h"
#include "xbar/flow.h"

int main() {
  using namespace stx;
  bench::print_header(
      "Figure 5(b) — acceptable window size vs burst size",
      "synthetic benchmark; acceptable = largest window before validated "
      "avg latency exceeds 1.40x full crossbar");

  table t({"Burst (cycles)", "Acceptable window (cycles)", "Window/burst"});

  for (const traffic::cycle_t burst : {1000, 2000, 3000, 4000, 5000}) {
    workloads::synthetic_params params;
    params.burst_cycles = burst;
    params.gap_cycles = burst * 13 / 5;  // keep duty constant across bursts
    const auto app = workloads::make_synthetic(params);

    xbar::flow_options fopts;
    fopts.horizon = 60 * (burst + params.gap_cycles);
    const auto traces = xbar::collect_traces(app, fopts);

    const auto full_metrics = xbar::validate_configuration(
        app, bench::full_request(app), bench::full_response(app), fopts);

    traffic::cycle_t acceptable = 0;
    const std::vector<double> multiples = {0.5, 1, 2, 3, 4, 6, 8, 12, 16};
    for (const double mult : multiples) {
      const auto ws = static_cast<traffic::cycle_t>(mult * burst);
      xbar::synthesis_options so;
      so.params.window_size = ws;
      so.params.overlap_threshold = 0.30;
      so.params.max_targets_per_bus = 0;
      const auto req = xbar::synthesize_from_trace(traces.request, so);
      const auto resp = xbar::synthesize_from_trace(traces.response, so);
      const auto metrics = xbar::validate_configuration(
          app, req.to_config(fopts.policy, fopts.transfer_overhead),
          resp.to_config(fopts.policy, fopts.transfer_overhead), fopts);
      if (metrics.avg_latency > 1.40 * full_metrics.avg_latency) {
        break;  // knee crossed: quality degrades from here on
      }
      acceptable = ws;
    }
    t.cell(static_cast<std::int64_t>(burst))
        .cell(static_cast<std::int64_t>(acceptable))
        .cell(static_cast<double>(acceptable) / burst, 1)
        .end_row();
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nshape check: the acceptable window should grow roughly linearly "
      "with the burst size (paper Fig. 5b).\n");
  return 0;
}
