#include "traffic/trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace stx::traffic {

trace::trace(int num_targets, int num_initiators, cycle_t horizon)
    : num_targets_(num_targets),
      num_initiators_(num_initiators),
      horizon_(horizon) {
  STX_REQUIRE(num_targets >= 0 && num_initiators >= 0 && horizon >= 0,
              "trace dimensions must be non-negative");
}

void trace::add(const stream_event& e) {
  STX_REQUIRE(e.target >= 0 && e.target < num_targets_,
              "event target out of range");
  STX_REQUIRE(e.initiator >= 0 && e.initiator < num_initiators_,
              "event initiator out of range");
  STX_REQUIRE(e.begin >= 0 && e.begin < e.end, "event interval malformed");
  horizon_ = std::max(horizon_, e.end);
  events_.push_back(e);
}

void trace::extend_horizon(cycle_t h) { horizon_ = std::max(horizon_, h); }

std::vector<cycle_t> trace::total_busy_per_target() const {
  std::vector<cycle_t> out(static_cast<std::size_t>(num_targets_), 0);
  for (int t = 0; t < num_targets_; ++t) {
    for (const auto& [b, e] : busy_intervals(t)) {
      out[static_cast<std::size_t>(t)] += e - b;
    }
  }
  return out;
}

bool trace::target_has_critical(int target) const {
  for (const auto& e : events_) {
    if (e.target == target && e.critical) return true;
  }
  return false;
}

std::vector<std::pair<cycle_t, cycle_t>> trace::busy_intervals(
    int target, bool critical_only) const {
  STX_REQUIRE(target >= 0 && target < num_targets_, "target out of range");
  std::vector<std::pair<cycle_t, cycle_t>> spans;
  for (const auto& e : events_) {
    if (e.target != target) continue;
    if (critical_only && !e.critical) continue;
    spans.emplace_back(e.begin, e.end);
  }
  std::sort(spans.begin(), spans.end());
  std::vector<std::pair<cycle_t, cycle_t>> merged;
  for (const auto& s : spans) {
    if (!merged.empty() && s.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, s.second);
    } else {
      merged.push_back(s);
    }
  }
  return merged;
}

void trace::save(std::ostream& out) const {
  out << "stxtrace v1 targets=" << num_targets_
      << " initiators=" << num_initiators_ << " horizon=" << horizon_
      << " events=" << events_.size() << "\n";
  for (const auto& e : events_) {
    out << e.target << " " << e.initiator << " " << e.begin << " " << e.end
        << " " << (e.critical ? 1 : 0) << "\n";
  }
}

trace trace::load(std::istream& in) {
  std::string magic, version;
  in >> magic >> version;
  STX_REQUIRE(magic == "stxtrace" && version == "v1",
              "not an stxtrace v1 stream");
  auto read_kv = [&](const std::string& key) -> std::int64_t {
    std::string tok;
    in >> tok;
    STX_REQUIRE(tok.rfind(key + "=", 0) == 0,
                "expected " + key + "= in trace header");
    try {
      return std::stoll(tok.substr(key.size() + 1));
    } catch (const std::exception&) {
      throw invalid_argument_error("malformed " + key +
                                   " value in trace header: " + tok);
    }
  };
  const auto targets = read_kv("targets");
  const auto initiators = read_kv("initiators");
  const auto horizon = read_kv("horizon");
  const auto count = read_kv("events");
  trace t(static_cast<int>(targets), static_cast<int>(initiators), horizon);
  for (std::int64_t i = 0; i < count; ++i) {
    stream_event e;
    int crit = 0;
    in >> e.target >> e.initiator >> e.begin >> e.end >> crit;
    STX_REQUIRE(static_cast<bool>(in), "truncated trace stream");
    e.critical = crit != 0;
    t.add(e);
  }
  return t;
}

void trace::save_file(const std::string& path) const {
  std::ofstream out(path);
  STX_REQUIRE(out.good(), "cannot open trace file for writing: " + path);
  save(out);
}

trace trace::load_file(const std::string& path) {
  std::ifstream in(path);
  STX_REQUIRE(in.good(), "cannot open trace file: " + path);
  return load(in);
}

}  // namespace stx::traffic
