#include "traffic/windows.h"

#include <algorithm>

#include "util/error.h"

namespace stx::traffic {

cycle_t interval_overlap(const std::vector<std::pair<cycle_t, cycle_t>>& a,
                         const std::vector<std::pair<cycle_t, cycle_t>>& b,
                         cycle_t lo, cycle_t hi) {
  cycle_t acc = 0;
  std::size_t ia = 0, ib = 0;
  while (ia < a.size() && ib < b.size()) {
    const cycle_t begin =
        std::max({a[ia].first, b[ib].first, lo});
    const cycle_t end = std::min({a[ia].second, b[ib].second, hi});
    if (end > begin) acc += end - begin;
    // Advance whichever interval finishes first.
    if (a[ia].second <= b[ib].second) {
      ++ia;
    } else {
      ++ib;
    }
    if (begin >= hi) break;
  }
  return acc;
}

namespace {

/// Intersection of two sorted disjoint interval lists.
std::vector<std::pair<cycle_t, cycle_t>> intersect(
    const std::vector<std::pair<cycle_t, cycle_t>>& a,
    const std::vector<std::pair<cycle_t, cycle_t>>& b) {
  std::vector<std::pair<cycle_t, cycle_t>> out;
  std::size_t ia = 0, ib = 0;
  while (ia < a.size() && ib < b.size()) {
    const cycle_t begin = std::max(a[ia].first, b[ib].first);
    const cycle_t end = std::min(a[ia].second, b[ib].second);
    if (end > begin) out.emplace_back(begin, end);
    if (a[ia].second <= b[ib].second) {
      ++ia;
    } else {
      ++ib;
    }
  }
  return out;
}

}  // namespace

window_analysis::window_analysis(const trace& t, cycle_t window_size)
    : window_size_(window_size), num_targets_(t.num_targets()) {
  STX_REQUIRE(window_size > 0, "window size must be positive");
  const cycle_t horizon = std::max<cycle_t>(t.horizon(), 1);
  num_windows_ =
      static_cast<int>((horizon + window_size - 1) / window_size);

  const auto n = static_cast<std::size_t>(num_targets_);
  const auto w = static_cast<std::size_t>(num_windows_);
  comm_.assign(n * w, 0);
  critical_targets_.assign(n, false);
  const std::size_t pairs = n * (n - 1) / 2;
  pair_total_.assign(pairs, 0);
  pair_max_.assign(pairs, 0);
  pair_critical_.assign(pairs, 0);
  wo_.assign(pairs * w, 0);

  // Per-target merged busy intervals (and critical-only intervals).
  std::vector<std::vector<std::pair<cycle_t, cycle_t>>> busy(n), crit(n);
  for (int i = 0; i < num_targets_; ++i) {
    busy[static_cast<std::size_t>(i)] = t.busy_intervals(i);
    crit[static_cast<std::size_t>(i)] =
        t.busy_intervals(i, /*critical_only=*/true);
    critical_targets_[static_cast<std::size_t>(i)] =
        !crit[static_cast<std::size_t>(i)].empty();
  }

  // comm[i][m]: split each busy interval across window boundaries.
  for (int i = 0; i < num_targets_; ++i) {
    for (const auto& [b, e] : busy[static_cast<std::size_t>(i)]) {
      cycle_t cur = b;
      while (cur < e) {
        const auto m = cur / window_size_;
        const cycle_t wend = (m + 1) * window_size_;
        const cycle_t stop = std::min(e, wend);
        comm_[static_cast<std::size_t>(i) * w + static_cast<std::size_t>(m)] +=
            stop - cur;
        cur = stop;
      }
    }
  }

  // Pairwise overlaps: intersect interval lists once per pair, then split
  // the intersection across windows.
  for (int i = 0; i < num_targets_; ++i) {
    for (int j = i + 1; j < num_targets_; ++j) {
      const auto p = static_cast<std::size_t>(pair_index(i, j));
      const auto inter = intersect(busy[static_cast<std::size_t>(i)],
                                   busy[static_cast<std::size_t>(j)]);
      for (const auto& [b, e] : inter) {
        cycle_t cur = b;
        while (cur < e) {
          const auto m = cur / window_size_;
          const cycle_t wend = (m + 1) * window_size_;
          const cycle_t stop = std::min(e, wend);
          wo_[p * w + static_cast<std::size_t>(m)] += stop - cur;
          cur = stop;
        }
      }
      cycle_t total = 0;
      cycle_t peak = 0;
      for (std::size_t m = 0; m < w; ++m) {
        total += wo_[p * w + m];
        peak = std::max(peak, wo_[p * w + m]);
      }
      pair_total_[p] = total;
      pair_max_[p] = peak;
      for (const auto& [b, e] :
           intersect(crit[static_cast<std::size_t>(i)],
                     crit[static_cast<std::size_t>(j)])) {
        pair_critical_[p] += e - b;
      }
    }
  }
}

int window_analysis::pair_index(int i, int j) const {
  STX_REQUIRE(i >= 0 && j >= 0 && i < num_targets_ && j < num_targets_ &&
                  i != j,
              "pair index out of range");
  if (i > j) std::swap(i, j);
  // Index into the upper triangle, row-major.
  return i * num_targets_ - i * (i + 1) / 2 + (j - i - 1);
}

cycle_t window_analysis::comm(int target, int window) const {
  STX_REQUIRE(target >= 0 && target < num_targets_, "target out of range");
  STX_REQUIRE(window >= 0 && window < num_windows_, "window out of range");
  return comm_[static_cast<std::size_t>(target) *
                   static_cast<std::size_t>(num_windows_) +
               static_cast<std::size_t>(window)];
}

cycle_t window_analysis::pair_window_overlap(int i, int j, int window) const {
  STX_REQUIRE(window >= 0 && window < num_windows_, "window out of range");
  if (i == j) return 0;
  return wo_[static_cast<std::size_t>(pair_index(i, j)) *
                 static_cast<std::size_t>(num_windows_) +
             static_cast<std::size_t>(window)];
}

cycle_t window_analysis::total_overlap(int i, int j) const {
  if (i == j) return 0;
  return pair_total_[static_cast<std::size_t>(pair_index(i, j))];
}

cycle_t window_analysis::max_window_overlap(int i, int j) const {
  if (i == j) return 0;
  return pair_max_[static_cast<std::size_t>(pair_index(i, j))];
}

cycle_t window_analysis::critical_overlap(int i, int j) const {
  if (i == j) return 0;
  return pair_critical_[static_cast<std::size_t>(pair_index(i, j))];
}

cycle_t window_analysis::peak_comm(int target) const {
  cycle_t peak = 0;
  for (int m = 0; m < num_windows_; ++m) {
    peak = std::max(peak, comm(target, m));
  }
  return peak;
}

cycle_t window_analysis::total_comm(int target) const {
  cycle_t total = 0;
  for (int m = 0; m < num_windows_; ++m) total += comm(target, m);
  return total;
}

}  // namespace stx::traffic
