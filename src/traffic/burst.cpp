#include "traffic/burst.h"

#include <algorithm>

#include "util/error.h"

namespace stx::traffic {

burst_stats analyze_bursts(const trace& t, int target,
                           cycle_t gap_threshold) {
  STX_REQUIRE(gap_threshold >= 0, "gap threshold must be non-negative");
  const auto intervals = t.busy_intervals(target);
  burst_stats out;
  if (intervals.empty()) return out;

  std::vector<std::pair<cycle_t, cycle_t>> bursts;
  bursts.push_back(intervals.front());
  for (std::size_t k = 1; k < intervals.size(); ++k) {
    if (intervals[k].first - bursts.back().second <= gap_threshold) {
      bursts.back().second = intervals[k].second;
    } else {
      bursts.push_back(intervals[k]);
    }
  }

  out.count = static_cast<int>(bursts.size());
  double len_sum = 0.0;
  for (const auto& [b, e] : bursts) {
    len_sum += static_cast<double>(e - b);
    out.max_length = std::max(out.max_length, e - b);
  }
  out.mean_length = len_sum / static_cast<double>(bursts.size());
  if (bursts.size() > 1) {
    double gap_sum = 0.0;
    for (std::size_t k = 1; k < bursts.size(); ++k) {
      gap_sum += static_cast<double>(bursts[k].first - bursts[k - 1].second);
    }
    out.mean_gap = gap_sum / static_cast<double>(bursts.size() - 1);
  }
  return out;
}

double typical_burst_length(const trace& t, cycle_t gap_threshold) {
  double sum = 0.0;
  int n = 0;
  for (int i = 0; i < t.num_targets(); ++i) {
    const auto s = analyze_bursts(t, i, gap_threshold);
    if (s.count == 0) continue;
    sum += s.mean_length;
    ++n;
  }
  return n == 0 ? 0.0 : sum / n;
}

}  // namespace stx::traffic
