// Variable-size analysis windows (the paper's stated future work:
// "analyze the effect of using variable simulation window sizes for the
// design for guaranteeing Quality-of-Service").
//
// A window partition is any increasing sequence of boundaries covering
// [0, horizon). The burst-adaptive factory places fine windows where the
// aggregate traffic is dense (so local variation and overlap are tracked
// precisely exactly where QoS is at risk) and coarse windows in quiet
// phases (so the model stays small and the design is not over-fitted to
// silence).
#pragma once

#include <vector>

#include "traffic/trace.h"

namespace stx::traffic {

/// A partition of [0, horizon) into consecutive windows.
class window_partition {
 public:
  /// `boundaries` must start at 0, be strictly increasing, and end at the
  /// horizon (the last element is the exclusive end of the last window).
  explicit window_partition(std::vector<cycle_t> boundaries);

  /// Equal-size windows (the paper's default analysis).
  static window_partition uniform(cycle_t horizon, cycle_t window_size);

  /// Equal-work windows: each window contains roughly the same number of
  /// aggregate busy cycles of `t`, with window lengths clamped to
  /// [min_size, max_size]. Dense phases get short windows, quiet phases
  /// long ones.
  static window_partition burst_adaptive(const trace& t,
                                         cycle_t target_busy_per_window,
                                         cycle_t min_size, cycle_t max_size);

  int num_windows() const {
    return static_cast<int>(boundaries_.size()) - 1;
  }
  cycle_t begin(int m) const;
  cycle_t end(int m) const;
  cycle_t size(int m) const { return end(m) - begin(m); }
  cycle_t horizon() const { return boundaries_.back(); }

  /// Largest window length in the partition.
  cycle_t max_size() const;

 private:
  std::vector<cycle_t> boundaries_;
};

/// Window analysis over an arbitrary partition: per-window busy cycles,
/// pairwise overlap maxima relative to each window's own size, overlap
/// totals (Eq. 1) and critical overlaps — the variable-window analogue of
/// `window_analysis`.
class variable_window_analysis {
 public:
  variable_window_analysis(const trace& t, const window_partition& part);

  const window_partition& partition() const { return part_; }
  int num_windows() const { return part_.num_windows(); }
  int num_targets() const { return num_targets_; }

  /// comm[i][m]: busy cycles of target i inside window m.
  cycle_t comm(int target, int window) const;

  /// wo[i][j][m] for i != j (0 on the diagonal).
  cycle_t pair_window_overlap(int i, int j, int window) const;

  /// om[i][j] = sum_m wo[i][j][m].
  cycle_t total_overlap(int i, int j) const;

  /// max_m wo[i][j][m] / size(m): the overlap-threshold test must be
  /// relative to each window's own capacity under variable windows.
  double max_window_overlap_fraction(int i, int j) const;

  /// Critical-stream overlap, summed over the trace.
  cycle_t critical_overlap(int i, int j) const;

 private:
  int pair_index(int i, int j) const;

  window_partition part_;
  int num_targets_ = 0;
  std::vector<cycle_t> comm_;           // target-major [i * W + m]
  std::vector<cycle_t> wo_;             // pair-major [p * W + m]
  std::vector<cycle_t> pair_total_;
  std::vector<double> pair_max_frac_;
  std::vector<cycle_t> pair_critical_;
};

}  // namespace stx::traffic
