// Window-based traffic analysis (paper Sections 4-5).
//
// The simulation period is divided into fixed-size windows. Per window we
// record the busy cycles of every target (comm[i][m], Definition 2) and
// the pairwise same-cycle overlap between targets (wo[i][j][m]). The
// synthesis MILP consumes comm per window; the overlap matrix OM (Eq. 1)
// and the conflict pre-processing consume per-pair totals and maxima.
#pragma once

#include <cstdint>
#include <vector>

#include "traffic/trace.h"

namespace stx::traffic {

/// Result of analysing a trace with a fixed window size.
class window_analysis {
 public:
  /// Splits [0, horizon) of `t` into ceil(horizon / window_size) windows
  /// and computes per-window busy cycles and pairwise overlaps.
  window_analysis(const trace& t, cycle_t window_size);

  cycle_t window_size() const { return window_size_; }
  int num_windows() const { return num_windows_; }
  int num_targets() const { return num_targets_; }

  /// comm[i][m]: busy cycles of target `i` inside window `m`.
  cycle_t comm(int target, int window) const;

  /// wo[i][j][m]: cycles in window `m` where targets i and j both receive
  /// data. Defined for i != j (0 on the diagonal); symmetric.
  cycle_t pair_window_overlap(int i, int j, int window) const;

  /// om[i][j] = sum_m wo[i][j][m] (Eq. 1). Diagonal is 0 by convention
  /// (see DESIGN.md interpretation notes).
  cycle_t total_overlap(int i, int j) const;

  /// max_m wo[i][j][m]: what the overlap-threshold pre-processing tests.
  cycle_t max_window_overlap(int i, int j) const;

  /// Same-cycle overlap restricted to critical events of both targets,
  /// summed over the trace; > 0 means the real-time streams collide and
  /// the pre-processing must separate the two targets (Sec. 7.3).
  cycle_t critical_overlap(int i, int j) const;

  /// max_m comm[i][m]: the peak per-window demand of one target.
  cycle_t peak_comm(int target) const;

  /// Total busy cycles of a target (== sum of comm over windows).
  cycle_t total_comm(int target) const;

  /// Targets carrying at least one critical event.
  const std::vector<bool>& critical_targets() const {
    return critical_targets_;
  }

 private:
  int pair_index(int i, int j) const;

  cycle_t window_size_ = 0;
  int num_windows_ = 0;
  int num_targets_ = 0;
  // comm_[i * num_windows_ + m]
  std::vector<cycle_t> comm_;
  // Per unordered pair (i < j): total, max-per-window, critical totals.
  std::vector<cycle_t> pair_total_;
  std::vector<cycle_t> pair_max_;
  std::vector<cycle_t> pair_critical_;
  // Per pair per window overlap, pair-major: wo_[pair * num_windows_ + m].
  std::vector<cycle_t> wo_;
  std::vector<bool> critical_targets_;
};

/// Cycles of same-cycle overlap between two sorted disjoint interval
/// lists, restricted to [lo, hi). Exposed for testing.
cycle_t interval_overlap(const std::vector<std::pair<cycle_t, cycle_t>>& a,
                         const std::vector<std::pair<cycle_t, cycle_t>>& b,
                         cycle_t lo, cycle_t hi);

}  // namespace stx::traffic
