// Functional traffic traces: what the crossbar synthesis consumes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace stx::traffic {

/// Simulation time in clock cycles.
using cycle_t = std::int64_t;

/// One contiguous span of cycles during which a target was receiving data
/// from some initiator (recorded by the simulator during the full-crossbar
/// collection run, Fig. 3 phase 1).
struct stream_event {
  int target = 0;        ///< receiving endpoint id
  int initiator = 0;     ///< sending endpoint id
  cycle_t begin = 0;     ///< first busy cycle (inclusive)
  cycle_t end = 0;       ///< one past the last busy cycle (exclusive)
  bool critical = false; ///< real-time stream requiring guarantees

  bool operator==(const stream_event&) const = default;
};

/// A complete traffic trace for one crossbar direction.
///
/// "Targets" here are the receiving endpoints of whichever direction is
/// being designed: memory targets for the initiator->target crossbar,
/// processor initiators for the target->initiator crossbar (the paper
/// designs the two independently with the same machinery).
class trace {
 public:
  trace() = default;
  trace(int num_targets, int num_initiators, cycle_t horizon);

  /// Appends an event; `begin < end`, ids in range, event must not extend
  /// past the horizon (the horizon grows automatically if it does).
  void add(const stream_event& e);

  /// Grows the horizon to at least `h` (trailing silence counts as part
  /// of the observation period for window analysis).
  void extend_horizon(cycle_t h);

  int num_targets() const { return num_targets_; }
  int num_initiators() const { return num_initiators_; }
  cycle_t horizon() const { return horizon_; }
  const std::vector<stream_event>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Total busy cycles per target over the whole trace.
  std::vector<cycle_t> total_busy_per_target() const;

  /// True when any event to `target` is marked critical.
  bool target_has_critical(int target) const;

  /// Sorted, disjoint busy intervals of one target (overlapping or
  /// adjacent events to the same target are merged).
  std::vector<std::pair<cycle_t, cycle_t>> busy_intervals(
      int target, bool critical_only = false) const;

  /// Exact equality: dimensions, horizon and the full event sequence —
  /// what "bit-identical traces" means wherever runs are compared
  /// differentially (segmented-run determinism tests; historically the
  /// polling/event kernel-equivalence invariant).
  bool operator==(const trace&) const = default;

  /// Writes / reads the portable single-file text format (`stxtrace v1`).
  void save(std::ostream& out) const;
  static trace load(std::istream& in);
  void save_file(const std::string& path) const;
  static trace load_file(const std::string& path);

 private:
  int num_targets_ = 0;
  int num_initiators_ = 0;
  cycle_t horizon_ = 0;
  std::vector<stream_event> events_;
};

}  // namespace stx::traffic
