#include "traffic/variable_windows.h"

#include <algorithm>

#include "traffic/windows.h"
#include "util/error.h"

namespace stx::traffic {

window_partition::window_partition(std::vector<cycle_t> boundaries)
    : boundaries_(std::move(boundaries)) {
  STX_REQUIRE(boundaries_.size() >= 2, "partition needs at least one window");
  STX_REQUIRE(boundaries_.front() == 0, "partition must start at cycle 0");
  for (std::size_t k = 1; k < boundaries_.size(); ++k) {
    STX_REQUIRE(boundaries_[k] > boundaries_[k - 1],
                "partition boundaries must be strictly increasing");
  }
}

window_partition window_partition::uniform(cycle_t horizon,
                                           cycle_t window_size) {
  STX_REQUIRE(horizon > 0 && window_size > 0, "uniform partition arguments");
  std::vector<cycle_t> bounds;
  for (cycle_t b = 0; b < horizon; b += window_size) bounds.push_back(b);
  bounds.push_back(horizon);
  return window_partition(std::move(bounds));
}

window_partition window_partition::burst_adaptive(
    const trace& t, cycle_t target_busy_per_window, cycle_t min_size,
    cycle_t max_size) {
  STX_REQUIRE(target_busy_per_window > 0, "target busy must be positive");
  STX_REQUIRE(min_size > 0 && min_size <= max_size,
              "window size clamp malformed");
  const cycle_t horizon = std::max<cycle_t>(t.horizon(), 1);

  // Aggregate activity as merged per-target interval lists; walk forward
  // placing a boundary whenever the accumulated busy mass reaches the
  // target (clamped to [min_size, max_size] wall-clock length).
  std::vector<std::vector<std::pair<cycle_t, cycle_t>>> busy;
  busy.reserve(static_cast<std::size_t>(t.num_targets()));
  for (int i = 0; i < t.num_targets(); ++i) {
    busy.push_back(t.busy_intervals(i));
  }
  auto busy_in = [&](cycle_t lo, cycle_t hi) {
    cycle_t acc = 0;
    for (const auto& list : busy) {
      for (const auto& [b, e] : list) {
        if (b >= hi) break;
        acc += std::max<cycle_t>(0, std::min(e, hi) - std::max(b, lo));
      }
    }
    return acc;
  };

  std::vector<cycle_t> bounds = {0};
  cycle_t cursor = 0;
  while (cursor < horizon) {
    // Grow the window until it holds enough busy mass or hits max_size.
    cycle_t lo = cursor + min_size;
    cycle_t hi = std::min(cursor + max_size, horizon);
    if (lo >= horizon) {
      bounds.push_back(horizon);
      break;
    }
    // Binary search the smallest end in [lo, hi] reaching the target.
    cycle_t left = lo, right = hi;
    while (left < right) {
      const cycle_t mid = left + (right - left) / 2;
      if (busy_in(cursor, mid) >= target_busy_per_window) {
        right = mid;
      } else {
        left = mid + 1;
      }
    }
    cursor = left;
    bounds.push_back(cursor);
  }
  if (bounds.back() != horizon) bounds.push_back(horizon);
  return window_partition(std::move(bounds));
}

cycle_t window_partition::begin(int m) const {
  STX_REQUIRE(m >= 0 && m < num_windows(), "window index out of range");
  return boundaries_[static_cast<std::size_t>(m)];
}

cycle_t window_partition::end(int m) const {
  STX_REQUIRE(m >= 0 && m < num_windows(), "window index out of range");
  return boundaries_[static_cast<std::size_t>(m) + 1];
}

cycle_t window_partition::max_size() const {
  cycle_t best = 0;
  for (int m = 0; m < num_windows(); ++m) best = std::max(best, size(m));
  return best;
}

namespace {

/// Busy cycles of a sorted interval list inside [lo, hi).
cycle_t clip_total(const std::vector<std::pair<cycle_t, cycle_t>>& list,
                   cycle_t lo, cycle_t hi) {
  cycle_t acc = 0;
  for (const auto& [b, e] : list) {
    if (b >= hi) break;
    acc += std::max<cycle_t>(0, std::min(e, hi) - std::max(b, lo));
  }
  return acc;
}

}  // namespace

variable_window_analysis::variable_window_analysis(
    const trace& t, const window_partition& part)
    : part_(part), num_targets_(t.num_targets()) {
  const auto n = static_cast<std::size_t>(num_targets_);
  const auto w = static_cast<std::size_t>(part_.num_windows());
  comm_.assign(n * w, 0);
  const std::size_t pairs = n * (n - 1) / 2;
  wo_.assign(pairs * w, 0);
  pair_total_.assign(pairs, 0);
  pair_max_frac_.assign(pairs, 0.0);
  pair_critical_.assign(pairs, 0);

  std::vector<std::vector<std::pair<cycle_t, cycle_t>>> busy(n), crit(n);
  for (int i = 0; i < num_targets_; ++i) {
    busy[static_cast<std::size_t>(i)] = t.busy_intervals(i);
    crit[static_cast<std::size_t>(i)] = t.busy_intervals(i, true);
  }

  for (int i = 0; i < num_targets_; ++i) {
    for (int m = 0; m < part_.num_windows(); ++m) {
      comm_[static_cast<std::size_t>(i) * w + static_cast<std::size_t>(m)] =
          clip_total(busy[static_cast<std::size_t>(i)], part_.begin(m),
                     part_.end(m));
    }
  }

  for (int i = 0; i < num_targets_; ++i) {
    for (int j = i + 1; j < num_targets_; ++j) {
      const auto p = static_cast<std::size_t>(pair_index(i, j));
      for (int m = 0; m < part_.num_windows(); ++m) {
        const cycle_t ov = interval_overlap(
            busy[static_cast<std::size_t>(i)],
            busy[static_cast<std::size_t>(j)], part_.begin(m), part_.end(m));
        wo_[p * w + static_cast<std::size_t>(m)] = ov;
        pair_total_[p] += ov;
        pair_max_frac_[p] = std::max(
            pair_max_frac_[p],
            static_cast<double>(ov) / static_cast<double>(part_.size(m)));
      }
      pair_critical_[p] =
          interval_overlap(crit[static_cast<std::size_t>(i)],
                           crit[static_cast<std::size_t>(j)], 0,
                           part_.horizon());
    }
  }
}

int variable_window_analysis::pair_index(int i, int j) const {
  STX_REQUIRE(i >= 0 && j >= 0 && i < num_targets_ && j < num_targets_ &&
                  i != j,
              "pair index out of range");
  if (i > j) std::swap(i, j);
  return i * num_targets_ - i * (i + 1) / 2 + (j - i - 1);
}

cycle_t variable_window_analysis::comm(int target, int window) const {
  STX_REQUIRE(target >= 0 && target < num_targets_, "target out of range");
  STX_REQUIRE(window >= 0 && window < num_windows(), "window out of range");
  return comm_[static_cast<std::size_t>(target) *
                   static_cast<std::size_t>(num_windows()) +
               static_cast<std::size_t>(window)];
}

cycle_t variable_window_analysis::pair_window_overlap(int i, int j,
                                                      int window) const {
  STX_REQUIRE(window >= 0 && window < num_windows(), "window out of range");
  if (i == j) return 0;
  return wo_[static_cast<std::size_t>(pair_index(i, j)) *
                 static_cast<std::size_t>(num_windows()) +
             static_cast<std::size_t>(window)];
}

cycle_t variable_window_analysis::total_overlap(int i, int j) const {
  if (i == j) return 0;
  return pair_total_[static_cast<std::size_t>(pair_index(i, j))];
}

double variable_window_analysis::max_window_overlap_fraction(int i,
                                                             int j) const {
  if (i == j) return 0.0;
  return pair_max_frac_[static_cast<std::size_t>(pair_index(i, j))];
}

cycle_t variable_window_analysis::critical_overlap(int i, int j) const {
  if (i == j) return 0;
  return pair_critical_[static_cast<std::size_t>(pair_index(i, j))];
}

}  // namespace stx::traffic
