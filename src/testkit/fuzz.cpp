#include "testkit/fuzz.h"

#include <exception>
#include <string>
#include <string_view>

#include "gen/json.h"
#include "obs/obs.h"

namespace stx::testkit {

namespace {

constexpr std::string_view kOraclePrefix = "oracle.";
constexpr std::string_view kEvalsSuffix = ".evals";

/// Extracts the campaign's per-invariant oracle costs as the delta of
/// "oracle.<name>.evals" counters and "oracle.<name>" wall accumulators
/// between two registry snapshots.
std::vector<invariant_cost> invariant_costs(const obs::metrics_snapshot& before,
                                            const obs::metrics_snapshot& after) {
  std::vector<invariant_cost> out;
  for (const auto& c : after.counters) {
    if (c.name.rfind(kOraclePrefix, 0) != 0) continue;
    if (c.name.size() <= kOraclePrefix.size() + kEvalsSuffix.size() ||
        c.name.compare(c.name.size() - kEvalsSuffix.size(),
                       kEvalsSuffix.size(), kEvalsSuffix) != 0) {
      continue;
    }
    const std::string base =
        c.name.substr(0, c.name.size() - kEvalsSuffix.size());
    invariant_cost cost;
    cost.invariant = base.substr(kOraclePrefix.size());
    cost.evaluations = c.value - before.counter(c.name);
    double wall = 0.0;
    if (const auto* w = after.find_wall(base)) wall = w->total_seconds;
    if (const auto* w = before.find_wall(base)) wall -= w->total_seconds;
    cost.wall_seconds = wall;
    out.push_back(std::move(cost));
  }
  return out;  // counters are name-sorted, so this is too
}

}  // namespace

std::vector<violation> run_scenario(const scenario& s,
                                    const oracle_options& oopts,
                                    xbar::flow_report* report_out,
                                    explore::trace_cache* cache) {
  try {
    const auto app = s.make_app();
    const auto opts = s.make_flow_options();
    // The cache identity is the canonical token, not s.name(): two
    // scenarios may share a display name but never an encoding.
    const auto traces = cache != nullptr
                            ? cache->traces(app, opts, encode(s))
                            : std::make_shared<const xbar::collected_traces>(
                                  xbar::collect_traces(app, opts));
    const auto report = xbar::design_from_traces(app, *traces, opts);
    auto violations =
        check_flow_invariants(app, *traces, opts, report, oopts);
    if (violations.empty() && report_out != nullptr) *report_out = report;
    return violations;
  } catch (const std::exception& e) {
    return {{"exception", e.what()}};
  }
}

fuzz_report run_fuzz(const fuzz_options& opts, const fuzz_progress& progress) {
  fuzz_report out;
  out.seed = opts.seed;
  out.runs = opts.runs;
  obs::span campaign_span("fuzz.campaign", {{"runs", opts.runs}});
  const auto obs_before = obs::enabled() ? obs::snapshot()
                                         : obs::metrics_snapshot{};
  const rng master(opts.seed);
  for (int k = 0; k < opts.runs; ++k) {
    // Each run samples from its own child stream, so run k reproduces
    // without replaying runs 0..k-1.
    rng r = master.split(static_cast<std::uint64_t>(k) + 1);
    const auto s = sample_scenario(r);
    xbar::flow_report flow;
    auto violations = run_scenario(s, opts.oracle, &flow, opts.cache);
    if (violations.empty()) {
      out.total_packets += flow.designed.packets + flow.full.packets;
      out.total_buses_designed += flow.designed_buses;
      if (progress) progress(k, s, false);
      continue;
    }
    fuzz_failure f;
    f.original = s;
    f.violations = std::move(violations);
    f.shrunk = s;
    f.shrunk_violations = f.violations;
    if (opts.shrink) {
      const auto res = shrink(
          s,
          [&](const scenario& c) {
            return !run_scenario(c, opts.oracle, nullptr, opts.cache)
                        .empty();
          },
          opts.shrinker);
      f.shrunk = res.best;
      f.shrink_attempts = res.attempts;
      if (res.improvements > 0) {
        f.shrunk_violations =
            run_scenario(res.best, opts.oracle, nullptr, opts.cache);
      }
    }
    out.failures.push_back(std::move(f));
    if (progress) progress(k, s, true);
  }
  if (obs::enabled()) {
    out.invariants = invariant_costs(obs_before, obs::snapshot());
  }
  return out;
}

namespace {

gen::json::array violations_json(const std::vector<violation>& vs) {
  gen::json::array out;
  for (const auto& v : vs) {
    out.push_back(gen::json::object{
        {"invariant", v.invariant},
        {"detail", v.detail},
    });
  }
  return out;
}

}  // namespace

std::string render_json(const fuzz_report& report) {
  gen::json::array failures;
  for (const auto& f : report.failures) {
    failures.push_back(gen::json::object{
        {"scenario", encode(f.original)},
        {"violations", violations_json(f.violations)},
        {"shrunk_scenario", encode(f.shrunk)},
        {"shrunk_violations", violations_json(f.shrunk_violations)},
        {"shrink_attempts", f.shrink_attempts},
        {"repro",
         "xbar-fuzz --scenario='" + encode(f.shrunk) + "'"},
    });
  }
  gen::json::array invariants;
  for (const auto& c : report.invariants) {
    invariants.push_back(gen::json::object{
        {"invariant", c.invariant},
        {"evaluations", c.evaluations},
        // Wall time is the one non-deterministic field in this report;
        // the name says so, matching stx-metrics/v1's convention.
        {"wall_ms_nondeterministic", c.wall_seconds * 1e3},
    });
  }
  const gen::json::value doc = gen::json::object{
      {"schema", "stx-fuzz-report/v2"},
      {"seed", static_cast<std::int64_t>(report.seed)},
      {"runs", report.runs},
      {"failures", std::move(failures)},
      {"total_packets", report.total_packets},
      {"total_buses_designed", report.total_buses_designed},
      {"invariants", std::move(invariants)},
  };
  return gen::json::dump(doc);
}

}  // namespace stx::testkit
