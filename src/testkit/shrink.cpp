#include "testkit/shrink.h"

#include <algorithm>

namespace stx::testkit {

namespace {

/// Re-clamps the fields whose valid range depends on the shrunk shape.
scenario clamped(scenario s) {
  s.hotspot_target = std::min(s.hotspot_target, s.num_targets - 1);
  s.critical_cores = std::min(s.critical_cores, s.num_initiators);
  return s;
}

void push_if_changed(std::vector<scenario>* out, const scenario& base,
                     const scenario& candidate) {
  const auto c = clamped(candidate);
  if (!(c == base)) out->push_back(c);
}

}  // namespace

std::vector<scenario> shrink_candidates(const scenario& s) {
  std::vector<scenario> out;
  auto with = [&](auto mutate) {
    scenario c = s;
    mutate(c);
    push_if_changed(&out, s, c);
  };

  // Structural reductions first: losing half the cores shrinks every
  // downstream artifact (trace, model, simulation) at once.
  with([](scenario& c) { c.num_initiators = std::max(1, c.num_initiators / 2); });
  with([](scenario& c) { c.num_targets = std::max(1, c.num_targets / 2); });
  with([](scenario& c) { c.num_initiators = std::max(1, c.num_initiators - 1); });
  with([](scenario& c) { c.num_targets = std::max(1, c.num_targets - 1); });
  with([](scenario& c) { c.horizon = std::max<traffic::cycle_t>(4000, c.horizon / 2); });

  // Traffic-shape reductions.
  with([](scenario& c) {
    c.burst_cycles = std::max<traffic::cycle_t>(c.packet_cells, c.burst_cycles / 2);
  });
  with([](scenario& c) { c.packet_cells = std::max(1, c.packet_cells / 2); });
  with([](scenario& c) { c.gap_cycles /= 2; });

  // Feature removals: a failure that survives without the feature is a
  // simpler failure.
  with([](scenario& c) { c.phase_spread = 0.0; });
  with([](scenario& c) { c.read_fraction = 0.0; });
  with([](scenario& c) { c.hotspot_fraction = 0.0; });
  with([](scenario& c) { c.critical_cores = 0; });
  with([](scenario& c) { c.max_targets_per_bus = 0; });
  with([](scenario& c) {
    c.window_size = std::max<traffic::cycle_t>(100, c.window_size / 2);
  });
  return out;
}

shrink_result shrink(const scenario& failing,
                     const scenario_predicate& still_fails,
                     const shrink_options& opts) {
  shrink_result res;
  res.best = failing;
  bool progress = true;
  while (progress && res.attempts < opts.max_attempts) {
    progress = false;
    for (const auto& candidate : shrink_candidates(res.best)) {
      if (res.attempts >= opts.max_attempts) break;
      ++res.attempts;
      if (still_fails(candidate)) {
        res.best = candidate;
        ++res.improvements;
        progress = true;
        break;  // restart from the new, smaller scenario
      }
    }
  }
  return res;
}

}  // namespace stx::testkit
