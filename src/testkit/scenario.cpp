#include "testkit/scenario.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace stx::testkit {

void scenario::validate() const {
  // Upper bounds keep every decoded scenario actually runnable: without
  // them an absurd field (e.g. burst=2^33) would overflow downstream
  // arithmetic and silently simulate a DIFFERENT app than the seed
  // string claims, breaking the reproduction contract.
  STX_REQUIRE(num_initiators >= 1 && num_initiators <= 1024,
              "num_initiators out of [1, 1024]");
  STX_REQUIRE(num_targets >= 1 && num_targets <= 1024,
              "num_targets out of [1, 1024]");
  STX_REQUIRE(burst_cycles >= 1 && burst_cycles <= 10'000'000,
              "burst_cycles out of [1, 1e7]");
  STX_REQUIRE(packet_cells >= 1 && packet_cells <= 1'000'000,
              "packet_cells out of [1, 1e6]");
  STX_REQUIRE(gap_cycles >= 0 && gap_cycles <= 100'000'000,
              "gap_cycles out of [0, 1e8]");
  STX_REQUIRE(phase_spread >= 0.0 && phase_spread <= 1.0,
              "phase_spread out of [0,1]");
  STX_REQUIRE(read_fraction >= 0.0 && read_fraction <= 1.0,
              "read_fraction out of [0,1]");
  STX_REQUIRE(hotspot_fraction >= 0.0 && hotspot_fraction < 1.0,
              "hotspot_fraction out of [0,1)");
  STX_REQUIRE(hotspot_target >= 0 && hotspot_target < num_targets,
              "hotspot_target out of range");
  STX_REQUIRE(critical_cores >= 0 && critical_cores <= num_initiators,
              "critical_cores out of range");
  STX_REQUIRE(window_size >= 1 && window_size <= 10'000'000,
              "window_size out of [1, 1e7]");
  STX_REQUIRE(overlap_threshold >= 0.0 && overlap_threshold <= 1.0,
              "overlap_threshold out of [0,1]");
  STX_REQUIRE(max_targets_per_bus >= 0, "max_targets_per_bus negative");
  STX_REQUIRE(horizon >= 1000 && horizon <= 100'000'000,
              "horizon out of [1000, 1e8]");
}

std::string scenario::name() const {
  return "fuzz-" + std::to_string(num_initiators) + "x" +
         std::to_string(num_targets) + "-s" + std::to_string(seed);
}

workloads::app_spec scenario::make_app() const {
  validate();
  workloads::app_spec app;
  app.name = name();
  app.num_initiators = num_initiators;
  app.num_targets = num_targets;
  for (int t = 0; t < num_targets; ++t) {
    app.target_names.push_back("Mem" + std::to_string(t));
  }

  // Safe in int: validate() caps burst_cycles at 1e7 and floors
  // packet_cells at 1.
  const int packets_per_burst = std::max<int>(
      1, static_cast<int>(burst_cycles / packet_cells));

  // Per-core traffic mixes come from decorrelated child streams of the
  // scenario seed, so the program shapes vary between cores while the
  // whole application stays a pure function of the scenario record.
  rng master(seed);
  for (int i = 0; i < num_initiators; ++i) {
    rng mix = master.split(static_cast<std::uint64_t>(i) + 1);
    const int home = i % num_targets;
    std::vector<sim::core_op> prog;

    // One-time phase prologue, as in workloads::make_synthetic: staggered
    // burst starts give the pairwise-overlap gradient the window analysis
    // feeds on.
    const auto offset = static_cast<sim::cycle_t>(
        static_cast<double>(i) * phase_spread *
        static_cast<double>(burst_cycles));
    std::size_t loop_start = 0;
    if (offset > 0) {
      sim::core_op warm;
      warm.op = sim::core_op::kind::compute;
      warm.cycles = offset;
      prog.push_back(warm);
      loop_start = 1;
    }

    for (int p = 0; p < packets_per_burst; ++p) {
      sim::core_op op;
      op.cells = packet_cells;
      const bool to_hotspot =
          hotspot_fraction > 0.0 && mix.chance(hotspot_fraction);
      op.target = to_hotspot ? hotspot_target : home;
      op.op = mix.chance(read_fraction) ? sim::core_op::kind::read
                                        : sim::core_op::kind::write;
      op.critical = i < critical_cores && op.target == home;
      prog.push_back(op);
    }

    if (gap_cycles > 0) {
      sim::core_op gap;
      gap.op = sim::core_op::kind::compute;
      gap.cycles = gap_cycles;
      prog.push_back(gap);
    }

    app.programs.push_back(std::move(prog));
    app.loop_starts.push_back(loop_start);
  }
  app.validate();
  return app;
}

xbar::flow_options scenario::make_flow_options() const {
  xbar::flow_options opts;
  opts.horizon = horizon;
  opts.seed = seed;
  opts.synth.params.window_size = window_size;
  opts.synth.params.overlap_threshold = overlap_threshold;
  opts.synth.params.max_targets_per_bus = max_targets_per_bus;
  return opts;
}

scenario sample_scenario(rng& r) {
  scenario s;
  s.seed = r.next_u64();
  s.num_initiators = static_cast<int>(r.uniform_int(2, 8));
  s.num_targets = static_cast<int>(r.uniform_int(2, 8));
  s.burst_cycles = r.uniform_int(100, 1600);
  s.packet_cells = static_cast<int>(r.uniform_int(4, 32));
  s.gap_cycles = r.uniform_int(200, 4000);
  s.phase_spread = r.uniform01();
  s.read_fraction = r.uniform(0.0, 0.5);
  if (r.chance(0.4)) {
    s.hotspot_fraction = r.uniform(0.05, 0.35);
    s.hotspot_target = static_cast<int>(r.uniform_int(0, s.num_targets - 1));
  }
  if (r.chance(0.3)) {
    s.critical_cores =
        static_cast<int>(r.uniform_int(1, std::min(2, s.num_initiators)));
  }
  static constexpr traffic::cycle_t kWindows[] = {200, 400, 800, 1600};
  s.window_size = kWindows[r.uniform_int(0, 3)];
  s.overlap_threshold = r.uniform(0.10, 0.50);
  s.max_targets_per_bus =
      r.chance(0.25) ? 0 : static_cast<int>(r.uniform_int(2, 5));
  s.horizon = r.uniform_int(15'000, 40'000);
  s.validate();
  return s;
}

big_fabric_case sample_big_fabric_case(rng& r) {
  big_fabric_case c;
  c.params = workloads::sample_big_fabric_params(r);
  c.opts.seed = r.next_u64();
  static constexpr traffic::cycle_t kWindows[] = {200, 400, 800, 1600};
  c.opts.synth.params.window_size = kWindows[r.uniform_int(0, 3)];
  c.opts.synth.params.overlap_threshold = r.uniform(0.10, 0.50);
  // A cardinality cap is what makes large fabrics need many buses; keep
  // it tight relative to the target count so the binding tree is deep.
  c.opts.synth.params.max_targets_per_bus =
      static_cast<int>(r.uniform_int(3, 8));
  c.opts.horizon = r.uniform_int(15'000, 30'000);
  return c;
}

namespace {

std::string format_double(double d) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return buf;
}

std::int64_t parse_i64(const std::string& key, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const auto v = std::strtoll(text.c_str(), &end, 10);
  STX_REQUIRE(end == text.c_str() + text.size() && !text.empty() &&
                  errno == 0,
              "scenario field " + key + " has a malformed integer '" + text +
                  "'");
  return v;
}

std::uint64_t parse_u64(const std::string& key, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const auto v = std::strtoull(text.c_str(), &end, 10);
  STX_REQUIRE(end == text.c_str() + text.size() && !text.empty() &&
                  errno == 0,
              "scenario field " + key + " has a malformed integer '" + text +
                  "'");
  return v;
}

double parse_f64(const std::string& key, const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  STX_REQUIRE(end == text.c_str() + text.size() && !text.empty(),
              "scenario field " + key + " has a malformed number '" + text +
                  "'");
  return v;
}

constexpr const char* kMagic = "stxfuzz/v1";

}  // namespace

std::string encode(const scenario& s) {
  std::ostringstream out;
  out << kMagic << " seed=" << s.seed << " ini=" << s.num_initiators
      << " tgt=" << s.num_targets << " burst=" << s.burst_cycles
      << " cells=" << s.packet_cells << " gap=" << s.gap_cycles
      << " spread=" << format_double(s.phase_spread)
      << " read=" << format_double(s.read_fraction)
      << " hotfrac=" << format_double(s.hotspot_fraction)
      << " hot=" << s.hotspot_target << " crit=" << s.critical_cores
      << " win=" << s.window_size
      << " thr=" << format_double(s.overlap_threshold)
      << " maxtb=" << s.max_targets_per_bus << " horizon=" << s.horizon;
  return out.str();
}

scenario decode(const std::string& line) {
  const auto tokens = split_list(line, ' ');
  STX_REQUIRE(!tokens.empty() && tokens[0] == kMagic,
              "scenario string must start with '" + std::string(kMagic) +
                  "'");
  scenario s;
  for (std::size_t k = 1; k < tokens.size(); ++k) {
    const auto& tok = tokens[k];
    const auto eq = tok.find('=');
    STX_REQUIRE(eq != std::string::npos,
                "scenario token '" + tok + "' is not key=value");
    const auto key = tok.substr(0, eq);
    const auto val = tok.substr(eq + 1);
    if (key == "seed") {
      s.seed = parse_u64(key, val);
    } else if (key == "ini") {
      s.num_initiators = static_cast<int>(parse_i64(key, val));
    } else if (key == "tgt") {
      s.num_targets = static_cast<int>(parse_i64(key, val));
    } else if (key == "burst") {
      s.burst_cycles = parse_i64(key, val);
    } else if (key == "cells") {
      s.packet_cells = static_cast<int>(parse_i64(key, val));
    } else if (key == "gap") {
      s.gap_cycles = parse_i64(key, val);
    } else if (key == "spread") {
      s.phase_spread = parse_f64(key, val);
    } else if (key == "read") {
      s.read_fraction = parse_f64(key, val);
    } else if (key == "hotfrac") {
      s.hotspot_fraction = parse_f64(key, val);
    } else if (key == "hot") {
      s.hotspot_target = static_cast<int>(parse_i64(key, val));
    } else if (key == "crit") {
      s.critical_cores = static_cast<int>(parse_i64(key, val));
    } else if (key == "win") {
      s.window_size = parse_i64(key, val);
    } else if (key == "thr") {
      s.overlap_threshold = parse_f64(key, val);
    } else if (key == "maxtb") {
      s.max_targets_per_bus = static_cast<int>(parse_i64(key, val));
    } else if (key == "horizon") {
      s.horizon = parse_i64(key, val);
    } else {
      throw invalid_argument_error("unknown scenario field '" + key + "'");
    }
  }
  s.validate();
  return s;
}

}  // namespace stx::testkit
