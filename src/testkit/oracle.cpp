#include "testkit/oracle.h"

#include <algorithm>
#include <sstream>

#include "obs/obs.h"
#include "util/error.h"
#include "xbar/synthesis.h"

namespace stx::testkit {

namespace {

void add(std::vector<violation>* out, const std::string& invariant,
         const std::string& detail) {
  out->push_back({invariant, detail});
}

/// Per-invariant telemetry: one evaluation counter bump plus a span whose
/// wall time accumulates under the same "oracle.<name>" key, so fuzz
/// campaign reports can show which oracles dominate the run time.
struct check_scope {
  explicit check_scope(const char* name) : span_(name) {
    if (obs::enabled()) {
      obs::add_counter(std::string(name) + ".evals", 1);
    }
  }
  obs::span span_;
};

struct direction_view {
  const char* label;
  const xbar::crossbar_design* design;
  /// traffic[sender][receiver] of this direction.
  const std::vector<std::vector<traffic::cycle_t>>* traffic;
  int num_receivers;
};

std::vector<direction_view> directions(const xbar::flow_report& report) {
  return {
      {"request", &report.request_design, &report.request_traffic,
       report.num_targets},
      {"response", &report.response_design, &report.response_traffic,
       report.num_initiators},
  };
}

}  // namespace

std::string to_string(const std::vector<violation>& v) {
  std::ostringstream out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out << '\n';
    out << v[i].invariant << ": " << v[i].detail;
  }
  return out.str();
}

void check_shape(const workloads::app_spec& app,
                 const xbar::flow_report& report,
                 std::vector<violation>* out) {
  check_scope scope("oracle.shape");
  if (report.num_initiators != app.num_initiators ||
      report.num_targets != app.num_targets) {
    add(out, "shape",
        "report is " + std::to_string(report.num_initiators) + "x" +
            std::to_string(report.num_targets) + " but the app is " +
            std::to_string(app.num_initiators) + "x" +
            std::to_string(app.num_targets));
  }
  if (static_cast<int>(report.target_names.size()) != report.num_targets) {
    add(out, "shape",
        "target_names has " + std::to_string(report.target_names.size()) +
            " entries for " + std::to_string(report.num_targets) +
            " targets");
  }
  for (const auto& d : directions(report)) {
    const int senders = d.design == &report.request_design
                            ? report.num_initiators
                            : report.num_targets;
    if (d.design->num_targets != d.num_receivers) {
      add(out, "shape",
          std::string(d.label) + " design covers " +
              std::to_string(d.design->num_targets) + " endpoints, app has " +
              std::to_string(d.num_receivers));
    }
    if (static_cast<int>(d.design->binding.size()) != d.num_receivers) {
      add(out, "shape",
          std::string(d.label) + " binding has " +
              std::to_string(d.design->binding.size()) + " entries for " +
              std::to_string(d.num_receivers) + " endpoints");
    }
    if (static_cast<int>(d.traffic->size()) != senders) {
      add(out, "shape",
          std::string(d.label) + " traffic matrix has " +
              std::to_string(d.traffic->size()) + " rows for " +
              std::to_string(senders) + " senders");
      continue;
    }
    for (const auto& row : *d.traffic) {
      if (static_cast<int>(row.size()) != d.num_receivers) {
        add(out, "shape",
            std::string(d.label) + " traffic row has " +
                std::to_string(row.size()) + " columns for " +
                std::to_string(d.num_receivers) + " receivers");
        break;
      }
    }
  }
}

void check_coverage(const xbar::flow_report& report,
                    std::vector<violation>* out) {
  check_scope scope("oracle.coverage");
  for (const auto& d : directions(report)) {
    const auto& binding = d.design->binding;
    const int buses = d.design->num_buses;
    std::vector<bool> bus_used(static_cast<std::size_t>(std::max(buses, 0)),
                               false);
    for (int e = 0;
         e < std::min<int>(d.num_receivers,
                           static_cast<int>(binding.size()));
         ++e) {
      const int b = binding[static_cast<std::size_t>(e)];
      traffic::cycle_t total = 0;
      for (const auto& row : *d.traffic) {
        if (e < static_cast<int>(row.size())) {
          total += row[static_cast<std::size_t>(e)];
        }
      }
      if (b < 0 || b >= buses) {
        // A traffic-carrying endpoint with no valid bus is an orphan: the
        // design does not route a link phase 1 proved is needed.
        add(out, "coverage",
            std::string(d.label) + " endpoint " + std::to_string(e) +
                (total > 0 ? " (carrying traffic)" : "") +
                " is bound to invalid bus " + std::to_string(b) + " of " +
                std::to_string(buses));
        continue;
      }
      bus_used[static_cast<std::size_t>(b)] = true;
    }
    for (int b = 0; b < buses; ++b) {
      if (!bus_used[static_cast<std::size_t>(b)]) {
        add(out, "coverage",
            std::string(d.label) + " bus " + std::to_string(b) +
                " has no endpoint bound (dead bus contradicts bus-count "
                "minimality)");
      }
    }
  }
}

void check_bus_bounds(const workloads::app_spec& app,
                      const xbar::flow_report& report,
                      std::vector<violation>* out) {
  check_scope scope("oracle.bus-bound");
  for (const auto& d : directions(report)) {
    if (d.design->num_buses < 1 ||
        d.design->num_buses > d.num_receivers) {
      add(out, "bus-bound",
          std::string(d.label) + " direction has " +
              std::to_string(d.design->num_buses) + " buses for " +
              std::to_string(d.num_receivers) +
              " endpoints (full crossbar is the ceiling)");
    }
  }
  if (report.full_buses != app.total_cores()) {
    add(out, "bus-bound",
        "full_buses " + std::to_string(report.full_buses) +
            " != app total cores " + std::to_string(app.total_cores()));
  }
  const int sum = report.request_design.num_buses +
                  report.response_design.num_buses;
  if (report.designed_buses != sum) {
    add(out, "bus-bound",
        "designed_buses " + std::to_string(report.designed_buses) +
            " != request + response bus count " + std::to_string(sum));
  }
  if (report.designed_buses > report.full_buses) {
    add(out, "bus-bound",
        "design uses " + std::to_string(report.designed_buses) +
            " buses, more than the full crossbar's " +
            std::to_string(report.full_buses));
  }
}

void check_latency(const xbar::flow_report& report,
                   const oracle_options& opts,
                   std::vector<violation>* out) {
  check_scope scope("oracle.latency");
  const auto& dm = report.designed;
  const auto& fm = report.full;
  if (fm.packets > 0 && dm.packets == 0) {
    add(out, "latency",
        "designed configuration moved no packets while the full crossbar "
        "moved " +
            std::to_string(fm.packets) + " (starvation/deadlock)");
    return;
  }
  if (fm.iterations > 0 && dm.iterations == 0) {
    add(out, "latency",
        "designed configuration completed no core iterations while the "
        "full crossbar completed " +
            std::to_string(fm.iterations));
  }
  if (dm.packets > 0 && fm.packets > 0) {
    const double bound =
        fm.avg_latency * opts.latency_factor + opts.latency_slack_cycles;
    if (dm.avg_latency > bound) {
      std::ostringstream msg;
      msg << "designed avg latency " << dm.avg_latency
          << " exceeds the degradation bound " << bound << " (full "
          << fm.avg_latency << " * " << opts.latency_factor << " + "
          << opts.latency_slack_cycles << ")";
      add(out, "latency", msg.str());
    }
  }
}

void check_metrics(const xbar::flow_report& report,
                   std::vector<violation>* out) {
  check_scope scope("oracle.metrics");
  const struct {
    const char* label;
    const xbar::validation_metrics* m;
  } runs[] = {{"designed", &report.designed}, {"full", &report.full}};
  for (const auto& r : runs) {
    if (r.m->packets == 0) continue;  // validation skipped or no traffic
    if (r.m->avg_latency > r.m->max_latency ||
        r.m->p99_latency > r.m->max_latency) {
      add(out, "metrics",
          std::string(r.label) + " latency stats disordered (avg " +
              std::to_string(r.m->avg_latency) + ", p99 " +
              std::to_string(r.m->p99_latency) + ", max " +
              std::to_string(r.m->max_latency) + ")");
    }
    if (r.m->avg_critical > 0.0 && r.m->avg_critical > r.m->max_critical) {
      add(out, "metrics",
          std::string(r.label) + " critical latency stats disordered");
    }
  }
  if (report.designed.packets > 0 &&
      report.designed.total_buses != report.designed_buses) {
    add(out, "metrics",
        "designed run used " + std::to_string(report.designed.total_buses) +
            " buses but the report claims " +
            std::to_string(report.designed_buses));
  }
  if (report.full.packets > 0 &&
      report.full.total_buses != report.full_buses) {
    add(out, "metrics",
        "full-crossbar run used " + std::to_string(report.full.total_buses) +
            " buses but the report claims " +
            std::to_string(report.full_buses));
  }
}

void check_feasibility(const xbar::collected_traces& traces,
                       const xbar::flow_options& opts,
                       const xbar::flow_report& report,
                       std::vector<violation>* out) {
  check_scope scope("oracle.feasibility");
  const struct {
    const char* label;
    const traffic::trace* trace;
    const xbar::crossbar_design* design;
    bool request;
  } dirs[] = {
      {"request", &traces.request, &report.request_design, true},
      {"response", &traces.response, &report.response_design, false},
  };
  for (const auto& d : dirs) {
    const auto params = xbar::effective_synthesis_params(opts, d.request);
    const auto input = xbar::input_from_trace(*d.trace, params);
    if (input.num_targets() != d.design->num_targets) {
      add(out, "feasibility",
          std::string(d.label) + " trace covers " +
              std::to_string(input.num_targets()) +
              " endpoints but the design covers " +
              std::to_string(d.design->num_targets));
      continue;
    }
    if (!input.binding_feasible(d.design->binding, d.design->num_buses)) {
      add(out, "feasibility",
          std::string(d.label) +
              " binding violates the Eq. 3-9 model rebuilt from the "
              "phase-1 trace");
      continue;
    }
    const auto recomputed =
        input.max_bus_overlap(d.design->binding, d.design->num_buses);
    if (recomputed != d.design->max_overlap) {
      add(out, "feasibility",
          std::string(d.label) + " design records Eq. 11 objective " +
              std::to_string(d.design->max_overlap) +
              " but the rebuilt model gives " + std::to_string(recomputed));
    }
    if (input.num_conflicts() != d.design->num_conflicts) {
      add(out, "feasibility",
          std::string(d.label) + " design records " +
              std::to_string(d.design->num_conflicts) +
              " conflicts but the rebuilt model has " +
              std::to_string(input.num_conflicts()));
    }
  }
}

void check_observer_equivalence(const workloads::app_spec& app,
                                const xbar::flow_options& opts,
                                const xbar::flow_report& report,
                                const oracle_options& oopts,
                                std::vector<violation>* out) {
  if (!oopts.observer_equivalence) return;
  // total_buses is filled by every validation run (even ones that moved
  // no packets); zero means the report was never validated — nothing to
  // compare against.
  if (report.designed.total_buses == 0) return;
  check_scope scope("oracle.observer-equivalence");
  xbar::validation_job job;
  job.request =
      report.request_design.to_config(opts.policy, opts.transfer_overhead);
  job.response =
      report.response_design.to_config(opts.policy, opts.transfer_overhead);
  job.opts = opts;
  const auto batched = xbar::validate_configurations(app, {job});
  if (batched.size() != 1 || !(batched.front() == report.designed)) {
    std::ostringstream msg;
    msg << "batch driver re-validation diverges from the session-validated "
           "designed metrics (batch avg "
        << (batched.empty() ? 0.0 : batched.front().avg_latency)
        << " packets "
        << (batched.empty() ? 0 : batched.front().packets) << ", report avg "
        << report.designed.avg_latency << " packets "
        << report.designed.packets << ")";
    add(out, "observer-equivalence", msg.str());
  }
}

void check_solver_agreement(const xbar::collected_traces& traces,
                            const xbar::flow_options& opts,
                            const xbar::flow_report& report,
                            const oracle_options& oopts,
                            std::vector<violation>* out) {
  check_scope scope("oracle.solver-agreement");
  if (!oopts.solver_agreement) return;
  const struct {
    const char* label;
    const traffic::trace* trace;
    const xbar::crossbar_design* design;
    bool request;
  } dirs[] = {
      {"request", &traces.request, &report.request_design, true},
      {"response", &traces.response, &report.response_design, false},
  };
  for (const auto& d : dirs) {
    if (d.design->num_targets > oopts.solver_agreement_max_targets) continue;
    auto milp_opts = opts.synth;
    milp_opts.params = xbar::effective_synthesis_params(opts, d.request);
    milp_opts.solver = xbar::solver_kind::generic_milp;
    milp_opts.limits.max_nodes = oopts.solver_max_nodes;
    milp_opts.limits.time_limit_sec = 0.0;  // node cap only: deterministic
    const auto input = xbar::input_from_trace(*d.trace, milp_opts.params);
    if (static_cast<std::int64_t>(input.num_windows()) *
            input.num_targets() >
        oopts.solver_agreement_max_cells) {
      continue;  // LP too large for the stand-in solver's budget
    }
    xbar::crossbar_design milp_design;
    try {
      milp_design = xbar::synthesize(input, milp_opts);
    } catch (const internal_error& e) {
      // The MILP PROVED infeasible/suboptimal where the specialised
      // solver claimed a proof — a genuine disagreement.
      add(out, "solver-agreement",
          std::string(d.label) + " direction: generic MILP contradicts the "
                                 "specialised solver (" +
              e.what() + ")");
      continue;
    } catch (const invalid_argument_error&) {
      // Node cap exhausted before an answer: inconclusive, skip.
      continue;
    }
    if (milp_design.num_buses != d.design->num_buses) {
      add(out, "solver-agreement",
          std::string(d.label) + " direction: specialised solver sized " +
              std::to_string(d.design->num_buses) +
              " buses, generic MILP sized " +
              std::to_string(milp_design.num_buses));
      continue;
    }
    if (d.design->binding_optimal && milp_design.binding_optimal &&
        milp_design.max_overlap != d.design->max_overlap) {
      add(out, "solver-agreement",
          std::string(d.label) +
              " direction: optimal Eq. 11 objectives differ (specialised " +
              std::to_string(d.design->max_overlap) + ", MILP " +
              std::to_string(milp_design.max_overlap) + ")");
    }
  }
}

std::vector<violation> check_flow_invariants(
    const workloads::app_spec& app, const xbar::collected_traces& traces,
    const xbar::flow_options& opts, const xbar::flow_report& report,
    const oracle_options& oopts) {
  std::vector<violation> out;
  check_shape(app, report, &out);
  check_coverage(report, &out);
  check_bus_bounds(app, report, &out);
  check_latency(report, oopts, &out);
  check_metrics(report, &out);
  check_feasibility(traces, opts, report, &out);
  check_observer_equivalence(app, opts, report, oopts, &out);
  check_solver_agreement(traces, opts, report, oopts, &out);
  return out;
}

}  // namespace stx::testkit
