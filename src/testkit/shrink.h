// Greedy scenario shrinking: minimize a failing scenario before
// reporting it, so the reproduction the fuzzer hands back is the
// smallest one it could find (fewer cores, shorter bursts, fewer
// features), not the raw random sample.
#pragma once

#include <functional>

#include "testkit/scenario.h"

namespace stx::testkit {

/// Returns true when the candidate scenario STILL exhibits the failure
/// being minimized (typically: "the oracle still reports a violation").
using scenario_predicate = std::function<bool(const scenario&)>;

struct shrink_options {
  /// Ceiling on predicate evaluations; each one re-runs the design flow,
  /// so this bounds the shrink wall-clock.
  int max_attempts = 200;
};

struct shrink_result {
  scenario best;         ///< smallest still-failing scenario found
  int attempts = 0;      ///< predicate evaluations spent
  int improvements = 0;  ///< accepted shrink steps
};

/// The candidate one-step reductions of `s`, most aggressive first
/// (halve the core counts, shorten the horizon, simplify the traffic
/// mix). Every candidate is strictly smaller in at least one field and
/// validates, so greedy descent over candidates terminates. Exposed for
/// testing.
std::vector<scenario> shrink_candidates(const scenario& s);

/// Greedy descent: repeatedly applies the first candidate reduction that
/// still fails, until no candidate fails or the attempt budget runs out.
/// `failing` itself is assumed to fail (it is returned unchanged when no
/// reduction reproduces the failure).
shrink_result shrink(const scenario& failing,
                     const scenario_predicate& still_fails,
                     const shrink_options& opts = {});

}  // namespace stx::testkit
