// Randomized design-flow scenarios: the fuzzing counterpart of the
// hand-built apps in src/workloads/.
//
// A scenario is a small, fully explicit parameter record that expands
// into an MPSoC application (make_app) plus the flow options to design it
// with (make_flow_options). Sampling covers shapes far beyond
// workloads::make_synthetic — asymmetric initiator/target counts,
// hot-spot targets, per-scenario burst geometry, critical streams — while
// every scenario round-trips through a one-line string (encode/decode),
// so any failure the fuzzer finds reproduces from a single copy-pastable
// token.
#pragma once

#include <string>

#include "traffic/trace.h"
#include "util/random.h"
#include "workloads/app.h"
#include "workloads/big_fabric.h"
#include "xbar/flow.h"

namespace stx::testkit {

/// One fuzzing scenario. Every field is explicit (not derived from the
/// seed at decode time) so the shrinker can mutate fields independently
/// and the mutated scenario still encodes/decodes losslessly.
struct scenario {
  /// Simulator seed and the stream used to sample per-core traffic mixes.
  std::uint64_t seed = 1;

  // ---- Application shape.
  int num_initiators = 4;
  int num_targets = 4;
  traffic::cycle_t burst_cycles = 400;  ///< approx busy cycles per burst
  int packet_cells = 8;                 ///< cells per packet in a burst
  traffic::cycle_t gap_cycles = 1200;   ///< idle span between bursts
  double phase_spread = 0.25;           ///< [0,1] burst phase stagger
  double read_fraction = 0.25;          ///< [0,1] probability a packet reads
  /// Probability a packet is redirected to the hot-spot target instead of
  /// the core's home target (0 disables the hot spot).
  double hotspot_fraction = 0.0;
  int hotspot_target = 0;
  /// The first `critical_cores` initiators mark their home-stream
  /// accesses critical (real-time), exercising the Sec. 7.3 path.
  int critical_cores = 0;

  // ---- Design-flow knobs.
  traffic::cycle_t window_size = 400;
  double overlap_threshold = 0.30;
  int max_targets_per_bus = 4;
  traffic::cycle_t horizon = 30'000;

  bool operator==(const scenario&) const = default;

  /// Shape/range validation; throws stx::invalid_argument_error.
  void validate() const;

  /// Short display label, e.g. "fuzz-4x6-s42".
  std::string name() const;

  /// Expands into the application model. Deterministic in the scenario
  /// fields alone (the per-core traffic mix is drawn from rng(seed)).
  workloads::app_spec make_app() const;

  /// The flow options this scenario is designed with.
  xbar::flow_options make_flow_options() const;
};

/// Samples one scenario from `r`. All fields, including the simulator
/// seed, are drawn from the generator, so a fuzzing campaign is fully
/// reproducible from its master seed.
scenario sample_scenario(rng& r);

/// A sampled solver-scaling case: a big_fabric geometry (16-64
/// initiators/targets, asymmetric duty, hot shared targets) plus flow
/// options to design it with. The fuzz hook for the large-model family
/// that bench/ablation_solver and the parallel branch & bound tests
/// stress — sample_scenario stays the small-model generator.
struct big_fabric_case {
  workloads::big_fabric_params params;
  xbar::flow_options opts;
};
big_fabric_case sample_big_fabric_case(rng& r);

/// One-line reproduction string, e.g.
/// "stxfuzz/v1 seed=42 ini=4 tgt=6 burst=400 ... horizon=30000".
/// decode(encode(s)) == s holds exactly (doubles use %.17g).
std::string encode(const scenario& s);

/// Parses an encode() string. Unknown magic, unknown keys, malformed
/// values or out-of-range fields throw stx::invalid_argument_error;
/// omitted keys keep their default values.
scenario decode(const std::string& line);

}  // namespace stx::testkit
