// Flow-invariant oracle: what must hold for EVERY design the flow
// produces, no matter the application.
//
// The unit suites check the code we wrote against expectations we also
// wrote; the oracle instead states properties of the methodology itself
// (coverage, minimality, bounded degradation, solver agreement,
// model-level feasibility) and re-derives them from the flow's own
// inputs, so a fuzzer can search for applications that break them.
#pragma once

#include <string>
#include <vector>

#include "workloads/app.h"
#include "xbar/flow.h"

namespace stx::testkit {

/// One violated invariant. `invariant` is a stable machine-readable tag
/// (the check names below); `detail` says what was observed.
struct violation {
  std::string invariant;
  std::string detail;
};

/// "invariant: detail" per line; empty string when `v` is empty.
std::string to_string(const std::vector<violation>& v);

/// Oracle tolerances. The latency bound is deliberately loose — the
/// paper's conservative designs stay within ~1.2x of the full crossbar,
/// but the fuzzer explores aggressive windows/thresholds where a real
/// degradation is legitimate; the bound catches pathologies (starvation,
/// deadlock, mis-binding), not tuning quality.
struct oracle_options {
  /// designed.avg_latency <= full.avg_latency * factor + slack.
  double latency_factor = 8.0;
  double latency_slack_cycles = 50.0;
  /// Re-solve both directions with the paper-faithful generic MILP and
  /// require the same bus count (and objective when both are proven
  /// optimal). Quadratically more expensive than the rest of the oracle,
  /// so instances above the size cap skip it, and the MILP search is
  /// node-capped: a cross-check that exhausts `solver_max_nodes` is
  /// INCONCLUSIVE and skipped (a limitation of the CPLEX stand-in, not a
  /// methodology violation). The node cap, unlike a wall-clock budget,
  /// keeps fuzz verdicts machine-independent.
  /// Re-validate the designed configuration through the lockstep batch
  /// driver (sim::batch observer harvesting) and require metrics equal
  /// to the report's session-validated `designed` section — the same
  /// differential discipline the retired kernel-equivalence invariant
  /// applied to the polling kernel. Costs one extra phase-4 simulation.
  bool observer_equivalence = true;
  bool solver_agreement = true;
  int solver_agreement_max_targets = 10;
  /// Skip the cross-check when windows * targets exceeds this: LP size,
  /// not target count, is what makes the generic solver slow, and the
  /// differential signal is just as strong on the small models.
  int solver_agreement_max_cells = 400;
  std::int64_t solver_max_nodes = 2'000;
};

// Individual checks, exposed so the test suite can exercise each
// invariant in isolation. Each appends its violations to `out`.

/// "shape": report dimensions agree with the app (initiator/target
/// counts, traffic-matrix dimensions, binding vector sizes).
void check_shape(const workloads::app_spec& app,
                 const xbar::flow_report& report, std::vector<violation>* out);

/// "coverage": every link with nonzero phase-1 traffic is routed — the
/// receiving endpoint's binding names a real bus — and no bus is dead
/// (a bus with no endpoint bound contradicts bus-count minimality).
void check_coverage(const xbar::flow_report& report,
                    std::vector<violation>* out);

/// "bus-bound": per-direction bus counts stay within [1, #endpoints],
/// the designed total never exceeds the full crossbar, and the report's
/// cost fields are mutually consistent.
void check_bus_bounds(const workloads::app_spec& app,
                      const xbar::flow_report& report,
                      std::vector<violation>* out);

/// "latency": the designed configuration still makes progress (nonzero
/// packets/iterations whenever the full reference has them) and its
/// average latency stays within the degradation bound vs. full.
void check_latency(const xbar::flow_report& report,
                   const oracle_options& opts, std::vector<violation>* out);

/// "metrics": validation metrics are internally consistent (avg <= max,
/// p99 <= max, critical <= max critical, bus totals match the designs).
void check_metrics(const xbar::flow_report& report,
                   std::vector<violation>* out);

/// "feasibility": each direction's binding, re-checked against the
/// synthesis model rebuilt from the phase-1 trace (Eq. 3-9), is feasible,
/// and the recorded Eq. 11 objective/conflict count match the rebuilt
/// model exactly.
void check_feasibility(const xbar::collected_traces& traces,
                       const xbar::flow_options& opts,
                       const xbar::flow_report& report,
                       std::vector<violation>* out);

/// "solver-agreement": the specialised branch & bound and the generic
/// MILP path agree on the minimum bus count for both directions (and on
/// the Eq. 11 objective when both proofs completed).
void check_solver_agreement(const xbar::collected_traces& traces,
                            const xbar::flow_options& opts,
                            const xbar::flow_report& report,
                            const oracle_options& oopts,
                            std::vector<violation>* out);

/// "observer-equivalence": re-validating the designed configuration
/// through the lockstep sim::batch driver (SoA observer harvesting)
/// reproduces the report's `designed` metrics exactly, every double
/// included. Skipped when the report was never validated. This is the
/// successor of the retired "kernel-equivalence" invariant, guarding the
/// batch driver the way that one guarded the event-driven kernel.
void check_observer_equivalence(const workloads::app_spec& app,
                                const xbar::flow_options& opts,
                                const xbar::flow_report& report,
                                const oracle_options& oopts,
                                std::vector<violation>* out);

// (The "kernel-equivalence" invariant — bit-identity of the event-driven
// and legacy polling kernels — soaked one release and retired with the
// polling kernel itself; see CHANGES.md.)

/// Runs every check above on one completed flow. `traces` must be the
/// phase-1 traces the report was designed from and `opts` the flow
/// options used (design_from_traces' inputs).
std::vector<violation> check_flow_invariants(
    const workloads::app_spec& app, const xbar::collected_traces& traces,
    const xbar::flow_options& opts, const xbar::flow_report& report,
    const oracle_options& oopts = {});

}  // namespace stx::testkit
