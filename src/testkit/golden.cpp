#include "testkit/golden.h"

#include "gen/artifact.h"
#include "gen/json.h"
#include "gen/json_backend.h"
#include "util/error.h"
#include "workloads/mpsoc_apps.h"

namespace stx::testkit {

const std::vector<std::string>& golden_apps() {
  static const std::vector<std::string> apps = {"mat1", "mat2", "fft",
                                                "qsort", "des"};
  return apps;
}

xbar::flow_options golden_options() {
  xbar::flow_options opts;
  // Short enough to keep the regression suite quick, long enough that
  // every app completes iterations and the designs are non-trivial.
  opts.horizon = 30'000;
  opts.synth.params.window_size = 400;
  opts.seed = 1;
  return opts;
}

xbar::flow_report golden_report(const std::string& app_name) {
  auto app = workloads::make_app_by_name(app_name);
  STX_REQUIRE(app.has_value(),
              "unknown golden app '" + app_name + "' (" +
                  workloads::app_name_list() + ")");
  return xbar::run_design_flow(*app, golden_options());
}

std::string golden_json(const xbar::flow_report& report) {
  return gen::json_backend{}.emit(report,
                                  gen::sanitize_basename(report.app_name));
}

std::string golden_filename(const std::string& app_name) {
  return gen::sanitize_basename(app_name) + ".json";
}

std::vector<std::string> golden_diff(const std::string& expected,
                                     const std::string& actual) {
  gen::json::value want, got;
  try {
    want = gen::json::parse(expected);
  } catch (const std::exception& e) {
    return {std::string("golden snapshot is not valid JSON: ") + e.what()};
  }
  try {
    got = gen::json::parse(actual);
  } catch (const std::exception& e) {
    return {std::string("flow output is not valid JSON: ") + e.what()};
  }
  return gen::json::diff(want, got);
}

}  // namespace stx::testkit
