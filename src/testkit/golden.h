// Golden-regression support: pinned flow_report JSON snapshots for the
// paper apps, plus the readable diff the regression test prints when the
// flow's output drifts.
//
// The snapshot options (horizon, window, seed) are pinned HERE, in one
// place, so the committed goldens under tests/golden/, the regeneration
// path (`xbar-fuzz --regen-goldens=tests/golden`, wrapped by
// scripts/regen-goldens.sh) and the regression test can never disagree
// about what was snapshotted.
#pragma once

#include <string>
#include <vector>

#include "xbar/flow.h"

namespace stx::testkit {

/// The snapshotted applications: the five paper apps (Table 2 rows).
const std::vector<std::string>& golden_apps();

/// The pinned flow options every golden snapshot is produced with.
xbar::flow_options golden_options();

/// Runs the design flow for one golden app under golden_options().
/// Unknown names throw stx::invalid_argument_error.
xbar::flow_report golden_report(const std::string& app_name);

/// Canonical JSON snapshot text of a report (the gen "json" backend,
/// basename = sanitised app name; round-trips via gen::parse_design).
std::string golden_json(const xbar::flow_report& report);

/// Leaf filename of one app's snapshot, e.g. "mat2.json".
std::string golden_filename(const std::string& app_name);

/// Structural comparison of two snapshot texts: one readable line per
/// difference (JSON-path anchored), empty when they match. Malformed
/// input is reported as a diff line rather than thrown.
std::vector<std::string> golden_diff(const std::string& expected,
                                     const std::string& actual);

}  // namespace stx::testkit
