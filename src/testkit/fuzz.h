// The fuzzing campaign driver: sample scenarios, run the full design
// flow on each, check every oracle invariant, shrink what fails.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "explore/trace_cache.h"
#include "testkit/oracle.h"
#include "testkit/scenario.h"
#include "testkit/shrink.h"

namespace stx::testkit {

struct fuzz_options {
  int runs = 100;
  std::uint64_t seed = 1;
  bool shrink = true;
  oracle_options oracle;
  shrink_options shrinker;
  /// Optional phase-1 cache (keyed by the canonical stxfuzz/v1 token, so
  /// scenarios can never alias). With a persistent store behind it,
  /// repeated campaigns and shrink re-runs of the same scenario skip the
  /// collection simulation. Not owned; null = collect fresh every run.
  explore::trace_cache* cache = nullptr;
};

/// One failing scenario, as reported: the raw sample, the minimized
/// reproduction, and the violations each of them triggers.
struct fuzz_failure {
  scenario original;
  std::vector<violation> violations;
  scenario shrunk;  ///< == original when shrinking was off or fruitless
  std::vector<violation> shrunk_violations;
  int shrink_attempts = 0;
};

/// Telemetry of one oracle invariant across a campaign, from the obs
/// registry. `evaluations` is deterministic; `wall_seconds` is timing and
/// therefore not (diffs must ignore it).
struct invariant_cost {
  std::string invariant;
  std::int64_t evaluations = 0;
  double wall_seconds = 0.0;
};

struct fuzz_report {
  std::uint64_t seed = 0;
  int runs = 0;
  std::vector<fuzz_failure> failures;
  /// Aggregate work done, for the campaign summary line.
  std::int64_t total_packets = 0;
  std::int64_t total_buses_designed = 0;
  /// Per-invariant oracle cost, name-sorted. Populated only when
  /// obs::enabled() during the campaign; empty (and rendered with zero
  /// counts) otherwise.
  std::vector<invariant_cost> invariants;

  bool ok() const { return failures.empty(); }
};

/// Runs one scenario end to end (trace collection, synthesis, validation,
/// oracle). An exception anywhere in the flow is itself an oracle failure
/// and is reported as invariant "exception". `report_out`, when non-null,
/// receives the flow report of a successful run (untouched on failure).
/// `cache`, when non-null, serves the phase-1 collection (see
/// fuzz_options::cache).
std::vector<violation> run_scenario(const scenario& s,
                                    const oracle_options& oopts,
                                    xbar::flow_report* report_out = nullptr,
                                    explore::trace_cache* cache = nullptr);

/// Progress hook: called after every run with (index, scenario, failed).
using fuzz_progress = std::function<void(int, const scenario&, bool)>;

/// The campaign: `opts.runs` scenarios from decorrelated child streams of
/// `opts.seed` (run k is reproducible on its own), each checked against
/// the oracle; failing scenarios are greedily shrunk when `opts.shrink`.
/// Deterministic for fixed options.
fuzz_report run_fuzz(const fuzz_options& opts,
                     const fuzz_progress& progress = nullptr);

/// Machine-readable campaign report (schema "stx-fuzz-report/v2"): the
/// options, every failure with its encoded scenario strings, a ready
/// `xbar-fuzz --scenario=...` reproduction command, and per-invariant
/// oracle costs ("invariants": evaluation counts are deterministic, the
/// wall_ms field is explicitly not). Parses back with gen::json::parse.
std::string render_json(const fuzz_report& report);

}  // namespace stx::testkit
