#include "util/strings.h"

namespace stx {

std::vector<std::string> split_list(const std::string& list, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const auto next = list.find(sep, pos);
    const auto item = list.substr(
        pos, next == std::string::npos ? std::string::npos : next - pos);
    if (!item.empty()) out.push_back(item);
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  return out;
}

}  // namespace stx
