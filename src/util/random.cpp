#include "util/random.h"

#include <cmath>

#include "util/error.h"

namespace stx {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

rng::rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t s = seed;
  for (auto& lane : state_) lane = splitmix64(s);
}

std::uint64_t rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  STX_REQUIRE(lo <= hi, "uniform_int bounds");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~std::uint64_t{0} / span) * span;
  std::uint64_t r = next_u64();
  while (r >= limit) r = next_u64();
  return lo + static_cast<std::int64_t>(r % span);
}

double rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double rng::uniform(double lo, double hi) {
  STX_REQUIRE(lo <= hi, "uniform bounds");
  return lo + (hi - lo) * uniform01();
}

bool rng::chance(double p) { return uniform01() < p; }

std::int64_t rng::jitter(std::int64_t base, std::int64_t spread,
                         std::int64_t min_value) {
  STX_REQUIRE(spread >= 0, "jitter spread");
  const std::int64_t v = base + uniform_int(-spread, spread);
  return v < min_value ? min_value : v;
}

int rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    STX_REQUIRE(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  STX_REQUIRE(total > 0.0, "weighted_index needs a positive weight");
  double point = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    point -= weights[i];
    if (point < 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;  // fp round-off fallback
}

rng rng::split(std::uint64_t stream) const {
  // Mix the parent seed with the stream id through splitmix64 so sibling
  // streams don't share correlated lanes.
  std::uint64_t s = seed_ ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  (void)splitmix64(s);
  return rng(splitmix64(s));
}

}  // namespace stx
