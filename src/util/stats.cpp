#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.h"

namespace stx {

running_stats::running_stats(bool keep_samples) : keep_samples_(keep_samples) {}

void running_stats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (keep_samples_) {
    samples_.push_back(x);
    sorted_ = false;
  }
}

void running_stats::merge(const running_stats& other) {
  STX_REQUIRE(keep_samples_ == other.keep_samples_,
              "cannot merge stats with different sample retention");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ = (n1 * mean_ + n2 * other.mean_) / (n1 + n2);
  m2_ = m2_ + other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  if (keep_samples_) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }
}

double running_stats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double running_stats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double running_stats::stddev() const { return std::sqrt(variance()); }

double running_stats::min() const {
  STX_REQUIRE(count_ > 0, "min() of empty stats");
  return min_;
}

double running_stats::max() const {
  STX_REQUIRE(count_ > 0, "max() of empty stats");
  return max_;
}

double running_stats::percentile(double p) const {
  STX_REQUIRE(keep_samples_, "percentile() requires keep_samples");
  STX_REQUIRE(count_ > 0, "percentile() of empty stats");
  STX_REQUIRE(p >= 0.0 && p <= 1.0, "percentile p out of [0,1]");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double pos = p * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

histogram::histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi) {
  STX_REQUIRE(hi > lo, "histogram range");
  STX_REQUIRE(bins > 0, "histogram bin count");
  bin_width_ = (hi - lo) / bins;
  counts_.assign(static_cast<std::size_t>(bins), 0);
}

void histogram::add(double x) {
  auto b = static_cast<std::int64_t>((x - lo_) / bin_width_);
  b = std::clamp<std::int64_t>(b, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(b)];
  ++total_;
}

std::int64_t histogram::bin_count(int b) const {
  STX_REQUIRE(b >= 0 && b < bins(), "histogram bin index");
  return counts_[static_cast<std::size_t>(b)];
}

double histogram::bin_lo(int b) const { return lo_ + bin_width_ * b; }
double histogram::bin_hi(int b) const { return lo_ + bin_width_ * (b + 1); }

std::string histogram::render(int width) const {
  std::ostringstream out;
  std::int64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  for (int b = 0; b < bins(); ++b) {
    if (counts_[static_cast<std::size_t>(b)] == 0) continue;
    const auto bar = static_cast<int>(
        counts_[static_cast<std::size_t>(b)] * width / peak);
    out << "[" << bin_lo(b) << ", " << bin_hi(b) << ") "
        << std::string(static_cast<std::size_t>(std::max(bar, 1)), '#') << " "
        << counts_[static_cast<std::size_t>(b)] << "\n";
  }
  return out.str();
}

}  // namespace stx
