// Minimal command-line flag parsing for examples and bench harnesses.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace stx {

/// Parses `--name=value` / `--name value` / bare `--flag` arguments.
///
///     flag_set flags(argc, argv);
///     const auto seed = flags.get_int("seed", 42);
///     if (flags.has("verbose")) ...
///
/// Unrecognised positional arguments are kept in positional(). Lookup of a
/// flag that was supplied with a non-parsable value throws.
class flag_set {
 public:
  flag_set(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Names of every flag that was supplied, sorted. Drivers use this to
  /// reject unknown flags instead of silently ignoring them.
  std::vector<std::string> names() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace stx
