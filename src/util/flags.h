// Minimal command-line flag parsing for examples and bench harnesses.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace stx {

/// Parses `--name=value` / `--name value` / bare `--flag` arguments.
///
///     flag_set flags(argc, argv);
///     const auto seed = flags.get_int("seed", 42);
///     if (flags.has("verbose")) ...
///
/// Unrecognised positional arguments are kept in positional(). Lookup of a
/// flag that was supplied with a non-parsable value throws.
class flag_set {
 public:
  flag_set(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Every value supplied for `name`, in command-line order — repeatable
  /// flags like `--grid win=... --grid thr=...` collect here, while the
  /// scalar getters above keep last-one-wins semantics.
  std::vector<std::string> get_list(const std::string& name) const;

  /// Names of every flag that was supplied, sorted. Drivers use this to
  /// reject unknown flags instead of silently ignoring them.
  std::vector<std::string> names() const;

 private:
  const std::string* find(const std::string& name) const;

  /// Every occurrence in command-line order — the single source of
  /// truth: scalar getters take the last occurrence, get_list all.
  std::vector<std::pair<std::string, std::string>> ordered_;
  std::vector<std::string> positional_;
};

/// Prints "<prog>: unknown flag --x" to stderr for every supplied flag
/// not in `known` and returns how many there were; drivers exit 2 (after
/// their usage text) when the count is non-zero. Shared by xbargen,
/// xbar-sweep and the flagged benches so the contract cannot drift.
int report_unknown_flags(const flag_set& flags,
                         const std::vector<std::string>& known,
                         const std::string& prog);

}  // namespace stx
