// Deterministic pseudo-random number generation for workloads and tests.
#pragma once

#include <cstdint>
#include <vector>

namespace stx {

/// xoshiro256++ pseudo-random generator.
///
/// All randomness in stxbar (workload jitter, random bindings, property
/// tests) flows through this generator so that every experiment is
/// reproducible from a single seed. The algorithm is Blackman & Vigna's
/// xoshiro256++ 1.0; it is small, fast and has no dependence on the
/// platform's std::mt19937 implementation details.
class rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via splitmix64 so that any
  /// seed (including 0) produces a well-mixed state.
  explicit rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Bernoulli trial with probability `p` of returning true.
  bool chance(double p);

  /// Geometric-ish bounded jitter: value in [base - spread, base + spread],
  /// clamped below at `min_value`. Used for per-iteration timing noise in
  /// workload models.
  std::int64_t jitter(std::int64_t base, std::int64_t spread,
                      std::int64_t min_value = 0);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  int weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::int64_t i = static_cast<std::int64_t>(v.size()) - 1; i > 0; --i) {
      const auto j = uniform_int(0, i);
      using std::swap;
      swap(v[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(j)]);
    }
  }

  /// Splits off an independently seeded child generator; children with
  /// distinct `stream` values are decorrelated from each other and from
  /// the parent.
  rng split(std::uint64_t stream) const;

 private:
  std::uint64_t state_[4];
  std::uint64_t seed_;
};

}  // namespace stx
