// Named failpoints: deterministic fault injection for the serving and
// storage layers. A failpoint is a named site in production code where a
// test (or an operator, via the STX_FAILPOINTS environment variable) can
// inject a fault:
//
//   error       throw stx::error from the site
//   delay(MS)   sleep MS milliseconds at the site (queue/timeout tests)
//   torn-write  site-cooperative: the site receives the action and
//               deliberately corrupts its own output (e.g. truncating a
//               staged store object mid-write)
//   crash       std::_Exit(failpoint::crash_exit_code) — no destructors,
//               no atexit, no stdio flush: the closest portable stand-in
//               for kill -9 / power loss
//
// Arming:
//   stx::failpoint::arm("store.put.before_rename", "crash");   // in tests
//   STX_FAILPOINTS='store.put.fsync=error;serve.worker.execute=delay(50)'
//     ./xbar-serve ...                                          // from env
//
// Cost when disabled: every site first reads one process-wide relaxed
// atomic (armed()) and branches past the whole mechanism — the same
// predicted-not-taken discipline as the obs subsystem. Sites only take
// the registry lock while at least one failpoint is armed anywhere.
//
// Sites wired in:
//   store.put.after_tmp_write   disk_store::put, staged bytes written
//   store.put.fsync             disk_store::put, before fsync (error =>
//                               the fsync is treated as failed)
//   store.put.before_rename     disk_store::put, staged + synced
//   store.put.after_rename      disk_store::put, published, dir not yet
//                               synced
//   store.get.read              disk_store::get (error => read treated
//                               as corrupt-as-miss)
//   serve.admission             service::submit, before queueing
//   serve.worker.execute        service::handle, before the flow runs
//   serve.conn.read             server connection, before reading a line
//                               (error => connection dropped)
//   serve.conn.write            server connection, before writing a
//                               response (error => connection dropped)
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace stx::failpoint {

/// Exit code of a `crash` action, so crash-recovery tests can tell an
/// injected crash from any other child failure.
inline constexpr int crash_exit_code = 42;

enum class action_kind { none, error, delay, torn_write, crash };

struct action {
  action_kind kind = action_kind::none;
  int delay_ms = 0;  ///< meaningful when kind == delay
};

namespace detail {
extern std::atomic<int> armed_count;  ///< # of currently armed failpoints
}

/// Fast path: true iff at least one failpoint is armed anywhere in the
/// process. Relaxed read — safe (and intended) on hot paths.
inline bool armed() {
  return detail::armed_count.load(std::memory_order_relaxed) > 0;
}

/// Arms `name` with `spec` ("error", "delay(50)", "torn-write",
/// "crash"), replacing any previous arming. Throws
/// stx::invalid_argument_error on a malformed spec.
void arm(const std::string& name, const std::string& spec);

/// Disarms `name`; a site that is not armed is a no-op. Idempotent.
void disarm(const std::string& name);

/// Disarms everything (test teardown).
void disarm_all();

/// Arms every "name=spec" entry in a ';'- or ','-separated list — the
/// STX_FAILPOINTS grammar. Throws on the first malformed entry.
void arm_from_spec(const std::string& spec_list);

/// Times the named site fired since it was (last) armed; 0 when never
/// armed. Survives disarm() so tests can assert post-mortem.
std::int64_t hits(const std::string& name);

/// Evaluates the named site. Handles delay (sleeps) and crash (_Exit)
/// internally; returns error / torn-write to the caller for
/// site-specific handling. none when the site is not armed.
action eval_action(std::string_view name);

/// Like eval_action, but an armed `error` throws
/// stx::error("failpoint '<name>' injected error") instead of being
/// returned — the right shape for sites whose callers already convert
/// exceptions into error responses. torn-write is ignored here (a site
/// that cannot tear its output simply doesn't).
void eval(std::string_view name);

}  // namespace stx::failpoint

/// Fire-and-forget site: delay/crash happen, error throws, torn-write is
/// ignored. Zero-cost (one relaxed load) when nothing is armed.
#define STX_FAILPOINT(name)                               \
  do {                                                    \
    if (::stx::failpoint::armed()) ::stx::failpoint::eval(name); \
  } while (0)

/// Site-cooperative form: returns the armed action (after handling
/// delay/crash internally) so the site can implement error / torn-write
/// itself.
#define STX_FAILPOINT_ACTION(name)                     \
  (::stx::failpoint::armed() ? ::stx::failpoint::eval_action(name) \
                             : ::stx::failpoint::action{})
