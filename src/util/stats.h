// Streaming statistics and histograms for latency/bandwidth measurement.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace stx {

/// Streaming accumulator for scalar samples (packet latencies, queue
/// depths, ...). Tracks count, sum, min, max, mean and variance in one
/// pass using Welford's algorithm; optionally retains samples for exact
/// percentile queries.
class running_stats {
 public:
  /// When `keep_samples` is true every sample is retained so percentile()
  /// is exact; otherwise only O(1) state is kept.
  explicit running_stats(bool keep_samples = false);

  /// Adds one sample.
  void add(double x);

  /// Merges another accumulator into this one (sample retention must
  /// match). Percentile data is concatenated.
  void merge(const running_stats& other);

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const;
  /// Population variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// Exact p-quantile (p in [0,1]) by sorting retained samples; requires
  /// keep_samples = true and at least one sample.
  double percentile(double p) const;

  bool keeps_samples() const { return keep_samples_; }

 private:
  bool keep_samples_ = false;
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-width histogram over [lo, hi) with out-of-range clamping,
/// used for latency distribution reporting in benches.
class histogram {
 public:
  histogram(double lo, double hi, int bins);

  void add(double x);
  std::int64_t total() const { return total_; }
  int bins() const { return static_cast<int>(counts_.size()); }
  std::int64_t bin_count(int b) const;
  double bin_lo(int b) const;
  double bin_hi(int b) const;

  /// Renders a compact ASCII bar chart, one line per non-empty bin.
  std::string render(int width = 40) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

}  // namespace stx
