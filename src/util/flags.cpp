#include "util/flags.h"

#include <cstdlib>

#include "util/error.h"

namespace stx {

flag_set::flag_set(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "";  // bare flag
    }
  }
}

bool flag_set::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::vector<std::string> flag_set::names() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [name, value] : values_) out.push_back(name);
  return out;
}

std::string flag_set::get_string(const std::string& name,
                                 const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t flag_set::get_int(const std::string& name,
                               std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const auto v = std::strtoll(it->second.c_str(), &end, 10);
  STX_REQUIRE(end != it->second.c_str() && *end == '\0',
              "flag --" + name + " is not an integer: " + it->second);
  return v;
}

double flag_set::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  STX_REQUIRE(end != it->second.c_str() && *end == '\0',
              "flag --" + name + " is not a number: " + it->second);
  return v;
}

bool flag_set::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  if (it->second.empty() || it->second == "true" || it->second == "1") {
    return true;
  }
  if (it->second == "false" || it->second == "0") return false;
  throw invalid_argument_error("flag --" + name +
                               " is not a boolean: " + it->second);
}

}  // namespace stx
