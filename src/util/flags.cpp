#include "util/flags.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/error.h"

namespace stx {

flag_set::flag_set(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      ordered_.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      ordered_.emplace_back(arg, argv[++i]);
    } else {
      ordered_.emplace_back(arg, "");  // bare flag
    }
  }
}

const std::string* flag_set::find(const std::string& name) const {
  // Last occurrence wins, matching the map-based behaviour this class
  // always had for repeated flags.
  for (auto it = ordered_.rbegin(); it != ordered_.rend(); ++it) {
    if (it->first == name) return &it->second;
  }
  return nullptr;
}

bool flag_set::has(const std::string& name) const {
  return find(name) != nullptr;
}

std::vector<std::string> flag_set::get_list(const std::string& name) const {
  std::vector<std::string> out;
  for (const auto& [key, value] : ordered_) {
    if (key == name) out.push_back(value);
  }
  return out;
}

std::vector<std::string> flag_set::names() const {
  std::vector<std::string> out;
  out.reserve(ordered_.size());
  for (const auto& [name, value] : ordered_) out.push_back(name);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string flag_set::get_string(const std::string& name,
                                 const std::string& fallback) const {
  const auto* v = find(name);
  return v == nullptr ? fallback : *v;
}

std::int64_t flag_set::get_int(const std::string& name,
                               std::int64_t fallback) const {
  const auto* s = find(name);
  if (s == nullptr) return fallback;
  char* end = nullptr;
  const auto v = std::strtoll(s->c_str(), &end, 10);
  STX_REQUIRE(end != s->c_str() && *end == '\0',
              "flag --" + name + " is not an integer: " + *s);
  return v;
}

double flag_set::get_double(const std::string& name, double fallback) const {
  const auto* s = find(name);
  if (s == nullptr) return fallback;
  char* end = nullptr;
  const double v = std::strtod(s->c_str(), &end);
  STX_REQUIRE(end != s->c_str() && *end == '\0',
              "flag --" + name + " is not a number: " + *s);
  return v;
}

bool flag_set::get_bool(const std::string& name, bool fallback) const {
  const auto* s = find(name);
  if (s == nullptr) return fallback;
  if (s->empty() || *s == "true" || *s == "1") return true;
  if (*s == "false" || *s == "0") return false;
  throw invalid_argument_error("flag --" + name +
                               " is not a boolean: " + *s);
}

int report_unknown_flags(const flag_set& flags,
                         const std::vector<std::string>& known,
                         const std::string& prog) {
  int bad = 0;
  for (const auto& name : flags.names()) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      std::fprintf(stderr, "%s: unknown flag --%s\n", prog.c_str(),
                   name.c_str());
      ++bad;
    }
  }
  return bad;
}

}  // namespace stx
