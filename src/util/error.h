// Error types shared by all stxbar modules.
#pragma once

#include <stdexcept>
#include <string>

namespace stx {

/// Base class for all errors raised by the stxbar library.
///
/// Thrown on API misuse (bad arguments, inconsistent model state) and on
/// internal invariant violations. Recoverable outcomes that are part of
/// normal operation (e.g. "this MILP is infeasible") are reported through
/// status enums on the result types instead, never via exceptions.
class error : public std::runtime_error {
 public:
  explicit error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a caller passes arguments that violate a documented
/// precondition (negative sizes, out-of-range ids, mismatched dimensions).
class invalid_argument_error : public error {
 public:
  explicit invalid_argument_error(const std::string& what) : error(what) {}
};

/// Raised when an internal invariant is violated; indicates a bug in the
/// library itself rather than in caller code.
class internal_error : public error {
 public:
  explicit internal_error(const std::string& what) : error(what) {}
};

namespace detail {
[[noreturn]] inline void fail_require(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  throw invalid_argument_error(std::string(file) + ":" + std::to_string(line) +
                               ": requirement failed: " + cond +
                               (msg.empty() ? "" : " — " + msg));
}
[[noreturn]] inline void fail_ensure(const char* cond, const char* file,
                                     int line, const std::string& msg) {
  throw internal_error(std::string(file) + ":" + std::to_string(line) +
                       ": invariant failed: " + cond +
                       (msg.empty() ? "" : " — " + msg));
}
}  // namespace detail

}  // namespace stx

/// Precondition check: throws stx::invalid_argument_error when violated.
#define STX_REQUIRE(cond, msg)                                  \
  do {                                                          \
    if (!(cond))                                                \
      ::stx::detail::fail_require(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

/// Internal invariant check: throws stx::internal_error when violated.
#define STX_ENSURE(cond, msg)                                 \
  do {                                                        \
    if (!(cond))                                              \
      ::stx::detail::fail_ensure(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
