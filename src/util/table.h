// ASCII table and CSV rendering for benchmark harness output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace stx {

/// Column-aligned ASCII table builder.
///
/// Bench harnesses use this to print paper-style tables:
///
///     table t({"Type", "Avg Lat", "Max Lat", "Size Ratio"});
///     t.add_row({"shared", "35.1", "51", "1"});
///     std::cout << t.render();
///
/// Numeric cells can be added through the typed helpers, which format
/// with a fixed precision so columns line up.
class table {
 public:
  explicit table(std::vector<std::string> headers);

  /// Appends a fully formatted row. The row must have exactly as many
  /// cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Row builder: accumulates typed cells, then call end_row().
  table& cell(const std::string& s);
  table& cell(const char* s);
  table& cell(double v, int precision = 2);
  table& cell(std::int64_t v);
  table& cell(int v);
  void end_row();

  int rows() const { return static_cast<int>(rows_.size()); }
  int cols() const { return static_cast<int>(headers_.size()); }

  /// Renders with a header rule and right-aligned numeric-looking cells.
  std::string render() const;

  /// Renders as CSV (RFC-4180-ish; quotes cells containing separators).
  std::string render_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> pending_;
};

/// Formats a double with `precision` digits after the point.
std::string format_double(double v, int precision = 2);

/// Formats `v` as a multiplicative factor, e.g. "3.50x".
std::string format_ratio(double v, int precision = 2);

}  // namespace stx
