#include "util/failpoint.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "util/error.h"
#include "util/strings.h"

namespace stx::failpoint {

namespace detail {
std::atomic<int> armed_count{0};
}

namespace {

struct entry {
  action act;
  bool armed = false;
  std::int64_t hits = 0;  ///< kept across disarm for post-mortem asserts
};

struct registry_t {
  std::mutex mu;
  std::map<std::string, entry, std::less<>> entries;
};

registry_t& registry() {
  static registry_t r;
  return r;
}

action parse_spec(const std::string& name, const std::string& spec) {
  action a;
  if (spec == "error") {
    a.kind = action_kind::error;
  } else if (spec == "torn-write") {
    a.kind = action_kind::torn_write;
  } else if (spec == "crash") {
    a.kind = action_kind::crash;
  } else if (spec.rfind("delay(", 0) == 0 && spec.back() == ')') {
    a.kind = action_kind::delay;
    const auto ms = spec.substr(6, spec.size() - 7);
    try {
      std::size_t used = 0;
      a.delay_ms = std::stoi(ms, &used);
      STX_REQUIRE(used == ms.size() && a.delay_ms >= 0,
                  "failpoint '" + name + "': bad delay '" + ms + "'");
    } catch (const invalid_argument_error&) {
      throw;
    } catch (...) {
      throw invalid_argument_error("failpoint '" + name + "': bad delay '" +
                                   ms + "'");
    }
  } else {
    throw invalid_argument_error(
        "failpoint '" + name + "': unknown action '" + spec +
        "' (error | delay(MS) | torn-write | crash)");
  }
  return a;
}

/// STX_FAILPOINTS is parsed once, before main touches any failpoint. A
/// malformed value is reported and ignored rather than terminating the
/// host process from a static initializer.
const bool env_loaded = [] {
  const char* spec = std::getenv("STX_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return true;
  try {
    arm_from_spec(spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "stx: ignoring invalid STX_FAILPOINTS: %s\n",
                 e.what());
  }
  return true;
}();

}  // namespace

void arm(const std::string& name, const std::string& spec) {
  STX_REQUIRE(!name.empty(), "failpoint: empty name");
  const auto act = parse_spec(name, spec);
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto& e = reg.entries[name];
  if (!e.armed) {
    detail::armed_count.fetch_add(1, std::memory_order_relaxed);
    e.hits = 0;  // fresh arming restarts the hit count
  }
  e.armed = true;
  e.act = act;
}

void disarm(const std::string& name) {
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  const auto it = reg.entries.find(name);
  if (it == reg.entries.end() || !it->second.armed) return;
  it->second.armed = false;
  detail::armed_count.fetch_sub(1, std::memory_order_relaxed);
}

void disarm_all() {
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& [name, e] : reg.entries) {
    if (e.armed) {
      e.armed = false;
      detail::armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

void arm_from_spec(const std::string& spec_list) {
  for (const auto& item : split_list(spec_list, ';')) {
    for (const auto& part : split_list(item, ',')) {
      if (part.empty()) continue;
      const auto eq = part.find('=');
      STX_REQUIRE(eq != std::string::npos && eq > 0,
                  "failpoint spec entry '" + part + "' is not name=action");
      arm(part.substr(0, eq), part.substr(eq + 1));
    }
  }
}

std::int64_t hits(const std::string& name) {
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  const auto it = reg.entries.find(name);
  return it == reg.entries.end() ? 0 : it->second.hits;
}

action eval_action(std::string_view name) {
  action act;
  {
    auto& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    const auto it = reg.entries.find(name);
    if (it == reg.entries.end() || !it->second.armed) return {};
    ++it->second.hits;
    act = it->second.act;
  }
  switch (act.kind) {
    case action_kind::delay:
      std::this_thread::sleep_for(std::chrono::milliseconds(act.delay_ms));
      return {};
    case action_kind::crash:
      // kill -9 / power-loss stand-in: no destructors, no atexit, no
      // stdio flush. The distinctive exit code lets recovery tests tell
      // an injected crash from a genuine child failure.
      std::_Exit(crash_exit_code);
    case action_kind::none:
    case action_kind::error:
    case action_kind::torn_write:
      return act;
  }
  return act;
}

void eval(std::string_view name) {
  const auto act = eval_action(name);
  if (act.kind == action_kind::error) {
    throw error("failpoint '" + std::string(name) + "' injected error");
  }
}

}  // namespace stx::failpoint
