// Small string helpers shared by the CLI drivers and the sweep grids.
#pragma once

#include <string>
#include <vector>

namespace stx {

/// Splits `list` on `sep`, dropping empty items ("a,,b" -> {"a","b"},
/// "" -> {}). The comma-list convention of every CLI flag that takes
/// multiple values (--emit, --app, --grid axes).
std::vector<std::string> split_list(const std::string& list, char sep = ',');

}  // namespace stx
