// Leveled logging with a global verbosity switch.
#pragma once

#include <sstream>
#include <string>

namespace stx {

enum class log_level { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Sets the minimum level that is emitted; defaults to warn so library
/// internals stay quiet unless a harness opts in.
void set_log_level(log_level level);
log_level get_log_level();

namespace detail {
void log_emit(log_level level, const std::string& message);
}

/// Stream-style logger: `STX_LOG(info) << "windows=" << n;`
/// The message is assembled only when the level is enabled.
#define STX_LOG(level_name)                                            \
  for (bool stx_log_once =                                             \
           ::stx::get_log_level() <= ::stx::log_level::level_name;     \
       stx_log_once; stx_log_once = false)                             \
  ::stx::detail::log_line(::stx::log_level::level_name)

namespace detail {
class log_line {
 public:
  explicit log_line(log_level level) : level_(level) {}
  ~log_line() { log_emit(level_, out_.str()); }
  log_line(const log_line&) = delete;
  log_line& operator=(const log_line&) = delete;

  template <typename T>
  log_line& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  log_level level_;
  std::ostringstream out_;
};
}  // namespace detail

}  // namespace stx
