#include "util/table.h"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

#include "util/error.h"

namespace stx {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char ch : s) {
    if (!(std::isdigit(static_cast<unsigned char>(ch)) || ch == '.' ||
          ch == '-' || ch == '+' || ch == 'e' || ch == 'E' || ch == 'x' ||
          ch == '%')) {
      return false;
    }
  }
  return true;
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += "\"";
  return out;
}

}  // namespace

std::string format_double(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

std::string format_ratio(double v, int precision) {
  return format_double(v, precision) + "x";
}

table::table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  STX_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void table::add_row(std::vector<std::string> cells) {
  STX_REQUIRE(cells.size() == headers_.size(),
              "row width must match header width");
  rows_.push_back(std::move(cells));
}

table& table::cell(const std::string& s) {
  pending_.push_back(s);
  return *this;
}
table& table::cell(const char* s) { return cell(std::string(s)); }
table& table::cell(double v, int precision) {
  return cell(format_double(v, precision));
}
table& table::cell(std::int64_t v) { return cell(std::to_string(v)); }
table& table::cell(int v) { return cell(std::to_string(v)); }

void table::end_row() {
  add_row(pending_);
  pending_.clear();
}

std::string table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " ");
      const auto pad = widths[c] - row[c].size();
      if (looks_numeric(row[c])) {
        out << std::string(pad, ' ') << row[c];
      } else {
        out << row[c] << std::string(pad, ' ');
      }
      out << " |";
    }
    out << "\n";
  };
  emit_row(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string table::render_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ",";
      out << csv_escape(row[c]);
    }
    out << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace stx
