#include "util/log.h"

#include <atomic>
#include <cstdio>

namespace stx {

namespace {
std::atomic<log_level> g_level{log_level::warn};

const char* level_name(log_level level) {
  switch (level) {
    case log_level::debug: return "DEBUG";
    case log_level::info: return "INFO";
    case log_level::warn: return "WARN";
    case log_level::error: return "ERROR";
    case log_level::off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(log_level level) { g_level.store(level); }
log_level get_log_level() { return g_level.load(); }

namespace detail {
void log_emit(log_level level, const std::string& message) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[stx %s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace stx
