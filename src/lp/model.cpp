#include "lp/model.h"

#include <cmath>
#include <set>
#include <sstream>

#include "util/error.h"

namespace stx::lp {

int model::add_variable(double lower, double upper, double objective,
                        std::string name) {
  STX_REQUIRE(lower <= upper, "variable bounds crossed: " + name);
  STX_REQUIRE(!std::isnan(lower) && !std::isnan(upper) && !std::isnan(objective),
              "NaN in variable definition: " + name);
  variables_.push_back(variable{lower, upper, objective, std::move(name)});
  return static_cast<int>(variables_.size()) - 1;
}

int model::add_row(std::vector<term> terms, relation rel, double rhs,
                   std::string name) {
  std::set<int> seen;
  for (const auto& t : terms) {
    STX_REQUIRE(t.var >= 0 && t.var < num_variables(),
                "row term references unknown variable in row " + name);
    STX_REQUIRE(seen.insert(t.var).second,
                "row mentions a variable twice in row " + name);
    STX_REQUIRE(!std::isnan(t.value), "NaN coefficient in row " + name);
  }
  STX_REQUIRE(!std::isnan(rhs), "NaN rhs in row " + name);
  rows_.push_back(row{std::move(terms), rel, rhs, std::move(name)});
  return static_cast<int>(rows_.size()) - 1;
}

void model::set_objective(int var, double coefficient) {
  STX_REQUIRE(var >= 0 && var < num_variables(), "set_objective: bad index");
  variables_[static_cast<std::size_t>(var)].objective = coefficient;
}

void model::set_bounds(int var, double lower, double upper) {
  STX_REQUIRE(var >= 0 && var < num_variables(), "set_bounds: bad index");
  STX_REQUIRE(lower <= upper, "set_bounds: bounds crossed");
  auto& v = variables_[static_cast<std::size_t>(var)];
  v.lower = lower;
  v.upper = upper;
}

const variable& model::var(int v) const {
  STX_REQUIRE(v >= 0 && v < num_variables(), "var: bad index");
  return variables_[static_cast<std::size_t>(v)];
}

const row& model::constraint(int r) const {
  STX_REQUIRE(r >= 0 && r < num_rows(), "constraint: bad index");
  return rows_[static_cast<std::size_t>(r)];
}

double model::row_activity(int r, const std::vector<double>& x) const {
  const auto& rr = constraint(r);
  double acc = 0.0;
  for (const auto& t : rr.terms) {
    acc += t.value * x[static_cast<std::size_t>(t.var)];
  }
  return acc;
}

bool model::is_feasible(const std::vector<double>& x, double tol) const {
  if (static_cast<int>(x.size()) != num_variables()) return false;
  for (int v = 0; v < num_variables(); ++v) {
    const auto& vv = var(v);
    const double xv = x[static_cast<std::size_t>(v)];
    if (xv < vv.lower - tol || xv > vv.upper + tol) return false;
  }
  for (int r = 0; r < num_rows(); ++r) {
    const double act = row_activity(r, x);
    const auto& rr = constraint(r);
    switch (rr.rel) {
      case relation::less_equal:
        if (act > rr.rhs + tol) return false;
        break;
      case relation::equal:
        if (std::abs(act - rr.rhs) > tol) return false;
        break;
      case relation::greater_equal:
        if (act < rr.rhs - tol) return false;
        break;
    }
  }
  return true;
}

double model::objective_value(const std::vector<double>& x) const {
  double acc = 0.0;
  for (int v = 0; v < num_variables(); ++v) {
    acc += var(v).objective * x[static_cast<std::size_t>(v)];
  }
  return acc;
}

std::string model::to_string() const {
  std::ostringstream out;
  out << "min ";
  bool first = true;
  for (int v = 0; v < num_variables(); ++v) {
    if (var(v).objective == 0.0) continue;
    if (!first) out << " + ";
    out << var(v).objective << "*x" << v;
    first = false;
  }
  if (first) out << "0";
  out << "\n";
  for (int r = 0; r < num_rows(); ++r) {
    const auto& rr = constraint(r);
    out << "  ";
    for (std::size_t t = 0; t < rr.terms.size(); ++t) {
      if (t > 0) out << " + ";
      out << rr.terms[t].value << "*x" << rr.terms[t].var;
    }
    switch (rr.rel) {
      case relation::less_equal: out << " <= "; break;
      case relation::equal: out << " == "; break;
      case relation::greater_equal: out << " >= "; break;
    }
    out << rr.rhs << "\n";
  }
  for (int v = 0; v < num_variables(); ++v) {
    out << "  " << var(v).lower << " <= x" << v << " <= " << var(v).upper
        << "\n";
  }
  return out.str();
}

}  // namespace stx::lp
