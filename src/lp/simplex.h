// Bounded-variable two-phase primal simplex (legacy cold-solve engine).
//
// This is the tableau-based reference path: every solve is from scratch.
// The warm-startable revised-simplex engine (lp/revised_simplex.h) is
// the production path everywhere — branch & bound included; this engine
// survives only as the LP-level differential reference (tests/lp
// cross-checks the two on random models).
#pragma once

#include <string>
#include <vector>

#include "lp/model.h"

namespace stx::lp {

/// Terminal state of a simplex solve.
enum class solve_status {
  optimal,          ///< proven optimal within tolerance
  infeasible,       ///< phase 1 could not reach feasibility
  unbounded,        ///< objective unbounded below on the feasible set
  iteration_limit,  ///< gave up; solution vector is not meaningful
};

const char* to_string(solve_status s);

/// Solver knobs. Defaults are tuned for the small/medium 0-1 models the
/// crossbar formulation produces.
struct solve_options {
  /// Hard cap on simplex pivots across both phases; 0 = automatic
  /// (40 * (rows + columns) + 1000).
  int max_iterations = 0;
  /// Feasibility / reduced-cost tolerance (applied after row scaling).
  double tol = 1e-7;
  /// Recompute basic values from the transformed rhs every this many
  /// pivots to cap numerical drift.
  int refresh_interval = 256;
  /// Revised engine only: rebuild the basis factorization from scratch
  /// every this many eta updates (and refresh basic values from it). The
  /// drift bound tests shrink this to 1; raising it trades accuracy
  /// checks for speed.
  int refactor_interval = 64;
};

/// Solve outcome. `x` holds structural variable values (phase-2 basic
/// solution) when status is optimal.
struct solve_result {
  solve_status status = solve_status::iteration_limit;
  double objective = 0.0;
  std::vector<double> x;
  int iterations = 0;
  int phase1_iterations = 0;
};

/// Solves `m` with the bounded-variable two-phase tableau simplex method.
///
/// Upper/lower variable bounds are handled implicitly (nonbasic variables
/// rest at either bound), so models with thousands of 0-1 variables do not
/// pay for explicit bound rows. Equality rows are handled through phase-1
/// artificials; Bland's rule engages automatically under prolonged
/// degeneracy so the method always terminates.
solve_result solve_simplex(const model& m, const solve_options& opts = {});

}  // namespace stx::lp
