#include "lp/revised_simplex.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "util/error.h"

namespace stx::lp {

namespace {
constexpr double inf = std::numeric_limits<double>::infinity();
}  // namespace

/// Internal working form. Columns are [structural | slack | artificial]
/// exactly as in the legacy tableau engine (same row equilibration, same
/// slack bounds per relation), so the two engines see identically scaled
/// numbers and their tolerances behave the same. Only B^-1 (dense,
/// row-major) is maintained instead of the whole tableau.
class revised_solver::impl {
 public:
  impl(const model& m, const solve_options& opts) : m_(m), opts_(opts) {
    build();
  }

  void set_bounds(int var, double lower, double upper) {
    STX_REQUIRE(var >= 0 && var < n_struct_,
                "set_bounds: structural variable index out of range");
    STX_REQUIRE(lower <= upper, "set_bounds: crossing bounds");
    lower_[static_cast<std::size_t>(var)] = lower;
    upper_[static_cast<std::size_t>(var)] = upper;
  }

  solve_result solve() {
    fell_back_ = false;
    return cold_solve();
  }

  solve_result solve_from(const basis_state& from) {
    iterations_ = 0;
    phase1_iterations_ = 0;
    fell_back_ = false;
    // Reset the drift flag like cold_solve does: every solve must be a
    // pure function of (bounds, warm basis), never of a previous solve's
    // failure — per-worker solver reuse in the parallel branch & bound
    // depends on it.
    failed_ = false;
    if (!from.compatible(rows_, total_)) return fall_back();
    basis_ = from;
    // Artificials are a phase-1 device; in any adopted basis they are
    // pinned to zero (dependent rows keep them basic at value zero).
    for (int a = art_begin_; a < total_; ++a) {
      lower_[static_cast<std::size_t>(a)] = 0.0;
      upper_[static_cast<std::size_t>(a)] = 0.0;
    }
    rest_nonbasic_values();
    if (!refactorize()) return fall_back();
    compute_basic_values();
    load_phase2_costs();
    auto status = dual_optimize();
    if (status == solve_status::optimal) {
      // Drift guard: the dual run ends primal feasible; a reduced-cost
      // violation can only come from numerical drift or an adopted basis
      // that was not optimal. A primal pass from here is warm either way.
      status = primal_optimize();
    }
    if (status == solve_status::iteration_limit ||
        status == solve_status::unbounded) {
      // A warm start must never be WORSE than a cold solve: unbounded
      // cannot arise from tightened bounds unless the adopted basis was
      // stale, and an iteration-limited dual run may still cold-solve
      // within budget. Restart from scratch before giving up.
      return fall_back();
    }
    return finish(status);
  }

  void add_row(const std::vector<term>& terms, relation rel, double rhs) {
    for (const auto& t : terms) {
      STX_REQUIRE(t.var >= 0 && t.var < n_struct_,
                  "add_row: term names an unknown structural variable");
    }
    // Equilibrate exactly like build() so a freshly constructed solver on
    // the extended model sees the same scaled numbers.
    double scale = std::abs(rhs);
    for (const auto& t : terms) scale = std::max(scale, std::abs(t.value));
    if (scale < 1.0) scale = 1.0;

    const int r = rows_;
    const int slack = art_begin_;  // the new slack slides in at the old
                                   // artificial block's start
    cols_.insert(cols_.begin() + slack,
                 std::vector<std::pair<int, double>>{{r, 1.0}});
    double slo = 0.0, shi = inf;
    switch (rel) {
      case relation::less_equal: slo = 0.0; shi = inf; break;
      case relation::equal: slo = 0.0; shi = 0.0; break;
      case relation::greater_equal: slo = -inf; shi = 0.0; break;
    }
    lower_.insert(lower_.begin() + slack, slo);
    upper_.insert(upper_.begin() + slack, shi);
    cost_.insert(cost_.begin() + slack, 0.0);
    value_.insert(value_.begin() + slack, slo == -inf ? 0.0 : slo);
    for (const auto& t : terms) {
      cols_[static_cast<std::size_t>(t.var)].push_back({r, t.value / scale});
    }
    rhs_.push_back(rhs / scale);
    // The new artificial goes at the very end of the (shifted) block.
    cols_.push_back({{r, 1.0}});
    lower_.push_back(0.0);
    upper_.push_back(0.0);
    cost_.push_back(0.0);
    value_.push_back(0.0);
    // Remap the basis: every artificial index moved one right, the new
    // row's slack is its basic variable, and inserting the slack's status
    // at its own index keeps every other status aligned.
    for (auto& b : basis_.basic) {
      if (b >= slack) ++b;
    }
    basis_.status.insert(basis_.status.begin() + slack, var_status::basic);
    basis_.status.push_back(var_status::at_lower);
    basis_.basic.push_back(slack);

    rows_ += 1;
    art_begin_ += 1;
    total_ += 2;
    binv_.assign(static_cast<std::size_t>(rows_) *
                     static_cast<std::size_t>(rows_),
                 0.0);
    w_.assign(static_cast<std::size_t>(rows_), 0.0);
    y_.assign(static_cast<std::size_t>(rows_), 0.0);
    d_.assign(static_cast<std::size_t>(total_), 0.0);
    if (opts_.max_iterations <= 0) {
      max_iterations_ = 40 * (rows_ + total_) + 1000;
    }
    // The factorization is stale; the next solve path refactorizes.
  }

  bool last_solve_fell_back() const { return fell_back_; }

  const basis_state& last_basis() const { return basis_; }
  std::int64_t factorizations() const { return factorizations_; }
  std::int64_t dual_pivots() const { return dual_pivots_; }

 private:
  // ---------------------------------------------------------------- setup
  void build() {
    rows_ = m_.num_rows();
    n_struct_ = m_.num_variables();
    slack_begin_ = n_struct_;
    art_begin_ = n_struct_ + rows_;
    total_ = art_begin_ + rows_;

    lower_.assign(static_cast<std::size_t>(total_), 0.0);
    upper_.assign(static_cast<std::size_t>(total_), inf);
    cost_.assign(static_cast<std::size_t>(total_), 0.0);
    value_.assign(static_cast<std::size_t>(total_), 0.0);
    cols_.assign(static_cast<std::size_t>(total_), {});
    rhs_.assign(static_cast<std::size_t>(rows_), 0.0);

    for (int v = 0; v < n_struct_; ++v) {
      lower_[static_cast<std::size_t>(v)] = m_.var(v).lower;
      upper_[static_cast<std::size_t>(v)] = m_.var(v).upper;
    }

    // Row equilibration identical to the legacy engine: divide each row
    // (and its rhs) by its largest magnitude.
    for (int r = 0; r < rows_; ++r) {
      const auto& rr = m_.constraint(r);
      double scale = std::abs(rr.rhs);
      for (const auto& t : rr.terms) scale = std::max(scale, std::abs(t.value));
      if (scale < 1.0) scale = 1.0;
      for (const auto& t : rr.terms) {
        cols_[static_cast<std::size_t>(t.var)].push_back(
            {r, t.value / scale});
      }
      rhs_[static_cast<std::size_t>(r)] = rr.rhs / scale;
      const int s = slack_begin_ + r;
      cols_[static_cast<std::size_t>(s)].push_back({r, 1.0});
      switch (rr.rel) {
        case relation::less_equal:
          lower_[static_cast<std::size_t>(s)] = 0.0;
          upper_[static_cast<std::size_t>(s)] = inf;
          break;
        case relation::equal:
          lower_[static_cast<std::size_t>(s)] = 0.0;
          upper_[static_cast<std::size_t>(s)] = 0.0;
          break;
        case relation::greater_equal:
          lower_[static_cast<std::size_t>(s)] = -inf;
          upper_[static_cast<std::size_t>(s)] = 0.0;
          break;
      }
      const int a = art_begin_ + r;
      cols_[static_cast<std::size_t>(a)].push_back({r, 1.0});
      lower_[static_cast<std::size_t>(a)] = 0.0;
      upper_[static_cast<std::size_t>(a)] = 0.0;
    }

    basis_.basic.assign(static_cast<std::size_t>(rows_), -1);
    basis_.status.assign(static_cast<std::size_t>(total_),
                         var_status::at_lower);
    binv_.assign(static_cast<std::size_t>(rows_) *
                     static_cast<std::size_t>(rows_),
                 0.0);
    w_.assign(static_cast<std::size_t>(rows_), 0.0);
    y_.assign(static_cast<std::size_t>(rows_), 0.0);
    d_.assign(static_cast<std::size_t>(total_), 0.0);

    max_iterations_ = opts_.max_iterations > 0
                          ? opts_.max_iterations
                          : 40 * (rows_ + total_) + 1000;
    refactor_interval_ = std::max(1, opts_.refactor_interval);
  }

  double feas_tol() const { return opts_.tol; }
  double phase1_tol() const { return opts_.tol * std::max(1, rows_); }

  double resting_value(int j) const {
    switch (basis_.status[static_cast<std::size_t>(j)]) {
      case var_status::at_lower: return lower_[static_cast<std::size_t>(j)];
      case var_status::at_upper: return upper_[static_cast<std::size_t>(j)];
      case var_status::free_nb: return 0.0;
      case var_status::basic: break;
    }
    return value_[static_cast<std::size_t>(j)];
  }

  /// Snaps every nonbasic variable to the bound its status names (the
  /// CURRENT bound — this is where a warm start picks up a child node's
  /// tightened bounds). Statuses inconsistent with the bounds are
  /// repaired toward a finite bound.
  void rest_nonbasic_values() {
    for (int j = 0; j < total_; ++j) {
      auto& st = basis_.status[static_cast<std::size_t>(j)];
      if (st == var_status::basic) continue;
      const double lo = lower_[static_cast<std::size_t>(j)];
      const double hi = upper_[static_cast<std::size_t>(j)];
      if (st == var_status::at_lower && lo == -inf) {
        st = hi < inf ? var_status::at_upper : var_status::free_nb;
      } else if (st == var_status::at_upper && hi == inf) {
        st = lo > -inf ? var_status::at_lower : var_status::free_nb;
      } else if (st == var_status::free_nb && (lo > -inf || hi < inf)) {
        st = lo > -inf ? var_status::at_lower : var_status::at_upper;
      }
      value_[static_cast<std::size_t>(j)] = resting_value(j);
    }
  }

  // ------------------------------------------------------- factorization
  double& binv(int r, int c) {
    return binv_[static_cast<std::size_t>(r) *
                     static_cast<std::size_t>(rows_) +
                 static_cast<std::size_t>(c)];
  }
  const double& binv(int r, int c) const {
    return binv_[static_cast<std::size_t>(r) *
                     static_cast<std::size_t>(rows_) +
                 static_cast<std::size_t>(c)];
  }

  /// Rebuilds B^-1 from the basis columns by Gauss-Jordan elimination
  /// with partial pivoting. Returns false on a (numerically) singular
  /// basis; callers fall back to a cold restart.
  bool refactorize() {
    ++factorizations_;
    pivots_since_refactor_ = 0;
    if (rows_ == 0) return true;
    // aug = [B | I], reduced in place to [I | B^-1].
    const int n2 = 2 * rows_;
    std::vector<double> aug(static_cast<std::size_t>(rows_) *
                                static_cast<std::size_t>(n2),
                            0.0);
    auto at = [&](int r, int c) -> double& {
      return aug[static_cast<std::size_t>(r) * static_cast<std::size_t>(n2) +
                 static_cast<std::size_t>(c)];
    };
    for (int c = 0; c < rows_; ++c) {
      for (const auto& [r, a] :
           cols_[static_cast<std::size_t>(
               basis_.basic[static_cast<std::size_t>(c)])]) {
        at(r, c) = a;
      }
      at(c, rows_ + c) = 1.0;
    }
    for (int c = 0; c < rows_; ++c) {
      int piv = c;
      for (int r = c + 1; r < rows_; ++r) {
        if (std::abs(at(r, c)) > std::abs(at(piv, c))) piv = r;
      }
      if (std::abs(at(piv, c)) < 1e-11) return false;  // singular
      if (piv != c) {
        for (int k = 0; k < n2; ++k) std::swap(at(piv, k), at(c, k));
      }
      const double invp = 1.0 / at(c, c);
      for (int k = 0; k < n2; ++k) at(c, k) *= invp;
      for (int r = 0; r < rows_; ++r) {
        if (r == c) continue;
        const double f = at(r, c);
        if (f == 0.0) continue;
        for (int k = c; k < n2; ++k) at(r, k) -= f * at(c, k);
      }
    }
    for (int r = 0; r < rows_; ++r) {
      for (int c = 0; c < rows_; ++c) binv(r, c) = at(r, rows_ + c);
    }
    return true;
  }

  /// x_B = B^-1 (b - N x_N) for the current nonbasic resting values.
  void compute_basic_values() {
    std::vector<double> resid = rhs_;
    for (int j = 0; j < total_; ++j) {
      if (basis_.status[static_cast<std::size_t>(j)] == var_status::basic) {
        continue;
      }
      const double xj = value_[static_cast<std::size_t>(j)];
      if (xj == 0.0) continue;
      for (const auto& [r, a] : cols_[static_cast<std::size_t>(j)]) {
        resid[static_cast<std::size_t>(r)] -= a * xj;
      }
    }
    for (int r = 0; r < rows_; ++r) {
      double v = 0.0;
      for (int c = 0; c < rows_; ++c) {
        v += binv(r, c) * resid[static_cast<std::size_t>(c)];
      }
      value_[static_cast<std::size_t>(
          basis_.basic[static_cast<std::size_t>(r)])] = v;
    }
  }

  /// w = B^-1 a_j (FTRAN).
  void ftran(int j) {
    std::fill(w_.begin(), w_.end(), 0.0);
    for (const auto& [i, a] : cols_[static_cast<std::size_t>(j)]) {
      for (int r = 0; r < rows_; ++r) {
        w_[static_cast<std::size_t>(r)] += binv(r, i) * a;
      }
    }
  }

  /// y = c_B^T B^-1 then d_j = c_j - y a_j for every column (pricing).
  void price() {
    std::fill(y_.begin(), y_.end(), 0.0);
    for (int r = 0; r < rows_; ++r) {
      const double cb =
          cost_[static_cast<std::size_t>(
              basis_.basic[static_cast<std::size_t>(r)])];
      if (cb == 0.0) continue;
      for (int c = 0; c < rows_; ++c) {
        y_[static_cast<std::size_t>(c)] += cb * binv(r, c);
      }
    }
    for (int j = 0; j < total_; ++j) {
      double dj = cost_[static_cast<std::size_t>(j)];
      for (const auto& [r, a] : cols_[static_cast<std::size_t>(j)]) {
        dj -= y_[static_cast<std::size_t>(r)] * a;
      }
      d_[static_cast<std::size_t>(j)] = dj;
    }
  }

  /// Product-form update of B^-1 after column `q` (spike w_) replaced the
  /// basic variable of row `r`.
  void eta_update(int r) {
    const double piv = w_[static_cast<std::size_t>(r)];
    const double invp = 1.0 / piv;
    for (int c = 0; c < rows_; ++c) binv(r, c) *= invp;
    for (int i = 0; i < rows_; ++i) {
      if (i == r) continue;
      const double f = w_[static_cast<std::size_t>(i)];
      if (f == 0.0) continue;
      for (int c = 0; c < rows_; ++c) binv(i, c) -= f * binv(r, c);
    }
    if (++pivots_since_refactor_ >= refactor_interval_) {
      if (refactorize()) {
        compute_basic_values();
      } else {
        failed_ = true;  // singular after drift: callers cold-restart
      }
    }
  }

  // ------------------------------------------------------- primal method
  int choose_entering(bool bland) const {
    int best = -1;
    double best_score = opts_.tol;
    for (int j = 0; j < total_; ++j) {
      const auto st = basis_.status[static_cast<std::size_t>(j)];
      if (st == var_status::basic) continue;
      if (upper_[static_cast<std::size_t>(j)] -
                  lower_[static_cast<std::size_t>(j)] <
              1e-15 &&
          st != var_status::free_nb) {
        continue;  // fixed variable can never move
      }
      double score = 0.0;
      switch (st) {
        case var_status::at_lower: score = -d_[static_cast<std::size_t>(j)]; break;
        case var_status::at_upper: score = d_[static_cast<std::size_t>(j)]; break;
        case var_status::free_nb:
          score = std::abs(d_[static_cast<std::size_t>(j)]);
          break;
        case var_status::basic: break;
      }
      if (score > best_score) {
        best = j;
        best_score = score;
        if (bland) break;  // first eligible index suffices
      }
    }
    return best;
  }

  /// One primal phase on the current costs: iterate until optimal /
  /// unbounded / out of budget. Mirrors the legacy tableau loop, with the
  /// tableau column replaced by an FTRAN.
  solve_status primal_optimize() {
    int degenerate_streak = 0;
    const int bland_trigger = 2 * rows_ + 64;
    while (true) {
      if (failed_) return solve_status::iteration_limit;
      if (iterations_ >= max_iterations_) return solve_status::iteration_limit;
      price();
      const bool bland = degenerate_streak > bland_trigger;
      const int q = choose_entering(bland);
      if (q < 0) return solve_status::optimal;
      const auto qst = basis_.status[static_cast<std::size_t>(q)];
      const double sigma =
          (qst == var_status::at_upper ||
           (qst == var_status::free_nb && d_[static_cast<std::size_t>(q)] > 0.0))
              ? -1.0
              : 1.0;

      ftran(q);

      const double qlo = lower_[static_cast<std::size_t>(q)];
      const double qhi = upper_[static_cast<std::size_t>(q)];
      const double entering_range =
          (qlo > -inf && qhi < inf) ? qhi - qlo : inf;
      double t_max = inf;
      int leave_row = -1;
      bool leave_to_upper = false;
      for (int r = 0; r < rows_; ++r) {
        const double a = w_[static_cast<std::size_t>(r)];
        if (std::abs(a) < pivot_tol_) continue;
        const int b = basis_.basic[static_cast<std::size_t>(r)];
        const double delta = -sigma * a;  // d(value_[b]) / dt
        double limit = 0.0;
        bool to_upper = false;
        if (delta > 0.0) {
          if (upper_[static_cast<std::size_t>(b)] == inf) continue;
          limit = (upper_[static_cast<std::size_t>(b)] -
                   value_[static_cast<std::size_t>(b)]) /
                  delta;
          to_upper = true;
        } else {
          if (lower_[static_cast<std::size_t>(b)] == -inf) continue;
          limit = (lower_[static_cast<std::size_t>(b)] -
                   value_[static_cast<std::size_t>(b)]) /
                  delta;
        }
        if (limit < 0.0) limit = 0.0;  // numerical guard
        bool take = false;
        if (leave_row < 0 || limit < t_max - 1e-12) {
          take = true;
        } else if (limit <= t_max + 1e-12) {
          if (bland) {
            take = b < basis_.basic[static_cast<std::size_t>(leave_row)];
          } else {
            take = std::abs(a) >
                   std::abs(w_[static_cast<std::size_t>(leave_row)]);
          }
        }
        if (take) {
          t_max = std::min(t_max, limit);
          leave_row = r;
          leave_to_upper = to_upper;
        }
      }

      if (entering_range <= t_max) {
        // The entering variable reaches its opposite bound first.
        if (entering_range == inf) return solve_status::unbounded;
        move_entering(q, sigma, entering_range);
        basis_.status[static_cast<std::size_t>(q)] =
            sigma > 0.0 ? var_status::at_upper : var_status::at_lower;
        value_[static_cast<std::size_t>(q)] = sigma > 0.0 ? qhi : qlo;
        degenerate_streak =
            entering_range <= opts_.tol ? degenerate_streak + 1 : 0;
      } else if (leave_row < 0) {
        return solve_status::unbounded;
      } else {
        move_entering(q, sigma, t_max);
        const int leaving =
            basis_.basic[static_cast<std::size_t>(leave_row)];
        basis_.status[static_cast<std::size_t>(leaving)] =
            leave_to_upper ? var_status::at_upper : var_status::at_lower;
        value_[static_cast<std::size_t>(leaving)] =
            leave_to_upper ? upper_[static_cast<std::size_t>(leaving)]
                           : lower_[static_cast<std::size_t>(leaving)];
        basis_.status[static_cast<std::size_t>(q)] = var_status::basic;
        basis_.basic[static_cast<std::size_t>(leave_row)] = q;
        eta_update(leave_row);
        degenerate_streak = t_max <= opts_.tol ? degenerate_streak + 1 : 0;
      }
      ++iterations_;
    }
  }

  /// Advances the entering variable by sigma*t, adjusting basic values
  /// along the FTRAN spike (no basis change here).
  void move_entering(int q, double sigma, double t) {
    if (t <= 0.0) return;  // degenerate step: values unchanged
    for (int r = 0; r < rows_; ++r) {
      const double a = w_[static_cast<std::size_t>(r)];
      if (a == 0.0) continue;
      value_[static_cast<std::size_t>(
          basis_.basic[static_cast<std::size_t>(r)])] += -sigma * a * t;
    }
    value_[static_cast<std::size_t>(q)] += sigma * t;
  }

  // --------------------------------------------------------- dual method
  /// Dual simplex on the phase-2 costs: starting from a dual-feasible
  /// basis whose basic values violate bounds (the warm-start state after
  /// branching), pivot the worst violation out until primal feasible.
  /// Returns infeasible when a violated row admits no entering column —
  /// the dual ray proves the (child) LP empty, which is the common prune.
  solve_status dual_optimize() {
    int degenerate_streak = 0;
    const int bland_trigger = 2 * rows_ + 64;
    while (true) {
      if (failed_) return solve_status::iteration_limit;
      if (iterations_ >= max_iterations_) return solve_status::iteration_limit;
      const bool bland = degenerate_streak > bland_trigger;

      // Leaving row: largest bound violation (Bland: smallest basic
      // index among violated rows).
      int r = -1;
      double worst = feas_tol();
      bool above = false;
      for (int i = 0; i < rows_; ++i) {
        const int b = basis_.basic[static_cast<std::size_t>(i)];
        const double v = value_[static_cast<std::size_t>(b)];
        const double lo = lower_[static_cast<std::size_t>(b)];
        const double hi = upper_[static_cast<std::size_t>(b)];
        double viol = 0.0;
        bool over = false;
        if (v < lo - feas_tol()) {
          viol = lo - v;
        } else if (v > hi + feas_tol()) {
          viol = v - hi;
          over = true;
        } else {
          continue;
        }
        bool take = false;
        if (r < 0) {
          take = true;
        } else if (bland) {
          take = b < basis_.basic[static_cast<std::size_t>(r)];
        } else {
          take = viol > worst;
        }
        if (take) {
          r = i;
          worst = viol;
          above = over;
        }
      }
      if (r < 0) return solve_status::optimal;  // primal feasible

      price();

      // Entering column: bounded-variable dual ratio test along B^-1
      // row r. delta_j is the rate at which d_j would move if the
      // leaving variable's violation were being repaired.
      const double* rho =
          &binv_[static_cast<std::size_t>(r) *
                 static_cast<std::size_t>(rows_)];
      int q = -1;
      double best_ratio = inf;
      double best_alpha = 0.0;
      double alpha_q = 0.0;
      for (int j = 0; j < total_; ++j) {
        const auto st = basis_.status[static_cast<std::size_t>(j)];
        if (st == var_status::basic) continue;
        if (upper_[static_cast<std::size_t>(j)] -
                    lower_[static_cast<std::size_t>(j)] <
                1e-15 &&
            st != var_status::free_nb) {
          continue;  // fixed: can never enter
        }
        double alpha = 0.0;
        for (const auto& [i, a] : cols_[static_cast<std::size_t>(j)]) {
          alpha += rho[i] * a;
        }
        const double delta = above ? alpha : -alpha;
        double ratio;
        if (st == var_status::at_lower && delta > pivot_tol_) {
          ratio = std::max(0.0, d_[static_cast<std::size_t>(j)]) / delta;
        } else if (st == var_status::at_upper && delta < -pivot_tol_) {
          ratio = std::min(0.0, d_[static_cast<std::size_t>(j)]) / delta;
        } else if (st == var_status::free_nb &&
                   std::abs(delta) > pivot_tol_) {
          ratio = std::abs(d_[static_cast<std::size_t>(j)]) /
                  std::abs(delta);
        } else {
          continue;
        }
        bool take = false;
        if (q < 0 || ratio < best_ratio - 1e-12) {
          take = true;
        } else if (ratio <= best_ratio + 1e-12) {
          // Tie: Bland keeps the smallest column index (anti-cycling);
          // otherwise the larger pivot magnitude (stability).
          take = bland ? j < q : std::abs(alpha) > std::abs(best_alpha);
        }
        if (take) {
          q = j;
          best_ratio = std::min(best_ratio, ratio);
          best_alpha = alpha;
          alpha_q = alpha;
        }
      }
      if (q < 0) return solve_status::infeasible;  // dual ray: LP empty

      // Pivot: recompute the spike through a fresh FTRAN (alpha_q from
      // the pricing row can have drifted; the FTRAN value is the one the
      // eta update uses).
      ftran(q);
      const double piv = w_[static_cast<std::size_t>(r)];
      if (std::abs(piv) < pivot_tol_ ||
          std::abs(piv - alpha_q) > 1e-6 * std::max(1.0, std::abs(piv))) {
        // Factorization drift: rebuild and retry this iteration.
        if (!refactorize()) return solve_status::iteration_limit;
        compute_basic_values();
        ++degenerate_streak;
        if (degenerate_streak > bland_trigger + rows_ + 16) {
          return solve_status::iteration_limit;  // stuck: cold restart
        }
        continue;
      }

      const int b = basis_.basic[static_cast<std::size_t>(r)];
      const double target = above ? upper_[static_cast<std::size_t>(b)]
                                  : lower_[static_cast<std::size_t>(b)];
      const double t = (value_[static_cast<std::size_t>(b)] - target) / piv;
      for (int i = 0; i < rows_; ++i) {
        const double a = w_[static_cast<std::size_t>(i)];
        if (a == 0.0) continue;
        value_[static_cast<std::size_t>(
            basis_.basic[static_cast<std::size_t>(i)])] -= t * a;
      }
      value_[static_cast<std::size_t>(q)] = resting_value(q) + t;
      basis_.status[static_cast<std::size_t>(b)] =
          above ? var_status::at_upper : var_status::at_lower;
      value_[static_cast<std::size_t>(b)] = target;
      basis_.status[static_cast<std::size_t>(q)] = var_status::basic;
      basis_.basic[static_cast<std::size_t>(r)] = q;
      eta_update(r);
      degenerate_streak = std::abs(t) <= opts_.tol ? degenerate_streak + 1 : 0;
      ++iterations_;
      ++dual_pivots_;
    }
  }

  // ---------------------------------------------------------- cold solve
  /// Warm-start failure path: cold-restart WITHOUT dropping the pivots
  /// already spent — the work happened, so the caller's LP-iteration
  /// telemetry (the perf guard's currency) must include it.
  solve_result fall_back() {
    fell_back_ = true;
    const int spent = iterations_;
    auto res = cold_solve();
    res.iterations += spent;
    return res;
  }

  void load_phase2_costs() {
    std::fill(cost_.begin(), cost_.end(), 0.0);
    for (int v = 0; v < n_struct_; ++v) {
      cost_[static_cast<std::size_t>(v)] = m_.var(v).objective;
    }
  }

  solve_result cold_solve() {
    iterations_ = 0;
    phase1_iterations_ = 0;
    failed_ = false;

    // Crash point: every structural/slack variable at its finite bound of
    // smallest magnitude (legacy rule), artificials basic absorbing the
    // residual of their row.
    for (int j = 0; j < art_begin_; ++j) {
      const double lo = lower_[static_cast<std::size_t>(j)];
      const double hi = upper_[static_cast<std::size_t>(j)];
      auto& st = basis_.status[static_cast<std::size_t>(j)];
      if (lo == -inf && hi == inf) {
        st = var_status::free_nb;
        value_[static_cast<std::size_t>(j)] = 0.0;
      } else if (lo == -inf) {
        st = var_status::at_upper;
        value_[static_cast<std::size_t>(j)] = hi;
      } else if (hi == inf) {
        st = var_status::at_lower;
        value_[static_cast<std::size_t>(j)] = lo;
      } else if (std::abs(lo) <= std::abs(hi)) {
        st = var_status::at_lower;
        value_[static_cast<std::size_t>(j)] = lo;
      } else {
        st = var_status::at_upper;
        value_[static_cast<std::size_t>(j)] = hi;
      }
    }
    std::vector<double> resid = rhs_;
    for (int j = 0; j < art_begin_; ++j) {
      const double xj = value_[static_cast<std::size_t>(j)];
      if (xj == 0.0) continue;
      for (const auto& [r, a] : cols_[static_cast<std::size_t>(j)]) {
        resid[static_cast<std::size_t>(r)] -= a * xj;
      }
    }
    // Phase-1 sign trick: an artificial with a negative residual lives in
    // (-inf, 0] with cost -1, so phase 1 minimizes sum |artificial| as a
    // plain linear objective over an identity basis.
    std::fill(cost_.begin(), cost_.end(), 0.0);
    for (int r = 0; r < rows_; ++r) {
      const int a = art_begin_ + r;
      const double res = resid[static_cast<std::size_t>(r)];
      basis_.basic[static_cast<std::size_t>(r)] = a;
      basis_.status[static_cast<std::size_t>(a)] = var_status::basic;
      value_[static_cast<std::size_t>(a)] = res;
      if (res >= 0.0) {
        lower_[static_cast<std::size_t>(a)] = 0.0;
        upper_[static_cast<std::size_t>(a)] = inf;
        cost_[static_cast<std::size_t>(a)] = 1.0;
      } else {
        lower_[static_cast<std::size_t>(a)] = -inf;
        upper_[static_cast<std::size_t>(a)] = 0.0;
        cost_[static_cast<std::size_t>(a)] = -1.0;
      }
    }
    if (!refactorize()) {  // identity basis: cannot fail, but be safe
      return finish(solve_status::iteration_limit);
    }

    const auto p1 = primal_optimize();
    phase1_iterations_ = iterations_;
    if (p1 == solve_status::iteration_limit) return finish(p1);
    double infeas = 0.0;
    for (int a = art_begin_; a < total_; ++a) {
      infeas += std::abs(value_[static_cast<std::size_t>(a)]);
    }
    if (infeas > phase1_tol()) return finish(solve_status::infeasible);

    // Pin artificials to zero so phase 2 cannot reuse them; basic
    // artificials on dependent rows stay basic at value zero.
    for (int a = art_begin_; a < total_; ++a) {
      lower_[static_cast<std::size_t>(a)] = 0.0;
      upper_[static_cast<std::size_t>(a)] = 0.0;
      if (basis_.status[static_cast<std::size_t>(a)] != var_status::basic) {
        basis_.status[static_cast<std::size_t>(a)] = var_status::at_lower;
        value_[static_cast<std::size_t>(a)] = 0.0;
      }
    }

    load_phase2_costs();
    const auto p2 = primal_optimize();
    return finish(p2);
  }

  solve_result finish(solve_status status) {
    solve_result res;
    res.status = status;
    res.iterations = iterations_;
    res.phase1_iterations = phase1_iterations_;
    if (status == solve_status::optimal) {
      res.x.assign(static_cast<std::size_t>(n_struct_), 0.0);
      for (int v = 0; v < n_struct_; ++v) {
        res.x[static_cast<std::size_t>(v)] =
            value_[static_cast<std::size_t>(v)];
      }
      res.objective = m_.objective_value(res.x);
    }
    return res;
  }

  const model& m_;
  const solve_options opts_;
  int rows_ = 0;
  int n_struct_ = 0;
  int slack_begin_ = 0;
  int art_begin_ = 0;
  int total_ = 0;
  int max_iterations_ = 0;
  int refactor_interval_ = 64;
  int iterations_ = 0;
  int phase1_iterations_ = 0;
  int pivots_since_refactor_ = 0;
  bool failed_ = false;
  bool fell_back_ = false;
  double pivot_tol_ = 1e-9;

  std::int64_t factorizations_ = 0;
  std::int64_t dual_pivots_ = 0;

  /// Sparse columns of the scaled [A | I_slack | I_art] system.
  std::vector<std::vector<std::pair<int, double>>> cols_;
  std::vector<double> rhs_;
  std::vector<double> lower_, upper_, cost_, value_;
  std::vector<double> binv_;  ///< dense row-major B^-1
  std::vector<double> w_, y_, d_;
  basis_state basis_;
};

revised_solver::revised_solver(const model& m, const solve_options& opts)
    : impl_(new impl(m, opts)) {}

revised_solver::~revised_solver() { delete impl_; }

void revised_solver::set_bounds(int var, double lower, double upper) {
  impl_->set_bounds(var, lower, upper);
}

void revised_solver::add_row(const std::vector<term>& terms, relation rel,
                             double rhs) {
  impl_->add_row(terms, rel, rhs);
}

solve_result revised_solver::solve() { return impl_->solve(); }

solve_result revised_solver::solve_from(const basis_state& from) {
  return impl_->solve_from(from);
}

const basis_state& revised_solver::last_basis() const {
  return impl_->last_basis();
}

bool revised_solver::last_solve_fell_back() const {
  return impl_->last_solve_fell_back();
}

std::int64_t revised_solver::factorizations() const {
  return impl_->factorizations();
}

std::int64_t revised_solver::dual_pivots() const {
  return impl_->dual_pivots();
}

solve_result solve_revised(const model& m, const solve_options& opts) {
  revised_solver solver(m, opts);
  return solver.solve();
}

}  // namespace stx::lp
