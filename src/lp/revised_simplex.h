// Revised bounded-variable simplex with an explicit, warm-startable basis.
//
// The legacy engine (lp/simplex.h) maintains the full dense tableau
// B^-1 [A | I] and can only cold-solve; this engine maintains B^-1 alone
// (product-form eta updates with periodic refactorization), exposes the
// basis as a first-class snapshot (lp/basis.h), and supports DUAL simplex
// re-solves from a foreign basis after bound changes. That combination is
// what turns the MILP branch & bound from one full two-phase solve per
// node into a handful of dual pivots per node: a child node inherits its
// parent's optimal basis — still dual feasible, because branching only
// moves bounds — and the dual method repairs primal feasibility.
//
// Termination and conditioning use the same defences as the legacy
// engine: Bland's rule engages under prolonged degeneracy, basic values
// are refreshed from a fresh factorization every `refactor_interval`
// pivots, and any singular or drifted factorization falls back to a cold
// restart. The two engines agree on every solve outcome (status and
// objective); tests/lp cross-checks them on random models.
#pragma once

#include <cstdint>

#include "lp/basis.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace stx::lp {

/// Revised simplex solver bound to one model. The model's ROWS, objective
/// and column set are fixed at construction; variable BOUNDS may change
/// between solves through set_bounds — the branch & bound mutates bounds
/// thousands of times against a single revised_solver instance.
class revised_solver {
 public:
  explicit revised_solver(const model& m, const solve_options& opts = {});
  ~revised_solver();

  revised_solver(const revised_solver&) = delete;
  revised_solver& operator=(const revised_solver&) = delete;

  /// Replaces the bounds of structural variable `var` for subsequent
  /// solves. Does not touch the underlying model.
  void set_bounds(int var, double lower, double upper);

  /// Appends one constraint row to the working system WITHOUT rebuilding
  /// the solver. The row is equilibrated exactly as at construction, its
  /// slack becomes the new row's basic variable, and artificial column
  /// indices shift one slot right inside the stored basis; the next
  /// solve/solve_from refactorizes against the extended system (a warm
  /// dual re-solve from last_basis() repairs the feasibility the row
  /// broke — the cut-separation loop in milp/branch_bound runs on this).
  /// Column geometry after N add_row calls is identical to a solver
  /// freshly built from the model with the same rows appended in the same
  /// order, so basis snapshots are interchangeable between the two.
  /// Does not touch the underlying model.
  void add_row(const std::vector<term>& terms, relation rel, double rhs);

  /// Cold solve: artificial crash basis, two-phase primal simplex.
  solve_result solve();

  /// Warm solve: adopt `from` (typically the parent node's optimal
  /// basis), refactorize, and run the dual simplex to repair the primal
  /// infeasibilities the bound changes introduced; a primal clean-up pass
  /// runs only if numerical drift left a reduced-cost violation. Falls
  /// back to a cold solve when the snapshot is incompatible or the
  /// factorization is singular, so the call never fails where solve()
  /// would succeed.
  solve_result solve_from(const basis_state& from);

  /// Basis after the most recent successful (status optimal) solve.
  /// Empty before the first solve.
  const basis_state& last_basis() const;

  /// True when the most recent solve_from call had to restart cold
  /// (incompatible snapshot, singular factorization, or a dual run that
  /// exhausted its budget). The iterations of the abandoned warm attempt
  /// are still included in that solve's result; callers use this flag to
  /// attribute the solve to the right engine in telemetry.
  bool last_solve_fell_back() const;

  /// Total refactorizations across all solves (telemetry).
  std::int64_t factorizations() const;

  /// Dual-simplex pivots across all solves (telemetry; also counted in
  /// each solve_result's `iterations`).
  std::int64_t dual_pivots() const;

 private:
  class impl;
  impl* impl_;
};

/// One-shot convenience mirroring solve_simplex: cold-solves `m` with the
/// revised engine.
solve_result solve_revised(const model& m, const solve_options& opts = {});

}  // namespace stx::lp
