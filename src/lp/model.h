// Linear program model builder.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace stx::lp {

/// Row sense of a linear constraint.
enum class relation { less_equal, equal, greater_equal };

/// +infinity bound sentinel.
inline constexpr double infinity = std::numeric_limits<double>::infinity();

/// One nonzero coefficient `value` of variable `var` in some row.
struct term {
  int var = 0;
  double value = 0.0;
};

/// A linear constraint: sum of terms (rel) rhs.
struct row {
  std::vector<term> terms;
  relation rel = relation::less_equal;
  double rhs = 0.0;
  std::string name;
};

/// Variable metadata: bounds and objective coefficient.
struct variable {
  double lower = 0.0;
  double upper = infinity;
  double objective = 0.0;
  std::string name;
};

/// Builder for a linear program in the form
///
///     minimize    c' x
///     subject to  A x (<=, =, >=) b
///                 l <= x <= u
///
/// Construction is row-oriented: declare variables first, then add rows
/// referring to variable indices. The model is a plain data holder; the
/// solver (`stx::lp::solve_simplex`) never mutates it.
class model {
 public:
  /// Declares a variable and returns its index.
  int add_variable(double lower, double upper, double objective,
                   std::string name = {});

  /// Adds a constraint row and returns its index. Terms may mention each
  /// variable at most once; variable indices must be valid.
  int add_row(std::vector<term> terms, relation rel, double rhs,
              std::string name = {});

  /// Replaces the objective coefficient of variable `var`.
  void set_objective(int var, double coefficient);

  /// Tightens (replaces) the bounds of `var`.
  void set_bounds(int var, double lower, double upper);

  int num_variables() const { return static_cast<int>(variables_.size()); }
  int num_rows() const { return static_cast<int>(rows_.size()); }

  const variable& var(int v) const;
  const row& constraint(int r) const;

  /// Evaluates the left-hand side of row `r` at assignment `x`.
  double row_activity(int r, const std::vector<double>& x) const;

  /// True when `x` satisfies every row and every bound within `tol`.
  bool is_feasible(const std::vector<double>& x, double tol = 1e-6) const;

  /// Objective value c'x.
  double objective_value(const std::vector<double>& x) const;

  /// Human-readable dump (small models; used by tests and debugging).
  std::string to_string() const;

 private:
  std::vector<variable> variables_;
  std::vector<row> rows_;
};

}  // namespace stx::lp
