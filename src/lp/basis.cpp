#include "lp/basis.h"

#include <cstddef>

namespace stx::lp {

bool basis_state::consistent() const {
  const int rows = static_cast<int>(basic.size());
  const int columns = static_cast<int>(status.size());
  int basic_marks = 0;
  for (const auto s : status) {
    if (s == var_status::basic) ++basic_marks;
  }
  if (basic_marks != rows) return false;
  for (const int b : basic) {
    if (b < 0 || b >= columns) return false;
    if (status[static_cast<std::size_t>(b)] != var_status::basic) {
      return false;
    }
  }
  // Distinctness: two rows must not claim the same basic column.
  std::vector<bool> seen(static_cast<std::size_t>(columns), false);
  for (const int b : basic) {
    if (seen[static_cast<std::size_t>(b)]) return false;
    seen[static_cast<std::size_t>(b)] = true;
  }
  return true;
}

bool basis_state::compatible(int rows, int columns) const {
  return static_cast<int>(basic.size()) == rows &&
         static_cast<int>(status.size()) == columns && consistent();
}

}  // namespace stx::lp
