// Explicit simplex basis: the warm-start currency of the LP layer.
#pragma once

#include <cstdint>
#include <vector>

namespace stx::lp {

/// Resting state of one column (structural, slack or artificial).
enum class var_status : std::uint8_t {
  basic,     ///< in the basis; value determined by the constraint system
  at_lower,  ///< nonbasic, resting at its lower bound
  at_upper,  ///< nonbasic, resting at its upper bound
  free_nb,   ///< nonbasic free variable, resting at zero
};

/// A value-free simplex basis snapshot: which column is basic in each row
/// plus the resting bound of every other column. Deliberately carries no
/// variable VALUES — bounds may have changed since the snapshot was taken
/// (that is exactly the branch & bound warm-start handshake: a child node
/// re-attaches its parent's optimal basis after tightening one bound and
/// lets the dual simplex repair primal feasibility).
///
/// A basis_state is only meaningful for the revised_solver instance (or
/// an identically-shaped one: same model rows/columns) it was read from;
/// `compatible` is the cheap shape check solvers apply before adopting
/// a foreign snapshot.
struct basis_state {
  /// row -> column index of the basic variable of that row.
  std::vector<int> basic;
  /// column -> status; exactly `basic.size()` entries are var_status::basic.
  std::vector<var_status> status;

  bool empty() const { return basic.empty() && status.empty(); }

  /// Structural consistency: shapes agree, indices are in range, every
  /// `basic[r]` is marked basic, and the basic-status count matches the
  /// row count. Does not (cannot) check invertibility.
  bool consistent() const;

  /// True when the snapshot can describe a system with `rows` rows and
  /// `columns` total columns and passes `consistent()`.
  bool compatible(int rows, int columns) const;
};

}  // namespace stx::lp
