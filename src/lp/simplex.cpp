#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace stx::lp {

const char* to_string(solve_status s) {
  switch (s) {
    case solve_status::optimal: return "optimal";
    case solve_status::infeasible: return "infeasible";
    case solve_status::unbounded: return "unbounded";
    case solve_status::iteration_limit: return "iteration_limit";
  }
  return "?";
}

namespace {

enum class var_state { basic, at_lower, at_upper, free_nb };

/// Internal dense working form of the LP:
///   min c'x  s.t.  [A | I_slack | I_art] x = b
/// with the tableau maintained as B^-1 [A | b] and variable bounds kept
/// implicit (nonbasic variables rest at a bound).
class simplex_engine {
 public:
  simplex_engine(const model& m, const solve_options& opts)
      : m_(m), opts_(opts) {
    build();
  }

  solve_result run() {
    solve_result res;
    // ---- Phase 1: minimize the sum of artificials.
    for (int j = 0; j < total_; ++j) cost_[j] = 0.0;
    for (int a = art_begin_; a < total_; ++a) cost_[a] = 1.0;
    reset_reduced_costs();
    const auto p1 = optimize();
    res.phase1_iterations = iterations_;
    if (p1 == solve_status::iteration_limit) {
      res.status = p1;
      res.iterations = iterations_;
      return res;
    }
    if (objective_ > phase1_tol()) {
      res.status = solve_status::infeasible;
      res.iterations = iterations_;
      return res;
    }
    pivot_out_artificials();
    // Freeze artificials at zero so phase 2 cannot reuse them.
    for (int a = art_begin_; a < total_; ++a) {
      lower_[a] = 0.0;
      upper_[a] = 0.0;
      if (state_[a] != var_state::basic) {
        state_[a] = var_state::at_lower;
        value_[a] = 0.0;
      }
    }

    // ---- Phase 2: the real objective.
    for (int j = 0; j < total_; ++j) cost_[j] = 0.0;
    for (int v = 0; v < m_.num_variables(); ++v) {
      cost_[v] = m_.var(v).objective;
    }
    reset_reduced_costs();
    const auto p2 = optimize();
    res.status = p2;
    res.iterations = iterations_;
    if (p2 == solve_status::optimal) {
      res.x.assign(static_cast<std::size_t>(m_.num_variables()), 0.0);
      for (int v = 0; v < m_.num_variables(); ++v) {
        res.x[static_cast<std::size_t>(v)] = value_[v];
      }
      res.objective = m_.objective_value(res.x);
    }
    return res;
  }

 private:
  static constexpr double inf = std::numeric_limits<double>::infinity();

  double phase1_tol() const { return opts_.tol * std::max(1, rows_); }

  void build() {
    rows_ = m_.num_rows();
    const int n_struct = m_.num_variables();
    slack_begin_ = n_struct;
    art_begin_ = n_struct + rows_;
    total_ = art_begin_ + rows_;

    lower_.assign(static_cast<std::size_t>(total_), 0.0);
    upper_.assign(static_cast<std::size_t>(total_), inf);
    cost_.assign(static_cast<std::size_t>(total_), 0.0);
    value_.assign(static_cast<std::size_t>(total_), 0.0);
    state_.assign(static_cast<std::size_t>(total_), var_state::at_lower);
    d_.assign(static_cast<std::size_t>(total_), 0.0);

    for (int v = 0; v < n_struct; ++v) {
      lower_[v] = m_.var(v).lower;
      upper_[v] = m_.var(v).upper;
    }

    tab_.assign(static_cast<std::size_t>(rows_),
                std::vector<double>(static_cast<std::size_t>(total_), 0.0));
    rhs_.assign(static_cast<std::size_t>(rows_), 0.0);

    // Row equilibration: divide each row (and rhs) by its largest
    // magnitude so tolerances behave uniformly across cycle-count scales.
    for (int r = 0; r < rows_; ++r) {
      const auto& rr = m_.constraint(r);
      auto& row_vec = tab_[static_cast<std::size_t>(r)];
      double scale = std::abs(rr.rhs);
      for (const auto& t : rr.terms) scale = std::max(scale, std::abs(t.value));
      if (scale < 1.0) scale = 1.0;
      for (const auto& t : rr.terms) {
        row_vec[static_cast<std::size_t>(t.var)] = t.value / scale;
      }
      row_vec[static_cast<std::size_t>(slack_begin_ + r)] = 1.0;
      rhs_[static_cast<std::size_t>(r)] = rr.rhs / scale;
      const int s = slack_begin_ + r;
      switch (rr.rel) {
        case relation::less_equal:
          lower_[s] = 0.0;
          upper_[s] = inf;
          break;
        case relation::equal:
          lower_[s] = 0.0;
          upper_[s] = 0.0;
          break;
        case relation::greater_equal:
          lower_[s] = -inf;
          upper_[s] = 0.0;
          break;
      }
    }

    // Initial nonbasic point: every structural/slack variable at its
    // finite bound of smallest magnitude (or 0 when free).
    for (int j = 0; j < art_begin_; ++j) {
      if (lower_[j] == -inf && upper_[j] == inf) {
        state_[j] = var_state::free_nb;
        value_[j] = 0.0;
      } else if (lower_[j] == -inf) {
        state_[j] = var_state::at_upper;
        value_[j] = upper_[j];
      } else if (upper_[j] == inf) {
        state_[j] = var_state::at_lower;
        value_[j] = lower_[j];
      } else if (std::abs(lower_[j]) <= std::abs(upper_[j])) {
        state_[j] = var_state::at_lower;
        value_[j] = lower_[j];
      } else {
        state_[j] = var_state::at_upper;
        value_[j] = upper_[j];
      }
    }

    // Artificial basis absorbing each row's residual. The basis must be
    // the identity for the maintained tableau to equal B^-1 A, so rows
    // with a negative residual are negated (their artificial then enters
    // with coefficient +1 and a non-negative value).
    basic_.assign(static_cast<std::size_t>(rows_), -1);
    for (int r = 0; r < rows_; ++r) {
      auto& row_vec = tab_[static_cast<std::size_t>(r)];
      double residual = rhs_[static_cast<std::size_t>(r)];
      for (int j = 0; j < art_begin_; ++j) {
        const double a = row_vec[static_cast<std::size_t>(j)];
        if (a != 0.0 && value_[j] != 0.0) residual -= a * value_[j];
      }
      if (residual < 0.0) {
        for (int j = 0; j < art_begin_; ++j) {
          row_vec[static_cast<std::size_t>(j)] =
              -row_vec[static_cast<std::size_t>(j)];
        }
        rhs_[static_cast<std::size_t>(r)] = -rhs_[static_cast<std::size_t>(r)];
        residual = -residual;
      }
      const int a = art_begin_ + r;
      tab_[static_cast<std::size_t>(r)][static_cast<std::size_t>(a)] = 1.0;
      value_[a] = residual;
      state_[a] = var_state::basic;
      basic_[static_cast<std::size_t>(r)] = a;
    }

    max_iterations_ = opts_.max_iterations > 0
                          ? opts_.max_iterations
                          : 40 * (rows_ + total_) + 1000;
  }

  /// Recomputes reduced costs and the objective from the current tableau.
  void reset_reduced_costs() {
    for (int j = 0; j < total_; ++j) d_[j] = cost_[j];
    for (int r = 0; r < rows_; ++r) {
      const double cb = cost_[basic_[static_cast<std::size_t>(r)]];
      if (cb == 0.0) continue;
      const auto& row_vec = tab_[static_cast<std::size_t>(r)];
      for (int j = 0; j < total_; ++j) {
        d_[j] -= cb * row_vec[static_cast<std::size_t>(j)];
      }
    }
    recompute_objective();
  }

  void recompute_objective() {
    objective_ = 0.0;
    for (int j = 0; j < total_; ++j) objective_ += cost_[j] * value_[j];
  }

  /// Recomputes basic variable values from the transformed rhs to cap
  /// accumulated floating point drift.
  void refresh_basic_values() {
    for (int r = 0; r < rows_; ++r) {
      double v = rhs_[static_cast<std::size_t>(r)];
      const auto& row_vec = tab_[static_cast<std::size_t>(r)];
      for (int j = 0; j < total_; ++j) {
        if (state_[j] == var_state::basic) continue;
        const double xj = value_[j];
        if (xj != 0.0) v -= row_vec[static_cast<std::size_t>(j)] * xj;
      }
      value_[basic_[static_cast<std::size_t>(r)]] = v;
    }
    recompute_objective();
  }

  /// One simplex phase: iterate until optimal / unbounded / out of budget.
  solve_status optimize() {
    int degenerate_streak = 0;
    const int bland_trigger = 2 * rows_ + 64;
    while (true) {
      if (iterations_ >= max_iterations_) {
        return solve_status::iteration_limit;
      }
      const bool bland = degenerate_streak > bland_trigger;
      const int q = choose_entering(bland);
      if (q < 0) return solve_status::optimal;
      const double sigma =
          (state_[q] == var_state::at_upper ||
           (state_[q] == var_state::free_nb && d_[q] > 0.0))
              ? -1.0
              : 1.0;

      // Ratio test over basic variables.
      const double entering_range =
          (lower_[q] > -inf && upper_[q] < inf) ? upper_[q] - lower_[q] : inf;
      double t_max = inf;
      int leave_row = -1;
      bool leave_to_upper = false;
      for (int r = 0; r < rows_; ++r) {
        const double a =
            tab_[static_cast<std::size_t>(r)][static_cast<std::size_t>(q)];
        if (std::abs(a) < pivot_tol_) continue;
        const int b = basic_[static_cast<std::size_t>(r)];
        const double delta = -sigma * a;  // d(value_[b]) / dt
        double limit = 0.0;
        bool to_upper = false;
        if (delta > 0.0) {
          if (upper_[b] == inf) continue;
          limit = (upper_[b] - value_[b]) / delta;
          to_upper = true;
        } else {
          if (lower_[b] == -inf) continue;
          limit = (lower_[b] - value_[b]) / delta;
        }
        if (limit < 0.0) limit = 0.0;  // numerical guard
        bool take = false;
        if (leave_row < 0 || limit < t_max - 1e-12) {
          take = true;
        } else if (limit <= t_max + 1e-12) {
          // Tie: Bland keeps the smallest basic index (anti-cycling);
          // otherwise keep the larger pivot magnitude (stability).
          if (bland) {
            take = b < basic_[static_cast<std::size_t>(leave_row)];
          } else {
            const double cur = std::abs(
                tab_[static_cast<std::size_t>(leave_row)]
                    [static_cast<std::size_t>(q)]);
            take = std::abs(a) > cur;
          }
        }
        if (take) {
          t_max = std::min(t_max, limit);
          leave_row = r;
          leave_to_upper = to_upper;
        }
      }

      if (entering_range <= t_max) {
        // The entering variable reaches its opposite bound first.
        if (entering_range == inf) return solve_status::unbounded;
        move(q, sigma, entering_range);
        state_[q] = sigma > 0.0 ? var_state::at_upper : var_state::at_lower;
        value_[q] = sigma > 0.0 ? upper_[q] : lower_[q];
        degenerate_streak =
            entering_range <= opts_.tol ? degenerate_streak + 1 : 0;
      } else if (leave_row < 0) {
        return solve_status::unbounded;
      } else {
        move(q, sigma, t_max);
        const int leaving = basic_[static_cast<std::size_t>(leave_row)];
        state_[leaving] =
            leave_to_upper ? var_state::at_upper : var_state::at_lower;
        value_[leaving] = leave_to_upper ? upper_[leaving] : lower_[leaving];
        state_[q] = var_state::basic;
        basic_[static_cast<std::size_t>(leave_row)] = q;
        pivot(leave_row, q);
        degenerate_streak = t_max <= opts_.tol ? degenerate_streak + 1 : 0;
      }

      ++iterations_;
      if (iterations_ % opts_.refresh_interval == 0) {
        refresh_basic_values();
        reset_reduced_costs();
      }
    }
  }

  int choose_entering(bool bland) const {
    int best = -1;
    double best_score = opts_.tol;
    for (int j = 0; j < total_; ++j) {
      if (state_[j] == var_state::basic) continue;
      if (upper_[j] - lower_[j] < 1e-15 && state_[j] != var_state::free_nb) {
        continue;  // fixed variable can never move
      }
      double score = 0.0;
      switch (state_[j]) {
        case var_state::at_lower: score = -d_[j]; break;
        case var_state::at_upper: score = d_[j]; break;
        case var_state::free_nb: score = std::abs(d_[j]); break;
        case var_state::basic: break;
      }
      if (score > best_score) {
        best = j;
        best_score = score;
        if (bland) break;  // first eligible index suffices
      }
    }
    return best;
  }

  /// Advances the entering variable by sigma*t and adjusts basic values
  /// and the objective accordingly (no basis change here).
  void move(int q, double sigma, double t) {
    if (t <= 0.0) return;  // degenerate step: values unchanged
    for (int r = 0; r < rows_; ++r) {
      const double a =
          tab_[static_cast<std::size_t>(r)][static_cast<std::size_t>(q)];
      if (a == 0.0) continue;
      value_[basic_[static_cast<std::size_t>(r)]] += -sigma * a * t;
    }
    value_[q] += sigma * t;
    objective_ += d_[q] * sigma * t;
  }

  /// Gauss pivot of the tableau (and rhs and reduced costs) on (r, q).
  void pivot(int r, int q) {
    auto& prow = tab_[static_cast<std::size_t>(r)];
    const double piv = prow[static_cast<std::size_t>(q)];
    STX_ENSURE(std::abs(piv) > 1e-12, "simplex pivot on ~zero element");
    const double inv = 1.0 / piv;
    for (int j = 0; j < total_; ++j) prow[static_cast<std::size_t>(j)] *= inv;
    rhs_[static_cast<std::size_t>(r)] *= inv;
    prow[static_cast<std::size_t>(q)] = 1.0;  // exact

    for (int i = 0; i < rows_; ++i) {
      if (i == r) continue;
      auto& row_vec = tab_[static_cast<std::size_t>(i)];
      const double f = row_vec[static_cast<std::size_t>(q)];
      if (f == 0.0) continue;
      for (int j = 0; j < total_; ++j) {
        row_vec[static_cast<std::size_t>(j)] -=
            f * prow[static_cast<std::size_t>(j)];
      }
      row_vec[static_cast<std::size_t>(q)] = 0.0;  // exact
      rhs_[static_cast<std::size_t>(i)] -=
          f * rhs_[static_cast<std::size_t>(r)];
    }

    const double dq = d_[q];
    if (dq != 0.0) {
      for (int j = 0; j < total_; ++j) {
        d_[j] -= dq * prow[static_cast<std::size_t>(j)];
      }
      d_[q] = 0.0;
    }
  }

  /// After phase 1, drive any artificial that is still basic (at value 0)
  /// out of the basis via a degenerate pivot where possible. Rows whose
  /// artificial cannot be replaced are linearly dependent; their artificial
  /// stays basic, pinned at zero by its [0,0] bounds.
  void pivot_out_artificials() {
    for (int r = 0; r < rows_; ++r) {
      const int b = basic_[static_cast<std::size_t>(r)];
      if (b < art_begin_) continue;
      const auto& row_vec = tab_[static_cast<std::size_t>(r)];
      int replacement = -1;
      for (int j = 0; j < art_begin_; ++j) {
        if (state_[j] == var_state::basic) continue;
        if (std::abs(row_vec[static_cast<std::size_t>(j)]) > 1e-7) {
          replacement = j;
          break;
        }
      }
      if (replacement < 0) continue;
      state_[b] = var_state::at_lower;
      value_[b] = 0.0;
      state_[replacement] = var_state::basic;
      basic_[static_cast<std::size_t>(r)] = replacement;
      pivot(r, replacement);
    }
    refresh_basic_values();
  }

  const model& m_;
  const solve_options& opts_;
  int rows_ = 0;
  int slack_begin_ = 0;
  int art_begin_ = 0;
  int total_ = 0;
  int max_iterations_ = 0;
  int iterations_ = 0;
  double objective_ = 0.0;
  double pivot_tol_ = 1e-9;

  std::vector<std::vector<double>> tab_;
  std::vector<double> rhs_;
  std::vector<double> lower_, upper_, cost_, value_, d_;
  std::vector<var_state> state_;
  std::vector<int> basic_;
};

}  // namespace

solve_result solve_simplex(const model& m, const solve_options& opts) {
  if (m.num_rows() == 0) {
    // Pure bound problem: each variable sits at its cheaper bound.
    solve_result res;
    res.status = solve_status::optimal;
    res.x.assign(static_cast<std::size_t>(m.num_variables()), 0.0);
    for (int v = 0; v < m.num_variables(); ++v) {
      const auto& vv = m.var(v);
      double x = 0.0;
      if (vv.objective > 0.0) {
        if (vv.lower == -infinity) {
          return {solve_status::unbounded, 0.0, {}, 0, 0};
        }
        x = vv.lower;
      } else if (vv.objective < 0.0) {
        if (vv.upper == infinity) {
          return {solve_status::unbounded, 0.0, {}, 0, 0};
        }
        x = vv.upper;
      } else {
        x = std::clamp(0.0, vv.lower, vv.upper);
      }
      res.x[static_cast<std::size_t>(v)] = x;
      res.objective += vv.objective * x;
    }
    return res;
  }
  simplex_engine engine(m, opts);
  return engine.run();
}

}  // namespace stx::lp
