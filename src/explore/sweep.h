// Parallel design-space exploration engine: evaluates a grid of
// methodology parameter points across one or many applications on a
// worker thread pool, sharing the phase-1 full-crossbar trace per
// (app, settings) key through a trace_cache instead of re-simulating it
// per point. Results are deterministic and ordered app-major /
// grid-order regardless of the thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "explore/grid.h"
#include "explore/report.h"
#include "explore/trace_cache.h"
#include "workloads/app.h"

namespace stx::explore {

/// What to sweep: the applications, the parameter grid (plus optional
/// explicit points), and the shared simulation settings.
struct sweep_spec {
  /// Applications to explore; names must be unique (they key the trace
  /// cache). Must not be empty.
  std::vector<workloads::app_spec> apps;
  /// Cross-product axes. An all-empty grid with no extra_points is an
  /// error: a sweep must never silently run zero points.
  sweep_grid grid;
  /// Explicit points appended after the grid expansion (duplicates of
  /// grid points or of each other are dropped).
  std::vector<sweep_point> extra_points;

  /// Base synthesis settings for every knob a sweep_point does not carry
  /// (conflict pre-processing, critical-stream separation, solver
  /// limits, binding optimisation). Each point's swept fields overwrite
  /// the corresponding fields of this base.
  xbar::synthesis_options synth_base;

  /// Simulation settings shared by every point (phase 1 and phase 4).
  traffic::cycle_t horizon = 120'000;
  std::uint64_t seed = 1;
  traffic::cycle_t transfer_overhead = 2;

  /// Run the per-point phase-4 validation simulation and the per-app
  /// full-crossbar reference. Off = synthesis-only sweeps (Figs. 5-6
  /// only need bus counts) with zeroed latency metrics.
  bool validate = true;

  /// Worker threads; values < 1 and 1 both run inline on the caller.
  int threads = 1;

  /// Cohort size for batched phase-4 validation: the scheduler packs up
  /// to this many same-app design points into one lockstep sim::batch
  /// (observer harvesting, no traces) instead of one sim::session each.
  /// Values <= 1 validate per-session (the legacy path); single-job
  /// straggler cohorts fall back to sim::session either way. Reports are
  /// bit-identical across batch sizes AND thread counts — the same
  /// determinism discipline as the worker pool.
  int batch_size = 32;
};

/// The deduplicated evaluation points of `spec` (grid expansion followed
/// by extra_points), in deterministic order.
std::vector<sweep_point> sweep_points(const sweep_spec& spec);

/// The flow options one point evaluates under (the trace cache keys on
/// the non-synthesis part of this).
xbar::flow_options options_for(const sweep_spec& spec,
                               const sweep_point& point);

/// Runs the sweep on `spec.threads` workers, sharing phase-1 work via
/// `cache` (callers may pass a warm cache, or keep it to inspect hit
/// statistics afterwards). Throws stx::invalid_argument_error on an
/// empty app list, duplicate app names, or zero points. The report is
/// bit-identical across thread counts.
sweep_report run_sweep(const sweep_spec& spec, trace_cache& cache);

/// run_sweep with a private cache.
sweep_report run_sweep(const sweep_spec& spec);

}  // namespace stx::explore
