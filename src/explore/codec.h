// Blob codecs for the persistent store: the byte representations of each
// cacheable stage result. Every encode/decode pair round-trips exactly
// (operator== on the decoded value), which is what makes warm-cache
// results bit-identical to fresh computation:
//   traces  — "stxtraces/v1" envelope over two stxtrace v1 streams
//   metrics — "stx-validation-metrics/v1" JSON (doubles at %.17g)
//   reports — the gen "stx-crossbar-design/v1" document (emit/parse)
// Decoders throw stx::invalid_argument_error on malformed input; store
// consumers catch and treat that as a cache miss.
#pragma once

#include <string>

#include "xbar/flow.h"

namespace stx::explore {

std::string encode_traces(const xbar::collected_traces& traces);
xbar::collected_traces decode_traces(const std::string& blob);

std::string encode_metrics(const xbar::validation_metrics& m);
xbar::validation_metrics decode_metrics(const std::string& blob);

std::string encode_report(const xbar::flow_report& report);
xbar::flow_report decode_report(const std::string& blob);

}  // namespace stx::explore
