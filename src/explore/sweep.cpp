#include "explore/sweep.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "util/error.h"

namespace stx::explore {

std::vector<sweep_point> sweep_points(const sweep_spec& spec) {
  auto points = expand_grid(spec.grid);
  for (const auto& p : spec.extra_points) {
    if (std::find(points.begin(), points.end(), p) == points.end()) {
      points.push_back(p);
    }
  }
  // An all-default grid is meaningful only when the caller asked for it
  // via extra_points; expand_grid of an empty grid yields the single
  // default point, which run_sweep accepts (one-point "sweep").
  return points;
}

xbar::flow_options options_for(const sweep_spec& spec,
                               const sweep_point& point) {
  xbar::flow_options opts;
  opts.horizon = spec.horizon;
  opts.seed = spec.seed;
  opts.transfer_overhead = spec.transfer_overhead;
  opts.policy = point.policy;
  opts.synth = spec.synth_base;
  opts.synth.params.window_size = point.window_size;
  opts.synth.params.overlap_threshold = point.overlap_threshold;
  opts.synth.params.max_targets_per_bus = point.max_targets_per_bus;
  opts.synth.params.burst_window = point.burst_window;
  opts.synth.solver = point.solver;
  opts.request_window_override = point.request_window;
  opts.response_window_override = point.response_window;
  return opts;
}

namespace {

/// Phases 2+ for one point against the cached phase-1 state.
sweep_result evaluate_point(const sweep_spec& spec,
                            const workloads::app_spec& app,
                            const sweep_point& point, trace_cache& cache) {
  const auto opts = options_for(spec, point);
  const auto traces = cache.traces(app, opts);
  sweep_result result;
  result.app_name = app.name;
  result.point = point;
  result.validated = spec.validate;
  if (spec.validate) {
    const auto full = cache.full_metrics(app, opts);
    result.report = xbar::design_from_traces(app, *traces, opts, &*full);
  } else {
    result.report = xbar::design_from_traces(app, *traces, opts,
                                             /*full=*/nullptr,
                                             /*validate=*/false);
  }
  return result;
}

}  // namespace

sweep_report run_sweep(const sweep_spec& spec, trace_cache& cache) {
  STX_REQUIRE(!spec.apps.empty(), "sweep spec has no applications");
  for (std::size_t i = 0; i < spec.apps.size(); ++i) {
    spec.apps[i].validate();
    for (std::size_t j = i + 1; j < spec.apps.size(); ++j) {
      STX_REQUIRE(spec.apps[i].name != spec.apps[j].name,
                  "duplicate app name '" + spec.apps[i].name +
                      "' in sweep spec (names key the trace cache)");
    }
  }
  const auto points = sweep_points(spec);
  STX_REQUIRE(!points.empty(), "sweep spec expands to zero points");

  // Flattened job list, app-major then grid order: results land at their
  // job index, so the report order never depends on scheduling. Workers
  // CLAIM jobs app-interleaved, though — app-major claiming would pile
  // every early worker onto app 0's trace future while its one loader
  // simulates, serialising the expensive per-app phase-1 runs.
  struct job {
    const workloads::app_spec* app;
    const sweep_point* point;
  };
  const std::size_t num_apps = spec.apps.size();
  const std::size_t num_points = points.size();
  std::vector<job> jobs;
  jobs.reserve(num_apps * num_points);
  for (const auto& app : spec.apps) {
    for (const auto& point : points) {
      jobs.push_back({&app, &point});
    }
  }

  const auto stats_before = cache.stats();
  std::vector<sweep_result> results(jobs.size());
  std::vector<std::exception_ptr> errors(jobs.size());
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (std::size_t k = next.fetch_add(1); k < jobs.size();
         k = next.fetch_add(1)) {
      // k-th claim -> app (k mod A), point (k div A).
      const std::size_t i = (k % num_apps) * num_points + k / num_apps;
      try {
        results[i] = evaluate_point(spec, *jobs[i].app, *jobs[i].point, cache);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  const int threads = std::min<int>(std::max(spec.threads, 1),
                                    static_cast<int>(jobs.size()));
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  // Rethrow the first failure in job order (deterministic, like the
  // serial loop would have).
  for (const auto& e : errors) {
    if (e != nullptr) std::rethrow_exception(e);
  }

  sweep_report report;
  report.results = std::move(results);
  report.horizon = spec.horizon;
  report.seed = spec.seed;
  const auto stats_after = cache.stats();
  report.phase1_simulations =
      stats_after.trace_misses - stats_before.trace_misses;
  report.full_simulations =
      stats_after.full_misses - stats_before.full_misses;
  if (spec.validate) {
    report.pareto = pareto_front(report.results);
  }
  return report;
}

sweep_report run_sweep(const sweep_spec& spec) {
  trace_cache cache;
  return run_sweep(spec, cache);
}

}  // namespace stx::explore
