#include "explore/sweep.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "explore/codec.h"
#include "obs/obs.h"
#include "util/error.h"

namespace stx::explore {

std::vector<sweep_point> sweep_points(const sweep_spec& spec) {
  auto points = expand_grid(spec.grid);
  for (const auto& p : spec.extra_points) {
    if (std::find(points.begin(), points.end(), p) == points.end()) {
      points.push_back(p);
    }
  }
  // An all-default grid is meaningful only when the caller asked for it
  // via extra_points; expand_grid of an empty grid yields the single
  // default point, which run_sweep accepts (one-point "sweep").
  return points;
}

xbar::flow_options options_for(const sweep_spec& spec,
                               const sweep_point& point) {
  xbar::flow_options opts;
  opts.horizon = spec.horizon;
  opts.seed = spec.seed;
  opts.transfer_overhead = spec.transfer_overhead;
  opts.policy = point.policy;
  opts.synth = spec.synth_base;
  opts.synth.params.window_size = point.window_size;
  opts.synth.params.overlap_threshold = point.overlap_threshold;
  opts.synth.params.max_targets_per_bus = point.max_targets_per_bus;
  opts.synth.params.burst_window = point.burst_window;
  opts.synth.solver = point.solver;
  opts.request_window_override = point.request_window;
  opts.response_window_override = point.response_window;
  return opts;
}

namespace {

/// Phases 2+ for one point against the cached phase-1 state. With
/// `defer_designed`, the designed-configuration simulation is left to the
/// caller's batched validation pass: the report comes back with the full-
/// crossbar reference filled but `designed` zeroed.
sweep_result evaluate_point(const sweep_spec& spec,
                            const workloads::app_spec& app,
                            const sweep_point& point, trace_cache& cache,
                            bool defer_designed) {
  const auto opts = options_for(spec, point);
  const auto traces = cache.traces(app, opts);
  sweep_result result;
  result.app_name = app.name;
  result.point = point;
  result.validated = spec.validate;
  xbar::flow_stage_inputs stages;
  if (spec.validate) {
    stages.full = *cache.full_metrics(app, opts);
  } else {
    stages.mode = xbar::validation_mode::skip;
  }
  if (defer_designed) stages.mode = xbar::validation_mode::skip;
  result.report = xbar::design_from_traces(app, *traces, opts, stages);
  if (spec.validate && defer_designed && stages.full.has_value()) {
    result.report.full = *stages.full;
  }
  return result;
}

/// Runs `worker(0..threads-1)` on a pool (inline when threads <= 1).
template <typename Fn>
void run_workers(int threads, std::size_t num_jobs, const Fn& worker) {
  const int n = std::min<int>(std::max(threads, 1),
                              static_cast<int>(num_jobs));
  if (n <= 1) {
    worker(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) pool.emplace_back(worker, t);
  for (auto& t : pool) t.join();
}

}  // namespace

sweep_report run_sweep(const sweep_spec& spec, trace_cache& cache) {
  STX_REQUIRE(!spec.apps.empty(), "sweep spec has no applications");
  for (std::size_t i = 0; i < spec.apps.size(); ++i) {
    spec.apps[i].validate();
    for (std::size_t j = i + 1; j < spec.apps.size(); ++j) {
      STX_REQUIRE(spec.apps[i].name != spec.apps[j].name,
                  "duplicate app name '" + spec.apps[i].name +
                      "' in sweep spec (names key the trace cache)");
    }
  }
  const auto points = sweep_points(spec);
  STX_REQUIRE(!points.empty(), "sweep spec expands to zero points");

  // Flattened job list, app-major then grid order: results land at their
  // job index, so the report order never depends on scheduling. Workers
  // CLAIM jobs app-interleaved, though — app-major claiming would pile
  // every early worker onto app 0's trace future while its one loader
  // simulates, serialising the expensive per-app phase-1 runs.
  struct job {
    const workloads::app_spec* app;
    const sweep_point* point;
  };
  const std::size_t num_apps = spec.apps.size();
  const std::size_t num_points = points.size();
  std::vector<job> jobs;
  jobs.reserve(num_apps * num_points);
  for (const auto& app : spec.apps) {
    for (const auto& point : points) {
      jobs.push_back({&app, &point});
    }
  }

  obs::span sweep_span("explore.sweep",
                       {{"apps", static_cast<std::int64_t>(num_apps)},
                        {"jobs", static_cast<std::int64_t>(jobs.size())}});
  obs::add_counter("explore.points", static_cast<std::int64_t>(jobs.size()));

  const auto stats_before = cache.stats();
  const auto by_app_before = cache.stats_by_app();
  const bool batched_validation = spec.validate && spec.batch_size > 1;
  std::vector<sweep_result> results(jobs.size());
  std::vector<std::exception_ptr> errors(jobs.size());
  std::atomic<std::size_t> next{0};
  const auto worker = [&](int worker_index) {
    // One span per worker thread: its duration against the sweep span's
    // is the worker's utilization, and each claimed job lands as a child
    // span on the worker's own trace track.
    obs::span wsp("explore.worker", {{"worker", worker_index}});
    std::int64_t claimed = 0;
    for (std::size_t k = next.fetch_add(1); k < jobs.size();
         k = next.fetch_add(1)) {
      // k-th claim -> app (k mod A), point (k div A).
      const std::size_t i = (k % num_apps) * num_points + k / num_apps;
      ++claimed;
      try {
        obs::span jsp("explore.point", {{"app", jobs[i].app->name}});
        results[i] = evaluate_point(spec, *jobs[i].app, *jobs[i].point, cache,
                                    batched_validation);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
    wsp.set_attr({"jobs", claimed});
  };
  run_workers(spec.threads, jobs.size(), worker);

  std::int64_t designed_store_hits = 0;
  if (batched_validation) {
    // ---- Batched phase 4. The synthesis pass above left every report's
    // `designed` metrics empty; pack same-app design points into cohorts
    // of spec.batch_size and run each cohort as one lockstep sim::batch.
    // Per-instance results are independent of cohort membership (and a
    // batch instance is bit-identical to a session), so the report does
    // not depend on batch size or on which worker claims which cohort.
    //
    // With a persistent store behind the cache, each point's designed
    // metrics are content-addressed under the stage=metrics key: hits
    // drop out of the cohorts entirely (a re-run of the same sweep skips
    // the whole batched re-simulation), and every simulated result is
    // written through for the next run. Safe because a warm result is
    // bit-identical to a fresh one by the codec round-trip contract.
    kv_store* const store = cache.backing();
    std::vector<std::vector<std::size_t>> cohorts;
    const auto width = static_cast<std::size_t>(spec.batch_size);
    for (std::size_t a = 0; a < num_apps; ++a) {
      std::vector<std::size_t> eligible;
      for (std::size_t p = 0; p < num_points; ++p) {
        const std::size_t i = a * num_points + p;
        if (errors[i] != nullptr) continue;
        if (store != nullptr) {
          const auto key = metrics_key(jobs[i].app->name,
                                       options_for(spec, *jobs[i].point));
          if (auto blob = store->get(key)) {
            try {
              results[i].report.designed = decode_metrics(*blob);
              ++designed_store_hits;
              continue;
            } catch (const std::exception&) {
              // Undecodable object: re-simulate (the put below heals it).
            }
          }
        }
        eligible.push_back(i);
      }
      for (std::size_t off = 0; off < eligible.size(); off += width) {
        const auto end = std::min(eligible.size(), off + width);
        cohorts.emplace_back(
            eligible.begin() + static_cast<std::ptrdiff_t>(off),
            eligible.begin() + static_cast<std::ptrdiff_t>(end));
      }
    }
    std::atomic<std::size_t> next_cohort{0};
    const auto validate_worker = [&](int) {
      for (std::size_t c = next_cohort.fetch_add(1); c < cohorts.size();
           c = next_cohort.fetch_add(1)) {
        const auto& members = cohorts[c];
        const auto& app = *jobs[members.front()].app;
        try {
          const auto designed_configs = [&](std::size_t i) {
            const auto opts = options_for(spec, *jobs[i].point);
            const auto& report = results[i].report;
            return xbar::validation_job{
                report.request_design.to_config(opts.policy,
                                                opts.transfer_overhead),
                report.response_design.to_config(opts.policy,
                                                 opts.transfer_overhead),
                opts};
          };
          const auto store_metrics = [&](std::size_t i) {
            if (store == nullptr) return;
            store->put(metrics_key(app.name, options_for(spec, *jobs[i].point)),
                       encode_metrics(results[i].report.designed));
          };
          if (members.size() == 1) {
            // Odd-shaped straggler: one plain sim::session (identical
            // result by the batch bit-identity contract, without the
            // SoA setup cost).
            const std::size_t i = members.front();
            const auto vjob = designed_configs(i);
            results[i].report.designed = xbar::validate_configuration(
                app, vjob.request, vjob.response, vjob.opts);
            store_metrics(i);
            continue;
          }
          std::vector<xbar::validation_job> vjobs;
          vjobs.reserve(members.size());
          for (const std::size_t i : members) {
            vjobs.push_back(designed_configs(i));
          }
          const auto metrics = xbar::validate_configurations(app, vjobs);
          for (std::size_t m = 0; m < members.size(); ++m) {
            results[members[m]].report.designed = metrics[m];
            store_metrics(members[m]);
          }
        } catch (...) {
          for (const std::size_t i : members) {
            errors[i] = std::current_exception();
          }
        }
      }
    };
    run_workers(spec.threads, cohorts.size(), validate_worker);
    if (designed_store_hits > 0) {
      obs::add_counter("explore.designed.store_hits", designed_store_hits);
    }
  }

  // Rethrow the first failure in job order (deterministic, like the
  // serial loop would have).
  for (const auto& e : errors) {
    if (e != nullptr) std::rethrow_exception(e);
  }

  sweep_report report;
  report.results = std::move(results);
  report.horizon = spec.horizon;
  report.seed = spec.seed;
  const auto stats_after = cache.stats();
  report.phase1_simulations =
      stats_after.trace_misses - stats_before.trace_misses;
  report.full_simulations =
      stats_after.full_misses - stats_before.full_misses;
  report.designed_store_hits = designed_store_hits;
  // Per-app cache activity for THIS sweep: delta against the pre-sweep
  // per-app totals, reported in spec order (deterministic; a shared cache
  // may carry counts from earlier sweeps).
  const auto by_app_after = cache.stats_by_app();
  report.cache.reserve(spec.apps.size());
  for (const auto& app : spec.apps) {
    trace_cache::cache_stats before;
    if (const auto it = by_app_before.find(app.name);
        it != by_app_before.end()) {
      before = it->second;
    }
    trace_cache::cache_stats after;
    if (const auto it = by_app_after.find(app.name);
        it != by_app_after.end()) {
      after = it->second;
    }
    app_cache_stats entry;
    entry.app_name = app.name;
    entry.trace_hits = after.trace_hits - before.trace_hits;
    entry.trace_misses = after.trace_misses - before.trace_misses;
    entry.full_hits = after.full_hits - before.full_hits;
    entry.full_misses = after.full_misses - before.full_misses;
    report.cache.push_back(std::move(entry));
  }
  if (spec.validate) {
    report.pareto = pareto_front(report.results);
  }
  return report;
}

sweep_report run_sweep(const sweep_spec& spec) {
  trace_cache cache;
  return run_sweep(spec, cache);
}

}  // namespace stx::explore
