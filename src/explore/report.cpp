#include "explore/report.h"

#include <algorithm>
#include <cstdio>

// GCC 12's -O2 dataflow falsely flags std::variant move internals as
// maybe-uninitialized when vectors of json::value reallocate (GCC
// PR105562); the diagnostic points inside libstdc++ headers, so it can
// only be silenced at the consuming TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include "gen/json.h"
#include "util/table.h"

namespace stx::explore {

namespace {

const char* solver_name(xbar::solver_kind s) {
  return s == xbar::solver_kind::specialized ? "specialized" : "milp";
}

double latency_vs_full(const xbar::flow_report& r) {
  if (r.full.avg_latency <= 0.0) return 0.0;
  return r.designed.avg_latency / r.full.avg_latency;
}

std::vector<bool> pareto_mask(const sweep_report& report) {
  std::vector<bool> mask(report.results.size(), false);
  for (const auto i : report.pareto) mask[i] = true;
  return mask;
}

}  // namespace

std::vector<std::size_t> pareto_front(
    const std::vector<std::pair<int, double>>& points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (i == j) continue;
      const bool no_worse = points[j].first <= points[i].first &&
                            points[j].second <= points[i].second;
      const bool better = points[j].first < points[i].first ||
                          points[j].second < points[i].second;
      dominated = no_worse && better;
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

std::vector<std::size_t> pareto_front(
    const std::vector<sweep_result>& results) {
  // Group indices per application, run the pairwise front per group, and
  // merge; results of different apps never dominate each other.
  std::vector<std::string> apps;
  for (const auto& r : results) {
    if (std::find(apps.begin(), apps.end(), r.app_name) == apps.end()) {
      apps.push_back(r.app_name);
    }
  }
  std::vector<std::size_t> front;
  for (const auto& app : apps) {
    std::vector<std::size_t> indices;
    std::vector<std::pair<int, double>> points;
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (results[i].app_name != app) continue;
      indices.push_back(i);
      points.emplace_back(results[i].total_buses(),
                          results[i].avg_latency());
    }
    for (const auto local : pareto_front(points)) {
      front.push_back(indices[local]);
    }
  }
  std::sort(front.begin(), front.end());
  return front;
}

std::string render_json(const sweep_report& report) {
  namespace json = gen::json;
  const auto mask = pareto_mask(report);
  json::array results;
  results.reserve(report.results.size());
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    const auto& r = report.results[i];
    const auto& p = r.point;
    results.push_back(json::object{
        {"app", r.app_name},
        {"point",
         json::object{
             {"window_size", static_cast<std::int64_t>(p.window_size)},
             {"overlap_threshold", p.overlap_threshold},
             {"max_targets_per_bus", p.max_targets_per_bus},
             {"burst_window", static_cast<std::int64_t>(p.burst_window)},
             {"policy", sim::to_string(p.policy)},
             {"solver", solver_name(p.solver)},
             {"request_window", static_cast<std::int64_t>(p.request_window)},
             {"response_window",
              static_cast<std::int64_t>(p.response_window)},
         }},
        {"request_buses", r.report.request_design.num_buses},
        {"response_buses", r.report.response_design.num_buses},
        {"total_buses", r.total_buses()},
        {"full_buses", r.report.full_buses},
        {"savings", r.report.savings()},
        {"request_conflicts", r.report.request_design.num_conflicts},
        {"response_conflicts", r.report.response_design.num_conflicts},
        {"validated", r.validated},
        {"avg_latency", r.avg_latency()},
        {"p99_latency", r.report.designed.p99_latency},
        {"max_latency", r.report.designed.max_latency},
        {"latency_vs_full", latency_vs_full(r.report)},
        {"pareto", static_cast<bool>(mask[i])},
    });
  }
  json::array pareto;
  for (const auto i : report.pareto) {
    pareto.push_back(static_cast<std::int64_t>(i));
  }
  json::array cache;
  cache.reserve(report.cache.size());
  for (const auto& c : report.cache) {
    cache.push_back(json::object{
        {"app", c.app_name},
        {"horizon", static_cast<std::int64_t>(report.horizon)},
        {"seed", static_cast<std::int64_t>(report.seed)},
        {"trace_hits", c.trace_hits},
        {"trace_misses", c.trace_misses},
        {"full_hits", c.full_hits},
        {"full_misses", c.full_misses},
        {"trace_hit_ratio", c.trace_hit_ratio()},
    });
  }
  json::object doc{
      {"format", "stxbar-sweep-v1"},
      {"horizon", static_cast<std::int64_t>(report.horizon)},
      {"seed", static_cast<std::int64_t>(report.seed)},
      {"points", static_cast<std::int64_t>(report.results.size())},
      {"phase1_simulations", report.phase1_simulations},
      {"full_simulations", report.full_simulations},
      {"cache", std::move(cache)},
      {"results", std::move(results)},
      {"pareto", std::move(pareto)},
  };
  return json::dump(doc);
}

namespace {

/// The shared tabular view of a report (CSV and Markdown render it).
table result_table(const sweep_report& report) {
  const auto mask = pareto_mask(report);
  table t({"app", "window", "threshold", "maxtb", "burstwin", "policy",
           "solver", "reqwin", "respwin", "req_buses", "resp_buses",
           "total_buses", "full_buses", "savings", "avg_latency",
           "p99_latency", "max_latency", "pareto"});
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    const auto& r = report.results[i];
    const auto& p = r.point;
    t.cell(r.app_name)
        .cell(static_cast<std::int64_t>(p.window_size))
        .cell(p.overlap_threshold, 2)
        .cell(p.max_targets_per_bus)
        .cell(static_cast<std::int64_t>(p.burst_window))
        .cell(sim::to_string(p.policy))
        .cell(solver_name(p.solver))
        .cell(static_cast<std::int64_t>(p.request_window))
        .cell(static_cast<std::int64_t>(p.response_window))
        .cell(r.report.request_design.num_buses)
        .cell(r.report.response_design.num_buses)
        .cell(r.total_buses())
        .cell(r.report.full_buses)
        .cell(r.report.savings(), 2)
        .cell(r.avg_latency(), 2)
        .cell(r.report.designed.p99_latency, 2)
        .cell(r.report.designed.max_latency, 0)
        .cell(mask[i] ? "yes" : "no")
        .end_row();
  }
  return t;
}

}  // namespace

std::string render_csv(const sweep_report& report) {
  return result_table(report).render_csv();
}

std::string render_markdown(const sweep_report& report) {
  const auto mask = pareto_mask(report);
  std::string out = "# Design-space sweep\n\n";
  out += "- points: " + std::to_string(report.results.size()) + "\n";
  out += "- horizon: " + std::to_string(report.horizon) + " cycles, seed " +
         std::to_string(report.seed) + "\n";
  out += "- phase-1 simulations: " +
         std::to_string(report.phase1_simulations) +
         " (trace cache shares one per app/settings key)\n";
  out += "- full-crossbar reference simulations: " +
         std::to_string(report.full_simulations) + "\n\n";
  if (!report.cache.empty()) {
    out += "## Trace cache\n\n";
    out +=
        "| app | horizon | seed | trace hits | trace misses | hit ratio | "
        "full hits | full misses |\n|---|---|---|---|---|---|---|---|\n";
    char cbuf[64];
    for (const auto& c : report.cache) {
      std::snprintf(cbuf, sizeof(cbuf), "%.2f", c.trace_hit_ratio());
      out += "| " + c.app_name + " | " + std::to_string(report.horizon) +
             " | " + std::to_string(report.seed) + " | " +
             std::to_string(c.trace_hits) + " | " +
             std::to_string(c.trace_misses) + " | " + cbuf + " | " +
             std::to_string(c.full_hits) + " | " +
             std::to_string(c.full_misses) + " |\n";
    }
    out += "\n";
  }
  out += "## Points\n\n";
  out +=
      "| app | point | buses (req+resp) | savings | avg latency | pareto "
      "|\n|---|---|---|---|---|---|\n";
  char buf[64];
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    const auto& r = report.results[i];
    out += "| " + r.app_name + " | `" + r.point.to_string() + "` | " +
           std::to_string(r.report.request_design.num_buses) + "+" +
           std::to_string(r.report.response_design.num_buses) + " = " +
           std::to_string(r.total_buses()) + " | ";
    std::snprintf(buf, sizeof(buf), "%.2fx", r.report.savings());
    out += buf;
    out += " | ";
    std::snprintf(buf, sizeof(buf), "%.2f", r.avg_latency());
    out += buf;
    out += " | ";
    out += mask[i] ? "**yes**" : "no";
    out += " |\n";
  }
  out += "\n## Pareto front (total buses vs avg latency, per app)\n\n";
  if (report.pareto.empty()) {
    out += "(empty)\n";
  } else {
    for (const auto i : report.pareto) {
      const auto& r = report.results[i];
      std::snprintf(buf, sizeof(buf), "%.2f", r.avg_latency());
      out += "- " + r.app_name + ": " + std::to_string(r.total_buses()) +
             " buses, avg latency " + buf + " — `" + r.point.to_string() +
             "`\n";
    }
  }
  return out;
}

std::vector<gen::artifact> render_artifacts(const sweep_report& report,
                                            const std::string& basename) {
  const auto stem = gen::sanitize_basename(basename);
  return {
      {"sweep-json", stem + ".json", render_json(report)},
      {"sweep-csv", stem + ".csv", render_csv(report)},
      {"sweep-md", stem + ".md", render_markdown(report)},
  };
}

}  // namespace stx::explore
