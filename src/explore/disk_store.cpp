#include "explore/disk_store.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <optional>
#include <sstream>
#include <system_error>
#include <vector>

#include "obs/obs.h"
#include "util/error.h"
#include "util/failpoint.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace stx::explore {

namespace fs = std::filesystem;

namespace {

constexpr const char* kMagic = "stxstore/v1";

std::uint64_t process_id() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<std::uint64_t>(::getpid());
#else
  return 0;
#endif
}

/// Reads the whole file; nullopt when it does not exist or cannot be
/// read (both are plain misses at this layer).
std::optional<std::string> slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  return std::move(buf).str();
}

/// Parses the envelope; nullopt on any integrity failure.
std::optional<std::string> extract_payload(const std::string& file,
                                           const std::string& key_line) {
  // Header: three lines plus the blank separator, each ended by '\n'.
  std::size_t pos = 0;
  const auto next_line = [&](std::string& out) {
    const auto nl = file.find('\n', pos);
    if (nl == std::string::npos) return false;
    out = file.substr(pos, nl - pos);
    pos = nl + 1;
    return true;
  };
  std::string magic, key_field, bytes_field, blank;
  if (!next_line(magic) || magic != kMagic) return std::nullopt;
  if (!next_line(key_field) || key_field.rfind("key=", 0) != 0) {
    return std::nullopt;
  }
  if (key_field.substr(4) != key_line) return std::nullopt;
  if (!next_line(bytes_field) || bytes_field.rfind("bytes=", 0) != 0) {
    return std::nullopt;
  }
  std::size_t declared = 0;
  try {
    declared = static_cast<std::size_t>(std::stoull(bytes_field.substr(6)));
  } catch (...) {
    return std::nullopt;
  }
  if (!next_line(blank) || !blank.empty()) return std::nullopt;
  if (file.size() - pos != declared) return std::nullopt;
  return file.substr(pos);
}

/// Staging files older than this are stale regardless of their name: a
/// healthy put() renames within milliseconds of creating them.
constexpr auto stale_tmp_age = std::chrono::hours(1);

/// Whether the writer encoded in a staging-file name is still alive.
/// Names are "<hash>.<pid>.<seq>"; nullopt when the name does not parse
/// (foreign file — fall back to the age gate alone).
std::optional<bool> tmp_writer_alive(const std::string& name) {
  const auto first = name.find('.');
  if (first == std::string::npos) return std::nullopt;
  const auto second = name.find('.', first + 1);
  if (second == std::string::npos) return std::nullopt;
  std::uint64_t pid = 0;
  try {
    std::size_t used = 0;
    const auto field = name.substr(first + 1, second - first - 1);
    pid = std::stoull(field, &used);
    if (used != field.size() || pid == 0) return std::nullopt;
  } catch (...) {
    return std::nullopt;
  }
#if defined(__unix__) || defined(__APPLE__)
  if (pid == process_id()) return true;
  // Signal 0 probes existence; EPERM still means "exists".
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH;
#else
  return std::nullopt;
#endif
}

#if defined(__unix__) || defined(__APPLE__)
/// write()s all of [data, data+size) to fd; false on any error.
bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const auto n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// fsync()s a directory so a rename into it is durable; false on error.
bool sync_dir(const fs::path& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}
#endif

/// Best-effort access time for the eviction order: true atime where the
/// platform exposes one (POSIX stat), otherwise the write time. On
/// relatime/noatime mounts atime degrades toward mtime, which still
/// yields a sane oldest-first order — eviction is a cache policy, not a
/// correctness surface.
std::int64_t access_stamp(const fs::path& p) {
#if defined(__APPLE__)
  struct ::stat st{};
  if (::stat(p.c_str(), &st) == 0) {
    return static_cast<std::int64_t>(st.st_atimespec.tv_sec) *
               1'000'000'000 +
           st.st_atimespec.tv_nsec;
  }
#elif defined(__unix__)
  struct ::stat st{};
  if (::stat(p.c_str(), &st) == 0) {
    return static_cast<std::int64_t>(st.st_atim.tv_sec) * 1'000'000'000 +
           st.st_atim.tv_nsec;
  }
#endif
  std::error_code ec;
  const auto mtime = fs::last_write_time(p, ec);
  if (ec) return 0;
  return static_cast<std::int64_t>(mtime.time_since_epoch().count());
}

}  // namespace

std::int64_t disk_store::evict_over_cap() {
  if (max_bytes_ == 0) return 0;
  struct entry {
    fs::path path;
    std::uint64_t bytes = 0;
    std::int64_t stamp = 0;
  };
  std::vector<entry> entries;
  std::uint64_t total = 0;
  std::error_code ec;
  for (fs::directory_iterator it(root_ / "objects", ec), end;
       !ec && it != end; it.increment(ec)) {
    std::error_code fec;
    if (!it->is_regular_file(fec)) continue;
    entry e;
    e.path = it->path();
    e.bytes = static_cast<std::uint64_t>(it->file_size(fec));
    if (fec) continue;
    e.stamp = access_stamp(e.path);
    total += e.bytes;
    entries.push_back(std::move(e));
  }
  if (total <= max_bytes_) return 0;
  // Oldest access first; tie-break on the (hash) filename so the sweep
  // order is stable across runs.
  std::sort(entries.begin(), entries.end(), [](const entry& a,
                                               const entry& b) {
    if (a.stamp != b.stamp) return a.stamp < b.stamp;
    return a.path.filename() < b.path.filename();
  });
  std::int64_t evicted = 0;
  for (const auto& e : entries) {
    if (total <= max_bytes_) break;
    std::error_code rm;
    if (fs::remove(e.path, rm) && !rm) {
      total -= e.bytes;
      ++evicted;
    }
  }
  return evicted;
}

std::int64_t disk_store::sweep_tmp() {
  std::int64_t swept = 0;
  std::error_code ec;
  const auto now = fs::file_time_type::clock::now();
  for (fs::directory_iterator it(root_ / "tmp", ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const auto alive = tmp_writer_alive(it->path().filename().string());
    bool stale = alive.has_value() && !*alive;  // writer is provably dead
    if (!stale) {
      // Live or unknown writer: only the age gate may reclaim it, so an
      // in-flight put() of a running process is never pulled out from
      // under the rename.
      const auto mtime = fs::last_write_time(it->path(), ec);
      stale = !ec && now - mtime > stale_tmp_age;
    }
    if (!stale) continue;
    std::error_code rm;
    if (fs::remove(it->path(), rm) && !rm) ++swept;
  }
  return swept;
}

disk_store::disk_store(const std::string& dir, std::uint64_t max_bytes,
                       int sweep_interval_ms)
    : root_(dir), max_bytes_(max_bytes) {
  STX_REQUIRE(!dir.empty(), "disk_store: empty cache directory");
  std::error_code ec;
  fs::create_directories(root_ / "objects", ec);
  STX_REQUIRE(!ec, "disk_store: cannot create " +
                       (root_ / "objects").string() + ": " + ec.message());
  fs::create_directories(root_ / "tmp", ec);
  STX_REQUIRE(!ec, "disk_store: cannot create " + (root_ / "tmp").string() +
                       ": " + ec.message());
  // Reclaim staging files orphaned by crashed/killed writers, so tmp/
  // cannot grow without bound across daemon restarts.
  stats_.tmp_swept = sweep_tmp();
  if (stats_.tmp_swept > 0) {
    obs::add_counter("store.disk.tmp_swept", stats_.tmp_swept);
  }
  // Enforce the size cap once, at open: a long-running sweep/daemon can
  // overshoot between opens, but every restart pulls the store back
  // under the configured bound.
  stats_.evicted = evict_over_cap();
  if (stats_.evicted > 0) {
    obs::add_counter("store.disk.evicted", stats_.evicted);
  }
  // Long-running daemons opt into re-running the sweep periodically, so
  // the cap also holds *between* opens instead of only at them.
  if (sweep_interval_ms > 0 && max_bytes_ > 0) {
    sweep_thread_ = std::thread([this, sweep_interval_ms] {
      std::unique_lock<std::mutex> lock(sweep_mu_);
      while (!sweep_stop_) {
        if (sweep_cv_.wait_for(lock,
                               std::chrono::milliseconds(sweep_interval_ms),
                               [&] { return sweep_stop_; })) {
          break;
        }
        lock.unlock();
        const auto evicted = evict_over_cap();
        if (evicted > 0) {
          {
            std::lock_guard<std::mutex> slock(mu_);
            stats_.evicted += evicted;
          }
          obs::add_counter("store.disk.evicted", evicted);
        }
        lock.lock();
      }
    });
  }
}

disk_store::~disk_store() {
  {
    std::lock_guard<std::mutex> lock(sweep_mu_);
    sweep_stop_ = true;
  }
  sweep_cv_.notify_all();
  if (sweep_thread_.joinable()) sweep_thread_.join();
}

fs::path disk_store::object_path(const cache_key& key) const {
  return root_ / "objects" / (hash_hex(key) + ".stx");
}

std::optional<std::string> disk_store::get(const cache_key& key) {
  const auto fp = STX_FAILPOINT_ACTION("store.get.read");
  if (fp.kind == failpoint::action_kind::error) {
    // Injected unreadable object: corrupt-as-miss, exactly like a real
    // I/O failure — the caller recomputes, the next put heals.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    ++stats_.corrupt;
    obs::add_counter("store.disk.misses", 1);
    obs::add_counter("store.disk.corrupt", 1);
    return std::nullopt;
  }
  const auto file = slurp(object_path(key));
  if (!file.has_value()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    obs::add_counter("store.disk.misses", 1);
    return std::nullopt;
  }
  auto payload = extract_payload(*file, encode(key));
  if (!payload.has_value()) {
    // Truncated / garbage / hash-collision entry: a miss, never an
    // error. The next put overwrites it with a complete object.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    ++stats_.corrupt;
    obs::add_counter("store.disk.misses", 1);
    obs::add_counter("store.disk.corrupt", 1);
    return std::nullopt;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.hits;
  }
  obs::add_counter("store.disk.hits", 1);
  return payload;
}

void disk_store::put(const cache_key& key, std::string_view value) {
  const auto key_line = encode(key);
  // Stage the complete envelope under tmp/ with a per-process unique
  // name, fsync it, then rename into place and fsync the directory:
  // readers see the old object or the new one, never a prefix, and a
  // power loss after put() returns cannot roll the entry back.
  const auto tmp =
      root_ / "tmp" /
      (hash_hex(key) + "." + std::to_string(process_id()) + "." +
       std::to_string(tmp_seq_.fetch_add(1)));
  // Any failure from here on is a put failure: the staged file is
  // removed, nothing is published (or an already-renamed entry of
  // unknown durability is withdrawn), and the caller sees the throw —
  // never a silently torn object.
  const auto fail = [&](const std::string& what) {
    std::error_code rm;
    fs::remove(tmp, rm);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.put_failures;
    }
    obs::add_counter("store.disk.put_failures", 1);
    throw invalid_argument_error("disk_store: " + what);
  };

  std::string envelope;
  envelope.reserve(value.size() + key_line.size() + 64);
  envelope += kMagic;
  envelope += "\nkey=";
  envelope += key_line;
  envelope += "\nbytes=";
  envelope += std::to_string(value.size());
  envelope += "\n\n";
  envelope += value;

#if defined(__unix__) || defined(__APPLE__)
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) fail("cannot write " + tmp.string());
  bool ok = write_all(fd, envelope.data(), envelope.size());
  const auto torn = STX_FAILPOINT_ACTION("store.put.after_tmp_write");
  if (torn.kind == failpoint::action_kind::torn_write) {
    // Injected torn write: keep only a prefix of the staged bytes. The
    // crash matrix then proves a torn object is never served whole.
    (void)::ftruncate(fd, static_cast<off_t>(envelope.size() / 2));
  } else if (torn.kind == failpoint::action_kind::error) {
    ok = false;
  }
  if (ok) {
    const auto fsf = STX_FAILPOINT_ACTION("store.put.fsync");
    ok = fsf.kind != failpoint::action_kind::error && ::fsync(fd) == 0;
  }
  ::close(fd);
  if (!ok) fail("write/fsync failed for " + tmp.string());
#else
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) fail("cannot write " + tmp.string());
    out.write(envelope.data(), static_cast<std::streamsize>(envelope.size()));
    out.flush();
    if (!out.good()) fail("write failed for " + tmp.string());
  }
#endif
  STX_FAILPOINT("store.put.before_rename");
  std::error_code ec;
  fs::rename(tmp, object_path(key), ec);
  if (ec) fail("cannot publish " + object_path(key).string());
  STX_FAILPOINT("store.put.after_rename");
#if defined(__unix__) || defined(__APPLE__)
  if (!sync_dir(root_ / "objects")) {
    // The rename itself may not survive a power loss: withdraw the
    // entry so "put failed" always implies "not published".
    fs::remove(object_path(key), ec);
    fail("cannot fsync " + (root_ / "objects").string());
  }
#endif
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.puts;
  }
  obs::add_counter("store.disk.puts", 1);
}

bool disk_store::contains(const cache_key& key) {
  const auto file = slurp(object_path(key));
  return file.has_value() && extract_payload(*file, encode(key)).has_value();
}

kv_store::kv_stats disk_store::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace stx::explore
