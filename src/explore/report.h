// Sweep results: per-point metrics, the Pareto front over
// (total_buses, avg_latency), and deterministic JSON / CSV / Markdown
// renderings reusing the gen:: artifact machinery.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "explore/grid.h"
#include "gen/artifact.h"
#include "xbar/flow.h"

namespace stx::explore {

/// One evaluated point: the parameter assignment plus the flow report it
/// produced. When the sweep ran with validation off, the report carries
/// the designs and bus counts but zero latency metrics.
struct sweep_result {
  std::string app_name;
  sweep_point point;
  xbar::flow_report report;
  bool validated = true;

  int total_buses() const { return report.designed_buses; }
  double avg_latency() const { return report.designed.avg_latency; }

  bool operator==(const sweep_result&) const = default;
};

/// Per-application trace-cache activity during one sweep. Deterministic
/// across worker thread counts: the cache's exactly-once insertion makes
/// misses = #distinct keys and hits = requests − misses, independent of
/// scheduling.
struct app_cache_stats {
  std::string app_name;
  std::int64_t trace_hits = 0;
  std::int64_t trace_misses = 0;
  std::int64_t full_hits = 0;
  std::int64_t full_misses = 0;

  double trace_hit_ratio() const {
    const auto total = trace_hits + trace_misses;
    return total > 0 ? static_cast<double>(trace_hits) /
                           static_cast<double>(total)
                     : 0.0;
  }

  bool operator==(const app_cache_stats&) const = default;
};

/// Everything one sweep produced, in deterministic order: application-
/// major (spec order), then grid-expansion order. Identical regardless of
/// the worker thread count.
struct sweep_report {
  std::vector<sweep_result> results;
  /// Indices into `results` on the per-application Pareto front over
  /// (total_buses, avg_latency), ascending.
  std::vector<std::size_t> pareto;
  traffic::cycle_t horizon = 0;
  std::uint64_t seed = 0;
  /// Phase-1 collection simulations actually run (trace-cache misses);
  /// one per (app, horizon, seed, policy, overhead) key, independent of
  /// the point and thread counts.
  std::int64_t phase1_simulations = 0;
  /// Full-crossbar reference simulations actually run.
  std::int64_t full_simulations = 0;
  /// Phase-4 designed-configuration validations served from the
  /// persistent store instead of re-simulating (always 0 without a
  /// backing store, with validation off, or with batch_size <= 1).
  std::int64_t designed_store_hits = 0;
  /// Trace-cache hit/miss activity per application, in spec order.
  std::vector<app_cache_stats> cache;

  bool operator==(const sweep_report&) const = default;
};

/// Non-dominated indices over (buses, latency), both minimised: index i
/// survives unless some j has buses <= and latency <= with at least one
/// strict. Equal pairs do not dominate each other, so exact duplicates
/// all stay on the front. Returned ascending.
std::vector<std::size_t> pareto_front(
    const std::vector<std::pair<int, double>>& points);

/// Per-application front over (total_buses(), avg_latency()): results of
/// different applications never dominate each other. Returned ascending.
std::vector<std::size_t> pareto_front(const std::vector<sweep_result>& results);

/// Deterministic renderings (fed from the report only, so they are
/// byte-identical across thread counts).
std::string render_json(const sweep_report& report);
std::string render_csv(const sweep_report& report);
std::string render_markdown(const sweep_report& report);

/// All three renderings as gen:: artifacts (<basename>.json/.csv/.md),
/// ready for gen::write_artifacts.
std::vector<gen::artifact> render_artifacts(const sweep_report& report,
                                            const std::string& basename);

}  // namespace stx::explore
