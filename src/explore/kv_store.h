// The narrow blob-store interface every result cache is written against:
// get / put / contains / stats over (stxkey -> opaque bytes). Two
// implementations ship — the in-process memory_store and the persistent
// content-addressed disk_store — so whether results survive the process
// is a constructor choice of the consumer (explore::trace_cache,
// serve::service, the CLIs' --cache-dir), never a code path.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "explore/cache_key.h"

namespace stx::explore {

class kv_store {
 public:
  /// Activity totals since construction. `corrupt` counts entries that
  /// existed but failed integrity checks and were treated as misses;
  /// `put_failures` counts puts that could not durably publish (write /
  /// fsync / rename failure — the entry is withheld, never published
  /// torn); `tmp_swept` counts orphaned staging files removed when the
  /// store opened (crashed writers leave them behind); `evicted` counts
  /// objects removed by the size-cap sweep (at open, and periodically
  /// when a sweep interval is configured) — all always 0 for the memory
  /// store.
  struct kv_stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t puts = 0;
    std::int64_t corrupt = 0;
    std::int64_t put_failures = 0;
    std::int64_t tmp_swept = 0;
    std::int64_t evicted = 0;

    bool operator==(const kv_stats&) const = default;
  };

  virtual ~kv_store() = default;

  /// The stored bytes for `key`, or nullopt on a miss. A present but
  /// unreadable/corrupt entry is a miss (counted in stats().corrupt),
  /// never an error: the caller recomputes and put() overwrites it.
  virtual std::optional<std::string> get(const cache_key& key) = 0;

  /// Stores `value` under `key`, replacing any existing entry. Last
  /// writer wins; concurrent puts of the same key must each leave a
  /// complete, uncorrupted entry.
  virtual void put(const cache_key& key, std::string_view value) = 0;

  /// True when `key` currently resolves (does not count as a hit).
  virtual bool contains(const cache_key& key) = 0;

  virtual kv_stats stats() const = 0;
};

/// In-process map-backed store; thread-safe, contents die with the
/// process. The zero-configuration default backing.
class memory_store final : public kv_store {
 public:
  std::optional<std::string> get(const cache_key& key) override;
  void put(const cache_key& key, std::string_view value) override;
  bool contains(const cache_key& key) override;
  kv_stats stats() const override;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::string> entries_;  ///< encode(key) -> bytes
  kv_stats stats_;
};

}  // namespace stx::explore
