#include "explore/trace_cache.h"

namespace stx::explore {

trace_cache::key_t trace_cache::make_key(const workloads::app_spec& app,
                                         const xbar::flow_options& opts) {
  return {app.name, opts.horizon, opts.seed, static_cast<int>(opts.policy),
          opts.transfer_overhead};
}

template <typename T, typename Load>
std::shared_ptr<const T> trace_cache::get(store_t<T>& store, const key_t& key,
                                          std::int64_t& hits,
                                          std::int64_t& misses, Load&& load) {
  std::promise<std::shared_ptr<const T>> promise;
  std::shared_future<std::shared_ptr<const T>> future;
  bool loader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = store.find(key);
    if (it != store.end()) {
      ++hits;
      future = it->second;
    } else {
      ++misses;
      loader = true;
      future = promise.get_future().share();
      store.emplace(key, future);
    }
  }
  if (loader) {
    // Simulate outside the lock so other keys proceed concurrently; same-
    // key requesters block on the future until the value lands.
    try {
      promise.set_value(std::make_shared<const T>(load()));
    } catch (...) {
      // Drop the entry first so the failure is not cached: current
      // waiters get the exception, the next requester retries the load.
      {
        std::lock_guard<std::mutex> lock(mu_);
        store.erase(key);
      }
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();
}

std::shared_ptr<const xbar::collected_traces> trace_cache::traces(
    const workloads::app_spec& app, const xbar::flow_options& opts) {
  return get(traces_, make_key(app, opts), stats_.trace_hits,
             stats_.trace_misses,
             [&] { return xbar::collect_traces(app, opts); });
}

std::shared_ptr<const xbar::validation_metrics> trace_cache::full_metrics(
    const workloads::app_spec& app, const xbar::flow_options& opts) {
  return get(full_, make_key(app, opts), stats_.full_hits,
             stats_.full_misses,
             [&] { return xbar::validate_full_crossbars(app, opts); });
}

trace_cache::cache_stats trace_cache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace stx::explore
