#include "explore/trace_cache.h"

#include "explore/codec.h"
#include "obs/obs.h"

namespace stx::explore {

namespace {

/// How the loader obtained a value; selects the stats bucket.
enum class load_source { store, simulated };

}  // namespace

template <typename T, typename Simulate, typename Enc, typename Dec>
std::shared_ptr<const T> trace_cache::get(store_t<T>& store,
                                          const cache_key& key,
                                          const std::string& app_name,
                                          bool is_trace, Simulate&& simulate,
                                          Enc&& enc, Dec&& dec) {
  const auto map_key = encode(key);
  std::promise<std::shared_ptr<const T>> promise;
  std::shared_future<std::shared_ptr<const T>> future;
  bool loader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = store.find(map_key);
    if (it != store.end()) {
      auto& per_app = stats_by_app_[app_name];
      ++(is_trace ? stats_.trace_hits : stats_.full_hits);
      ++(is_trace ? per_app.trace_hits : per_app.full_hits);
      obs::add_counter(
          is_trace ? "explore.cache.trace_hits" : "explore.cache.full_hits",
          1);
      future = it->second;
    } else {
      loader = true;
      future = promise.get_future().share();
      store.emplace(map_key, future);
    }
  }
  if (loader) {
    // Resolve outside the lock so other keys proceed concurrently; same-
    // key requesters block on the future until the value lands. Misses
    // (= simulations run) and store hits are counted here, once the
    // source is known, so stats stay truthful with a backing store.
    try {
      std::shared_ptr<const T> value;
      auto source = load_source::simulated;
      if (backing_) {
        if (auto blob = backing_->get(key)) {
          try {
            value = std::make_shared<const T>(dec(*blob));
            source = load_source::store;
          } catch (const std::exception&) {
            // Undecodable blob: miss; the write-through below replaces it.
            value = nullptr;
          }
        }
      }
      if (!value) {
        value = std::make_shared<const T>(simulate());
        if (backing_) {
          try {
            backing_->put(key, enc(*value));
          } catch (const std::exception&) {
            // A failed write-through (disk full, fsync failure) only
            // loses persistence — the computed value is still good, so
            // serve it rather than failing the whole request.
            obs::add_counter("explore.cache.put_dropped", 1);
          }
        }
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto& per_app = stats_by_app_[app_name];
        if (source == load_source::store) {
          ++(is_trace ? stats_.trace_store_hits : stats_.full_store_hits);
          ++(is_trace ? per_app.trace_store_hits : per_app.full_store_hits);
        } else {
          ++(is_trace ? stats_.trace_misses : stats_.full_misses);
          ++(is_trace ? per_app.trace_misses : per_app.full_misses);
        }
      }
      obs::add_counter(source == load_source::store
                           ? (is_trace ? "explore.cache.trace_store_hits"
                                       : "explore.cache.full_store_hits")
                           : (is_trace ? "explore.cache.trace_misses"
                                       : "explore.cache.full_misses"),
                       1);
      promise.set_value(std::move(value));
    } catch (...) {
      // Drop the entry first so the failure is not cached: current
      // waiters get the exception, the next requester retries the load.
      {
        std::lock_guard<std::mutex> lock(mu_);
        store.erase(map_key);
      }
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();
}

std::shared_ptr<const xbar::collected_traces> trace_cache::traces(
    const workloads::app_spec& app, const xbar::flow_options& opts,
    const std::string& app_id) {
  return get(
      traces_, trace_key(app_id, opts), app_id, /*is_trace=*/true,
      [&] { return xbar::collect_traces(app, opts); },
      [](const xbar::collected_traces& t) { return encode_traces(t); },
      [](const std::string& blob) { return decode_traces(blob); });
}

std::shared_ptr<const xbar::validation_metrics> trace_cache::full_metrics(
    const workloads::app_spec& app, const xbar::flow_options& opts,
    const std::string& app_id) {
  return get(
      full_, full_key(app_id, opts), app_id, /*is_trace=*/false,
      [&] { return xbar::validate_full_crossbars(app, opts); },
      [](const xbar::validation_metrics& m) { return encode_metrics(m); },
      [](const std::string& blob) { return decode_metrics(blob); });
}

trace_cache::cache_stats trace_cache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::map<std::string, trace_cache::cache_stats> trace_cache::stats_by_app()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_by_app_;
}

}  // namespace stx::explore
