#include "explore/trace_cache.h"

#include "obs/obs.h"

namespace stx::explore {

trace_cache::key_t trace_cache::make_key(const workloads::app_spec& app,
                                         const xbar::flow_options& opts) {
  return {app.name, opts.horizon, opts.seed, static_cast<int>(opts.policy),
          opts.transfer_overhead};
}

template <typename T, typename Load>
std::shared_ptr<const T> trace_cache::get(store_t<T>& store, const key_t& key,
                                          const std::string& app_name,
                                          bool is_trace, Load&& load) {
  std::promise<std::shared_ptr<const T>> promise;
  std::shared_future<std::shared_ptr<const T>> future;
  bool loader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = store.find(key);
    auto& per_app = stats_by_app_[app_name];
    if (it != store.end()) {
      ++(is_trace ? stats_.trace_hits : stats_.full_hits);
      ++(is_trace ? per_app.trace_hits : per_app.full_hits);
      obs::add_counter(
          is_trace ? "explore.cache.trace_hits" : "explore.cache.full_hits",
          1);
      future = it->second;
    } else {
      ++(is_trace ? stats_.trace_misses : stats_.full_misses);
      ++(is_trace ? per_app.trace_misses : per_app.full_misses);
      obs::add_counter(is_trace ? "explore.cache.trace_misses"
                                : "explore.cache.full_misses",
                       1);
      loader = true;
      future = promise.get_future().share();
      store.emplace(key, future);
    }
  }
  if (loader) {
    // Simulate outside the lock so other keys proceed concurrently; same-
    // key requesters block on the future until the value lands.
    try {
      promise.set_value(std::make_shared<const T>(load()));
    } catch (...) {
      // Drop the entry first so the failure is not cached: current
      // waiters get the exception, the next requester retries the load.
      {
        std::lock_guard<std::mutex> lock(mu_);
        store.erase(key);
      }
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();
}

std::shared_ptr<const xbar::collected_traces> trace_cache::traces(
    const workloads::app_spec& app, const xbar::flow_options& opts) {
  return get(traces_, make_key(app, opts), app.name, /*is_trace=*/true,
             [&] { return xbar::collect_traces(app, opts); });
}

std::shared_ptr<const xbar::validation_metrics> trace_cache::full_metrics(
    const workloads::app_spec& app, const xbar::flow_options& opts) {
  return get(full_, make_key(app, opts), app.name, /*is_trace=*/false,
             [&] { return xbar::validate_full_crossbars(app, opts); });
}

trace_cache::cache_stats trace_cache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::map<std::string, trace_cache::cache_stats> trace_cache::stats_by_app()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_by_app_;
}

}  // namespace stx::explore
