// Persistent content-addressed result store: the kv_store that survives
// the process. Traces, full-crossbar references and whole flow reports
// land here keyed by their canonical stxkey/v1 line, shared by xbargen,
// xbar-sweep, xbar-fuzz and the xbar-serve daemon pointed at the same
// cache directory.
//
// On-disk layout (all under the cache directory):
//   objects/<16-hex fnv1a of the key line>.stx   one entry per key
//   tmp/                                          atomic-write staging
//
// Entry format — a self-describing envelope so integrity is checkable
// without any external index:
//   stxstore/v1\n
//   key=<stxkey/v1 line>\n
//   bytes=<payload size>\n
//   \n
//   <payload bytes>
//
// Guarantees:
//  * Atomic writes: entries are staged in tmp/ and renamed into place,
//    so readers never observe a half-written object (POSIX rename).
//  * Durable writes: the staged object is fsync()ed before the rename
//    and the objects/ directory is fsync()ed after it, so a power loss
//    after put() returns cannot roll back or tear the entry. A write /
//    fsync / rename failure withholds the object (tmp cleaned up, put
//    throws, stats().put_failures counts it) — never a torn publish.
//  * Corruption tolerance: a truncated, garbage, or wrong-key (hash
//    collision) object is treated as a miss and counted in
//    stats().corrupt; the next put simply overwrites it. Never a crash,
//    never a wrong answer.
//  * Concurrency: safe across threads and across processes (last
//    complete writer wins; both write identical bytes for the same key
//    by construction — results are deterministic in the key).
//  * Self-cleaning: opening the store sweeps tmp/ staging files whose
//    writer process is provably dead (or that are over an hour old), so
//    crashes cannot grow the staging area without bound. Swept files are
//    counted in stats().tmp_swept.
//  * Bounded (opt-in): with a byte cap, opening the store evicts whole
//    objects oldest-access-first until the objects/ total fits the cap.
//    A long-running daemon can additionally opt into a periodic
//    in-process eviction sweep (`sweep_interval_ms`), so the cap holds
//    between opens too. Eviction only ever drops cached results — every
//    consumer treats an absent key as a miss and recomputes. Counted in
//    stats().evicted.
//
// Fault injection: put() and get() carry STX_FAILPOINT sites
// (store.put.after_tmp_write, store.put.fsync, store.put.before_rename,
// store.put.after_rename, store.get.read) — see util/failpoint.h.
#pragma once

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <thread>

#include "explore/kv_store.h"

namespace stx::explore {

class disk_store final : public kv_store {
 public:
  /// Opens (creating if needed) the store rooted at `dir`. Throws
  /// stx::invalid_argument_error when the directories cannot be created.
  /// `max_bytes` caps the objects/ payload total: when the existing
  /// contents exceed it, the open evicts oldest-access-first down to the
  /// cap (0 = unlimited, the default). `sweep_interval_ms` > 0 starts a
  /// background thread re-running the eviction sweep every interval, so
  /// a long-running process honors the cap between opens (0 = at open
  /// only, the default).
  explicit disk_store(const std::string& dir, std::uint64_t max_bytes = 0,
                      int sweep_interval_ms = 0);
  ~disk_store() override;  ///< stops the periodic sweep thread, if any

  std::optional<std::string> get(const cache_key& key) override;
  void put(const cache_key& key, std::string_view value) override;
  bool contains(const cache_key& key) override;
  kv_stats stats() const override;

  const std::filesystem::path& root() const { return root_; }

 private:
  std::filesystem::path object_path(const cache_key& key) const;
  /// Removes orphaned tmp/ staging files — writer pid provably dead, or
  /// older than an hour — and returns how many went (stats().tmp_swept).
  std::int64_t sweep_tmp();
  /// Evicts objects oldest-access-first until objects/ totals at most
  /// max_bytes_; returns how many went (stats().evicted). No-op at 0.
  std::int64_t evict_over_cap();

  std::filesystem::path root_;
  std::uint64_t max_bytes_ = 0;
  std::atomic<std::uint64_t> tmp_seq_{0};
  mutable std::mutex mu_;  ///< guards stats_ only; file ops are lock-free
  kv_stats stats_;

  /// Periodic eviction sweep (opt-in). Removal races with concurrent
  /// get()s are benign: a reader that loses its object mid-read sees a
  /// plain miss and recomputes.
  std::mutex sweep_mu_;
  std::condition_variable sweep_cv_;
  bool sweep_stop_ = false;
  std::thread sweep_thread_;
};

}  // namespace stx::explore
