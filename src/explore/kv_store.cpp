#include "explore/kv_store.h"

#include "obs/obs.h"

namespace stx::explore {

std::optional<std::string> memory_store::get(const cache_key& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(encode(key));
  if (it == entries_.end()) {
    ++stats_.misses;
    obs::add_counter("store.mem.misses", 1);
    return std::nullopt;
  }
  ++stats_.hits;
  obs::add_counter("store.mem.hits", 1);
  return it->second;
}

void memory_store::put(const cache_key& key, std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[encode(key)] = std::string(value);
  ++stats_.puts;
  obs::add_counter("store.mem.puts", 1);
}

bool memory_store::contains(const cache_key& key) {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.find(encode(key)) != entries_.end();
}

kv_store::kv_stats memory_store::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace stx::explore
