#include "explore/cache_key.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "util/error.h"

namespace stx::explore {

namespace {

/// Characters that would break the one-line space-separated k=v wire
/// form; everything else passes through verbatim so keys stay readable.
bool needs_escape(char c) {
  return c == '%' || c == ' ' || c == '=' || c == '\n' || c == '\r' ||
         c == '\t';
}

std::string escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    if (needs_escape(c)) {
      char buf[4];
      std::snprintf(buf, sizeof buf, "%%%02X",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

std::string unescape(const std::string& enc) {
  std::string out;
  out.reserve(enc.size());
  for (std::size_t i = 0; i < enc.size(); ++i) {
    if (enc[i] != '%') {
      out += enc[i];
      continue;
    }
    STX_REQUIRE(i + 2 < enc.size(), "stxkey: truncated %-escape");
    const int hi = hex_digit(enc[i + 1]);
    const int lo = hex_digit(enc[i + 2]);
    STX_REQUIRE(hi >= 0 && lo >= 0, "stxkey: malformed %-escape");
    out += static_cast<char>(hi * 16 + lo);
    i += 2;
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::int64_t parse_int(const std::string& v, const std::string& field) {
  char* end = nullptr;
  const long long out = std::strtoll(v.c_str(), &end, 10);
  STX_REQUIRE(end != nullptr && *end == '\0' && !v.empty(),
              "stxkey: malformed integer in " + field);
  return static_cast<std::int64_t>(out);
}

std::uint64_t parse_uint(const std::string& v, const std::string& field) {
  char* end = nullptr;
  const unsigned long long out = std::strtoull(v.c_str(), &end, 10);
  STX_REQUIRE(end != nullptr && *end == '\0' && !v.empty(),
              "stxkey: malformed integer in " + field);
  return static_cast<std::uint64_t>(out);
}

double parse_double(const std::string& v, const std::string& field) {
  char* end = nullptr;
  const double out = std::strtod(v.c_str(), &end);
  STX_REQUIRE(end != nullptr && *end == '\0' && !v.empty(),
              "stxkey: malformed number in " + field);
  return out;
}

bool parse_bool(const std::string& v, const std::string& field) {
  if (v == "1") return true;
  if (v == "0") return false;
  throw invalid_argument_error("stxkey: malformed bool in " + field +
                               " (want 0 or 1)");
}

cache_key base_key(cache_stage stage, const std::string& app_id,
                   const xbar::flow_options& opts) {
  cache_key k;
  k.stage = stage;
  k.app = app_id;
  k.horizon = opts.horizon;
  k.seed = opts.seed;
  k.policy = static_cast<int>(opts.policy);
  k.transfer_overhead = opts.transfer_overhead;
  return k;
}

}  // namespace

const char* to_string(cache_stage s) {
  switch (s) {
    case cache_stage::trace:
      return "trace";
    case cache_stage::full:
      return "full";
    case cache_stage::report:
      return "report";
    case cache_stage::metrics:
      return "metrics";
  }
  return "?";
}

cache_key trace_key(const std::string& app_id,
                    const xbar::flow_options& opts) {
  return base_key(cache_stage::trace, app_id, opts);
}

cache_key full_key(const std::string& app_id, const xbar::flow_options& opts) {
  return base_key(cache_stage::full, app_id, opts);
}

cache_key report_key(const std::string& app_id, const xbar::flow_options& opts,
                     bool validated) {
  auto k = base_key(cache_stage::report, app_id, opts);
  const auto& p = opts.synth.params;
  k.window_size = p.window_size;
  k.overlap_threshold = p.overlap_threshold;
  k.max_targets_per_bus = p.max_targets_per_bus;
  k.burst_window = p.burst_window;
  k.use_overlap_conflicts = p.use_overlap_conflicts;
  k.separate_critical = p.separate_critical;
  k.request_window = opts.request_window_override;
  k.response_window = opts.response_window_override;
  k.solver = static_cast<int>(opts.synth.solver);
  k.optimize_binding = opts.synth.optimize_binding;
  k.max_nodes = opts.synth.limits.max_nodes;
  k.time_limit_sec = opts.synth.limits.time_limit_sec;
  k.cuts = opts.synth.limits.cuts;
  k.portfolio = opts.synth.limits.portfolio;
  k.validated = validated;
  return k;
}

cache_key metrics_key(const std::string& app_id,
                      const xbar::flow_options& opts) {
  auto k = report_key(app_id, opts, /*validated=*/false);
  k.stage = cache_stage::metrics;
  return k;
}

std::string encode(const cache_key& key) {
  std::string out = "stxkey/v1";
  const auto field = [&out](const char* name, const std::string& v) {
    out += ' ';
    out += name;
    out += '=';
    out += v;
  };
  field("v", std::to_string(key.version));
  field("stage", to_string(key.stage));
  field("app", escape(key.app));
  field("horizon", std::to_string(key.horizon));
  field("seed", std::to_string(key.seed));
  field("policy", std::to_string(key.policy));
  field("overhead", std::to_string(key.transfer_overhead));
  if (key.stage == cache_stage::report || key.stage == cache_stage::metrics) {
    field("win", std::to_string(key.window_size));
    field("thr", fmt_double(key.overlap_threshold));
    field("maxtb", std::to_string(key.max_targets_per_bus));
    field("burstwin", std::to_string(key.burst_window));
    field("conflicts", key.use_overlap_conflicts ? "1" : "0");
    field("critical", key.separate_critical ? "1" : "0");
    field("reqwin", std::to_string(key.request_window));
    field("respwin", std::to_string(key.response_window));
    field("solver", std::to_string(key.solver));
    field("bindopt", key.optimize_binding ? "1" : "0");
    field("nodes", std::to_string(key.max_nodes));
    field("timelimit", fmt_double(key.time_limit_sec));
    field("cuts", key.cuts ? "1" : "0");
    field("portfolio", key.portfolio ? "1" : "0");
    field("validated", key.validated ? "1" : "0");
  }
  return out;
}

cache_key decode(const std::string& line) {
  // Split on single spaces; the magic token leads.
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (start <= line.size()) {
    const auto sp = line.find(' ', start);
    const auto end = sp == std::string::npos ? line.size() : sp;
    if (end > start) tokens.push_back(line.substr(start, end - start));
    if (sp == std::string::npos) break;
    start = sp + 1;
  }
  STX_REQUIRE(!tokens.empty() && tokens[0] == "stxkey/v1",
              "not an stxkey/v1 line");

  cache_key k;
  k.version = 0;  // must be supplied explicitly
  bool have_stage = false, have_app = false;
  std::vector<std::string> seen;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    STX_REQUIRE(eq != std::string::npos && eq > 0,
                "stxkey: malformed field '" + tokens[i] + "'");
    const auto name = tokens[i].substr(0, eq);
    const auto value = tokens[i].substr(eq + 1);
    for (const auto& s : seen) {
      STX_REQUIRE(s != name, "stxkey: duplicate field '" + name + "'");
    }
    seen.push_back(name);
    if (name == "v") {
      k.version = static_cast<int>(parse_int(value, name));
    } else if (name == "stage") {
      if (value == "trace") {
        k.stage = cache_stage::trace;
      } else if (value == "full") {
        k.stage = cache_stage::full;
      } else if (value == "report") {
        k.stage = cache_stage::report;
      } else if (value == "metrics") {
        k.stage = cache_stage::metrics;
      } else {
        throw invalid_argument_error("stxkey: unknown stage '" + value + "'");
      }
      have_stage = true;
    } else if (name == "app") {
      k.app = unescape(value);
      have_app = true;
    } else if (name == "horizon") {
      k.horizon = parse_int(value, name);
    } else if (name == "seed") {
      k.seed = parse_uint(value, name);
    } else if (name == "policy") {
      k.policy = static_cast<int>(parse_int(value, name));
    } else if (name == "overhead") {
      k.transfer_overhead = parse_int(value, name);
    } else if (name == "win") {
      k.window_size = parse_int(value, name);
    } else if (name == "thr") {
      k.overlap_threshold = parse_double(value, name);
    } else if (name == "maxtb") {
      k.max_targets_per_bus = static_cast<int>(parse_int(value, name));
    } else if (name == "burstwin") {
      k.burst_window = parse_int(value, name);
    } else if (name == "conflicts") {
      k.use_overlap_conflicts = parse_bool(value, name);
    } else if (name == "critical") {
      k.separate_critical = parse_bool(value, name);
    } else if (name == "reqwin") {
      k.request_window = parse_int(value, name);
    } else if (name == "respwin") {
      k.response_window = parse_int(value, name);
    } else if (name == "solver") {
      k.solver = static_cast<int>(parse_int(value, name));
    } else if (name == "bindopt") {
      k.optimize_binding = parse_bool(value, name);
    } else if (name == "nodes") {
      k.max_nodes = parse_int(value, name);
    } else if (name == "timelimit") {
      k.time_limit_sec = parse_double(value, name);
    } else if (name == "cuts") {
      k.cuts = parse_bool(value, name);
    } else if (name == "portfolio") {
      k.portfolio = parse_bool(value, name);
    } else if (name == "validated") {
      k.validated = parse_bool(value, name);
    } else {
      throw invalid_argument_error("stxkey: unknown field '" + name + "'");
    }
  }
  STX_REQUIRE(k.version != 0, "stxkey: missing v field");
  STX_REQUIRE(have_stage, "stxkey: missing stage field");
  STX_REQUIRE(have_app, "stxkey: missing app field");
  return k;
}

std::uint64_t hash64(const cache_key& key) {
  // FNV-1a, the offset-basis/prime constants of the 64-bit variant.
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : encode(key)) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string hash_hex(const cache_key& key) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, hash64(key));
  return buf;
}

}  // namespace stx::explore
