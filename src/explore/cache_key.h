// The one canonical cache-key encoding (`stxkey/v1`) shared by every
// result cache in the system: the in-process explore::trace_cache, the
// persistent content-addressed store (explore::disk_store), the design
// service's report cache and in-flight request dedup, and the on-disk
// object layout.
//
// A key names one stage result of the design flow for one application
// under fully pinned options. Two invocations produce the same key if
// and only if the flow is guaranteed to produce a bit-identical result —
// so every input the stage depends on is part of the key, including the
// solver budgets (a starved budget changes outcomes) and a schema
// version covering the code's result format.
//
// Wire form: one line, space-separated `k=v` fields in fixed order,
//   stxkey/v1 v=1 stage=report app=mat2 horizon=120000 seed=1 ...
// Values are percent-escaped so application identities may be arbitrary
// strings (e.g. a full `stxfuzz/v1 ...` scenario token — the
// content-addressed identity of a generated application).
// decode(encode(k)) == k holds exactly; doubles use %.17g.
#pragma once

#include <cstdint>
#include <string>

#include "xbar/flow.h"

namespace stx::explore {

/// Bump when the flow's result schema or semantics change in a way that
/// invalidates previously stored results (new flow_report fields, solver
/// behaviour changes, trace format changes). Old entries then simply
/// miss: the store is content-addressed, never migrated.
inline constexpr int kCacheSchemaVersion = 1;

/// Which stage result the key names.
enum class cache_stage {
  trace,    ///< phase-1 collected_traces (synthesis knobs excluded)
  full,     ///< full-crossbar reference validation_metrics (same deps)
  report,   ///< complete flow_report (every knob included)
  metrics,  ///< phase-4 designed-configuration validation_metrics (the
            ///< design is a function of every knob, so same deps as
            ///< report minus the validated marker)
};

const char* to_string(cache_stage s);

/// The canonical key. Construct through trace_key/full_key/report_key so
/// the field-selection rules (which options enter which stage) live in
/// exactly one place.
struct cache_key {
  int version = kCacheSchemaVersion;
  cache_stage stage = cache_stage::report;
  /// Application identity: the built-in app name, or any caller-chosen
  /// content identity (the design service uses the canonical stxfuzz/v1
  /// token for generated apps so distinct scenarios can never alias).
  std::string app;

  // ---- Phase-1 simulation inputs (every stage).
  traffic::cycle_t horizon = 0;
  std::uint64_t seed = 0;
  int policy = 0;  ///< static_cast<int>(sim::arbitration)
  traffic::cycle_t transfer_overhead = 0;

  // ---- Synthesis + solver inputs (stage::report only; defaulted and
  // omitted from the wire form otherwise).
  traffic::cycle_t window_size = 0;
  double overlap_threshold = 0.0;
  int max_targets_per_bus = 0;
  traffic::cycle_t burst_window = 0;
  bool use_overlap_conflicts = false;
  bool separate_critical = false;
  traffic::cycle_t request_window = 0;
  traffic::cycle_t response_window = 0;
  int solver = 0;  ///< static_cast<int>(xbar::solver_kind)
  bool optimize_binding = false;
  std::int64_t max_nodes = 0;
  double time_limit_sec = 0.0;
  /// Solver cut separation and portfolio racing DO enter the key (a
  /// starved budget interacts with both); worker thread count does NOT —
  /// solver results are bit-identical across thread counts by contract.
  bool cuts = false;
  bool portfolio = false;
  /// Whether phase 4 ran (a validated and a synthesis-only report are
  /// different artifacts).
  bool validated = false;

  bool operator==(const cache_key&) const = default;
};

/// Phase-1 trace key for (app identity, opts): everything the collection
/// simulation depends on, nothing the synthesis knobs change.
cache_key trace_key(const std::string& app_id, const xbar::flow_options& opts);

/// Full-crossbar reference key: same dependencies as the trace key.
cache_key full_key(const std::string& app_id, const xbar::flow_options& opts);

/// Complete flow-report key: every option the report depends on.
cache_key report_key(const std::string& app_id, const xbar::flow_options& opts,
                     bool validated = true);

/// Phase-4 designed-configuration metrics key: the designed crossbar is
/// a deterministic function of the traces and every synthesis knob, so
/// this carries the full report-key field set (validated excluded — it
/// names a report variant, not a metrics input).
cache_key metrics_key(const std::string& app_id,
                      const xbar::flow_options& opts);

/// The one-line canonical wire form (see file comment).
std::string encode(const cache_key& key);

/// Parses an encode() string. Unknown magic, unknown or duplicate
/// fields, malformed values, or a missing required field throw
/// stx::invalid_argument_error.
cache_key decode(const std::string& line);

/// 64-bit FNV-1a over encode(key): the content address used for the
/// on-disk object layout and for compact log lines. Stable across
/// processes and platforms.
std::uint64_t hash64(const cache_key& key);

/// hash64 rendered as 16 lowercase hex digits (the on-disk object name).
std::string hash_hex(const cache_key& key);

}  // namespace stx::explore
