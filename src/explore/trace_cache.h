// Thread-safe phase-1 cache: every sweep point of one application at the
// same simulator settings consumes the identical full-crossbar trace, so
// the expensive collection simulation (and the full-crossbar reference
// validation) runs exactly once per key no matter how many points or
// worker threads request it.
#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "xbar/flow.h"

namespace stx::explore {

/// Memoises xbar::collect_traces and xbar::validate_full_crossbars per
/// (app name, horizon, seed, policy, transfer_overhead) — everything the
/// phase-1 simulation depends on; the synthesis knobs deliberately do
/// not enter the key. Applications are identified by
/// name: two different specs sharing a name would alias, so sweep specs
/// must keep app names unique.
///
/// Concurrency: the first requester of a key inserts a future and runs
/// the simulation outside the lock; concurrent requesters for the same
/// key block on that future. Both guarantee exactly-once evaluation.
class trace_cache {
 public:
  struct cache_stats {
    std::int64_t trace_hits = 0;
    std::int64_t trace_misses = 0;  ///< phase-1 collection simulations run
    std::int64_t full_hits = 0;
    std::int64_t full_misses = 0;   ///< full-crossbar reference sims run
  };

  /// The phase-1 traces for (app, opts); simulated on first request.
  std::shared_ptr<const xbar::collected_traces> traces(
      const workloads::app_spec& app, const xbar::flow_options& opts);

  /// The full-crossbar reference metrics for (app, opts); simulated on
  /// first request.
  std::shared_ptr<const xbar::validation_metrics> full_metrics(
      const workloads::app_spec& app, const xbar::flow_options& opts);

  cache_stats stats() const;

  /// Hit/miss totals aggregated per application name. Exactly-once
  /// insertion makes these deterministic regardless of worker count:
  /// misses = #distinct keys requested, hits = requests − misses.
  std::map<std::string, cache_stats> stats_by_app() const;

 private:
  using key_t = std::tuple<std::string, traffic::cycle_t, std::uint64_t,
                           int, traffic::cycle_t>;

  template <typename T>
  using store_t = std::map<key_t, std::shared_future<std::shared_ptr<const T>>>;

  static key_t make_key(const workloads::app_spec& app,
                        const xbar::flow_options& opts);

  /// Exactly-once lookup: returns the cached future's value, running
  /// `load` (outside the lock) when this caller is the first for `key`.
  /// `is_trace` selects which stats fields (and obs counters) the lookup
  /// lands in.
  template <typename T, typename Load>
  std::shared_ptr<const T> get(store_t<T>& store, const key_t& key,
                               const std::string& app_name, bool is_trace,
                               Load&& load);

  mutable std::mutex mu_;
  store_t<xbar::collected_traces> traces_;
  store_t<xbar::validation_metrics> full_;
  cache_stats stats_;
  std::map<std::string, cache_stats> stats_by_app_;
};

}  // namespace stx::explore
