// Thread-safe phase-1 cache: every sweep point of one application at the
// same simulator settings consumes the identical full-crossbar trace, so
// the expensive collection simulation (and the full-crossbar reference
// validation) runs exactly once per key no matter how many points or
// worker threads request it.
//
// Optionally backed by a kv_store (constructor choice): with a
// persistent explore::disk_store behind it, results survive the process
// and a second run — or another binary pointed at the same cache
// directory — serves them without re-simulating.
#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "explore/cache_key.h"
#include "explore/kv_store.h"
#include "xbar/flow.h"

namespace stx::explore {

/// Memoises xbar::collect_traces and xbar::validate_full_crossbars per
/// stxkey/v1 trace/full key (app name, horizon, seed, policy,
/// transfer_overhead — everything the phase-1 simulation depends on; the
/// synthesis knobs deliberately do not enter the key). Applications are
/// identified by name: two different specs sharing a name would alias,
/// so sweep specs must keep app names unique.
///
/// Concurrency: the first requester of a key inserts a future and
/// resolves it outside the lock; concurrent requesters for the same key
/// block on that future. Both guarantee exactly-once evaluation per
/// process; the backing store additionally guarantees at most one
/// simulation per key across processes that share a cache directory
/// (modulo racing cold starts, which write identical bytes).
class trace_cache {
 public:
  struct cache_stats {
    std::int64_t trace_hits = 0;
    std::int64_t trace_misses = 0;  ///< phase-1 collection simulations run
    std::int64_t full_hits = 0;
    std::int64_t full_misses = 0;   ///< full-crossbar reference sims run
    /// Loads served from the backing store instead of simulating (0
    /// without a backing store). A load is exactly one of: hit (served
    /// from memory), store hit, or miss (simulated).
    std::int64_t trace_store_hits = 0;
    std::int64_t full_store_hits = 0;
  };

  /// In-process only (no backing store) — contents die with the cache.
  trace_cache() = default;

  /// Backed by `backing`: loads consult it before simulating, and every
  /// simulated result is written through. Pass an explore::disk_store
  /// for persistence, or share one store between caches and a
  /// serve::service.
  explicit trace_cache(std::shared_ptr<kv_store> backing)
      : backing_(std::move(backing)) {}

  /// The phase-1 traces for (app, opts); simulated on first request.
  std::shared_ptr<const xbar::collected_traces> traces(
      const workloads::app_spec& app, const xbar::flow_options& opts) {
    return traces(app, opts, app.name);
  }

  /// Same, under an explicit cache identity instead of app.name — for
  /// generated applications whose display name is not content-unique
  /// (the serve/fuzz paths pass the canonical stxfuzz/v1 token).
  std::shared_ptr<const xbar::collected_traces> traces(
      const workloads::app_spec& app, const xbar::flow_options& opts,
      const std::string& app_id);

  /// The full-crossbar reference metrics for (app, opts); simulated on
  /// first request.
  std::shared_ptr<const xbar::validation_metrics> full_metrics(
      const workloads::app_spec& app, const xbar::flow_options& opts) {
    return full_metrics(app, opts, app.name);
  }

  /// full_metrics under an explicit cache identity (see traces).
  std::shared_ptr<const xbar::validation_metrics> full_metrics(
      const workloads::app_spec& app, const xbar::flow_options& opts,
      const std::string& app_id);

  cache_stats stats() const;

  /// Hit/miss totals aggregated per application name. Exactly-once
  /// insertion makes these deterministic regardless of worker count.
  std::map<std::string, cache_stats> stats_by_app() const;

  /// The backing store, or nullptr when in-process only.
  kv_store* backing() const { return backing_.get(); }

 private:
  template <typename T>
  using store_t =
      std::map<std::string, std::shared_future<std::shared_ptr<const T>>>;

  /// Exactly-once lookup keyed by encode(key): returns the cached
  /// future's value, resolving it (outside the lock) when this caller is
  /// the first — from the backing store when possible, else by running
  /// `simulate`. `is_trace` selects which stats fields (and obs
  /// counters) the lookup lands in; Codec supplies the blob round-trip
  /// for the backing store.
  template <typename T, typename Simulate, typename Enc, typename Dec>
  std::shared_ptr<const T> get(store_t<T>& store, const cache_key& key,
                               const std::string& app_name, bool is_trace,
                               Simulate&& simulate, Enc&& enc, Dec&& dec);

  std::shared_ptr<kv_store> backing_;
  mutable std::mutex mu_;
  store_t<xbar::collected_traces> traces_;
  store_t<xbar::validation_metrics> full_;
  cache_stats stats_;
  std::map<std::string, cache_stats> stats_by_app_;
};

}  // namespace stx::explore
