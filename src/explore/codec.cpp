#include "explore/codec.h"

#include <sstream>

#include "gen/json.h"
#include "gen/json_backend.h"
#include "util/error.h"

namespace stx::explore {

std::string encode_traces(const xbar::collected_traces& traces) {
  std::ostringstream out;
  out << "stxtraces/v1\n";
  traces.request.save(out);
  traces.response.save(out);
  return std::move(out).str();
}

xbar::collected_traces decode_traces(const std::string& blob) {
  std::istringstream in(blob);
  std::string magic;
  in >> magic;
  STX_REQUIRE(magic == "stxtraces/v1", "not an stxtraces/v1 blob");
  xbar::collected_traces traces;
  traces.request = traffic::trace::load(in);
  traces.response = traffic::trace::load(in);
  return traces;
}

std::string encode_metrics(const xbar::validation_metrics& m) {
  const gen::json::value doc(gen::json::object{
      {"schema", "stx-validation-metrics/v1"},
      {"avg_latency", m.avg_latency},
      {"max_latency", m.max_latency},
      {"p99_latency", m.p99_latency},
      {"avg_critical", m.avg_critical},
      {"max_critical", m.max_critical},
      {"packets", m.packets},
      {"transactions", m.transactions},
      {"iterations", m.iterations},
      {"total_buses", m.total_buses},
  });
  return gen::json::dump(doc);
}

xbar::validation_metrics decode_metrics(const std::string& blob) {
  const auto doc = gen::json::parse(blob);
  STX_REQUIRE(doc.contains("schema") && doc.at("schema").as_string() ==
                                            "stx-validation-metrics/v1",
              "not an stx-validation-metrics/v1 blob");
  xbar::validation_metrics m;
  m.avg_latency = doc.at("avg_latency").as_double();
  m.max_latency = doc.at("max_latency").as_double();
  m.p99_latency = doc.at("p99_latency").as_double();
  m.avg_critical = doc.at("avg_critical").as_double();
  m.max_critical = doc.at("max_critical").as_double();
  m.packets = doc.at("packets").as_int();
  m.transactions = doc.at("transactions").as_int();
  m.iterations = doc.at("iterations").as_int();
  m.total_buses = static_cast<int>(doc.at("total_buses").as_int());
  return m;
}

std::string encode_report(const xbar::flow_report& report) {
  return gen::json_backend().emit(report, report.app_name);
}

xbar::flow_report decode_report(const std::string& blob) {
  return gen::parse_design(blob);
}

}  // namespace stx::explore
