#include "explore/grid.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace stx::explore {

namespace {

const char* policy_short_name(sim::arbitration p) {
  switch (p) {
    case sim::arbitration::fixed_priority: return "fixed";
    case sim::arbitration::round_robin: return "rr";
    case sim::arbitration::least_recently_granted: return "lrg";
  }
  return "?";
}

sim::arbitration parse_policy(const std::string& v) {
  if (v == "fixed" || v == "fixed_priority") {
    return sim::arbitration::fixed_priority;
  }
  if (v == "rr" || v == "round_robin") return sim::arbitration::round_robin;
  if (v == "lrg" || v == "least_recently_granted") {
    return sim::arbitration::least_recently_granted;
  }
  throw invalid_argument_error("unknown arbitration policy '" + v +
                               "' (fixed|rr|lrg)");
}

xbar::solver_kind parse_solver(const std::string& v) {
  if (v == "specialized") return xbar::solver_kind::specialized;
  if (v == "milp") return xbar::solver_kind::generic_milp;
  throw invalid_argument_error("unknown solver '" + v +
                               "' (specialized|milp)");
}

cycle_t parse_cycles(const std::string& key, const std::string& v,
                     cycle_t min_value = 0) {
  char* end = nullptr;
  errno = 0;
  const auto n = std::strtoll(v.c_str(), &end, 10);
  STX_REQUIRE(end != v.c_str() && *end == '\0' && errno != ERANGE &&
                  n >= min_value,
              "grid axis " + key + ": bad value '" + v + "'");
  return n;
}

double parse_fraction(const std::string& key, const std::string& v) {
  char* end = nullptr;
  const double d = std::strtod(v.c_str(), &end);
  STX_REQUIRE(end != v.c_str() && *end == '\0' && d >= 0.0,
              "grid axis " + key + ": bad value '" + v + "'");
  return d;
}

/// Iterates an axis: the axis's values, or the one fallback when empty.
template <typename T, typename Fn>
void each(const std::vector<T>& axis, const T& fallback, Fn&& fn) {
  if (axis.empty()) {
    fn(fallback);
    return;
  }
  for (const auto& v : axis) fn(v);
}

}  // namespace

std::string sweep_point::to_string() const {
  std::ostringstream out;
  out << "win=" << window_size;
  char thr[32];
  std::snprintf(thr, sizeof(thr), "%.2f", overlap_threshold);
  out << " thr=" << thr << " maxtb=" << max_targets_per_bus;
  if (burst_window > 0) out << " burstwin=" << burst_window;
  out << " policy=" << policy_short_name(policy);
  if (solver != xbar::solver_kind::specialized) out << " solver=milp";
  if (request_window > 0) out << " reqwin=" << request_window;
  if (response_window > 0) out << " respwin=" << response_window;
  return out.str();
}

bool sweep_grid::empty() const {
  return window_sizes.empty() && overlap_thresholds.empty() &&
         max_targets_per_bus.empty() && burst_windows.empty() &&
         policies.empty() && solvers.empty() && request_windows.empty() &&
         response_windows.empty();
}

std::size_t sweep_grid::num_points() const {
  const auto axis = [](std::size_t n) { return n == 0 ? 1 : n; };
  return axis(window_sizes.size()) * axis(overlap_thresholds.size()) *
         axis(max_targets_per_bus.size()) * axis(burst_windows.size()) *
         axis(policies.size()) * axis(solvers.size()) *
         axis(request_windows.size()) * axis(response_windows.size());
}

std::vector<sweep_point> expand_grid(const sweep_grid& grid) {
  const sweep_point def;
  std::vector<sweep_point> out;
  out.reserve(grid.num_points());
  each(grid.window_sizes, def.window_size, [&](cycle_t win) {
    each(grid.overlap_thresholds, def.overlap_threshold, [&](double thr) {
      each(grid.max_targets_per_bus, def.max_targets_per_bus, [&](int maxtb) {
        each(grid.burst_windows, def.burst_window, [&](cycle_t bw) {
          each(grid.policies, def.policy, [&](sim::arbitration pol) {
            each(grid.solvers, def.solver, [&](xbar::solver_kind sol) {
              each(grid.request_windows, def.request_window,
                   [&](cycle_t req) {
                each(grid.response_windows, def.response_window,
                     [&](cycle_t resp) {
                  sweep_point p;
                  p.window_size = win;
                  p.overlap_threshold = thr;
                  p.max_targets_per_bus = maxtb;
                  p.burst_window = bw;
                  p.policy = pol;
                  p.solver = sol;
                  p.request_window = req;
                  p.response_window = resp;
                  out.push_back(p);
                });
              });
            });
          });
        });
      });
    });
  });
  // Deduplicate, keeping first occurrences: a value listed twice on an
  // axis must not evaluate (and bill) the same point twice.
  std::vector<sweep_point> unique;
  unique.reserve(out.size());
  for (const auto& p : out) {
    bool seen = false;
    for (const auto& q : unique) {
      if (p == q) {
        seen = true;
        break;
      }
    }
    if (!seen) unique.push_back(p);
  }
  return unique;
}

const std::vector<std::string>& grid_keys() {
  static const std::vector<std::string> keys = {
      "win",    "thr",    "maxtb",  "burstwin",
      "policy", "solver", "reqwin", "respwin",
  };
  return keys;
}

void parse_grid_axis(const std::string& spec, sweep_grid& grid) {
  const auto eq = spec.find('=');
  if (eq == std::string::npos) {
    throw invalid_argument_error("grid axis '" + spec +
                                 "' is not of the form key=v1,v2,...");
  }
  const auto key = spec.substr(0, eq);
  const auto values = split_list(spec.substr(eq + 1));
  if (values.empty()) {
    throw invalid_argument_error("grid axis '" + spec +
                                 "' has an empty value list");
  }
  for (const auto& v : values) {
    if (key == "win") {
      // A zero window would only fail inside window_analysis after the
      // expensive phase-1 run; reject it at parse time instead.
      grid.window_sizes.push_back(parse_cycles(key, v, /*min_value=*/1));
    } else if (key == "thr") {
      grid.overlap_thresholds.push_back(parse_fraction(key, v));
    } else if (key == "maxtb") {
      grid.max_targets_per_bus.push_back(
          static_cast<int>(parse_cycles(key, v)));
    } else if (key == "burstwin") {
      grid.burst_windows.push_back(parse_cycles(key, v));
    } else if (key == "policy") {
      grid.policies.push_back(parse_policy(v));
    } else if (key == "solver") {
      grid.solvers.push_back(parse_solver(v));
    } else if (key == "reqwin") {
      grid.request_windows.push_back(parse_cycles(key, v));
    } else if (key == "respwin") {
      grid.response_windows.push_back(parse_cycles(key, v));
    } else {
      std::string known;
      for (const auto& k : grid_keys()) known += " " + k;
      throw invalid_argument_error("unknown grid axis key '" + key +
                                   "' (valid:" + known + ")");
    }
  }
}

sweep_grid parse_grid(const std::vector<std::string>& specs) {
  sweep_grid grid;
  for (const auto& spec : specs) parse_grid_axis(spec, grid);
  return grid;
}

}  // namespace stx::explore
