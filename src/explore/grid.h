// Sweep grids: the parameter axes of a design-space exploration and
// their expansion into concrete evaluation points. The paper's Sec. 7
// experiments (Figs. 4-6) are exactly such sweeps — window size, overlap
// threshold, maxtb — run per application to pick the best crossbar.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/arbiter.h"
#include "traffic/trace.h"
#include "xbar/synthesis.h"

namespace stx::explore {

using cycle_t = traffic::cycle_t;

/// One concrete parameter assignment of the design methodology: every
/// knob the flow exposes per evaluation. Defaults match the xbargen CLI
/// defaults, so an axis left off a grid sweeps nothing and keeps the
/// standard value.
struct sweep_point {
  cycle_t window_size = 400;          ///< analysis window WS (cycles)
  double overlap_threshold = 0.30;    ///< Eq. 2 threshold (fraction of WS)
  int max_targets_per_bus = 4;        ///< Eq. 8 maxtb; 0 = off
  cycle_t burst_window = 0;           ///< busy cycles per burst-adaptive
                                      ///< variable window; 0 = uniform
  sim::arbitration policy = sim::arbitration::round_robin;
  xbar::solver_kind solver = xbar::solver_kind::specialized;
  cycle_t request_window = 0;         ///< per-direction WS override; 0 = WS
  cycle_t response_window = 0;        ///< per-direction WS override; 0 = WS

  bool operator==(const sweep_point&) const = default;

  /// Compact one-line spelling, e.g. "win=400 thr=0.30 maxtb=4 policy=rr".
  std::string to_string() const;
};

/// One value list per methodology knob. An empty axis contributes the
/// sweep_point default; expand_grid crosses the non-empty axes.
struct sweep_grid {
  std::vector<cycle_t> window_sizes;
  std::vector<double> overlap_thresholds;
  std::vector<int> max_targets_per_bus;
  std::vector<cycle_t> burst_windows;
  std::vector<sim::arbitration> policies;
  std::vector<xbar::solver_kind> solvers;
  std::vector<cycle_t> request_windows;
  std::vector<cycle_t> response_windows;

  bool operator==(const sweep_grid&) const = default;

  /// True when every axis is empty (expand_grid would yield the single
  /// all-defaults point; CLIs treat this as a usage error instead).
  bool empty() const;

  /// Cross-product cardinality before deduplication (empty axes count 1).
  std::size_t num_points() const;
};

/// Expands the cross product of the non-empty axes, window-size-major /
/// response-window-minor, preserving each axis's value order. Duplicate
/// points (e.g. a value listed twice on an axis) are dropped, keeping the
/// first occurrence, so the result is a set in deterministic order.
std::vector<sweep_point> expand_grid(const sweep_grid& grid);

/// The axis keys understood by parse_grid_axis, in expansion order:
/// win, thr, maxtb, burstwin, policy, solver, reqwin, respwin.
const std::vector<std::string>& grid_keys();

/// Parses one CLI axis spec "key=v1,v2,..." into `grid` (appending to the
/// named axis). Throws stx::invalid_argument_error on an unknown key
/// (listing the valid ones), an empty value list, or a malformed value —
/// a sweep must never silently run zero points.
void parse_grid_axis(const std::string& spec, sweep_grid& grid);

/// parse_grid_axis over every spec in order.
sweep_grid parse_grid(const std::vector<std::string>& specs);

}  // namespace stx::explore
