#include "workloads/mpsoc_apps.h"

#include <string>

#include "workloads/synthetic.h"

namespace stx::workloads {

namespace {

using sim::core_op;
using kind = sim::core_op::kind;

core_op compute(sim::cycle_t cycles) {
  core_op op;
  op.op = kind::compute;
  op.cycles = cycles;
  return op;
}

core_op read(int target, int cells, bool critical = false) {
  core_op op;
  op.op = kind::read;
  op.target = target;
  op.cells = cells;
  op.critical = critical;
  return op;
}

core_op write(int target, int cells, bool critical = false) {
  core_op op;
  op.op = kind::write;
  op.target = target;
  op.cells = cells;
  op.critical = critical;
  return op;
}

core_op barrier(int sem_target, int barrier_id, int group_size) {
  core_op op;
  op.op = kind::barrier;
  op.target = sem_target;
  op.barrier_id = barrier_id;
  op.group_size = group_size;
  return op;
}

}  // namespace

app_spec make_mat2() {
  app_spec app;
  app.name = "Mat2";
  app.num_initiators = 9;
  app.num_targets = 12;  // 9 private + shared + semaphore + interrupt
  app.shared_mem = 9;
  app.semaphore = 10;
  app.interrupt_dev = 11;
  for (int i = 0; i < 9; ++i) {
    app.private_mem.push_back(i);
    app.target_names.push_back("PrivateMemory" + std::to_string(i));
  }
  app.target_names.insert(app.target_names.end(),
                          {"SharedMemory", "Semaphore", "InterruptDevice"});

  for (int i = 0; i < 9; ++i) {
    std::vector<core_op> prog;
    std::size_t loop_start = 0;
    // The multiply is pipelined in three stages of three cores each;
    // stages run a third of a period out of phase (one-time prologue).
    // Private-memory streams overlap heavily WITHIN a stage group and
    // little across groups — the structure the binding phase exploits.
    const int stage = i / 3;
    if (stage > 0) {
      prog.push_back(compute(345 * stage));
      loop_start = 1;
    }
    // Pipelined block matrix multiply: load A and B blocks from private
    // memory, multiply, store C, exchange a boundary block through the
    // shared memory, then synchronise the pipeline stage.
    prog.push_back(compute(15));
    prog.push_back(read(i, 16));   // A block
    prog.push_back(compute(30));
    prog.push_back(read(i, 16));   // B block
    prog.push_back(compute(45));   // multiply-accumulate
    prog.push_back(write(i, 16));  // C block
    prog.push_back(read(app.shared_mem, 8));   // neighbour stage input
    prog.push_back(write(app.shared_mem, 8));  // stage output
    prog.push_back(write(app.interrupt_dev, 1));  // completion signal
    prog.push_back(barrier(app.semaphore, /*barrier_id=*/stage,
                           /*group_size=*/3));
    prog.push_back(compute(800));  // idle: await the next frame of blocks
    app.programs.push_back(std::move(prog));
    app.loop_starts.push_back(loop_start);
  }
  app.validate();
  return app;
}

app_spec make_mat2_critical() {
  app_spec app = make_mat2();
  app.name = "Mat2-critical";
  // Cores 0 and 1 carry real-time streams to their private memories (for
  // example, a frame buffer refresh path): every access is critical.
  for (int i : {0, 1}) {
    for (auto& op : app.programs[static_cast<std::size_t>(i)]) {
      if (op.op == kind::read || op.op == kind::write) {
        if (op.target == i) op.critical = true;
      }
    }
  }
  return app;
}

app_spec make_mat1() {
  app_spec app;
  app.name = "Mat1";
  app.num_initiators = 12;
  app.num_targets = 13;  // 12 private + shared
  app.shared_mem = 12;
  for (int i = 0; i < 12; ++i) {
    app.private_mem.push_back(i);
    app.target_names.push_back("PrivateMemory" + std::to_string(i));
  }
  app.target_names.push_back("SharedMemory");

  for (int i = 0; i < 12; ++i) {
    std::vector<core_op> prog;
    // Un-barriered matrix pipeline: phases drift apart, overlap is
    // moderate; staggered start offsets avoid full lockstep.
    prog.push_back(compute(15 + 11 * i % 60));
    prog.push_back(read(i, 16));
    prog.push_back(compute(45));
    prog.push_back(read(i, 16));
    prog.push_back(compute(60));
    prog.push_back(write(i, 16));
    if (i % 3 == 0) {
      prog.push_back(read(app.shared_mem, 4));
    } else {
      prog.push_back(write(app.shared_mem, 4));
    }
    prog.push_back(compute(900));  // drain: next macro-block setup
    app.programs.push_back(std::move(prog));
  }
  app.validate();
  return app;
}

app_spec make_fft() {
  app_spec app;
  app.name = "FFT";
  app.num_initiators = 14;
  app.num_targets = 15;  // 14 private butterfly banks + shared exchange
  app.shared_mem = 14;
  for (int i = 0; i < 14; ++i) {
    app.private_mem.push_back(i);
    app.target_names.push_back("ButterflyBank" + std::to_string(i));
  }
  app.target_names.push_back("ExchangeMemory");

  for (int i = 0; i < 14; ++i) {
    std::vector<core_op> prog;
    std::size_t loop_start = 0;
    // Decimation structure: odd butterfly groups run half a stage out of
    // phase with even groups (one-time prologue), so banks of the same
    // parity stream together while opposite parities interleave.
    if (i % 2 == 1) {
      prog.push_back(compute(380));
      loop_start = 1;
    }
    // One FFT stage: stream the bank in and out with short twiddle
    // computes, exchange boundary points, then barrier to the next stage.
    // Short computes + large transfers = high duty on every bank.
    for (int pass = 0; pass < 2; ++pass) {
      prog.push_back(compute(6));
      prog.push_back(read(i, 60));   // load butterfly inputs
      prog.push_back(compute(8));    // twiddle multiplies
      prog.push_back(write(i, 60));  // store outputs
    }
    prog.push_back(write(app.shared_mem, 2));  // boundary exchange
    // Stage barrier per parity group: even and odd groups each stay in
    // lockstep internally while remaining half a stage apart.
    prog.push_back(barrier(app.shared_mem, /*barrier_id=*/1 + i % 2,
                           /*group_size=*/7));
    prog.push_back(compute(400));  // stage bookkeeping / twiddle reload
    app.programs.push_back(std::move(prog));
    app.loop_starts.push_back(loop_start);
  }
  app.validate();
  return app;
}

app_spec make_qsort() {
  app_spec app;
  app.name = "QSort";
  app.num_initiators = 7;
  app.num_targets = 8;  // 7 private partitions + shared pivot/stack
  app.shared_mem = 7;
  for (int i = 0; i < 7; ++i) {
    app.private_mem.push_back(i);
    app.target_names.push_back("Partition" + std::to_string(i));
  }
  app.target_names.push_back("PivotStack");

  for (int i = 0; i < 7; ++i) {
    std::vector<core_op> prog;
    // Irregular divide and conquer: mixed transfer sizes and widely
    // varying compute spans (the per-core jitter adds further variance).
    prog.push_back(compute(8 + 37 * i % 40));
    prog.push_back(read(app.shared_mem, 1));  // pop work item
    prog.push_back(read(i, 96));              // load partition
    prog.push_back(compute(20));              // partition scan
    prog.push_back(write(i, 48));             // write left half
    prog.push_back(compute(6));
    prog.push_back(write(i, 48));             // write right half
    prog.push_back(write(app.shared_mem, 1)); // push sub-problem
    // Round synchronisation: all workers re-balance on the shared stack
    // before the next round, which phase-aligns the partition streams.
    prog.push_back(barrier(app.shared_mem, /*barrier_id=*/2,
                           /*group_size=*/7));
    prog.push_back(compute(500));  // idle: wait for new work items
    app.programs.push_back(std::move(prog));
  }
  app.validate();
  return app;
}

app_spec make_des() {
  app_spec app;
  app.name = "DES";
  app.num_initiators = 9;
  app.num_targets = 10;  // stream buffers between pipeline stages
  for (int i = 0; i < 10; ++i) {
    app.target_names.push_back("StreamBuffer" + std::to_string(i));
  }
  for (int i = 0; i < 9; ++i) app.private_mem.push_back(i);

  for (int i = 0; i < 9; ++i) {
    std::vector<core_op> prog;
    // Stage i of the encryption pipeline: consume a block from buffer i,
    // run the round function, emit to buffer i+1. The pipeline stages are
    // naturally phase-shifted, so same-cycle overlap stays low.
    prog.push_back(compute(12 + 23 * i % 40));  // stage skew
    prog.push_back(read(i, 32));                // input block
    prog.push_back(compute(45));                // 16 Feistel rounds
    prog.push_back(write(i + 1, 32));           // output block
    prog.push_back(compute(500));  // idle: next plaintext block arrives
    app.programs.push_back(std::move(prog));
  }
  app.validate();
  return app;
}

std::vector<app_spec> all_mpsoc_apps() {
  return {make_mat1(), make_mat2(), make_fft(), make_qsort(), make_des()};
}

std::optional<app_spec> make_app_by_name(const std::string& name) {
  if (name == "mat1") return make_mat1();
  if (name == "mat2") return make_mat2();
  if (name == "mat2-critical") return make_mat2_critical();
  if (name == "fft") return make_fft();
  if (name == "qsort") return make_qsort();
  if (name == "des") return make_des();
  if (name == "synthetic") return make_synthetic();
  return std::nullopt;
}

const std::vector<std::string>& app_names() {
  static const std::vector<std::string> names = {
      "mat1", "mat2", "mat2-critical", "fft", "qsort", "des", "synthetic"};
  return names;
}

const std::string& app_name_list() {
  static const std::string list = [] {
    std::string out;
    for (const auto& name : app_names()) {
      if (!out.empty()) out += "|";
      out += name;
    }
    return out;
  }();
  return list;
}

}  // namespace stx::workloads
