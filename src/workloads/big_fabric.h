// Large synthetic fabrics for solver scaling (bench/ablation_solver and
// the parallel branch & bound stress tests).
//
// The paper's case studies top out at 15 targets; the wave-parallel
// solver only shows its scaling on models an order of magnitude larger.
// A big_fabric is a NxM MPSoC with deliberately ASYMMETRIC traffic:
// per-initiator duty cycles spread over ~3x (heavy cores burst long and
// rest short, light cores the opposite), a seed-shuffled home-target
// permutation, and a small set of hot shared targets every core hits —
// so the Eq. 3-9 window constraints bind unevenly and the binding tree
// is deep instead of symmetric.
#pragma once

#include <cstdint>

#include "util/random.h"
#include "workloads/app.h"

namespace stx::workloads {

/// Geometry and traffic knobs. Every field participates in the app name,
/// and the whole record is sampleable (sample_big_fabric_params) so the
/// family is fuzzable end-to-end.
struct big_fabric_params {
  int num_initiators = 32;
  int num_targets = 32;
  /// Shared hot targets (the first `hot_targets` target indices); every
  /// initiator redirects part of its traffic there. 0 disables.
  int hot_targets = 4;
  /// Fraction of burst packets redirected to a hot target.
  double hot_fraction = 0.2;
  sim::cycle_t burst_cycles = 600;   ///< busy cycles per MEDIAN burst
  int packet_cells = 16;             ///< cells per packet inside a burst
  sim::cycle_t gap_cycles = 1800;    ///< idle span after a MEDIAN burst
  double phase_spread = 0.21;        ///< [0,1] neighbour phase stagger
  double read_fraction = 0.25;       ///< [0,1] fraction of packets reading
  /// Spread of the per-initiator duty asymmetry: initiator weights run
  /// linearly over [1-s, 1+s] (burst scaled up, gap scaled down for
  /// heavy cores). 0 = uniform duty.
  double duty_spread = 0.5;
  /// Shuffles the home-target permutation (geometry seed, not the
  /// simulator seed).
  std::uint64_t seed = 1;

  /// Shape/range validation; throws stx::invalid_argument_error.
  void validate() const;
};

/// Builds the fabric. Deterministic in `params` alone.
app_spec make_big_fabric(const big_fabric_params& params = {});

/// The two bench reference geometries: 32x32 and 64x64 with the default
/// traffic knobs.
app_spec make_big_fabric_32();
app_spec make_big_fabric_64();

/// Samples a valid geometry from `r`: initiator/target counts in
/// [16, 64], hot-set size, duty spread, burst shape and seed all drawn
/// from the generator. The fuzz hook for the family.
big_fabric_params sample_big_fabric_params(rng& r);

}  // namespace stx::workloads
