#include "workloads/app.h"

#include <utility>

#include "util/error.h"

namespace stx::workloads {

void app_spec::validate() const {
  STX_REQUIRE(num_initiators > 0, "app needs initiators: " + name);
  STX_REQUIRE(num_targets > 0, "app needs targets: " + name);
  STX_REQUIRE(static_cast<int>(programs.size()) == num_initiators,
              "one program per initiator required: " + name);
  STX_REQUIRE(target_names.empty() ||
                  static_cast<int>(target_names.size()) == num_targets,
              "target_names size mismatch: " + name);
  for (const auto& prog : programs) {
    STX_REQUIRE(!prog.empty(), "empty core program: " + name);
    for (const auto& op : prog) {
      if (op.op != sim::core_op::kind::compute) {
        STX_REQUIRE(op.target >= 0 && op.target < num_targets,
                    "program references unknown target: " + name);
      }
    }
  }
  for (int pm : private_mem) {
    STX_REQUIRE(pm >= 0 && pm < num_targets,
                "private_mem out of range: " + name);
  }
  STX_REQUIRE(loop_starts.empty() || loop_starts.size() == programs.size(),
              "loop_starts must be empty or one per core: " + name);
  for (std::size_t i = 0; i < loop_starts.size(); ++i) {
    STX_REQUIRE(loop_starts[i] < programs[i].size(),
                "loop_start out of range: " + name);
  }
}

namespace {

/// Validates the app and assembles the system_config every entry point
/// (bare system or session) instantiates from.
sim::system_config assemble_config(const app_spec& app,
                                   const sim::crossbar_config& req,
                                   const sim::crossbar_config& resp,
                                   const sim::system_config& base) {
  app.validate();
  sim::system_config cfg = base;
  cfg.request = req;
  cfg.response = resp;
  return cfg;
}

/// Full crossbars on both directions, inheriting the per-direction
/// policy/overhead knobs from `base`.
std::pair<sim::crossbar_config, sim::crossbar_config> full_crossbar_configs(
    const app_spec& app, const sim::system_config& base) {
  auto req = sim::crossbar_config::full(app.num_targets);
  auto resp = sim::crossbar_config::full(app.num_initiators);
  req.policy = base.request.policy;
  req.transfer_overhead = base.request.transfer_overhead;
  resp.policy = base.response.policy;
  resp.transfer_overhead = base.response.transfer_overhead;
  return {std::move(req), std::move(resp)};
}

}  // namespace

sim::mpsoc_system make_system(const app_spec& app,
                              const sim::crossbar_config& req,
                              const sim::crossbar_config& resp,
                              const sim::system_config& base) {
  const auto cfg = assemble_config(app, req, resp, base);
  return sim::mpsoc_system(app.programs, app.num_targets, cfg,
                           app.loop_starts);
}

sim::mpsoc_system make_full_crossbar_system(const app_spec& app,
                                            const sim::system_config& base) {
  const auto [req, resp] = full_crossbar_configs(app, base);
  return make_system(app, req, resp, base);
}

sim::session make_session(const app_spec& app,
                          const sim::crossbar_config& req,
                          const sim::crossbar_config& resp,
                          const sim::system_config& base) {
  const auto cfg = assemble_config(app, req, resp, base);
  return sim::session(app.programs, app.num_targets, cfg, app.loop_starts);
}

sim::session make_full_crossbar_session(const app_spec& app,
                                        const sim::system_config& base) {
  const auto [req, resp] = full_crossbar_configs(app, base);
  return make_session(app, req, resp, base);
}

sim::system_config make_system_config(const app_spec& app,
                                      const sim::crossbar_config& req,
                                      const sim::crossbar_config& resp,
                                      const sim::system_config& base) {
  return assemble_config(app, req, resp, base);
}

sim::batch make_batch(const app_spec& app) {
  app.validate();
  return sim::batch(app.programs, app.num_targets, app.loop_starts);
}

}  // namespace stx::workloads
