// Parametric synthetic benchmark (Sec. 7.2: window sizing experiments).
#pragma once

#include <cstdint>

#include "workloads/app.h"

namespace stx::workloads {

/// Knobs of the synthetic burst benchmark. Half the cores are initiators
/// and half are targets; initiator i sends write bursts to target i with
/// optional cross traffic to its neighbour target. Burst start phases are
/// staggered linearly across cores, producing a *gradient* of pairwise
/// overlaps: some target pairs overlap almost fully, some barely — which
/// is what the overlap-threshold sweep (Fig. 6) needs to show structure.
struct synthetic_params {
  int num_cores = 20;            ///< total cores; initiators = targets = half
  sim::cycle_t burst_cycles = 1000;  ///< approx bus-busy cycles per burst
  int packet_cells = 16;         ///< cells per write packet inside a burst
  sim::cycle_t gap_cycles = 2600;    ///< idle span between bursts
  double phase_spread = 0.35;    ///< fraction of burst between neighbours'
                                 ///< start phases (0 = lockstep)
  double read_fraction = 0.25;   ///< fraction of burst packets that read
                                 ///< (loads the response direction too)
  bool cross_traffic = true;     ///< every 4th packet goes to neighbour
};

/// Builds the synthetic app. Deterministic; the burst phase of core i is
/// offset by i * phase_spread * burst_cycles. Degenerate parameters
/// (odd or < 4 core count, non-positive burst/packet sizes, negative
/// gap, phase_spread or read_fraction outside [0,1]) throw
/// stx::invalid_argument_error instead of silently producing a
/// benchmark with a different shape than asked for.
app_spec make_synthetic(const synthetic_params& params = {});

}  // namespace stx::workloads
