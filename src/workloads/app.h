// Application specification: an MPSoC's cores, targets and programs.
#pragma once

#include <string>
#include <vector>

#include "sim/batch.h"
#include "sim/core.h"
#include "sim/session.h"
#include "sim/system.h"

namespace stx::workloads {

/// A complete benchmark application: the processor cores, the memory /
/// peripheral targets they talk to, and the traffic program of each core.
/// Builders in mpsoc_apps.h / synthetic.h produce these; `make_system`
/// instantiates a simulator around one.
struct app_spec {
  std::string name;
  int num_initiators = 0;
  int num_targets = 0;
  std::vector<std::string> target_names;
  std::vector<std::vector<sim::core_op>> programs;
  /// Optional per-core loop body start (ops before it run once as a
  /// prologue, e.g. phase offsets). Empty = every program loops whole.
  std::vector<std::size_t> loop_starts;

  /// Semantic roles (or -1 / empty when absent): used by examples and
  /// reporting; the synthesis itself never looks at roles.
  std::vector<int> private_mem;  ///< private memory target of each core
  int shared_mem = -1;
  int semaphore = -1;
  int interrupt_dev = -1;

  /// Total core count as the paper counts it (initiators + targets);
  /// also the full-crossbar bus count across both directions (Table 2).
  int total_cores() const { return num_initiators + num_targets; }

  /// Shape validation: program count, target ids, names. Throws on error.
  void validate() const;
};

/// Instantiates a simulator for `app` with the given crossbar configs.
/// `req`/`resp` bindings must match app.num_targets / app.num_initiators.
sim::mpsoc_system make_system(const app_spec& app,
                              const sim::crossbar_config& req,
                              const sim::crossbar_config& resp,
                              const sim::system_config& base = {});

/// Convenience: full crossbars on both directions (the collection run of
/// design-flow phase 1).
sim::mpsoc_system make_full_crossbar_system(
    const app_spec& app, const sim::system_config& base = {});

/// The unified sim-session entry point: builds a session around `app`
/// with the given crossbar configs and simulator knobs (arbitration,
/// overheads, seed — all carried by `base`). The design flow,
/// the exploration trace cache and the fuzz oracle all simulate through
/// this, so one semantic model serves every consumer.
sim::session make_session(const app_spec& app,
                          const sim::crossbar_config& req,
                          const sim::crossbar_config& resp,
                          const sim::system_config& base = {});

/// Full crossbars on both directions, as a session.
sim::session make_full_crossbar_session(const app_spec& app,
                                        const sim::system_config& base = {});

/// The system_config a session over `app` would run under — the exact
/// assembly make_session performs (validate, then `base` with the two
/// crossbar configs swapped in). Exposed so batch consumers instantiate
/// instances from the same config a session would use.
sim::system_config make_system_config(const app_spec& app,
                                      const sim::crossbar_config& req,
                                      const sim::crossbar_config& resp,
                                      const sim::system_config& base = {});

/// An empty lockstep batch over `app`'s shape (programs shared across
/// every instance, unlike sessions which copy them per run). Add one
/// instance per (crossbar configs, seed) point via
/// `batch.add_instance(make_system_config(app, req, resp, base))`.
sim::batch make_batch(const app_spec& app);

}  // namespace stx::workloads
