// The paper's five MPSoC case-study applications (Sec. 7.1), modelled as
// closed-loop traffic programs.
//
// Core counts match the paper: Mat1 25, Mat2 21, FFT 29, QSort 15,
// DES 19 (counting initiators + targets, which is also the total
// full-crossbar bus count of Table 2). The programs reproduce each
// benchmark's first-order traffic structure rather than its arithmetic:
// what the synthesis consumes is burst layout, temporal overlap between
// streams, and the private-vs-shared traffic split.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "workloads/app.h"

namespace stx::workloads {

/// Matrix suite 1: 12 ARM cores + 12 private memories + shared memory
/// (25 cores). Pipelined block matrix multiply without global barriers:
/// looser phase alignment than Mat2, moderate per-memory duty.
app_spec make_mat1();

/// Matrix suite 2 (the running example of Fig. 2): 9 ARM cores, 9 private
/// memories, shared memory, semaphore, interrupt device (21 cores).
/// Cores run identical pipelined matrix multiply benchmarks and
/// synchronise every iteration, so private-memory streams overlap heavily
/// (Sec. 3.2) while shared/semaphore/interrupt traffic stays light.
app_spec make_mat2();

/// FFT suite: 14 cores + 14 private memories + shared exchange memory
/// (29 cores). Stage-barriered butterflies with large transfers and short
/// computes: high duty on every memory, the hardest app to compact
/// (paper designs 15 of 29 buses).
app_spec make_fft();

/// Quick-sort suite: 7 cores + 7 private memories + shared pivot/stack
/// memory (15 cores). Irregular: widely jittered compute spans and mixed
/// transfer sizes.
app_spec make_qsort();

/// DES encryption: 9 pipeline stage cores + 10 stream buffers (19 cores).
/// Stage i reads buffer i and writes buffer i+1: smooth, phase-shifted
/// streaming with little same-cycle overlap; compacts well.
app_spec make_des();

/// All five apps in paper order (Table 2 rows).
std::vector<app_spec> all_mpsoc_apps();

/// A variant of Mat2 where two cores' shared-memory streams are marked
/// critical (real-time): exercises the criticality pre-processing of
/// Sec. 7.3.
app_spec make_mat2_critical();

/// The CLI app inventory: resolves a name from app_names() to its
/// builder (including the default-parameter synthetic benchmark);
/// nullopt for unknown names. Every driver's --app flag goes through
/// this, so the spellings cannot diverge between binaries.
std::optional<app_spec> make_app_by_name(const std::string& name);

/// Every name make_app_by_name accepts, in canonical order: the five
/// paper apps, the critical Mat2 variant, the synthetic benchmark.
const std::vector<std::string>& app_names();

/// "mat1|mat2|mat2-critical|fft|qsort|des|synthetic" — for usage text.
const std::string& app_name_list();

}  // namespace stx::workloads
