#include "workloads/synthetic.h"

#include <algorithm>
#include <string>

#include "util/error.h"

namespace stx::workloads {

app_spec make_synthetic(const synthetic_params& params) {
  STX_REQUIRE(params.num_cores >= 4 && params.num_cores % 2 == 0,
              "synthetic benchmark needs an even core count >= 4");
  STX_REQUIRE(params.burst_cycles > 0 && params.packet_cells > 0,
              "burst/packet sizes must be positive");
  STX_REQUIRE(params.gap_cycles >= 0, "gap_cycles must be non-negative");
  STX_REQUIRE(params.phase_spread >= 0.0 && params.phase_spread <= 1.0,
              "phase_spread out of [0,1]");
  STX_REQUIRE(params.read_fraction >= 0.0 && params.read_fraction <= 1.0,
              "read_fraction out of [0,1]");

  app_spec app;
  app.name = "Synthetic" + std::to_string(params.num_cores);
  app.num_initiators = params.num_cores / 2;
  app.num_targets = params.num_cores / 2;
  for (int t = 0; t < app.num_targets; ++t) {
    app.target_names.push_back("Target" + std::to_string(t));
    app.private_mem.push_back(t);
  }

  // Packets per burst such that the burst occupies ~burst_cycles of bus
  // time (cells only; per-packet overhead stretches it slightly).
  const int packets_per_burst = std::max<int>(
      1, static_cast<int>(params.burst_cycles / params.packet_cells));
  const int read_every =
      params.read_fraction <= 0.0
          ? 0
          : std::max(1, static_cast<int>(1.0 / params.read_fraction));

  for (int i = 0; i < app.num_initiators; ++i) {
    std::vector<sim::core_op> prog;

    // Stagger burst phases linearly via a one-time prologue: overlap of
    // (core i, core j) then decays with |i - j|, giving the pairwise
    // overlap gradient the threshold sweep needs. The loop body starts
    // after the prologue so the stagger is stable across iterations.
    const auto offset = static_cast<sim::cycle_t>(
        static_cast<double>(i) * params.phase_spread *
        static_cast<double>(params.burst_cycles));
    std::size_t loop_start = 0;
    if (offset > 0) {
      sim::core_op warm;
      warm.op = sim::core_op::kind::compute;
      warm.cycles = offset;
      prog.push_back(warm);
      loop_start = 1;
    }

    for (int p = 0; p < packets_per_burst; ++p) {
      sim::core_op op;
      op.cells = params.packet_cells;
      int dest = i;
      if (params.cross_traffic && p % 4 == 3) {
        dest = (i + 1) % app.num_targets;
      }
      op.target = dest;
      const bool is_read = read_every > 0 && (p % read_every) == read_every - 1;
      op.op = is_read ? sim::core_op::kind::read : sim::core_op::kind::write;
      prog.push_back(op);
    }

    sim::core_op gap;
    gap.op = sim::core_op::kind::compute;
    gap.cycles = params.gap_cycles;
    prog.push_back(gap);

    app.programs.push_back(std::move(prog));
    app.loop_starts.push_back(loop_start);
  }
  app.validate();
  return app;
}

}  // namespace stx::workloads
