#include "workloads/big_fabric.h"

#include <algorithm>
#include <numeric>
#include <string>

#include "util/error.h"

namespace stx::workloads {

void big_fabric_params::validate() const {
  STX_REQUIRE(num_initiators >= 2 && num_targets >= 2,
              "big_fabric needs at least 2 initiators and 2 targets");
  STX_REQUIRE(hot_targets >= 0 && hot_targets <= num_targets,
              "hot_targets out of [0, num_targets]");
  STX_REQUIRE(hot_fraction >= 0.0 && hot_fraction <= 1.0,
              "hot_fraction out of [0,1]");
  STX_REQUIRE(burst_cycles > 0 && packet_cells > 0,
              "burst/packet sizes must be positive");
  STX_REQUIRE(gap_cycles >= 0, "gap_cycles must be non-negative");
  STX_REQUIRE(phase_spread >= 0.0 && phase_spread <= 1.0,
              "phase_spread out of [0,1]");
  STX_REQUIRE(read_fraction >= 0.0 && read_fraction <= 1.0,
              "read_fraction out of [0,1]");
  STX_REQUIRE(duty_spread >= 0.0 && duty_spread < 1.0,
              "duty_spread out of [0,1)");
}

app_spec make_big_fabric(const big_fabric_params& params) {
  params.validate();

  app_spec app;
  app.name = "BigFabric" + std::to_string(params.num_initiators) + "x" +
             std::to_string(params.num_targets);
  app.num_initiators = params.num_initiators;
  app.num_targets = params.num_targets;
  for (int t = 0; t < params.num_targets; ++t) {
    const bool hot = t < params.hot_targets;
    app.target_names.push_back((hot ? "Shared" : "Memory") +
                               std::to_string(t));
  }

  // Seed-shuffled home permutation: initiator i's private stream goes to
  // home[i % num_targets], decoupling bus-adjacency from index-adjacency
  // so the conflict graph's structure varies with the geometry seed.
  std::vector<int> home(static_cast<std::size_t>(params.num_targets));
  std::iota(home.begin(), home.end(), 0);
  rng geometry(params.seed);
  geometry.shuffle(home);

  const int read_every =
      params.read_fraction <= 0.0
          ? 0
          : std::max(1, static_cast<int>(1.0 / params.read_fraction));
  const int hot_every =
      params.hot_fraction <= 0.0 || params.hot_targets == 0
          ? 0
          : std::max(1, static_cast<int>(1.0 / params.hot_fraction));

  for (int i = 0; i < params.num_initiators; ++i) {
    // Linear duty gradient: heavy initiators (weight > 1) burst longer
    // and rest shorter, light ones the opposite. The asymmetry is what
    // keeps the binding model from collapsing into one symmetry orbit.
    const double frac =
        params.num_initiators > 1
            ? static_cast<double>(i) /
                  static_cast<double>(params.num_initiators - 1)
            : 0.5;
    const double weight = 1.0 + params.duty_spread * (2.0 * frac - 1.0);
    const auto burst = std::max<sim::cycle_t>(
        static_cast<sim::cycle_t>(params.packet_cells),
        static_cast<sim::cycle_t>(static_cast<double>(params.burst_cycles) *
                                  weight));
    const auto gap = static_cast<sim::cycle_t>(
        static_cast<double>(params.gap_cycles) / weight);
    const int packets_per_burst =
        std::max<int>(1, static_cast<int>(burst / params.packet_cells));

    const int home_target =
        home[static_cast<std::size_t>(i % params.num_targets)];
    app.private_mem.push_back(home_target);

    std::vector<sim::core_op> prog;
    const auto offset = static_cast<sim::cycle_t>(
        static_cast<double>(i) * params.phase_spread *
        static_cast<double>(params.burst_cycles));
    std::size_t loop_start = 0;
    if (offset > 0) {
      sim::core_op warm;
      warm.op = sim::core_op::kind::compute;
      warm.cycles = offset;
      prog.push_back(warm);
      loop_start = 1;
    }

    for (int p = 0; p < packets_per_burst; ++p) {
      sim::core_op op;
      op.cells = params.packet_cells;
      int dest = home_target;
      if (hot_every > 0 && p % hot_every == hot_every - 1) {
        dest = (i + p / hot_every) % params.hot_targets;
      }
      op.target = dest;
      const bool is_read =
          read_every > 0 && (p % read_every) == read_every - 1;
      op.op = is_read ? sim::core_op::kind::read : sim::core_op::kind::write;
      prog.push_back(op);
    }

    sim::core_op rest;
    rest.op = sim::core_op::kind::compute;
    rest.cycles = gap;
    prog.push_back(rest);

    app.programs.push_back(std::move(prog));
    app.loop_starts.push_back(loop_start);
  }
  app.validate();
  return app;
}

app_spec make_big_fabric_32() { return make_big_fabric({}); }

app_spec make_big_fabric_64() {
  big_fabric_params p;
  p.num_initiators = 64;
  p.num_targets = 64;
  p.hot_targets = 6;
  p.seed = 2;
  return make_big_fabric(p);
}

big_fabric_params sample_big_fabric_params(rng& r) {
  big_fabric_params p;
  p.num_initiators = static_cast<int>(r.uniform_int(16, 64));
  p.num_targets = static_cast<int>(r.uniform_int(16, 64));
  p.hot_targets = static_cast<int>(
      r.uniform_int(0, std::min(8, p.num_targets / 2)));
  p.hot_fraction = p.hot_targets == 0 ? 0.0 : r.uniform(0.05, 0.35);
  p.burst_cycles = r.uniform_int(200, 1200);
  p.packet_cells = static_cast<int>(r.uniform_int(4, 32));
  p.gap_cycles = r.uniform_int(600, 4000);
  p.phase_spread = r.uniform(0.0, 0.6);
  p.read_fraction = r.uniform(0.0, 0.5);
  p.duty_spread = r.uniform(0.0, 0.8);
  p.seed = r.next_u64();
  p.validate();
  return p;
}

}  // namespace stx::workloads
