#include "milp/presolve.h"

#include <cmath>
#include <limits>

#include "util/error.h"

namespace stx::milp {

namespace {

constexpr double inf = std::numeric_limits<double>::infinity();
constexpr double tol = 1e-9;

struct work_row {
  std::vector<lp::term> terms;
  lp::relation rel = lp::relation::less_equal;
  double rhs = 0.0;
  bool active = true;
};

struct work_state {
  std::vector<double> lower, upper;
  std::vector<bool> integer;
  std::vector<work_row> rows;
  bool changed = false;
  bool infeasible = false;

  bool fixed(int v) const {
    return upper[static_cast<std::size_t>(v)] -
               lower[static_cast<std::size_t>(v)] <
           tol;
  }

  void tighten_upper(int v, double ub) {
    auto& u = upper[static_cast<std::size_t>(v)];
    if (integer[static_cast<std::size_t>(v)]) ub = std::floor(ub + tol);
    if (ub < u - tol) {
      u = ub;
      changed = true;
      if (u < lower[static_cast<std::size_t>(v)] - tol) infeasible = true;
    }
  }

  void tighten_lower(int v, double lb) {
    auto& l = lower[static_cast<std::size_t>(v)];
    if (integer[static_cast<std::size_t>(v)]) lb = std::ceil(lb - tol);
    if (lb > l + tol) {
      l = lb;
      changed = true;
      if (l > upper[static_cast<std::size_t>(v)] + tol) infeasible = true;
    }
  }
};

/// Substitute fixed variables into the row, shrinking terms / rhs.
void substitute_fixed(work_state& st, work_row& row) {
  std::vector<lp::term> kept;
  kept.reserve(row.terms.size());
  for (const auto& t : row.terms) {
    if (st.fixed(t.var)) {
      row.rhs -= t.value * st.lower[static_cast<std::size_t>(t.var)];
      st.changed = true;
    } else {
      kept.push_back(t);
    }
  }
  row.terms = std::move(kept);
}

/// Interval propagation for `sum terms <= rhs` over current bounds.
void propagate_le(work_state& st, const std::vector<lp::term>& terms,
                  double rhs) {
  double min_activity = 0.0;
  int infinite_contribs = 0;
  int infinite_var = -1;
  for (const auto& t : terms) {
    const double lb = st.lower[static_cast<std::size_t>(t.var)];
    const double ub = st.upper[static_cast<std::size_t>(t.var)];
    const double contrib = t.value > 0.0 ? t.value * lb : t.value * ub;
    if (contrib == -inf) {
      ++infinite_contribs;
      infinite_var = t.var;
    } else {
      min_activity += contrib;
    }
  }
  if (infinite_contribs > 1) return;  // nothing can be derived
  if (infinite_contribs == 1) {
    // Only the variable owning the infinite contribution can be bounded.
    for (const auto& t : terms) {
      if (t.var != infinite_var) continue;
      const double slack = rhs - min_activity;
      if (t.value > 0.0) {
        st.tighten_upper(t.var, slack / t.value);
      } else if (t.value < 0.0) {
        st.tighten_lower(t.var, slack / t.value);
      }
    }
    return;
  }
  if (min_activity > rhs + 1e-7 * std::max(1.0, std::abs(rhs))) {
    st.infeasible = true;
    return;
  }
  for (const auto& t : terms) {
    if (t.value == 0.0) continue;
    const double lb = st.lower[static_cast<std::size_t>(t.var)];
    const double ub = st.upper[static_cast<std::size_t>(t.var)];
    const double own_min = t.value > 0.0 ? t.value * lb : t.value * ub;
    const double slack = rhs - (min_activity - own_min);
    if (t.value > 0.0) {
      st.tighten_upper(t.var, slack / t.value);
    } else {
      st.tighten_lower(t.var, slack / t.value);
    }
  }
}

/// Max activity of a row over current bounds (+inf possible).
double max_activity(const work_state& st, const std::vector<lp::term>& terms) {
  double acc = 0.0;
  for (const auto& t : terms) {
    const double lb = st.lower[static_cast<std::size_t>(t.var)];
    const double ub = st.upper[static_cast<std::size_t>(t.var)];
    const double contrib = t.value > 0.0 ? t.value * ub : t.value * lb;
    if (contrib == inf) return inf;
    acc += contrib;
  }
  return acc;
}

double min_activity(const work_state& st, const std::vector<lp::term>& terms) {
  double acc = 0.0;
  for (const auto& t : terms) {
    const double lb = st.lower[static_cast<std::size_t>(t.var)];
    const double ub = st.upper[static_cast<std::size_t>(t.var)];
    const double contrib = t.value > 0.0 ? t.value * lb : t.value * ub;
    if (contrib == -inf) return -inf;
    acc += contrib;
  }
  return acc;
}

}  // namespace

std::vector<double> presolved_model::expand(
    const std::vector<double>& reduced_x) const {
  std::vector<double> x(var_map.size(), 0.0);
  for (std::size_t v = 0; v < var_map.size(); ++v) {
    if (var_map[v] < 0) {
      x[v] = fixed_value[v];
    } else {
      x[v] = reduced_x[static_cast<std::size_t>(var_map[v])];
    }
  }
  return x;
}

presolved_model presolve(const model& m, int max_passes) {
  work_state st;
  const int n = m.num_variables();
  st.lower.resize(static_cast<std::size_t>(n));
  st.upper.resize(static_cast<std::size_t>(n));
  st.integer.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    st.lower[static_cast<std::size_t>(v)] = m.relaxation().var(v).lower;
    st.upper[static_cast<std::size_t>(v)] = m.relaxation().var(v).upper;
    st.integer[static_cast<std::size_t>(v)] = m.is_integer(v);
  }
  st.rows.reserve(static_cast<std::size_t>(m.num_rows()));
  for (int r = 0; r < m.num_rows(); ++r) {
    const auto& rr = m.relaxation().constraint(r);
    st.rows.push_back(work_row{rr.terms, rr.rel, rr.rhs, true});
  }

  // Symmetry breaking: each declared group of interchangeable binary
  // blocks (the crossbar's bus columns) gets lexicographic ordering rows
  // between consecutive blocks,
  //
  //   sum_i 2^(L-1-i) * (block_k[i] - block_{k+1}[i]) >= 0,
  //
  // selecting the lex-descending representative of every permutation
  // orbit. Power-of-two weights encode the full lex order exactly; the
  // prefix is capped at 53 bits so the weights stay exact in doubles
  // (beyond that the order is only partially broken, still valid). These
  // are ordinary rows from here on: substitution and redundancy dropping
  // apply to them like to any model row.
  for (const auto& group : m.symmetry_groups()) {
    const int len =
        std::min(static_cast<int>(group.front().size()), 53);
    for (std::size_t k = 0; k + 1 < group.size(); ++k) {
      std::vector<lp::term> terms;
      terms.reserve(static_cast<std::size_t>(2 * len));
      for (int i = 0; i < len; ++i) {
        const double w = std::ldexp(1.0, len - 1 - i);
        terms.push_back(lp::term{group[k][static_cast<std::size_t>(i)], w});
        terms.push_back(
            lp::term{group[k + 1][static_cast<std::size_t>(i)], -w});
      }
      st.rows.push_back(
          work_row{std::move(terms), lp::relation::greater_equal, 0.0, true});
    }
  }

  // Round integer bounds inward once up front.
  for (int v = 0; v < n; ++v) {
    if (!st.integer[static_cast<std::size_t>(v)]) continue;
    auto& lb = st.lower[static_cast<std::size_t>(v)];
    auto& ub = st.upper[static_cast<std::size_t>(v)];
    if (lb != -inf) lb = std::ceil(lb - tol);
    if (ub != inf) ub = std::floor(ub + tol);
    if (lb > ub + tol) st.infeasible = true;
  }

  int dropped = 0;
  for (int pass = 0; pass < max_passes && !st.infeasible; ++pass) {
    st.changed = false;
    for (auto& row : st.rows) {
      if (!row.active) continue;
      substitute_fixed(st, row);

      if (row.terms.empty()) {
        const bool ok =
            (row.rel == lp::relation::less_equal && 0.0 <= row.rhs + 1e-7) ||
            (row.rel == lp::relation::greater_equal &&
             0.0 >= row.rhs - 1e-7) ||
            (row.rel == lp::relation::equal && std::abs(row.rhs) <= 1e-7);
        if (!ok) st.infeasible = true;
        row.active = false;
        ++dropped;
        continue;
      }

      // Propagate bounds through the row in both directions.
      if (row.rel == lp::relation::less_equal ||
          row.rel == lp::relation::equal) {
        propagate_le(st, row.terms, row.rhs);
      }
      if ((row.rel == lp::relation::greater_equal ||
           row.rel == lp::relation::equal) &&
          !st.infeasible) {
        std::vector<lp::term> negated = row.terms;
        for (auto& t : negated) t.value = -t.value;
        propagate_le(st, negated, -row.rhs);
      }
      if (st.infeasible) break;

      // Drop rows that can no longer be violated.
      const double hi = max_activity(st, row.terms);
      const double lo = min_activity(st, row.terms);
      const double slack_tol = 1e-7 * std::max(1.0, std::abs(row.rhs));
      bool redundant = false;
      switch (row.rel) {
        case lp::relation::less_equal:
          redundant = hi <= row.rhs + slack_tol;
          break;
        case lp::relation::greater_equal:
          redundant = lo >= row.rhs - slack_tol;
          break;
        case lp::relation::equal:
          redundant = hi <= row.rhs + slack_tol && lo >= row.rhs - slack_tol;
          break;
      }
      if (redundant) {
        row.active = false;
        ++dropped;
        st.changed = true;
      }
    }
    if (!st.changed) break;
  }

  presolved_model out;
  out.var_map.assign(static_cast<std::size_t>(n), -1);
  out.fixed_value.assign(static_cast<std::size_t>(n), 0.0);
  out.dropped_rows = dropped;
  if (st.infeasible) {
    out.proven_infeasible = true;
    return out;
  }

  for (int v = 0; v < n; ++v) {
    const double lb = st.lower[static_cast<std::size_t>(v)];
    const double ub = st.upper[static_cast<std::size_t>(v)];
    if (ub - lb < tol) {
      out.var_map[static_cast<std::size_t>(v)] = -1;
      out.fixed_value[static_cast<std::size_t>(v)] = lb;
      continue;
    }
    const auto& orig = m.relaxation().var(v);
    int rv;
    if (m.is_integer(v)) {
      rv = out.reduced.add_integer(lb, ub, orig.objective, orig.name);
    } else {
      rv = out.reduced.add_continuous(lb, ub, orig.objective, orig.name);
    }
    out.var_map[static_cast<std::size_t>(v)] = rv;
  }

  for (auto& row : st.rows) {
    if (!row.active) continue;
    std::vector<lp::term> terms;
    double rhs = row.rhs;
    for (const auto& t : row.terms) {
      const int rv = out.var_map[static_cast<std::size_t>(t.var)];
      if (rv < 0) {
        rhs -= t.value * out.fixed_value[static_cast<std::size_t>(t.var)];
      } else {
        terms.push_back(lp::term{rv, t.value});
      }
    }
    if (terms.empty()) continue;  // verified above / by bounds
    out.reduced.add_row(std::move(terms), row.rel, rhs);
  }
  return out;
}

}  // namespace stx::milp
