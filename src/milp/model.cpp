#include "milp/model.h"

#include <cmath>

#include "util/error.h"

namespace stx::milp {

int model::add_continuous(double lower, double upper, double objective,
                          std::string name) {
  const int v = relaxation_.add_variable(lower, upper, objective,
                                         std::move(name));
  integer_.push_back(false);
  return v;
}

int model::add_integer(double lower, double upper, double objective,
                       std::string name) {
  const int v = relaxation_.add_variable(lower, upper, objective,
                                         std::move(name));
  integer_.push_back(true);
  return v;
}

int model::add_binary(double objective, std::string name) {
  return add_integer(0.0, 1.0, objective, std::move(name));
}

int model::add_row(std::vector<lp::term> terms, lp::relation rel, double rhs,
                   std::string name) {
  return relaxation_.add_row(std::move(terms), rel, rhs, std::move(name));
}

void model::set_objective(int var, double coefficient) {
  relaxation_.set_objective(var, coefficient);
}

void model::set_bounds(int var, double lower, double upper) {
  relaxation_.set_bounds(var, lower, upper);
}

int model::num_integer_variables() const {
  int n = 0;
  for (bool b : integer_) n += b ? 1 : 0;
  return n;
}

bool model::is_integer(int var) const {
  STX_REQUIRE(var >= 0 && var < num_variables(), "is_integer: bad index");
  return integer_[static_cast<std::size_t>(var)];
}

void model::add_symmetry_group(std::vector<std::vector<int>> blocks) {
  STX_REQUIRE(blocks.size() >= 2,
              "a symmetry group needs at least two blocks");
  const std::size_t len = blocks.front().size();
  STX_REQUIRE(len > 0, "symmetry blocks must not be empty");
  for (const auto& block : blocks) {
    STX_REQUIRE(block.size() == len,
                "symmetry blocks must all have the same size");
    for (const int v : block) {
      STX_REQUIRE(v >= 0 && v < num_variables(),
                  "symmetry block names an unknown variable");
      STX_REQUIRE(is_integer(v) && relaxation_.var(v).lower >= 0.0 &&
                      relaxation_.var(v).upper <= 1.0,
                  "symmetry blocks must consist of binary variables");
    }
  }
  symmetry_groups_.push_back(std::move(blocks));
}

bool model::is_feasible(const std::vector<double>& x, double tol) const {
  if (!relaxation_.is_feasible(x, tol)) return false;
  for (int v = 0; v < num_variables(); ++v) {
    if (!is_integer(v)) continue;
    const double xv = x[static_cast<std::size_t>(v)];
    if (std::abs(xv - std::round(xv)) > tol) return false;
  }
  return true;
}

}  // namespace stx::milp
