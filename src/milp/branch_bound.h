// Branch & bound MILP solver over the simplex LP relaxation.
//
// Two engines solve the same search exactly:
//
//  * warm (default): incremental branch & bound on the revised-simplex
//    engine (lp/revised_simplex.h). Each child node inherits its parent's
//    optimal BASIS and re-solves with a handful of dual pivots instead of
//    a full two-phase solve; nodes are explored best-bound-first with a
//    deterministic newest-first (DFS plunge) tie-break, and branching is
//    most-fractional weighted by pseudocosts initialised from the
//    objective. This is the fast path: on the crossbar models it cuts LP
//    iterations per node by an order of magnitude (bench/ablation_solver
//    measures it, tests/xbar pins the guarantee).
//
//  * cold (bb_options::warm_start = false): the legacy recursive DFS that
//    cold-solves the full two-phase tableau LP at every node. Kept one
//    release as the differential reference — the warm/cold equivalence
//    suites re-solve every instance on both engines and require identical
//    outcomes (status, objective, best bound on completion).
#pragma once

#include <cstdint>
#include <vector>

#include "milp/model.h"

namespace stx::milp {

/// Terminal state of a MILP solve.
enum class milp_status {
  optimal,     ///< proven optimal (or proven feasible in feasibility mode)
  feasible,    ///< incumbent found but search hit a limit before proving
  infeasible,  ///< proven: no integer feasible point exists
  unbounded,   ///< LP relaxation unbounded in the minimization direction
  limit,       ///< node/time limit hit with no incumbent: unresolved
};

const char* to_string(milp_status s);

/// Search knobs.
struct bb_options {
  /// Stop after exploring this many branch & bound nodes.
  std::int64_t max_nodes = 2'000'000;
  /// Wall-clock budget in seconds (checked between nodes); <= 0 = none.
  double time_limit_sec = 120.0;
  /// Stop at the first integer-feasible point (paper's MILP1 usage:
  /// "obj: Feasibility Analysis").
  bool feasibility_only = false;
  /// Integrality tolerance.
  double int_tol = 1e-6;
  /// Absolute objective gap for pruning against the incumbent.
  double gap_abs = 1e-6;
  /// Run bound-tightening presolve before the search.
  bool use_presolve = true;
  /// Try a round-to-nearest heuristic at each node to seed the incumbent.
  bool rounding_heuristic = true;
  /// Warm-started incremental engine (see header comment). false = the
  /// legacy per-node cold solve, kept one release as the differential
  /// reference.
  bool warm_start = true;
};

/// Solve outcome. `x` is in the ORIGINAL variable space (presolve fixings
/// are expanded back) and `objective` is evaluated on the original model.
struct bb_result {
  milp_status status = milp_status::limit;
  double objective = 0.0;
  std::vector<double> x;
  std::int64_t nodes = 0;
  std::int64_t lp_iterations = 0;
  double best_bound = 0.0;  ///< global lower bound on the optimum
  /// Warm engine telemetry (zero on the cold path): how many node LPs
  /// re-solved from the parent basis vs from scratch.
  std::int64_t warm_solves = 0;
  std::int64_t cold_solves = 0;
  /// More warm-engine telemetry (zero on the cold path): pseudocost
  /// estimator refinements, the open-heap high-water mark, and the
  /// underlying revised-simplex engine's dual-repair pivot and
  /// refactorization totals.
  std::int64_t pseudocost_updates = 0;
  std::int64_t max_heap_depth = 0;
  std::int64_t dual_pivots = 0;
  std::int64_t refactorizations = 0;
};

/// Solves `m` exactly with the engine selected by `opts.warm_start`.
/// Both engines are exact for the 0/1 models used throughout this
/// repository; the specialised solver in src/xbar is cross-checked
/// against this path, and the two engines against each other.
bb_result solve_branch_bound(const model& m, const bb_options& opts = {});

}  // namespace stx::milp
