// Branch & bound MILP solver over the revised-simplex LP relaxation.
//
// One engine, deterministically parallel:
//
//  * Nodes are explored best-bound-first with a deterministic
//    newest-first (DFS plunge) tie-break; each child inherits its
//    parent's optimal BASIS (shared_ptr chains through the tree) and
//    re-solves with a handful of dual pivots instead of a full two-phase
//    solve. Branching is most-fractional weighted by pseudocosts
//    initialised from the objective.
//
//  * Parallelism is bulk-synchronous waves: the coordinator pops a wave
//    of the globally best open nodes (wave size depends only on the heap,
//    never on the thread count), workers claim wave slots dynamically
//    (work stealing) and run pure LP solves on per-worker
//    lp::revised_solver instances, and a sequential merge in slot order
//    performs every state mutation — pseudocost updates, pruning,
//    incumbent publication, child creation. Because each LP solve is a
//    pure function of (bounds, warm basis) and the merge order is fixed,
//    `bb_result` is bit-identical across thread counts (the contract the
//    sweep engine and sim::batch pin; the only caveat is a wall-clock
//    limit actually firing, which truncates the search at a
//    timing-dependent wave).
//
//  * A root cut layer exploits the Eq. 3-9 packing structure: cover cuts
//    from knapsack rows and clique cuts from the 2-variable conflict
//    graph are separated at the root in deterministic rounds, appended to
//    the working LP through lp::revised_solver::add_row + warm dual
//    re-solves, and kept in a pool that every per-worker solver is
//    rebuilt against. Cuts are valid inequalities for every integer
//    point, so incumbents always satisfy them (the engine asserts it).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "milp/model.h"

namespace stx::milp {

/// Terminal state of a MILP solve.
enum class milp_status {
  optimal,     ///< proven optimal (or proven feasible in feasibility mode)
  feasible,    ///< incumbent found but search hit a limit before proving
  infeasible,  ///< proven: no integer feasible point exists
  unbounded,   ///< LP relaxation unbounded in the minimization direction
  limit,       ///< node/time limit hit with no incumbent: unresolved
};

const char* to_string(milp_status s);

/// Search knobs.
struct bb_options {
  /// Stop after exploring this many branch & bound nodes (checked at
  /// wave boundaries, so a wave in flight may overshoot by its size).
  std::int64_t max_nodes = 2'000'000;
  /// Wall-clock budget in seconds (checked between waves); <= 0 = none.
  double time_limit_sec = 120.0;
  /// Stop at the first integer-feasible point (paper's MILP1 usage:
  /// "obj: Feasibility Analysis").
  bool feasibility_only = false;
  /// Integrality tolerance.
  double int_tol = 1e-6;
  /// Absolute objective gap for pruning against the incumbent.
  double gap_abs = 1e-6;
  /// Run bound-tightening presolve before the search.
  bool use_presolve = true;
  /// Try a round-to-nearest heuristic at each node to seed the incumbent.
  bool rounding_heuristic = true;
  /// Worker threads exploring the tree (clamped to [1, 64]). The result
  /// is bit-identical across values; only wall time changes.
  int threads = 1;
  /// Separate cover/clique cuts at the root (see header comment). Off
  /// reproduces the pure PR-5 search tree.
  bool cuts = true;
  /// Cooperative cancellation hook (portfolio racing): when non-null and
  /// it reads true at a wave boundary, the search stops as if the time
  /// limit fired. The caller keeps ownership. Cancellable solves are
  /// excluded from the deterministic obs counter section — a cancelled
  /// search is truncated at a timing-dependent point.
  const std::atomic<bool>* cancel = nullptr;
};

/// One pooled root cut: sum(terms) <= rhs over the variable space the
/// engine solved (the presolve-reduced space when use_presolve is on).
/// Valid for every integer-feasible point of that space.
struct bb_cut {
  std::vector<lp::term> terms;
  double rhs = 0.0;
};

/// Solve outcome. `x` is in the ORIGINAL variable space (presolve fixings
/// are expanded back) and `objective` is evaluated on the original model.
/// Every field is deterministic for a given (model, options) — including
/// across `threads` values; timing-dependent telemetry (steal counts,
/// portfolio win attribution) goes to the obs wall section instead.
struct bb_result {
  milp_status status = milp_status::limit;
  double objective = 0.0;
  std::vector<double> x;
  std::int64_t nodes = 0;
  std::int64_t lp_iterations = 0;
  double best_bound = 0.0;  ///< global lower bound on the optimum
  /// How many LP solves (root + cut rounds + nodes) re-solved from a
  /// warm basis vs from scratch (internal fallbacks count as cold).
  std::int64_t warm_solves = 0;
  std::int64_t cold_solves = 0;
  /// Pseudocost estimator refinements, the open-heap high-water mark,
  /// and the revised-simplex engine's dual-repair pivot and
  /// refactorization totals over all counted solves.
  std::int64_t pseudocost_updates = 0;
  std::int64_t max_heap_depth = 0;
  std::int64_t dual_pivots = 0;
  std::int64_t refactorizations = 0;
  /// Root cut layer: how many cover/clique cuts entered the pool, the
  /// pool itself (empty when opts.cuts is off), and how many
  /// bulk-synchronous waves the search ran.
  std::int64_t cuts_added = 0;
  std::vector<bb_cut> cuts;
  std::int64_t waves = 0;
};

/// Solves `m` exactly. The engine is exact for the 0/1 models used
/// throughout this repository; the specialised solver in src/xbar is
/// cross-checked against this path (tests/xbar), and thread-count
/// bit-identity is pinned by tests/milp/parallel_bb_test.
bb_result solve_branch_bound(const model& m, const bb_options& opts = {});

}  // namespace stx::milp
