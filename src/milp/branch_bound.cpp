#include "milp/branch_bound.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "lp/revised_simplex.h"
#include "milp/presolve.h"
#include "obs/obs.h"
#include "util/error.h"

namespace stx::milp {

const char* to_string(milp_status s) {
  switch (s) {
    case milp_status::optimal: return "optimal";
    case milp_status::feasible: return "feasible";
    case milp_status::infeasible: return "infeasible";
    case milp_status::unbounded: return "unbounded";
    case milp_status::limit: return "limit";
  }
  return "?";
}

namespace {

constexpr double inf = std::numeric_limits<double>::infinity();

/// Incumbent bookkeeping: one best integer point, mutated only from the
/// sequential merge step.
struct incumbent_pool {
  bool have = false;
  std::vector<double> x;
  double objective = inf;

  /// Snap integers exactly and keep on strict improvement.
  bool accept(const model& m, const std::vector<double>& raw, double obj,
              double gap_abs) {
    std::vector<double> snapped = raw;
    for (int v = 0; v < m.num_variables(); ++v) {
      if (m.is_integer(v)) {
        snapped[static_cast<std::size_t>(v)] =
            std::round(snapped[static_cast<std::size_t>(v)]);
      }
    }
    if (!have || obj < objective - gap_abs) {
      x = std::move(snapped);
      objective = obj;
      have = true;
      return true;
    }
    return false;
  }

  /// Round-to-nearest heuristic: cheap incumbent seeding.
  bool try_rounding(const model& m, const std::vector<double>& raw,
                    double gap_abs) {
    std::vector<double> rounded = raw;
    for (int v = 0; v < m.num_variables(); ++v) {
      if (!m.is_integer(v)) continue;
      auto& xv = rounded[static_cast<std::size_t>(v)];
      xv = std::round(xv);
      xv = std::clamp(xv, m.relaxation().var(v).lower,
                      m.relaxation().var(v).upper);
    }
    if (m.is_feasible(rounded, 1e-6)) {
      return accept(m, rounded, m.relaxation().objective_value(rounded),
                    gap_abs);
    }
    return false;
  }
};

/// Persistent pool of helper threads for the bulk-synchronous waves.
/// run() executes `fn(w)` on every helper (w = 1..n) and the caller
/// (w = 0) and returns once all of them finished; the internal mutex
/// publishes everything the workers wrote to the coordinator.
class worker_pool {
 public:
  explicit worker_pool(int helpers) {
    threads_.reserve(static_cast<std::size_t>(helpers));
    for (int i = 0; i < helpers; ++i) {
      threads_.emplace_back([this, w = i + 1] { loop(w); });
    }
  }

  ~worker_pool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_ = true;
    }
    cv_start_.notify_all();
    for (auto& t : threads_) t.join();
  }

  void run(const std::function<void(int)>& fn) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      work_ = &fn;
      ++generation_;
      busy_ = static_cast<int>(threads_.size());
    }
    cv_start_.notify_all();
    fn(0);
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return busy_ == 0; });
    work_ = nullptr;
  }

 private:
  void loop(int w) {
    std::uint64_t seen = 0;
    while (true) {
      const std::function<void(int)>* job = nullptr;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_start_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
        if (shutdown_) return;
        seen = generation_;
        job = work_;
      }
      (*job)(w);
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (--busy_ == 0) cv_done_.notify_one();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_start_, cv_done_;
  std::vector<std::thread> threads_;
  const std::function<void(int)>* work_ = nullptr;
  std::uint64_t generation_ = 0;
  int busy_ = 0;
  bool shutdown_ = false;
};

// ===================================================================
// Wave-parallel warm-started branch & bound with a root cut layer.
//
// The coordinator pops a wave of the globally best open nodes (size
// depends on the heap only), workers claim wave slots via an atomic
// cursor (work stealing) and run pure LP solves on per-worker solvers,
// and merge() — sequential, in slot order — performs every state
// mutation. That split is the whole determinism argument: LP solves are
// pure functions of (bounds, warm basis), and everything order-sensitive
// happens in a fixed order that never depends on the thread count.
// ===================================================================
class wave_bb_engine {
 public:
  wave_bb_engine(const model& m, const bb_options& opts)
      : m_(m),
        opts_(opts),
        num_workers_(std::clamp(opts.threads, 1, kMaxThreads)) {
    start_ = std::chrono::steady_clock::now();
    const int n = m_.num_variables();
    root_lo_.resize(static_cast<std::size_t>(n));
    root_hi_.resize(static_cast<std::size_t>(n));
    pc_down_.resize(static_cast<std::size_t>(n));
    pc_up_.resize(static_cast<std::size_t>(n));
    pc_down_n_.assign(static_cast<std::size_t>(n), 0);
    pc_up_n_.assign(static_cast<std::size_t>(n), 0);
    for (int v = 0; v < n; ++v) {
      const auto& vv = m_.relaxation().var(v);
      root_lo_[static_cast<std::size_t>(v)] = vv.lower;
      root_hi_[static_cast<std::size_t>(v)] = vv.upper;
      // Pseudocost initialisation: the objective coefficient is the
      // first-order estimate of the degradation one unit of bound
      // movement causes; +1 keeps zero-cost variables (the feasibility
      // MILP) rankable by fractionality alone.
      pc_down_[static_cast<std::size_t>(v)] = std::abs(vv.objective) + 1.0;
      pc_up_[static_cast<std::size_t>(v)] = std::abs(vv.objective) + 1.0;
    }
  }

  bb_result run() {
    // Root solve + cut separation: sequential, on a dedicated solver
    // whose add_row-extended geometry matches a fresh build against the
    // extended model (the basis handshake below relies on it).
    lp::revised_solver sep(m_.relaxation(), {});
    lp::solve_result root_rel = sep.solve();
    ++cold_solves_;
    lp_iterations_ += root_rel.iterations;
    if (root_rel.status == lp::solve_status::optimal && opts_.cuts) {
      separate_root_cuts(sep, root_rel);
    }
    dual_pivots_ += sep.dual_pivots();
    refactorizations_ += sep.factorizations();

    if (root_rel.status != lp::solve_status::optimal) {
      nodes_ = 1;
      if (root_rel.status == lp::solve_status::unbounded) {
        hit_unbounded_ = true;
      } else if (root_rel.status == lp::solve_status::iteration_limit) {
        limit_hit_ = true;
      }
      return assemble();
    }

    // Per-worker solvers against the relaxation + pooled cuts. All of
    // them share column geometry with `sep`, so the separation solver's
    // final basis warm-starts the root node on any worker.
    ext_model_ = m_.relaxation();
    for (const auto& c : cuts_) {
      ext_model_.add_row(c.terms, lp::relation::less_equal, c.rhs);
    }
    workers_.resize(static_cast<std::size_t>(num_workers_));
    for (auto& w : workers_) {
      w.solver = std::make_unique<lp::revised_solver>(ext_model_,
                                                      lp::solve_options{});
    }
    if (num_workers_ > 1) {
      pool_ = std::make_unique<worker_pool>(num_workers_ - 1);
    }

    {
      auto root = std::make_shared<node>();
      root->bound = root_rel.objective;
      root->id = next_id_++;
      root->warm = std::make_shared<const lp::basis_state>(sep.last_basis());
      open_.push(std::move(root));
    }

    std::vector<node_ptr> wave;
    std::vector<slot_result> results;
    while (!open_.empty() && !stop_) {
      if (out_of_budget()) {
        limit_hit_ = true;
        break;
      }
      // Wave composition: the best open nodes, pruned against the
      // incumbent as of the wave boundary. Width policy: until an
      // incumbent exists, an optimizing search runs width-1 waves — the
      // plunge is the fastest route to a first incumbent, and breadth
      // before one can never be bound-pruned, only wasted. Once an
      // incumbent bounds the speculation (or under feasibility_only,
      // where breadth IS the hunt and the search stops at the first
      // integer point), the width ramps geometrically (1, 2, 4, ... up
      // to kWaveCap), further capped at half the frontier. Depends on
      // the wave count, the heap, and the incumbent only — never on the
      // thread count.
      const bool speculate = opts_.feasibility_only || incumbent_.have;
      const std::size_t cap = std::min<std::size_t>(
          speculate ? wave_ramp_ : 1,
          std::max<std::size_t>(1, (open_.size() + 1) / 2));
      if (speculate) {
        wave_ramp_ = std::min<std::size_t>(kWaveCap, wave_ramp_ * 2);
      }
      wave.clear();
      while (!open_.empty() && wave.size() < cap) {
        node_ptr nd = open_.top();
        open_.pop();
        if (incumbent_.have && !opts_.feasibility_only &&
            nd->bound >= incumbent_.objective - opts_.gap_abs) {
          continue;  // pruned without an LP solve
        }
        wave.push_back(std::move(nd));
      }
      if (wave.empty()) continue;
      ++waves_;
      results.assign(wave.size(), slot_result{});
      run_wave(wave, results);
      // Sequential merge in slot order; a feasibility stop discards the
      // remaining slots (deterministically — the stop decision depends
      // only on the merged prefix).
      for (std::size_t i = 0; i < wave.size() && !stop_; ++i) {
        merge(wave[i], results[i]);
      }
    }
    return assemble();
  }

 private:
  struct node {
    double bound = -inf;   ///< parent's LP objective: lower bound here
    std::int64_t id = 0;   ///< creation order; larger = newer
    int depth = 0;
    int var = -1;          ///< bound change vs the parent (none at root)
    double lo = 0.0, hi = 0.0;
    bool up = false;              ///< which side of the split this is
    double frac_moved = 0.0;      ///< fractional distance the bound moved
    std::shared_ptr<const node> parent;
    std::shared_ptr<const lp::basis_state> warm;  ///< parent's basis
  };
  using node_ptr = std::shared_ptr<const node>;

  /// Everything one wave slot produces; written by exactly one worker,
  /// read only by the sequential merge.
  struct slot_result {
    lp::solve_result rel;
    std::shared_ptr<const lp::basis_state> basis;  ///< set iff optimal
    bool warm = false;  ///< warm-start succeeded (no internal fallback)
    std::int64_t dual_pivots = 0;
    std::int64_t refactorizations = 0;
  };

  struct worker_state {
    std::unique_ptr<lp::revised_solver> solver;
    std::vector<int> applied;  ///< vars whose bounds differ from root
  };

  /// Min-heap on the bound; ties pop the NEWEST node first — the
  /// deterministic DFS plunge that keeps the warm basis one bound-change
  /// away from the node it is applied to whenever bounds tie (the common
  /// case on the feasibility MILP, where every bound is zero).
  struct node_order {
    bool operator()(const node_ptr& a, const node_ptr& b) const {
      if (a->bound != b->bound) return a->bound > b->bound;
      return a->id < b->id;
    }
  };

  bool out_of_budget() const {
    if (nodes_ >= opts_.max_nodes) return true;
    if (opts_.cancel != nullptr &&
        opts_.cancel->load(std::memory_order_relaxed)) {
      return true;
    }
    if (opts_.time_limit_sec > 0.0) {
      const auto elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start_)
                               .count();
      if (elapsed > opts_.time_limit_sec) return true;
    }
    return false;
  }

  // ------------------------------------------------------ cut separation

  /// Scans the model once for the structures cuts come from: knapsack
  /// rows (<= with positive coefficients on binary variables — Eq. 4/8
  /// bandwidth and maxtb rows) and the pairwise conflict graph (2-term
  /// rows that imply x_i + x_j <= 1 — Eq. 5/7 overlap rows).
  void collect_cut_sources() {
    const auto& rel = m_.relaxation();
    const auto binary = [&](int v) {
      return m_.is_integer(v) && rel.var(v).lower >= -1e-9 &&
             rel.var(v).upper <= 1.0 + 1e-9;
    };
    for (int r = 0; r < rel.num_rows(); ++r) {
      const auto& row = rel.constraint(r);
      if (row.rel != lp::relation::less_equal) continue;
      if (row.rhs <= 1e-9 || row.terms.size() < 2) continue;
      bool ok = true;
      double coeff_sum = 0.0;
      for (const auto& t : row.terms) {
        if (t.value <= 1e-9 || !binary(t.var)) {
          ok = false;
          break;
        }
        coeff_sum += t.value;
      }
      if (!ok) continue;
      if (row.terms.size() == 2) {
        const auto& a = row.terms[0];
        const auto& b = row.terms[1];
        if (a.value <= row.rhs + 1e-9 && b.value <= row.rhs + 1e-9 &&
            a.value + b.value > row.rhs + 1e-9) {
          add_conflict_edge(a.var, b.var);
        }
      }
      if (coeff_sum > row.rhs + 1e-9) {
        knapsacks_.push_back({row.terms, row.rhs});
      }
    }
    for (auto& [v, nbrs] : adj_) {
      std::sort(nbrs.begin(), nbrs.end());
      nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    }
  }

  void add_conflict_edge(int a, int b) {
    const int lo = std::min(a, b), hi = std::max(a, b);
    const std::int64_t key =
        static_cast<std::int64_t>(lo) * m_.num_variables() + hi;
    if (!edges_.insert(key).second) return;
    adj_[lo].push_back(hi);
    adj_[hi].push_back(lo);
  }

  bool conflicting(int a, int b) const {
    const int lo = std::min(a, b), hi = std::max(a, b);
    return edges_.count(static_cast<std::int64_t>(lo) * m_.num_variables() +
                        hi) > 0;
  }

  /// One violated-cut candidate: sum over `vars` of x <= rhs.
  struct candidate {
    std::vector<int> vars;  ///< sorted ascending (the canonical key)
    double rhs = 0.0;
    double violation = 0.0;
    std::string key;
  };

  /// All cover + clique cuts violated by `x`, deduplicated against the
  /// pool and each other, most violated first (ties broken on the
  /// canonical member list — fully deterministic). Candidates the
  /// per-round cap drops keep their eligibility for later rounds: only
  /// cuts that actually enter the pool get a permanent dedup key.
  std::vector<candidate> find_violated(const std::vector<double>& x) {
    std::vector<candidate> out;
    std::unordered_set<std::string> round_keys;
    const auto xv = [&](int v) { return x[static_cast<std::size_t>(v)]; };
    const auto emit = [&](std::vector<int> vars, double rhs, double lhs) {
      std::sort(vars.begin(), vars.end());
      auto key = cut_key(vars, rhs);
      if (pooled_cut_keys_.count(key) > 0) return;
      if (!round_keys.insert(key).second) return;
      out.push_back({std::move(vars), rhs, lhs - rhs, std::move(key)});
    };

    // Cover cuts: a greedy x-descending cover of each knapsack row,
    // minimalized from the least fractional end.
    for (const auto& kr : knapsacks_) {
      std::vector<int> ord(kr.items.size());
      for (std::size_t i = 0; i < ord.size(); ++i) {
        ord[i] = static_cast<int>(i);
      }
      std::stable_sort(ord.begin(), ord.end(), [&](int a, int b) {
        const double xa = xv(kr.items[static_cast<std::size_t>(a)].var);
        const double xb = xv(kr.items[static_cast<std::size_t>(b)].var);
        if (xa != xb) return xa > xb;
        return kr.items[static_cast<std::size_t>(a)].var <
               kr.items[static_cast<std::size_t>(b)].var;
      });
      std::vector<int> cover;
      double wsum = 0.0;
      for (const int i : ord) {
        cover.push_back(i);
        wsum += kr.items[static_cast<std::size_t>(i)].value;
        if (wsum > kr.cap + 1e-9) break;
      }
      if (wsum <= kr.cap + 1e-9) continue;  // row admits no cover
      for (int j = static_cast<int>(cover.size()) - 1;
           j >= 0 && cover.size() > 2; --j) {
        const double a =
            kr.items[static_cast<std::size_t>(cover[static_cast<std::size_t>(
                         j)])]
                .value;
        if (wsum - a > kr.cap + 1e-9) {
          wsum -= a;
          cover.erase(cover.begin() + j);
        }
      }
      std::vector<int> vars;
      double lhs = 0.0;
      for (const int i : cover) {
        vars.push_back(kr.items[static_cast<std::size_t>(i)].var);
        lhs += xv(kr.items[static_cast<std::size_t>(i)].var);
      }
      const double rhs = static_cast<double>(cover.size()) - 1.0;
      if (lhs > rhs + kMinViolation) emit(std::move(vars), rhs, lhs);
    }

    // Clique cuts: grow a clique greedily around each active conflict
    // vertex, highest x first; pairwise rows allow each pair sum <= 1
    // but a clique of size >= 3 tightens the whole set to sum <= 1.
    if (!adj_.empty()) {
      std::vector<int> active;
      for (const auto& [v, nbrs] : adj_) {
        if (xv(v) > 1e-6) active.push_back(v);
      }
      std::stable_sort(active.begin(), active.end(), [&](int a, int b) {
        if (xv(a) != xv(b)) return xv(a) > xv(b);
        return a < b;
      });
      for (const int seed : active) {
        std::vector<int> clique{seed};
        double lhs = xv(seed);
        for (const int u : active) {
          if (u == seed) continue;
          bool adjacent_all = true;
          for (const int c : clique) {
            if (!conflicting(u, c)) {
              adjacent_all = false;
              break;
            }
          }
          if (adjacent_all) {
            clique.push_back(u);
            lhs += xv(u);
          }
        }
        if (clique.size() >= 3 && lhs > 1.0 + kMinViolation) {
          emit(std::move(clique), 1.0, lhs);
        }
      }
    }

    std::stable_sort(out.begin(), out.end(),
                     [](const candidate& a, const candidate& b) {
                       if (a.violation != b.violation) {
                         return a.violation > b.violation;
                       }
                       if (a.rhs != b.rhs) return a.rhs < b.rhs;
                       return a.vars < b.vars;
                     });
    const std::size_t room = static_cast<std::size_t>(
        std::max<std::int64_t>(0, kMaxCuts - static_cast<std::int64_t>(
                                                 cuts_.size())));
    if (out.size() > std::min<std::size_t>(room, kMaxCutsPerRound)) {
      out.resize(std::min<std::size_t>(room, kMaxCutsPerRound));
    }
    return out;
  }

  static std::string cut_key(const std::vector<int>& vars, double rhs) {
    std::string key = std::to_string(rhs);
    for (const int v : vars) {
      key += ',';
      key += std::to_string(v);
    }
    return key;
  }

  /// Root separation rounds: find violated cuts against the current
  /// fractional point, append them to the working LP through add_row,
  /// and dual re-solve warm. Updates `rel` to the final root relaxation
  /// (infeasible = the cuts proved the MILP infeasible, which is a valid
  /// conclusion — cuts never remove integer points).
  void separate_root_cuts(lp::revised_solver& sep, lp::solve_result& rel) {
    collect_cut_sources();
    if (knapsacks_.empty() && adj_.empty()) return;
    for (int round = 0;
         round < kCutRounds &&
         static_cast<std::int64_t>(cuts_.size()) < kMaxCuts;
         ++round) {
      const auto found = find_violated(rel.x);
      if (found.empty()) break;
      for (const auto& c : found) {
        bb_cut cut;
        cut.terms.reserve(c.vars.size());
        for (const int v : c.vars) cut.terms.push_back({v, 1.0});
        cut.rhs = c.rhs;
        sep.add_row(cut.terms, lp::relation::less_equal, cut.rhs);
        cuts_.push_back(std::move(cut));
        pooled_cut_keys_.insert(c.key);
      }
      const lp::basis_state warm = sep.last_basis();
      const auto next = sep.solve_from(warm);
      if (sep.last_solve_fell_back()) {
        ++cold_solves_;
      } else {
        ++warm_solves_;
      }
      lp_iterations_ += next.iterations;
      rel = next;
      if (next.status != lp::solve_status::optimal) return;
    }
  }

  /// Asserts the invariant the cut layer is built on: every pooled cut
  /// is a valid inequality, so no accepted incumbent may violate one.
  void check_cuts(const std::vector<double>& x) const {
    for (const auto& c : cuts_) {
      double lhs = 0.0;
      for (const auto& t : c.terms) {
        lhs += t.value * x[static_cast<std::size_t>(t.var)];
      }
      STX_ENSURE(lhs <= c.rhs + 1e-6,
                 "branch & bound incumbent violates a separated cut");
    }
  }

  // ------------------------------------------------------- wave workers

  /// Moves `ws`'s solver bounds from whatever node it last solved to
  /// `nd`'s (reset what the previous chain touched, apply this chain;
  /// child-deepest setting wins within the chain).
  void apply_bounds(worker_state& ws, const node& nd) {
    std::unordered_map<int, std::pair<double, double>> wanted;
    for (const node* cur = &nd; cur != nullptr; cur = cur->parent.get()) {
      if (cur->var < 0) continue;
      wanted.emplace(cur->var, std::make_pair(cur->lo, cur->hi));
    }
    for (const int v : ws.applied) {
      if (wanted.find(v) == wanted.end()) {
        ws.solver->set_bounds(v, root_lo_[static_cast<std::size_t>(v)],
                              root_hi_[static_cast<std::size_t>(v)]);
      }
    }
    ws.applied.clear();
    for (const auto& [v, b] : wanted) {
      ws.solver->set_bounds(v, b.first, b.second);
      ws.applied.push_back(v);
    }
  }

  /// The per-node LP solve: a pure function of (node bounds, warm basis)
  /// — the solver refactorizes fresh on every path and carries no state
  /// between solves — so WHICH worker runs it never matters.
  void solve_node(worker_state& ws, const node& nd, slot_result& out) {
    apply_bounds(ws, nd);
    const std::int64_t dp0 = ws.solver->dual_pivots();
    const std::int64_t rf0 = ws.solver->factorizations();
    if (nd.warm != nullptr) {
      out.rel = ws.solver->solve_from(*nd.warm);
      out.warm = !ws.solver->last_solve_fell_back();
    } else {
      out.rel = ws.solver->solve();
      out.warm = false;
    }
    out.dual_pivots = ws.solver->dual_pivots() - dp0;
    out.refactorizations = ws.solver->factorizations() - rf0;
    if (out.rel.status == lp::solve_status::optimal) {
      // Snapshot now: the solver is reused for other slots before the
      // merge decides whether the children keep this basis.
      out.basis =
          std::make_shared<const lp::basis_state>(ws.solver->last_basis());
    }
  }

  void run_wave(const std::vector<node_ptr>& wave,
                std::vector<slot_result>& results) {
    if (num_workers_ == 1) {
      for (std::size_t i = 0; i < wave.size(); ++i) {
        solve_node(workers_[0], *wave[i], results[i]);
      }
      return;
    }
    next_slot_.store(0, std::memory_order_relaxed);
    pool_->run([&](int w) {
      auto& ws = workers_[static_cast<std::size_t>(w)];
      while (true) {
        const int i = next_slot_.fetch_add(1, std::memory_order_relaxed);
        if (i >= static_cast<int>(wave.size())) break;
        if (i % num_workers_ != w) {
          // A slot claimed off a worker's home stride is a steal —
          // timing-dependent, so it reports to the obs wall section,
          // never into bb_result.
          steals_.fetch_add(1, std::memory_order_relaxed);
        }
        solve_node(ws, *wave[static_cast<std::size_t>(i)],
                   results[static_cast<std::size_t>(i)]);
      }
    });
  }

  // ------------------------------------------------------------- merge

  std::pair<double, double> node_bounds(const node* nd, int v) const {
    for (const node* cur = nd; cur != nullptr; cur = cur->parent.get()) {
      if (cur->var == v) return {cur->lo, cur->hi};
    }
    return {root_lo_[static_cast<std::size_t>(v)],
            root_hi_[static_cast<std::size_t>(v)]};
  }

  void merge(const node_ptr& nd, const slot_result& out) {
    ++nodes_;
    const auto& rel = out.rel;
    lp_iterations_ += rel.iterations;
    dual_pivots_ += out.dual_pivots;
    refactorizations_ += out.refactorizations;
    // An internal cold restart (stale basis, singular factorization)
    // counts as a cold solve: the telemetry must name the engine that
    // actually produced the answer.
    if (out.warm) {
      ++warm_solves_;
    } else {
      ++cold_solves_;
    }

    if (rel.status == lp::solve_status::infeasible) return;
    if (rel.status == lp::solve_status::unbounded) {
      if (nd->depth == 0) {
        hit_unbounded_ = true;
      } else {
        limit_hit_ = true;  // deeper: cannot conclude, treat as limit
      }
      return;
    }
    if (rel.status == lp::solve_status::iteration_limit) {
      limit_hit_ = true;
      return;
    }

    // Pseudocost update: observed objective degradation per unit of
    // fractional distance the branching bound moved.
    if (nd->var >= 0 && nd->bound > -inf &&
        nd->frac_moved > opts_.int_tol) {
      const double gain =
          std::max(0.0, rel.objective - nd->bound) / nd->frac_moved;
      auto& pc = nd->up ? pc_up_ : pc_down_;
      auto& cnt = nd->up ? pc_up_n_ : pc_down_n_;
      const auto sv = static_cast<std::size_t>(nd->var);
      pc[sv] = (pc[sv] * cnt[sv] + gain) / (cnt[sv] + 1);
      ++cnt[sv];
      ++pseudocost_updates_;
    }

    if (incumbent_.have && !opts_.feasibility_only &&
        rel.objective >= incumbent_.objective - opts_.gap_abs) {
      return;  // bound prune on the solved objective
    }
    open_bound_ = std::min(open_bound_, rel.objective);

    // Pseudocost-weighted most-fractional branching: rank fractional
    // integer variables by estimated two-sided degradation; break ties
    // toward higher fractionality, then the smallest index (all
    // deterministic).
    int branch_var = -1;
    double best_score = 0.0;
    double best_dist = 0.0;
    for (int v = 0; v < m_.num_variables(); ++v) {
      if (!m_.is_integer(v)) continue;
      const double xv = rel.x[static_cast<std::size_t>(v)];
      const double f = xv - std::floor(xv);
      const double dist = std::min(f, 1.0 - f);
      if (dist <= opts_.int_tol) continue;
      const double est_down =
          std::max(pc_down_[static_cast<std::size_t>(v)] * f, 1e-6);
      const double est_up =
          std::max(pc_up_[static_cast<std::size_t>(v)] * (1.0 - f), 1e-6);
      const double score = est_down * est_up;
      if (branch_var < 0 || score > best_score + 1e-12 ||
          (score > best_score - 1e-12 && dist > best_dist + 1e-12)) {
        branch_var = v;
        best_score = score;
        best_dist = dist;
      }
    }

    if (branch_var < 0) {
      if (incumbent_.accept(m_, rel.x, rel.objective, opts_.gap_abs)) {
        check_cuts(incumbent_.x);
        // A fresh incumbent is about to prune the frontier: restart the
        // wave ramp so the next waves run near-sequentially instead of
        // speculating past the not-yet-applied bound.
        wave_ramp_ = 1;
      }
      if (opts_.feasibility_only) stop_ = true;
      return;
    }

    if (opts_.rounding_heuristic && !incumbent_.have) {
      if (incumbent_.try_rounding(m_, rel.x, opts_.gap_abs)) {
        check_cuts(incumbent_.x);
      }
      if (incumbent_.have && opts_.feasibility_only) {
        stop_ = true;
        return;
      }
    }

    const double xv = rel.x[static_cast<std::size_t>(branch_var)];
    const double floor_v = std::floor(xv);
    const double ceil_v = floor_v + 1.0;
    const auto [cur_lo, cur_hi] = node_bounds(nd.get(), branch_var);
    const double f = xv - floor_v;

    // Children inherit this node's optimal basis; the heap caps how many
    // snapshots stay alive (beyond that, a child simply cold-solves —
    // correctness never depends on the warm path).
    std::shared_ptr<const lp::basis_state> basis;
    if (open_.size() < kMaxOpenWithBases) basis = out.basis;

    // Push the farther-from-LP-value side first: the nearer side gets
    // the larger id and wins the tie-break, preserving the plunge order
    // under equal bounds.
    const bool up_first = f >= 0.5;
    for (int side = 0; side < 2; ++side) {
      const bool up = (side == 1) == up_first;
      auto child = std::make_shared<node>();
      child->bound = rel.objective;
      child->depth = nd->depth + 1;
      child->var = branch_var;
      child->up = up;
      child->parent = nd;
      child->warm = basis;
      if (up) {
        if (ceil_v > cur_hi + opts_.int_tol) continue;
        child->lo = ceil_v;
        child->hi = cur_hi;
        child->frac_moved = 1.0 - f;
      } else {
        if (floor_v < cur_lo - opts_.int_tol) continue;
        child->lo = cur_lo;
        child->hi = floor_v;
        child->frac_moved = f;
      }
      child->id = next_id_++;
      open_.push(std::move(child));
    }
    max_heap_depth_ = std::max(
        max_heap_depth_, static_cast<std::int64_t>(open_.size()));
  }

  // ------------------------------------------------------------ results

  bb_result assemble() {
    bb_result res;
    res.nodes = nodes_;
    res.lp_iterations = lp_iterations_;
    res.warm_solves = warm_solves_;
    res.cold_solves = cold_solves_;
    res.pseudocost_updates = pseudocost_updates_;
    res.max_heap_depth = max_heap_depth_;
    res.dual_pivots = dual_pivots_;
    res.refactorizations = refactorizations_;
    res.cuts_added = static_cast<std::int64_t>(cuts_.size());
    res.cuts = cuts_;
    res.waves = waves_;
    const bool complete = !limit_hit_ && !stop_;
    if (incumbent_.have && (complete || opts_.feasibility_only)) {
      res.best_bound = incumbent_.objective;
    } else if (!open_.empty()) {
      // Best-bound order: the top of the heap IS the global lower bound
      // over the unexplored frontier.
      res.best_bound = std::min(open_.top()->bound, open_bound_);
    } else {
      res.best_bound = open_bound_;
    }
    if (incumbent_.have) {
      res.x = incumbent_.x;
      res.objective = incumbent_.objective;
      res.status =
          complete ? milp_status::optimal : milp_status::feasible;
      if (opts_.feasibility_only) res.status = milp_status::optimal;
    } else if (hit_unbounded_) {
      res.status = milp_status::unbounded;
    } else if (complete) {
      res.status = milp_status::infeasible;
    } else {
      res.status = milp_status::limit;
    }
    const auto steals = steals_.load(std::memory_order_relaxed);
    if (obs::enabled() && steals > 0) {
      // Count, not seconds: steals are timing-dependent, so they live in
      // the explicitly non-deterministic wall section.
      obs::record_wall("milp.steals", static_cast<double>(steals));
    }
    return res;
  }

  static constexpr std::size_t kMaxOpenWithBases = 65'536;
  static constexpr std::size_t kWaveCap = 16;
  static constexpr int kMaxThreads = 64;
  static constexpr int kCutRounds = 8;
  static constexpr std::int64_t kMaxCuts = 64;
  static constexpr std::size_t kMaxCutsPerRound = 16;
  static constexpr double kMinViolation = 1e-4;

  const model& m_;
  const bb_options& opts_;
  const int num_workers_;
  std::chrono::steady_clock::time_point start_;

  std::vector<double> root_lo_, root_hi_;
  std::vector<double> pc_down_, pc_up_;
  std::vector<std::int64_t> pc_down_n_, pc_up_n_;

  lp::model ext_model_;  ///< relaxation + pooled cuts; workers solve this
  std::vector<worker_state> workers_;
  std::unique_ptr<worker_pool> pool_;
  std::atomic<int> next_slot_{0};
  std::atomic<std::int64_t> steals_{0};

  struct knapsack {
    std::vector<lp::term> items;
    double cap = 0.0;
  };
  std::vector<knapsack> knapsacks_;
  std::unordered_map<int, std::vector<int>> adj_;
  std::unordered_set<std::int64_t> edges_;
  std::unordered_set<std::string> pooled_cut_keys_;
  std::vector<bb_cut> cuts_;

  std::priority_queue<node_ptr, std::vector<node_ptr>, node_order> open_;
  std::int64_t next_id_ = 0;

  std::int64_t nodes_ = 0;
  std::int64_t lp_iterations_ = 0;
  std::int64_t warm_solves_ = 0;
  std::int64_t cold_solves_ = 0;
  std::int64_t pseudocost_updates_ = 0;
  std::int64_t max_heap_depth_ = 0;
  std::int64_t dual_pivots_ = 0;
  std::int64_t refactorizations_ = 0;
  std::int64_t waves_ = 0;
  std::size_t wave_ramp_ = 1;  ///< geometric wave-width ramp (≤ kWaveCap)
  incumbent_pool incumbent_;
  double open_bound_ = inf;
  bool limit_hit_ = false;
  bool stop_ = false;
  bool hit_unbounded_ = false;
};

bb_result solve_impl(const model& m, const bb_options& opts) {
  if (!opts.use_presolve) {
    wave_bb_engine engine(m, opts);
    return engine.run();
  }

  const auto pre = presolve(m);
  if (pre.proven_infeasible) {
    bb_result res;
    res.status = milp_status::infeasible;
    return res;
  }

  if (pre.reduced.num_variables() == 0) {
    // Everything fixed by presolve; validate the point.
    bb_result res;
    const auto x = pre.expand({});
    if (m.is_feasible(x, 1e-6)) {
      res.status = milp_status::optimal;
      res.x = x;
      res.objective = m.relaxation().objective_value(x);
      res.best_bound = res.objective;
    } else {
      res.status = milp_status::infeasible;
    }
    return res;
  }

  wave_bb_engine engine(pre.reduced, opts);
  auto res = engine.run();
  if (res.status == milp_status::optimal ||
      res.status == milp_status::feasible) {
    res.x = pre.expand(res.x);
    res.objective = m.relaxation().objective_value(res.x);
    STX_ENSURE(m.is_feasible(res.x, 1e-5),
               "branch & bound produced an infeasible incumbent");
  }
  return res;
}

}  // namespace

bb_result solve_branch_bound(const model& m, const bb_options& opts) {
  obs::span sp("milp.solve", {{"vars", m.num_variables()},
                              {"threads", std::clamp(opts.threads, 1, 64)}});
  auto res = solve_impl(m, opts);
  if (obs::enabled() && opts.cancel == nullptr) {
    // Flushed post-hoc from the result so the node loop stays clean; all
    // fields are deterministic for a given model, so the counters stay
    // bit-identical across runs and thread counts. A cancellable solve
    // (portfolio racing) may be truncated at a timing-dependent point,
    // so it must not contribute to the deterministic counter section —
    // its span still lands in the wall-clock trace.
    obs::add_counter("milp.solves", 1);
    obs::add_counter("milp.nodes", res.nodes);
    obs::add_counter("milp.lp_iterations", res.lp_iterations);
    obs::add_counter("milp.warm_solves", res.warm_solves);
    obs::add_counter("milp.cold_solves", res.cold_solves);
    obs::add_counter("milp.pseudocost_updates", res.pseudocost_updates);
    obs::add_counter("milp.cuts", res.cuts_added);
    obs::add_counter("milp.waves", res.waves);
    obs::add_counter("lp.dual_pivots", res.dual_pivots);
    obs::add_counter("lp.refactorizations", res.refactorizations);
    obs::gauge_max("milp.heap_depth_max", res.max_heap_depth);
    sp.set_attr({"status", to_string(res.status)});
    sp.set_attr({"nodes", res.nodes});
  }
  return res;
}

}  // namespace stx::milp
