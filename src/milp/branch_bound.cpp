#include "milp/branch_bound.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "lp/simplex.h"
#include "milp/presolve.h"
#include "util/error.h"

namespace stx::milp {

const char* to_string(milp_status s) {
  switch (s) {
    case milp_status::optimal: return "optimal";
    case milp_status::feasible: return "feasible";
    case milp_status::infeasible: return "infeasible";
    case milp_status::unbounded: return "unbounded";
    case milp_status::limit: return "limit";
  }
  return "?";
}

namespace {

constexpr double inf = std::numeric_limits<double>::infinity();

class bb_engine {
 public:
  bb_engine(const model& m, const bb_options& opts)
      : m_(m), opts_(opts), work_(m.relaxation()) {
    start_ = std::chrono::steady_clock::now();
  }

  bb_result run() {
    dfs(0);
    bb_result res;
    res.nodes = nodes_;
    res.lp_iterations = lp_iterations_;
    res.best_bound = have_incumbent_ && search_complete()
                         ? incumbent_obj_
                         : open_bound_;
    if (have_incumbent_) {
      res.x = incumbent_;
      res.objective = incumbent_obj_;
      res.status = search_complete() ? milp_status::optimal
                                     : milp_status::feasible;
      if (opts_.feasibility_only) res.status = milp_status::optimal;
    } else if (hit_unbounded_) {
      res.status = milp_status::unbounded;
    } else if (search_complete()) {
      res.status = milp_status::infeasible;
    } else {
      res.status = milp_status::limit;
    }
    return res;
  }

 private:
  bool out_of_budget() const {
    if (nodes_ >= opts_.max_nodes) return true;
    if (opts_.time_limit_sec > 0.0) {
      const auto elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start_)
                               .count();
      if (elapsed > opts_.time_limit_sec) return true;
    }
    return false;
  }

  bool search_complete() const { return !limit_hit_ && !stop_; }

  /// Fractional part distance from the nearest integer.
  static double fractionality(double x) {
    return std::abs(x - std::round(x));
  }

  void dfs(int depth) {
    if (stop_) return;
    if (out_of_budget()) {
      limit_hit_ = true;
      return;
    }
    ++nodes_;

    lp::solve_options lp_opts;
    const auto rel = lp::solve_simplex(work_, lp_opts);
    lp_iterations_ += rel.iterations;
    if (rel.status == lp::solve_status::infeasible) return;
    if (rel.status == lp::solve_status::unbounded) {
      // An unbounded relaxation at the root means the MILP is unbounded
      // (or infeasible; we report unbounded which is what the LP proves).
      if (depth == 0) hit_unbounded_ = true;
      limit_hit_ = depth != 0;  // deeper: cannot conclude, treat as limit
      return;
    }
    if (rel.status == lp::solve_status::iteration_limit) {
      limit_hit_ = true;
      return;
    }

    if (have_incumbent_ && !opts_.feasibility_only &&
        rel.objective >= incumbent_obj_ - opts_.gap_abs) {
      return;  // bound prune
    }
    open_bound_ = std::min(open_bound_, rel.objective);

    // Most fractional integer variable.
    int branch_var = -1;
    double best_frac = opts_.int_tol;
    for (int v = 0; v < m_.num_variables(); ++v) {
      if (!m_.is_integer(v)) continue;
      const double f = fractionality(rel.x[static_cast<std::size_t>(v)]);
      if (f > best_frac) {
        best_frac = f;
        branch_var = v;
      }
    }

    if (branch_var < 0) {
      // Integral: new incumbent.
      accept_incumbent(rel.x, rel.objective);
      return;
    }

    if (opts_.rounding_heuristic && !have_incumbent_) {
      try_rounding(rel.x);
      if (stop_) return;
    }

    const double xv = rel.x[static_cast<std::size_t>(branch_var)];
    const double floor_v = std::floor(xv);
    const double ceil_v = floor_v + 1.0;
    const auto& vv = work_.var(branch_var);
    const double saved_lo = vv.lower;
    const double saved_hi = vv.upper;

    // Explore the branch nearer the LP value first.
    const bool up_first = (xv - floor_v) >= 0.5;
    for (int side = 0; side < 2; ++side) {
      const bool up = (side == 0) == up_first;
      if (up) {
        if (ceil_v > saved_hi + opts_.int_tol) continue;
        work_.set_bounds(branch_var, ceil_v, saved_hi);
      } else {
        if (floor_v < saved_lo - opts_.int_tol) continue;
        work_.set_bounds(branch_var, saved_lo, floor_v);
      }
      dfs(depth + 1);
      work_.set_bounds(branch_var, saved_lo, saved_hi);
      if (stop_) return;
    }
  }

  void accept_incumbent(const std::vector<double>& x, double obj) {
    // Snap integers exactly; re-verify against the (current-bounds) model.
    std::vector<double> snapped = x;
    for (int v = 0; v < m_.num_variables(); ++v) {
      if (m_.is_integer(v)) {
        snapped[static_cast<std::size_t>(v)] =
            std::round(snapped[static_cast<std::size_t>(v)]);
      }
    }
    if (!have_incumbent_ || obj < incumbent_obj_ - opts_.gap_abs) {
      incumbent_ = std::move(snapped);
      incumbent_obj_ = obj;
      have_incumbent_ = true;
      if (opts_.feasibility_only) stop_ = true;
    }
  }

  /// Round-to-nearest heuristic: cheap incumbent seeding.
  void try_rounding(const std::vector<double>& x) {
    std::vector<double> rounded = x;
    for (int v = 0; v < m_.num_variables(); ++v) {
      if (!m_.is_integer(v)) continue;
      auto& xv = rounded[static_cast<std::size_t>(v)];
      xv = std::round(xv);
      xv = std::clamp(xv, m_.relaxation().var(v).lower,
                      m_.relaxation().var(v).upper);
    }
    if (m_.is_feasible(rounded, 1e-6)) {
      accept_incumbent(rounded, m_.relaxation().objective_value(rounded));
    }
  }

  const model& m_;
  const bb_options& opts_;
  lp::model work_;  // mutable bounds during the search
  std::chrono::steady_clock::time_point start_;

  std::int64_t nodes_ = 0;
  std::int64_t lp_iterations_ = 0;
  bool have_incumbent_ = false;
  std::vector<double> incumbent_;
  double incumbent_obj_ = inf;
  double open_bound_ = inf;
  bool limit_hit_ = false;
  bool stop_ = false;
  bool hit_unbounded_ = false;
};

}  // namespace

bb_result solve_branch_bound(const model& m, const bb_options& opts) {
  if (!opts.use_presolve) {
    bb_engine engine(m, opts);
    return engine.run();
  }

  const auto pre = presolve(m);
  if (pre.proven_infeasible) {
    bb_result res;
    res.status = milp_status::infeasible;
    return res;
  }

  if (pre.reduced.num_variables() == 0) {
    // Everything fixed by presolve; validate the point.
    bb_result res;
    const auto x = pre.expand({});
    if (m.is_feasible(x, 1e-6)) {
      res.status = milp_status::optimal;
      res.x = x;
      res.objective = m.relaxation().objective_value(x);
      res.best_bound = res.objective;
    } else {
      res.status = milp_status::infeasible;
    }
    return res;
  }

  bb_engine engine(pre.reduced, opts);
  auto res = engine.run();
  if (res.status == milp_status::optimal ||
      res.status == milp_status::feasible) {
    res.x = pre.expand(res.x);
    res.objective = m.relaxation().objective_value(res.x);
    STX_ENSURE(m.is_feasible(res.x, 1e-5),
               "branch & bound produced an infeasible incumbent");
  }
  return res;
}

}  // namespace stx::milp
