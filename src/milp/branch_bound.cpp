#include "milp/branch_bound.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "lp/revised_simplex.h"
#include "lp/simplex.h"
#include "milp/presolve.h"
#include "obs/obs.h"
#include "util/error.h"

namespace stx::milp {

const char* to_string(milp_status s) {
  switch (s) {
    case milp_status::optimal: return "optimal";
    case milp_status::feasible: return "feasible";
    case milp_status::infeasible: return "infeasible";
    case milp_status::unbounded: return "unbounded";
    case milp_status::limit: return "limit";
  }
  return "?";
}

namespace {

constexpr double inf = std::numeric_limits<double>::infinity();

/// Shared incumbent bookkeeping of both engines.
struct incumbent_pool {
  bool have = false;
  std::vector<double> x;
  double objective = inf;

  /// Snap integers exactly and keep on strict improvement.
  bool accept(const model& m, const std::vector<double>& raw, double obj,
              double gap_abs) {
    std::vector<double> snapped = raw;
    for (int v = 0; v < m.num_variables(); ++v) {
      if (m.is_integer(v)) {
        snapped[static_cast<std::size_t>(v)] =
            std::round(snapped[static_cast<std::size_t>(v)]);
      }
    }
    if (!have || obj < objective - gap_abs) {
      x = std::move(snapped);
      objective = obj;
      have = true;
      return true;
    }
    return false;
  }

  /// Round-to-nearest heuristic: cheap incumbent seeding.
  void try_rounding(const model& m, const std::vector<double>& raw,
                    double gap_abs) {
    std::vector<double> rounded = raw;
    for (int v = 0; v < m.num_variables(); ++v) {
      if (!m.is_integer(v)) continue;
      auto& xv = rounded[static_cast<std::size_t>(v)];
      xv = std::round(xv);
      xv = std::clamp(xv, m.relaxation().var(v).lower,
                      m.relaxation().var(v).upper);
    }
    if (m.is_feasible(rounded, 1e-6)) {
      accept(m, rounded, m.relaxation().objective_value(rounded), gap_abs);
    }
  }
};

/// Fractional part distance from the nearest integer.
double fractionality(double x) { return std::abs(x - std::round(x)); }

// ===================================================================
// Legacy engine: recursive DFS, full two-phase tableau cold solve at
// every node. Kept one release as the warm engine's differential
// reference (bb_options::warm_start = false).
// ===================================================================
class cold_bb_engine {
 public:
  cold_bb_engine(const model& m, const bb_options& opts)
      : m_(m), opts_(opts), work_(m.relaxation()) {
    start_ = std::chrono::steady_clock::now();
  }

  bb_result run() {
    dfs(0);
    bb_result res;
    res.nodes = nodes_;
    res.lp_iterations = lp_iterations_;
    res.cold_solves = nodes_;
    res.best_bound = incumbent_.have && search_complete()
                         ? incumbent_.objective
                         : open_bound_;
    if (incumbent_.have) {
      res.x = incumbent_.x;
      res.objective = incumbent_.objective;
      res.status = search_complete() ? milp_status::optimal
                                     : milp_status::feasible;
      if (opts_.feasibility_only) res.status = milp_status::optimal;
    } else if (hit_unbounded_) {
      res.status = milp_status::unbounded;
    } else if (search_complete()) {
      res.status = milp_status::infeasible;
    } else {
      res.status = milp_status::limit;
    }
    return res;
  }

 private:
  bool out_of_budget() const {
    if (nodes_ >= opts_.max_nodes) return true;
    if (opts_.time_limit_sec > 0.0) {
      const auto elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start_)
                               .count();
      if (elapsed > opts_.time_limit_sec) return true;
    }
    return false;
  }

  bool search_complete() const { return !limit_hit_ && !stop_; }

  void dfs(int depth) {
    if (stop_) return;
    if (out_of_budget()) {
      limit_hit_ = true;
      return;
    }
    ++nodes_;

    lp::solve_options lp_opts;
    const auto rel = lp::solve_simplex(work_, lp_opts);
    lp_iterations_ += rel.iterations;
    if (rel.status == lp::solve_status::infeasible) return;
    if (rel.status == lp::solve_status::unbounded) {
      // An unbounded relaxation at the root means the MILP is unbounded
      // (or infeasible; we report unbounded which is what the LP proves).
      if (depth == 0) hit_unbounded_ = true;
      limit_hit_ = depth != 0;  // deeper: cannot conclude, treat as limit
      return;
    }
    if (rel.status == lp::solve_status::iteration_limit) {
      limit_hit_ = true;
      return;
    }

    if (incumbent_.have && !opts_.feasibility_only &&
        rel.objective >= incumbent_.objective - opts_.gap_abs) {
      return;  // bound prune
    }
    open_bound_ = std::min(open_bound_, rel.objective);

    // Most fractional integer variable.
    int branch_var = -1;
    double best_frac = opts_.int_tol;
    for (int v = 0; v < m_.num_variables(); ++v) {
      if (!m_.is_integer(v)) continue;
      const double f = fractionality(rel.x[static_cast<std::size_t>(v)]);
      if (f > best_frac) {
        best_frac = f;
        branch_var = v;
      }
    }

    if (branch_var < 0) {
      // Integral: new incumbent.
      incumbent_.accept(m_, rel.x, rel.objective, opts_.gap_abs);
      if (opts_.feasibility_only) stop_ = true;
      return;
    }

    if (opts_.rounding_heuristic && !incumbent_.have) {
      incumbent_.try_rounding(m_, rel.x, opts_.gap_abs);
      if (incumbent_.have && opts_.feasibility_only) {
        stop_ = true;
        return;
      }
    }

    const double xv = rel.x[static_cast<std::size_t>(branch_var)];
    const double floor_v = std::floor(xv);
    const double ceil_v = floor_v + 1.0;
    const auto& vv = work_.var(branch_var);
    const double saved_lo = vv.lower;
    const double saved_hi = vv.upper;

    // Explore the branch nearer the LP value first.
    const bool up_first = (xv - floor_v) >= 0.5;
    for (int side = 0; side < 2; ++side) {
      const bool up = (side == 0) == up_first;
      if (up) {
        if (ceil_v > saved_hi + opts_.int_tol) continue;
        work_.set_bounds(branch_var, ceil_v, saved_hi);
      } else {
        if (floor_v < saved_lo - opts_.int_tol) continue;
        work_.set_bounds(branch_var, saved_lo, floor_v);
      }
      dfs(depth + 1);
      work_.set_bounds(branch_var, saved_lo, saved_hi);
      if (stop_) return;
    }
  }

  const model& m_;
  const bb_options& opts_;
  lp::model work_;  // mutable bounds during the search
  std::chrono::steady_clock::time_point start_;

  std::int64_t nodes_ = 0;
  std::int64_t lp_iterations_ = 0;
  incumbent_pool incumbent_;
  double open_bound_ = inf;
  bool limit_hit_ = false;
  bool stop_ = false;
  bool hit_unbounded_ = false;
};

// ===================================================================
// Warm engine: best-bound search over explicit nodes, each re-solved
// from its parent's basis with the dual simplex.
// ===================================================================
class warm_bb_engine {
 public:
  warm_bb_engine(const model& m, const bb_options& opts)
      : m_(m), opts_(opts), solver_(m.relaxation(), {}) {
    start_ = std::chrono::steady_clock::now();
    const int n = m_.num_variables();
    root_lo_.resize(static_cast<std::size_t>(n));
    root_hi_.resize(static_cast<std::size_t>(n));
    pc_down_.resize(static_cast<std::size_t>(n));
    pc_up_.resize(static_cast<std::size_t>(n));
    pc_down_n_.assign(static_cast<std::size_t>(n), 0);
    pc_up_n_.assign(static_cast<std::size_t>(n), 0);
    for (int v = 0; v < n; ++v) {
      const auto& vv = m_.relaxation().var(v);
      root_lo_[static_cast<std::size_t>(v)] = vv.lower;
      root_hi_[static_cast<std::size_t>(v)] = vv.upper;
      // Pseudocost initialisation: the objective coefficient is the
      // first-order estimate of the degradation one unit of bound
      // movement causes; +1 keeps zero-cost variables (the feasibility
      // MILP) rankable by fractionality alone.
      pc_down_[static_cast<std::size_t>(v)] = std::abs(vv.objective) + 1.0;
      pc_up_[static_cast<std::size_t>(v)] = std::abs(vv.objective) + 1.0;
    }
  }

  bb_result run() {
    {
      auto root = std::make_shared<node>();
      root->bound = -inf;
      root->id = next_id_++;
      open_.push(std::move(root));
    }

    while (!open_.empty() && !stop_) {
      if (out_of_budget()) {
        limit_hit_ = true;
        break;
      }
      const node_ptr nd = open_.top();
      open_.pop();
      if (incumbent_.have && !opts_.feasibility_only &&
          nd->bound >= incumbent_.objective - opts_.gap_abs) {
        continue;  // pruned without an LP solve
      }
      process(nd);
    }

    bb_result res;
    res.nodes = nodes_;
    res.lp_iterations = lp_iterations_;
    res.warm_solves = warm_solves_;
    res.cold_solves = cold_solves_;
    res.pseudocost_updates = pseudocost_updates_;
    res.max_heap_depth = max_heap_depth_;
    res.dual_pivots = solver_.dual_pivots();
    res.refactorizations = solver_.factorizations();
    const bool complete = !limit_hit_ && !stop_;
    if (incumbent_.have && (complete || opts_.feasibility_only)) {
      res.best_bound = incumbent_.objective;
    } else if (!open_.empty()) {
      // Best-bound order: the top of the heap IS the global lower bound
      // over the unexplored frontier.
      res.best_bound = std::min(open_.top()->bound, open_bound_);
    } else {
      res.best_bound = open_bound_;
    }
    if (incumbent_.have) {
      res.x = incumbent_.x;
      res.objective = incumbent_.objective;
      res.status =
          complete ? milp_status::optimal : milp_status::feasible;
      if (opts_.feasibility_only) res.status = milp_status::optimal;
    } else if (hit_unbounded_) {
      res.status = milp_status::unbounded;
    } else if (complete) {
      res.status = milp_status::infeasible;
    } else {
      res.status = milp_status::limit;
    }
    return res;
  }

 private:
  struct node {
    double bound = -inf;   ///< parent's LP objective: lower bound here
    std::int64_t id = 0;   ///< creation order; larger = newer
    int depth = 0;
    int var = -1;          ///< bound change vs the parent (none at root)
    double lo = 0.0, hi = 0.0;
    bool up = false;              ///< which side of the split this is
    double frac_moved = 0.0;      ///< fractional distance the bound moved
    std::shared_ptr<const node> parent;
    std::shared_ptr<const lp::basis_state> warm;  ///< parent's basis
  };
  using node_ptr = std::shared_ptr<const node>;

  /// Min-heap on the bound; ties pop the NEWEST node first — the
  /// deterministic DFS plunge that keeps the warm basis one bound-change
  /// away from the node it is applied to whenever bounds tie (the common
  /// case on the feasibility MILP, where every bound is zero).
  struct node_order {
    bool operator()(const node_ptr& a, const node_ptr& b) const {
      if (a->bound != b->bound) return a->bound > b->bound;
      return a->id < b->id;
    }
  };

  bool out_of_budget() const {
    if (nodes_ >= opts_.max_nodes) return true;
    if (opts_.time_limit_sec > 0.0) {
      const auto elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start_)
                               .count();
      if (elapsed > opts_.time_limit_sec) return true;
    }
    return false;
  }

  /// Moves the solver's bounds from the previously processed node's to
  /// `nd`'s (reset what the previous chain touched, apply this chain;
  /// child-deepest setting wins within the chain).
  void apply_bounds(const node_ptr& nd) {
    std::unordered_map<int, std::pair<double, double>> wanted;
    for (const node* cur = nd.get(); cur != nullptr;
         cur = cur->parent.get()) {
      if (cur->var < 0) continue;
      wanted.emplace(cur->var, std::make_pair(cur->lo, cur->hi));
    }
    for (const int v : applied_) {
      if (wanted.find(v) == wanted.end()) {
        solver_.set_bounds(v, root_lo_[static_cast<std::size_t>(v)],
                           root_hi_[static_cast<std::size_t>(v)]);
      }
    }
    applied_.clear();
    current_.clear();
    for (const auto& [v, b] : wanted) {
      solver_.set_bounds(v, b.first, b.second);
      applied_.push_back(v);
      current_.emplace(v, b);
    }
  }

  std::pair<double, double> effective_bounds(int v) const {
    const auto it = current_.find(v);
    if (it != current_.end()) return it->second;
    return {root_lo_[static_cast<std::size_t>(v)],
            root_hi_[static_cast<std::size_t>(v)]};
  }

  void process(const node_ptr& nd) {
    apply_bounds(nd);
    ++nodes_;

    lp::solve_result rel;
    if (nd->warm != nullptr) {
      rel = solver_.solve_from(*nd->warm);
      // An internal cold restart (stale basis, singular factorization)
      // counts as a cold solve: the telemetry must name the engine that
      // actually produced the answer.
      if (solver_.last_solve_fell_back()) {
        ++cold_solves_;
      } else {
        ++warm_solves_;
      }
    } else {
      rel = solver_.solve();
      ++cold_solves_;
    }
    lp_iterations_ += rel.iterations;

    if (rel.status == lp::solve_status::infeasible) return;
    if (rel.status == lp::solve_status::unbounded) {
      if (nd->depth == 0) hit_unbounded_ = true;
      limit_hit_ = nd->depth != 0;
      return;
    }
    if (rel.status == lp::solve_status::iteration_limit) {
      limit_hit_ = true;
      return;
    }

    // Pseudocost update: observed objective degradation per unit of
    // fractional distance the branching bound moved.
    if (nd->var >= 0 && nd->bound > -inf &&
        nd->frac_moved > opts_.int_tol) {
      const double gain =
          std::max(0.0, rel.objective - nd->bound) / nd->frac_moved;
      auto& pc = nd->up ? pc_up_ : pc_down_;
      auto& cnt = nd->up ? pc_up_n_ : pc_down_n_;
      const auto sv = static_cast<std::size_t>(nd->var);
      pc[sv] = (pc[sv] * cnt[sv] + gain) / (cnt[sv] + 1);
      ++cnt[sv];
      ++pseudocost_updates_;
    }

    if (incumbent_.have && !opts_.feasibility_only &&
        rel.objective >= incumbent_.objective - opts_.gap_abs) {
      return;  // bound prune on the solved objective
    }
    open_bound_ = std::min(open_bound_, rel.objective);

    // Pseudocost-weighted most-fractional branching: rank fractional
    // integer variables by estimated two-sided degradation; break ties
    // toward higher fractionality, then the smallest index (all
    // deterministic).
    int branch_var = -1;
    double best_score = 0.0;
    double best_dist = 0.0;
    for (int v = 0; v < m_.num_variables(); ++v) {
      if (!m_.is_integer(v)) continue;
      const double xv = rel.x[static_cast<std::size_t>(v)];
      const double f = xv - std::floor(xv);
      const double dist = std::min(f, 1.0 - f);
      if (dist <= opts_.int_tol) continue;
      const double est_down =
          std::max(pc_down_[static_cast<std::size_t>(v)] * f, 1e-6);
      const double est_up =
          std::max(pc_up_[static_cast<std::size_t>(v)] * (1.0 - f), 1e-6);
      const double score = est_down * est_up;
      if (branch_var < 0 || score > best_score + 1e-12 ||
          (score > best_score - 1e-12 && dist > best_dist + 1e-12)) {
        branch_var = v;
        best_score = score;
        best_dist = dist;
      }
    }

    if (branch_var < 0) {
      incumbent_.accept(m_, rel.x, rel.objective, opts_.gap_abs);
      if (opts_.feasibility_only) stop_ = true;
      return;
    }

    if (opts_.rounding_heuristic && !incumbent_.have) {
      incumbent_.try_rounding(m_, rel.x, opts_.gap_abs);
      if (incumbent_.have && opts_.feasibility_only) {
        stop_ = true;
        return;
      }
    }

    const double xv = rel.x[static_cast<std::size_t>(branch_var)];
    const double floor_v = std::floor(xv);
    const double ceil_v = floor_v + 1.0;
    const auto [cur_lo, cur_hi] = effective_bounds(branch_var);
    const double f = xv - floor_v;

    // Children inherit this node's optimal basis; the heap caps how many
    // snapshots stay alive (beyond that, a child simply cold-solves —
    // correctness never depends on the warm path).
    std::shared_ptr<const lp::basis_state> basis;
    if (open_.size() < kMaxOpenWithBases) {
      basis = std::make_shared<lp::basis_state>(solver_.last_basis());
    }

    // Push the farther-from-LP-value side first: the nearer side gets
    // the larger id and wins the tie-break, reproducing the legacy
    // engine's plunge order under equal bounds.
    const bool up_first = f >= 0.5;
    for (int side = 0; side < 2; ++side) {
      const bool up = (side == 1) == up_first;
      auto child = std::make_shared<node>();
      child->bound = rel.objective;
      child->depth = nd->depth + 1;
      child->var = branch_var;
      child->up = up;
      child->parent = nd;
      child->warm = basis;
      if (up) {
        if (ceil_v > cur_hi + opts_.int_tol) continue;
        child->lo = ceil_v;
        child->hi = cur_hi;
        child->frac_moved = 1.0 - f;
      } else {
        if (floor_v < cur_lo - opts_.int_tol) continue;
        child->lo = cur_lo;
        child->hi = floor_v;
        child->frac_moved = f;
      }
      child->id = next_id_++;
      open_.push(std::move(child));
    }
    max_heap_depth_ = std::max(
        max_heap_depth_, static_cast<std::int64_t>(open_.size()));
  }

  static constexpr std::size_t kMaxOpenWithBases = 65'536;

  const model& m_;
  const bb_options& opts_;
  lp::revised_solver solver_;
  std::chrono::steady_clock::time_point start_;

  std::vector<double> root_lo_, root_hi_;
  std::vector<double> pc_down_, pc_up_;
  std::vector<std::int64_t> pc_down_n_, pc_up_n_;

  std::priority_queue<node_ptr, std::vector<node_ptr>, node_order> open_;
  std::vector<int> applied_;  ///< vars whose bounds differ from root
  std::unordered_map<int, std::pair<double, double>> current_;
  std::int64_t next_id_ = 0;

  std::int64_t nodes_ = 0;
  std::int64_t lp_iterations_ = 0;
  std::int64_t warm_solves_ = 0;
  std::int64_t cold_solves_ = 0;
  std::int64_t pseudocost_updates_ = 0;
  std::int64_t max_heap_depth_ = 0;
  incumbent_pool incumbent_;
  double open_bound_ = inf;
  bool limit_hit_ = false;
  bool stop_ = false;
  bool hit_unbounded_ = false;
};

bb_result run_engine(const model& m, const bb_options& opts) {
  if (opts.warm_start) {
    warm_bb_engine engine(m, opts);
    return engine.run();
  }
  cold_bb_engine engine(m, opts);
  return engine.run();
}

bb_result solve_impl(const model& m, const bb_options& opts) {
  if (!opts.use_presolve) {
    return run_engine(m, opts);
  }

  const auto pre = presolve(m);
  if (pre.proven_infeasible) {
    bb_result res;
    res.status = milp_status::infeasible;
    return res;
  }

  if (pre.reduced.num_variables() == 0) {
    // Everything fixed by presolve; validate the point.
    bb_result res;
    const auto x = pre.expand({});
    if (m.is_feasible(x, 1e-6)) {
      res.status = milp_status::optimal;
      res.x = x;
      res.objective = m.relaxation().objective_value(x);
      res.best_bound = res.objective;
    } else {
      res.status = milp_status::infeasible;
    }
    return res;
  }

  auto res = run_engine(pre.reduced, opts);
  if (res.status == milp_status::optimal ||
      res.status == milp_status::feasible) {
    res.x = pre.expand(res.x);
    res.objective = m.relaxation().objective_value(res.x);
    STX_ENSURE(m.is_feasible(res.x, 1e-5),
               "branch & bound produced an infeasible incumbent");
  }
  return res;
}

}  // namespace

bb_result solve_branch_bound(const model& m, const bb_options& opts) {
  obs::span sp("milp.solve",
               {{"vars", m.num_variables()},
                {"engine", opts.warm_start ? "warm" : "cold"}});
  auto res = solve_impl(m, opts);
  if (obs::enabled()) {
    // Flushed post-hoc from the result so the node loop stays clean; all
    // fields are deterministic for a given model, so the counters stay
    // bit-identical across runs and thread counts.
    obs::add_counter("milp.solves", 1);
    obs::add_counter("milp.nodes", res.nodes);
    obs::add_counter("milp.lp_iterations", res.lp_iterations);
    obs::add_counter("milp.warm_solves", res.warm_solves);
    obs::add_counter("milp.cold_solves", res.cold_solves);
    obs::add_counter("milp.pseudocost_updates", res.pseudocost_updates);
    obs::add_counter("lp.dual_pivots", res.dual_pivots);
    obs::add_counter("lp.refactorizations", res.refactorizations);
    obs::gauge_max("milp.heap_depth_max", res.max_heap_depth);
    sp.set_attr({"status", to_string(res.status)});
    sp.set_attr({"nodes", res.nodes});
  }
  return res;
}

}  // namespace stx::milp
