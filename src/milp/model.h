// Mixed integer linear program model.
#pragma once

#include <string>
#include <vector>

#include "lp/model.h"

namespace stx::milp {

/// A mixed integer linear program: an LP plus integrality marks.
///
/// The crossbar formulation (paper Eq. 3-9 and Eq. 11) is expressed on
/// this type and handed to `solve_branch_bound`. The class wraps
/// `stx::lp::model` so the LP relaxation is available for free.
class model {
 public:
  /// Continuous variable in [lower, upper].
  int add_continuous(double lower, double upper, double objective,
                     std::string name = {});

  /// Integer variable in [lower, upper] (bounds are rounded outward to
  /// integers by the solver's branching, not here).
  int add_integer(double lower, double upper, double objective,
                  std::string name = {});

  /// Binary (0/1) variable.
  int add_binary(double objective, std::string name = {});

  /// Adds a linear constraint row; see lp::model::add_row.
  int add_row(std::vector<lp::term> terms, lp::relation rel, double rhs,
              std::string name = {});

  void set_objective(int var, double coefficient);
  void set_bounds(int var, double lower, double upper);

  int num_variables() const { return relaxation_.num_variables(); }
  int num_rows() const { return relaxation_.num_rows(); }
  int num_integer_variables() const;

  bool is_integer(int var) const;

  /// The LP relaxation (same variables and rows, integrality dropped).
  const lp::model& relaxation() const { return relaxation_; }
  lp::model& relaxation() { return relaxation_; }

  /// True when `x` satisfies rows, bounds and integrality within `tol`.
  bool is_feasible(const std::vector<double>& x, double tol = 1e-6) const;

  /// Declares that the equal-sized variable BLOCKS of `blocks` are
  /// pairwise interchangeable: permuting the blocks of any feasible
  /// solution (together with whatever auxiliary variables the caller's
  /// formulation permutes alongside) yields another feasible solution
  /// with the same objective. All listed variables must be binary.
  ///
  /// This is the crossbar formulation's bus symmetry (Eq. 3-9: block k =
  /// the x[i][k] column of bus k): any binding survives a bus
  /// relabelling. `presolve` turns each declared group into lexicographic
  /// ordering rows between consecutive blocks, pruning the factorially
  /// many permuted copies from the branch & bound tree while keeping at
  /// least one optimal representative (the blocks sorted lex-descending).
  void add_symmetry_group(std::vector<std::vector<int>> blocks);

  const std::vector<std::vector<std::vector<int>>>& symmetry_groups() const {
    return symmetry_groups_;
  }

 private:
  lp::model relaxation_;
  std::vector<bool> integer_;
  std::vector<std::vector<std::vector<int>>> symmetry_groups_;
};

}  // namespace stx::milp
