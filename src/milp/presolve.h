// Bound-tightening presolve for MILP models.
#pragma once

#include <optional>
#include <vector>

#include "milp/model.h"

namespace stx::milp {

/// Result of presolving: a smaller model plus bookkeeping to map a reduced
/// solution back to the original variable space.
struct presolved_model {
  model reduced;
  /// original variable index -> reduced index, or -1 when fixed.
  std::vector<int> var_map;
  /// original variable index -> fixed value (meaningful when var_map < 0).
  std::vector<double> fixed_value;
  /// True when presolve alone proved the model infeasible; `reduced` is
  /// then empty and must not be solved.
  bool proven_infeasible = false;
  /// Rows dropped because they became trivially satisfied.
  int dropped_rows = 0;

  /// Expands a solution of `reduced` to the original variable space.
  std::vector<double> expand(const std::vector<double>& reduced_x) const;
};

/// Iterated presolve:
///  * each symmetry group declared on the model (interchangeable binary
///    blocks — the crossbar formulation's bus columns) is rewritten into
///    lexicographic ordering rows between consecutive blocks, pruning the
///    factorially-symmetric part of the branch & bound tree up front;
///  * variables with equal bounds are fixed and substituted into rows;
///  * singleton rows tighten the bounds of their single variable and are
///    dropped;
///  * integer variable bounds are rounded inward;
///  * knapsack-style fixing on <= rows whose unfixed coefficients are all
///    non-negative: a variable whose own minimum contribution already
///    exceeds the residual rhs is fixed at its lower bound;
///  * rows whose worst-case activity can never violate the relation are
///    dropped; rows whose best case still violates prove infeasibility.
///
/// This mirrors (a small slice of) what CPLEX does before branch & bound
/// and is what makes the paper-faithful Eq. 3-9 formulation tractable:
/// conflict rows (Eq. 7) fix sharing variables to zero, which cascades
/// into the Eq. 5 linearization rows.
presolved_model presolve(const model& m, int max_passes = 12);

}  // namespace stx::milp
