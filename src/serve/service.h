// The design service engine: a sharded worker pool executing design
// requests against the staged flow, with a bounded admission queue,
// in-flight dedup of identical requests, and the content-addressed
// result store (explore::kv_store) underneath. Transport-free — the
// socket server (serve/server.h), tests and benches all drive this same
// class; xbargen's --cache-dir path shares cached_design().
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <mutex>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "explore/trace_cache.h"
#include "serve/protocol.h"
#include "workloads/app.h"

namespace stx::serve {

/// One staged, store-backed design-flow invocation — the unit of work a
/// service worker executes, shared verbatim by the CLI --cache-dir
/// paths so a design computed by xbargen is a warm hit for the daemon
/// and vice versa.
///
/// Stages, each individually cached:
///   report    — `store` consulted under the stage=report key first; a
///               hit decodes the stored flow_report and returns without
///               touching the simulator or the solver.
///   collect   — phase-1 traces through `cache` (trace key).
///   synthesize— xbar::synthesize_design (cheap relative to phases 1/4;
///               cached only as part of the report).
///   validate  — full-crossbar reference through `cache` (full key),
///               then xbar::validate_design.
/// The computed report is written through to `store` before returning.
struct cached_design_result {
  xbar::flow_report report;
  bool from_store = false;  ///< whole report served without simulation
};
cached_design_result cached_design(const workloads::app_spec& app,
                                   const std::string& app_id,
                                   const xbar::flow_options& opts,
                                   bool validate,
                                   explore::trace_cache& cache,
                                   explore::kv_store* store);

class service {
 public:
  struct options {
    /// Worker threads executing design requests.
    int workers = 2;
    /// Admission bound: requests queued beyond the workers. A submit
    /// past this limit is rejected immediately ("admission queue full")
    /// instead of accumulating unbounded latency.
    int queue_depth = 64;
    /// Persistent store directory; empty = in-process store only.
    std::string cache_dir;
    /// Store size cap enforced at open (0 = unlimited): oldest-accessed
    /// objects are evicted until the directory fits.
    std::uint64_t cache_max_bytes = 0;
    /// Re-run the eviction sweep every this many milliseconds so a
    /// long-running daemon honors cache_max_bytes between opens
    /// (0 = at open only). Ignored without a cache_dir / byte cap.
    int cache_sweep_ms = 0;
  };

  struct stats_t {
    std::int64_t submitted = 0;
    std::int64_t completed = 0;
    std::int64_t errors = 0;     ///< completed with ok=false
    std::int64_t coalesced = 0;  ///< deduped onto an in-flight twin
    std::int64_t rejected = 0;   ///< bounced by the admission bound
    std::int64_t store_hits = 0; ///< whole-report store hits
    std::int64_t deadline_exceeded = 0;  ///< expired while queued
  };

  /// Instantaneous saturation view (for the metrics op's live gauges):
  /// requests queued behind the workers, and requests admitted but not
  /// yet completed (queued + executing).
  struct live_t {
    std::int64_t queue_depth = 0;
    std::int64_t in_flight = 0;
  };

  explicit service(const options& opts);
  ~service();  ///< drains the queue, joins the workers

  service(const service&) = delete;
  service& operator=(const service&) = delete;

  /// Submits one design request. Identical in-flight requests (same
  /// canonical report key and artifact list) share one execution and one
  /// future. A request past the admission bound resolves immediately
  /// with an error response carrying a retry_after_ms backoff hint; a
  /// malformed application identity likewise (without the hint).
  /// Never throws and never blocks on flow work.
  std::shared_future<design_response> submit(const design_request& req);

  /// Executes one request synchronously on the caller (the worker body).
  design_response handle(const design_request& req);

  stats_t stats() const;
  live_t live() const;
  explore::kv_store& store() { return *store_; }
  explore::trace_cache& cache() { return *cache_; }

 private:
  struct job {
    design_request req;
    std::string dedup_key;
    std::promise<design_response> promise;
    /// Admission time; the worker enforces req.deadline_ms against it.
    std::chrono::steady_clock::time_point admitted;
  };

  void worker_loop();

  options opts_;
  std::shared_ptr<explore::kv_store> store_;
  std::unique_ptr<explore::trace_cache> cache_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::vector<job> queue_;
  /// Canonical dedup key -> the future every identical submit shares.
  std::map<std::string, std::shared_future<design_response>> in_flight_;
  stats_t stats_;
  std::vector<std::thread> workers_;
};

}  // namespace stx::serve
