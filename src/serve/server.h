// Local stream-socket transport for the design service: an AF_UNIX
// listener speaking the line-delimited JSON protocol of
// serve/protocol.h. One thread per connection; each connection's
// requests are answered in order, and concurrency comes from concurrent
// connections feeding the shared service worker pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.h"

namespace stx::serve {

/// Upper bound on one protocol line (request or response), newline
/// excluded. A client that streams more than this without a newline is
/// rejected with a protocol error and disconnected — the read buffer
/// must never grow unboundedly on a misbehaving peer.
inline constexpr std::size_t max_line_bytes = 1 << 20;

class server {
 public:
  struct options {
    /// SO_RCVTIMEO/SO_SNDTIMEO on every accepted connection: a read or
    /// write blocked this long wakes up instead of hanging forever on a
    /// stalled peer. Receive timeouts double as the idle-reap poll tick.
    int io_timeout_ms = 30'000;
    /// A connection with no complete request for this long is reaped
    /// (closed, counted in "serve.idle_reaped"); 0 disables the reaper.
    /// Clients are expected to reconnect (request_lines retries do).
    int idle_timeout_ms = 300'000;
  };

  /// Instantaneous connection gauges for the metrics op.
  struct live_stats {
    std::int64_t connections = 0;  ///< open client connections
    std::int64_t idle = 0;         ///< of those, waiting in read
  };

  /// Binds `socket_path` (an existing stale socket file is replaced).
  /// Throws stx::invalid_argument_error when the socket cannot be bound.
  server(service& svc, std::string socket_path, options opts);
  server(service& svc, std::string socket_path);  ///< default options
  ~server();  ///< stop()s if still running

  server(const server&) = delete;
  server& operator=(const server&) = delete;

  /// Starts accepting connections (returns immediately).
  void start();

  /// Blocks until a client sent the "shutdown" op or stop() was called.
  void wait();

  /// Graceful drain: stops accepting new connections, closes idle ones,
  /// and gives connections with a request mid-dispatch up to
  /// `timeout_ms` to finish writing their response before they are cut.
  /// Returns true when every connection drained within the budget.
  /// Call stop() afterwards to join threads and remove the socket file.
  bool drain(int timeout_ms);

  /// Stops accepting, unblocks every connection, joins all threads and
  /// removes the socket file. Idempotent.
  void stop();

  const std::string& socket_path() const { return path_; }
  live_stats live() const;

 private:
  void accept_loop();
  void serve_connection(int fd);
  /// Dispatches one request line to one response line (never throws —
  /// parse/flow errors become error responses).
  std::string dispatch(const std::string& line, bool* shutdown);

  service& svc_;
  std::string path_;
  options opts_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  bool stopped_ = false;
  bool draining_ = false;
  std::set<int> conn_fds_;
  std::set<int> busy_fds_;  ///< connections with a request mid-dispatch
  std::vector<std::thread> conn_threads_;
};

/// Retry policy of the request_lines client helper. Retryable events:
/// connect failure, a connection dropped mid-request (daemon restart),
/// and overload responses carrying a retry_after_ms hint. The wait
/// before attempt k is max(hint, base << k) * jitter in [0.5, 1.5),
/// capped at max_backoff_ms — exponential backoff with deterministic
/// (seeded) jitter so stampedes decorrelate but tests stay reproducible.
/// Design requests are idempotent and responses arrive strictly in
/// order, so resending the in-flight line after a reconnect is safe.
struct retry_options {
  int attempts = 1;         ///< total tries per line (1 = no retry)
  int base_backoff_ms = 50;
  int max_backoff_ms = 2'000;
  std::uint64_t jitter_seed = 0x5eed;
};

/// Client side, used by the CLI --client mode, tests and the throughput
/// bench: connects to `socket_path`, sends each line, reads one response
/// line per request, returns them in order. Throws
/// stx::invalid_argument_error on connect/write/read failure once the
/// retry budget (if any) is exhausted.
std::vector<std::string> request_lines(const std::string& socket_path,
                                       const std::vector<std::string>& lines,
                                       const retry_options& retry = {});

/// request_lines for a single request.
std::string request_line(const std::string& socket_path,
                         const std::string& line,
                         const retry_options& retry = {});

}  // namespace stx::serve
