// Local stream-socket transport for the design service: an AF_UNIX
// listener speaking the line-delimited JSON protocol of
// serve/protocol.h. One thread per connection; each connection's
// requests are answered in order, and concurrency comes from concurrent
// connections feeding the shared service worker pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.h"

namespace stx::serve {

/// Upper bound on one protocol line (request or response), newline
/// excluded. A client that streams more than this without a newline is
/// rejected with a protocol error and disconnected — the read buffer
/// must never grow unboundedly on a misbehaving peer.
inline constexpr std::size_t max_line_bytes = 1 << 20;

class server {
 public:
  /// Binds `socket_path` (an existing stale socket file is replaced).
  /// Throws stx::invalid_argument_error when the socket cannot be bound.
  server(service& svc, std::string socket_path);
  ~server();  ///< stop()s if still running

  server(const server&) = delete;
  server& operator=(const server&) = delete;

  /// Starts accepting connections (returns immediately).
  void start();

  /// Blocks until a client sent the "shutdown" op or stop() was called.
  void wait();

  /// Stops accepting, unblocks every connection, joins all threads and
  /// removes the socket file. Idempotent.
  void stop();

  const std::string& socket_path() const { return path_; }

 private:
  void accept_loop();
  void serve_connection(int fd);
  /// Dispatches one request line to one response line (never throws —
  /// parse/flow errors become error responses).
  std::string dispatch(const std::string& line, bool* shutdown);

  service& svc_;
  std::string path_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  bool stopped_ = false;
  std::set<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

/// Client side, used by the CLI --client mode, tests and the throughput
/// bench: connects to `socket_path`, sends each line, reads one response
/// line per request, returns them in order. Throws
/// stx::invalid_argument_error on connect/write/read failure.
std::vector<std::string> request_lines(const std::string& socket_path,
                                       const std::vector<std::string>& lines);

/// request_lines for a single request.
std::string request_line(const std::string& socket_path,
                         const std::string& line);

}  // namespace stx::serve
