#include "serve/server.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "gen/json.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace stx::serve {

namespace {

/// A bound/connected AF_UNIX address for `path`; throws when the path
/// does not fit (sun_path is ~108 bytes — keep socket paths short).
sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  STX_REQUIRE(path.size() < sizeof(addr.sun_path),
              "socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// Writes all of `data` (+ '\n') to `fd`; false on any error. Sent with
/// MSG_NOSIGNAL: a client that disconnected mid-response must surface as
/// EPIPE on this connection's thread, not as a SIGPIPE that kills the
/// whole daemon.
bool write_line(int fd, const std::string& data) {
  std::string line = data;
  line.push_back('\n');
  std::size_t off = 0;
  while (off < line.size()) {
    const auto n =
        ::send(fd, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Outcome of read_line: a line was popped, the peer closed/errored,
/// the peer streamed more than max_line_bytes without a newline, or the
/// socket receive timeout (SO_RCVTIMEO) elapsed with no new bytes.
enum class read_status { line, closed, overflow, timeout };

/// Reads from `fd` into `buf` until it holds a full line; pops and
/// returns it (without the newline). A peer that never sends a newline
/// must not grow `buf` without bound, so lines are capped.
read_status read_line(int fd, std::string& buf, std::string& line) {
  while (true) {
    const auto nl = buf.find('\n');
    if (nl != std::string::npos) {
      line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      return read_status::line;
    }
    if (buf.size() > max_line_bytes) return read_status::overflow;
    char chunk[4096];
    const auto n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return read_status::timeout;  // SO_RCVTIMEO tick
      }
      return read_status::closed;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

/// Applies SO_RCVTIMEO/SO_SNDTIMEO to a connection so reads poll at the
/// idle-reap tick and writes cannot wedge a thread on a stalled peer.
void set_io_timeouts(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

server::server(service& svc, std::string socket_path)
    : server(svc, std::move(socket_path), options()) {}

server::server(service& svc, std::string socket_path, options opts)
    : svc_(svc), path_(std::move(socket_path)), opts_(opts) {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  STX_REQUIRE(listen_fd_ >= 0, "server: cannot create socket");
  const auto addr = unix_address(path_);
  ::unlink(path_.c_str());  // replace a stale socket from a dead server
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw invalid_argument_error("server: cannot bind " + path_ + ": " +
                                 std::strerror(err));
  }
}

server::~server() { stop(); }

void server::start() {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void server::accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Descriptor/buffer exhaustion is transient: back off briefly
        // and keep accepting instead of silently ending the loop (which
        // would leave a daemon that looks alive but never answers).
        obs::add_counter("serve.accept_retries", 1);
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (stopped_ || draining_) return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      return;  // listening socket closed by stop()/drain()
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_ || shutdown_ || draining_) {
      ::close(fd);
      continue;
    }
    set_io_timeouts(fd, opts_.io_timeout_ms);
    conn_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

std::string server::dispatch(const std::string& line, bool* shutdown) {
  request req;
  try {
    req = parse_request(line);
  } catch (const std::exception& e) {
    obs::add_counter("serve.errors", 1);
    return serialize_error("", e.what());
  }
  switch (req.op) {
    case request_op::design:
      return serialize(svc_.submit(req.design).get());
    case request_op::ping:
      return serialize_simple(req.id, request_op::ping);
    case request_op::metrics: {
      // The cumulative obs snapshot plus instantaneous saturation
      // gauges: operators watch queue depth / in-flight / idle
      // connections to see overload building before shedding starts.
      const auto svc_live = svc_.live();
      const auto conn_live = live();
      live_gauges gauges;
      gauges.admission_queue_depth = svc_live.queue_depth;
      gauges.in_flight = svc_live.in_flight;
      gauges.connections = conn_live.connections;
      gauges.idle_connections = conn_live.idle;
      return serialize_metrics(req.id, obs::render_metrics_json(), gauges);
    }
    case request_op::trace:
      return serialize_simple(req.id, request_op::trace,
                              obs::render_trace_json());
    case request_op::shutdown:
      *shutdown = true;
      return serialize_simple(req.id, request_op::shutdown);
  }
  return serialize_error(req.id, "unhandled op");
}

void server::serve_connection(int fd) {
  obs::add_counter("serve.connections", 1);
  std::string buf, line;
  bool shutdown = false;
  const auto opened = std::chrono::steady_clock::now();
  auto last_request = opened;
  while (!shutdown) {
    if (STX_FAILPOINT_ACTION("serve.conn.read").kind ==
        failpoint::action_kind::error) {
      break;  // injected transport read failure: drop the connection
    }
    const auto status = read_line(fd, buf, line);
    if (status == read_status::overflow) {
      obs::add_counter("serve.errors", 1);
      write_line(fd, serialize_error(
                         "", "protocol error: line exceeds " +
                                 std::to_string(max_line_bytes) + " bytes"));
      break;
    }
    if (status == read_status::timeout) {
      // SO_RCVTIMEO tick with no new bytes: reap the connection once it
      // has been idle past the bound (a daemon serving heavy traffic
      // cannot let silent peers pin connection threads forever), and
      // fold idle connections during a drain.
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopped_ || draining_) break;
      }
      const auto idle_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - last_request)
              .count();
      if (opts_.idle_timeout_ms > 0 && idle_ms > opts_.idle_timeout_ms) {
        obs::add_counter("serve.idle_reaped", 1);
        break;
      }
      continue;
    }
    if (status != read_status::line) break;
    if (line.empty()) continue;
    last_request = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(mu_);
      busy_fds_.insert(fd);
    }
    const auto response = dispatch(line, &shutdown);
    const bool write_failed =
        STX_FAILPOINT_ACTION("serve.conn.write").kind ==
            failpoint::action_kind::error ||
        !write_line(fd, response);
    bool draining = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      busy_fds_.erase(fd);
      draining = draining_;
    }
    cv_.notify_all();  // a drain may be waiting on the busy set
    if (write_failed || draining) break;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    conn_fds_.erase(fd);
    busy_fds_.erase(fd);
    if (shutdown) shutdown_ = true;
  }
  ::close(fd);
  cv_.notify_all();
}

void server::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return shutdown_ || stopped_; });
}

server::live_stats server::live() const {
  std::lock_guard<std::mutex> lock(mu_);
  live_stats l;
  l.connections = static_cast<std::int64_t>(conn_fds_.size());
  l.idle = static_cast<std::int64_t>(conn_fds_.size() - busy_fds_.size());
  return l;
}

bool server::drain(int timeout_ms) {
  // Not re-entrant against a concurrent stop(): callers sequence
  // drain() then stop() from one thread (the signal watcher does).
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return true;
    draining_ = true;
    // Idle connections have no response in flight: close them now.
    // Clients with retry enabled reconnect against the next daemon.
    for (int fd : conn_fds_) {
      if (busy_fds_.count(fd) == 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  // Stop accepting new connections.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Give mid-dispatch requests the drain budget to finish writing.
  std::unique_lock<std::mutex> lock(mu_);
  const bool drained =
      cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                   [&] { return conn_fds_.empty(); });
  if (!drained) {
    obs::add_counter("serve.drain_timeouts", 1);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  return drained;
}

void server::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    // Unblock every connection thread stuck in read().
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  cv_.notify_all();
  if (listen_fd_ >= 0) {
    // Closing the listening socket makes accept() fail and ends the
    // accept loop; shutdown() first for portability with blocked accept.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  conn_threads_.clear();
  ::unlink(path_.c_str());
}

namespace {

/// Connects to `socket_path`; -1 (with errno set) on failure.
int client_connect(const std::string& socket_path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  STX_REQUIRE(fd >= 0, "client: cannot create socket");
  const auto addr = unix_address(socket_path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    return -1;
  }
  return fd;
}

/// The retry_after_ms hint of an overload response line; 0 when the
/// line is a success, a terminal error, or unparsable.
std::int64_t overload_hint(const std::string& response) {
  try {
    const auto doc = gen::json::parse(response);
    if (doc.contains("ok") && !doc.at("ok").as_bool() &&
        doc.contains("retry_after_ms")) {
      return doc.at("retry_after_ms").as_int();
    }
  } catch (const std::exception&) {
    // Not JSON we recognize: treat as terminal, the caller decides.
  }
  return 0;
}

}  // namespace

std::vector<std::string> request_lines(const std::string& socket_path,
                                       const std::vector<std::string>& lines,
                                       const retry_options& retry) {
  const int attempts = retry.attempts < 1 ? 1 : retry.attempts;
  rng jitter(retry.jitter_seed);
  std::vector<std::string> responses;
  int fd = -1;
  std::string buf, line;
  std::string last_error;

  // One attempt budget per request line: a line consumes an attempt on
  // a connect failure, a connection dropped mid-request, or an overload
  // response with a retry_after_ms hint. Design requests are idempotent
  // and answered strictly in order, so resending the current line on a
  // fresh connection is safe.
  for (std::size_t i = 0; i < lines.size(); ++i) {
    bool answered = false;
    for (int attempt = 0; attempt < attempts && !answered; ++attempt) {
      const auto backoff_before_retry = [&](std::int64_t hint_ms) {
        if (attempt + 1 >= attempts) return;  // budget exhausted: no sleep
        std::int64_t wait_ms = retry.base_backoff_ms > 0
                                   ? retry.base_backoff_ms << attempt
                                   : 0;
        if (hint_ms > wait_ms) wait_ms = hint_ms;
        if (wait_ms > retry.max_backoff_ms) wait_ms = retry.max_backoff_ms;
        wait_ms = static_cast<std::int64_t>(
            static_cast<double>(wait_ms) * jitter.uniform(0.5, 1.5));
        if (wait_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
        }
      };
      if (fd < 0) {
        fd = client_connect(socket_path);
        if (fd < 0) {
          last_error = "client: cannot connect to " + socket_path + ": " +
                       std::strerror(errno);
          backoff_before_retry(0);
          continue;
        }
      }
      if (!write_line(fd, lines[i]) ||
          read_line(fd, buf, line) != read_status::line) {
        ::close(fd);
        fd = -1;
        buf.clear();
        last_error = "client: connection to " + socket_path +
                     " failed mid-request";
        backoff_before_retry(0);
        continue;
      }
      const auto hint = overload_hint(line);
      if (hint > 0 && attempt + 1 < attempts) {
        // Overload shed with a retry hint: honor it (the connection is
        // fine, only the admission queue is full).
        backoff_before_retry(hint);
        continue;
      }
      responses.push_back(line);
      answered = true;
    }
    if (!answered) {
      if (fd >= 0) ::close(fd);
      throw invalid_argument_error(last_error.empty()
                                       ? "client: request failed"
                                       : last_error);
    }
  }
  if (fd >= 0) ::close(fd);
  return responses;
}

std::string request_line(const std::string& socket_path,
                         const std::string& line,
                         const retry_options& retry) {
  return request_lines(socket_path, {line}, retry).front();
}

}  // namespace stx::serve
