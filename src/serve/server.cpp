#include "serve/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/export.h"
#include "obs/obs.h"
#include "util/error.h"

namespace stx::serve {

namespace {

/// A bound/connected AF_UNIX address for `path`; throws when the path
/// does not fit (sun_path is ~108 bytes — keep socket paths short).
sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  STX_REQUIRE(path.size() < sizeof(addr.sun_path),
              "socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// Writes all of `data` (+ '\n') to `fd`; false on any error. Sent with
/// MSG_NOSIGNAL: a client that disconnected mid-response must surface as
/// EPIPE on this connection's thread, not as a SIGPIPE that kills the
/// whole daemon.
bool write_line(int fd, const std::string& data) {
  std::string line = data;
  line.push_back('\n');
  std::size_t off = 0;
  while (off < line.size()) {
    const auto n =
        ::send(fd, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Outcome of read_line: a line was popped, the peer closed/errored, or
/// the peer streamed more than max_line_bytes without a newline.
enum class read_status { line, closed, overflow };

/// Reads from `fd` into `buf` until it holds a full line; pops and
/// returns it (without the newline). A peer that never sends a newline
/// must not grow `buf` without bound, so lines are capped.
read_status read_line(int fd, std::string& buf, std::string& line) {
  while (true) {
    const auto nl = buf.find('\n');
    if (nl != std::string::npos) {
      line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      return read_status::line;
    }
    if (buf.size() > max_line_bytes) return read_status::overflow;
    char chunk[4096];
    const auto n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return read_status::closed;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace

server::server(service& svc, std::string socket_path)
    : svc_(svc), path_(std::move(socket_path)) {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  STX_REQUIRE(listen_fd_ >= 0, "server: cannot create socket");
  const auto addr = unix_address(path_);
  ::unlink(path_.c_str());  // replace a stale socket from a dead server
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw invalid_argument_error("server: cannot bind " + path_ + ": " +
                                 std::strerror(err));
  }
}

server::~server() { stop(); }

void server::start() {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void server::accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listening socket closed by stop()
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_ || shutdown_) {
      ::close(fd);
      continue;
    }
    conn_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

std::string server::dispatch(const std::string& line, bool* shutdown) {
  request req;
  try {
    req = parse_request(line);
  } catch (const std::exception& e) {
    obs::add_counter("serve.errors", 1);
    return serialize_error("", e.what());
  }
  switch (req.op) {
    case request_op::design:
      return serialize(svc_.submit(req.design).get());
    case request_op::ping:
      return serialize_simple(req.id, request_op::ping);
    case request_op::metrics:
      return serialize_simple(req.id, request_op::metrics,
                              obs::render_metrics_json());
    case request_op::trace:
      return serialize_simple(req.id, request_op::trace,
                              obs::render_trace_json());
    case request_op::shutdown:
      *shutdown = true;
      return serialize_simple(req.id, request_op::shutdown);
  }
  return serialize_error(req.id, "unhandled op");
}

void server::serve_connection(int fd) {
  obs::add_counter("serve.connections", 1);
  std::string buf, line;
  bool shutdown = false;
  while (!shutdown) {
    const auto status = read_line(fd, buf, line);
    if (status == read_status::overflow) {
      obs::add_counter("serve.errors", 1);
      write_line(fd, serialize_error(
                         "", "protocol error: line exceeds " +
                                 std::to_string(max_line_bytes) + " bytes"));
      break;
    }
    if (status != read_status::line) break;
    if (line.empty()) continue;
    if (!write_line(fd, dispatch(line, &shutdown))) break;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    conn_fds_.erase(fd);
    if (shutdown) shutdown_ = true;
  }
  ::close(fd);
  if (shutdown) cv_.notify_all();
}

void server::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return shutdown_ || stopped_; });
}

void server::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    // Unblock every connection thread stuck in read().
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  cv_.notify_all();
  if (listen_fd_ >= 0) {
    // Closing the listening socket makes accept() fail and ends the
    // accept loop; shutdown() first for portability with blocked accept.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  conn_threads_.clear();
  ::unlink(path_.c_str());
}

std::vector<std::string> request_lines(const std::string& socket_path,
                                       const std::vector<std::string>& lines) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  STX_REQUIRE(fd >= 0, "client: cannot create socket");
  const auto addr = unix_address(socket_path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw invalid_argument_error("client: cannot connect to " + socket_path +
                                 ": " + std::strerror(err));
  }
  std::vector<std::string> responses;
  std::string buf, line;
  for (const auto& l : lines) {
    if (!write_line(fd, l) ||
        read_line(fd, buf, line) != read_status::line) {
      ::close(fd);
      throw invalid_argument_error("client: connection to " + socket_path +
                                   " failed mid-request");
    }
    responses.push_back(line);
  }
  ::close(fd);
  return responses;
}

std::string request_line(const std::string& socket_path,
                         const std::string& line) {
  return request_lines(socket_path, {line}).front();
}

}  // namespace stx::serve
