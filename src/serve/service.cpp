#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "explore/codec.h"
#include "explore/disk_store.h"
#include "obs/obs.h"
#include "testkit/scenario.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "workloads/mpsoc_apps.h"

namespace stx::serve {

cached_design_result cached_design(const workloads::app_spec& app,
                                   const std::string& app_id,
                                   const xbar::flow_options& opts,
                                   bool validate,
                                   explore::trace_cache& cache,
                                   explore::kv_store* store) {
  const auto key = explore::report_key(app_id, opts, validate);
  if (store != nullptr) {
    if (auto blob = store->get(key)) {
      try {
        cached_design_result result;
        result.report = explore::decode_report(*blob);
        result.from_store = true;
        obs::add_counter("serve.report.store_hits", 1);
        return result;
      } catch (const std::exception&) {
        // Undecodable report object: recompute and overwrite below.
      }
    }
  }
  obs::add_counter("serve.report.misses", 1);
  const auto traces = cache.traces(app, opts, app_id);
  cached_design_result result;
  result.report = xbar::synthesize_design(app, *traces, opts);
  if (validate) {
    const auto full = cache.full_metrics(app, opts, app_id);
    xbar::validate_design(app, opts, *full, result.report);
  }
  if (store != nullptr) {
    try {
      store->put(key, explore::encode_report(result.report));
    } catch (const std::exception&) {
      // A failed write-through only loses the warm hit for next time;
      // the computed report is still the answer.
      obs::add_counter("serve.report.put_dropped", 1);
    }
  }
  return result;
}

namespace {

/// Resolves the request's application identity: (spec, canonical cache
/// identity). Built-in apps are identified by name; generated apps by
/// their canonical stxfuzz/v1 token, so distinct scenarios never alias.
std::pair<workloads::app_spec, std::string> resolve_app(
    const design_request& req) {
  if (!req.scenario.empty()) {
    const auto s = testkit::decode(req.scenario);
    return {s.make_app(), req.scenario};
  }
  auto app = workloads::make_app_by_name(req.app);
  STX_REQUIRE(app.has_value(), "unknown app '" + req.app + "' (" +
                                   workloads::app_name_list() + ")");
  return {*std::move(app), req.app};
}

}  // namespace

service::service(const options& opts) : opts_(opts) {
  STX_REQUIRE(opts_.workers >= 1, "service: workers must be >= 1");
  STX_REQUIRE(opts_.queue_depth >= 1, "service: queue_depth must be >= 1");
  if (opts_.cache_dir.empty()) {
    store_ = std::make_shared<explore::memory_store>();
  } else {
    store_ = std::make_shared<explore::disk_store>(
        opts_.cache_dir, opts_.cache_max_bytes, opts_.cache_sweep_ms);
  }
  cache_ = std::make_unique<explore::trace_cache>(store_);
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

service::~service() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::shared_future<design_response> service::submit(
    const design_request& req) {
  obs::add_counter("serve.requests", 1);
  const auto ready_error = [&](const std::string& what,
                               std::int64_t retry_after_ms = 0) {
    design_response resp;
    resp.id = req.id;
    resp.ok = false;
    resp.error = what;
    resp.retry_after_ms = retry_after_ms;
    std::promise<design_response> p;
    p.set_value(std::move(resp));
    return p.get_future().share();
  };

  // The canonical report key (plus the artifact selection, which alters
  // the response) is the dedup identity: two spellings of one request
  // coalesce, two requests differing in any option do not. The deadline
  // is deliberately NOT part of the identity — it shapes when a request
  // may be answered, not what the answer is.
  std::string dedup_key;
  try {
    STX_FAILPOINT("serve.admission");
    const auto [app, app_id] = resolve_app(req);
    (void)app;
    dedup_key = explore::encode(
        explore::report_key(app_id, req.opts, req.validate));
    for (const auto& a : req.artifacts) dedup_key += "|" + a;
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    ++stats_.errors;
    obs::add_counter("serve.errors", 1);
    return ready_error(e.what());
  }

  job j;
  j.req = req;
  j.dedup_key = dedup_key;
  j.admitted = std::chrono::steady_clock::now();
  std::shared_future<design_response> future;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    const auto it = in_flight_.find(dedup_key);
    if (it != in_flight_.end()) {
      ++stats_.coalesced;
      obs::add_counter("serve.coalesced", 1);
      return it->second;
    }
    if (queue_.size() >= static_cast<std::size_t>(opts_.queue_depth)) {
      ++stats_.rejected;
      obs::add_counter("serve.rejected", 1);
      // Back-off hint: proportional to how much work each worker has
      // queued ahead (deterministic in the configuration, so the client
      // jitter is the only randomness in the retry schedule).
      const auto hint = std::clamp<std::int64_t>(
          50 * (opts_.queue_depth / opts_.workers + 1), 50, 5000);
      return ready_error("admission queue full (" +
                             std::to_string(opts_.queue_depth) + " pending)",
                         hint);
    }
    future = j.promise.get_future().share();
    in_flight_.emplace(dedup_key, future);
    queue_.push_back(std::move(j));
    obs::gauge_max("serve.queue_depth_max",
                   static_cast<std::int64_t>(queue_.size()));
    obs::gauge_max("serve.in_flight_max",
                   static_cast<std::int64_t>(in_flight_.size()));
  }
  cv_.notify_one();
  return future;
}

design_response service::handle(const design_request& req) {
  obs::span sp("serve.request",
               {{"app", req.scenario.empty() ? req.app : "scenario"}});
  const auto t0 = std::chrono::steady_clock::now();
  design_response resp;
  resp.id = req.id;
  try {
    STX_FAILPOINT("serve.worker.execute");
    const auto [app, app_id] = resolve_app(req);
    resp.app_id = app_id;
    auto result =
        cached_design(app, app_id, req.opts, req.validate, *cache_,
                      store_.get());
    resp.source = result.from_store ? "store" : "computed";
    if (!req.artifacts.empty()) {
      gen::generate_options gopts;
      gopts.backends = req.artifacts;
      resp.artifacts = xbar::generate_artifacts(result.report, gopts);
    }
    resp.report = std::move(result.report);
    resp.ok = true;
  } catch (const std::exception& e) {
    resp.ok = false;
    resp.error = e.what();
  }
  resp.elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  return resp;
}

void service::worker_loop() {
  while (true) {
    job j;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      j = std::move(queue_.front());
      queue_.erase(queue_.begin());
    }
    // Deadline enforcement happens worker-side, at dequeue: a request
    // that already waited past its deadline is answered with an error
    // instead of burning a worker on a result nobody is waiting for.
    if (j.req.deadline_ms > 0) {
      const auto waited_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - j.admitted)
              .count();
      if (waited_ms > j.req.deadline_ms) {
        design_response resp;
        resp.id = j.req.id;
        resp.ok = false;
        resp.error = "deadline exceeded (" + std::to_string(waited_ms) +
                     "ms queued > " + std::to_string(j.req.deadline_ms) +
                     "ms deadline)";
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.completed;
          ++stats_.errors;
          ++stats_.deadline_exceeded;
          in_flight_.erase(j.dedup_key);
        }
        obs::add_counter("serve.errors", 1);
        obs::add_counter("serve.deadline_exceeded", 1);
        j.promise.set_value(std::move(resp));
        continue;
      }
    }
    auto resp = handle(j.req);
    const bool ok = resp.ok;
    const bool from_store = resp.source == "store";
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.completed;
      if (!ok) ++stats_.errors;
      if (from_store) ++stats_.store_hits;
      in_flight_.erase(j.dedup_key);
    }
    if (!ok) obs::add_counter("serve.errors", 1);
    j.promise.set_value(std::move(resp));
  }
}

service::stats_t service::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

service::live_t service::live() const {
  std::lock_guard<std::mutex> lock(mu_);
  live_t l;
  l.queue_depth = static_cast<std::int64_t>(queue_.size());
  l.in_flight = static_cast<std::int64_t>(in_flight_.size());
  return l;
}

}  // namespace stx::serve
