#include "serve/protocol.h"

#include <set>

#include "gen/json.h"
#include "gen/json_backend.h"
#include "sim/arbiter.h"
#include "testkit/scenario.h"
#include "util/error.h"

namespace stx::serve {

namespace json = gen::json;

const char* to_string(request_op op) {
  switch (op) {
    case request_op::design: return "design";
    case request_op::ping: return "ping";
    case request_op::metrics: return "metrics";
    case request_op::trace: return "trace";
    case request_op::shutdown: return "shutdown";
  }
  return "?";
}

namespace {

request_op parse_op(const std::string& s) {
  if (s == "design") return request_op::design;
  if (s == "ping") return request_op::ping;
  if (s == "metrics") return request_op::metrics;
  if (s == "trace") return request_op::trace;
  if (s == "shutdown") return request_op::shutdown;
  throw invalid_argument_error("unknown op '" + s + "'");
}

sim::arbitration parse_policy(const std::string& s) {
  if (s == "fixed_priority") return sim::arbitration::fixed_priority;
  if (s == "round_robin") return sim::arbitration::round_robin;
  if (s == "least_recently_granted") {
    return sim::arbitration::least_recently_granted;
  }
  throw invalid_argument_error("unknown policy '" + s + "'");
}

xbar::solver_kind parse_solver(const std::string& s) {
  if (s == "specialized") return xbar::solver_kind::specialized;
  if (s == "milp" || s == "generic_milp") {
    return xbar::solver_kind::generic_milp;
  }
  throw invalid_argument_error("unknown solver '" + s + "'");
}

/// The design-request option fields, applied over whatever defaults the
/// application identity established (flow defaults for built-in apps,
/// the scenario's own options for stxfuzz requests).
void apply_option_fields(const json::value& doc, design_request& req) {
  auto& opts = req.opts;
  if (doc.contains("horizon")) opts.horizon = doc.at("horizon").as_int();
  if (doc.contains("seed")) {
    opts.seed = static_cast<std::uint64_t>(doc.at("seed").as_int());
  }
  if (doc.contains("policy")) {
    opts.policy = parse_policy(doc.at("policy").as_string());
  }
  if (doc.contains("transfer_overhead")) {
    opts.transfer_overhead = doc.at("transfer_overhead").as_int();
  }
  auto& params = opts.synth.params;
  if (doc.contains("window")) params.window_size = doc.at("window").as_int();
  if (doc.contains("threshold")) {
    params.overlap_threshold = doc.at("threshold").as_double();
  }
  if (doc.contains("maxtb")) {
    params.max_targets_per_bus = static_cast<int>(doc.at("maxtb").as_int());
  }
  if (doc.contains("burst_window")) {
    params.burst_window = doc.at("burst_window").as_int();
  }
  if (doc.contains("conflicts")) {
    params.use_overlap_conflicts = doc.at("conflicts").as_bool();
  }
  if (doc.contains("critical")) {
    params.separate_critical = doc.at("critical").as_bool();
  }
  if (doc.contains("request_window")) {
    opts.request_window_override = doc.at("request_window").as_int();
  }
  if (doc.contains("response_window")) {
    opts.response_window_override = doc.at("response_window").as_int();
  }
  if (doc.contains("solver")) {
    opts.synth.solver = parse_solver(doc.at("solver").as_string());
  }
  if (doc.contains("optimize_binding")) {
    opts.synth.optimize_binding = doc.at("optimize_binding").as_bool();
  }
  if (doc.contains("solver_node_limit")) {
    const auto nodes = doc.at("solver_node_limit").as_int();
    STX_REQUIRE(nodes >= 1, "solver_node_limit must be >= 1");
    opts.synth.limits.max_nodes = nodes;
  }
  if (doc.contains("solver_time_ms")) {
    const auto ms = doc.at("solver_time_ms").as_int();
    STX_REQUIRE(ms >= 0, "solver_time_ms must be >= 0");
    opts.synth.limits.time_limit_sec = static_cast<double>(ms) / 1000.0;
  }
  if (doc.contains("solver_threads")) {
    const auto threads = doc.at("solver_threads").as_int();
    STX_REQUIRE(threads >= 1, "solver_threads must be >= 1");
    opts.synth.limits.threads = static_cast<int>(threads);
  }
  if (doc.contains("solver_cuts")) {
    opts.synth.limits.cuts = doc.at("solver_cuts").as_bool();
  }
  if (doc.contains("solver_portfolio")) {
    opts.synth.limits.portfolio = doc.at("solver_portfolio").as_bool();
  }
  if (doc.contains("validate")) {
    req.validate = doc.at("validate").as_bool();
  }
  if (doc.contains("deadline_ms")) {
    const auto ms = doc.at("deadline_ms").as_int();
    STX_REQUIRE(ms >= 1, "deadline_ms must be >= 1");
    req.deadline_ms = ms;
  }
  if (doc.contains("artifacts")) {
    for (const auto& a : doc.at("artifacts").as_array()) {
      req.artifacts.push_back(a.as_string());
    }
  }
}

const std::set<std::string>& known_fields() {
  static const std::set<std::string> fields = {
      "op",           "id",
      "app",          "scenario",
      "horizon",      "seed",
      "policy",       "transfer_overhead",
      "window",       "threshold",
      "maxtb",        "burst_window",
      "conflicts",    "critical",
      "request_window", "response_window",
      "solver",       "optimize_binding",
      "solver_node_limit", "solver_time_ms",
      "solver_threads", "solver_cuts",
      "solver_portfolio", "validate",
      "artifacts",     "deadline_ms",
  };
  return fields;
}

}  // namespace

request parse_request(const std::string& line) {
  const auto doc = json::parse(line);
  STX_REQUIRE(doc.is_object(), "request must be a JSON object");
  for (const auto& [key, v] : doc.as_object()) {
    (void)v;
    STX_REQUIRE(known_fields().count(key) != 0,
                "unknown request field '" + key + "'");
  }
  request req;
  STX_REQUIRE(doc.contains("op"), "request missing 'op'");
  req.op = parse_op(doc.at("op").as_string());
  if (doc.contains("id")) req.id = doc.at("id").as_string();
  if (req.op != request_op::design) return req;

  auto& d = req.design;
  d.id = req.id;
  const bool has_app = doc.contains("app");
  const bool has_scenario = doc.contains("scenario");
  STX_REQUIRE(has_app != has_scenario,
              "design request needs exactly one of 'app' / 'scenario'");
  if (has_app) {
    d.app = doc.at("app").as_string();
    STX_REQUIRE(!d.app.empty(), "'app' must not be empty");
  } else {
    // Canonicalise the token (decode validates, encode normalises) so
    // every spelling of one scenario shares one cache identity.
    d.scenario = testkit::encode(testkit::decode(doc.at("scenario").as_string()));
    const auto s = testkit::decode(d.scenario);
    d.opts = s.make_flow_options();
  }
  apply_option_fields(doc, d);
  return req;
}

std::string serialize(const design_response& resp) {
  json::object o;
  if (!resp.id.empty()) o.emplace_back("id", resp.id);
  o.emplace_back("ok", resp.ok);
  if (!resp.ok) {
    o.emplace_back("error", resp.error);
    if (resp.retry_after_ms > 0) {
      o.emplace_back("retry_after_ms", resp.retry_after_ms);
    }
    return json::dump_compact(json::value(std::move(o)));
  }
  o.emplace_back("app", resp.app_id);
  o.emplace_back("source", resp.source);
  o.emplace_back("elapsed_ms", resp.elapsed_ms);
  if (resp.report.has_value()) {
    o.emplace_back(
        "report",
        json::parse(gen::json_backend().emit(*resp.report,
                                             resp.report->app_name)));
  }
  if (!resp.artifacts.empty()) {
    json::array arts;
    for (const auto& a : resp.artifacts) {
      arts.push_back(json::object{{"backend", a.backend},
                                  {"filename", a.filename},
                                  {"content", a.content}});
    }
    o.emplace_back("artifacts", std::move(arts));
  }
  return json::dump_compact(json::value(std::move(o)));
}

design_response parse_response(const std::string& line) {
  const auto doc = json::parse(line);
  design_response resp;
  if (doc.contains("id")) resp.id = doc.at("id").as_string();
  resp.ok = doc.at("ok").as_bool();
  if (!resp.ok) {
    resp.error = doc.at("error").as_string();
    if (doc.contains("retry_after_ms")) {
      resp.retry_after_ms = doc.at("retry_after_ms").as_int();
    }
    return resp;
  }
  resp.app_id = doc.at("app").as_string();
  resp.source = doc.at("source").as_string();
  resp.elapsed_ms = doc.at("elapsed_ms").as_double();
  if (doc.contains("report")) {
    resp.report = gen::parse_design(json::dump(doc.at("report")));
  }
  if (doc.contains("artifacts")) {
    for (const auto& a : doc.at("artifacts").as_array()) {
      gen::artifact art;
      art.backend = a.at("backend").as_string();
      art.filename = a.at("filename").as_string();
      art.content = a.at("content").as_string();
      resp.artifacts.push_back(std::move(art));
    }
  }
  return resp;
}

std::string serialize_simple(const std::string& id, request_op op,
                             const std::string& embedded_json) {
  json::object o;
  if (!id.empty()) o.emplace_back("id", id);
  o.emplace_back("ok", true);
  o.emplace_back("op", to_string(op));
  if (!embedded_json.empty()) {
    const char* key = op == request_op::metrics ? "metrics" : "trace";
    o.emplace_back(key, json::parse(embedded_json));
  }
  return json::dump_compact(json::value(std::move(o)));
}

std::string serialize_metrics(const std::string& id,
                              const std::string& metrics_json,
                              const live_gauges& live) {
  json::object o;
  if (!id.empty()) o.emplace_back("id", id);
  o.emplace_back("ok", true);
  o.emplace_back("op", to_string(request_op::metrics));
  o.emplace_back("metrics", json::parse(metrics_json));
  o.emplace_back("live",
                 json::object{
                     {"admission_queue_depth", live.admission_queue_depth},
                     {"in_flight", live.in_flight},
                     {"connections", live.connections},
                     {"idle_connections", live.idle_connections},
                 });
  return json::dump_compact(json::value(std::move(o)));
}

std::string serialize_error(const std::string& id, const std::string& error) {
  json::object o;
  if (!id.empty()) o.emplace_back("id", id);
  o.emplace_back("ok", false);
  o.emplace_back("error", error);
  return json::dump_compact(json::value(std::move(o)));
}

}  // namespace stx::serve
