// Wire protocol of the xbar-serve design service: line-delimited JSON
// over a local stream socket. One request per line in, one response per
// line out, in order.
//
// Request (op "design"):
//   {"op":"design","id":"r1","app":"mat2","horizon":120000,
//    "window":400,"threshold":0.3,"validate":true,
//    "artifacts":["sv","dot"]}
// or, for a generated application, the canonical stxfuzz/v1 scenario
// token instead of a built-in name:
//   {"op":"design","scenario":"stxfuzz/v1 seed=42 ini=4 tgt=6 ...","..."}
// Exactly one of "app" / "scenario" must be present. Scenario requests
// default every flow option from the scenario itself; explicitly present
// fields override on top (same rule as app requests over the flow
// defaults).
//
// Other ops: "ping" (liveness), "metrics" (stx-metrics/v1 snapshot of
// the server's obs registry), "trace" (Chrome-trace-event batch of the
// server's span buffer), "shutdown" (acknowledge, then stop serving).
//
// Response (op "design", success):
//   {"id":"r1","ok":true,"app":"mat2","source":"computed|store",
//    "elapsed_ms":...,"report":{...stx-crossbar-design/v1...},
//    "artifacts":[{"backend":"sv","filename":"...","content":"..."}]}
// Failure (any op): {"id":"r1","ok":false,"error":"..."}.
// The embedded report document round-trips bit-exactly (%.17g doubles),
// so a warm-cache response is byte-identical to the cold one.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "gen/artifact.h"
#include "xbar/flow.h"

namespace stx::serve {

enum class request_op { design, ping, metrics, trace, shutdown };

const char* to_string(request_op op);

/// One parsed design request: the application identity plus fully
/// resolved flow options (defaults already applied).
struct design_request {
  std::string id;             ///< echoed back; may be empty
  std::string app;            ///< built-in application name, or empty
  std::string scenario;       ///< stxfuzz/v1 token, or empty
  xbar::flow_options opts;
  bool validate = true;       ///< run phase 4 (full reference + designed)
  std::vector<std::string> artifacts;  ///< gen backend names to render
  /// Per-request deadline in milliseconds since admission (0 = none). A
  /// request still queued when its deadline passes is answered with a
  /// "deadline exceeded" error instead of being executed late.
  std::int64_t deadline_ms = 0;
};

struct request {
  request_op op = request_op::ping;
  std::string id;
  design_request design;  ///< populated when op == design
};

/// Parses one request line. Malformed JSON, an unknown op, unknown
/// fields, out-of-range values, or an app/scenario conflict throw
/// stx::invalid_argument_error with a message fit for the error
/// response.
request parse_request(const std::string& line);

struct design_response {
  std::string id;
  bool ok = false;
  std::string error;       ///< set when !ok
  /// On a load-shedding rejection ("admission queue full"), how long the
  /// client should back off before retrying; 0 = no hint. The
  /// request_lines retry helper honors it.
  std::int64_t retry_after_ms = 0;
  std::string app_id;      ///< canonical cache identity of the application
  /// Where the report came from: "computed" (flow ran) or "store"
  /// (served from the content-addressed store without simulation).
  std::string source;
  double elapsed_ms = 0.0;  ///< wall time in the service (nondeterministic)
  std::optional<xbar::flow_report> report;
  std::vector<gen::artifact> artifacts;
};

/// One response line (no trailing newline). The report is embedded as
/// the stx-crossbar-design/v1 document.
std::string serialize(const design_response& resp);

/// Parses a serialize() line back (client side). The embedded report is
/// reconstructed through gen::parse_design, so
/// parse_response(serialize(r)).report == r.report holds exactly.
design_response parse_response(const std::string& line);

/// Non-design response lines, kept trivial: {"id":...,"ok":true,
/// "op":"pong"} and friends, with an embedded document for
/// metrics/trace.
std::string serialize_simple(const std::string& id, request_op op,
                             const std::string& embedded_json = "");

/// Instantaneous saturation gauges the "metrics" op reports next to the
/// cumulative stx-metrics/v1 snapshot, under a top-level "live" object —
/// operators watch these to see saturation building before the admission
/// queue starts shedding.
struct live_gauges {
  std::int64_t admission_queue_depth = 0;  ///< requests queued, not running
  std::int64_t in_flight = 0;      ///< admitted and not yet completed
  std::int64_t connections = 0;    ///< open client connections
  std::int64_t idle_connections = 0;  ///< connections waiting in read
};

/// The metrics-op response line: {"id",...,"ok":true,"op":"metrics",
/// "metrics":{...stx-metrics/v1...},"live":{...}}.
std::string serialize_metrics(const std::string& id,
                              const std::string& metrics_json,
                              const live_gauges& live);

/// One-line error response for any op.
std::string serialize_error(const std::string& id, const std::string& error);

}  // namespace stx::serve
