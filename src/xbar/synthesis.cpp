#include "xbar/synthesis.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>

#include "obs/obs.h"
#include "traffic/variable_windows.h"
#include "traffic/windows.h"
#include "util/error.h"
#include "xbar/milp_formulation.h"

namespace stx::xbar {

sim::crossbar_config crossbar_design::to_config(
    sim::arbitration policy, cycle_t transfer_overhead) const {
  auto cfg = sim::crossbar_config::partial(num_buses, binding);
  cfg.policy = policy;
  cfg.transfer_overhead = transfer_overhead;
  cfg.validate(num_targets);
  return cfg;
}

std::string crossbar_design::to_string() const {
  std::ostringstream out;
  out << "crossbar_design{buses=" << num_buses << "/" << num_targets
      << ", maxov=" << max_overlap
      << (binding_optimal ? "" : " (not proven optimal)") << ", binding=[";
  for (std::size_t i = 0; i < binding.size(); ++i) {
    if (i > 0) out << ",";
    out << binding[i];
  }
  out << "]}";
  return out.str();
}

namespace {

/// Maps the shared solver limits onto the generic MILP engine's knobs.
milp::bb_options milp_limits(const solver_options& limits,
                             const std::atomic<bool>* cancel) {
  milp::bb_options mo;
  mo.max_nodes = limits.max_nodes;
  mo.time_limit_sec = limits.time_limit_sec;
  mo.threads = limits.threads;
  mo.cuts = limits.cuts;
  mo.cancel = cancel;
  return mo;
}

/// Portfolio feasibility probe: race the specialised solver against the
/// generic MILP, take the first DEFINITIVE sat/unsat answer, and cancel
/// the loser. Both engines are exact, so the verdict is deterministic;
/// only which engine delivers it first is timing-dependent (reported to
/// the obs wall section, never to the deterministic counters). An engine
/// that hits its limits (or the cancellation) throws inside its thread
/// and is recorded as "no answer"; the probe only fails when BOTH
/// engines come back empty-handed.
bool portfolio_probe(const synthesis_input& input, int num_buses,
                     const synthesis_options& opts) {
  enum : int { pending = -1, unsat = 0, sat = 1, no_answer = 2 };
  std::atomic<bool> cancel_spec{false};
  std::atomic<bool> cancel_milp{false};
  std::atomic<int> from_spec{pending};
  std::atomic<int> from_milp{pending};
  std::mutex mu;
  std::condition_variable cv;
  const auto publish = [&](std::atomic<int>& slot, int value) {
    {
      std::lock_guard<std::mutex> lk(mu);
      slot.store(value, std::memory_order_relaxed);
    }
    cv.notify_all();
  };

  std::thread spec([&] {
    solver_options so = opts.limits;
    so.portfolio = false;
    so.cancel = &cancel_spec;
    try {
      const auto res = find_feasible_binding(input, num_buses, so, nullptr);
      publish(from_spec, res.has_value() ? sat : unsat);
    } catch (...) {
      publish(from_spec, no_answer);  // limits or cancellation
    }
  });
  std::thread generic([&] {
    try {
      const auto res = solve_feasibility_milp(
          input, num_buses, milp_limits(opts.limits, &cancel_milp));
      publish(from_milp, res.has_value() ? sat : unsat);
    } catch (...) {
      publish(from_milp, no_answer);
    }
  });

  bool spec_won = false;
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] {
      const int a = from_spec.load(std::memory_order_relaxed);
      const int b = from_milp.load(std::memory_order_relaxed);
      return a == sat || a == unsat || b == sat || b == unsat ||
             (a == no_answer && b == no_answer);
    });
    spec_won = from_spec.load(std::memory_order_relaxed) == sat ||
               from_spec.load(std::memory_order_relaxed) == unsat;
  }
  cancel_spec.store(true, std::memory_order_relaxed);
  cancel_milp.store(true, std::memory_order_relaxed);
  spec.join();
  generic.join();

  const int a = from_spec.load(std::memory_order_relaxed);
  const int b = from_milp.load(std::memory_order_relaxed);
  if ((a == sat || a == unsat) && (b == sat || b == unsat)) {
    STX_ENSURE(a == b, "portfolio engines disagree on feasibility");
  }
  const int answer = (a == sat || a == unsat) ? a : b;
  STX_REQUIRE(answer == sat || answer == unsat,
              "portfolio probe hit limits on both engines; raise "
              "solver_options");
  if (obs::enabled()) {
    obs::add_counter("xbar.portfolio.races", 1);
    obs::record_wall(
        spec_won ? "xbar.portfolio.spec_wins" : "xbar.portfolio.milp_wins",
        1.0);
  }
  return answer == sat;
}

/// One feasibility probe with the selected engine (or the portfolio race
/// across both). Probe node telemetry is accumulated only on the
/// deterministic single-engine specialised path; under portfolio the
/// loser's partial work is timing-dependent, so nodes stay zero.
bool probe_feasible(const synthesis_input& input, int num_buses,
                    const synthesis_options& opts,
                    std::int64_t* nodes_acc) {
  if (opts.limits.portfolio) {
    return portfolio_probe(input, num_buses, opts);
  }
  if (opts.solver == solver_kind::specialized) {
    solve_stats stats;
    const auto res =
        find_feasible_binding(input, num_buses, opts.limits, &stats);
    if (nodes_acc != nullptr) *nodes_acc += stats.nodes;
    return res.has_value();
  }
  return solve_feasibility_milp(input, num_buses,
                                milp_limits(opts.limits, opts.limits.cancel))
      .has_value();
}

}  // namespace

int min_feasible_buses(const synthesis_input& input,
                       const synthesis_options& opts, int* probes,
                       std::int64_t* probe_nodes) {
  int lo = lower_bound_buses(input);
  int hi = input.num_targets();
  STX_ENSURE(lo <= hi, "bus lower bound above target count");

  // A full configuration (one target per bus) always satisfies Eq. 3-9:
  // comm <= WS within a window by construction, no sharing. Binary search
  // on the monotone predicate "feasible with k buses".
  int count = 0;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    ++count;
    if (probe_feasible(input, mid, opts, probe_nodes)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (probes != nullptr) *probes = count;
  return lo;
}

crossbar_design synthesize(const synthesis_input& input,
                           const synthesis_options& opts) {
  obs::span sp("xbar.synthesize",
               {{"targets", input.num_targets()},
                {"solver", opts.solver == solver_kind::specialized
                               ? "specialized"
                               : "generic_milp"}});
  crossbar_design out;
  out.num_targets = input.num_targets();
  out.params = input.params();
  out.num_conflicts = input.num_conflicts();

  {
    obs::span probe_sp("xbar.size_search");
    out.num_buses =
        min_feasible_buses(input, opts, &out.probes, &out.feasibility_nodes);
  }

  if (opts.solver == solver_kind::specialized) {
    if (opts.optimize_binding) {
      solve_stats stats;
      const auto sol = find_min_overlap_binding(input, out.num_buses,
                                                opts.limits, &stats);
      STX_ENSURE(sol.has_value(),
                 "binding infeasible at the proven-feasible bus count");
      out.binding = sol->binding;
      out.max_overlap = sol->max_overlap;
      out.binding_optimal = sol->proven_optimal;
      out.binding_nodes = stats.nodes;
    } else {
      solve_stats stats;
      const auto sol =
          find_feasible_binding(input, out.num_buses, opts.limits, &stats);
      STX_ENSURE(sol.has_value(),
                 "binding infeasible at the proven-feasible bus count");
      out.binding = *sol;
      out.max_overlap = input.max_bus_overlap(out.binding, out.num_buses);
      out.binding_optimal = false;
      out.binding_nodes = stats.nodes;
    }
  } else {
    // The binding solve stays on the configured engine even under
    // portfolio mode: only feasibility probes race.
    const auto mo = milp_limits(opts.limits, opts.limits.cancel);
    if (opts.optimize_binding) {
      const auto sol = solve_binding_milp(input, out.num_buses, mo);
      STX_ENSURE(sol.has_value(),
                 "binding MILP infeasible at the proven-feasible bus count");
      out.binding = sol->binding;
      out.max_overlap = sol->max_overlap;
    } else {
      const auto sol = solve_feasibility_milp(input, out.num_buses, mo);
      STX_ENSURE(sol.has_value(),
                 "feasibility MILP infeasible at the proven-feasible bus "
                 "count");
      out.binding = *sol;
      out.max_overlap = input.max_bus_overlap(out.binding, out.num_buses);
      out.binding_optimal = false;
    }
  }

  STX_ENSURE(input.binding_feasible(out.binding, out.num_buses),
             "synthesised binding violates the model");
  obs::add_counter("xbar.synth.runs", 1);
  obs::add_counter("xbar.synth.probes", out.probes);
  obs::add_counter("xbar.synth.feasibility_nodes", out.feasibility_nodes);
  obs::add_counter("xbar.synth.binding_nodes", out.binding_nodes);
  obs::add_counter("xbar.synth.buses", out.num_buses);
  sp.set_attr({"buses", out.num_buses});
  return out;
}

synthesis_input input_from_trace(const traffic::trace& t,
                                 const design_params& params) {
  if (params.burst_window > 0) {
    const auto part = traffic::window_partition::burst_adaptive(
        t, params.burst_window,
        std::max<traffic::cycle_t>(1, params.window_size / 4),
        std::max<traffic::cycle_t>(1, params.window_size * 4));
    const traffic::variable_window_analysis vwa(t, part);
    return synthesis_input(vwa, params);
  }
  const traffic::window_analysis wa(t, params.window_size);
  return synthesis_input(wa, params);
}

crossbar_design synthesize_from_trace(const traffic::trace& t,
                                      const synthesis_options& opts) {
  return synthesize(input_from_trace(t, opts.params), opts);
}

}  // namespace stx::xbar
