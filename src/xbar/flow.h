// End-to-end design flow (paper Fig. 3): full-crossbar simulation ->
// window analysis & pre-processing -> synthesis -> validation simulation.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "gen/artifact.h"
#include "workloads/app.h"
#include "xbar/baselines.h"
#include "xbar/synthesis.h"

namespace stx::xbar {

/// Latency metrics of one validation simulation (phase 4).
struct validation_metrics {
  double avg_latency = 0.0;   ///< mean packet latency, both crossbars
  double max_latency = 0.0;
  double p99_latency = 0.0;
  double avg_critical = 0.0;  ///< mean latency of critical packets (0 if none)
  double max_critical = 0.0;
  std::int64_t packets = 0;
  std::int64_t transactions = 0;
  std::int64_t iterations = 0;  ///< completed core loop iterations
  int total_buses = 0;          ///< request + response bus count

  bool operator==(const validation_metrics&) const = default;
};

/// Flow knobs.
struct flow_options {
  /// Cycles simulated for trace collection (phase 1) and for each
  /// validation run (phase 4).
  traffic::cycle_t horizon = 120'000;
  /// Synthesis settings applied to BOTH directions (the window size may
  /// be overridden per direction via request/response overrides below).
  synthesis_options synth;
  /// Optional per-direction parameter overrides (<=0 / negative values
  /// mean "use synth.params").
  traffic::cycle_t request_window_override = 0;
  traffic::cycle_t response_window_override = 0;
  /// Simulator settings shared by all runs.
  sim::arbitration policy = sim::arbitration::round_robin;
  traffic::cycle_t transfer_overhead = 2;
  std::uint64_t seed = 1;
};

/// Everything the flow produced for one application. This is also the
/// input of the generation phase (src/gen/): artifact backends consume a
/// flow_report and nothing else, so it carries the endpoint names and the
/// phase-1 traffic totals alongside the two designs.
struct flow_report {
  std::string app_name;
  int num_initiators = 0;
  int num_targets = 0;
  /// Target names from the app spec ("tgt<i>" placeholders when absent).
  std::vector<std::string> target_names;
  crossbar_design request_design;   ///< initiator->target crossbar
  crossbar_design response_design;  ///< target->initiator crossbar
  validation_metrics designed;      ///< the synthesised partial crossbars
  validation_metrics full;          ///< full crossbars reference
  int full_buses = 0;               ///< total buses of the full config
  int designed_buses = 0;           ///< total buses of the design
  /// Phase-1 busy-cycle totals per link: request_traffic[i][t] counts the
  /// cycles initiator i kept target t busy; response_traffic[t][i] the
  /// reverse direction. Artifact backends use these as edge weights.
  std::vector<std::vector<traffic::cycle_t>> request_traffic;
  std::vector<std::vector<traffic::cycle_t>> response_traffic;

  double savings() const {
    if (designed_buses == 0) return 0.0;
    return static_cast<double>(full_buses) /
           static_cast<double>(designed_buses);
  }

  bool operator==(const flow_report&) const = default;
};

/// Runs phases 1-4 for `app` and returns the report. Deterministic for a
/// given (app, options) pair.
flow_report run_design_flow(const workloads::app_spec& app,
                            const flow_options& opts);

/// Phase 4 reference point: full crossbars on both directions, measured
/// with the same simulator settings as the designed run. Depends only on
/// (app, horizon, seed, policy, transfer_overhead) — never on the
/// synthesis knobs — so sweep engines compute it once per application.
validation_metrics validate_full_crossbars(const workloads::app_spec& app,
                                           const flow_options& opts);

/// Phase 4 only: simulate `app` on explicit crossbar configs and measure.
validation_metrics validate_configuration(const workloads::app_spec& app,
                                          const sim::crossbar_config& req,
                                          const sim::crossbar_config& resp,
                                          const flow_options& opts);

/// One phase-4 validation request of a batched call: an explicit crossbar
/// pair plus the flow options it runs under (policies/seeds may differ
/// per job; the horizon must be shared — instances advance in lockstep).
struct validation_job {
  sim::crossbar_config request;
  sim::crossbar_config response;
  flow_options opts;
};

/// Phase 4 for many configurations of the same `app` in one lockstep
/// sim::batch: entry i is bit-identical to
/// `validate_configuration(app, jobs[i].request, jobs[i].response,
/// jobs[i].opts)`, but the whole set runs as one structure-of-arrays
/// simulation harvesting observers instead of N sessions. This is the
/// fast path explore::run_sweep packs validation cohorts into.
std::vector<validation_metrics> validate_configurations(
    const workloads::app_spec& app, const std::vector<validation_job>& jobs);

/// The synthesis parameters design_from_traces actually uses for one
/// direction: opts.synth.params with the per-direction window override
/// applied. The single source of the override rule — verification
/// harnesses (src/testkit) rebuild a direction's model through this, so
/// they can never diverge from what the flow solved.
design_params effective_synthesis_params(const flow_options& opts,
                                         bool request_direction);

/// Collects the functional traffic traces of phase 1 (full crossbars).
struct collected_traces {
  traffic::trace request;   ///< events keyed by target id
  traffic::trace response;  ///< events keyed by initiator id
};
collected_traces collect_traces(const workloads::app_spec& app,
                                const flow_options& opts);

/// Whether (and how) phase 4 runs after synthesis.
enum class validation_mode {
  /// Run the validation simulations: the designed configuration, plus the
  /// full-crossbar reference unless stage inputs supply it precomputed.
  validate,
  /// Skip phase 4 entirely: the report still carries the designs,
  /// endpoint names, traffic matrices and bus counts, with zeroed latency
  /// metrics — synthesis-only sweeps (Figs. 5-6 shapes) need nothing
  /// more.
  skip,
};

/// Precomputed inputs a staged flow invocation carries between stages.
/// Replaces the old `(const validation_metrics* full, bool validate)`
/// trailing parameters, whose pointer lifetime and positional-bool
/// semantics were easy to misuse.
struct flow_stage_inputs {
  /// Full-crossbar reference metrics, when a cache already holds them
  /// (see validate_full_crossbars). Must come from the same
  /// (app, horizon, seed, policy, transfer_overhead) as `opts` — the
  /// explore::trace_cache / serve::service keys guarantee this; hand
  /// callers must too, or the report's `full` section lies.
  std::optional<validation_metrics> full;
  validation_mode mode = validation_mode::validate;
};

/// Stage "analyze + synthesize" (phases 2-3) alone: window analysis,
/// pre-processing and crossbar synthesis for both directions from an
/// injected phase-1 result, honouring the per-direction window
/// overrides. The report comes back unvalidated (zeroed latency metrics)
/// but otherwise complete, and is exactly what the persistent store
/// caches at the synthesis stage.
flow_report synthesize_design(const workloads::app_spec& app,
                              const collected_traces& traces,
                              const flow_options& opts);

/// Stage "validate" (phase 4) against an already-synthesised report:
/// simulates the designed configuration and fills report.designed, then
/// report.full from `full` when provided (else re-simulates the
/// full-crossbar reference). Idempotent: re-running overwrites the same
/// fields.
void validate_design(const workloads::app_spec& app, const flow_options& opts,
                     const std::optional<validation_metrics>& full,
                     flow_report& report);

/// Phases 2-4 with an injected phase-1 result: `synthesize_design`
/// followed by `validate_design` (per stages.mode). `run_design_flow` is
/// exactly `collect_traces` + this; design-space sweeps and the design
/// service call it directly so one cached trace serves many parameter
/// points.
flow_report design_from_traces(const workloads::app_spec& app,
                               const collected_traces& traces,
                               const flow_options& opts,
                               const flow_stage_inputs& stages = {});

/// Phase 5, "Generation" (the step Fig. 3 feeds into): renders `report`
/// into deployable artifacts through the gen backend registry. Backend
/// names are resolved via gen::registry; unknown names throw. Pure — use
/// gen::write_artifacts to put the results on disk.
std::vector<gen::artifact> generate_artifacts(const flow_report& report,
                                              const gen::generate_options& opts);

}  // namespace stx::xbar
