// Crossbar design problem: parameters and the pre-processed input
// (paper Sections 4-5: data collection + pre-processing phases).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "traffic/variable_windows.h"
#include "traffic/windows.h"

namespace stx::xbar {

using cycle_t = traffic::cycle_t;

/// Tunable parameters of the design methodology (the design-space knobs
/// of Sec. 7: window size, overlap threshold, max targets per bus).
struct design_params {
  /// Window size WS in cycles for the traffic analysis. The paper's rule
  /// of thumb: 1-4x the typical burst size (aggressive..conservative).
  cycle_t window_size = 2000;

  /// Pre-processing overlap threshold as a fraction of WS: target pairs
  /// whose overlap exceeds it in ANY window are forced onto different
  /// buses (Eq. 2). Values above 0.5 never trigger (Sec. 7.4: two
  /// streams overlapping more than 50% of a window cannot share a bus
  /// anyway because of the bandwidth constraint).
  double overlap_threshold = 0.30;

  /// maxtb (Eq. 8): cap on targets bound to one bus, bounding the
  /// worst-case serialisation latency. <= 0 disables the cap.
  int max_targets_per_bus = 4;

  /// Burst-adaptive variable analysis windows (the paper's Sec. 8 future
  /// work): when > 0, the uniform window partition is replaced by
  /// equal-work windows holding roughly `burst_window` aggregate busy
  /// cycles each, clamped to [window_size/4, 4*window_size] — fine
  /// resolution inside bursts, coarse in quiet phases. 0 keeps the
  /// paper's uniform windows.
  cycle_t burst_window = 0;

  /// Enables the overlap-threshold conflict pre-processing. Disabled by
  /// the average-traffic baseline ("previous approaches").
  bool use_overlap_conflicts = true;

  /// Forces targets with overlapping critical (real-time) streams onto
  /// separate buses so their guarantees hold (Sec. 7.3).
  bool separate_critical = true;

  bool operator==(const design_params&) const = default;
};

/// The pre-processed synthesis input: everything the MILPs consume.
/// Built once from a window analysis; immutable afterwards.
class synthesis_input {
 public:
  /// Runs the pre-processing phase on `wa` with `params`: copies
  /// comm[i][m], builds the overlap matrix OM (Eq. 1) and the conflict
  /// matrix (Eq. 2) from the overlap threshold and critical overlaps.
  synthesis_input(const traffic::window_analysis& wa,
                  const design_params& params);

  /// Estimate-driven construction (the paper notes the methodology "also
  /// applies to cases where application traces are not available and only
  /// rough estimates of the traffic flows ... is known"): supply
  /// comm[i][m], the overlap matrix and the conflict matrix directly.
  /// `om` must be symmetric with zero diagonal; `conflict` likewise.
  synthesis_input(std::vector<std::vector<cycle_t>> comm,
                  std::vector<std::vector<cycle_t>> om,
                  std::vector<std::vector<bool>> conflict,
                  cycle_t window_size, const design_params& params);

  /// Variable-window construction (the paper's future-work extension):
  /// every window brings its own capacity (its length), the bandwidth
  /// constraint becomes sum_i comm[i][m] x[i][k] <= size(m), and the
  /// overlap threshold is tested against each window's own size.
  synthesis_input(const traffic::variable_window_analysis& vwa,
                  const design_params& params);

  int num_targets() const { return num_targets_; }
  int num_windows() const { return num_windows_; }
  /// Nominal window size (== every window's capacity for uniform
  /// analyses; the largest window for variable partitions).
  cycle_t window_size() const { return window_size_; }
  /// Bus capacity of window m in cycles (Eq. 4 right-hand side).
  cycle_t capacity(int m) const {
    return capacity_[static_cast<std::size_t>(m)];
  }
  const design_params& params() const { return params_; }

  /// comm[i][m] (Definition 2).
  cycle_t comm(int i, int m) const {
    return comm_[static_cast<std::size_t>(i)][static_cast<std::size_t>(m)];
  }
  /// om[i][j] (Eq. 1; diagonal 0, symmetric).
  cycle_t om(int i, int j) const {
    return om_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
  }
  /// c[i][j] (Eq. 2).
  bool conflict(int i, int j) const {
    return conflict_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
  }

  int num_conflicts() const;

  /// Checks a complete binding against Eq. 3-9: every target bound to a
  /// valid bus, per-window bandwidth respected on every bus, no conflict
  /// pair shares a bus, maxtb respected.
  bool binding_feasible(const std::vector<int>& binding,
                        int num_buses) const;

  /// Eq. 11 objective: max over buses of the summed pairwise overlap
  /// between targets sharing that bus (unordered pairs).
  cycle_t max_bus_overlap(const std::vector<int>& binding,
                          int num_buses) const;

  std::string to_string() const;

 private:
  int num_targets_ = 0;
  int num_windows_ = 0;
  cycle_t window_size_ = 0;
  design_params params_;
  std::vector<cycle_t> capacity_;  ///< per-window bus capacity
  std::vector<std::vector<cycle_t>> comm_;
  std::vector<std::vector<cycle_t>> om_;
  std::vector<std::vector<bool>> conflict_;
};

}  // namespace stx::xbar
