#include "xbar/baselines.h"

#include "traffic/windows.h"
#include "util/error.h"

namespace stx::xbar {

crossbar_design design_average_traffic(const traffic::trace& t,
                                       int max_targets_per_bus) {
  synthesis_options opts;
  // One window over the entire simulation: only aggregate bandwidth
  // matters. No overlap conflicts, no criticality separation; binding
  // optimisation has nothing meaningful to minimise across identical
  // aggregate flows but is kept for determinism.
  opts.params.window_size = std::max<cycle_t>(t.horizon(), 1);
  opts.params.use_overlap_conflicts = false;
  opts.params.separate_critical = false;
  opts.params.max_targets_per_bus = max_targets_per_bus;
  opts.params.overlap_threshold = 1.0;  // never triggers
  return synthesize_from_trace(t, opts);
}

crossbar_design design_peak_contention_free(const traffic::trace& t,
                                            cycle_t window_size) {
  synthesis_options opts;
  opts.params.window_size = window_size;
  // Threshold 0: one overlapping cycle in any window forces separation —
  // the "eliminate contention" extreme of the design spectrum.
  opts.params.overlap_threshold = 0.0;
  opts.params.use_overlap_conflicts = true;
  opts.params.separate_critical = true;
  opts.params.max_targets_per_bus = 0;  // unconstrained: conflicts rule
  return synthesize_from_trace(t, opts);
}

crossbar_design rebind_randomly(const synthesis_input& input,
                                const crossbar_design& design,
                                std::uint64_t seed) {
  const auto binding =
      find_random_feasible_binding(input, design.num_buses, seed);
  STX_REQUIRE(binding.has_value(),
              "random rebinding failed on a feasible configuration");
  crossbar_design out = design;
  out.binding = *binding;
  out.max_overlap = input.max_bus_overlap(out.binding, out.num_buses);
  out.binding_optimal = false;
  out.binding_nodes = 0;
  return out;
}

}  // namespace stx::xbar
